/**
 * @file
 * Fig. 14: MaxFlops performance (system exaflops) and power (system MW)
 * as the per-node CU count scales, at 1 GHz and 1 TB/s, projected to
 * the 100,000-node exascale machine (paper Section V-F).
 *
 * With --cluster, the analytic projection is printed side by side with
 * the communication-aware one from the scale-out model (src/cluster/):
 * the same machine with the default SerDes fat tree and a halo-exchange
 * workload mapped onto it.
 */

#include <cstring>
#include <iostream>

#include "bench_util.hh"
#include "cluster/scale_out_study.hh"
#include "core/studies.hh"
#include "util/table.hh"

using namespace ena;

int
main(int argc, char **argv)
{
    const bool cluster_mode =
        argc > 1 && std::strcmp(argv[1], "--cluster") == 0;
    const std::vector<int> cus = {192, 224, 256, 288, 320};

    bench::banner("Figure 14",
                  "MaxFlops performance and power scaling with CU "
                  "count (1 GHz, 1 TB/s, 100,000\nnodes; power is the "
                  "processor-package peak-compute scenario).");

    ExascaleProjector proj(bench::evaluator());
    auto points = proj.sweepCus(cus);

    if (cluster_mode) {
        ScaleOutStudy study(bench::evaluator(),
                            ClusterConfig::exascale());
        auto aware = study.fig14(cus, CommSpec{});
        TextTable t({"CUs per ENA node", "analytic EF", "comm-aware EF",
                     "efficiency", "analytic MW", "comm-aware MW"});
        for (size_t i = 0; i < aware.size(); ++i) {
            t.row()
                .add(aware[i].cus)
                .add(points[i].systemExaflops, "%.2f")
                .add(aware[i].commExaflops, "%.2f")
                .add(aware[i].efficiency, "%.3f")
                .add(points[i].systemMw, "%.1f")
                .add(aware[i].commMw, "%.1f");
        }
        bench::show(t, "fig14_exascale_cluster");
        std::cout << "\nThe comm-aware column maps a halo exchange at "
                     "profile intensity onto the\ndefault "
                  << study.baseConfig().label()
                  << " fabric; with zero communication\nit reduces to "
                     "the analytic column bit-identically "
                     "(bench_cluster_scaleout gates it).\n";
        return 0;
    }

    TextTable t({"CUs per ENA node", "Exaflops", "Power (MW)",
                 "node TF", "node W"});
    for (const ExascalePoint &p : points) {
        t.row()
            .add(p.cus)
            .add(p.systemExaflops, "%.2f")
            .add(p.systemMw, "%.1f")
            .add(p.systemExaflops * 1e6 / proj.nodes(), "%.2f")
            .add(p.systemMw * 1e6 / proj.nodes(), "%.1f");
    }
    bench::show(t, "fig14_exascale");

    std::cout << "\nPaper findings: linear scaling with CU count; at "
                 "320 CUs per node the system\nreaches ~1.86 "
                 "double-precision exaflops (18.6 TF/node) at ~11.1 MW "
                 "in the\npeak-compute scenario.\n"
                 "(Run with --cluster for the communication-aware "
                 "projection.)\n";
    return 0;
}

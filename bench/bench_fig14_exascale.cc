/**
 * @file
 * Fig. 14: MaxFlops performance (system exaflops) and power (system MW)
 * as the per-node CU count scales, at 1 GHz and 1 TB/s, projected to
 * the 100,000-node exascale machine (paper Section V-F).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/studies.hh"
#include "util/table.hh"

using namespace ena;

int
main()
{
    bench::banner("Figure 14",
                  "MaxFlops performance and power scaling with CU "
                  "count (1 GHz, 1 TB/s, 100,000\nnodes; power is the "
                  "processor-package peak-compute scenario).");

    ExascaleProjector proj(bench::evaluator());
    auto points = proj.sweepCus({192, 224, 256, 288, 320});

    TextTable t({"CUs per ENA node", "Exaflops", "Power (MW)",
                 "node TF", "node W"});
    for (const ExascalePoint &p : points) {
        t.row()
            .add(p.cus)
            .add(p.systemExaflops, "%.2f")
            .add(p.systemMw, "%.1f")
            .add(p.systemExaflops * 1e6 / proj.nodes(), "%.2f")
            .add(p.systemMw * 1e6 / proj.nodes(), "%.1f");
    }
    bench::show(t, "fig14_exascale");

    std::cout << "\nPaper findings: linear scaling with CU count; at "
                 "320 CUs per node the system\nreaches ~1.86 "
                 "double-precision exaflops (18.6 TF/node) at ~11.1 MW "
                 "in the\npeak-compute scenario.\n";
    return 0;
}

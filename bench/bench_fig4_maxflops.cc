/**
 * @file
 * Fig. 4: MaxFlops performance vs ops-per-byte (compute-intensive:
 * linear in compute, insensitive to bandwidth).
 */

#include "bench_opb_sweep.hh"

int
main()
{
    return ena::bench::runOpbSweep(ena::App::MaxFlops, "Figure 4");
}

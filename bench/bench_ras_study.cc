/**
 * @file
 * RAS study (paper Section II-A5, quantified): node/system MTTF with
 * the paper's protection choices, GPU RMT coverage/overhead per
 * application, the interaction between NTC and soft-error rates, and
 * the checkpoint/restart efficiency of the 100,000-node machine.
 */

#include <iostream>

#include "bench_util.hh"
#include "ras/checkpoint.hh"
#include "ras/fault_model.hh"
#include "ras/rmt.hh"
#include "util/table.hh"

using namespace ena;

int
main()
{
    bench::banner("RAS study (extension)",
                  "Quantifying the paper's Section II-A5 resiliency "
                  "discussion: ECC + GPU RMT,\nNTC's soft-error cost, "
                  "and checkpoint/restart efficiency at 100,000 "
                  "nodes.");

    NodeConfig cfg = bench::bestMean();

    // ---- protection configurations -----------------------------------
    struct Variant
    {
        const char *name;
        RasConfig ras;
    } variants[] = {
        {"no protection", {false, false, false, 2.0}},
        {"ECC only", {true, true, false, 2.0}},
        {"ECC + GPU RMT", {true, true, true, 2.0}},
    };

    TextTable t({"protection", "node FIT", "node MTTF (yr)",
                 "system MTTF (h)", "silent fraction"});
    for (const Variant &v : variants) {
        FaultModel fm(v.ras);
        double fit = fm.protectedNodeFit(cfg).total();
        t.row()
            .add(v.name)
            .add(fit, "%.0f")
            .add(fm.nodeMttfHours(cfg) / 8760.0, "%.1f")
            .add(fm.systemMttfHours(cfg, cal::numSystemNodes), "%.2f")
            .add(fm.silentFraction(cfg), "%.3f");
    }
    bench::show(t, "ras_protection");

    // ---- per-component FIT budget (NVM-bearing hybrid config) ---------
    std::cout << "\nPer-component FIT budget, hybrid external memory "
                 "(384 GB DRAM + 384 GB NVM):\n";
    NodeConfig hybrid = cfg;
    hybrid.ext = ExtMemConfig::hybrid();
    FaultModel full({true, true, true, 2.0});
    FitBreakdown raw = full.rawNodeFit(hybrid);
    FitBreakdown prot = full.protectedNodeFit(hybrid);
    TextTable b({"component", "raw FIT", "protected FIT"});
    b.row().add("CPU logic").add(raw.cpuLogic, "%.0f").add(
        prot.cpuLogic, "%.1f");
    b.row().add("GPU logic").add(raw.gpuLogic, "%.0f").add(
        prot.gpuLogic, "%.1f");
    b.row().add("SRAM").add(raw.sram, "%.0f").add(prot.sram, "%.1f");
    b.row().add("in-package DRAM").add(raw.hbm, "%.0f").add(prot.hbm,
                                                            "%.1f");
    b.row().add("external DRAM").add(raw.extDram, "%.0f").add(
        prot.extDram, "%.1f");
    b.row().add("external NVM").add(raw.nvm, "%.0f").add(prot.nvm,
                                                         "%.1f");
    b.row().add("interconnect").add(raw.interconnect, "%.0f").add(
        prot.interconnect, "%.1f");
    b.row().add("total").add(raw.total(), "%.0f").add(prot.total(),
                                                      "%.1f");
    bench::show(b, "ras_fit_components");

    // ---- RMT coverage/overhead per application ------------------------
    std::cout << "\nGPU RMT (opportunistic: duplicate into idle CUs):\n";
    RmtModel rmt;
    TextTable r({"app", "CU util", "coverage", "slowdown",
                 "full-RMT slowdown"});
    for (App app : allApps()) {
        Activity act = bench::evaluator()
                           .evaluate(cfg, app)
                           .perf.activity;
        RmtOutcome opp = rmt.evaluate(act, RmtPolicy::Opportunistic);
        RmtOutcome full = rmt.evaluate(act, RmtPolicy::Full);
        r.row()
            .add(appName(app))
            .add(act.cuUtilization, "%.2f")
            .add(opp.coverage, "%.2f")
            .add(opp.slowdown, "%.3f")
            .add(full.slowdown, "%.3f");
    }
    bench::show(r, "ras_rmt");

    // ---- NTC vs soft errors -------------------------------------------
    std::cout << "\nNTC's reliability cost (paper Section VI: power "
                 "savings that reduce voltage\npotentially increase "
                 "error rates):\n";
    FaultModel fm({true, true, true, 2.0});
    NodeConfig ntc_cfg = cfg;
    ntc_cfg.opts.ntc = true;
    TextTable n({"config", "system MTTF (h)"});
    n.row().add("nominal voltage").add(
        fm.systemMttfHours(cfg, cal::numSystemNodes), "%.2f");
    n.row().add("NTC enabled").add(
        fm.systemMttfHours(ntc_cfg, cal::numSystemNodes), "%.2f");
    bench::show(n, "ras_ntc");

    // ---- checkpoint/restart -------------------------------------------
    std::cout << "\nCheckpoint/restart at 100,000 nodes (in-package "
                 "footprint to I/O nodes):\n";
    CheckpointModel ckpt;
    TextTable c({"protection", "interval (min)", "ckpts/day",
                 "machine efficiency"});
    for (const Variant &v : variants) {
        FaultModel f(v.ras);
        CheckpointPlan plan =
            ckpt.plan(f.systemMttfHours(cfg, cal::numSystemNodes));
        c.row()
            .add(v.name)
            .add(plan.intervalS / 60.0, "%.1f")
            .add(plan.checkpointsPerDay, "%.1f")
            .add(plan.efficiency, "%.3f");
    }
    bench::show(c, "ras_checkpoint");

    std::cout << "\nPaper context: RAS is a first-class constraint; ECC "
                 "covers the arrays, software RMT\nuses idle GPU "
                 "resources for logic coverage, and the machine must "
                 "keep user-visible\ninterruptions to about a week.\n";
    return 0;
}

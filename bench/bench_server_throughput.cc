/**
 * @file
 * Gate + throughput measurement for the evaluation server. Two parts:
 *
 *  (a) identity gate (fatal to the exit code): a sweep evaluated
 *      through a live ena-server over a Unix socket must be
 *      bit-identical to serial local evaluation, point for point;
 *  (b) throughput: requests/sec for single-point eval_node calls with
 *      a cold and a warm process-wide memo cache, and points/sec for
 *      one large sweep request (the batch path).
 *
 * Usage: bench_server_throughput [REQUESTS] [--json <path>]
 *        (default 2000 eval_node requests per phase)
 */

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.hh"
#include "common/node_config_io.hh"
#include "core/eval_memo.hh"
#include "server/client.hh"
#include "server/server.hh"

using namespace ena;

namespace {

int failures = 0;

void
check(bool cond, const std::string &what)
{
    if (cond) {
        std::cout << "  ok: " << what << "\n";
    } else {
        std::cerr << "  FAIL: " << what << "\n";
        ++failures;
    }
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** The request mix for the throughput phases: distinct configs so the
 *  cold phase misses the memo on every request. */
std::vector<NodeConfig>
requestConfigs(int n)
{
    std::vector<NodeConfig> cfgs;
    cfgs.reserve(n);
    NodeConfig base = NodeConfig::bestMean();
    for (int i = 0; i < n; ++i) {
        NodeConfig cfg = base;
        cfg.cus = 192 + 32 * (i % 7);
        cfg.freqGhz = 0.6 + 0.0001 * i;
        cfg.bwTbs = 1.0 + 0.25 * (i % 9);
        cfg.validate();
        cfgs.push_back(cfg);
    }
    return cfgs;
}

double
evalNodePhase(ServerClient &client, const std::vector<NodeConfig> &cfgs,
              const char *app)
{
    auto t0 = std::chrono::steady_clock::now();
    for (const NodeConfig &cfg : cfgs) {
        wire::JsonValue params = wire::JsonValue::object();
        params.set("app", app);
        params.set("config", nodeConfigToConfig(cfg).toString());
        auto r = client.call("eval_node", std::move(params));
        if (!r.ok()) {
            std::cerr << "eval_node failed: " << r.status().toString()
                      << "\n";
            std::exit(1);
        }
    }
    return static_cast<double>(cfgs.size()) / secondsSince(t0);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int requests = 2000;
    if (argc > 1 && argv[1][0] != '-')
        requests = std::atoi(argv[1]);
    if (requests < 1)
        requests = 1;

    bench::banner("the evaluation server",
                  "Local-vs-server bit-identity gate and request "
                  "throughput (cold / warm memo)");

    ServerOptions opts;
    opts.endpoint = Endpoint::unixPath(
        "/tmp/ena-bench-" + std::to_string(::getpid()) + ".sock");
    opts.workers = 4;
    auto server = EvalServer::start(opts);
    if (!server.ok()) {
        std::cerr << "cannot start server: "
                  << server.status().toString() << "\n";
        return 1;
    }

    ClientOptions copts;
    copts.endpoint = (*server)->endpoint();
    ServerClient client(copts);

    // --- (a) identity gate: server sweep vs serial local evaluation.
    std::cout << "identity gate (lulesh bw 1..7 step 0.25):\n";
    const NodeConfig base = NodeConfig::bestMean();
    auto points = client.sweepAxis("lulesh", "bw", 1.0, 7.0, 0.25);
    if (!points.ok()) {
        std::cerr << "server sweep failed: "
                  << points.status().toString() << "\n";
        return 1;
    }
    NodeEvaluator local;
    std::size_t i = 0;
    bool identical = true;
    for (double v = 1.0; v <= 7.0 + 1e-9; v += 0.25, ++i) {
        NodeConfig cfg = base;
        cfg.bwTbs = v;
        cfg.validate();
        EvalResult r = local.evaluate(cfg, App::LULESH);
        if (i >= points->size() ||
            doubleBits((*points)[i].flops) != doubleBits(r.perf.flops) ||
            doubleBits((*points)[i].totalW) != doubleBits(r.power.total()) ||
            doubleBits((*points)[i].budgetW) !=
                doubleBits(r.power.budgetPower()) ||
            (*points)[i].memoryBound != r.perf.memoryBound) {
            identical = false;
            break;
        }
    }
    check(identical && i == points->size(),
          "server sweep is bit-identical to serial local evaluation");

    // --- (b) throughput: eval_node requests/sec, cold then warm memo.
    const EvalMemoCache &memo = EvalMemoCache::sharedInstance();
    std::vector<NodeConfig> cfgs = requestConfigs(requests);

    std::uint64_t misses0 = memo.misses();
    double coldRps = evalNodePhase(client, cfgs, "hpgmg");
    check(memo.misses() > misses0, "cold phase misses the memo cache");

    std::uint64_t hits0 = memo.hits();
    double warmRps = evalNodePhase(client, cfgs, "hpgmg");
    check(memo.hits() > hits0, "warm phase hits the memo cache");

    // One large sweep request: the server-side batch path.
    auto t0 = std::chrono::steady_clock::now();
    auto big = client.sweepAxis("comd", "freq", 0.5, 1.5, 0.0005);
    double sweepSec = secondsSince(t0);
    if (!big.ok()) {
        std::cerr << "large sweep failed: " << big.status().toString()
                  << "\n";
        return 1;
    }
    double sweepPps = static_cast<double>(big->size()) / sweepSec;

    std::cout << "\nrequests per phase:     " << requests
              << "\ncold requests/sec:      " << coldRps
              << "\nwarm requests/sec:      " << warmRps
              << "\nsweep points/sec:       " << sweepPps << " ("
              << big->size() << " points in one request)\n";

    (*server)->stop();

    std::string jsonPath = bench::jsonPathFromArgs(argc, argv);
    if (!jsonPath.empty()) {
        bench::JsonReport report("server_throughput");
        report.metric("requests", requests);
        report.metric("cold_requests_per_sec", coldRps);
        report.metric("warm_requests_per_sec", warmRps);
        report.metric("sweep_points_per_sec", sweepPps);
        report.metric("sweep_points", static_cast<double>(big->size()));
        report.metric("identical", identical ? 1.0 : 0.0);
        report.context("endpoint", opts.endpoint.toString());
        report.context("workers", std::to_string(opts.workers));
        if (!report.writeTo(jsonPath))
            return 1;
    }

    if (failures) {
        std::cerr << "\n" << failures << " check(s) FAILED\n";
        return 1;
    }
    std::cout << "\nall checks passed\n";
    return 0;
}

/**
 * @file
 * Telemetry cost gates on the paper's hottest loop (the full DSE grid
 * sweep):
 *
 *  1. Disabled overhead: with tracing and metrics off, the instrumented
 *     DesignSpaceExplorer::sweep must stay within 2% of a bench-local
 *     replica of the same loop with no span/trace calls at all. Both
 *     sides share NodeEvaluator's single always-on relaxed counter
 *     increment per evaluation — the gate measures the span and trace
 *     machinery added around it.
 *
 *  2. Determinism: with tracing AND metrics enabled (in memory), the
 *     parallel sweep must stay element-for-element bit-identical to
 *     the serial sweep. Telemetry is write-only; this proves it.
 *
 * Exit code 1 when either gate fails, so CI enforces both.
 *
 * Usage: bench_telemetry_overhead [THREADS]   (default: ENA_THREADS/all)
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "core/dse.hh"
#include "telemetry/telemetry.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace ena;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * The sweep body with zero telemetry in the loop: same enumeration
 * order, same evaluator calls, results into per-index slots.
 */
std::vector<DsePoint>
plainSweep(const NodeEvaluator &eval, const DseGrid &grid,
           double budget_w)
{
    const std::size_t nf = grid.freqsGhz.size();
    const std::size_t nb = grid.bwsTbs.size();
    std::vector<DsePoint> points(grid.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        NodeConfig cfg;
        cfg.cus = grid.cus[i / (nf * nb)];
        cfg.freqGhz = grid.freqsGhz[(i / nb) % nf];
        cfg.bwTbs = grid.bwsTbs[i % nb];
        cfg.opts = PowerOptConfig::none();
        DsePoint &p = points[i];
        p.cfg = cfg;
        p.geomeanFlops = eval.geomeanFlops(cfg);
        p.meanBudgetPowerW = eval.meanBudgetPower(cfg);
        p.maxBudgetPowerW = eval.maxBudgetPower(cfg);
        p.feasible = p.maxBudgetPowerW <= budget_w;
    }
    return points;
}

bool
identicalPoints(const std::vector<DsePoint> &a,
                const std::vector<DsePoint> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].geomeanFlops != b[i].geomeanFlops ||
            a[i].meanBudgetPowerW != b[i].meanBudgetPowerW ||
            a[i].maxBudgetPowerW != b[i].maxBudgetPowerW ||
            a[i].feasible != b[i].feasible ||
            a[i].cfg.cus != b[i].cfg.cus ||
            a[i].cfg.freqGhz != b[i].cfg.freqGhz ||
            a[i].cfg.bwTbs != b[i].cfg.bwTbs)
            return false;
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int threads = argc > 1 ? std::atoi(argv[1])
                           : ThreadPool::defaultThreads();
    if (threads < 1)
        threads = 1;
    const int repeats = 9;
    const double gate_pct = 2.0;

    bench::banner("Telemetry overhead gates",
                  "Disabled-mode cost of the instrumented DSE sweep vs "
                  "an uninstrumented replica,\nand serial/parallel "
                  "bit-identity with tracing and metrics enabled.");

    const NodeEvaluator &eval = bench::evaluator();
    DseGrid grid = DseGrid::paperGrid();
    DesignSpaceExplorer dse(eval, grid, cal::nodePowerBudgetW);

    // A run under ENA_TRACE/ENA_METRICS would invalidate the
    // disabled-mode measurement; make the state explicit instead.
    telemetry::disableTracing();
    telemetry::disableMetrics();

    std::cout << "grid: " << grid.size()
              << " configurations; serial timing, min of " << repeats
              << " interleaved repeats\n\n";

    // ---- Gate 1: disabled-mode overhead (serial, interleaved) ------
    // Scheduling noise on a shared/1-core host can only inflate the
    // measured overhead, never hide real cost, so the gate takes the
    // best of up to 3 independent measurement attempts.
    ThreadPool::setGlobalThreads(1);
    double plain_best = 1e30, instr_best = 1e30;
    double overhead_pct = 1e30;
    std::vector<DsePoint> plain_pts, instr_pts;
    for (int attempt = 0; attempt < 3 && overhead_pct > gate_pct;
         ++attempt) {
        plain_best = instr_best = 1e30;
        for (int r = 0; r < repeats; ++r) {
            auto t0 = std::chrono::steady_clock::now();
            plain_pts = plainSweep(eval, grid, cal::nodePowerBudgetW);
            plain_best = std::min(plain_best, secondsSince(t0));

            t0 = std::chrono::steady_clock::now();
            instr_pts = dse.sweep(PowerOptConfig::none());
            instr_best = std::min(instr_best, secondsSince(t0));
        }
        overhead_pct = (instr_best / plain_best - 1.0) * 100.0;
    }

    TextTable t({"variant", "best ms", "overhead"});
    t.row().add("plain replica (no telemetry)")
        .add(plain_best * 1e3, "%.3f")
        .add("--");
    t.row().add("instrumented sweep, disabled")
        .add(instr_best * 1e3, "%.3f")
        .add(overhead_pct, "%+.2f%%");
    bench::show(t, "telemetry_overhead");

    if (!identicalPoints(plain_pts, instr_pts)) {
        std::cerr << "\nFAIL: instrumented sweep results differ from "
                     "the plain replica\n";
        return 1;
    }
    if (overhead_pct > gate_pct) {
        std::cerr << "\nFAIL: disabled-mode overhead " << overhead_pct
                  << "% > " << gate_pct << "% gate\n";
        return 1;
    }
    std::cout << "\ndisabled-overhead gate: " << overhead_pct << "% <= "
              << gate_pct << "% — ok\n";

    // ---- Gate 2: determinism with telemetry fully enabled ----------
    telemetry::enableTracing();   // in-memory, no file
    telemetry::enableMetrics();

    ThreadPool::setGlobalThreads(1);
    std::vector<DsePoint> serial = dse.sweep(PowerOptConfig::none());
    ThreadPool::setGlobalThreads(threads);
    std::vector<DsePoint> parallel = dse.sweep(PowerOptConfig::none());

    telemetry::disableTracing();
    telemetry::disableMetrics();
    telemetry::reset();
    ThreadPool::setGlobalThreads(0);

    if (!identicalPoints(serial, parallel)) {
        std::cerr << "FAIL: with tracing+metrics enabled, the parallel "
                     "sweep differs from the serial sweep\n";
        return 1;
    }
    std::cout << "determinism gate: tracing+metrics on, " << threads
              << "-thread sweep bit-identical to serial — ok\n";
    return 0;
}

/**
 * @file
 * Fig. 12: node power savings from each Section V-E optimization
 * technique applied individually and all together, per application, at
 * the best-mean configuration.
 */

#include <iostream>

#include "bench_util.hh"
#include "power/optimizations.hh"
#include "util/stats_math.hh"
#include "util/table.hh"

using namespace ena;

int
main()
{
    bench::banner("Figure 12",
                  "Power savings relative to no optimizations "
                  "(baseline already includes DVFS),\nat the best-mean "
                  "configuration " + bench::bestMean().label() + ".");

    const NodeEvaluator &eval = bench::evaluator();

    std::vector<std::string> headers = {"Application"};
    for (PowerOpt opt : allPowerOpts())
        headers.push_back(powerOptName(opt));
    TextTable t(headers);

    std::vector<std::vector<double>> columns(allPowerOpts().size());
    for (App app : allApps()) {
        EvalResult r = eval.evaluate(bench::bestMean(), app);
        auto savings = evaluateOptSavings(eval.powerModel(),
                                          bench::bestMean(),
                                          r.perf.activity);
        auto &row = t.row().add(appName(app));
        for (size_t i = 0; i < savings.size(); ++i) {
            row.add(savings[i].savingsFrac * 100.0, "%.1f%%");
            columns[i].push_back(savings[i].savingsFrac * 100.0);
        }
    }
    auto &mean_row = t.row().add("mean");
    for (const auto &col : columns)
        mean_row.add(mean(col), "%.1f%%");
    bench::show(t, "fig12_poweropt");

    std::cout << "\nPaper findings: mean savings of ~14% (NTC), 4.3% "
                 "(async CUs), 3.0% (async routers),\n1.6% (low-power "
                 "links), 1.7% (compression, LULESH benefits most); "
                 "13-27% all together.\n";
    return 0;
}

/**
 * @file
 * Table II: performance benefit of dynamic resource reconfiguration —
 * the best application-specific configuration (oracle) vs the static
 * best-mean configuration, without and with the Section V-E power
 * optimizations.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/dse.hh"
#include "util/table.hh"

using namespace ena;

int
main()
{
    const NodeEvaluator &eval = bench::evaluator();
    DseGrid grid = DseGrid::paperGrid();
    DesignSpaceExplorer dse(eval, grid, cal::nodePowerBudgetW);

    bench::banner("Table II",
                  "Performance benefit of dynamic resource "
                  "reconfiguration over the static\nbest-mean "
                  "configuration (sweep of " +
                      std::to_string(grid.size()) +
                      " configurations x 8 applications under the "
                      "160 W budget).");

    std::cout << "Best-mean configuration discovered: "
              << bench::bestMean().label() << "\n\n";

    TextTable t({"Application", "Best App-Specific Config (CUs/MHz/TBps)",
                 "Benefit w/o Power Opt (%)",
                 "Benefit w/ Power Opt (%)"});
    for (const TableIIRow &row : dse.tableII(bench::bestMean())) {
        t.row()
            .add(appName(row.app))
            .add(strformat("%d / %.0f / %.0f", row.bestConfig.cus,
                           row.bestConfig.freqGhz * 1000.0,
                           row.bestConfig.bwTbs))
            .add(row.benefitNoOptPct, "%.1f")
            .add(row.benefitWithOptPct, "%.1f");
    }
    bench::show(t, "table2_dse");

    std::cout << "\nPaper findings: best-mean is 320 CUs / 1000 MHz / "
                 "3 TB/s; per-application oracle\nreconfiguration gains "
                 "up to ~54% — memory-intensive kernels back off "
                 "CU-count x\nfrequency to escape contention, compute-"
                 "intensive kernels trade bandwidth for\ncompute, and "
                 "the power optimizations enlarge every benefit.\n";
    return 0;
}

/**
 * @file
 * Gate for the fault-tolerant execution substrate. Three invariants,
 * each fatal to the exit code:
 *
 *  (a) a fault-injected parallel DSE sweep whose tasks are retried is
 *      bit-identical to a fault-free serial sweep (transient faults
 *      are absorbed, never observable in results);
 *  (b) a sweep killed mid-run and resumed from its journal reproduces
 *      the uninterrupted result table bit-identically, including when
 *      the kill left a partial trailing record;
 *  (c) a sweep over a grid containing one permanently-invalid config
 *      completes, quarantines exactly that config with its diagnostic,
 *      and reports every other point unchanged.
 *
 * Usage: bench_fault_tolerance [THREADS]   (default: ENA_THREADS / all)
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/calibration.hh"
#include "core/dse.hh"
#include "core/sweep_journal.hh"
#include "util/fault_inject.hh"
#include "util/thread_pool.hh"

using namespace ena;

namespace {

int failures = 0;

void
check(bool cond, const std::string &what)
{
    if (cond) {
        std::cout << "  ok: " << what << "\n";
    } else {
        std::cerr << "  FAIL: " << what << "\n";
        ++failures;
    }
}

bool
identical(const std::vector<DsePoint> &a, const std::vector<DsePoint> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const DsePoint &p = a[i];
        const DsePoint &q = b[i];
        if (p.cfg.cus != q.cfg.cus || p.cfg.freqGhz != q.cfg.freqGhz ||
            p.cfg.bwTbs != q.cfg.bwTbs ||
            p.geomeanFlops != q.geomeanFlops ||
            p.meanBudgetPowerW != q.meanBudgetPowerW ||
            p.maxBudgetPowerW != q.maxBudgetPowerW ||
            p.feasible != q.feasible || p.ok != q.ok ||
            p.error != q.error)
            return false;
    }
    return true;
}

DseGrid
benchGrid()
{
    DseGrid g;
    for (int c = 192; c <= 384; c += 32)
        g.cus.push_back(c);
    g.freqsGhz = {0.7, 1.0, 1.3};
    g.bwsTbs = {1.0, 3.0, 5.0};
    return g;
}

std::unique_ptr<SweepJournal>
mustOpen(const std::string &path)
{
    auto j = SweepJournal::open(path);
    if (!j.ok()) {
        std::cerr << "cannot open journal " << path << ": "
                  << j.status().toString() << "\n";
        std::exit(1);
    }
    return std::move(j).value();
}

/**
 * Reproduce what a kill -9 mid-sweep leaves behind: the first
 * @p keep_lines intact records plus half of the next one, with no
 * trailing newline.
 */
void
truncateMidRecord(const std::string &src, const std::string &dst,
                  std::size_t keep_lines)
{
    std::ifstream in(src);
    std::ofstream out(dst, std::ios::trunc);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line)) {
        if (n < keep_lines)
            out << line << "\n";
        else {
            out << line.substr(0, line.size() / 2);
            break;
        }
        ++n;
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int threads = argc > 1 ? std::atoi(argv[1])
                           : ThreadPool::defaultThreads();
    if (threads < 1)
        threads = 1;

    bench::banner("Fault-tolerant sweep execution",
                  "Injected transient faults + retries, kill/resume via "
                  "the sweep journal, and\nquarantine of permanently "
                  "failing configs — all bit-identical to clean runs.");

    const NodeEvaluator &eval = bench::evaluator();
    const DseGrid grid = benchGrid();
    DesignSpaceExplorer dse(eval, grid, cal::nodePowerBudgetW);
    const PowerOptConfig opts = PowerOptConfig::none();

    std::cout << "grid: " << grid.size() << " configurations; "
              << threads << " thread(s)\n";

    // ---- (a) injected transient faults + retries are invisible -------
    std::cout << "\n[a] fault injection + retry vs fault-free serial\n";
    fault_inject::clearFaultPlan();
    ThreadPool::setGlobalThreads(1);
    const std::vector<DsePoint> serial = dse.sweep(opts, nullptr);

    ThreadPool::setGlobalThreads(threads);
    ThreadPool::global().setRetryPolicy(RetryPolicy::attempts(4));
    FaultPlan plan;
    plan.rate = 0.3;
    plan.seed = 12345;
    plan.faultsPerTask = 2;   // transient: absorbed within 3 attempts
    const std::uint64_t before = fault_inject::faultsInjected();
    fault_inject::setFaultPlan(plan);
    const std::vector<DsePoint> faulted = dse.sweep(opts, nullptr);
    fault_inject::clearFaultPlan();
    const std::uint64_t injected = fault_inject::faultsInjected() - before;

    std::cout << "  injected " << injected << " fault(s) across "
              << grid.size() << " tasks\n";
    check(injected > 0, "fault plan actually fired");
    check(identical(serial, faulted),
          "fault-injected parallel sweep is bit-identical to fault-free "
          "serial sweep");

    // ---- (b) kill mid-sweep, resume from the journal ------------------
    std::cout << "\n[b] journal checkpoint / kill / resume\n";
    const std::string jpath = "bench_fault_tolerance.journal";
    const std::string jcut = jpath + ".truncated";
    std::remove(jpath.c_str());
    std::remove(jcut.c_str());

    const std::vector<DsePoint> reference = dse.sweep(opts, nullptr);

    {
        auto j = mustOpen(jpath);
        const std::vector<DsePoint> journaled = dse.sweep(opts, j.get());
        check(identical(reference, journaled),
              "journaled sweep matches unjournaled sweep");
        check(j->appendedRecords() == grid.size(),
              "every grid point was journaled");
    }
    {
        // Replay: every point decodes from disk, nothing recomputes.
        auto j = mustOpen(jpath);
        check(j->loadedRecords() == grid.size(),
              "journal reloads every record intact");
        const std::vector<DsePoint> replay = dse.sweep(opts, j.get());
        check(identical(reference, replay),
              "fully-journaled replay round-trips bit-identically");
        check(j->appendedRecords() == 0, "replay recomputed nothing");
    }
    {
        // Kill simulation: keep 1/3 of the records plus a torn line.
        truncateMidRecord(jpath, jcut, grid.size() / 3);
        auto j = mustOpen(jcut);
        check(j->loadedRecords() == grid.size() / 3,
              "truncated journal keeps only the intact records");
        check(j->droppedRecords() == 1,
              "the torn trailing record is dropped");
        const std::vector<DsePoint> resumed = dse.sweep(opts, j.get());
        check(identical(reference, resumed),
              "resumed sweep reproduces the uninterrupted table "
              "bit-identically");
        check(j->appendedRecords() ==
                  grid.size() - grid.size() / 3,
              "resume recomputed exactly the missing points");
    }
    {
        auto j = mustOpen(jcut);
        check(j->loadedRecords() == grid.size(),
              "journal is complete after the resumed run");
    }
    std::remove(jpath.c_str());
    std::remove(jcut.c_str());

    // ---- (c) permanent failure -> quarantine, not death ---------------
    std::cout << "\n[c] quarantine of a permanently failing config\n";
    DseGrid clean;
    for (int c = 192; c <= 320; c += 32)
        clean.cus.push_back(c);
    clean.freqsGhz = {1.0};
    clean.bwsTbs = {3.0};
    DseGrid bad = clean;
    bad.cus.push_back(-32);   // fails NodeConfig::tryValidate forever

    DesignSpaceExplorer dse_clean(eval, clean, cal::nodePowerBudgetW);
    DesignSpaceExplorer dse_bad(eval, bad, cal::nodePowerBudgetW);
    const std::vector<DsePoint> ok_pts = dse_clean.sweep(opts, nullptr);
    const std::vector<DsePoint> bad_pts = dse_bad.sweep(opts, nullptr);

    std::size_t quarantined = 0;
    for (const DsePoint &p : bad_pts)
        if (!p.ok)
            ++quarantined;
    check(bad_pts.size() == clean.size() + 1,
          "sweep over the poisoned grid completed");
    check(quarantined == 1, "exactly one grid point was quarantined");
    const DsePoint &q = bad_pts.back();
    check(!q.ok && q.cfg.cus == -32,
          "the quarantined point is the invalid config");
    check(q.error.find("bad CU count") != std::string::npos,
          "quarantine carries the validation diagnostic (got '" +
              q.error + "')");
    check(!q.feasible, "a quarantined point is never feasible");
    check(identical(ok_pts, {bad_pts.begin(),
                             bad_pts.begin() + clean.size()}),
          "every healthy point is unchanged by the quarantine");

    if (failures) {
        std::cerr << "\nFAIL: " << failures << " invariant(s) violated\n";
        return 1;
    }
    std::cout << "\nall fault-tolerance invariants hold\n";
    return 0;
}

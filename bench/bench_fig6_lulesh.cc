/**
 * @file
 * Fig. 6: LULESH performance vs ops-per-byte (memory-intensive: rises,
 * then degrades as excess concurrency thrashes the memory system).
 */

#include "bench_opb_sweep.hh"

int
main()
{
    return ena::bench::runOpbSweep(ena::App::LULESH, "Figure 6");
}

/**
 * @file
 * Gates + throughput for the task-graph scheduling layer. Three
 * bit-identity gates (fatal to the exit code):
 *
 *  (a) zero-comm reduction: a DAG whose edges carry zero bytes, given
 *      at least as many nodes as tasks, must produce a makespan equal
 *      to the analytic critical path bit-for-bit under every scheduler;
 *  (b) serial-vs-parallel: a TaskGraphStudy sweep at one thread must be
 *      bit-identical, field for field, to the same sweep at many;
 *  (c) local-vs-server: the taskgraph_eval op through a live ena-server
 *      over a Unix socket must reproduce the local schedule's doubles
 *      exactly (the %.17g wire format round-trips them).
 *
 * Plus a throughput measurement (schedules/sec, tasks/sec) that is
 * warn-only: a slow machine prints a warning, never fails the gate.
 *
 * Usage: bench_taskgraph [REPS] [--json <path>]
 *        (default 200 scheduleDag calls per policy for throughput)
 */

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.hh"
#include "cluster/cluster_config_io.hh"
#include "common/node_config_io.hh"
#include "server/client.hh"
#include "server/server.hh"
#include "taskgraph/task_dag_io.hh"
#include "taskgraph/taskgraph_study.hh"
#include "util/thread_pool.hh"

using namespace ena;

namespace {

int failures = 0;

void
check(bool cond, const std::string &what)
{
    if (cond) {
        std::cout << "  ok: " << what << "\n";
    } else {
        std::cerr << "  FAIL: " << what << "\n";
        ++failures;
    }
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

bool
samePoint(const TaskGraphSweepPoint &a, const TaskGraphSweepPoint &b)
{
    return a.scheduler == b.scheduler && a.topology == b.topology &&
           a.nodes == b.nodes &&
           doubleBits(a.makespanSeconds) == doubleBits(b.makespanSeconds) &&
           doubleBits(a.criticalPathSeconds) ==
               doubleBits(b.criticalPathSeconds) &&
           doubleBits(a.speedup) == doubleBits(b.speedup) &&
           doubleBits(a.efficiency) == doubleBits(b.efficiency) &&
           doubleBits(a.utilization) == doubleBits(b.utilization) &&
           doubleBits(a.commSeconds) == doubleBits(b.commSeconds) &&
           a.edgesCosted == b.edgesCosted && a.ok == b.ok &&
           a.error == b.error;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int reps = 200;
    if (argc > 1 && argv[1][0] != '-')
        reps = std::atoi(argv[1]);
    if (reps < 1)
        reps = 1;

    bench::banner("the task-graph scheduling layer",
                  "Zero-comm analytic reduction, serial-vs-parallel "
                  "sweep identity, local-vs-server identity");

    const NodeConfig node = NodeConfig::bestMean();
    ClusterConfig cluster;
    cluster.nodes = 256;
    InterNodeNetwork net(cluster);

    // --- (a) zero-comm reduction: makespan == critical path bitwise.
    std::cout << "zero-comm reduction gate (wavefront 12x12, 0-byte "
                 "edges, nodes >= tasks):\n";
    TaskDag zc = TaskDag::wavefront(12, 64e9, 0.0, App::SNAP);
    DagCostModel zcost =
        DagCostModel::build(zc, bench::evaluator(), node, net);
    const double cp = criticalPathSeconds(zc, zcost);
    for (DagScheduler s : allDagSchedulers()) {
        Schedule sch =
            scheduleDag(zc, zcost, s, static_cast<int>(zc.size()));
        check(doubleBits(sch.makespanSeconds) == doubleBits(cp),
              dagSchedulerName(s) +
                  " makespan reduces bit-identically to the "
                  "analytic critical path");
        check(sch.totalCommSeconds == 0.0 && sch.edgesCosted == 0,
              dagSchedulerName(s) + " charges no communication");
    }

    // --- (b) serial-vs-parallel sweep identity.
    std::cout << "\nserial-vs-parallel sweep gate:\n";
    TaskDag dag =
        TaskDag::randomLayered(12, 10, 0.35, 7, 64e9, 16e6, App::CoMD);
    const std::vector<ClusterTopology> topologies = {
        ClusterTopology::FatTree, ClusterTopology::Dragonfly,
        ClusterTopology::Torus3D};
    const std::vector<int> counts = {8, 32, 128, 256};
    TaskGraphStudy study(bench::evaluator(), cluster);

    ThreadPool::setGlobalThreads(1);
    auto serial =
        study.sweep(dag, node, allDagSchedulers(), topologies, counts);
    ThreadPool::setGlobalThreads(0);  // back to hardware concurrency
    auto t0 = std::chrono::steady_clock::now();
    auto parallel =
        study.sweep(dag, node, allDagSchedulers(), topologies, counts);
    const double sweepSec = secondsSince(t0);

    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i)
        identical = samePoint(serial[i], parallel[i]);
    check(identical,
          "parallel sweep is bit-identical to the serial sweep (" +
              std::to_string(serial.size()) + " cells)");

    // --- (c) local-vs-server identity through taskgraph_eval.
    std::cout << "\nlocal-vs-server gate (taskgraph_eval):\n";
    ServerOptions opts;
    opts.endpoint = Endpoint::unixPath(
        "/tmp/ena-bench-" + std::to_string(::getpid()) + ".sock");
    opts.workers = 4;
    auto server = EvalServer::start(opts);
    if (!server.ok()) {
        std::cerr << "cannot start server: "
                  << server.status().toString() << "\n";
        return 1;
    }
    ClientOptions copts;
    copts.endpoint = (*server)->endpoint();
    ServerClient client(copts);

    TaskGraphSpec spec;
    spec.shape = DagShape::StencilHalo;
    spec.app = App::HPGMG;
    spec.size = 16;
    spec.depth = 12;
    spec.taskGflops = 48.0;
    spec.edgeMb = 8.0;
    const std::string cfgText = nodeConfigToConfig(node).toString() +
                                clusterConfigToConfig(cluster).toString() +
                                taskGraphSpecToConfig(spec).toString();
    TaskDag sdag = spec.build();
    DagCostModel scost =
        DagCostModel::build(sdag, bench::evaluator(), node, net);

    bool serverIdentical = true;
    for (DagScheduler s : allDagSchedulers()) {
        Schedule local = scheduleDag(sdag, scost, s, cluster.nodes);
        wire::JsonValue params = wire::JsonValue::object();
        params.set("config", cfgText);
        params.set("scheduler", dagSchedulerName(s));
        auto r = client.call("taskgraph_eval", std::move(params));
        if (!r.ok()) {
            std::cerr << "taskgraph_eval failed: "
                      << r.status().toString() << "\n";
            return 1;
        }
        auto makespan = wire::tryGetNumber(*r, "makespan_seconds");
        auto critpath = wire::tryGetNumber(*r, "critical_path_seconds");
        auto comm = wire::tryGetNumber(*r, "comm_seconds");
        auto comp = wire::tryGetNumber(*r, "total_task_seconds");
        auto edges = wire::tryGetNumber(*r, "edges_costed");
        if (!makespan.ok() || !critpath.ok() || !comm.ok() ||
            !comp.ok() || !edges.ok()) {
            std::cerr << "taskgraph_eval reply is missing fields\n";
            return 1;
        }
        const bool same =
            doubleBits(*makespan) == doubleBits(local.makespanSeconds) &&
            doubleBits(*critpath) ==
                doubleBits(criticalPathSeconds(sdag, scost)) &&
            doubleBits(*comm) == doubleBits(local.totalCommSeconds) &&
            doubleBits(*comp) == doubleBits(local.totalCompSeconds) &&
            static_cast<std::size_t>(*edges) == local.edgesCosted;
        check(same, dagSchedulerName(s) +
                        " schedule through the server is bit-identical "
                        "to the local schedule");
        serverIdentical = serverIdentical && same;
    }
    (*server)->stop();

    // --- throughput (warn-only): schedules/sec on a mid-size DAG.
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
        for (DagScheduler s : allDagSchedulers())
            scheduleDag(dag, DagCostModel::build(dag, bench::evaluator(),
                                                 node, net),
                        s, cluster.nodes);
    }
    const double schedSec = secondsSince(t0);
    const int calls = reps * static_cast<int>(allDagSchedulers().size());
    const double schedulesPerSec = calls / schedSec;
    const double tasksPerSec =
        schedulesPerSec * static_cast<double>(dag.size());

    std::cout << "\nthroughput (" << dag.label() << "):"
              << "\n  schedules/sec:  " << schedulesPerSec
              << "\n  tasks/sec:      " << tasksPerSec
              << "\n  sweep cells/sec: "
              << static_cast<double>(parallel.size()) / sweepSec << "\n";
    if (schedulesPerSec < 50.0)
        std::cerr << "  warn: scheduling throughput below 50/sec "
                     "(slow machine?) — not a gate failure\n";

    std::string jsonPath = bench::jsonPathFromArgs(argc, argv);
    if (!jsonPath.empty()) {
        bench::JsonReport report("taskgraph");
        report.metric("reps", reps);
        report.metric("dag_tasks", static_cast<double>(dag.size()));
        report.metric("dag_edges", static_cast<double>(dag.numEdges()));
        report.metric("schedules_per_sec", schedulesPerSec);
        report.metric("tasks_per_sec", tasksPerSec);
        report.metric("sweep_cells", static_cast<double>(parallel.size()));
        report.metric("sweep_cells_per_sec",
                      static_cast<double>(parallel.size()) / sweepSec);
        report.metric("zero_comm_critical_path_s", cp);
        report.metric("serial_parallel_identical", identical ? 1.0 : 0.0);
        report.metric("server_identical", serverIdentical ? 1.0 : 0.0);
        report.context("dag", dag.label());
        report.context("endpoint", opts.endpoint.toString());
        if (!report.writeTo(jsonPath))
            return 1;
    }

    if (failures) {
        std::cerr << "\n" << failures << " check(s) FAILED\n";
        return 1;
    }
    std::cout << "\nall checks passed\n";
    return 0;
}

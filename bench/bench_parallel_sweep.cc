/**
 * @file
 * Serial-vs-parallel wall time of the paper's hottest loops: the full
 * DSE grid sweep and the Table II per-application search, on the
 * ThreadPool substrate every study now uses.
 *
 * Also cross-checks that the parallel results are element-for-element
 * identical to the single-threaded run (exit code 1 on mismatch), so
 * the CI smoke job exercises the determinism guarantee end-to-end.
 *
 * Usage: bench_parallel_sweep [THREADS] [--json <path>]
 *   (THREADS default: ENA_THREADS / all)
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "core/dse.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace ena;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct DseOutputs
{
    std::vector<DsePoint> points;
    std::vector<TableIIRow> rows;
    double sweepSec = 0.0;
    double tableSec = 0.0;
};

DseOutputs
runAll(const DesignSpaceExplorer &dse, const NodeConfig &best_mean,
       int repeats)
{
    DseOutputs out;
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r)
        out.points = dse.sweep(PowerOptConfig::none());
    out.sweepSec = secondsSince(t0) / repeats;

    t0 = std::chrono::steady_clock::now();
    out.rows = dse.tableII(best_mean);
    out.tableSec = secondsSince(t0);
    return out;
}

bool
identical(const DseOutputs &a, const DseOutputs &b)
{
    if (a.points.size() != b.points.size() ||
        a.rows.size() != b.rows.size())
        return false;
    for (size_t i = 0; i < a.points.size(); ++i) {
        const DsePoint &p = a.points[i];
        const DsePoint &q = b.points[i];
        if (p.geomeanFlops != q.geomeanFlops ||
            p.meanBudgetPowerW != q.meanBudgetPowerW ||
            p.maxBudgetPowerW != q.maxBudgetPowerW ||
            p.feasible != q.feasible || p.cfg.cus != q.cfg.cus ||
            p.cfg.freqGhz != q.cfg.freqGhz ||
            p.cfg.bwTbs != q.cfg.bwTbs)
            return false;
    }
    for (size_t i = 0; i < a.rows.size(); ++i) {
        const TableIIRow &p = a.rows[i];
        const TableIIRow &q = b.rows[i];
        if (p.app != q.app ||
            p.benefitNoOptPct != q.benefitNoOptPct ||
            p.benefitWithOptPct != q.benefitWithOptPct ||
            p.bestConfig.cus != q.bestConfig.cus ||
            p.bestConfigOpt.cus != q.bestConfigOpt.cus)
            return false;
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::string json_path = bench::jsonPathFromArgs(argc, argv);
    int threads = (argc > 1 && argv[1][0] != '-')
                      ? std::atoi(argv[1])
                      : ThreadPool::defaultThreads();
    if (threads < 1)
        threads = 1;
    const int repeats = 5;

    bench::banner("Parallel sweep engine",
                  "Wall time of the paper DSE grid (sweep + Table II "
                  "search) serial vs parallel,\nand a bitwise "
                  "serial/parallel equivalence check.");

    const NodeEvaluator &eval = bench::evaluator();
    DseGrid grid = DseGrid::paperGrid();
    DesignSpaceExplorer dse(eval, grid, cal::nodePowerBudgetW);
    const NodeConfig best_mean = bench::bestMean();

    std::cout << "grid: " << grid.size() << " configurations x "
              << allApps().size() << " applications; hardware threads: "
              << std::thread::hardware_concurrency()
              << "; parallel run uses " << threads << " thread(s)\n\n";

    ThreadPool::setGlobalThreads(1);
    DseOutputs serial = runAll(dse, best_mean, repeats);

    ThreadPool::setGlobalThreads(threads);
    DseOutputs parallel = runAll(dse, best_mean, repeats);

    double sweep_speedup = serial.sweepSec / parallel.sweepSec;
    double table_speedup = serial.tableSec / parallel.tableSec;

    TextTable t({"phase", "serial ms", "parallel ms", "speedup"});
    t.row()
        .add("full-grid sweep")
        .add(serial.sweepSec * 1e3, "%.2f")
        .add(parallel.sweepSec * 1e3, "%.2f")
        .add(sweep_speedup, "%.2fx");
    t.row()
        .add("Table II search")
        .add(serial.tableSec * 1e3, "%.2f")
        .add(parallel.tableSec * 1e3, "%.2f")
        .add(table_speedup, "%.2fx");
    bench::show(t, "parallel_sweep");

    const bool bit_identical = identical(serial, parallel);
    if (!json_path.empty()) {
        bench::JsonReport report("parallel_sweep");
        report.metric("grid_configs",
                      static_cast<double>(grid.size()));
        report.metric("apps", static_cast<double>(allApps().size()));
        report.metric("threads", threads);
        report.metric("repeats", repeats);
        report.metric("sweep_serial_ms", serial.sweepSec * 1e3);
        report.metric("sweep_parallel_ms", parallel.sweepSec * 1e3);
        report.metric("sweep_speedup", sweep_speedup);
        report.metric("tableII_serial_ms", serial.tableSec * 1e3);
        report.metric("tableII_parallel_ms", parallel.tableSec * 1e3);
        report.metric("tableII_speedup", table_speedup);
        report.metric("bit_identical", bit_identical ? 1.0 : 0.0);
        if (!report.writeTo(json_path))
            return 1;
    }

    if (!bit_identical) {
        std::cerr << "\nFAIL: parallel results differ from serial "
                     "results\n";
        return 1;
    }
    std::cout << "\ndeterminism: parallel output is element-for-element "
                 "identical to serial output\n";

    // The speedup gate only applies where parallelism is physically
    // available (acceptance: >= 2x with 4+ hardware threads).
    if (std::thread::hardware_concurrency() >= 4 && threads >= 4) {
        if (sweep_speedup < 2.0) {
            std::cerr << "FAIL: sweep speedup " << sweep_speedup
                      << "x < 2x with " << threads << " threads\n";
            return 1;
        }
        std::cout << "speedup gate: " << sweep_speedup
                  << "x >= 2x with " << threads << " threads — ok\n";
    } else {
        std::cout << "speedup gate skipped (need 4+ hardware threads; "
                     "this host has "
                  << std::thread::hardware_concurrency() << ")\n";
    }
    return 0;
}

/**
 * @file
 * Fig. 9: impact of the external-memory configuration on total ENA
 * power — DRAM-only baseline vs the hybrid configuration that replaces
 * half the external DRAM with NVM (paper Section V-C).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/studies.hh"
#include "util/table.hh"

using namespace ena;

namespace {

void
printConfig(const std::vector<ExtMemBar> &bars, const std::string &name,
            const std::string &slug)
{
    std::cout << name << ":\n";
    TextTable t({"Application", "SerDes (S)", "ExtMem (S)", "SerDes (D)",
                 "ExtMem (D)", "CUs (D)", "Other", "Total (W)"});
    for (const ExtMemBar &b : bars) {
        if (b.configName != name)
            continue;
        const PowerBreakdown &p = b.power;
        t.row()
            .add(appName(b.app))
            .add(p.serdesStatic, "%.1f")
            .add(p.extMemStatic, "%.1f")
            .add(p.serdesDyn, "%.1f")
            .add(p.extMemDyn, "%.1f")
            .add(p.cuDyn, "%.1f")
            .add(p.other(), "%.1f")
            .add(p.total(), "%.1f");
    }
    bench::show(t, slug);
    std::cout << "\n";
}

} // anonymous namespace

int
main()
{
    bench::banner("Figure 9",
                  "Impact of external-memory configurations on ENA "
                  "power at the best-mean\nconfiguration " +
                      bench::bestMean().label() +
                      " (stacked components as in the paper).");

    ExternalMemoryStudy study(bench::evaluator(), bench::bestMean());
    auto bars = study.run();

    printConfig(bars, "3D DRAM only", "fig9_dram_only");
    printConfig(bars, "3D DRAM + NVM", "fig9_hybrid");

    std::cout << "Paper findings: external power spans ~40-70 W; "
                 "DRAM-only static power is ~27 W DRAM\n+ ~10 W SerDes; "
                 "the hybrid halves external static power but NVM's "
                 "access energy raises\ntotal power (up to ~2x) for "
                 "memory-intensive kernels.\n";
    return 0;
}

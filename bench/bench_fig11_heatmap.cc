/**
 * @file
 * Fig. 11: heat map of the bottom-most in-package 3D-DRAM die for SNAP
 * at the best-mean configuration vs the best workload-specific
 * configuration — hot spots are caused by GPU CUs on the die below.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/dse.hh"
#include "core/thermal_study.hh"

using namespace ena;

int
main()
{
    bench::banner("Figure 11",
                  "Heat map of the bottom-most in-package 3D-DRAM die "
                  "for SNAP.");

    const NodeEvaluator &eval = bench::evaluator();
    DesignSpaceExplorer dse(eval, DseGrid::paperGrid(),
                            cal::nodePowerBudgetW);
    AppBest best = dse.findBestForApp(App::SNAP, PowerOptConfig::none());

    ThermalStudy thermal(eval);

    std::cout << "Best-mean configuration ("
              << bench::bestMean().label() << "):\n";
    std::cout << thermal.heatMap(bench::bestMean(), App::SNAP) << "\n";

    std::cout << "Best workload-specific configuration ("
              << best.cfg.label() << "):\n";
    std::cout << thermal.heatMap(best.cfg, App::SNAP) << "\n";

    std::cout << "Paper finding: the CU tiles of the GPU chiplet below "
                 "show through as hot/warm spots\nin the bottom DRAM "
                 "die; the workload-specific configuration spreads "
                 "power differently.\n";
    return 0;
}

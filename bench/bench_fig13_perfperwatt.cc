/**
 * @file
 * Fig. 13: performance-per-watt improvement when the power
 * optimizations are enabled and the best-mean configuration is
 * re-chosen under the freed budget (paper: 320/1000/3 without ->
 * 288/1100/3 with optimizations).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/studies.hh"
#include "util/table.hh"

using namespace ena;

int
main()
{
    const NodeEvaluator &eval = bench::evaluator();
    NodeConfig base = bench::bestMean();
    NodeConfig opt = optimizedBestMean(eval);

    bench::banner("Figure 13",
                  "Energy-efficiency benefit from the power "
                  "optimizations: optimized best-mean\nconfiguration " +
                      opt.label() + " vs baseline " + base.label() +
                      ".");

    PerfPerWattStudy study(eval, base, opt);

    TextTable t({"Application", "baseline GF/W", "optimized GF/W",
                 "improvement (%)"});
    for (const PerfPerWattRow &r : study.run()) {
        t.row()
            .add(appName(r.app))
            .add(r.basePerfPerWatt / 1e9, "%.1f")
            .add(r.optPerfPerWatt / 1e9, "%.1f")
            .add(r.improvementPct, "%.1f");
    }
    bench::show(t, "fig13_perfperwatt");

    std::cout << "\nPaper findings: the optimizations move the "
                 "best-mean configuration to fewer-CU/\nhigher-"
                 "frequency or higher-bandwidth points and improve "
                 "perf/W by up to ~45%,\nwith different kernels "
                 "benefiting differently.\n";
    return 0;
}

/**
 * @file
 * Throughput of the batched evaluation path (PR 6 tentpole): scalar
 * NodeEvaluator::evaluate vs NodeEvaluator::evaluateBatchAll on the
 * paper's Table II grid, serial and across the ThreadPool.
 *
 * The scalar path is the reference oracle: the bench recomputes every
 * grid point's aggregates (geomean flops, mean/max budget power over
 * all Table I applications) with per-point evaluate() calls and
 * requires the batched results — serial, parallel, and the full
 * DesignSpaceExplorer::sweep built on them — to be bit-for-bit
 * identical. Any mismatch is fatal (exit 1); that is the CI gate.
 *
 * Wall-clock numbers (configs/sec and speedups) are reported and
 * written to the `--json` artifact but only warn by default, since
 * shared CI runners make timing noisy; `--strict` escalates the
 * >= 10x steady-state speedup target (warm-memo parallel sweep vs
 * serial scalar, 4+ hardware threads) to a failure for local perf
 * work.
 *
 * Usage: bench_batch_eval [--json <path>] [--strict]
 */

#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "core/dse.hh"
#include "core/eval_memo.hh"
#include "util/stats_math.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace ena;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Per-config aggregates over all apps, in grid-enumeration order. */
struct Aggregates
{
    std::vector<double> geomeanFlops;
    std::vector<double> meanBudgetPowerW;
    std::vector<double> maxBudgetPowerW;
};

/** The grid flattened row-major (cus outer, freq, bw inner) — the
 *  same enumeration order DesignSpaceExplorer::configAt uses. */
std::vector<NodeConfig>
flatten(const DseGrid &grid)
{
    std::vector<NodeConfig> cfgs;
    cfgs.reserve(grid.size());
    for (int cu : grid.cus) {
        for (double f : grid.freqsGhz) {
            for (double bw : grid.bwsTbs) {
                NodeConfig cfg;
                cfg.cus = cu;
                cfg.freqGhz = f;
                cfg.bwTbs = bw;
                cfg.opts = PowerOptConfig::none();
                cfgs.push_back(cfg);
            }
        }
    }
    return cfgs;
}

/** Reference oracle: per-point scalar evaluate(), same fold order as
 *  NodeEvaluator::evaluateBatchAll. */
Aggregates
scalarOracle(const NodeEvaluator &eval,
             const std::vector<NodeConfig> &cfgs)
{
    const std::vector<App> &apps = allApps();
    Aggregates a;
    a.geomeanFlops.resize(cfgs.size());
    a.meanBudgetPowerW.resize(cfgs.size());
    a.maxBudgetPowerW.resize(cfgs.size());
    std::vector<double> flops(apps.size());
    std::vector<double> budget(apps.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        for (std::size_t k = 0; k < apps.size(); ++k) {
            EvalResult r = eval.evaluate(cfgs[i], apps[k]);
            flops[k] = r.perf.flops;
            budget[k] = r.power.budgetPower();
        }
        a.geomeanFlops[i] = geomean(flops);
        a.meanBudgetPowerW[i] = mean(budget);
        double worst = 0.0;
        for (double w : budget)
            worst = std::max(worst, w);
        a.maxBudgetPowerW[i] = worst;
    }
    return a;
}

/** One whole-grid batched pass (serial path: a single batch). */
Aggregates
batchSerial(const NodeEvaluator &eval, const NodeConfigBatch &batch)
{
    BatchAggregates r = eval.evaluateBatchAll(batch, nullptr);
    return {std::move(r.geomeanFlops), std::move(r.meanBudgetPowerW),
            std::move(r.maxBudgetPowerW)};
}

/** Chunked parallel pass with a shared memo cache — the same shape
 *  DesignSpaceExplorer::sweep uses (chunks become batches). */
Aggregates
batchParallel(const NodeEvaluator &eval,
              const std::vector<NodeConfig> &cfgs, EvalMemoCache *memo)
{
    const std::size_t n = cfgs.size();
    Aggregates a;
    a.geomeanFlops.resize(n);
    a.meanBudgetPowerW.resize(n);
    a.maxBudgetPowerW.resize(n);

    const std::size_t chunk = 64;
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    ThreadPool::global().parallelFor(num_chunks, [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        NodeConfigBatch b;
        b.base = cfgs[begin];
        b.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i)
            b.push(cfgs[i].cus, cfgs[i].freqGhz, cfgs[i].bwTbs);
        BatchAggregates r = eval.evaluateBatchAll(b, memo);
        for (std::size_t i = begin; i < end; ++i) {
            a.geomeanFlops[i] = r.geomeanFlops[i - begin];
            a.meanBudgetPowerW[i] = r.meanBudgetPowerW[i - begin];
            a.maxBudgetPowerW[i] = r.maxBudgetPowerW[i - begin];
        }
    });
    return a;
}

bool
identical(const Aggregates &a, const Aggregates &b, const char *what)
{
    if (a.geomeanFlops.size() != b.geomeanFlops.size()) {
        std::cerr << "FAIL: " << what << ": size mismatch\n";
        return false;
    }
    for (std::size_t i = 0; i < a.geomeanFlops.size(); ++i) {
        if (a.geomeanFlops[i] != b.geomeanFlops[i] ||
            a.meanBudgetPowerW[i] != b.meanBudgetPowerW[i] ||
            a.maxBudgetPowerW[i] != b.maxBudgetPowerW[i]) {
            std::cerr << "FAIL: " << what << ": point " << i
                      << " differs from the scalar oracle\n";
            return false;
        }
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::string json_path = bench::jsonPathFromArgs(argc, argv);
    const bool strict = bench::hasFlag(argc, argv, "--strict");
    int threads = ThreadPool::defaultThreads();
    if (threads < 1)
        threads = 1;
    const int repeats = 5;

    bench::banner("Batched evaluation engine",
                  "configs/sec of the scalar vs batched NodeEvaluator "
                  "paths on the Table II grid,\nwith a bitwise "
                  "scalar/batch equivalence gate.");

    const NodeEvaluator &eval = bench::evaluator();
    DseGrid grid = DseGrid::paperGrid();
    const std::vector<NodeConfig> cfgs = flatten(grid);
    NodeConfigBatch whole =
        NodeConfigBatch::fromAxes(cfgs.front(), grid.cus,
                                  grid.freqsGhz, grid.bwsTbs);

    std::cout << "grid: " << grid.size() << " configurations x "
              << allApps().size() << " applications; hardware threads: "
              << std::thread::hardware_concurrency()
              << "; parallel run uses " << threads << " thread(s)\n\n";

    // Scalar oracle (serial by construction: plain per-point loop).
    ThreadPool::setGlobalThreads(1);
    auto t0 = std::chrono::steady_clock::now();
    Aggregates oracle;
    for (int r = 0; r < repeats; ++r)
        oracle = scalarOracle(eval, cfgs);
    const double scalar_sec = secondsSince(t0) / repeats;

    // Batched, still single-threaded, no memo: the SoA + shared-term
    // speedup alone.
    t0 = std::chrono::steady_clock::now();
    Aggregates serial_batch;
    for (int r = 0; r < repeats; ++r)
        serial_batch = batchSerial(eval, whole);
    const double batch_serial_sec = secondsSince(t0) / repeats;

    // Batched across the pool with a sweep-level memo cache — the
    // production sweep shape. The cold pass pays every memo insert; a
    // fresh cache per repeat keeps that timing honest.
    ThreadPool::setGlobalThreads(threads);
    Aggregates parallel_batch;
    std::uint64_t memo_hits = 0, memo_misses = 0;
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) {
        EvalMemoCache memo;
        parallel_batch = batchParallel(eval, cfgs, &memo);
        memo_hits = memo.hits();
        memo_misses = memo.misses();
    }
    const double batch_parallel_sec = secondsSince(t0) / repeats;

    // Steady state: repeated sweeps over one explorer-lifetime cache
    // (what DSE re-sweeps, tableII's shared perf work, and the study
    // memos actually see). Every lookup hits.
    EvalMemoCache warm_memo;
    Aggregates warm_batch = batchParallel(eval, cfgs, &warm_memo);
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r)
        warm_batch = batchParallel(eval, cfgs, &warm_memo);
    const double batch_warm_sec = secondsSince(t0) / repeats;

    // The production consumer end-to-end: the ported DSE sweep.
    DesignSpaceExplorer dse(eval, grid, cal::nodePowerBudgetW);
    std::vector<DsePoint> swept = dse.sweep(PowerOptConfig::none());
    Aggregates sweep_agg;
    for (const DsePoint &p : swept) {
        sweep_agg.geomeanFlops.push_back(p.geomeanFlops);
        sweep_agg.meanBudgetPowerW.push_back(p.meanBudgetPowerW);
        sweep_agg.maxBudgetPowerW.push_back(p.maxBudgetPowerW);
    }

    const double n = static_cast<double>(grid.size());
    const double scalar_cps = n / scalar_sec;
    const double batch_serial_cps = n / batch_serial_sec;
    const double batch_parallel_cps = n / batch_parallel_sec;
    const double batch_warm_cps = n / batch_warm_sec;
    const double serial_speedup = scalar_sec / batch_serial_sec;
    const double parallel_speedup = scalar_sec / batch_parallel_sec;
    const double warm_speedup = scalar_sec / batch_warm_sec;

    TextTable t({"path", "ms/pass", "configs/sec", "vs scalar"});
    t.row()
        .add("scalar serial (oracle)")
        .add(scalar_sec * 1e3, "%.2f")
        .add(scalar_cps, "%.0f")
        .add(1.0, "%.2fx");
    t.row()
        .add("batched serial")
        .add(batch_serial_sec * 1e3, "%.2f")
        .add(batch_serial_cps, "%.0f")
        .add(serial_speedup, "%.2fx");
    t.row()
        .add("batched parallel, cold memo")
        .add(batch_parallel_sec * 1e3, "%.2f")
        .add(batch_parallel_cps, "%.0f")
        .add(parallel_speedup, "%.2fx");
    t.row()
        .add("batched parallel, warm memo")
        .add(batch_warm_sec * 1e3, "%.2f")
        .add(batch_warm_cps, "%.0f")
        .add(warm_speedup, "%.2fx");
    bench::show(t, "batch_eval");

    const bool bit_identical =
        identical(serial_batch, oracle, "batched serial") &&
        identical(parallel_batch, oracle, "batched parallel (cold)") &&
        identical(warm_batch, oracle, "batched parallel (warm)") &&
        identical(sweep_agg, oracle, "DSE sweep");

    // The headline is steady-state sweep throughput: batched chunks
    // across the pool with the explorer-lifetime memo warm, which is
    // what repeated sweeps / tableII / the study memos run at.
    bool speedup_ok = true;
    std::string speedup_note;
    if (std::thread::hardware_concurrency() >= 4 && threads >= 4) {
        speedup_ok = warm_speedup >= 10.0;
        speedup_note = speedup_ok ? "met" : "missed";
        std::cout << "\nspeedup target: " << warm_speedup
                  << "x vs >= 10x with " << threads << " threads — "
                  << speedup_note << "\n";
    } else {
        speedup_note = "skipped";
        std::cout << "\nspeedup target skipped (need 4+ hardware "
                     "threads; this host has "
                  << std::thread::hardware_concurrency() << ")\n";
    }

    if (!json_path.empty()) {
        bench::JsonReport report("batch_eval");
        report.metric("grid_configs", n);
        report.metric("apps", static_cast<double>(allApps().size()));
        report.metric("threads", threads);
        report.metric("repeats", repeats);
        report.metric("scalar_configs_per_sec", scalar_cps);
        report.metric("batch_serial_configs_per_sec", batch_serial_cps);
        report.metric("batch_parallel_configs_per_sec",
                      batch_parallel_cps);
        report.metric("batch_warm_configs_per_sec", batch_warm_cps);
        report.metric("speedup_batch_serial", serial_speedup);
        report.metric("speedup_batch_parallel", parallel_speedup);
        report.metric("speedup_batch_warm", warm_speedup);
        report.metric("memo_hits", static_cast<double>(memo_hits));
        report.metric("memo_misses", static_cast<double>(memo_misses));
        report.metric("bit_identical", bit_identical ? 1.0 : 0.0);
        report.context("speedup_target", "10x vs serial scalar");
        report.context("speedup_gate", speedup_note);
        if (!report.writeTo(json_path))
            return 1;
    }

    if (!bit_identical) {
        std::cerr << "\nFAIL: batched results are not bit-identical "
                     "to the scalar oracle\n";
        return 1;
    }
    std::cout << "determinism: batched output is bit-identical to the "
                 "scalar oracle (serial, parallel, and full sweep)\n";

    if (!speedup_ok) {
        if (strict) {
            std::cerr << "FAIL (--strict): steady-state speedup "
                      << warm_speedup << "x < 10x\n";
            return 1;
        }
        std::cout << "WARN: steady-state speedup " << warm_speedup
                  << "x < 10x (warn-only; pass --strict to enforce)\n";
    }
    return 0;
}

/**
 * @file
 * Fig. 5: CoMD performance vs ops-per-byte (balanced: rises then
 * plateaus past a kernel-specific knee).
 */

#include "bench_opb_sweep.hh"

int
main()
{
    return ena::bench::runOpbSweep(ena::App::CoMD, "Figure 5");
}

/**
 * @file
 * Fig. 7: out-of-chiplet traffic and the performance impact of the
 * multi-chiplet organization relative to a hypothetical monolithic EHP,
 * from the cycle-level simulator (paper Section V-A).
 *
 * The paper plots XSBench, SNAP, and CoMD; pass --all to run every
 * application (slower). --domains N (N > 1) shards each chiplet-mode
 * simulation into PDES domains (hub + one per GPU chiplet); results
 * stay a pure function of the domain layout, independent of threads.
 */

#include <cstring>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "core/chiplet_study.hh"
#include "util/string_utils.hh"
#include "util/table.hh"

using namespace ena;

int
main(int argc, char **argv)
{
    bool all = bench::hasFlag(argc, argv, "--all");
    int domains = 1;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--domains") == 0) {
            std::optional<long long> n = parseInt(argv[i + 1]);
            if (!n || *n < 1) {
                std::cerr << "bench_fig7_chiplet: --domains needs a "
                             "positive integer, got '"
                          << argv[i + 1]
                          << "'\nUsage: bench_fig7_chiplet [--all] "
                             "[--domains N]\n";
                return 2;
            }
            domains = static_cast<int>(*n);
        }
    }

    bench::banner("Figure 7",
                  "Out-of-chiplet traffic and impact on performance "
                  "(chiplet EHP vs monolithic EHP,\nevent-driven "
                  "simulation of the scaled EHP).");

    std::vector<App> apps = {App::XSBench, App::SNAP, App::CoMD};
    if (all)
        apps = allApps();

    ChipletStudy study;
    TextTable t({"Application", "Out-of-chiplet traffic (%)",
                 "EHP perf vs monolithic (%)", "chiplet us",
                 "monolithic us", "L2 hit", "mean hops"});
    if (domains > 1) {
        std::cout << "(chiplet-mode simulations sharded into hub + "
                  << "per-chiplet PDES domains)\n";
    }
    for (const Fig7Row &row : study.compareAll(apps, domains)) {
        t.row()
            .add(appName(row.app))
            .add(row.remoteTrafficPct, "%.1f")
            .add(row.perfVsMonolithicPct, "%.1f")
            .add(row.chiplet.runtimeUs, "%.1f")
            .add(row.monolithic.runtimeUs, "%.1f")
            .add(row.chiplet.l2HitRate, "%.3f")
            .add(row.chiplet.meanHops, "%.2f");
    }
    bench::show(t, "fig7_chiplet");
    std::cout << "\nPaper findings: out-of-chiplet traffic dominates "
                 "(60-95%); the largest performance\ndegradation vs the "
                 "monolithic design is 13%, and some kernels (SNAP) see "
                 "a negligible impact.\n";
    return 0;
}

/**
 * @file
 * Ablation studies of this reproduction's own design choices — the
 * knobs DESIGN.md calls out — showing how sensitive the headline
 * results are to each:
 *
 *  (a) node power budget vs the discovered best-mean configuration,
 *  (b) interposer link width vs the Fig. 7 chiplet penalty,
 *  (c) NUMA-aware page placement vs out-of-chiplet traffic,
 *  (d) external-interface bandwidth vs the Fig. 8 miss penalty.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/chiplet_study.hh"
#include "core/dse.hh"
#include "core/studies.hh"
#include "util/table.hh"

using namespace ena;

int
main()
{
    bench::banner("Ablations (extension)",
                  "Sensitivity of the headline results to this "
                  "reproduction's design choices.");

    const NodeEvaluator &eval = bench::evaluator();

    // ---- (a) power budget ---------------------------------------------
    std::cout << "(a) Node power budget vs discovered best-mean "
                 "configuration:\n";
    TextTable a({"budget (W)", "best-mean config", "geomean TF"});
    for (double budget : {140.0, 150.0, 160.0, 170.0, 180.0}) {
        DesignSpaceExplorer dse(eval, DseGrid::paperGrid(), budget);
        NodeConfig best = dse.findBestMean(PowerOptConfig::none());
        a.row()
            .add(budget, "%.0f")
            .add(best.label())
            .add(eval.geomeanFlops(best) / 1e12, "%.2f");
    }
    bench::show(a, "ablation_budget");

    // ---- (b) latency tolerance -----------------------------------------
    std::cout << "\n(b) Chiplet penalty (XSBench) vs latency tolerance "
                 "(wavefronts per CU):\n";
    ChipletStudy study;
    TextTable b({"latency tolerance", "perf vs monolithic (%)"});
    // The chiplet penalty is a latency effect; the wavefront count per
    // CU sets how much of the extra interposer latency can be hidden.
    for (int wf : {4, 8, 12}) {
        ChipletStudyParams p = ChipletStudyParams::forApp(App::XSBench);
        p.wavefrontsPerCu = wf;
        Fig7Row row = study.compare(App::XSBench, p);
        b.row()
            .add(strformat("%d wavefronts/CU", wf))
            .add(row.perfVsMonolithicPct, "%.1f");
    }
    bench::show(b, "ablation_latency_tolerance");

    // ---- (c) NUMA placement --------------------------------------------
    std::cout << "\n(c) Out-of-chiplet traffic vs NUMA-aware page "
                 "placement (CoMD):\n";
    TextTable c({"local placement", "remote traffic (%)",
                 "perf vs monolithic (%)"});
    for (double frac : {0.0, 0.25, 0.5, 0.75}) {
        ChipletStudyParams p = ChipletStudyParams::forApp(App::CoMD);
        p.localPlacementFrac = frac;
        Fig7Row row = study.compare(App::CoMD, p);
        c.row()
            .add(frac, "%.2f")
            .add(row.remoteTrafficPct, "%.1f")
            .add(row.perfVsMonolithicPct, "%.1f");
    }
    bench::show(c, "ablation_numa");

    // ---- (d) external interface bandwidth ------------------------------
    std::cout << "\n(d) Fig. 8 penalty at 40% miss rate vs external "
                 "interface bandwidth (CoMD):\n";
    TextTable d({"per-interface GB/s", "perf vs no misses"});
    for (double gbs : {50.0, 100.0, 200.0, 400.0}) {
        NodeConfig cfg = bench::bestMean();
        cfg.ext.interfaceGbs = gbs;
        MissRateStudy miss(eval, cfg);
        auto series = miss.run(App::CoMD, {0.4});
        d.row()
            .add(gbs, "%.0f")
            .add(series.points[0].normPerf, "%.3f");
    }
    bench::show(d, "ablation_ext_bandwidth");

    // ---- (e) NoC model fidelity ----------------------------------------
    std::cout << "\n(e) Virtual-circuit vs detailed (buffered, "
                 "XY-routed) interposer model (Fig. 7,\nXSBench):\n";
    TextTable e({"NoC model", "perf vs monolithic (%)",
                 "remote traffic (%)"});
    {
        ChipletStudyParams p = ChipletStudyParams::forApp(App::XSBench);
        Fig7Row vc = study.compare(App::XSBench, p);
        p.detailedNoc = true;
        Fig7Row det = study.compare(App::XSBench, p);
        e.row()
            .add("virtual circuit")
            .add(vc.perfVsMonolithicPct, "%.1f")
            .add(vc.remoteTrafficPct, "%.1f");
        e.row()
            .add("detailed router")
            .add(det.perfVsMonolithicPct, "%.1f")
            .add(det.remoteTrafficPct, "%.1f");
    }
    bench::show(e, "ablation_noc_fidelity");

    std::cout << "\nTakeaways: the 320/1000/3 optimum is stable for "
                 "budgets near 160 W and shifts with\nthe budget as "
                 "expected; latency tolerance (wavefronts) governs the "
                 "chiplet penalty;\nNUMA placement directly trades "
                 "remote traffic; the external-interface bandwidth\nis "
                 "the first-order control on miss-rate sensitivity.\n";
    return 0;
}

/**
 * @file
 * Determinism gates and scaling for the domain-sharded (PDES) cycle-
 * level simulator.
 *
 * Two bitwise gates, both fatal on mismatch:
 *
 *  1. Micro workload: synthetic PDES nodes whose state is commutative
 *     (counters and checksums), so the full stat dump must be
 *     bit-identical for ANY domain decomposition — pooled execution,
 *     serial-window execution, and the plain single-queue kernel all
 *     compared against each other at several domain counts.
 *
 *  2. Fig. 7 chiplet model (virtual-circuit and detailed NoC): the
 *     sharded simulation run with ThreadPool workers must be
 *     bit-identical to the same decomposition executed with serial
 *     windows — the repo's determinism bar (results are a pure
 *     function of the domain layout, never of thread interleaving;
 *     ENA_THREADS=1 reproduces pooled runs exactly).
 *
 * Afterwards the micro workload is timed across domain counts for an
 * events/sec scaling table (exported with --json for CI tracking).
 * --skip-scaling runs only the gates — CI uses it to exercise the
 * pooled window execution under TSan without timing noise.
 */

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/chiplet_study.hh"
#include "sim/simulation.hh"
#include "util/string_utils.hh"
#include "util/table.hh"

using namespace ena;

namespace {

/** Latency of the synthetic cross-domain channel (1 ns). */
constexpr Tick msgLatency = 1000;

/**
 * Synthetic PDES node: self-rescheduling local work plus cross-domain
 * messages to two peers. Receivers only bump counters and checksums,
 * so same-tick delivery order cannot affect any stat — which is what
 * lets the micro gate demand equality across domain decompositions.
 */
class PdesWorker : public SimObject
{
  public:
    PdesWorker(Simulation &sim, const std::string &name, int index,
               std::uint64_t iters, int spin, Tick latency)
        : SimObject(sim, name), index_(index), iters_(iters),
          spin_(spin), latency_(latency),
          tickEvent_([this] { tick(); }, name + ".tick"),
          statOps_(sim.stats(), name + ".ops", "local ops executed"),
          statSent_(sim.stats(), name + ".sent", "messages sent"),
          statRecv_(sim.stats(), name + ".recv", "messages received"),
          statSum_(sim.stats(), name + ".payload", "payload checksum")
    {
    }

    void addPeer(PdesWorker *p) { peers_.push_back(p); }

    void
    startup() override
    {
        schedule(tickEvent_, 100 + 37 * (index_ % 5));
    }

    void
    receive(std::uint64_t payload)
    {
        ++statRecv_;
        statSum_ += static_cast<double>(payload % 9973);
    }

  private:
    void
    tick()
    {
        ++ops_;
        ++statOps_;
        // Deterministic per-event compute weight (models the real
        // cost of processing a timing event); folded into a
        // commutative checksum so it cannot perturb the gates.
        std::uint64_t h = ops_ * 0x9e3779b97f4a7c15ull + index_;
        for (int i = 0; i < spin_; ++i) {
            h ^= h << 13;
            h ^= h >> 7;
            h ^= h << 17;
        }
        statSum_ += static_cast<double>(h % 1009);
        if (!peers_.empty() && ops_ % 3 == 0) {
            PdesWorker *p = peers_[ops_ % peers_.size()];
            std::uint64_t payload = ops_ * 1000003ull + index_;
            ++statSent_;
            sim().postCrossDomain(
                p->domain(), curTick() + latency_ + ops_ % 5 * 100,
                [p, payload] { p->receive(payload); }, "pdes msg");
        }
        if (ops_ < iters_)
            schedule(tickEvent_, 200 + (ops_ + index_) % 7 * 50);
    }

    int index_;
    std::uint64_t iters_;
    int spin_;
    Tick latency_;
    std::uint64_t ops_ = 0;
    std::vector<PdesWorker *> peers_;
    EventFunctionWrapper tickEvent_;
    StatScalar statOps_;
    StatScalar statSent_;
    StatScalar statRecv_;
    StatScalar statSum_;
};

struct MicroResult
{
    std::string dump;
    std::uint64_t events = 0;
    std::uint64_t windows = 0;
    double secs = 0.0;
};

MicroResult
runMicro(int domains, bool serial_windows, int workers,
         std::uint64_t iters, int spin = 0, Tick latency = msgLatency)
{
    Simulation sim;
    if (domains > 1) {
        sim.setDomains(domains);
        sim.setLookahead(latency);
        sim.setSerialWindows(serial_windows);
    }
    std::vector<PdesWorker *> ws;
    for (int i = 0; i < workers; ++i) {
        Simulation::DomainScope scope(sim,
                                      domains > 1 ? i % domains : 0);
        ws.push_back(sim.create<PdesWorker>(strformat("w%d", i), i,
                                            iters, spin, latency));
    }
    for (int i = 0; i < workers; ++i) {
        ws[i]->addPeer(ws[(i + 1) % workers]);
        ws[i]->addPeer(ws[(i + 3) % workers]);
    }

    auto t0 = std::chrono::steady_clock::now();
    MicroResult r;
    r.events = sim.run();
    r.secs = std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
    r.windows = sim.windowsRun();
    std::ostringstream ss;
    sim.stats().dump(ss);
    r.dump = ss.str();
    return r;
}

int
fail(const std::string &what, const std::string &a, const std::string &b)
{
    std::cerr << "FATAL: determinism gate failed: " << what << "\n";
    std::istringstream sa(a);
    std::istringstream sb(b);
    std::string la;
    std::string lb;
    while (std::getline(sa, la) && std::getline(sb, lb)) {
        if (la != lb) {
            std::cerr << "  first differing line:\n    " << la
                      << "\n    " << lb << "\n";
            break;
        }
    }
    return 1;
}

/** Scaled-down Fig. 7 configuration that still exercises every
 *  cross-domain path (requests, responses, CPU traffic, completion). */
ChipletStudyParams
smallFig7(bool detailed)
{
    ChipletStudyParams p = ChipletStudyParams::forApp(App::XSBench);
    p.gpuChiplets = 4;
    p.cpuClusters = 2;
    p.cusPerChiplet = 2;
    p.wavefrontsPerCu = 2;
    p.memOpsPerWavefront = 80;
    p.detailedNoc = detailed;
    p.captureStats = true;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Simulator PDES",
                  "Conservative-window domain sharding: bitwise "
                  "determinism gates and\nevents/sec scaling of the "
                  "cycle-level kernel.");

    // ---- Gate 1: micro workload, any decomposition is bit-identical.
    const int workers = 8;
    const std::uint64_t gate_iters = 20000;
    MicroResult ref = runMicro(1, false, workers, gate_iters);
    for (int d : {2, 4, 8}) {
        MicroResult pooled = runMicro(d, false, workers, gate_iters);
        MicroResult serial = runMicro(d, true, workers, gate_iters);
        if (pooled.dump != serial.dump)
            return fail(strformat("micro pooled vs serial windows "
                                  "(domains=%d)", d),
                        pooled.dump, serial.dump);
        if (pooled.dump != ref.dump)
            return fail(strformat("micro domains=%d vs single-queue "
                                  "kernel", d),
                        pooled.dump, ref.dump);
        if (pooled.events != ref.events)
            return fail(
                strformat("micro event count (domains=%d)", d),
                strformat("%llu",
                          static_cast<unsigned long long>(pooled.events)),
                strformat("%llu",
                          static_cast<unsigned long long>(ref.events)));
    }
    std::cout << "gate 1: micro workload identical across domains "
                 "{1,2,4,8}, pooled == serial windows\n";

    // ---- Gate 2: sharded Fig. 7 model, pooled == serial windows.
    ChipletStudy study;
    for (bool detailed : {false, true}) {
        ChipletStudyParams p = smallFig7(detailed);
        p.domains = 1 + p.gpuChiplets;
        ChipletRunResult pooled = study.run(App::XSBench, p, false);
        p.serialWindows = true;
        ChipletRunResult serial = study.run(App::XSBench, p, false);
        const char *noc = detailed ? "detailed" : "virtual-circuit";
        if (pooled.statsDump != serial.statsDump)
            return fail(strformat("fig7 %s NoC pooled vs serial "
                                  "windows", noc),
                        pooled.statsDump, serial.statsDump);
        if (pooled.runtimeUs != serial.runtimeUs)
            return fail(strformat("fig7 %s NoC runtime", noc),
                        strformat("%.17g", pooled.runtimeUs),
                        strformat("%.17g", serial.runtimeUs));
        std::cout << "gate 2: fig7 " << noc
                  << " NoC sharded run bit-identical to serial windows ("
                  << pooled.eventsProcessed << " events)\n";
    }

    // ---- Scaling: events/sec of the micro workload by domain count,
    // with a realistic per-event compute weight (a bare counter bump
    // underestimates real event cost by ~2 orders of magnitude and
    // would only measure barrier overhead).
    // A coarser 20 ns channel (the classic PDES lookahead/overhead
    // tradeoff) so windows amortize their barrier.
    bench::JsonReport report("sim_pdes");
    if (!bench::hasFlag(argc, argv, "--skip-scaling")) {
        const std::uint64_t scale_iters = 30000;
        const int scale_spin = 700;
        const Tick scale_latency = 20000;
        TextTable t({"domains", "events", "windows", "wall s",
                     "Mevents/s", "speedup"});
        double base_rate = 0.0;
        for (int d : {1, 2, 4, 8}) {
            MicroResult r = runMicro(d, false, workers, scale_iters,
                                     scale_spin, scale_latency);
            double rate = static_cast<double>(r.events) / r.secs;
            if (d == 1)
                base_rate = rate;
            t.row()
                .add(d)
                .add(static_cast<size_t>(r.events))
                .add(static_cast<size_t>(r.windows))
                .add(r.secs, "%.3f")
                .add(rate / 1e6, "%.2f")
                .add(rate / base_rate, "%.2f");
            report.metric(strformat("events_per_sec_d%d", d), rate);
            if (d > 1)
                report.metric(strformat("speedup_d%d", d),
                              rate / base_rate);
        }
        bench::show(t, "sim_pdes");
    }

    report.metric("gates_passed", 1.0);
    report.context("workers", strformat("%d", workers));
    report.context("lookahead_ticks", strformat("%llu",
                   static_cast<unsigned long long>(msgLatency)));
    std::string json = bench::jsonPathFromArgs(argc, argv);
    if (!json.empty() && !report.writeTo(json))
        return 1;

    std::cout << "\nAll determinism gates passed: sharded execution is "
                 "a pure function of the domain\nlayout — thread "
                 "interleaving can never change a result.\n";
    return 0;
}

/**
 * @file
 * Fault-aware scale-out gates and tables:
 *
 *  1. Zero-resiliency reduction: ResilientClusterEvaluator with
 *     ResilienceSpec::none() must reproduce ClusterEvaluator::evaluate
 *     system exaflops and megawatts bit-identically for every app and
 *     comm spec tried — exit code 1 on any mismatch.
 *  2. Determinism: the protection x topology x node-count sweep
 *     sharded over the process pool must be element-for-element
 *     identical to its single-threaded run — exit code 1 on mismatch.
 *  3. Tables: effective (comm + checkpoint + RMT) exaflops across the
 *     protection ladder and machine sizes, the fabric-drained vs
 *     fixed-I/O checkpoint comparison, and the availability-
 *     constrained best-config search.
 *
 * Usage: bench_ras_scaleout [THREADS]   (default: ENA_THREADS / all)
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "cluster/resilient_cluster.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace ena;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

bool
identical(const std::vector<ResilientSweepPoint> &a,
          const std::vector<ResilientSweepPoint> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].variant != b[i].variant ||
            a[i].topology != b[i].topology || a[i].nodes != b[i].nodes ||
            a[i].systemMttfHours != b[i].systemMttfHours ||
            a[i].interruptionMttfHours != b[i].interruptionMttfHours ||
            a[i].commEfficiency != b[i].commEfficiency ||
            a[i].ckptEfficiency != b[i].ckptEfficiency ||
            a[i].rmtSlowdown != b[i].rmtSlowdown ||
            a[i].systemExaflops != b[i].systemExaflops ||
            a[i].effectiveExaflops != b[i].effectiveExaflops ||
            a[i].systemMw != b[i].systemMw)
            return false;
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int threads = argc > 1 ? std::atoi(argv[1])
                           : ThreadPool::defaultThreads();
    if (threads < 1)
        threads = 1;

    bench::banner("Fault-aware scale-out",
                  "RAS-aware cluster projection: zero-resiliency "
                  "bit-identity vs ClusterEvaluator,\nserial/parallel "
                  "protection-sweep equivalence, effective-exaflops "
                  "tables, and the\navailability-constrained best "
                  "machine.");

    const NodeEvaluator &eval = bench::evaluator();
    const ClusterConfig cluster = ClusterConfig::exascale();
    const NodeConfig best = bench::bestMean();
    ClusterEvaluator ce(eval, cluster);

    // ---- gate 1: zero-fault / zero-RMT reduces to ClusterEvaluator ----
    ResilientClusterEvaluator ideal(ce, ResilienceSpec::none());
    std::vector<CommSpec> specs;
    specs.push_back(CommSpec::none());
    specs.push_back(CommSpec{});   // halo at profile intensity
    CommSpec a2a;
    a2a.pattern = CommPattern::AllToAll;
    specs.push_back(a2a);
    for (App app : allApps()) {
        for (const CommSpec &spec : specs) {
            ClusterResult base = ce.evaluate(best, app, spec);
            ResilientResult r = ideal.evaluate(best, app, spec);
            if (r.effectiveExaflops != base.systemExaflops ||
                r.systemMw != base.systemMw) {
                std::cerr << "FAIL: zero-resiliency projection differs "
                             "from ClusterEvaluator on "
                          << appName(app) << " / "
                          << commPatternName(spec.pattern) << "\n";
                return 1;
            }
        }
    }
    std::cout << "zero-resiliency gate: ResilienceSpec::none() "
                 "reproduces ClusterEvaluator\nbit-identically over "
              << allApps().size() << " apps x " << specs.size()
              << " comm specs\n\n";

    // ---- gate 2 + timing: sharded protection sweep vs serial run ----
    ResilientScaleOutStudy study(eval, cluster);
    const std::vector<ProtectionVariant> &variants =
        standardProtectionVariants();
    const std::vector<ClusterTopology> topos = allClusterTopologies();
    const std::vector<int> sizes = {1000, 8000, 27000, 100000};

    ThreadPool::setGlobalThreads(1);
    auto t0 = std::chrono::steady_clock::now();
    auto serial = study.sweep(best, App::CoMD, CommSpec{}, variants,
                              topos, sizes);
    double serial_sec = secondsSince(t0);

    ThreadPool::setGlobalThreads(threads);
    t0 = std::chrono::steady_clock::now();
    auto parallel = study.sweep(best, App::CoMD, CommSpec{}, variants,
                                topos, sizes);
    double parallel_sec = secondsSince(t0);

    if (!identical(serial, parallel)) {
        std::cerr << "\nFAIL: sharded protection sweep differs from its "
                     "serial run\n";
        return 1;
    }
    std::cout << "determinism: protection/topology/node-count sweep is "
                 "element-for-element\nidentical serial vs "
              << threads << " thread(s) ("
              << strformat("%.2f", serial_sec * 1e3) << " ms serial, "
              << strformat("%.2f", parallel_sec * 1e3)
              << " ms parallel)\n\n";

    // ---- effective exaflops across the protection ladder ----
    TextTable t({"protection", "fabric", "nodes", "sys MTTF (h)",
                 "interrupt MTTF (h)", "ckpt eff", "RMT slow",
                 "EF (CoMD)", "effective EF"});
    for (const ResilientSweepPoint &p : parallel) {
        if (p.topology != ClusterTopology::FatTree)
            continue;   // the fabric axis is gated above; keep it short
        t.row()
            .add(variants[p.variant].name)
            .add(clusterTopologyName(p.topology))
            .add(p.nodes)
            .add(p.systemMttfHours, "%.2f")
            .add(p.interruptionMttfHours, "%.1f")
            .add(p.ckptEfficiency, "%.3f")
            .add(p.rmtSlowdown, "%.3f")
            .add(p.systemExaflops, "%.3f")
            .add(p.effectiveExaflops, "%.3f");
    }
    bench::show(t, "ras_scaleout_protection");

    // ---- checkpoint drain: fixed I/O knob vs riding the fabric ----
    std::cout << "\nCheckpoint drain source (ECC + GPU RMT, 100,000 "
                 "nodes):\n";
    ResilienceSpec fixed = ResilienceSpec::paper();
    ResilienceSpec fabric = ResilienceSpec::paper();
    fabric.checkpointViaFabric = true;
    TextTable d({"drain", "GB/s/node", "ckpt cost (s)",
                 "interval (min)", "ckpts/day", "machine eff"});
    for (const auto &[name, spec] :
         {std::pair<const char *, ResilienceSpec>{"fixed I/O", fixed},
          {"via fabric", fabric}}) {
        ResilientClusterEvaluator rce(ce, spec);
        ResilientResult r = rce.evaluate(best, App::CoMD, CommSpec{});
        d.row()
            .add(name)
            .add(r.drainBps / 1e9, "%.1f")
            .add(r.plan.checkpointCostS, "%.1f")
            .add(r.plan.intervalS / 60.0, "%.1f")
            .add(r.plan.checkpointsPerDay, "%.1f")
            .add(r.ckptEfficiency, "%.3f");
    }
    bench::show(d, "ras_scaleout_drain");

    // ---- availability-constrained best machine ----
    std::cout << "\nBest machine under the paper's constraints "
                 "(interruption MTTF >= 1 week,\nworst-app node power "
                 "<= 160 W):\n";
    std::vector<NodeConfig> candidates;
    for (int cus : {256, 320, 384}) {
        NodeConfig c = best;
        c.cus = cus;
        candidates.push_back(c);
    }
    const std::vector<int> machine_sizes = {1000, 8000, 27000, 64000,
                                            100000};
    auto won = study.bestUnderAvailability(candidates, variants,
                                           machine_sizes, App::CoMD,
                                           CommSpec{});
    if (!won.feasible) {
        std::cout << "  no candidate satisfied both constraints\n";
    } else {
        TextTable w({"node config", "protection", "nodes",
                     "node W (worst app)", "interrupt MTTF (h)",
                     "effective EF", "EF/MW"});
        w.row()
            .add(won.config.label())
            .add(variants[won.variant].name)
            .add(won.nodes)
            .add(won.maxBudgetPowerW, "%.1f")
            .add(won.result.interruptionMttfHours, "%.1f")
            .add(won.result.effectiveExaflops, "%.3f")
            .add(won.result.effectiveExaflopsPerMw(), "%.4f")
            ;
        bench::show(w, "ras_scaleout_best");
    }

    std::cout << "\nReading: silent (user-visible) faults — dominated "
                 "by unprotected CPU logic —\ncap the machine size the "
                 "one-week interruption target allows; checkpointing\n"
                 "recovers detected faults but its efficiency collapses "
                 "without ECC.\n";
    return 0;
}

/**
 * @file
 * Scale-out cluster model gates and tables:
 *
 *  1. Zero-communication reduction: ClusterEvaluator with
 *     CommSpec::none() must reproduce ExascaleProjector::sweepCus
 *     (Fig. 14) bit-identically — exit code 1 on any mismatch.
 *  2. Determinism: the topology x node-count sweep sharded over the
 *     process pool must be element-for-element identical to its
 *     single-threaded run (like bench_parallel_sweep) — exit code 1 on
 *     mismatch.
 *  3. Tables: analytic vs communication-aware Fig. 14, and the fabric
 *     comparison across topologies and machine sizes.
 *
 * Usage: bench_cluster_scaleout [THREADS]   (default: ENA_THREADS / all)
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "cluster/scale_out_study.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace ena;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

bool
identical(const std::vector<TopologyPoint> &a,
          const std::vector<TopologyPoint> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].topology != b[i].topology || a[i].nodes != b[i].nodes ||
            a[i].avgHops != b[i].avgHops ||
            a[i].bisectionGbs != b[i].bisectionGbs ||
            a[i].efficiency != b[i].efficiency ||
            a[i].systemExaflops != b[i].systemExaflops ||
            a[i].systemMw != b[i].systemMw)
            return false;
    }
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int threads = argc > 1 ? std::atoi(argv[1])
                           : ThreadPool::defaultThreads();
    if (threads < 1)
        threads = 1;

    bench::banner("Scale-out cluster model",
                  "Inter-node network + communication-aware exascale "
                  "projection: zero-comm\nbit-identity vs Fig. 14, "
                  "serial/parallel sweep equivalence, and the fabric\n"
                  "comparison tables.");

    const NodeEvaluator &eval = bench::evaluator();
    const ClusterConfig cluster = ClusterConfig::exascale();
    const std::vector<int> cus = {192, 224, 256, 288, 320};

    // ---- gate 1: zero communication reduces to Fig. 14 exactly ----
    ExascaleProjector proj(eval, cluster.nodes);
    auto fig14 = proj.sweepCus(cus);
    ScaleOutStudy study(eval, cluster);
    auto zero = study.fig14(cus, CommSpec::none());
    for (size_t i = 0; i < cus.size(); ++i) {
        if (zero[i].cus != fig14[i].cus ||
            zero[i].commExaflops != fig14[i].systemExaflops ||
            zero[i].commMw != fig14[i].systemMw) {
            std::cerr << "FAIL: zero-communication projection differs "
                         "from ExascaleProjector at "
                      << fig14[i].cus << " CUs\n";
            return 1;
        }
    }
    std::cout << "zero-comm gate: CommSpec::none() reproduces Fig. 14 "
                 "bit-identically over "
              << cus.size() << " CU points\n\n";

    // ---- communication-aware Fig. 14 ----
    CommSpec halo;   // defaults: halo exchange at profile intensity
    auto aware = study.fig14(cus, halo);
    TextTable t({"CUs per node", "analytic EF", "comm-aware EF",
                 "efficiency", "analytic MW", "comm-aware MW"});
    for (const ClusterFig14Point &p : aware) {
        t.row()
            .add(p.cus)
            .add(p.analyticExaflops, "%.2f")
            .add(p.commExaflops, "%.2f")
            .add(p.efficiency, "%.3f")
            .add(p.analyticMw, "%.1f")
            .add(p.commMw, "%.1f");
    }
    bench::show(t, "cluster_fig14");

    // ---- gate 2 + timing: sharded sweep vs serial run ----
    // All-to-all stresses the bisection, which is what separates the
    // three fabrics (halo is injection-limited on all of them).
    CommSpec a2a;
    a2a.pattern = CommPattern::AllToAll;
    const std::vector<ClusterTopology> topos = allClusterTopologies();
    const std::vector<int> sizes = {1000, 8000, 27000, 64000, 100000};
    const NodeConfig best = bench::bestMean();

    ThreadPool::setGlobalThreads(1);
    auto t0 = std::chrono::steady_clock::now();
    auto serial = study.topologySweep(best, App::CoMD, a2a, topos,
                                      sizes);
    double serial_sec = secondsSince(t0);

    ThreadPool::setGlobalThreads(threads);
    t0 = std::chrono::steady_clock::now();
    auto parallel = study.topologySweep(best, App::CoMD, a2a, topos,
                                        sizes);
    double parallel_sec = secondsSince(t0);

    if (!identical(serial, parallel)) {
        std::cerr << "\nFAIL: sharded topology sweep differs from its "
                     "serial run\n";
        return 1;
    }
    std::cout << "\ndeterminism: topology/node-count sweep is "
                 "element-for-element identical\nserial vs "
              << threads << " thread(s) ("
              << strformat("%.2f", serial_sec * 1e3) << " ms serial, "
              << strformat("%.2f", parallel_sec * 1e3)
              << " ms parallel)\n\n";

    TextTable f({"fabric", "nodes", "avg hops", "bisection TB/s",
                 "efficiency", "EF (CoMD)", "MW"});
    for (const TopologyPoint &p : parallel) {
        f.row()
            .add(clusterTopologyName(p.topology))
            .add(p.nodes)
            .add(p.avgHops, "%.2f")
            .add(p.bisectionGbs / 1000.0, "%.1f")
            .add(p.efficiency, "%.3f")
            .add(p.systemExaflops, "%.3f")
            .add(p.systemMw, "%.1f");
    }
    bench::show(f, "cluster_fabrics");

    std::cout << "\nReading: the fat tree holds full bisection so "
                 "efficiency stays flat with\nmachine size; the torus "
                 "is cheapest in switches/links but its bisection\n"
                 "limits all-to-all traffic; the dragonfly sits "
                 "between.\n";
    return 0;
}

/**
 * @file
 * Fig. 8: performance impact of in-package DRAM miss rates — the
 * fraction of memory requests serviced by the external-memory network
 * instead of the in-package 3D DRAM (paper Section V-B).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/studies.hh"
#include "core/twolevel_study.hh"
#include "util/table.hh"

using namespace ena;

int
main()
{
    bench::banner("Figure 8",
                  "Performance vs in-package DRAM miss rate, normalized "
                  "to no misses,\nat the best-mean configuration " +
                      bench::bestMean().label() + ".");

    MissRateStudy study(bench::evaluator(), bench::bestMean());
    auto series = study.run();

    TextTable t({"Application", "0%", "20%", "40%", "60%", "80%",
                 "100%"});
    for (const MissRateSeries &s : series) {
        auto &row = t.row().add(appName(s.app));
        for (const MissRatePoint &p : s.points)
            row.add(p.normPerf, "%.3f");
    }
    bench::show(t, "fig8_missrate");

    std::cout << "\nCycle-level cross-check (event-driven EHP with the "
                 "software-managed two-level\nmemory and the external "
                 "SerDes network behind the L2s; XSBench, scaled "
                 "machine):\n";
    TwoLevelStudy twolevel;
    auto points = twolevel.sweep(App::XSBench, TwoLevelParams{},
                                 {1.0, 0.5, 0.25, 0.125});
    TextTable c({"in-package capacity / footprint",
                 "achieved miss rate", "runtime (us)",
                 "perf vs full capacity"});
    for (const TwoLevelPoint &p : points) {
        c.row()
            .add(p.capacityFraction, "%.3f")
            .add(p.achievedMissRate, "%.3f")
            .add(p.runtimeUs, "%.1f")
            .add(p.normPerf, "%.3f");
    }
    bench::show(c, "fig8_cycle_check");

    std::cout << "\nPaper findings: MaxFlops is flat (almost no memory "
                 "accesses); other kernels degrade\nwith external "
                 "accesses; LULESH's irregular accesses make it "
                 "latency- rather than\nbandwidth-limited on the "
                 "external path. The cycle-level run shows the same "
                 "mechanism\nemerging from page placement + SerDes "
                 "timing rather than from the analytic model.\n";
    return 0;
}

/**
 * @file
 * Shared driver for Figs. 4-6: performance of one application versus
 * ops-per-byte as bandwidth and (a) CU frequency or (b) CU count vary.
 */

#ifndef ENA_BENCH_BENCH_OPB_SWEEP_HH
#define ENA_BENCH_BENCH_OPB_SWEEP_HH

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "core/studies.hh"
#include "util/table.hh"

namespace ena {
namespace bench {

inline int
runOpbSweep(App app, const char *figure)
{
    const KernelProfile &profile = profileFor(app);
    banner(figure,
           "Performance of " + appName(app) + " (" +
               categoryName(profile.category) +
               ") as we vary the bandwidth and (a) CU frequency or "
               "(b) CU count.\nValues normalized to the best-mean "
               "configuration " + bestMean().label() + ".");

    OpbSweepStudy study(evaluator(), bestMean());
    std::vector<double> bws = OpbSweepStudy::paperBandwidths();
    std::vector<double> freqs = {0.5,  0.6, 0.7, 0.8, 0.9,
                                 1.0,  1.1, 1.2, 1.3, 1.4, 1.5};
    std::vector<int> cus = {64,  96,  128, 160, 192, 224,
                            256, 288, 320, 352, 384};

    auto print_curves = [&](const char *title,
                            const std::vector<OpbCurve> &curves,
                            size_t npoints,
                            const std::string &slug) {
        std::cout << title << "\n";
        std::vector<std::string> headers = {"point"};
        for (const OpbCurve &c : curves)
            headers.push_back(strformat("%.0fTBps", c.bwTbs));
        TextTable t(headers);
        for (size_t i = 0; i < npoints; ++i) {
            auto &row = t.row();
            row.add(strformat("x=%.3f..",
                              curves.front().points[i].opsPerByte));
            for (const OpbCurve &c : curves) {
                row.add(strformat("%.3f (x=%.3f)",
                                  c.points[i].normPerf,
                                  c.points[i].opsPerByte));
            }
        }
        bench::show(t, slug);
        std::cout << "\n";
    };

    auto fa = study.sweepFrequency(app, bws, freqs);
    std::string base = toLower(appName(app));
    print_curves("(a) sweeping CU frequency 0.5..1.5 GHz at 320 CUs:",
                 fa, freqs.size(), "opb_" + base + "_freq");

    auto fb = study.sweepCuCount(app, bws, cus);
    print_curves("(b) sweeping CU count 64..384 at 1 GHz:", fb,
                 cus.size(), "opb_" + base + "_cus");
    return 0;
}

} // namespace bench
} // namespace ena

#endif // ENA_BENCH_BENCH_OPB_SWEEP_HH

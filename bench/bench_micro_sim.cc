/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths: event
 * queue throughput, cache accesses, HBM timing, NoC traversal, the
 * analytic node evaluation, and the thermal solver.
 */

#include <benchmark/benchmark.h>

#include "core/ena.hh"
#include "core/thermal_study.hh"
#include "cpu/cpu_core.hh"
#include "mem/cache.hh"
#include "mem/compression.hh"
#include "mem/hbm_stack.hh"
#include "noc/detailed_network.hh"
#include "noc/interposer_network.hh"
#include "noc/topology.hh"
#include "sim/simulation.hh"
#include "util/rng.hh"
#include "workloads/trace_gen.hh"

using namespace ena;

namespace {

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        std::uint64_t fired = 0;
        for (int i = 0; i < 1024; ++i) {
            q.scheduleLambda(static_cast<Tick>(i * 7 % 1000),
                             [&fired] { ++fired; });
        }
        q.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueue);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache({2ull << 20, 64, 16, ReplPolicy::Lru});
    Rng rng(42);
    for (auto _ : state) {
        CacheOutcome out =
            cache.access(rng.below(64ull << 20) & ~63ull, false);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_HbmAccess(benchmark::State &state)
{
    Simulation sim;
    auto *stack = sim.create<HbmStack>(
        "hbm", HbmParams::forAggregateBandwidth(750.0, 8));
    sim.initAll();
    Rng rng(7);
    std::uint64_t done = 0;
    for (auto _ : state) {
        stack->access(rng.below(1ull << 30) & ~63ull, 64, false,
                      [&done] { ++done; });
        sim.eventq().run();
    }
    benchmark::DoNotOptimize(done);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HbmAccess);

void
BM_NocTraversal(benchmark::State &state)
{
    struct Sink : NetworkEndpoint
    {
        std::uint64_t count = 0;
        void receivePacket(const Packet &) override { ++count; }
    };

    Simulation sim;
    Topology topo = Topology::ehp();
    auto *net = sim.create<InterposerNetwork>("noc", topo,
                                              InterposerParams{});
    std::vector<Sink> sinks(topo.nodes().size());
    for (NodeId i = 0; i < sinks.size(); ++i)
        net->attach(i, &sinks[i]);
    sim.initAll();

    Rng rng(3);
    Packet pkt;
    pkt.bytes = 64;
    for (auto _ : state) {
        pkt.src = static_cast<NodeId>(rng.below(sinks.size()));
        pkt.dst = static_cast<NodeId>(rng.below(sinks.size()));
        net->send(pkt);
        sim.eventq().run();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NocTraversal);

void
BM_NodeEvaluation(benchmark::State &state)
{
    NodeEvaluator eval;
    NodeConfig cfg = NodeConfig::bestMean();
    for (auto _ : state) {
        for (App app : allApps()) {
            EvalResult r = eval.evaluate(cfg, app);
            benchmark::DoNotOptimize(r);
        }
    }
    state.SetItemsProcessed(state.iterations() * allApps().size());
}
BENCHMARK(BM_NodeEvaluation);

void
BM_TraceGeneration(benchmark::State &state)
{
    StreamLayout layout;
    layout.privateBase = 1ull << 30;
    layout.privateSize = 1ull << 20;
    layout.sharedBase = 0;
    layout.sharedSize = 64ull << 20;
    TraceGenerator gen(profileFor(App::CoMD), layout, 11);
    for (auto _ : state) {
        TraceOp op = gen.next();
        benchmark::DoNotOptimize(op);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_ThermalSolve(benchmark::State &state)
{
    NodeEvaluator eval;
    PackageThermalParams tp;
    tp.gridN = static_cast<size_t>(state.range(0));
    EhpPackageModel model(tp);
    EvalResult r = eval.evaluate(NodeConfig::bestMean(), App::CoMDLJ);
    for (auto _ : state) {
        auto solved = model.solve(NodeConfig::bestMean(), r.power);
        benchmark::DoNotOptimize(solved);
    }
}
BENCHMARK(BM_ThermalSolve)->Arg(16)->Arg(32);

void
BM_DetailedNocTraversal(benchmark::State &state)
{
    struct Sink : NetworkEndpoint
    {
        std::uint64_t count = 0;
        void receivePacket(const Packet &) override { ++count; }
    };

    Simulation sim;
    Topology topo = Topology::ehp();
    auto *net = sim.create<DetailedNetwork>("dnoc", topo,
                                            DetailedParams{});
    std::vector<Sink> sinks(topo.nodes().size());
    for (NodeId i = 0; i < sinks.size(); ++i)
        net->attach(i, &sinks[i]);
    sim.initAll();

    Rng rng(5);
    Packet pkt;
    pkt.bytes = 64;
    for (auto _ : state) {
        pkt.src = static_cast<NodeId>(rng.below(sinks.size()));
        pkt.dst = static_cast<NodeId>(rng.below(sinks.size()));
        net->send(pkt);
        sim.eventq().run();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetailedNocTraversal);

void
BM_LineCompression(benchmark::State &state)
{
    SyntheticData gen(13);
    std::vector<CacheLine> lines;
    for (int i = 0; i < 256; ++i)
        lines.push_back(gen.line(DataKind::SmoothField));
    size_t i = 0;
    for (auto _ : state) {
        size_t sz = LineCompressor::compressedSize(
            lines[i++ % lines.size()], CompressScheme::Best);
        benchmark::DoNotOptimize(sz);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LineCompression);

void
BM_CpuCoreExecution(benchmark::State &state)
{
    for (auto _ : state) {
        Simulation sim;
        auto *core = sim.create<CpuCore>("c", CpuCoreParams{},
                                         SerialSectionProfile{}, 7);
        core->execute(10000);
        sim.run();
        benchmark::DoNotOptimize(core->ipc());
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CpuCoreExecution);

/** Windowed PDES throughput: Arg is the domain count (1 = the plain
 *  single-queue kernel). Workers exchange cross-domain messages at one
 *  lookahead of latency, so multi-domain runs pay window barriers. */
void
BM_PdesShardedSim(benchmark::State &state)
{
    constexpr Tick lookahead = 1000;
    struct Node : SimObject
    {
        EventFunctionWrapper ev;
        Node *peer = nullptr;
        std::uint64_t count = 0;
        std::uint64_t recv = 0;
        Node(Simulation &s, const std::string &n)
            : SimObject(s, n), ev([this] { tick(); }, n + ".tick")
        {
        }
        void startup() override { schedule(ev, 100); }
        void
        tick()
        {
            ++count;
            if (count % 4 == 0) {
                Node *p = peer;
                sim().postCrossDomain(p->domain(),
                                      curTick() + lookahead,
                                      [p] { ++p->recv; }, "msg");
            }
            if (count < 2000)
                schedule(ev, 250);
        }
    };

    const int domains = static_cast<int>(state.range(0));
    const int workers = 8;
    std::uint64_t events = 0;
    for (auto _ : state) {
        Simulation sim;
        if (domains > 1) {
            sim.setDomains(domains);
            sim.setLookahead(lookahead);
        }
        std::vector<Node *> nodes;
        for (int i = 0; i < workers; ++i) {
            Simulation::DomainScope scope(
                sim, domains > 1 ? i % domains : 0);
            nodes.push_back(
                sim.create<Node>("n" + std::to_string(i)));
        }
        for (int i = 0; i < workers; ++i)
            nodes[i]->peer = nodes[(i + 1) % workers];
        events += sim.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_PdesShardedSim)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

} // anonymous namespace

BENCHMARK_MAIN();

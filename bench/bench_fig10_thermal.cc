/**
 * @file
 * Fig. 10: peak in-package 3D-DRAM temperature per application at the
 * best-mean configuration and at each application's Table II optimum
 * (paper Section V-D).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/dse.hh"
#include "core/thermal_study.hh"
#include "util/table.hh"

using namespace ena;

int
main()
{
    bench::banner("Figure 10",
                  "Peak in-package 3D-DRAM temperature (85 C JEDEC "
                  "refresh limit), best-mean vs\nbest-per-application "
                  "configurations.");

    const NodeEvaluator &eval = bench::evaluator();
    DesignSpaceExplorer dse(eval, DseGrid::paperGrid(),
                            cal::nodePowerBudgetW);
    auto table2 = dse.tableII(bench::bestMean());

    ThermalStudy thermal(eval);
    auto rows = thermal.run(bench::bestMean(), table2);

    TextTable t({"Application", "Best-mean config (C)",
                 "Best-per-app config (C)", "per-app config",
                 "limit (C)"});
    for (const ThermalRow &r : rows) {
        t.row()
            .add(appName(r.app))
            .add(r.bestMeanPeakC, "%.1f")
            .add(r.bestPerAppPeakC, "%.1f")
            .add(r.bestPerAppConfig.label())
            .add(EhpPackageModel::dramLimitC, "%.0f");
    }
    bench::show(t, "fig10_thermal");

    std::cout << "\nPaper findings: all kernels stay below the 85 C "
                 "limit in both configurations;\nCoMD-LJ comes closest; "
                 "MaxFlops does not stress memory temperature despite "
                 "high CU\npower; for some kernels (SNAP, HPGMG) the "
                 "per-app config runs cooler because power\nshifts from "
                 "dense CUs to lower-density DRAM.\n";
    return 0;
}

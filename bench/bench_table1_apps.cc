/**
 * @file
 * Table I: application descriptions and kernel categories, plus the
 * model parameters this reproduction assigns to each proxy app.
 */

#include <iostream>

#include "bench_util.hh"
#include "util/table.hh"

using namespace ena;

int
main()
{
    bench::banner("Table I", "Application descriptions (proxy-app "
                             "catalog and kernel categories)");

    TextTable t({"Category", "Application", "Description"});
    AppCategory last = AppCategory::MemoryIntensive;
    bool first = true;
    for (const KernelProfile &p : allProfiles()) {
        bool new_cat = first || p.category != last;
        t.row()
            .add(new_cat ? categoryName(p.category) : "")
            .add(appName(p.app))
            .add(p.description);
        last = p.category;
        first = false;
    }
    bench::show(t, "table1_catalog");

    std::cout << "\nModel parameters behind each kernel:\n";
    TextTable m({"Application", "flops/byte", "efficiency", "cu-exp",
                 "f-exp", "sat BW (TB/s)", "ext traffic", "compress"});
    for (const KernelProfile &p : allProfiles()) {
        m.row()
            .add(appName(p.app))
            .add(p.arithmeticIntensity, "%.2f")
            .add(p.computeEfficiency, "%.2f")
            .add(p.cuScalingExp, "%.2f")
            .add(p.freqScalingExp, "%.2f")
            .add(p.maxBandwidthTbs, "%.2f")
            .add(p.extTrafficFraction, "%.2f")
            .add(p.compressRatio, "%.2f");
    }
    bench::show(m, "table1_model_params");
    return 0;
}

/**
 * @file
 * Shared helpers for the figure/table reproduction benches: a banner
 * that names the paper artifact being regenerated, and cached access to
 * the DSE results several benches share.
 */

#ifndef ENA_BENCH_BENCH_UTIL_HH
#define ENA_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/ena.hh"
#include "util/table.hh"

namespace ena {
namespace bench {

inline void
banner(const std::string &artifact, const std::string &caption)
{
    std::cout << "==============================================="
                 "=====================\n"
              << "Reproduction of " << artifact << "\n"
              << caption << "\n"
              << "==============================================="
                 "=====================\n\n";
}

/**
 * Print a result table; when the ENA_BENCH_CSV_DIR environment
 * variable names a directory, also write <dir>/<slug>.csv so the
 * regenerated figures can be plotted directly.
 */
inline void
show(const TextTable &t, const std::string &slug)
{
    t.print(std::cout);
    if (const char *dir = std::getenv("ENA_BENCH_CSV_DIR"))
        t.writeCsv(std::string(dir) + "/" + slug + ".csv");
}

/** Evaluator shared by all benches in one process. */
inline const NodeEvaluator &
evaluator()
{
    static NodeEvaluator eval;
    return eval;
}

/** The DSE-discovered best-mean configuration (expected 320/1/3). */
inline const NodeConfig &
bestMean()
{
    static NodeConfig cfg = discoveredBestMean(evaluator());
    return cfg;
}

} // namespace bench
} // namespace ena

#endif // ENA_BENCH_BENCH_UTIL_HH

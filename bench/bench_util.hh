/**
 * @file
 * Shared helpers for the figure/table reproduction benches: a banner
 * that names the paper artifact being regenerated, cached access to
 * the DSE results several benches share, and the machine-readable
 * `--json <path>` report every perf bench emits for CI artifacts.
 */

#ifndef ENA_BENCH_BENCH_UTIL_HH
#define ENA_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/ena.hh"
#include "util/table.hh"

namespace ena {
namespace bench {

inline void
banner(const std::string &artifact, const std::string &caption)
{
    std::cout << "==============================================="
                 "=====================\n"
              << "Reproduction of " << artifact << "\n"
              << caption << "\n"
              << "==============================================="
                 "=====================\n\n";
}

/**
 * Print a result table; when the ENA_BENCH_CSV_DIR environment
 * variable names a directory, also write <dir>/<slug>.csv so the
 * regenerated figures can be plotted directly.
 */
inline void
show(const TextTable &t, const std::string &slug)
{
    t.print(std::cout);
    if (const char *dir = std::getenv("ENA_BENCH_CSV_DIR"))
        t.writeCsv(std::string(dir) + "/" + slug + ".csv");
}

/**
 * The machine-readable result a perf bench writes when invoked with
 * `--json <path>`. Every artifact shares one flat schema so the CI
 * perf job (and anything diffing two runs) needs exactly one parser:
 *
 *   {
 *     "bench": "<name>",
 *     "metrics": { "<key>": <number>, ... },
 *     "context": { "<key>": "<string>", ... }
 *   }
 *
 * Numbers are printed with %.17g so doubles round-trip exactly.
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

    void
    metric(const std::string &key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", value);
        metrics_.emplace_back(key, buf);
    }

    void
    context(const std::string &key, const std::string &value)
    {
        context_.emplace_back(key, quoted(value));
    }

    /** Write the report; returns false (with a stderr note) on I/O
     *  failure so benches can exit nonzero. */
    bool
    writeTo(const std::string &path) const
    {
        std::ofstream out(path);
        out << "{\n  \"bench\": " << quoted(bench_) << ",\n";
        emit(out, "metrics", metrics_);
        out << ",\n";
        emit(out, "context", context_);
        out << "\n}\n";
        out.flush();
        if (!out) {
            std::cerr << "error: cannot write JSON report to " << path
                      << "\n";
            return false;
        }
        std::cout << "JSON report written to " << path << "\n";
        return true;
    }

  private:
    using Fields = std::vector<std::pair<std::string, std::string>>;

    static std::string
    quoted(const std::string &s)
    {
        std::string q = "\"";
        for (char c : s) {
            if (c == '"' || c == '\\')
                q += '\\';
            q += c;
        }
        return q + "\"";
    }

    static void
    emit(std::ostream &out, const char *section, const Fields &fields)
    {
        out << "  \"" << section << "\": {";
        for (size_t i = 0; i < fields.size(); ++i) {
            out << (i ? ",\n    " : "\n    ")
                << quoted(fields[i].first) << ": " << fields[i].second;
        }
        out << (fields.empty() ? "}" : "\n  }");
    }

    std::string bench_;
    Fields metrics_;
    Fields context_;
};

/** The path following a `--json` flag, or "" when absent. */
inline std::string
jsonPathFromArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--json")
            return argv[i + 1];
    }
    return "";
}

/** True when @p flag (e.g. "--strict") appears anywhere in argv. */
inline bool
hasFlag(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i < argc; ++i) {
        if (flag == argv[i])
            return true;
    }
    return false;
}

/** Evaluator shared by all benches in one process. */
inline const NodeEvaluator &
evaluator()
{
    static NodeEvaluator eval;
    return eval;
}

/** The DSE-discovered best-mean configuration (expected 320/1/3). */
inline const NodeConfig &
bestMean()
{
    static NodeConfig cfg = discoveredBestMean(evaluator());
    return cfg;
}

} // namespace bench
} // namespace ena

#endif // ENA_BENCH_BENCH_UTIL_HH

/**
 * @file
 * Dynamic resource reconfiguration walkthrough (paper Section VI):
 * a runtime governor that gates CUs and moves the DVFS point per
 * application phase, compared against the static best-mean settings
 * and against Table II's unconstrained oracle.
 *
 * Usage: reconfig_governor
 */

#include <iostream>

#include "core/ena.hh"
#include "core/reconfig.hh"
#include "util/table.hh"

using namespace ena;

int
main()
{
    NodeEvaluator eval;
    ReconfigGovernor gov(eval, GovernorParams{});

    std::cout << "Per-application runtime settings on the installed "
                 "320-CU node (gating + DVFS only):\n";
    DesignSpaceExplorer dse(eval, DseGrid::paperGrid(),
                            cal::nodePowerBudgetW);
    TextTable t({"app", "governed (CUs@GHz)", "gain vs static (%)",
                 "oracle hw gain (%)"});
    for (App app : allApps()) {
        GovernorDecision d = gov.decide(app);
        double static_perf =
            eval.evaluate(NodeConfig::bestMean(), app).perf.flops;
        AppBest oracle = dse.findBestForApp(app, PowerOptConfig::none());
        t.row()
            .add(appName(app))
            .add(strformat("%d@%.2f", d.activeCus, d.freqGhz))
            .add((d.flops / static_perf - 1.0) * 100.0, "%.1f")
            .add((oracle.flops / static_perf - 1.0) * 100.0, "%.1f");
    }
    t.print(std::cout);

    // A phased job alternating memory- and compute-bound kernels.
    std::vector<Phase> phases = {
        {App::LULESH, 2.0}, {App::CoMD, 1.0},  {App::XSBench, 2.0},
        {App::CoMD, 1.0},   {App::SNAP, 1.5},  {App::MaxFlops, 0.5},
        {App::LULESH, 2.0}, {App::HPGMG, 1.0},
    };
    GovernorSummary s = gov.run(phases);

    std::cout << "\nPhased workload (" << phases.size()
              << " phases, with per-transition cost):\n";
    std::cout << "  governed vs static work:  +"
              << strformat("%.1f%%", s.gainPct) << " ("
              << s.transitions << " reconfigurations)\n";
    std::cout << "  average budget power:     "
              << strformat("%.1f", s.avgStaticPowerW) << " W static -> "
              << strformat("%.1f", s.avgGovernedPowerW)
              << " W governed\n";
    std::cout << "\nThe governor captures part of Table II's oracle "
                 "benefit without redesigning the\nnode: it cannot add "
                 "bandwidth or CUs, only stop paying for what a phase "
                 "cannot use.\n";
    return 0;
}

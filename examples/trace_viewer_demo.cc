/**
 * @file
 * End-to-end telemetry walkthrough: run one slice of every instrumented
 * subsystem — a parallel DSE sweep, a cycle-level HBM simulation, the
 * thermal package solver, and a scale-out cluster study — then flush a
 * Chrome trace and a metrics dump and verify the trace really contains
 * spans from all of them.
 *
 * Output paths come from ENA_TRACE / ENA_METRICS when set; otherwise
 * trace.json and metrics.csv in the current directory. Load the trace
 * in chrome://tracing or https://ui.perfetto.dev.
 *
 * Exits 1 if any expected subsystem is missing from the trace, so the
 * CI smoke job can gate on it.
 *
 * Usage: trace_viewer_demo
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/scale_out_study.hh"
#include "core/ena.hh"
#include "core/thermal_study.hh"
#include "mem/hbm_stack.hh"
#include "sim/simulation.hh"
#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

using namespace ena;

int
main()
{
    // ENA_TRACE/ENA_METRICS were already honored at startup; default
    // both to files in the current directory when unset so the demo
    // always produces something to open.
    std::string trace_path =
        std::getenv("ENA_TRACE") ? std::getenv("ENA_TRACE")
                                 : "trace.json";
    std::string metrics_path =
        std::getenv("ENA_METRICS") ? std::getenv("ENA_METRICS")
                                   : "metrics.csv";
    telemetry::enableTracing(trace_path);
    telemetry::enableMetrics(metrics_path);
    telemetry::setThreadName("trace_viewer_demo-main");

    std::cout << "Collecting telemetry from four subsystems...\n";

    // 1. Parallel DSE sweep: "dse" spans plus the "threadpool" chunk
    //    tracks of the workers that score the grid.
    NodeEvaluator eval;
    DesignSpaceExplorer dse(eval, DseGrid::paperGrid(),
                            cal::nodePowerBudgetW);
    NodeConfig best = dse.findBestMean(PowerOptConfig::none());
    std::cout << "  dse: best-mean config " << best.label() << "\n";

    // 2. Cycle-level simulation: a burst of HBM accesses through the
    //    event queue ("sim" span, sim.* stat gauges at dump).
    {
        Simulation sim;
        auto *stack = sim.create<HbmStack>(
            "hbm", HbmParams::forAggregateBandwidth(750.0, 8));
        sim.initAll();
        Rng rng(42);
        std::uint64_t done = 0;
        for (int i = 0; i < 2000; ++i) {
            stack->access(rng.below(1ull << 30) & ~63ull, 64,
                          (i % 4) == 0, [&done] { ++done; });
        }
        std::uint64_t events = sim.run();
        std::cout << "  sim: " << events << " events, " << done
                  << " HBM accesses retired\n";
    }

    // 3. Thermal package solve for the best-mean config ("thermal"
    //    span, solver-iteration histogram).
    ThermalStudy thermal(eval);
    double peak_c = thermal.peakDramC(best, App::SNAP);
    std::cout << "  thermal: SNAP peak DRAM "
              << strformat("%.1f", peak_c) << " C\n";

    // 4. Scale-out study: a short weak-scaling curve ("cluster" spans,
    //    fabric-byte counters).
    ScaleOutStudy study(eval, ClusterConfig{});
    auto curve =
        study.weakScaling(best, App::CoMD, CommSpec{},
                          {64, 512, 4096, 32768, 100000});
    std::cout << "  cluster: " << curve.size()
              << " weak-scaling points, full-machine efficiency "
              << strformat("%.3f", curve.back().efficiency) << "\n";

    telemetry::flush();

    // Self-check: every subsystem must have left spans in the trace.
    std::ifstream in(trace_path);
    if (!in) {
        std::cerr << "FAIL: cannot reopen " << trace_path << "\n";
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string trace = buf.str();
    bool ok = true;
    for (const char *cat : {"\"cat\":\"threadpool\"", "\"cat\":\"dse\"",
                            "\"cat\":\"sim\"", "\"cat\":\"thermal\"",
                            "\"cat\":\"cluster\""}) {
        if (trace.find(cat) == std::string::npos) {
            std::cerr << "FAIL: trace has no " << cat << " events\n";
            ok = false;
        }
    }
    if (!ok)
        return 1;

    std::cout << "\nTrace written to " << trace_path
              << " (spans from threadpool, dse, sim, thermal, cluster)"
              << "\nMetrics written to " << metrics_path
              << "\nOpen the trace in chrome://tracing or "
                 "https://ui.perfetto.dev\n";
    return 0;
}

/**
 * @file
 * Resilience walkthrough: FIT budget of one node, the MTTF math behind
 * the paper's "user intervention ... on the order of a week", and how
 * GPU RMT trades idle compute for detection coverage.
 *
 * Usage: resilience_study [NODES]
 */

#include <iostream>
#include <optional>
#include <string>

#include "core/ena.hh"
#include "ras/checkpoint.hh"
#include "ras/fault_model.hh"
#include "ras/rmt.hh"
#include "util/status.hh"
#include "util/string_utils.hh"
#include "util/table.hh"

using namespace ena;

namespace {

Expected<int>
tryNodeCount(const std::string &arg)
{
    std::optional<long long> n = parseInt(arg);
    if (!n)
        return Status::invalidArgument("node count '", arg,
                                       "' is not an integer");
    if (*n < 1 || *n > 10'000'000)
        return Status::outOfRange(
            "node count must be in [1, 10000000], got ", *n);
    return static_cast<int>(*n);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int nodes = cal::numSystemNodes;
    if (argc > 1) {
        Expected<int> parsed = tryNodeCount(argv[1]);
        if (!parsed.ok()) {
            std::cerr << "resilience_study: "
                      << parsed.status().toString()
                      << "\nUsage: resilience_study [NODES]\n";
            return 2;
        }
        nodes = *parsed;
    }

    NodeConfig cfg = NodeConfig::bestMean();
    FaultModel fm({true, true, true, 2.0});

    std::cout << "Per-node FIT budget at " << cfg.label() << " (raw -> "
              << "after ECC+RMT):\n";
    FitBreakdown raw = fm.rawNodeFit(cfg);
    FitBreakdown prot = fm.protectedNodeFit(cfg);
    TextTable t({"component", "raw FIT", "protected FIT"});
    t.row().add("CPU logic").add(raw.cpuLogic, "%.0f").add(
        prot.cpuLogic, "%.1f");
    t.row().add("GPU logic").add(raw.gpuLogic, "%.0f").add(
        prot.gpuLogic, "%.1f");
    t.row().add("SRAM").add(raw.sram, "%.0f").add(prot.sram, "%.1f");
    t.row().add("in-package DRAM").add(raw.hbm, "%.0f").add(
        prot.hbm, "%.1f");
    t.row().add("external DRAM").add(raw.extDram, "%.0f").add(
        prot.extDram, "%.1f");
    t.row().add("external NVM").add(raw.nvm, "%.0f").add(prot.nvm,
                                                         "%.1f");
    t.row().add("interconnect").add(raw.interconnect, "%.0f").add(
        prot.interconnect, "%.1f");
    t.row().add("total").add(raw.total(), "%.0f").add(prot.total(),
                                                      "%.1f");
    t.print(std::cout);

    double sys_mttf = fm.systemMttfHours(cfg, nodes);
    std::cout << "\nAt " << nodes << " nodes: system MTTF "
              << strformat("%.2f", sys_mttf) << " h ("
              << strformat("%.2f", sys_mttf / 24.0) << " days)\n";

    CheckpointModel ckpt;
    CheckpointPlan plan = ckpt.plan(sys_mttf);
    std::cout << "Optimal checkpoint interval "
              << strformat("%.1f", plan.intervalS / 60.0)
              << " min -> machine efficiency "
              << strformat("%.1f%%", plan.efficiency * 100.0) << "\n\n";

    std::cout << "RMT on idle GPU resources (opportunistic policy):\n";
    NodeEvaluator eval;
    RmtModel rmt;
    TextTable r({"app", "CU util", "coverage", "slowdown"});
    for (App app : {App::MaxFlops, App::CoMD, App::LULESH,
                    App::XSBench}) {
        Activity act = eval.evaluate(cfg, app).perf.activity;
        RmtOutcome o = rmt.evaluate(act, RmtPolicy::Opportunistic);
        r.row()
            .add(appName(app))
            .add(act.cuUtilization, "%.2f")
            .add(o.coverage, "%.2f")
            .add(o.slowdown, "%.3f");
    }
    r.print(std::cout);
    std::cout << "\nMemory-bound kernels get near-full RMT coverage for "
                 "almost free; compute-bound\nkernels must pay "
                 "performance for coverage (the paper's motivation for "
                 "keeping RAS\nfeatures out of the GPU chiplets).\n";
    return 0;
}

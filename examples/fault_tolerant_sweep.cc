/**
 * @file
 * Fault-tolerant DSE sweep CLI: run the paper's full grid sweep and
 * print a CSV result table to stdout, with every per-config result
 * streamed to the journal named by ENA_SWEEP_JOURNAL (if set) so a
 * killed run resumes where it left off.
 *
 * This is the binary behind the CI kill/resume smoke: run once for a
 * reference CSV, run again under `timeout -s KILL` with a journal and
 * fault injection, then rerun with the same journal and diff the CSVs
 * — they must be byte-identical no matter where the kill landed.
 *
 * Usage:
 *   fault_tolerant_sweep [THREADS]
 *
 * Environment:
 *   ENA_SWEEP_JOURNAL=path   checkpoint/resume journal
 *   ENA_FAULT_INJECT=rate,seed[,faults_per_task]  inject task faults
 *   ENA_TASK_RETRIES=n       attempts per task (absorb transients)
 *   ENA_THREADS=n            pool width (overridden by argv[1])
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/calibration.hh"
#include "core/dse.hh"
#include "core/node_evaluator.hh"
#include "util/thread_pool.hh"

using namespace ena;

int
main(int argc, char **argv)
{
    if (argc > 1) {
        int threads = std::atoi(argv[1]);
        if (threads < 1) {
            std::cerr << "usage: fault_tolerant_sweep [THREADS]\n";
            return 1;
        }
        ThreadPool::setGlobalThreads(threads);
    }

    NodeEvaluator eval;
    DesignSpaceExplorer dse(eval, DseGrid::paperGrid(),
                            cal::nodePowerBudgetW);

    // sweep() consults ENA_SWEEP_JOURNAL itself: already-journaled
    // points are skipped, fresh ones stream to the journal as they
    // finish. A SIGKILL at any moment loses at most one torn record.
    std::vector<DsePoint> points = dse.sweep(PowerOptConfig::none());

    std::printf("cus,freq_ghz,bw_tbs,geomean_flops,mean_budget_w,"
                "max_budget_w,feasible,ok,error\n");
    for (const DsePoint &p : points) {
        std::printf("%d,%.17g,%.17g,%.17g,%.17g,%.17g,%d,%d,%s\n",
                    p.cfg.cus, p.cfg.freqGhz, p.cfg.bwTbs,
                    p.geomeanFlops, p.meanBudgetPowerW,
                    p.maxBudgetPowerW, p.feasible ? 1 : 0, p.ok ? 1 : 0,
                    p.error.c_str());
    }
    return 0;
}

/**
 * @file
 * Quickstart: evaluate one ENA node configuration on every proxy
 * application and print performance, power, and thermal headroom.
 *
 * Usage: quickstart [CUS [FREQ_GHZ [BW_TBS]]]
 */

#include <iostream>
#include <string>

#include "core/ena.hh"
#include "core/thermal_study.hh"
#include "util/table.hh"

using namespace ena;

int
main(int argc, char **argv)
{
    NodeConfig cfg = NodeConfig::bestMean();
    if (argc > 1)
        cfg.cus = std::stoi(argv[1]);
    if (argc > 2)
        cfg.freqGhz = std::stod(argv[2]);
    if (argc > 3)
        cfg.bwTbs = std::stod(argv[3]);
    cfg.validate();

    NodeEvaluator eval;
    ThermalStudy thermal(eval);

    std::cout << versionString() << "\n";
    std::cout << "Exascale Node Architecture @ " << cfg.label() << "\n";
    std::cout << "  peak compute: "
              << PerfModel::peakFlops(cfg) / 1e12 << " DP teraflops\n";
    std::cout << "  in-package:   " << cfg.inPackageGb << " GB @ "
              << cfg.bwTbs << " TB/s\n";
    std::cout << "  external:     " << cfg.ext.totalGb() << " GB over "
              << cfg.ext.interfaces << " interfaces\n\n";

    TextTable t({"app", "category", "perf (TF)", "node power (W)",
                 "perf/W (GF/W)", "peak DRAM (C)"});
    for (App app : allApps()) {
        EvalResult r = eval.evaluate(cfg, app);
        double temp = thermal.peakDramC(cfg, app);
        t.row()
            .add(appName(app))
            .add(categoryName(profileFor(app).category))
            .add(r.teraflops(), "%.2f")
            .add(r.power.total(), "%.1f")
            .add(r.perf.flops / 1e9 / r.power.total(), "%.1f")
            .add(temp, "%.1f");
    }
    t.print(std::cout);

    ExascaleProjector proj(eval);
    std::cout << "\nAt " << proj.nodes() << " nodes: "
              << proj.systemExaflops(cfg, App::MaxFlops)
              << " exaflops (MaxFlops), "
              << proj.systemMw(cfg, App::MaxFlops)
              << " MW (package, peak-compute scenario)\n";
    return 0;
}

/**
 * @file
 * Quickstart: evaluate one ENA node configuration on every proxy
 * application and print performance, power, and thermal headroom.
 *
 * Usage: quickstart [CUS [FREQ_GHZ [BW_TBS]]]
 */

#include <iostream>
#include <optional>
#include <string>

#include "core/ena.hh"
#include "core/thermal_study.hh"
#include "util/status.hh"
#include "util/string_utils.hh"
#include "util/table.hh"

using namespace ena;

namespace {

constexpr const char *usage =
    "Usage: quickstart [CUS [FREQ_GHZ [BW_TBS]]]";

Expected<int>
tryCus(const std::string &arg)
{
    std::optional<long long> n = parseInt(arg);
    if (!n)
        return Status::invalidArgument("CU count '", arg,
                                       "' is not an integer");
    if (*n < 1 || *n > 4096)
        return Status::outOfRange("CU count must be in [1, 4096], got ",
                                  *n);
    return static_cast<int>(*n);
}

Expected<double>
tryPositive(const std::string &arg, const char *what)
{
    std::optional<double> v = parseDouble(arg);
    if (!v)
        return Status::invalidArgument(what, " '", arg,
                                       "' is not a number");
    if (*v <= 0.0)
        return Status::outOfRange(what, " must be positive, got ", *v);
    return *v;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    NodeConfig cfg = NodeConfig::bestMean();
    if (argc > 1) {
        Expected<int> cus = tryCus(argv[1]);
        if (!cus.ok()) {
            std::cerr << "quickstart: " << cus.status().toString()
                      << "\n" << usage << "\n";
            return 2;
        }
        cfg.cus = *cus;
    }
    if (argc > 2) {
        Expected<double> f = tryPositive(argv[2], "frequency (GHz)");
        if (!f.ok()) {
            std::cerr << "quickstart: " << f.status().toString() << "\n"
                      << usage << "\n";
            return 2;
        }
        cfg.freqGhz = *f;
    }
    if (argc > 3) {
        Expected<double> bw = tryPositive(argv[3], "bandwidth (TB/s)");
        if (!bw.ok()) {
            std::cerr << "quickstart: " << bw.status().toString() << "\n"
                      << usage << "\n";
            return 2;
        }
        cfg.bwTbs = *bw;
    }
    cfg.validate();

    NodeEvaluator eval;
    ThermalStudy thermal(eval);

    std::cout << versionString() << "\n";
    std::cout << "Exascale Node Architecture @ " << cfg.label() << "\n";
    std::cout << "  peak compute: "
              << PerfModel::peakFlops(cfg) / 1e12 << " DP teraflops\n";
    std::cout << "  in-package:   " << cfg.inPackageGb << " GB @ "
              << cfg.bwTbs << " TB/s\n";
    std::cout << "  external:     " << cfg.ext.totalGb() << " GB over "
              << cfg.ext.interfaces << " interfaces\n\n";

    TextTable t({"app", "category", "perf (TF)", "node power (W)",
                 "perf/W (GF/W)", "peak DRAM (C)"});
    for (App app : allApps()) {
        EvalResult r = eval.evaluate(cfg, app);
        double temp = thermal.peakDramC(cfg, app);
        t.row()
            .add(appName(app))
            .add(categoryName(profileFor(app).category))
            .add(r.teraflops(), "%.2f")
            .add(r.power.total(), "%.1f")
            .add(r.perf.flops / 1e9 / r.power.total(), "%.1f")
            .add(temp, "%.1f");
    }
    t.print(std::cout);

    ExascaleProjector proj(eval);
    std::cout << "\nAt " << proj.nodes() << " nodes: "
              << proj.systemExaflops(cfg, App::MaxFlops)
              << " exaflops (MaxFlops), "
              << proj.systemMw(cfg, App::MaxFlops)
              << " MW (package, peak-compute scenario)\n";
    return 0;
}

/**
 * @file
 * Design-space exploration walkthrough (paper Section V / Table II).
 *
 * Sweeps the paper's CU-count x frequency x bandwidth grid, reports the
 * best-mean configuration under the 160 W budget, each application's
 * standalone optimum, and the oracle reconfiguration benefit — then
 * repeats with the Section V-E power optimizations enabled.
 *
 * Usage: dse_explorer [--budget WATTS] [--verbose]
 */

#include <algorithm>
#include <iostream>
#include <string>

#include "core/ena.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace ena;

int
main(int argc, char **argv)
{
    double budget = cal::nodePowerBudgetW;
    bool verbose = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--budget" && i + 1 < argc) {
            budget = std::stod(argv[++i]);
        } else if (arg == "--verbose") {
            verbose = true;
        } else {
            std::cerr << "usage: dse_explorer [--budget WATTS]"
                         " [--verbose]\n";
            return 1;
        }
    }

    NodeEvaluator eval;
    DseGrid grid = DseGrid::paperGrid();
    DesignSpaceExplorer dse(eval, grid, budget);

    if (verbose) {
        // Rank the feasible grid by geomean performance.
        auto points = dse.sweep(PowerOptConfig::none());
        std::sort(points.begin(), points.end(),
                  [](const DsePoint &a, const DsePoint &b) {
                      return a.geomeanFlops > b.geomeanFlops;
                  });
        TextTable top({"rank", "config", "geomean TF", "max budget W",
                       "feasible"});
        int rank = 0;
        int shown = 0;
        for (const DsePoint &p : points) {
            ++rank;
            bool is_paper = p.cfg.cus == 320 && p.cfg.freqGhz == 1.0 &&
                            p.cfg.bwTbs == 3.0;
            if ((p.feasible && shown < 12) || is_paper) {
                top.row()
                    .add(rank)
                    .add(p.cfg.label() + (is_paper ? " <= paper" : ""))
                    .add(p.geomeanFlops / 1e12, "%.3f")
                    .add(p.maxBudgetPowerW, "%.1f")
                    .add(p.feasible ? "yes" : "no");
                if (p.feasible)
                    ++shown;
            }
        }
        std::cout << "Top feasible configurations by geomean "
                     "performance:\n";
        top.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Sweeping " << grid.size() << " configurations x "
              << allApps().size() << " applications under a " << budget
              << " W budget on " << ThreadPool::global().threads()
              << " thread(s) (set ENA_THREADS to override)...\n\n";

    NodeConfig best = dse.findBestMean(PowerOptConfig::none());
    std::cout << "Best-mean configuration: " << best.label()
              << "  (max budget power "
              << eval.maxBudgetPower(best) << " W)\n";

    NodeConfig best_opt = dse.findBestMean(PowerOptConfig::all());
    best_opt.opts = PowerOptConfig::all();
    std::cout << "Best-mean with power optimizations: "
              << best_opt.label() << "  (max budget power "
              << eval.maxBudgetPower(best_opt) << " W)\n\n";

    if (verbose) {
        TextTable per_app({"app", "perf (TF)", "budget W", "total W",
                           "bound"});
        for (const EvalResult &r : eval.evaluateAll(best)) {
            per_app.row()
                .add(appName(r.app))
                .add(r.teraflops(), "%.2f")
                .add(r.power.budgetPower(), "%.1f")
                .add(r.power.total(), "%.1f")
                .add(r.perf.memoryBound ? "memory" : "compute");
        }
        std::cout << "At the best-mean configuration:\n";
        per_app.print(std::cout);
        std::cout << "\n";
    }

    TextTable table({"Application", "Best App-Specific Config",
                     "Benefit w/o Power Opt (%)",
                     "Benefit w/ Power Opt (%)"});
    for (const TableIIRow &row : dse.tableII(best)) {
        table.row()
            .add(appName(row.app))
            .add(row.bestConfig.label())
            .add(row.benefitNoOptPct, "%.1f")
            .add(row.benefitWithOptPct, "%.1f");
    }
    std::cout << "Table II (oracle per-application reconfiguration):\n";
    table.print(std::cout);
    return 0;
}

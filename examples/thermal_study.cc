/**
 * @file
 * Thermal walkthrough (paper Section V-D): solve the EHP package stack
 * for each application, check the 85 C DRAM limit, and render the
 * bottom-DRAM-die heat map for a chosen application and configuration.
 *
 * Usage: thermal_study [APP [CUS FREQ_GHZ BW_TBS]]
 */

#include <iostream>
#include <string>

#include "core/ena.hh"
#include "core/thermal_study.hh"
#include "util/table.hh"

using namespace ena;

int
main(int argc, char **argv)
{
    App pick = App::SNAP;
    if (argc > 1)
        pick = appFromName(argv[1]);

    NodeConfig cfg = NodeConfig::bestMean();
    if (argc > 4) {
        cfg.cus = std::stoi(argv[2]);
        cfg.freqGhz = std::stod(argv[3]);
        cfg.bwTbs = std::stod(argv[4]);
        cfg.validate();
    }

    NodeEvaluator eval;
    ThermalStudy thermal(eval);

    TextTable t({"app", "peak DRAM (C)", "limit (C)", "headroom (C)"});
    for (App app : allApps()) {
        double peak = thermal.peakDramC(cfg, app);
        t.row()
            .add(appName(app))
            .add(peak, "%.1f")
            .add(EhpPackageModel::dramLimitC, "%.0f")
            .add(EhpPackageModel::dramLimitC - peak, "%.1f");
    }
    std::cout << "Peak in-package DRAM temperature at " << cfg.label()
              << ":\n";
    t.print(std::cout);

    std::cout << "\nBottom DRAM die heat map for " << appName(pick)
              << " (hot spots are the CU tiles of the GPU die below):\n";
    std::cout << thermal.heatMap(cfg, pick);
    return 0;
}

/**
 * @file
 * Cluster-level task-graph explorer: load a combined node + cluster +
 * taskgraph description from one "key = value" file (or use the
 * built-in sample), print the DAG's shape, compare the schedulers
 * across topologies and machine sizes, show what protection/faults do
 * to the makespan, and run the job-mix interference study.
 *
 * Usage: taskgraph_explorer [CONFIG_FILE] [CSV_FILE]
 *
 * CSV_FILE, when given, receives the full scheduler x topology x
 * node-count sweep, one row per cell (the CI smoke job does this).
 */

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "cluster/cluster_config_io.hh"
#include "common/node_config_io.hh"
#include "taskgraph/resilient_schedule.hh"
#include "taskgraph/task_dag_io.hh"
#include "taskgraph/taskgraph_study.hh"
#include "util/string_utils.hh"
#include "util/table.hh"

using namespace ena;

namespace {

const char *sampleConfig = R"(
# A SNAP-like 24x24 wavefront sweep of 64-Gflop kernels exchanging
# 16 MB surfaces, on a slice of the paper's fat-tree machine.
ehp.cus = 320
ehp.freq_ghz = 1.0
ehp.bw_tbs = 3.0
cluster.nodes = 512
cluster.topology = fat-tree
cluster.links_per_node = 4
cluster.link_gbs = 25
taskgraph.shape = wavefront
taskgraph.app = SNAP
taskgraph.size = 24
taskgraph.task_gflops = 64
taskgraph.edge_mb = 16
)";

void
writeCsv(const std::string &path,
         const std::vector<DagScheduler> &schedulers,
         const std::vector<TaskGraphSweepPoint> &points)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "taskgraph_explorer: cannot write '" << path
                  << "'\n";
        std::exit(2);
    }
    os << "scheduler,topology,nodes,makespan_s,critical_path_s,"
          "speedup,efficiency,utilization,comm_s,edges_costed,ok\n";
    for (const TaskGraphSweepPoint &p : points) {
        os << dagSchedulerName(schedulers[p.scheduler]) << ','
           << clusterTopologyName(p.topology) << ',' << p.nodes << ','
           << strformat("%.17g,%.17g,%.4f,%.4f,%.4f,%.17g,%zu,%d",
                        p.makespanSeconds, p.criticalPathSeconds,
                        p.speedup, p.efficiency, p.utilization,
                        p.commSeconds, p.edgesCosted, p.ok ? 1 : 0)
           << '\n';
    }
    std::cout << "\nWrote " << points.size() << " sweep rows to "
              << path << "\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Config cfg;
    if (argc > 1) {
        cfg = Config::fromFile(argv[1]);
    } else {
        cfg = Config::fromString(sampleConfig);
        std::cout << "No config given; using the built-in sample:\n\n"
                  << cfg.toString() << "\n";
    }

    NodeConfig node = nodeConfigFromConfig(cfg);
    ClusterConfig cluster = clusterConfigFromConfig(cfg);
    TaskGraphSpec spec = taskGraphSpecFromConfig(cfg);
    TaskDag dag = spec.build();
    checkOrFatal(dag.tryValidate());

    std::cout << "Task graph: " << dag.label() << "\n"
              << "  depth " << dag.depth() << ", max layer width "
              << dag.maxLayerWidth() << ", total "
              << strformat("%.1f Tflop, %.1f GB on edges",
                           dag.totalFlops() / 1e12,
                           dag.totalEdgeBytes() / 1e9)
              << "\n\n";

    NodeEvaluator eval;
    TaskGraphStudy study(eval, cluster);

    const std::vector<ClusterTopology> topologies = {
        ClusterTopology::FatTree, ClusterTopology::Dragonfly,
        ClusterTopology::Torus3D};
    std::vector<int> counts;
    for (int n = 8; n <= cluster.nodes; n *= 4)
        counts.push_back(n);
    if (counts.empty() || counts.back() != cluster.nodes)
        counts.push_back(cluster.nodes);

    auto points = study.sweep(dag, node, allDagSchedulers(), topologies,
                              counts);

    std::cout << "Scheduler comparison ("
              << clusterTopologyName(cluster.topology) << ", "
              << cluster.nodes << " nodes):\n";
    TextTable t({"scheduler", "makespan (s)", "critical path (s)",
                 "speedup", "efficiency", "utilization", "comm (s)"});
    const std::size_t nt = topologies.size();
    const std::size_t nn = counts.size();
    for (std::size_t s = 0; s < allDagSchedulers().size(); ++s) {
        // The base topology at the largest machine size.
        const TaskGraphSweepPoint &p = points[s * nt * nn + nn - 1];
        t.row()
            .add(dagSchedulerName(allDagSchedulers()[s]))
            .add(p.makespanSeconds, "%.4f")
            .add(p.criticalPathSeconds, "%.4f")
            .add(p.speedup, "%.1f")
            .add(p.efficiency, "%.3f")
            .add(p.utilization, "%.3f")
            .add(p.commSeconds, "%.3f");
    }
    t.print(std::cout);

    std::cout << "\nTopology x machine size (critical-path scheduler, "
                 "makespan seconds):\n";
    TextTable x({"nodes", "fat-tree", "dragonfly", "3d-torus"});
    for (std::size_t c = 0; c < nn; ++c) {
        auto &row = x.row().add(counts[c]);
        for (std::size_t topo = 0; topo < nt; ++topo) {
            const TaskGraphSweepPoint &p = points[topo * nn + c];
            if (p.ok)
                row.add(p.makespanSeconds, "%.4f");
            else
                row.add("(quarantined)");
        }
    }
    x.print(std::cout);

    // What the RAS layer does to the schedule.
    std::cout << "\nResiliency (critical-path, " << cluster.nodes
              << " nodes, 8 spares):\n";
    InterNodeNetwork net(cluster);
    TextTable r({"protection", "makespan (s)", "effective (s)",
                 "E[failures]", "rmt slowdown", "degradation"});
    for (const ProtectionVariant &v : standardProtectionVariants()) {
        ResilientDagScheduler rds(eval, v.spec);
        ResilientSchedule rs =
            rds.evaluate(dag, node, net, DagScheduler::CriticalPath,
                         cluster.nodes, 8);
        r.row()
            .add(v.name)
            .add(rs.schedule.makespanSeconds, "%.4f")
            .add(rs.effectiveMakespanSeconds, "%.4f")
            .add(rs.expectedFailures, "%.3f")
            .add(rs.rmtSlowdown, "%.3f")
            .add(rs.degradation(), "%.4f");
    }
    r.print(std::cout);

    // Job-mix interference: four copies of the DAG sharing the machine.
    const int jobs = 4;
    std::vector<TaskDag> mix;
    for (int j = 0; j < jobs; ++j)
        mix.push_back(dag);
    JobMixResult jm = study.jobMix(mix, node, DagScheduler::CriticalPath,
                                   cluster.nodes);
    std::cout << "\nJob mix: " << jobs << " copies on "
              << cluster.nodes << " nodes (" << jm.nodesPerJob
              << " each): mean slowdown "
              << strformat("%.3fx", jm.meanSlowdown) << ", worst "
              << strformat("%.3fx", jm.worstSlowdown)
              << "\n(fabric bandwidth splits " << jobs
              << " ways; compute is partition-private)\n";

    if (argc > 2)
        writeCsv(argv[2], allDagSchedulers(), points);
    return 0;
}

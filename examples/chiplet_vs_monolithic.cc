/**
 * @file
 * Cycle-level chiplet study walkthrough (paper Section V-A, Fig. 7).
 *
 * Runs the event-driven EHP model in chiplet and monolithic modes for
 * one application and prints the traffic split, cache behaviour, and
 * relative performance.
 *
 * Usage: chiplet_vs_monolithic [APP]
 */

#include <iostream>
#include <string>

#include "core/chiplet_study.hh"
#include "util/table.hh"
#include "workloads/kernel_profile.hh"

using namespace ena;

int
main(int argc, char **argv)
{
    App app = App::XSBench;
    if (argc > 1)
        app = appFromName(argv[1]);

    ChipletStudy study;
    ChipletStudyParams params = ChipletStudyParams::forApp(app);
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        auto eq = a.find('=');
        if (eq == std::string::npos)
            continue;
        std::string key = a.substr(0, eq);
        double v = std::stod(a.substr(eq + 1));
        if (key == "seed")
            params.seed = static_cast<std::uint64_t>(v);
        else if (key == "cpu")
            params.cpuTraffic = v != 0.0;
        else if (key == "local")
            params.localPlacementFrac = v;
        else if (key == "bw")
            params.aggregateBwGbs = v;
        else if (key == "wf")
            params.wavefrontsPerCu = static_cast<int>(v);
        else if (key == "stats")
            params.dumpStats = v != 0.0;
    }

    std::cout << "Running " << appName(app) << " on the scaled EHP ("
              << params.gpuChiplets << " GPU chiplets x "
              << params.cusPerChiplet << " CUs, "
              << params.wavefrontsPerCu << " wavefronts/CU)...\n\n";

    Fig7Row row = study.compare(app, params);

    TextTable t({"metric", "chiplet EHP", "monolithic EHP"});
    t.row()
        .add("runtime (us)")
        .add(row.chiplet.runtimeUs, "%.1f")
        .add(row.monolithic.runtimeUs, "%.1f");
    t.row()
        .add("out-of-chiplet traffic")
        .add(row.chiplet.remoteTrafficFrac * 100.0, "%.1f%%")
        .add("n/a (single die)");
    t.row()
        .add("L2 hit rate")
        .add(row.chiplet.l2HitRate, "%.3f")
        .add(row.monolithic.l2HitRate, "%.3f");
    t.row()
        .add("mean router hops")
        .add(row.chiplet.meanHops, "%.2f")
        .add(row.monolithic.meanHops, "%.2f");
    t.row()
        .add("mean net latency (ns)")
        .add(row.chiplet.meanNetLatencyNs, "%.1f")
        .add(row.monolithic.meanNetLatencyNs, "%.1f");
    t.row()
        .add("HBM row-hit rate")
        .add(row.chiplet.hbmRowHitRate, "%.3f")
        .add(row.monolithic.hbmRowHitRate, "%.3f");
    t.row()
        .add("events processed")
        .add(static_cast<long long>(row.chiplet.eventsProcessed))
        .add(static_cast<long long>(row.monolithic.eventsProcessed));
    t.print(std::cout);

    std::cout << "\nEHP performance relative to monolithic: "
              << row.perfVsMonolithicPct << " %\n";
    return 0;
}

/**
 * @file
 * HSA concurrency walkthrough (paper Section II-A1): dependent-kernel
 * task graphs dispatched through user-mode AQL queues, and why the HSA
 * dispatch path matters for fine-grained DAGs — the paper's cited
 * approach for programming the EHP [13].
 *
 * Builds a wavefront-pattern DAG (a 2D sweep, SNAP-like) through the
 * shared TaskDag::wavefront generator — the same graph the
 * cluster-level scheduler layer studies (see taskgraph_explorer) —
 * maps it onto the 8 GPU chiplets' queues, and compares user-mode
 * dispatch latency against a legacy driver-mediated path at
 * cycle level.
 *
 * Usage: task_graph_scheduling [GRID_N]
 */

#include <iostream>
#include <string>
#include <vector>

#include "hsa/task_graph.hh"
#include "sim/simulation.hh"
#include "taskgraph/task_dag.hh"
#include "util/status.hh"
#include "util/string_utils.hh"
#include "util/table.hh"

using namespace ena;

namespace {

struct RunResult
{
    double makespanUs;
    double criticalPathUs;
    double efficiency;
};

/** Replay the shared wavefront DAG through the cycle-level HSA model. */
RunResult
runSweep(const TaskDag &dag, Tick dispatch_latency, Tick kernel_ticks)
{
    Simulation sim;
    AqlQueueParams qp;
    qp.dispatchLatency = dispatch_latency;
    qp.ringSlots = dag.size();
    std::vector<AqlQueue *> queues;
    for (int q = 0; q < 8; ++q) {
        queues.push_back(sim.create<AqlQueue>(
            strformat("gpu%d.queue", q), qp));
    }
    auto *graph = sim.create<TaskGraph>("sweep", queues);

    // Task ids are topological and dense in both layers, so the
    // cluster-level DAG replays 1:1; the wavefront's layer is the
    // anti-diagonal i+j, round-robined across chiplets.
    for (const DagTask &t : dag.tasks()) {
        std::vector<TaskId> deps;
        for (const DagEdge &d : t.deps)
            deps.push_back(d.task);
        graph->addTask(kernel_ticks, t.layer % 8, deps);
    }

    sim.initAll();
    graph->start();
    sim.run();

    RunResult r;
    r.makespanUs = static_cast<double>(graph->makespan()) / tickPerUs;
    r.criticalPathUs =
        static_cast<double>(graph->criticalPath()) / tickPerUs;
    r.efficiency = r.criticalPathUs / r.makespanUs;
    return r;
}

/** Parse GRID_N: an integer in [2, 512] (the ring must fit n^2). */
Expected<int>
tryGridSize(const std::string &arg)
{
    std::optional<long long> n = parseInt(arg);
    if (!n) {
        return Status::invalidArgument("grid size '", arg,
                                       "' is not an integer");
    }
    if (*n < 2 || *n > 512)
        return Status::outOfRange("grid size must be in [2, 512], got ",
                                  *n);
    return static_cast<int>(*n);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int n = 24;
    if (argc > 1) {
        Expected<int> parsed = tryGridSize(argv[1]);
        if (!parsed.ok()) {
            std::cerr << "task_graph_scheduling: "
                      << parsed.status().toString()
                      << "\nUsage: task_graph_scheduling [GRID_N]\n";
            return 2;
        }
        n = *parsed;
    }

    const Tick kernel = 5 * tickPerUs;      // 5 us micro-kernels
    const Tick hsa = 200 * tickPerNs;       // user-mode dispatch
    const Tick legacy = 8 * tickPerUs;      // driver-mediated launch

    std::cout << "2D wavefront sweep, " << n << "x" << n
              << " dependent 5-us kernels over 8 GPU queues\n\n";

    // The cycle-level model carries its own kernel duration; the
    // generator's flops/bytes are placeholders here.
    TaskDag dag = TaskDag::wavefront(n, 1.0, 0.0, App::SNAP);

    RunResult h = runSweep(dag, hsa, kernel);
    RunResult l = runSweep(dag, legacy, kernel);

    TextTable t({"dispatch path", "latency", "makespan (us)",
                 "critical path (us)", "efficiency"});
    t.row()
        .add("HSA user-mode queues")
        .add("200 ns")
        .add(h.makespanUs, "%.1f")
        .add(h.criticalPathUs, "%.1f")
        .add(h.efficiency, "%.2f");
    t.row()
        .add("legacy driver launch")
        .add("8 us")
        .add(l.makespanUs, "%.1f")
        .add(l.criticalPathUs, "%.1f")
        .add(l.efficiency, "%.2f");
    t.print(std::cout);

    std::cout << "\nHSA speedup on this DAG: "
              << strformat("%.2fx", l.makespanUs / h.makespanUs)
              << "\n\nFine-grained dependent kernels are exactly the "
                 "pattern the EHP's HPC workloads\n(sweeps, AMR, "
                 "multigrid) produce; cheap user-mode dispatch keeps "
                 "the critical path\nkernel-bound instead of "
                 "launch-bound.\n";
    return 0;
}

/**
 * @file
 * HSA concurrency walkthrough (paper Section II-A1): dependent-kernel
 * task graphs dispatched through user-mode AQL queues, and why the HSA
 * dispatch path matters for fine-grained DAGs — the paper's cited
 * approach for programming the EHP [13].
 *
 * Builds a wavefront-pattern DAG (a 2D sweep, SNAP-like) over the 8
 * GPU chiplets' queues and compares user-mode dispatch latency against
 * a legacy driver-mediated path.
 *
 * Usage: task_graph_scheduling [GRID_N]
 */

#include <iostream>
#include <string>
#include <vector>

#include "hsa/task_graph.hh"
#include "sim/simulation.hh"
#include "util/string_utils.hh"
#include "util/table.hh"

using namespace ena;

namespace {

struct RunResult
{
    double makespanUs;
    double criticalPathUs;
    double efficiency;
};

/** A 2D wavefront sweep: task (i,j) depends on (i-1,j) and (i,j-1). */
RunResult
runSweep(int n, Tick dispatch_latency, Tick kernel_ticks)
{
    Simulation sim;
    AqlQueueParams qp;
    qp.dispatchLatency = dispatch_latency;
    qp.ringSlots = static_cast<size_t>(n) * n;
    std::vector<AqlQueue *> queues;
    for (int q = 0; q < 8; ++q) {
        queues.push_back(sim.create<AqlQueue>(
            strformat("gpu%d.queue", q), qp));
    }
    auto *graph = sim.create<TaskGraph>("sweep", queues);

    std::vector<std::vector<TaskId>> grid(
        n, std::vector<TaskId>(n));
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            std::vector<TaskId> deps;
            if (i > 0)
                deps.push_back(grid[i - 1][j]);
            if (j > 0)
                deps.push_back(grid[i][j - 1]);
            // Round-robin the anti-diagonal across chiplets.
            int agent = (i + j) % 8;
            grid[i][j] = graph->addTask(kernel_ticks, agent, deps);
        }
    }

    sim.initAll();
    graph->start();
    sim.run();

    RunResult r;
    r.makespanUs = static_cast<double>(graph->makespan()) / tickPerUs;
    r.criticalPathUs =
        static_cast<double>(graph->criticalPath()) / tickPerUs;
    r.efficiency = r.criticalPathUs / r.makespanUs;
    return r;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int n = 24;
    if (argc > 1)
        n = std::stoi(argv[1]);

    const Tick kernel = 5 * tickPerUs;      // 5 us micro-kernels
    const Tick hsa = 200 * tickPerNs;       // user-mode dispatch
    const Tick legacy = 8 * tickPerUs;      // driver-mediated launch

    std::cout << "2D wavefront sweep, " << n << "x" << n
              << " dependent 5-us kernels over 8 GPU queues\n\n";

    RunResult h = runSweep(n, hsa, kernel);
    RunResult l = runSweep(n, legacy, kernel);

    TextTable t({"dispatch path", "latency", "makespan (us)",
                 "critical path (us)", "efficiency"});
    t.row()
        .add("HSA user-mode queues")
        .add("200 ns")
        .add(h.makespanUs, "%.1f")
        .add(h.criticalPathUs, "%.1f")
        .add(h.efficiency, "%.2f");
    t.row()
        .add("legacy driver launch")
        .add("8 us")
        .add(l.makespanUs, "%.1f")
        .add(l.criticalPathUs, "%.1f")
        .add(l.efficiency, "%.2f");
    t.print(std::cout);

    std::cout << "\nHSA speedup on this DAG: "
              << strformat("%.2fx", l.makespanUs / h.makespanUs)
              << "\n\nFine-grained dependent kernels are exactly the "
                 "pattern the EHP's HPC workloads\n(sweeps, AMR, "
                 "multigrid) produce; cheap user-mode dispatch keeps "
                 "the critical path\nkernel-bound instead of "
                 "launch-bound.\n";
    return 0;
}

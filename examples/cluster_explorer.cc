/**
 * @file
 * Scale-out machine explorer: load a combined node + cluster
 * description from one "key = value" file (or use the built-in
 * exascale sample), print the inter-node network's analytic
 * properties, the per-app communication efficiency under each
 * pattern, and weak/strong scaling curves.
 *
 * Usage: cluster_explorer [CONFIG_FILE] [APP]
 */

#include <iostream>

#include "cluster/cluster_config_io.hh"
#include "cluster/scale_out_study.hh"
#include "common/node_config_io.hh"
#include "core/ena.hh"
#include "util/table.hh"

using namespace ena;

namespace {

const char *sampleConfig = R"(
# The paper's 100,000-node machine on a tapered fat tree, with a
# denser-than-default NIC (6 x 25 GB/s SerDes links per node).
ehp.cus = 320
ehp.freq_ghz = 1.0
ehp.bw_tbs = 3.0
cluster.nodes = 100000
cluster.topology = fat-tree
cluster.links_per_node = 6
cluster.link_gbs = 25
cluster.fat_tree_taper = 2.0
)";

} // anonymous namespace

int
main(int argc, char **argv)
{
    Config cfg;
    if (argc > 1) {
        cfg = Config::fromFile(argv[1]);
    } else {
        cfg = Config::fromString(sampleConfig);
        std::cout << "No config given; using the built-in sample:\n\n"
                  << cfg.toString() << "\n";
    }
    App app = argc > 2 ? appFromName(argv[2]) : App::CoMD;

    NodeConfig node = nodeConfigFromConfig(cfg);
    ClusterConfig cluster = clusterConfigFromConfig(cfg);
    NodeEvaluator eval;
    ClusterEvaluator ce(eval, cluster);

    std::cout << "Inter-node network\n------------------\n"
              << ce.network().describe() << "\n";

    // Per-app communication efficiency under each pattern.
    TextTable t({"app", "halo eff", "allreduce eff", "all-to-all eff",
                 "halo EF", "analytic EF"});
    for (App a : allApps()) {
        t.row().add(appName(a));
        double halo_ef = 0.0, analytic_ef = 0.0;
        for (CommPattern p : allCommPatterns()) {
            CommSpec spec;
            spec.pattern = p;
            ClusterResult r = ce.evaluate(node, a, spec);
            t.add(r.commEfficiency, "%.3f");
            if (p == CommPattern::Halo) {
                halo_ef = r.systemExaflops;
                analytic_ef = r.analyticExaflops;
            }
        }
        t.add(halo_ef, "%.3f").add(analytic_ef, "%.3f");
    }
    t.print(std::cout);

    std::cout << "\nMean communication efficiency (all apps, halo): "
              << strformat("%.3f",
                           ce.meanCommEfficiency(node, CommSpec{}))
              << "\nGeomean comm-aware exaflops (all apps, halo): "
              << strformat("%.3f",
                           ce.geomeanSystemExaflops(node, CommSpec{}))
              << "\n\n";

    // Scaling curves for the chosen app.
    ScaleOutStudy study(eval, cluster);
    const std::vector<int> counts = {1,    64,    512,   4096,
                                     32768, cluster.nodes};
    CommSpec spec;
    auto weak = study.weakScaling(node, app, spec, counts);
    auto strong = study.strongScaling(node, app, spec, counts);

    TextTable s({"nodes", "weak eff", "weak EF", "strong eff",
                 "strong EF"});
    for (size_t i = 0; i < counts.size(); ++i) {
        s.row()
            .add(weak[i].nodes)
            .add(weak[i].efficiency, "%.3f")
            .add(weak[i].systemExaflops, "%.4f")
            .add(strong[i].efficiency, "%.3f")
            .add(strong[i].systemExaflops, "%.4f");
    }
    std::cout << appName(app) << " scaling on "
              << clusterTopologyName(cluster.topology) << ":\n";
    s.print(std::cout);

    std::cout << "\n(strong-scaling EF is the comm-derated projection "
                 "of the per-node rate;\nthe fixed problem itself does "
                 "not grow with the machine)\n";
    return 0;
}

/**
 * @file
 * Config-file-driven evaluation: load a node description from a
 * "key = value" file and evaluate it — the way a co-design study would
 * script parameter exploration without recompiling.
 *
 * Usage: custom_node [CONFIG_FILE]
 *
 * With no argument, a built-in sample config (a hypothetical
 * NVM-augmented, NTC-enabled node) is used and printed.
 */

#include <iostream>

#include "common/node_config_io.hh"
#include "core/ena.hh"
#include "util/table.hh"

using namespace ena;

namespace {

const char *sampleConfig = R"(
# A hypothetical denser node: more CUs at a lower clock, hybrid
# external memory, NTC + compression enabled.
ehp.cus = 384
ehp.freq_ghz = 0.9
ehp.bw_tbs = 4
extmem.dram_gb = 384
extmem.nvm_gb = 384
opts.ntc = true
opts.compression = true
)";

} // anonymous namespace

int
main(int argc, char **argv)
{
    Config cfg;
    if (argc > 1) {
        cfg = Config::fromFile(argv[1]);
    } else {
        cfg = Config::fromString(sampleConfig);
        std::cout << "No config given; using the built-in sample:\n\n"
                  << cfg.toString() << "\n";
    }

    NodeConfig node = nodeConfigFromConfig(cfg);
    NodeEvaluator eval;

    std::cout << "Evaluating " << node.label() << " ("
              << node.ext.dramGb << " GB ext DRAM + " << node.ext.nvmGb
              << " GB NVM)\n\n";

    TextTable t({"app", "perf (TF)", "budget W", "total W", "GF/W"});
    for (const EvalResult &r : eval.evaluateAll(node)) {
        t.row()
            .add(appName(r.app))
            .add(r.teraflops(), "%.2f")
            .add(r.power.budgetPower(), "%.1f")
            .add(r.power.total(), "%.1f")
            .add(r.perf.flops / 1e9 / r.power.total(), "%.1f");
    }
    t.print(std::cout);

    double budget = eval.maxBudgetPower(node);
    std::cout << "\nWorst-case budget power: "
              << strformat("%.1f", budget) << " W ("
              << (budget <= cal::nodePowerBudgetW ? "fits"
                                                  : "EXCEEDS")
              << " the " << cal::nodePowerBudgetW << " W budget)\n";
    return 0;
}

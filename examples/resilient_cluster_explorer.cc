/**
 * @file
 * Fault-aware scale-out explorer: load a node + cluster + resiliency
 * description from one "key = value" file (or use the built-in
 * sample), then walk the RAS-aware projection — FIT and MTTF at
 * machine scale, the checkpoint plan (fixed I/O vs riding the fabric),
 * the protection ladder's effective exaflops, and the biggest machine
 * that clears the paper's one-week interruption target.
 *
 * Usage: resilient_cluster_explorer [CONFIG_FILE] [APP]
 */

#include <iostream>

#include "cluster/cluster_config_io.hh"
#include "cluster/resilient_cluster.hh"
#include "cluster/resilient_cluster_io.hh"
#include "common/node_config_io.hh"
#include "core/ena.hh"
#include "util/table.hh"

using namespace ena;

namespace {

const char *sampleConfig = R"(
# The paper's 100,000-node machine with its Section II-A5 protection:
# ECC everywhere, opportunistic GPU RMT, checkpoints riding the fabric
# to the I/O nodes.
ehp.cus = 320
ehp.freq_ghz = 1.0
ehp.bw_tbs = 3.0
cluster.nodes = 100000
cluster.topology = fat-tree
cluster.ras.dram_ecc = true
cluster.ras.sram_ecc = true
cluster.ras.gpu_rmt = true
cluster.ras.rmt_policy = opportunistic
cluster.ras.checkpoint_via_fabric = true
)";

} // anonymous namespace

int
main(int argc, char **argv)
{
    Config cfg;
    if (argc > 1) {
        cfg = Config::fromFile(argv[1]);
    } else {
        cfg = Config::fromString(sampleConfig);
        std::cout << "No config given; using the built-in sample:\n\n"
                  << cfg.toString() << "\n";
    }
    App app = argc > 2 ? appFromName(argv[2]) : App::CoMD;

    NodeConfig node = nodeConfigFromConfig(cfg);
    ClusterConfig cluster = clusterConfigFromConfig(cfg);
    ResilienceSpec spec = resilienceSpecFromConfig(cfg);
    NodeEvaluator eval;
    ClusterEvaluator ce(eval, cluster);
    ResilientClusterEvaluator rce(ce, spec);
    ResilientResult r = rce.evaluate(node, app, CommSpec{});

    std::cout << "Machine\n-------\n" << ce.network().describe() << "\n";

    std::cout << "Fault budget at " << node.label() << " ("
              << appName(app) << ", halo exchange)\n"
              << "---------------------------------------------------\n"
              << "  protected node FIT:        "
              << strformat("%.0f", r.nodeFit) << "\n"
              << "  system MTTF:               "
              << strformat("%.2f", r.systemMttfHours) << " h\n"
              << "  user-visible interruption: "
              << strformat("%.1f", r.interruptionMttfHours) << " h ("
              << strformat("%.2f", r.interruptionMttfHours / 24.0)
              << " days; paper target: a week or more)\n\n";

    std::cout << "Checkpoint plan ("
              << (spec.checkpointViaFabric ? "drained via the fabric"
                                           : "fixed I/O bandwidth")
              << ")\n--------------------------------------------\n"
              << "  drain bandwidth: "
              << strformat("%.1f", r.drainBps / 1e9) << " GB/s/node\n"
              << "  checkpoint cost: "
              << strformat("%.1f", r.plan.checkpointCostS) << " s, "
              << "interval " << strformat("%.1f", r.plan.intervalS / 60.0)
              << " min (" << strformat("%.1f", r.plan.checkpointsPerDay)
              << " ckpts/day)\n"
              << "  machine efficiency: "
              << strformat("%.3f", r.ckptEfficiency)
              << (r.plan.mttfLimited
                      ? "  [degenerate: Young interval clamped to MTTF]"
                      : "")
              << "\n\n";

    std::cout << "Projection: analytic "
              << strformat("%.3f", r.cluster.analyticExaflops)
              << " EF -> comm-aware "
              << strformat("%.3f", r.cluster.systemExaflops)
              << " EF -> effective "
              << strformat("%.3f", r.effectiveExaflops) << " EF at "
              << strformat("%.1f", r.systemMw) << " MW ("
              << strformat("%.4f", r.effectiveExaflopsPerMw())
              << " EF/MW)\n\n";

    // The protection ladder on this machine.
    const std::vector<ProtectionVariant> &variants =
        standardProtectionVariants();
    TextTable t({"protection", "sys MTTF (h)", "interrupt MTTF (h)",
                 "ckpt eff", "RMT slow", "effective EF"});
    for (const ProtectionVariant &v : variants) {
        ResilientClusterEvaluator rv(ce, v.spec);
        ResilientResult rr = rv.evaluate(node, app, CommSpec{});
        t.row()
            .add(v.name)
            .add(rr.systemMttfHours, "%.2f")
            .add(rr.interruptionMttfHours, "%.1f")
            .add(rr.ckptEfficiency, "%.3f")
            .add(rr.rmtSlowdown, "%.3f")
            .add(rr.effectiveExaflops, "%.3f");
    }
    t.print(std::cout);

    // Biggest machine that clears the availability bar.
    ResilientScaleOutStudy study(eval, cluster);
    auto won = study.bestUnderAvailability(
        {node}, variants, {1000, 8000, 27000, 64000, 100000}, app,
        CommSpec{});
    std::cout << "\nAvailability-constrained best machine "
                 "(interruption >= 1 week, node <= 160 W):\n";
    if (!won.feasible) {
        std::cout << "  none feasible with these candidates\n";
    } else {
        std::cout << "  " << won.config.label() << " x " << won.nodes
                  << " nodes, " << variants[won.variant].name << ": "
                  << strformat("%.3f", won.result.effectiveExaflops)
                  << " effective EF at "
                  << strformat("%.1f",
                               won.result.interruptionMttfHours)
                  << " h between interruptions\n";
    }

    std::cout << "\n(The paper's 100,000-node target needs CPU-side "
                 "protection too: unprotected\nCPU logic dominates the "
                 "silent-fault rate that forces user intervention.)\n";
    return 0;
}

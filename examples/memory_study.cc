/**
 * @file
 * Two-level memory walkthrough (paper Sections II-B3 and V-B).
 *
 * Drives the MemoryManager with a synthetic access stream shaped by one
 * application's profile, comparing the software-managed, hardware-cache,
 * and static-interleave modes' in-package hit rates, then prints the
 * analytic miss-rate sensitivity (Fig. 8) for the same application.
 *
 * Usage: memory_study [APP]
 */

#include <iostream>

#include "core/ena.hh"
#include "core/twolevel_study.hh"
#include "mem/memory_manager.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "workloads/trace_gen.hh"

using namespace ena;

namespace {

/** Drive one manager with a profile-shaped page stream. */
double
driveManager(MemMode mode, const KernelProfile &k, std::uint64_t accesses)
{
    MemoryManagerParams mp;
    mp.mode = mode;
    // Scaled-down capacities that preserve the paper's 1:3 ratio of
    // in-package to external capacity.
    mp.inPackageBytes = 64ull << 20;
    mp.externalBytes = 192ull << 20;
    mp.epochAccesses = 1u << 14;
    MemoryManager mgr(mp);

    StreamLayout layout;
    layout.privateBase = 0;
    // Footprint scaled into the combined capacity.
    layout.privateSize = 224ull << 20;
    TraceGenerator gen(k, layout, 42);

    std::uint64_t seen = 0;
    while (seen < accesses) {
        TraceOp op = gen.next();
        if (op.kind == TraceOp::Kind::Compute)
            continue;
        mgr.access(op.addr, op.kind == TraceOp::Kind::Store);
        ++seen;
    }
    return mgr.inPackageHitRate();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    App app = App::LULESH;
    if (argc > 1)
        app = appFromName(argv[1]);
    const KernelProfile &k = profileFor(app);

    std::cout << "Two-level memory management for " << appName(app)
              << " (" << categoryName(k.category) << ")\n\n";

    TextTable modes({"mode", "in-package hit rate"});
    modes.row().add("software-managed").add(
        driveManager(MemMode::SoftwareManaged, k, 400000), "%.3f");
    modes.row().add("hardware cache").add(
        driveManager(MemMode::HwCache, k, 400000), "%.3f");
    modes.row().add("static interleave").add(
        driveManager(MemMode::StaticInterleave, k, 400000), "%.3f");
    modes.print(std::cout);

    std::cout << "\nCycle-level comparison at 25% in-package capacity "
                 "(software-managed vs\nhardware cache vs static "
                 "interleave), " << appName(app) << ":\n";
    TwoLevelStudy cycle;
    TwoLevelParams tp;
    tp.cusPerChiplet = 2;
    TextTable cyc({"mode", "achieved miss rate", "runtime (us)"});
    for (MemMode m : {MemMode::SoftwareManaged, MemMode::HwCache,
                      MemMode::StaticInterleave}) {
        tp.mode = m;
        TwoLevelPoint pt = cycle.run(app, tp, 0.25);
        const char *name = m == MemMode::SoftwareManaged
                               ? "software-managed"
                               : m == MemMode::HwCache
                                     ? "hardware cache"
                                     : "static interleave";
        cyc.row()
            .add(name)
            .add(pt.achievedMissRate, "%.3f")
            .add(pt.runtimeUs, "%.1f");
    }
    cyc.print(std::cout);

    NodeEvaluator eval;
    MissRateStudy study(eval, NodeConfig::bestMean());
    MissRateSeries series =
        study.run(app, {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
                        0.9, 1.0});
    std::cout << "\nPerformance vs in-package miss rate (Fig. 8 model):\n";
    TextTable t({"miss rate", "perf vs no misses"});
    for (const MissRatePoint &p : series.points)
        t.row().add(p.missRate, "%.1f").add(p.normPerf, "%.3f");
    t.print(std::cout);
    return 0;
}

/**
 * @file
 * Parameter-sweep CLI: evaluate one application along one hardware axis
 * and print a CSV series to stdout — the scripting workhorse for
 * co-design studies on top of the analytic models.
 *
 * Usage:
 *   sweep_tool APP AXIS FROM TO STEP [CUS FREQ_GHZ BW_TBS]
 *
 *   AXIS is one of: cus | freq | bw
 *   The optional trailing triple fixes the other axes (defaults to the
 *   best-mean configuration 320 / 1.0 / 3.0).
 *
 * Example:
 *   sweep_tool lulesh bw 1 7 0.5
 *   sweep_tool maxflops cus 64 384 32 320 1.0 1.0
 */

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/ena.hh"
#include "util/thread_pool.hh"

using namespace ena;

namespace {

int
usage()
{
    std::cerr << "usage: sweep_tool APP cus|freq|bw FROM TO STEP "
                 "[CUS FREQ BW]\n";
    return 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 6)
        return usage();

    App app = appFromName(argv[1]);
    std::string axis = argv[2];
    double from = std::stod(argv[3]);
    double to = std::stod(argv[4]);
    double step = std::stod(argv[5]);
    if (step <= 0.0 || to < from)
        return usage();
    if (axis != "cus" && axis != "freq" && axis != "bw")
        return usage();

    NodeConfig base = NodeConfig::bestMean();
    if (argc > 8) {
        base.cus = std::stoi(argv[6]);
        base.freqGhz = std::stod(argv[7]);
        base.bwTbs = std::stod(argv[8]);
    }

    std::vector<double> values;
    for (double v = from; v <= to + 1e-9; v += step)
        values.push_back(v);

    // Evaluate every point on the process-wide pool (ENA_THREADS) and
    // emit the CSV rows in sweep order afterwards.
    NodeEvaluator eval;
    std::vector<std::string> rows = parallel_map(
        values.size(), [&](std::size_t i) {
            double v = values[i];
            NodeConfig cfg = base;
            if (axis == "cus")
                cfg.cus = static_cast<int>(v);
            else if (axis == "freq")
                cfg.freqGhz = v;
            else
                cfg.bwTbs = v;
            cfg.validate();
            EvalResult r = eval.evaluate(cfg, app);
            std::ostringstream os;
            os << appName(app) << "," << axis << "," << v << ","
               << cfg.cus << "," << cfg.freqGhz << "," << cfg.bwTbs
               << "," << r.perf.opsPerByte << "," << r.teraflops()
               << "," << r.perf.activity.cuUtilization << ","
               << r.perf.trafficGbs << ","
               << r.power.budgetPower() << "," << r.power.total()
               << "," << r.perf.flops / 1e9 / r.power.total() << ","
               << (r.perf.memoryBound ? 1 : 0) << "\n";
            return os.str();
        });

    std::cout << "app,axis,value,cus,freq_ghz,bw_tbs,ops_per_byte,"
                 "teraflops,cu_utilization,traffic_gbs,budget_w,"
                 "total_w,gflops_per_w,memory_bound\n";
    for (const std::string &row : rows)
        std::cout << row;
    return 0;
}

/**
 * @file
 * Parameter-sweep CLI: evaluate one application along one hardware axis
 * and print a CSV series to stdout — the scripting workhorse for
 * co-design studies on top of the analytic models.
 *
 * Usage:
 *   sweep_tool [--server ENDPOINT] APP AXIS FROM TO STEP [CUS FREQ_GHZ BW_TBS]
 *
 *   AXIS is one of: cus | freq | bw
 *   The optional trailing triple fixes the other axes (defaults to the
 *   best-mean configuration 320 / 1.0 / 3.0).
 *
 * With --server the sweep is evaluated by a running ena-server (the
 * thin-client mode: all model work happens in the daemon, through the
 * process-wide memo cache) and the CSV is byte-identical to the local
 * run — the wire protocol round-trips every double exactly and the
 * formatting below happens client-side in both modes.
 *
 * Example:
 *   sweep_tool lulesh bw 1 7 0.5
 *   sweep_tool --server unix:ena-server.sock lulesh bw 1 7 0.5
 */

#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/ena.hh"
#include "server/client.hh"
#include "util/status.hh"
#include "util/string_utils.hh"
#include "util/thread_pool.hh"

using namespace ena;

namespace {

int
usage(const Status &why)
{
    std::cerr << "sweep_tool: " << why.toString()
              << "\nusage: sweep_tool [--server ENDPOINT] APP "
                 "cus|freq|bw FROM TO STEP [CUS FREQ BW]\n";
    return 2;
}

Expected<double>
tryNumber(const std::string &arg, const char *what)
{
    std::optional<double> v = parseDouble(arg);
    if (!v)
        return Status::invalidArgument(what, " '", arg,
                                       "' is not a number");
    return *v;
}

Expected<int>
tryCus(const std::string &arg)
{
    std::optional<long long> n = parseInt(arg);
    if (!n)
        return Status::invalidArgument("CU count '", arg,
                                       "' is not an integer");
    if (*n < 1 || *n > 4096)
        return Status::outOfRange("CU count must be in [1, 4096], got ",
                                  *n);
    return static_cast<int>(*n);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // Strip --server ENDPOINT; the remaining positionals parse as ever.
    std::string server;
    std::vector<char *> args;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--server" && i + 1 < argc)
            server = argv[++i];
        else
            args.push_back(argv[i]);
    }

    if (args.size() < 5)
        return usage(Status::invalidArgument(
            "expected at least 5 positional arguments, got ",
            args.size()));

    App app = appFromName(args[0]);
    std::string axis = args[1];
    Expected<double> from = tryNumber(args[2], "FROM");
    if (!from.ok())
        return usage(from.status());
    Expected<double> to = tryNumber(args[3], "TO");
    if (!to.ok())
        return usage(to.status());
    Expected<double> step = tryNumber(args[4], "STEP");
    if (!step.ok())
        return usage(step.status());
    if (*step <= 0.0 || *to < *from)
        return usage(Status::outOfRange(
            "need STEP > 0 and TO >= FROM, got FROM=", *from,
            " TO=", *to, " STEP=", *step));
    if (axis != "cus" && axis != "freq" && axis != "bw")
        return usage(Status::invalidArgument("unknown axis '", axis,
                                             "'"));

    NodeConfig base = NodeConfig::bestMean();
    bool haveBase = args.size() > 7;
    if (haveBase) {
        Expected<int> cus = tryCus(args[5]);
        if (!cus.ok())
            return usage(cus.status());
        base.cus = *cus;
        Expected<double> freq = tryNumber(args[6], "FREQ");
        if (!freq.ok())
            return usage(freq.status());
        base.freqGhz = *freq;
        Expected<double> bw = tryNumber(args[7], "BW");
        if (!bw.ok())
            return usage(bw.status());
        base.bwTbs = *bw;
    }

    std::vector<std::string> rows;
    if (!server.empty()) {
        // Thin-client mode: the daemon evaluates; we only format.
        Expected<Endpoint> ep = tryParseEndpoint(server);
        if (!ep.ok()) {
            std::cerr << "sweep_tool: " << ep.status().toString() << "\n";
            return 1;
        }
        ClientOptions opts;
        opts.endpoint = *ep;
        ServerClient client(opts);
        Expected<std::vector<SweepPoint>> points = client.sweepAxis(
            args[0], axis, *from, *to, *step,
            haveBase ? &base : nullptr);
        if (!points.ok()) {
            std::cerr << "sweep_tool: " << points.status().toString()
                      << "\n";
            return 1;
        }
        rows.reserve(points->size());
        for (const SweepPoint &p : *points) {
            std::ostringstream os;
            os << appName(app) << "," << axis << "," << p.value << ","
               << p.cus << "," << p.freqGhz << "," << p.bwTbs << ","
               << p.opsPerByte << "," << p.teraflops() << ","
               << p.cuUtilization << "," << p.trafficGbs << ","
               << p.budgetW << "," << p.totalW << ","
               << p.gflopsPerW() << "," << (p.memoryBound ? 1 : 0)
               << "\n";
            rows.push_back(os.str());
        }
    } else {
        std::vector<double> values;
        for (double v = *from; v <= *to + 1e-9; v += *step)
            values.push_back(v);

        // Evaluate every point on the process-wide pool (ENA_THREADS)
        // and emit the CSV rows in sweep order afterwards.
        NodeEvaluator eval;
        rows = parallel_map(values.size(), [&](std::size_t i) {
            double v = values[i];
            NodeConfig cfg = base;
            if (axis == "cus")
                cfg.cus = static_cast<int>(v);
            else if (axis == "freq")
                cfg.freqGhz = v;
            else
                cfg.bwTbs = v;
            cfg.validate();
            EvalResult r = eval.evaluate(cfg, app);
            std::ostringstream os;
            os << appName(app) << "," << axis << "," << v << ","
               << cfg.cus << "," << cfg.freqGhz << "," << cfg.bwTbs
               << "," << r.perf.opsPerByte << "," << r.teraflops()
               << "," << r.perf.activity.cuUtilization << ","
               << r.perf.trafficGbs << ","
               << r.power.budgetPower() << "," << r.power.total()
               << "," << r.perf.flops / 1e9 / r.power.total() << ","
               << (r.perf.memoryBound ? 1 : 0) << "\n";
            return os.str();
        });
    }

    std::cout << "app,axis,value,cus,freq_ghz,bw_tbs,ops_per_byte,"
                 "teraflops,cu_utilization,traffic_gbs,budget_w,"
                 "total_w,gflops_per_w,memory_bound\n";
    for (const std::string &row : rows)
        std::cout << row;
    return 0;
}

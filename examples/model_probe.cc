/**
 * @file
 * Model probe: full performance + power breakdown of one (config, app)
 * pair — the raw numbers behind every figure. Useful both as an API
 * example and for calibration work.
 *
 * Usage: model_probe APP CUS FREQ_GHZ BW_TBS [--opt]
 */

#include <iostream>
#include <string>

#include "core/ena.hh"

using namespace ena;

int
main(int argc, char **argv)
{
    if (argc < 5) {
        std::cerr << "usage: model_probe APP CUS FREQ BW [--opt]\n";
        return 1;
    }
    App app = appFromName(argv[1]);
    NodeConfig cfg;
    cfg.cus = std::stoi(argv[2]);
    cfg.freqGhz = std::stod(argv[3]);
    cfg.bwTbs = std::stod(argv[4]);
    if (argc > 5 && std::string(argv[5]) == "--opt")
        cfg.opts = PowerOptConfig::all();
    cfg.validate();

    NodeEvaluator eval;
    EvalResult r = eval.evaluate(cfg, app);
    const PerfResult &p = r.perf;
    const PowerBreakdown &w = r.power;

    std::cout << appName(app) << " @ " << cfg.label() << "\n\n";
    std::cout << "perf:\n"
              << "  peak          " << p.peakFlops / 1e12 << " TF\n"
              << "  compute rate  " << p.computeRate / 1e12 << " TF\n"
              << "  memory rate   " << p.memoryRate / 1e12 << " TF\n"
              << "  achieved      " << p.flops / 1e12 << " TF ("
              << (p.memoryBound ? "memory" : "compute") << "-bound)\n"
              << "  ops/byte      " << p.opsPerByte << "\n"
              << "  traffic       " << p.trafficGbs << " GB/s\n"
              << "  cu util       " << p.activity.cuUtilization << "\n";
    std::cout << "power (W):\n"
              << "  cuDyn         " << w.cuDyn << "\n"
              << "  cuStatic      " << w.cuStatic << "\n"
              << "  nocDyn        " << w.nocDyn << "\n"
              << "  nocStatic     " << w.nocStatic << "\n"
              << "  hbmDyn        " << w.hbmDyn << "\n"
              << "  hbmStatic     " << w.hbmStatic << "\n"
              << "  cpu           " << w.cpu << "\n"
              << "  sys           " << w.sys << "\n"
              << "  extMemDyn     " << w.extMemDyn << "\n"
              << "  extMemStatic  " << w.extMemStatic << "\n"
              << "  serdesDyn     " << w.serdesDyn << "\n"
              << "  serdesStatic  " << w.serdesStatic << "\n"
              << "  package       " << w.packagePower() << "\n"
              << "  budget scope  " << w.budgetPower() << "\n"
              << "  total         " << w.total() << "\n";
    return 0;
}

/**
 * @file
 * Unit tests for the RAS fault model.
 */

#include <gtest/gtest.h>

#include "ras/fault_model.hh"

using namespace ena;

TEST(FaultModel, RawFitScalesWithResources)
{
    FaultModel fm;
    NodeConfig small = NodeConfig::bestMean();
    small.cus = 192;
    NodeConfig big = NodeConfig::bestMean();
    big.cus = 384;
    EXPECT_GT(fm.rawNodeFit(big).gpuLogic,
              fm.rawNodeFit(small).gpuLogic * 1.9);
    EXPECT_DOUBLE_EQ(fm.rawNodeFit(big).extDram,
                     fm.rawNodeFit(small).extDram);
}

TEST(FaultModel, MemoryDominatesRawFit)
{
    // Unprotected DRAM capacity is the dominant fault source —
    // the reason ECC is non-negotiable.
    FaultModel fm;
    FitBreakdown f = fm.rawNodeFit(NodeConfig::bestMean());
    EXPECT_GT(f.hbm + f.extDram, 0.8 * f.total());
}

TEST(FaultModel, EccCutsArrayFitBy50x)
{
    FaultModel none({false, false, false, 2.0});
    FaultModel ecc({true, true, false, 2.0});
    NodeConfig cfg = NodeConfig::bestMean();
    EXPECT_NEAR(ecc.protectedNodeFit(cfg).hbm /
                    none.protectedNodeFit(cfg).hbm,
                0.02, 1e-9);
    // Logic untouched by ECC.
    EXPECT_DOUBLE_EQ(ecc.protectedNodeFit(cfg).gpuLogic,
                     none.protectedNodeFit(cfg).gpuLogic);
}

TEST(FaultModel, RmtCutsGpuLogicFit)
{
    FaultModel ecc({true, true, false, 2.0});
    FaultModel rmt({true, true, true, 2.0});
    NodeConfig cfg = NodeConfig::bestMean();
    EXPECT_LT(rmt.protectedNodeFit(cfg).gpuLogic,
              ecc.protectedNodeFit(cfg).gpuLogic * 0.1);
}

TEST(FaultModel, NtcRaisesLogicFit)
{
    FaultModel fm;
    NodeConfig base = NodeConfig::bestMean();
    NodeConfig ntc = base;
    ntc.opts.ntc = true;
    EXPECT_NEAR(fm.rawNodeFit(ntc).gpuLogic /
                    fm.rawNodeFit(base).gpuLogic,
                fm.ras().ntcSerMultiplier, 1e-9);
    // DRAM SER is voltage-domain independent here.
    EXPECT_DOUBLE_EQ(fm.rawNodeFit(ntc).hbm, fm.rawNodeFit(base).hbm);
}

TEST(FaultModel, MttfInversesFit)
{
    FaultModel fm;
    NodeConfig cfg = NodeConfig::bestMean();
    double fit = fm.protectedNodeFit(cfg).total();
    EXPECT_NEAR(fm.nodeMttfHours(cfg), 1e9 / fit, 1e-6);
    EXPECT_NEAR(fm.systemMttfHours(cfg, 100000),
                fm.nodeMttfHours(cfg) / 100000.0, 1e-9);
}

TEST(FaultModel, ProtectionReducesSilentFraction)
{
    NodeConfig cfg = NodeConfig::bestMean();
    FaultModel none({false, false, false, 2.0});
    FaultModel full({true, true, true, 2.0});
    EXPECT_GT(none.silentFraction(cfg), 0.5);
    EXPECT_LT(full.silentFraction(cfg), 0.5);
    EXPECT_LE(full.silentFit(cfg), full.protectedNodeFit(cfg).total());
}

TEST(FaultModel, NtcMultiplierTouchesOnlyVoltageScaledParts)
{
    // The NTC SER multiplier models low-voltage charge-collection
    // sensitivity: it applies to logic, SRAM, and the interconnect,
    // while the DRAM families (HBM, external DRAM, NVM) keep their own
    // SER regardless of the compute voltage domain.
    FaultModel fm({false, false, false, 3.0});
    NodeConfig base = NodeConfig::bestMean();
    base.ext = ExtMemConfig::hybrid();   // nonzero NVM FIT
    NodeConfig ntc = base;
    ntc.opts.ntc = true;
    FitBreakdown b = fm.rawNodeFit(base);
    FitBreakdown n = fm.rawNodeFit(ntc);
    EXPECT_NEAR(n.cpuLogic / b.cpuLogic, 3.0, 1e-9);
    EXPECT_NEAR(n.gpuLogic / b.gpuLogic, 3.0, 1e-9);
    EXPECT_NEAR(n.sram / b.sram, 3.0, 1e-9);
    EXPECT_NEAR(n.interconnect / b.interconnect, 3.0, 1e-9);
    EXPECT_DOUBLE_EQ(n.hbm, b.hbm);
    EXPECT_DOUBLE_EQ(n.extDram, b.extDram);
    EXPECT_DOUBLE_EQ(n.nvm, b.nvm);
}

TEST(FaultModel, SilentFractionInUnitRangeForAllVariants)
{
    NodeConfig cfg = NodeConfig::bestMean();
    cfg.ext = ExtMemConfig::hybrid();
    for (bool dram_ecc : {false, true}) {
        for (bool sram_ecc : {false, true}) {
            for (bool rmt : {false, true}) {
                FaultModel fm({dram_ecc, sram_ecc, rmt, 2.0});
                double s = fm.silentFraction(cfg);
                EXPECT_GE(s, 0.0)
                    << dram_ecc << sram_ecc << rmt;
                EXPECT_LE(s, 1.0)
                    << dram_ecc << sram_ecc << rmt;
            }
        }
    }
}

TEST(FaultModel, SystemMttfScalesInverselyWithNodeCount)
{
    FaultModel fm({true, true, true, 2.0});
    NodeConfig cfg = NodeConfig::bestMean();
    double node_mttf = fm.nodeMttfHours(cfg);
    for (int n : {1, 10, 1000, 27000, 100000}) {
        EXPECT_NEAR(fm.systemMttfHours(cfg, n), node_mttf / n,
                    node_mttf / n * 1e-12)
            << n << " nodes";
    }
}

TEST(FaultModel, SystemMttfAtScaleIsHoursNotYears)
{
    // The core exascale RAS challenge: a fine per-node MTTF becomes
    // hours at 100,000 nodes.
    FaultModel fm({true, true, true, 2.0});
    NodeConfig cfg = NodeConfig::bestMean();
    EXPECT_GT(fm.nodeMttfHours(cfg), 8760.0);          // > 1 year/node
    double sys = fm.systemMttfHours(cfg, 100000);
    EXPECT_GT(sys, 1.0);
    EXPECT_LT(sys, 100.0);
}

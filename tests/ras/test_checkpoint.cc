/**
 * @file
 * Unit tests for the checkpoint/restart efficiency model.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ras/checkpoint.hh"

using namespace ena;

TEST(Checkpoint, YoungFormula)
{
    CheckpointParams p;
    p.checkpointBytes = 100e9;
    p.ioBandwidthBps = 10e9;   // delta = 10 s + overhead 5 s = 15 s
    p.overheadS = 5.0;
    CheckpointModel model(p);
    CheckpointPlan plan = model.plan(10.0);   // 36000 s MTTF
    EXPECT_NEAR(plan.checkpointCostS, 15.0, 1e-9);
    EXPECT_NEAR(plan.intervalS, std::sqrt(2.0 * 15.0 * 36000.0), 1e-6);
}

TEST(Checkpoint, OptimalIntervalBeatsNeighbors)
{
    CheckpointModel model;
    double mttf = 8.0;
    CheckpointPlan plan = model.plan(mttf);
    double at_opt = model.efficiencyAt(plan.intervalS, mttf);
    EXPECT_GE(at_opt, model.efficiencyAt(plan.intervalS * 0.5, mttf));
    EXPECT_GE(at_opt, model.efficiencyAt(plan.intervalS * 2.0, mttf));
}

TEST(Checkpoint, LongerMttfMeansHigherEfficiency)
{
    CheckpointModel model;
    EXPECT_GT(model.plan(50.0).efficiency, model.plan(2.0).efficiency);
    EXPECT_GT(model.plan(50.0).intervalS, model.plan(2.0).intervalS);
}

TEST(Checkpoint, FasterIoMeansHigherEfficiency)
{
    CheckpointParams slow;
    slow.ioBandwidthBps = 1e9;
    CheckpointParams fast;
    fast.ioBandwidthBps = 50e9;
    EXPECT_GT(CheckpointModel(fast).plan(6.0).efficiency,
              CheckpointModel(slow).plan(6.0).efficiency);
}

TEST(Checkpoint, EfficiencyInUnitRange)
{
    CheckpointModel model;
    for (double mttf : {0.5, 2.0, 10.0, 100.0}) {
        CheckpointPlan plan = model.plan(mttf);
        EXPECT_GE(plan.efficiency, 0.0);
        EXPECT_LT(plan.efficiency, 1.0);
        EXPECT_GT(plan.checkpointsPerDay, 0.0);
    }
}

TEST(CheckpointDeathTest, BadInputsPanic)
{
    CheckpointModel model;
    EXPECT_DEATH(model.plan(0.0), "positive");
    EXPECT_DEATH(model.efficiencyAt(0.0, 5.0), "positive");
}

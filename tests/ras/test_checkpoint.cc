/**
 * @file
 * Unit tests for the checkpoint/restart efficiency model.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "ras/checkpoint.hh"

using namespace ena;

TEST(Checkpoint, YoungFormula)
{
    CheckpointParams p;
    p.checkpointBytes = 100e9;
    p.ioBandwidthBps = 10e9;   // delta = 10 s + overhead 5 s = 15 s
    p.overheadS = 5.0;
    CheckpointModel model(p);
    CheckpointPlan plan = model.plan(10.0);   // 36000 s MTTF
    EXPECT_NEAR(plan.checkpointCostS, 15.0, 1e-9);
    EXPECT_NEAR(plan.intervalS, std::sqrt(2.0 * 15.0 * 36000.0), 1e-6);
}

TEST(Checkpoint, OptimalIntervalBeatsNeighbors)
{
    CheckpointModel model;
    double mttf = 8.0;
    CheckpointPlan plan = model.plan(mttf);
    double at_opt = model.efficiencyAt(plan.intervalS, mttf);
    EXPECT_GE(at_opt, model.efficiencyAt(plan.intervalS * 0.5, mttf));
    EXPECT_GE(at_opt, model.efficiencyAt(plan.intervalS * 2.0, mttf));
}

TEST(Checkpoint, LongerMttfMeansHigherEfficiency)
{
    CheckpointModel model;
    EXPECT_GT(model.plan(50.0).efficiency, model.plan(2.0).efficiency);
    EXPECT_GT(model.plan(50.0).intervalS, model.plan(2.0).intervalS);
}

TEST(Checkpoint, FasterIoMeansHigherEfficiency)
{
    CheckpointParams slow;
    slow.ioBandwidthBps = 1e9;
    CheckpointParams fast;
    fast.ioBandwidthBps = 50e9;
    EXPECT_GT(CheckpointModel(fast).plan(6.0).efficiency,
              CheckpointModel(slow).plan(6.0).efficiency);
}

TEST(Checkpoint, EfficiencyInUnitRange)
{
    CheckpointModel model;
    for (double mttf : {0.5, 2.0, 10.0, 100.0}) {
        CheckpointPlan plan = model.plan(mttf);
        EXPECT_GE(plan.efficiency, 0.0);
        EXPECT_LT(plan.efficiency, 1.0);
        EXPECT_GT(plan.checkpointsPerDay, 0.0);
    }
}

TEST(Checkpoint, CheckpointsPerDayCountsFullCycles)
{
    // Regression: checkpointsPerDay divided the day by the work
    // interval alone, but a cycle is work *plus* the checkpoint it
    // ends on.
    CheckpointParams p;
    p.checkpointBytes = 100e9;
    p.ioBandwidthBps = 10e9;
    p.overheadS = 5.0;   // delta = 15 s
    CheckpointModel model(p);
    CheckpointPlan plan = model.plan(10.0);
    EXPECT_NEAR(plan.checkpointsPerDay,
                86400.0 / (plan.intervalS + plan.checkpointCostS), 1e-9);
    // Pre-fix value 86400 / interval is strictly larger.
    EXPECT_LT(plan.checkpointsPerDay, 86400.0 / plan.intervalS);
}

TEST(Checkpoint, TinyMttfClampsYoungInterval)
{
    // Young's tau = sqrt(2 * delta * M) exceeds M once M < 2 * delta:
    // the machine expects to fail before its first checkpoint. The
    // plan must clamp the interval to the MTTF and flag itself.
    CheckpointParams p;
    p.checkpointBytes = 100e9;
    p.ioBandwidthBps = 10e9;
    p.overheadS = 5.0;   // delta = 15 s; degenerate below 30 s MTTF
    CheckpointModel model(p);

    double mttf_h = 20.0 / 3600.0;   // 20 s MTTF < 2 * delta
    CheckpointPlan plan = model.plan(mttf_h);
    EXPECT_TRUE(plan.mttfLimited);
    EXPECT_DOUBLE_EQ(plan.intervalS, 20.0);
    EXPECT_GE(plan.efficiency, 0.0);
    EXPECT_LT(plan.efficiency, 1.0);

    // A healthy MTTF stays un-flagged with the unclamped optimum.
    CheckpointPlan healthy = model.plan(10.0);
    EXPECT_FALSE(healthy.mttfLimited);
    EXPECT_NEAR(healthy.intervalS,
                std::sqrt(2.0 * 15.0 * 36000.0), 1e-6);
}

TEST(CheckpointDeathTest, BadInputsPanic)
{
    CheckpointModel model;
    EXPECT_DEATH(model.plan(0.0), "positive");
    EXPECT_DEATH(model.efficiencyAt(0.0, 5.0), "positive");
}

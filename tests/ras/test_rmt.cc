/**
 * @file
 * Unit tests for the redundant-multithreading model.
 */

#include <gtest/gtest.h>

#include "ras/rmt.hh"

using namespace ena;

namespace {

Activity
withUtil(double util)
{
    Activity a;
    a.cuUtilization = util;
    return a;
}

} // anonymous namespace

TEST(Rmt, OffMeansNoCoverageNoCost)
{
    RmtModel rmt;
    RmtOutcome o = rmt.evaluate(withUtil(0.5), RmtPolicy::Off);
    EXPECT_DOUBLE_EQ(o.coverage, 0.0);
    EXPECT_DOUBLE_EQ(o.slowdown, 1.0);
    EXPECT_DOUBLE_EQ(o.extraCuActivity, 0.0);
}

TEST(Rmt, OpportunisticFullCoverageWhenIdleDominates)
{
    RmtModel rmt;
    RmtOutcome o = rmt.evaluate(withUtil(0.2), RmtPolicy::Opportunistic);
    EXPECT_DOUBLE_EQ(o.coverage, 1.0);
    EXPECT_LT(o.slowdown, 1.05);
}

TEST(Rmt, OpportunisticCoverageShrinksWithUtilization)
{
    RmtModel rmt;
    double prev = 1.1;
    for (double util : {0.4, 0.6, 0.8, 0.95}) {
        RmtOutcome o =
            rmt.evaluate(withUtil(util), RmtPolicy::Opportunistic);
        EXPECT_LE(o.coverage, prev);
        prev = o.coverage;
    }
    // At 80% utilization only the idle 20% can host duplicates.
    RmtOutcome o = rmt.evaluate(withUtil(0.8), RmtPolicy::Opportunistic);
    EXPECT_NEAR(o.coverage, 0.25, 1e-9);
}

TEST(Rmt, OpportunisticNeverStealsMuchPerformance)
{
    RmtModel rmt;
    for (double util : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
        RmtOutcome o =
            rmt.evaluate(withUtil(util), RmtPolicy::Opportunistic);
        EXPECT_LT(o.slowdown, 1.15);
    }
}

TEST(Rmt, FullPolicyAlwaysCovers)
{
    RmtModel rmt;
    for (double util : {0.1, 0.5, 0.9}) {
        EXPECT_DOUBLE_EQ(
            rmt.evaluate(withUtil(util), RmtPolicy::Full).coverage,
            1.0);
    }
}

TEST(Rmt, FullPolicyDilatesBusyKernels)
{
    RmtModel rmt;
    RmtOutcome idle = rmt.evaluate(withUtil(0.2), RmtPolicy::Full);
    RmtOutcome busy = rmt.evaluate(withUtil(0.9), RmtPolicy::Full);
    EXPECT_LT(idle.slowdown, 1.2);
    EXPECT_GT(busy.slowdown, 1.7);
}

TEST(Rmt, FullBeatsOpportunisticOnCoverageCostsMoreWhenBusy)
{
    RmtModel rmt;
    Activity busy = withUtil(0.85);
    RmtOutcome opp = rmt.evaluate(busy, RmtPolicy::Opportunistic);
    RmtOutcome full = rmt.evaluate(busy, RmtPolicy::Full);
    EXPECT_GT(full.coverage, opp.coverage);
    EXPECT_GT(full.slowdown, opp.slowdown);
}

TEST(RmtDeathTest, BadOverheadPanics)
{
    EXPECT_DEATH(RmtModel(1.5), "overhead");
}

TEST(Rmt, PolicyNamesRoundTrip)
{
    for (RmtPolicy p : allRmtPolicies())
        EXPECT_EQ(rmtPolicyFromName(rmtPolicyName(p)), p);
    EXPECT_EQ(rmtPolicyFromName("none"), RmtPolicy::Off);
    EXPECT_EQ(rmtPolicyFromName("disabled"), RmtPolicy::Off);
    EXPECT_EQ(rmtPolicyFromName("OPPORTUNISTIC"), RmtPolicy::Opportunistic);
}

TEST(RmtDeathTest, UnknownPolicyNamePanics)
{
    EXPECT_DEATH(rmtPolicyFromName("triple"), "policy");
}

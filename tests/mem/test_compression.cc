/**
 * @file
 * Unit tests for the FPC/BDI cache-line compressors and the synthetic
 * compressibility measurement.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "mem/compression.hh"

using namespace ena;

namespace {

CacheLine
lineOfU32(std::uint32_t v)
{
    CacheLine l{};
    for (size_t i = 0; i < 16; ++i)
        std::memcpy(l.data() + i * 4, &v, 4);
    return l;
}

CacheLine
lineOfU64(std::uint64_t v)
{
    CacheLine l{};
    for (size_t i = 0; i < 8; ++i)
        std::memcpy(l.data() + i * 8, &v, 8);
    return l;
}

} // anonymous namespace

TEST(Fpc, ZeroLineIsTiny)
{
    CacheLine zero{};
    // 16 words x 3 prefix bits = 48 bits = 6 bytes.
    EXPECT_EQ(LineCompressor::fpcSize(zero), 6u);
}

TEST(Fpc, SmallSignedValuesCompress)
{
    // Values fitting 4 bits: 16 x (3+4) = 112 bits = 14 bytes.
    EXPECT_EQ(LineCompressor::fpcSize(lineOfU32(5)), 14u);
    // Negative small values sign-extend.
    EXPECT_EQ(LineCompressor::fpcSize(lineOfU32(0xFFFFFFFF)), 14u);
}

TEST(Fpc, ByteAndHalfwordTiers)
{
    // 8-bit tier: 16 x (3+8) = 176 bits = 22 bytes.
    EXPECT_EQ(LineCompressor::fpcSize(lineOfU32(100)), 22u);
    // 16-bit tier: 16 x (3+16) = 304 bits = 38 bytes.
    EXPECT_EQ(LineCompressor::fpcSize(lineOfU32(20000)), 38u);
}

TEST(Fpc, HalfwordPaddedPattern)
{
    // Upper halfword data, lower zeros: 3+16 per word.
    EXPECT_EQ(LineCompressor::fpcSize(lineOfU32(0x4D2B0000u)), 38u);
}

TEST(Fpc, RepeatedBytePattern)
{
    // 0xABABABAB: 3+8 per word -> 22 bytes.
    EXPECT_EQ(LineCompressor::fpcSize(lineOfU32(0xABABABABu)), 22u);
}

TEST(Fpc, IncompressibleCapsAt64)
{
    SyntheticData gen(5);
    CacheLine rnd = gen.line(DataKind::RandomTable);
    size_t s = LineCompressor::fpcSize(rnd);
    // 3 extra prefix bits per word would exceed 64; capped.
    EXPECT_EQ(s, 64u);
}

TEST(Bdi, ZeroAndRepeatedSpecialCases)
{
    CacheLine zero{};
    EXPECT_EQ(LineCompressor::bdiSize(zero), 1u);
    EXPECT_EQ(LineCompressor::bdiSize(lineOfU64(0x0123456789abcdefull)),
              9u);
}

TEST(Bdi, Base8Delta1)
{
    CacheLine l{};
    std::uint64_t base = 0x1000000000ull;
    for (size_t i = 0; i < 8; ++i) {
        std::uint64_t v = base + i;   // deltas fit one byte
        std::memcpy(l.data() + i * 8, &v, 8);
    }
    // 8 (base) + 7 (deltas) + 1 (meta) = 16.
    EXPECT_EQ(LineCompressor::bdiSize(l), 16u);
}

TEST(Bdi, Base4Delta2)
{
    CacheLine l{};
    std::uint32_t base = 0x00800000u;
    for (size_t i = 0; i < 16; ++i) {
        std::uint32_t v =
            base + static_cast<std::uint32_t>(i * 1000);  // 2-byte deltas
        std::memcpy(l.data() + i * 4, &v, 4);
    }
    // Best fit: 4 + 15*2 + 1 = 35.
    EXPECT_EQ(LineCompressor::bdiSize(l), 35u);
}

TEST(Bdi, RandomDataIncompressible)
{
    SyntheticData gen(9);
    EXPECT_EQ(LineCompressor::bdiSize(gen.line(DataKind::RandomTable)),
              64u);
}

TEST(Compression, BestPicksTheSmaller)
{
    CacheLine small = lineOfU32(5);
    EXPECT_EQ(LineCompressor::compressedSize(small, CompressScheme::Best),
              std::min(LineCompressor::fpcSize(small),
                       LineCompressor::bdiSize(small)));
}

TEST(Compression, RatioAlwaysAtLeastOne)
{
    SyntheticData gen(11);
    for (DataKind k : {DataKind::ZeroFill, DataKind::SmoothField,
                       DataKind::IndexArray, DataKind::RandomTable,
                       DataKind::Mixed}) {
        for (int i = 0; i < 50; ++i) {
            double r =
                LineCompressor::ratio(gen.line(k), CompressScheme::Best);
            EXPECT_GE(r, 1.0);
            EXPECT_LE(r, 64.0);
        }
    }
}

TEST(Compression, SmoothFieldsBeatRandomTables)
{
    // The mechanism behind the paper's "LULESH benefits the most":
    // its PDE fields compress; XSBench's cross-section tables do not.
    TrafficCompressionModel model;
    double lulesh =
        model.measureRatio(App::LULESH, CompressScheme::Best, 500);
    double xsbench =
        model.measureRatio(App::XSBench, CompressScheme::Best, 500);
    EXPECT_GT(lulesh, xsbench * 1.3);
    EXPECT_GT(lulesh, 1.4);
    EXPECT_LT(xsbench, 1.3);
}

TEST(Compression, MeasuredRatiosTrackProfileOrdering)
{
    // The per-app compressRatio used by the power model should order
    // the same way the measured synthetic streams do.
    TrafficCompressionModel model;
    double lulesh =
        model.measureRatio(App::LULESH, CompressScheme::Best, 500);
    double comd =
        model.measureRatio(App::CoMD, CompressScheme::Best, 500);
    double xs =
        model.measureRatio(App::XSBench, CompressScheme::Best, 500);
    EXPECT_GT(lulesh, comd);
    EXPECT_GT(comd, xs);
    EXPECT_GT(profileFor(App::LULESH).compressRatio,
              profileFor(App::CoMD).compressRatio);
    EXPECT_GT(profileFor(App::CoMD).compressRatio,
              profileFor(App::XSBench).compressRatio);
}

TEST(Compression, MeasurementIsDeterministic)
{
    TrafficCompressionModel model;
    EXPECT_DOUBLE_EQ(
        model.measureRatio(App::SNAP, CompressScheme::Fpc, 200, 3),
        model.measureRatio(App::SNAP, CompressScheme::Fpc, 200, 3));
}

/**
 * @file
 * Unit tests for the external-memory network: chain construction,
 * module placement, DRAM vs NVM timing, and interface serialization.
 */

#include <gtest/gtest.h>

#include "mem/ext_memory.hh"
#include "sim/simulation.hh"

using namespace ena;

namespace {

struct ExtFixture : testing::Test
{
    Simulation sim;

    ExternalMemoryNetwork *
    build(const ExtMemConfig &cfg)
    {
        auto *net = sim.create<ExternalMemoryNetwork>("ext", cfg);
        sim.initAll();
        return net;
    }

    double
    timedAccess(ExternalMemoryNetwork *net, std::uint64_t addr,
                bool write)
    {
        Tick start = sim.curTick();
        Tick done_at = 0;
        net->access(addr, 64, write, [&] { done_at = sim.curTick(); });
        sim.run();
        return static_cast<double>(done_at - start) / tickPerNs;
    }
};

} // anonymous namespace

TEST_F(ExtFixture, DramOnlyModuleCount)
{
    auto *net = build(ExtMemConfig::dramOnly());
    // 768 GB / 64 GB modules = 12 modules over 8 interfaces.
    EXPECT_EQ(net->totalModules(), 12);
    EXPECT_EQ(net->numInterfaces(), 8);
}

TEST_F(ExtFixture, HybridHasFewerModules)
{
    auto *net = build(ExtMemConfig::hybrid());
    // 384 GB DRAM (6 modules) + 384 GB NVM (2 modules of 256 GB).
    EXPECT_EQ(net->totalModules(), 8);
}

TEST_F(ExtFixture, DramOnlyAddressesNeverReachNvm)
{
    auto *net = build(ExtMemConfig::dramOnly());
    for (std::uint64_t a = 0; a < 64; ++a) {
        EXPECT_EQ(static_cast<int>(net->techOf(a * (1ull << 21))),
                  static_cast<int>(ExtMemTech::Dram));
    }
}

TEST_F(ExtFixture, HybridReachesBothTechnologies)
{
    auto *net = build(ExtMemConfig::hybrid());
    bool saw_dram = false;
    bool saw_nvm = false;
    for (std::uint64_t a = 0; a < 4096; ++a) {
        ExtMemTech t = net->techOf(a * (1ull << 20));
        saw_dram |= t == ExtMemTech::Dram;
        saw_nvm |= t == ExtMemTech::Nvm;
    }
    EXPECT_TRUE(saw_dram);
    EXPECT_TRUE(saw_nvm);
}

TEST_F(ExtFixture, DeeperModulesAreSlower)
{
    auto *net = build(ExtMemConfig::dramOnly());
    // Find two addresses at different chain depths on any interface.
    std::uint64_t shallow = 0;
    std::uint64_t deep = 0;
    bool found = false;
    for (std::uint64_t a = 0; a < 16384 && !found; ++a) {
        std::uint64_t addr = a * (1ull << 20);
        if (net->chainDepthOf(addr) == 0)
            shallow = addr;
        if (net->chainDepthOf(addr) >= 1) {
            deep = addr;
            found = true;
        }
    }
    ASSERT_TRUE(found) << "no deep module found";
    double t_shallow = timedAccess(net, shallow, false);
    double t_deep = timedAccess(net, deep, false);
    EXPECT_GT(t_deep, t_shallow);
}

TEST_F(ExtFixture, NvmWritesSlowerThanReads)
{
    auto *net = build(ExtMemConfig::hybrid());
    std::uint64_t nvm_addr = 0;
    bool found = false;
    for (std::uint64_t a = 0; a < 8192 && !found; ++a) {
        if (net->techOf(a * (1ull << 20)) == ExtMemTech::Nvm) {
            nvm_addr = a * (1ull << 20);
            found = true;
        }
    }
    ASSERT_TRUE(found);
    double rd = timedAccess(net, nvm_addr, false);
    double wr = timedAccess(net, nvm_addr, true);
    EXPECT_GT(wr, rd + 100.0);
    EXPECT_GE(net->nvmAccesses(), 2.0);
}

TEST_F(ExtFixture, NvmSlowerThanDram)
{
    auto *net = build(ExtMemConfig::hybrid());
    std::uint64_t dram_addr = ~0ull;
    std::uint64_t nvm_addr = ~0ull;
    for (std::uint64_t a = 0; a < 8192; ++a) {
        std::uint64_t addr = a * (1ull << 20);
        // Compare at equal chain depth to isolate device latency; DRAM
        // occupies the shallow slots, so depth 0 DRAM vs depth >=1 NVM
        // biases *against* this check only via extra hops.
        if (net->techOf(addr) == ExtMemTech::Dram && dram_addr == ~0ull)
            dram_addr = addr;
        if (net->techOf(addr) == ExtMemTech::Nvm && nvm_addr == ~0ull)
            nvm_addr = addr;
    }
    ASSERT_NE(dram_addr, ~0ull);
    ASSERT_NE(nvm_addr, ~0ull);
    EXPECT_GT(timedAccess(net, nvm_addr, false),
              timedAccess(net, dram_addr, false));
}

TEST_F(ExtFixture, InterfaceSerializationUnderBursts)
{
    auto *net = build(ExtMemConfig::dramOnly());
    // Find many addresses on interface 0 (stripe % 8 == 0).
    std::vector<Tick> done;
    int issued = 0;
    for (std::uint64_t stripe = 0; issued < 16; stripe += 8) {
        net->access(stripe * (1ull << 20), 64, false,
                    [&done, this] { done.push_back(sim.curTick()); });
        ++issued;
    }
    sim.run();
    ASSERT_EQ(done.size(), 16u);
    auto [lo, hi] = std::minmax_element(done.begin(), done.end());
    // 16 x 64 B at 100 GB/s per interface = ~9.6 ns of pure
    // serialization spread.
    EXPECT_GT(static_cast<double>(*hi - *lo), 0.0);
}

TEST_F(ExtFixture, BytesServedAccumulates)
{
    auto *net = build(ExtMemConfig::dramOnly());
    timedAccess(net, 0, false);
    timedAccess(net, 1ull << 20, true);
    EXPECT_DOUBLE_EQ(net->bytesServed(), 128.0);
}

TEST(ExtMemConfig, CapacityHelpers)
{
    ExtMemConfig dram = ExtMemConfig::dramOnly();
    EXPECT_DOUBLE_EQ(dram.totalGb(), 768.0);
    EXPECT_EQ(dram.dramModules(), 12);
    EXPECT_EQ(dram.nvmModules(), 0);
    ExtMemConfig hy = ExtMemConfig::hybrid();
    EXPECT_DOUBLE_EQ(hy.totalGb(), 768.0);
    EXPECT_EQ(hy.dramModules(), 6);
    EXPECT_EQ(hy.nvmModules(), 2);
    EXPECT_DOUBLE_EQ(hy.aggregateGbs(), 800.0);
}

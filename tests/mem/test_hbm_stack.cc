/**
 * @file
 * Unit tests for the HBM stack timing model: row-buffer behaviour,
 * channel contention, bandwidth sizing, and completion callbacks.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "mem/hbm_stack.hh"
#include "sim/simulation.hh"

using namespace ena;

namespace {

struct StackFixture : testing::Test
{
    Simulation sim;
    HbmStack *stack =
        sim.create<HbmStack>("hbm", HbmParams::forAggregateBandwidth(
                                        750.0, 8));

    void SetUp() override { sim.initAll(); }

    /** Issue one access and run to completion; returns latency ns. */
    double
    timedAccess(std::uint64_t addr, bool write = false)
    {
        Tick start = sim.curTick();
        Tick done_at = 0;
        stack->access(addr, 64, write,
                      [&] { done_at = sim.curTick(); });
        sim.run();
        return static_cast<double>(done_at - start) / tickPerNs;
    }
};

} // anonymous namespace

TEST_F(StackFixture, BandwidthSizing)
{
    // 750 GB/s over 8 stacks = 93.75 GB/s per stack.
    EXPECT_NEAR(stack->params().peakGbs(), 93.75, 0.01);
}

TEST_F(StackFixture, CallbackFiresAfterAccessLatency)
{
    double ns = timedAccess(0);
    // Cold access: row miss latency plus burst.
    EXPECT_GE(ns, stack->params().rowMissNs);
    EXPECT_LT(ns, stack->params().rowMissNs + 20.0);
}

TEST_F(StackFixture, RowHitIsFasterThanRowMiss)
{
    double first = timedAccess(0);
    double second = timedAccess(64 * stack->params().channels);
    // Same channel (line interleave wraps), same bank, same row ->
    // row hit.
    EXPECT_LT(second, first);
    EXPECT_GT(stack->rowHitRate(), 0.0);
}

TEST_F(StackFixture, DifferentRowsConflict)
{
    std::uint64_t row_stride =
        static_cast<std::uint64_t>(stack->params().rowBytes) *
        stack->params().banksPerChannel * stack->params().channels;
    timedAccess(0);
    double other_row = timedAccess(row_stride);
    EXPECT_GE(other_row, stack->params().rowMissNs);
    EXPECT_DOUBLE_EQ(stack->rowHitRate(), 0.0);
}

TEST_F(StackFixture, ChannelContentionSerializesBursts)
{
    // Many simultaneous accesses to one channel: completion times must
    // spread by at least the burst occupancy.
    const int n = 16;
    std::vector<Tick> done(n, 0);
    for (int i = 0; i < n; ++i) {
        // Same channel: stride by channels * lineBytes.
        std::uint64_t addr =
            static_cast<std::uint64_t>(i) * 64 *
            stack->params().channels;
        stack->access(addr, 64, false,
                      [&done, i, this] { done[i] = sim.curTick(); });
    }
    sim.run();
    std::sort(done.begin(), done.end());
    double burst_ns =
        64.0 / stack->params().bytesPerCycle / stack->params().clockGhz;
    double span = static_cast<double>(done.back() - done.front()) /
                  tickPerNs;
    EXPECT_GE(span, burst_ns * (n - 2));
}

TEST_F(StackFixture, ParallelChannelsDoNotSerialize)
{
    const int n = 8;   // one access per channel
    std::vector<Tick> done(n, 0);
    for (int i = 0; i < n; ++i) {
        stack->access(static_cast<std::uint64_t>(i) * 64, 64, false,
                      [&done, i, this] { done[i] = sim.curTick(); });
    }
    sim.run();
    // All channels finish within a whisker of each other.
    auto [lo, hi] = std::minmax_element(done.begin(), done.end());
    EXPECT_LT(static_cast<double>(*hi - *lo) / tickPerNs, 5.0);
}

TEST_F(StackFixture, StatsAccumulate)
{
    timedAccess(0, false);
    timedAccess(4096, true);
    EXPECT_DOUBLE_EQ(stack->bytesServed(), 128.0);
    EXPECT_DOUBLE_EQ(sim.stats().value("hbm.reads"), 1.0);
    EXPECT_DOUBLE_EQ(sim.stats().value("hbm.writes"), 1.0);
}

TEST(HbmParams, AggregateSizingScalesWithStacks)
{
    HbmParams four = HbmParams::forAggregateBandwidth(1000.0, 4);
    HbmParams eight = HbmParams::forAggregateBandwidth(1000.0, 8);
    EXPECT_NEAR(four.peakGbs(), 250.0, 1e-9);
    EXPECT_NEAR(eight.peakGbs(), 125.0, 1e-9);
}

TEST(HbmDeathTest, MissingCallbackPanics)
{
    Simulation sim;
    auto *stack = sim.create<HbmStack>(
        "hbm", HbmParams::forAggregateBandwidth(750.0, 8));
    sim.initAll();
    EXPECT_DEATH(stack->access(0, 64, false, nullptr),
                 "completion callback");
}

/**
 * @file
 * Unit and property tests for the set-associative cache.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "util/rng.hh"

using namespace ena;

namespace {

CacheParams
smallCache(ReplPolicy policy = ReplPolicy::Lru)
{
    // 4 KiB, 64 B lines, 4-way: 16 sets.
    return {4096, 64, 4, policy};
}

} // anonymous namespace

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x103F, false).hit);    // same line
    EXPECT_FALSE(c.access(0x1040, false).hit);   // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, ProbeHasNoSideEffects)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.probe(0x2000));
    c.access(0x2000, false);
    EXPECT_TRUE(c.probe(0x2000));
    EXPECT_EQ(c.hits(), 0u);   // probe counted nothing
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(smallCache(ReplPolicy::Lru));
    // Four lines mapping to set 0 fill the ways (set stride =
    // 16 sets * 64 B = 1 KiB).
    for (std::uint64_t i = 0; i < 4; ++i)
        c.access(i * 1024, false);
    // Touch line 0 so line 1 becomes LRU.
    c.access(0, false);
    // A fifth line evicts line 1.
    c.access(4 * 1024, false);
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(1 * 1024));
    EXPECT_TRUE(c.probe(4 * 1024));
}

TEST(Cache, FifoIgnoresReuse)
{
    Cache c(smallCache(ReplPolicy::Fifo));
    for (std::uint64_t i = 0; i < 4; ++i)
        c.access(i * 1024, false);
    c.access(0, false);               // reuse does not refresh FIFO age
    c.access(4 * 1024, false);        // evicts line 0 (oldest fill)
    EXPECT_FALSE(c.probe(0));
    EXPECT_TRUE(c.probe(1 * 1024));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache c(smallCache());
    c.access(0, true);   // dirty line in set 0
    for (std::uint64_t i = 1; i <= 4; ++i) {
        CacheOutcome out = c.access(i * 1024, false);
        if (out.writeback) {
            EXPECT_EQ(out.victimAddr, 0u);
            EXPECT_EQ(c.writebacks(), 1u);
            return;
        }
    }
    FAIL() << "dirty line was never evicted";
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache c(smallCache());
    for (std::uint64_t i = 0; i <= 4; ++i) {
        CacheOutcome out = c.access(i * 1024, false);
        EXPECT_FALSE(out.writeback);
    }
    EXPECT_EQ(c.writebacks(), 0u);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c(smallCache());
    c.access(0, false);   // clean fill
    c.access(0, true);    // dirtied by write hit
    bool saw_wb = false;
    for (std::uint64_t i = 1; i <= 4 && !saw_wb; ++i)
        saw_wb = c.access(i * 1024, false).writeback;
    EXPECT_TRUE(saw_wb);
}

TEST(Cache, InvalidateReturnsDirtyState)
{
    Cache c(smallCache());
    c.access(0x100, true);
    EXPECT_TRUE(c.invalidate(0x100));
    EXPECT_FALSE(c.probe(0x100));
    c.access(0x200, false);
    EXPECT_FALSE(c.invalidate(0x200));
    EXPECT_FALSE(c.invalidate(0x300));   // not present
}

TEST(Cache, FlushClearsEverything)
{
    Cache c(smallCache());
    for (std::uint64_t i = 0; i < 32; ++i)
        c.access(i * 64, true);
    c.flush();
    for (std::uint64_t i = 0; i < 32; ++i)
        EXPECT_FALSE(c.probe(i * 64));
}

TEST(Cache, HitRate)
{
    Cache c(smallCache());
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    c.access(64, false);
    EXPECT_DOUBLE_EQ(c.hitRate(), 0.5);
}

TEST(Cache, WorkingSetWithinCapacityEventuallyAllHits)
{
    Cache c(smallCache());
    // 32 lines in a 64-line cache, aligned so sets are shared evenly.
    for (int pass = 0; pass < 3; ++pass) {
        for (std::uint64_t i = 0; i < 32; ++i)
            c.access(i * 64, false);
    }
    // Final pass must be all hits.
    std::uint64_t h = c.hits();
    for (std::uint64_t i = 0; i < 32; ++i)
        c.access(i * 64, false);
    EXPECT_EQ(c.hits() - h, 32u);
}

TEST(Cache, StreamingNeverHits)
{
    Cache c(smallCache());
    for (std::uint64_t i = 0; i < 1000; ++i)
        EXPECT_FALSE(c.access(i * 64, false).hit);
}

class CachePolicyTest : public testing::TestWithParam<ReplPolicy>
{
};

// Property: the number of resident lines never exceeds capacity, and
// every access inserts its line.
TEST_P(CachePolicyTest, InsertionInvariant)
{
    Cache c(smallCache(GetParam()));
    Rng rng(77);
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t addr = rng.below(1 << 16) & ~63ull;
        c.access(addr, rng.chance(0.3));
        EXPECT_TRUE(c.probe(addr));
    }
    EXPECT_EQ(c.hits() + c.misses(), 5000u);
}

// Property: LRU is at least as good as Random for a looping working
// set slightly above capacity... not guaranteed per-seed; instead check
// all policies produce sensible hit rates for an in-capacity loop.
TEST_P(CachePolicyTest, InCapacityLoopHitsEventually)
{
    Cache c(smallCache(GetParam()));
    for (int pass = 0; pass < 4; ++pass) {
        for (std::uint64_t i = 0; i < 64; ++i)
            c.access(i * 64, false);
    }
    EXPECT_GT(c.hitRate(), 0.7);
}

INSTANTIATE_TEST_SUITE_P(Policies, CachePolicyTest,
                         testing::Values(ReplPolicy::Lru,
                                         ReplPolicy::Fifo,
                                         ReplPolicy::Random),
                         [](const auto &info) {
                             switch (info.param) {
                               case ReplPolicy::Lru: return "Lru";
                               case ReplPolicy::Fifo: return "Fifo";
                               default: return "Random";
                             }
                         });

TEST(CacheDeathTest, BadGeometryIsFatal)
{
    EXPECT_EXIT(Cache({4096, 48, 4, ReplPolicy::Lru}),
                testing::ExitedWithCode(1), "power of two");
    EXPECT_EXIT(Cache({4096, 64, 0, ReplPolicy::Lru}),
                testing::ExitedWithCode(1), "at least one way");
    EXPECT_EXIT(Cache({100, 64, 4, ReplPolicy::Lru}),
                testing::ExitedWithCode(1), "not divisible");
}

/**
 * @file
 * Unit tests for the multi-level memory manager: first-touch placement,
 * epoch migration, hardware-cache mode, static interleave, pinning, and
 * capacity accounting.
 */

#include <gtest/gtest.h>

#include "mem/memory_manager.hh"
#include "util/rng.hh"

using namespace ena;

namespace {

MemoryManagerParams
smallParams(MemMode mode)
{
    MemoryManagerParams p;
    p.mode = mode;
    p.pageBytes = 4096;
    p.inPackageBytes = 64ull * 4096;    // 64 pages in-package
    p.externalBytes = 192ull * 4096;    // 192 pages external
    p.epochAccesses = 256;
    p.migrateFraction = 0.25;
    return p;
}

} // anonymous namespace

TEST(MemoryManager, FirstTouchFillsInPackage)
{
    MemoryManager mgr(smallParams(MemMode::SoftwareManaged));
    // First 64 distinct pages land in-package.
    for (std::uint64_t p = 0; p < 64; ++p)
        EXPECT_EQ(static_cast<int>(mgr.access(p * 4096, false)),
                  static_cast<int>(MemLevel::InPackage));
    // The next pages overflow to external.
    EXPECT_EQ(static_cast<int>(mgr.access(100 * 4096, false)),
              static_cast<int>(MemLevel::External));
}

TEST(MemoryManager, RepeatAccessesHitSameLevel)
{
    MemoryManager mgr(smallParams(MemMode::SoftwareManaged));
    mgr.access(0, false);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(static_cast<int>(mgr.access(40, false)),
                  static_cast<int>(MemLevel::InPackage));
}

TEST(MemoryManager, HotPagesMigrateIn)
{
    MemoryManager mgr(smallParams(MemMode::SoftwareManaged));
    // Fill in-package with 64 pages touched once.
    for (std::uint64_t p = 0; p < 64; ++p)
        mgr.access(p * 4096, false);
    // Hammer a single external page across several epochs.
    std::uint64_t hot = 200 * 4096;
    for (int i = 0; i < 2000; ++i)
        mgr.access(hot, false);
    EXPECT_GT(mgr.migrations(), 0u);
    EXPECT_EQ(static_cast<int>(mgr.access(hot, false)),
              static_cast<int>(MemLevel::InPackage));
}

TEST(MemoryManager, HitRateImprovesWithSkewedAccess)
{
    // 80% of accesses to a quarter of the footprint: software
    // management must beat static interleaving.
    auto drive = [](MemMode mode) {
        MemoryManager mgr(smallParams(mode));
        Rng rng(5);
        for (int i = 0; i < 50000; ++i) {
            std::uint64_t page = rng.chance(0.8)
                                     ? rng.below(60)
                                     : 60 + rng.below(196);
            mgr.access(page * 4096, false);
        }
        return mgr.inPackageHitRate();
    };
    double sw = drive(MemMode::SoftwareManaged);
    double st = drive(MemMode::StaticInterleave);
    EXPECT_GT(sw, st + 0.2);
    EXPECT_GT(sw, 0.7);
}

TEST(MemoryManager, HwCacheModeHitsAfterFill)
{
    MemoryManager mgr(smallParams(MemMode::HwCache));
    EXPECT_EQ(static_cast<int>(mgr.access(0, false)),
              static_cast<int>(MemLevel::External));   // cold fill
    EXPECT_EQ(static_cast<int>(mgr.access(64, false)),
              static_cast<int>(MemLevel::InPackage));  // now cached
}

TEST(MemoryManager, HwCacheConflictEviction)
{
    MemoryManager mgr(smallParams(MemMode::HwCache));
    std::uint64_t a = 0;
    std::uint64_t b = 64ull * 4096;   // same direct-mapped set
    mgr.access(a, false);
    mgr.access(b, false);             // evicts a
    EXPECT_EQ(static_cast<int>(mgr.access(a, false)),
              static_cast<int>(MemLevel::External));
}

TEST(MemoryManager, HwCacheSacrificesAddressableCapacity)
{
    MemoryManager sw(smallParams(MemMode::SoftwareManaged));
    MemoryManager hw(smallParams(MemMode::HwCache));
    // Paper Section II-B3: cache mode loses the in-package capacity
    // from the addressable space (20% for 256 GB of 1.25 TB).
    EXPECT_EQ(sw.addressableBytes(), 256ull * 4096);
    EXPECT_EQ(hw.addressableBytes(), 192ull * 4096);
}

TEST(MemoryManager, StaticInterleaveMatchesCapacityRatio)
{
    MemoryManager mgr(smallParams(MemMode::StaticInterleave));
    Rng rng(9);
    for (int i = 0; i < 50000; ++i)
        mgr.access(rng.below(100000) * 4096, false);
    // In-package share of capacity = 64/256 = 0.25.
    EXPECT_NEAR(mgr.inPackageHitRate(), 0.25, 0.02);
}

TEST(MemoryManager, PinForcesPlacement)
{
    MemoryManager mgr(smallParams(MemMode::SoftwareManaged));
    mgr.pin(500 * 4096, 2 * 4096, MemLevel::InPackage);
    EXPECT_EQ(static_cast<int>(mgr.access(500 * 4096, false)),
              static_cast<int>(MemLevel::InPackage));
    EXPECT_EQ(static_cast<int>(mgr.access(501 * 4096, false)),
              static_cast<int>(MemLevel::InPackage));
}

TEST(MemoryManager, PinnedPagesResistMigration)
{
    MemoryManager mgr(smallParams(MemMode::SoftwareManaged));
    mgr.pin(0, 64ull * 4096, MemLevel::InPackage);   // fill + pin
    // Hammer external pages: nothing may displace the pinned ones.
    Rng rng(4);
    for (int i = 0; i < 5000; ++i)
        mgr.access((100 + rng.below(50)) * 4096, false);
    for (std::uint64_t p = 0; p < 64; ++p)
        EXPECT_EQ(static_cast<int>(mgr.access(p * 4096, false)),
                  static_cast<int>(MemLevel::InPackage));
}

TEST(MemoryManagerDeathTest, PinBeyondCapacityIsFatal)
{
    MemoryManager mgr(smallParams(MemMode::SoftwareManaged));
    EXPECT_EXIT(mgr.pin(0, 65ull * 4096, MemLevel::InPackage),
                testing::ExitedWithCode(1), "capacity exhausted");
}

TEST(MemoryManagerDeathTest, PinRequiresSoftwareMode)
{
    MemoryManager mgr(smallParams(MemMode::HwCache));
    EXPECT_EXIT(mgr.pin(0, 4096, MemLevel::InPackage),
                testing::ExitedWithCode(1), "SoftwareManaged");
}

TEST(MemoryManager, AccessCountersConsistent)
{
    MemoryManager mgr(smallParams(MemMode::StaticInterleave));
    for (int i = 0; i < 100; ++i)
        mgr.access(static_cast<std::uint64_t>(i) * 4096, false);
    EXPECT_EQ(mgr.accesses(), 100u);
    EXPECT_LE(mgr.inPackageAccesses(), mgr.accesses());
    EXPECT_NEAR(mgr.inPackageHitRate(),
                static_cast<double>(mgr.inPackageAccesses()) / 100.0,
                1e-12);
}

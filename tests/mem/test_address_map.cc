/**
 * @file
 * Unit tests for the address-to-stack mapping.
 */

#include <gtest/gtest.h>

#include "mem/address_map.hh"

using namespace ena;

TEST(AddressMap, InterleavesPagesAcrossStacks)
{
    AddressMap m(8, 4096);
    for (std::uint64_t page = 0; page < 64; ++page) {
        EXPECT_EQ(m.stackFor(page * 4096),
                  static_cast<int>(page % 8));
    }
}

TEST(AddressMap, SamePageSameStack)
{
    AddressMap m(8, 4096);
    int home = m.stackFor(0x12345000);
    for (std::uint64_t off = 0; off < 4096; off += 64)
        EXPECT_EQ(m.stackFor(0x12345000 + off), home);
}

TEST(AddressMap, CoverageIsEven)
{
    AddressMap m(8, 4096);
    std::vector<int> counts(8, 0);
    for (std::uint64_t page = 0; page < 8000; ++page)
        ++counts[m.stackFor(page * 4096)];
    for (int c : counts)
        EXPECT_EQ(c, 1000);
}

TEST(AddressMap, FullyLocalRegion)
{
    AddressMap m(8, 4096);
    m.addRegion(1ull << 30, 1ull << 20, 3, 1.0);
    for (std::uint64_t off = 0; off < (1ull << 20); off += 4096)
        EXPECT_EQ(m.stackFor((1ull << 30) + off), 3);
}

TEST(AddressMap, ZeroLocalityFallsBackToInterleave)
{
    AddressMap m(8, 4096);
    m.addRegion(0, 1ull << 24, 5, 0.0);
    std::vector<int> counts(8, 0);
    for (std::uint64_t page = 0; page < 4096; ++page)
        ++counts[m.stackFor(page * 4096)];
    for (int c : counts)
        EXPECT_EQ(c, 512);
}

TEST(AddressMap, PartialLocalityShiftsDistribution)
{
    AddressMap m(8, 4096);
    m.addRegion(0, 1ull << 26, 2, 0.4);
    std::vector<int> counts(8, 0);
    const int pages = 16384;
    for (std::uint64_t page = 0; page < pages; ++page)
        ++counts[m.stackFor(page * 4096)];
    // Owner gets ~ 0.4 + 0.6/8 = 47.5% of pages.
    EXPECT_NEAR(static_cast<double>(counts[2]) / pages, 0.475, 0.02);
    // Everyone else ~ 0.6/8 = 7.5%.
    EXPECT_NEAR(static_cast<double>(counts[5]) / pages, 0.075, 0.01);
}

TEST(AddressMap, PlacementIsDeterministic)
{
    AddressMap a(8, 4096);
    AddressMap b(8, 4096);
    a.addRegion(0, 1ull << 24, 1, 0.3);
    b.addRegion(0, 1ull << 24, 1, 0.3);
    for (std::uint64_t page = 0; page < 1024; ++page)
        EXPECT_EQ(a.stackFor(page * 4096), b.stackFor(page * 4096));
}

TEST(AddressMap, OutsideRegionStillInterleaved)
{
    AddressMap m(4, 4096);
    m.addRegion(1ull << 20, 1ull << 20, 0, 1.0);
    std::uint64_t far_addr = 1ull << 30;
    EXPECT_EQ(m.stackFor(far_addr),
              static_cast<int>((far_addr / 4096) % 4));
}

TEST(AddressMapDeathTest, BadRegionParamsPanic)
{
    AddressMap m(4, 4096);
    EXPECT_DEATH(m.addRegion(0, 4096, 9, 0.5), "bad owner");
    EXPECT_DEATH(m.addRegion(0, 4096, 1, 1.5), "bad locality");
}

/**
 * @file
 * TaskDag: generator shapes (sizes, depths, edge counts), validation,
 * determinism of the seeded random generator, and the taskgraph.*
 * config-IO round trip with unknown-key rejection.
 */

#include <gtest/gtest.h>

#include "taskgraph/task_dag_io.hh"
#include "util/config.hh"

using namespace ena;

TEST(TaskDag, WavefrontShape)
{
    const int n = 8;
    TaskDag dag = TaskDag::wavefront(n, 1e9, 1e6, App::SNAP);
    EXPECT_EQ(dag.size(), static_cast<std::size_t>(n * n));
    // Anti-diagonal layers: 2n-1 of them, the widest has n tasks.
    EXPECT_EQ(dag.depth(), 2 * n - 1);
    EXPECT_EQ(dag.maxLayerWidth(), static_cast<std::size_t>(n));
    // Each interior cell consumes from its west and north neighbor.
    EXPECT_EQ(dag.numEdges(), static_cast<std::size_t>(2 * n * (n - 1)));
    EXPECT_EQ(dag.totalFlops(), n * n * 1e9);
    EXPECT_EQ(dag.totalEdgeBytes(), 2 * n * (n - 1) * 1e6);
    EXPECT_TRUE(dag.tryValidate().ok());
}

TEST(TaskDag, StencilHaloShape)
{
    const int ranks = 6, steps = 5;
    TaskDag dag = TaskDag::stencilHalo(ranks, steps, 1e9, 1e6, App::CoMD);
    EXPECT_EQ(dag.size(), static_cast<std::size_t>(ranks * steps));
    EXPECT_EQ(dag.depth(), steps);
    EXPECT_EQ(dag.maxLayerWidth(), static_cast<std::size_t>(ranks));
    EXPECT_TRUE(dag.tryValidate().ok());
}

TEST(TaskDag, ForkJoinShape)
{
    TaskDag dag = TaskDag::forkJoin(10, 3, 1e9, 1e6, App::HPGMG);
    EXPECT_EQ(dag.maxLayerWidth(), 10u);
    EXPECT_TRUE(dag.tryValidate().ok());
    // The last task joins every stage: it must have predecessors.
    EXPECT_FALSE(dag.task(static_cast<TaskId>(dag.size() - 1))
                     .deps.empty());
}

TEST(TaskDag, ReductionTreeFoldsToOneSink)
{
    TaskDag dag = TaskDag::reductionTree(16, 2, 1e9, 1e6, App::LULESH);
    // 16 leaves halved per step: 16+8+4+2+1 tasks, one terminal sink.
    EXPECT_EQ(dag.size(), 31u);
    std::size_t sinks = 0;
    for (const DagTask &t : dag.tasks())
        sinks += dag.succs(t.id).empty() ? 1 : 0;
    EXPECT_EQ(sinks, 1u);
    EXPECT_TRUE(dag.tryValidate().ok());
}

TEST(TaskDag, RandomLayeredIsSeedDeterministicWithNoSpuriousRoots)
{
    TaskDag a = TaskDag::randomLayered(6, 8, 0.4, 42, 1e9, 1e6,
                                       App::MiniAMR);
    TaskDag b = TaskDag::randomLayered(6, 8, 0.4, 42, 1e9, 1e6,
                                       App::MiniAMR);
    EXPECT_EQ(a.numEdges(), b.numEdges());
    ASSERT_EQ(a.size(), b.size());
    for (TaskId t = 0; t < a.size(); ++t) {
        EXPECT_EQ(a.task(t).deps.size(), b.task(t).deps.size()) << t;
        // Only layer 0 may be a root: the fallback same-column edge
        // guarantees every deeper task has at least one predecessor.
        if (a.task(t).layer > 0)
            EXPECT_FALSE(a.task(t).deps.empty()) << t;
    }
    // A different seed redraws the coin flips: some task's dependency
    // set must change.
    TaskDag c = TaskDag::randomLayered(6, 8, 0.4, 43, 1e9, 1e6,
                                       App::MiniAMR);
    bool differs = a.numEdges() != c.numEdges();
    for (TaskId t = 0; !differs && t < a.size(); ++t) {
        const auto &ad = a.task(t).deps, &cd = c.task(t).deps;
        differs = ad.size() != cd.size();
        for (std::size_t i = 0; !differs && i < ad.size(); ++i)
            differs = ad[i].task != cd[i].task;
    }
    EXPECT_TRUE(differs);
}

TEST(TaskDag, LayersFollowDependencies)
{
    TaskDag dag = TaskDag::wavefront(5, 1e9, 0.0, App::SNAP);
    for (const DagTask &t : dag.tasks()) {
        for (const DagEdge &d : t.deps)
            EXPECT_LT(dag.task(d.task).layer, t.layer);
    }
}

TEST(DagShape, NamesRoundTripAndAliasesParse)
{
    for (DagShape s : allDagShapes()) {
        auto back = tryDagShapeFromName(dagShapeName(s));
        ASSERT_TRUE(back.ok()) << dagShapeName(s);
        EXPECT_EQ(*back, s);
    }
    EXPECT_EQ(*tryDagShapeFromName("sweep"), DagShape::Wavefront);
    EXPECT_EQ(*tryDagShapeFromName("halo"), DagShape::StencilHalo);
    EXPECT_EQ(*tryDagShapeFromName("forkjoin"), DagShape::ForkJoin);
    EXPECT_EQ(*tryDagShapeFromName("tree"), DagShape::ReductionTree);
    EXPECT_FALSE(tryDagShapeFromName("noSuchShape").ok());
}

TEST(TaskGraphSpec, ConfigRoundTrip)
{
    TaskGraphSpec s;
    s.shape = DagShape::RandomLayered;
    s.app = App::HPGMG;
    s.size = 9;
    s.depth = 7;
    s.taskGflops = 12.5;
    s.edgeMb = 3.25;
    s.edgeProb = 0.5;
    s.seed = 99;
    s.fanin = 3;

    auto back = tryTaskGraphSpecFromConfig(taskGraphSpecToConfig(s));
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back->shape, s.shape);
    EXPECT_EQ(back->app, s.app);
    EXPECT_EQ(back->size, s.size);
    EXPECT_EQ(back->depth, s.depth);
    EXPECT_EQ(back->taskGflops, s.taskGflops);
    EXPECT_EQ(back->edgeMb, s.edgeMb);
    EXPECT_EQ(back->edgeProb, s.edgeProb);
    EXPECT_EQ(back->seed, s.seed);
    EXPECT_EQ(back->fanin, s.fanin);
}

TEST(TaskGraphSpec, UnknownTaskgraphKeyIsRejected)
{
    Config cfg = Config::fromString("taskgraph.shpae = wavefront\n");
    auto r = tryTaskGraphSpecFromConfig(cfg);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().toString().find("taskgraph.shpae"),
              std::string::npos);
}

TEST(TaskGraphSpec, NonTaskgraphKeysAreIgnored)
{
    Config cfg = Config::fromString(
        "ehp.cus = 256\ncluster.nodes = 64\ntaskgraph.size = 4\n");
    auto r = tryTaskGraphSpecFromConfig(cfg);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r->size, 4);
}

TEST(TaskGraphSpec, ValidationRejectsBadValues)
{
    TaskGraphSpec s;
    s.size = 0;
    EXPECT_FALSE(s.tryValidate().ok());
    s = TaskGraphSpec{};
    s.taskGflops = -1.0;
    EXPECT_FALSE(s.tryValidate().ok());
    s = TaskGraphSpec{};
    s.edgeProb = 1.5;
    EXPECT_FALSE(s.tryValidate().ok());
    s = TaskGraphSpec{};
    s.fanin = 1;
    EXPECT_FALSE(s.tryValidate().ok());
}

TEST(TaskGraphSpec, BuildDispatchesByShape)
{
    for (DagShape shape : allDagShapes()) {
        TaskGraphSpec s;
        s.shape = shape;
        s.size = 6;
        s.depth = 4;
        TaskDag dag = s.build();
        EXPECT_GT(dag.size(), 0u) << dagShapeName(shape);
        EXPECT_TRUE(dag.tryValidate().ok()) << dagShapeName(shape);
    }
}

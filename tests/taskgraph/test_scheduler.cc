/**
 * @file
 * DAG schedulers: the zero-comm analytic reduction (the layer's exact
 * gate), determinism, scheduling-quality orderings, and the cost-model
 * plumbing from NodeEvaluator / InterNodeNetwork.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "core/eval_memo.hh"
#include "taskgraph/scheduler.hh"

using namespace ena;

namespace {

const NodeEvaluator &
evaluator()
{
    static NodeEvaluator eval;
    return eval;
}

const InterNodeNetwork &
network()
{
    static ClusterConfig cluster = [] {
        ClusterConfig c;
        c.nodes = 256;
        return c;
    }();
    static InterNodeNetwork net(cluster);
    return net;
}

std::uint64_t
bits(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

} // anonymous namespace

TEST(DagScheduler, NamesRoundTripAndAliasesParse)
{
    for (DagScheduler s : allDagSchedulers()) {
        auto back = tryDagSchedulerFromName(dagSchedulerName(s));
        ASSERT_TRUE(back.ok()) << dagSchedulerName(s);
        EXPECT_EQ(*back, s);
    }
    EXPECT_EQ(*tryDagSchedulerFromName("heft"),
              DagScheduler::CriticalPath);
    EXPECT_EQ(*tryDagSchedulerFromName("minmin"), DagScheduler::MinMin);
    EXPECT_EQ(*tryDagSchedulerFromName("rr"), DagScheduler::RoundRobin);
    EXPECT_FALSE(tryDagSchedulerFromName("fifo").ok());
}

TEST(DagCostModel, PricesTasksFromTheEvaluator)
{
    NodeConfig cfg = NodeConfig::bestMean();
    TaskDag dag = TaskDag::wavefront(4, 64e9, 16e6, App::SNAP);
    DagCostModel cost =
        DagCostModel::build(dag, evaluator(), cfg, network());

    ASSERT_EQ(cost.taskSeconds.size(), dag.size());
    EvalResult r = evaluator().evaluate(cfg, App::SNAP);
    for (double ts : cost.taskSeconds)
        EXPECT_EQ(bits(ts), bits(64e9 / r.perf.flops));
    EXPECT_GT(cost.edgeBandwidthBps, 0.0);
    EXPECT_GT(cost.edgeLatencySeconds, 0.0);
    // Zero bytes cost exactly zero: no latency leak.
    EXPECT_EQ(cost.edgeSeconds(0.0), 0.0);
    EXPECT_GT(cost.edgeSeconds(1.0), cost.edgeLatencySeconds);
}

TEST(DagCostModel, MemoedBuildIsBitIdentical)
{
    NodeConfig cfg = NodeConfig::bestMean();
    TaskDag dag = TaskDag::randomLayered(5, 6, 0.4, 3, 32e9, 8e6,
                                         App::HPGMG);
    EvalMemoCache memo;
    DagCostModel plain =
        DagCostModel::build(dag, evaluator(), cfg, network());
    DagCostModel memoed =
        DagCostModel::build(dag, evaluator(), cfg, network(), &memo);
    DagCostModel again =
        DagCostModel::build(dag, evaluator(), cfg, network(), &memo);
    ASSERT_EQ(plain.taskSeconds.size(), memoed.taskSeconds.size());
    for (std::size_t i = 0; i < plain.taskSeconds.size(); ++i) {
        EXPECT_EQ(bits(plain.taskSeconds[i]), bits(memoed.taskSeconds[i]));
        EXPECT_EQ(bits(plain.taskSeconds[i]), bits(again.taskSeconds[i]));
    }
}

TEST(DagScheduler, ZeroCommMakespanReducesToTheCriticalPath)
{
    // The acceptance gate: zero-byte edges, nodes >= tasks -> every
    // scheduler reproduces the analytic critical path bit-for-bit.
    NodeConfig cfg = NodeConfig::bestMean();
    TaskDag dag = TaskDag::wavefront(6, 64e9, 0.0, App::SNAP);
    DagCostModel cost =
        DagCostModel::build(dag, evaluator(), cfg, network());
    const double cp = criticalPathSeconds(dag, cost);
    ASSERT_GT(cp, 0.0);
    for (DagScheduler s : allDagSchedulers()) {
        Schedule sch = scheduleDag(dag, cost, s,
                                   static_cast<int>(dag.size()));
        EXPECT_EQ(bits(sch.makespanSeconds), bits(cp))
            << dagSchedulerName(s);
        EXPECT_EQ(sch.totalCommSeconds, 0.0) << dagSchedulerName(s);
        EXPECT_EQ(sch.edgesCosted, 0u) << dagSchedulerName(s);
    }
}

TEST(DagScheduler, ZeroCommReductionHoldsForEveryShape)
{
    NodeConfig cfg = NodeConfig::bestMean();
    const TaskDag dags[] = {
        TaskDag::stencilHalo(5, 4, 32e9, 0.0, App::CoMD),
        TaskDag::forkJoin(6, 3, 32e9, 0.0, App::LULESH),
        TaskDag::reductionTree(12, 3, 32e9, 0.0, App::HPGMG),
        TaskDag::randomLayered(5, 5, 0.5, 17, 32e9, 0.0, App::XSBench),
    };
    for (const TaskDag &dag : dags) {
        DagCostModel cost =
            DagCostModel::build(dag, evaluator(), cfg, network());
        const double cp = criticalPathSeconds(dag, cost);
        for (DagScheduler s : allDagSchedulers()) {
            Schedule sch = scheduleDag(dag, cost, s,
                                       static_cast<int>(dag.size()));
            EXPECT_EQ(bits(sch.makespanSeconds), bits(cp))
                << dag.label() << " under " << dagSchedulerName(s);
        }
    }
}

TEST(DagScheduler, SchedulesAreDeterministic)
{
    NodeConfig cfg = NodeConfig::bestMean();
    TaskDag dag = TaskDag::randomLayered(8, 8, 0.35, 5, 48e9, 16e6,
                                         App::CoMD);
    DagCostModel cost =
        DagCostModel::build(dag, evaluator(), cfg, network());
    for (DagScheduler s : allDagSchedulers()) {
        Schedule a = scheduleDag(dag, cost, s, 16);
        Schedule b = scheduleDag(dag, cost, s, 16);
        ASSERT_EQ(a.placements.size(), b.placements.size());
        EXPECT_EQ(bits(a.makespanSeconds), bits(b.makespanSeconds));
        for (std::size_t i = 0; i < a.placements.size(); ++i) {
            EXPECT_EQ(a.placements[i].node, b.placements[i].node);
            EXPECT_EQ(bits(a.placements[i].startSeconds),
                      bits(b.placements[i].startSeconds));
            EXPECT_EQ(bits(a.placements[i].finishSeconds),
                      bits(b.placements[i].finishSeconds));
        }
    }
}

TEST(DagScheduler, ScheduleRespectsDependenciesAndMakespan)
{
    NodeConfig cfg = NodeConfig::bestMean();
    TaskDag dag = TaskDag::stencilHalo(8, 6, 48e9, 32e6, App::MiniAMR);
    DagCostModel cost =
        DagCostModel::build(dag, evaluator(), cfg, network());
    for (DagScheduler s : allDagSchedulers()) {
        Schedule sch = scheduleDag(dag, cost, s, 8);
        double latest = 0.0;
        for (const DagTask &t : dag.tasks()) {
            const TaskPlacement &p = sch.placements[t.id];
            EXPECT_GE(p.node, 0);
            EXPECT_LT(p.node, 8);
            EXPECT_GE(p.finishSeconds, p.startSeconds);
            latest = std::max(latest, p.finishSeconds);
            // No task starts before a predecessor finishes.
            for (const DagEdge &d : t.deps)
                EXPECT_GE(p.startSeconds,
                          sch.placements[d.task].finishSeconds)
                    << "task " << t.id << " dep " << d.task;
        }
        EXPECT_EQ(bits(sch.makespanSeconds), bits(latest));
        EXPECT_GT(sch.utilization(), 0.0);
        EXPECT_LE(sch.utilization(), 1.0 + 1e-12);
        EXPECT_LE(sch.speedup(), 8.0 + 1e-9);
    }
}

TEST(DagScheduler, OneNodeRoundRobinSerializesExactly)
{
    NodeConfig cfg = NodeConfig::bestMean();
    TaskDag dag = TaskDag::wavefront(5, 32e9, 8e6, App::LULESH);
    DagCostModel cost =
        DagCostModel::build(dag, evaluator(), cfg, network());
    Schedule sch = scheduleDag(dag, cost, DagScheduler::RoundRobin, 1);
    // One node, id-order placement: the makespan accumulates the same
    // addition sequence as totalTaskSeconds() -> bitwise equal, and
    // nothing ever crosses a node boundary.
    EXPECT_EQ(bits(sch.makespanSeconds), bits(cost.totalTaskSeconds()));
    EXPECT_EQ(sch.totalCommSeconds, 0.0);
    EXPECT_EQ(sch.edgesCosted, 0u);
}

TEST(DagScheduler, SmartSchedulersBeatRoundRobinOnCommHeavyDags)
{
    NodeConfig cfg = NodeConfig::bestMean();
    TaskDag dag = TaskDag::randomLayered(10, 12, 0.4, 9, 48e9, 64e6,
                                         App::SNAP);
    DagCostModel cost =
        DagCostModel::build(dag, evaluator(), cfg, network());
    Schedule cp =
        scheduleDag(dag, cost, DagScheduler::CriticalPath, 16);
    Schedule mm = scheduleDag(dag, cost, DagScheduler::MinMin, 16);
    Schedule rr = scheduleDag(dag, cost, DagScheduler::RoundRobin, 16);
    EXPECT_LE(cp.makespanSeconds, rr.makespanSeconds);
    EXPECT_LE(mm.makespanSeconds, rr.makespanSeconds);
}

TEST(DagScheduler, MoreNodesNeverHurtTheListSchedulers)
{
    NodeConfig cfg = NodeConfig::bestMean();
    TaskDag dag = TaskDag::forkJoin(16, 4, 48e9, 8e6, App::HPGMG);
    DagCostModel cost =
        DagCostModel::build(dag, evaluator(), cfg, network());
    Schedule narrow =
        scheduleDag(dag, cost, DagScheduler::CriticalPath, 2);
    Schedule wide =
        scheduleDag(dag, cost, DagScheduler::CriticalPath, 16);
    EXPECT_LE(wide.makespanSeconds, narrow.makespanSeconds + 1e-12);
}

/**
 * @file
 * TaskGraphStudy and ResilientDagScheduler: sweep shape and
 * quarantine, serial/parallel and fault-injected bit-identity (the
 * ENA_FAULT_INJECT retry path), the job-mix interference model, and
 * the RAS layer's exact reduction under ResilienceSpec::none().
 */

#include <gtest/gtest.h>

#include <cstring>

#include "taskgraph/resilient_schedule.hh"
#include "taskgraph/taskgraph_study.hh"
#include "util/fault_inject.hh"
#include "util/thread_pool.hh"

using namespace ena;

namespace {

const NodeEvaluator &
evaluator()
{
    static NodeEvaluator eval;
    return eval;
}

ClusterConfig
smallCluster()
{
    ClusterConfig c;
    c.nodes = 128;
    return c;
}

std::uint64_t
bits(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

const std::vector<ClusterTopology> topologies = {
    ClusterTopology::FatTree, ClusterTopology::Dragonfly};
const std::vector<int> counts = {8, 32, 128};

bool
samePoint(const TaskGraphSweepPoint &a, const TaskGraphSweepPoint &b)
{
    return a.scheduler == b.scheduler && a.topology == b.topology &&
           a.nodes == b.nodes &&
           bits(a.makespanSeconds) == bits(b.makespanSeconds) &&
           bits(a.criticalPathSeconds) == bits(b.criticalPathSeconds) &&
           bits(a.speedup) == bits(b.speedup) &&
           bits(a.efficiency) == bits(b.efficiency) &&
           bits(a.utilization) == bits(b.utilization) &&
           bits(a.commSeconds) == bits(b.commSeconds) &&
           a.edgesCosted == b.edgesCosted && a.ok == b.ok &&
           a.error == b.error;
}

} // anonymous namespace

TEST(TaskGraphStudy, SweepIsSchedulerMajorWithAllCellsOk)
{
    TaskDag dag = TaskDag::wavefront(8, 48e9, 16e6, App::SNAP);
    TaskGraphStudy study(evaluator(), smallCluster());
    auto points = study.sweep(dag, NodeConfig::bestMean(),
                              allDagSchedulers(), topologies, counts);

    const std::size_t ns = allDagSchedulers().size();
    const std::size_t nt = topologies.size();
    const std::size_t nn = counts.size();
    ASSERT_EQ(points.size(), ns * nt * nn);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const TaskGraphSweepPoint &p = points[i];
        EXPECT_EQ(p.scheduler, i / (nt * nn)) << i;
        EXPECT_EQ(p.topology, topologies[(i / nn) % nt]) << i;
        EXPECT_EQ(p.nodes, counts[i % nn]) << i;
        ASSERT_TRUE(p.ok) << p.error;
        EXPECT_GT(p.makespanSeconds, 0.0);
        EXPECT_GT(p.criticalPathSeconds, 0.0);
        EXPECT_GT(p.utilization, 0.0);
    }
}

TEST(TaskGraphStudy, ParallelSweepIsBitIdenticalToSerial)
{
    TaskDag dag = TaskDag::randomLayered(8, 8, 0.35, 11, 48e9, 16e6,
                                         App::CoMD);
    TaskGraphStudy study(evaluator(), smallCluster());
    const NodeConfig cfg = NodeConfig::bestMean();

    ThreadPool::setGlobalThreads(1);
    auto serial = study.sweep(dag, cfg, allDagSchedulers(), topologies,
                              counts);
    ThreadPool::setGlobalThreads(8);
    auto parallel = study.sweep(dag, cfg, allDagSchedulers(),
                                topologies, counts);
    ThreadPool::setGlobalThreads(0);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_TRUE(samePoint(serial[i], parallel[i])) << i;
}

TEST(TaskGraphStudy, FaultInjectedSweepIsBitIdenticalToFaultFree)
{
    // Every pool task faults once; the retry policy absorbs the
    // injected faults and the sweep must reproduce the clean run
    // bit-for-bit (the ENA_FAULT_INJECT schedule-stability gate).
    TaskDag dag = TaskDag::stencilHalo(12, 8, 48e9, 16e6, App::HPGMG);
    TaskGraphStudy study(evaluator(), smallCluster());
    const NodeConfig cfg = NodeConfig::bestMean();
    auto clean = study.sweep(dag, cfg, allDagSchedulers(), topologies,
                             counts);

    ThreadPool &pool = ThreadPool::global();
    RetryPolicy saved = pool.retryPolicy();
    pool.setRetryPolicy(RetryPolicy::attempts(3));
    FaultPlan plan;
    plan.rate = 1.0;
    plan.seed = 23;
    plan.faultsPerTask = 1;
    fault_inject::setFaultPlan(plan);
    std::uint64_t before = fault_inject::faultsInjected();

    auto faulty = study.sweep(dag, cfg, allDagSchedulers(), topologies,
                              counts);

    fault_inject::clearFaultPlan();
    pool.setRetryPolicy(saved);

    EXPECT_GT(fault_inject::faultsInjected(), before);
    ASSERT_EQ(clean.size(), faulty.size());
    for (std::size_t i = 0; i < clean.size(); ++i)
        EXPECT_TRUE(samePoint(clean[i], faulty[i])) << i;
}

TEST(TaskGraphStudy, InvalidCellsAreQuarantinedNotFatal)
{
    TaskDag dag = TaskDag::wavefront(4, 48e9, 16e6, App::SNAP);
    TaskGraphStudy study(evaluator(), smallCluster());
    auto points =
        study.sweep(dag, NodeConfig::bestMean(), allDagSchedulers(),
                    topologies, {16, -3, 64});

    ASSERT_EQ(points.size(),
              allDagSchedulers().size() * topologies.size() * 3);
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (points[i].nodes == -3) {
            EXPECT_FALSE(points[i].ok) << i;
            EXPECT_FALSE(points[i].error.empty()) << i;
            EXPECT_EQ(points[i].makespanSeconds, 0.0) << i;
        } else {
            EXPECT_TRUE(points[i].ok) << points[i].error;
        }
    }
}

TEST(TaskGraphStudy, JobMixZeroCommDagsDoNotInterfere)
{
    // Zero-byte edges never touch the fabric: shared/alone is x/x, so
    // the slowdown is exactly 1.0 — the interference model's exact
    // reduction.
    TaskDag dag = TaskDag::wavefront(6, 48e9, 0.0, App::LULESH);
    TaskGraphStudy study(evaluator(), smallCluster());
    std::vector<TaskDag> mix = {dag, dag, dag, dag};
    JobMixResult jm = study.jobMix(mix, NodeConfig::bestMean(),
                                   DagScheduler::CriticalPath, 128);

    EXPECT_EQ(jm.jobs, 4);
    EXPECT_EQ(jm.nodesPerJob, 32);
    ASSERT_EQ(jm.perJob.size(), 4u);
    for (const JobInterference &j : jm.perJob) {
        EXPECT_EQ(j.slowdown, 1.0);
        EXPECT_EQ(bits(j.sharedSeconds), bits(j.aloneSeconds));
    }
    EXPECT_EQ(jm.meanSlowdown, 1.0);
    EXPECT_EQ(jm.worstSlowdown, 1.0);
}

TEST(TaskGraphStudy, JobMixCommHeavyDagsSlowEachOtherDown)
{
    TaskDag dag = TaskDag::stencilHalo(16, 8, 48e9, 128e6, App::CoMD);
    TaskGraphStudy study(evaluator(), smallCluster());
    std::vector<TaskDag> mix = {dag, dag};
    JobMixResult jm = study.jobMix(mix, NodeConfig::bestMean(),
                                   DagScheduler::CriticalPath, 128);

    EXPECT_GE(jm.meanSlowdown, 1.0);
    EXPECT_GE(jm.worstSlowdown, jm.meanSlowdown);
    for (const JobInterference &j : jm.perJob)
        EXPECT_GE(j.sharedSeconds, j.aloneSeconds);
}

TEST(ResilientDagScheduler, NoneSpecReducesToTheFaultFreeSchedule)
{
    ClusterConfig cluster = smallCluster();
    InterNodeNetwork net(cluster);
    const NodeConfig cfg = NodeConfig::bestMean();
    TaskDag dag = TaskDag::wavefront(8, 48e9, 16e6, App::SNAP);
    DagCostModel cost =
        DagCostModel::build(dag, evaluator(), cfg, net);
    Schedule plain = scheduleDag(dag, cost, DagScheduler::CriticalPath,
                                 cluster.nodes);

    ResilientDagScheduler rds(evaluator(), ResilienceSpec::none());
    ResilientSchedule rs =
        rds.evaluate(dag, cfg, net, DagScheduler::CriticalPath,
                     cluster.nodes, 8);

    EXPECT_EQ(rs.rmtSlowdown, 1.0);
    EXPECT_EQ(rs.expectedFailures, 0.0);
    EXPECT_EQ(rs.reexecSeconds, 0.0);
    EXPECT_EQ(rs.stretchFactor, 1.0);
    EXPECT_EQ(bits(rs.schedule.makespanSeconds),
              bits(plain.makespanSeconds));
    EXPECT_EQ(bits(rs.effectiveMakespanSeconds),
              bits(plain.makespanSeconds));
    EXPECT_EQ(rs.degradation(), 1.0);
}

TEST(ResilientDagScheduler, FaultsAndRmtDegradeTheMakespan)
{
    ClusterConfig cluster = smallCluster();
    InterNodeNetwork net(cluster);
    const NodeConfig cfg = NodeConfig::bestMean();
    TaskDag dag = TaskDag::stencilHalo(16, 12, 64e9, 32e6, App::HPGMG);

    ResilientSchedule none =
        ResilientDagScheduler(evaluator(), ResilienceSpec::none())
            .evaluate(dag, cfg, net, DagScheduler::CriticalPath,
                      cluster.nodes, 8);
    ResilientSchedule paper =
        ResilientDagScheduler(evaluator(), ResilienceSpec::paper())
            .evaluate(dag, cfg, net, DagScheduler::CriticalPath,
                      cluster.nodes, 8);

    EXPECT_GT(paper.nodeMttfHours, 0.0);
    EXPECT_GE(paper.expectedFailures, 0.0);
    EXPECT_GE(paper.effectiveMakespanSeconds,
              paper.schedule.makespanSeconds);
    EXPECT_GE(paper.degradation(), 1.0);
    // Protection is never free relative to the ideal machine.
    EXPECT_GE(paper.effectiveMakespanSeconds,
              none.effectiveMakespanSeconds);
}

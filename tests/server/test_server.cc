/**
 * @file
 * Tests for the evaluation server stack: RequestQueue semantics,
 * endpoint parsing, socket-free EvalService dispatch (including the
 * bit-identity of server-side evaluation against the scalar oracle and
 * fault-injected sweeps), and end-to-end daemon tests over a Unix
 * socket — among them the concurrent multi-client sweep that must be
 * bit-identical to serial local evaluation with exact request
 * accounting.
 */

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/ena.hh"
#include "server/client.hh"
#include "server/request_queue.hh"
#include "server/server.hh"
#include "util/fault_inject.hh"
#include "util/net.hh"
#include "util/thread_pool.hh"

using namespace ena;
using wire::JsonValue;

namespace {

std::uint64_t
bitsOf(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

/** A unique Unix socket path per test process. */
std::string
testSocketPath(const char *tag)
{
    return "/tmp/ena-ut-" + std::string(tag) + "-" +
           std::to_string(::getpid()) + ".sock";
}

// ---------------------------------------------------------------------
// RequestQueue

TEST(RequestQueue, DeliversInFifoOrder)
{
    RequestQueue<int> q(8);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.push(3));
    EXPECT_EQ(q.depth(), 3u);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.pop().value(), 3);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(RequestQueue, CloseDrainsPendingItemsThenStops)
{
    RequestQueue<int> q(8);
    EXPECT_TRUE(q.push(7));
    EXPECT_TRUE(q.push(8));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.push(9));
    EXPECT_EQ(q.pop().value(), 7);
    EXPECT_EQ(q.pop().value(), 8);
    EXPECT_FALSE(q.pop().has_value());
    q.close(); // idempotent
}

TEST(RequestQueue, PushBlocksAtCapacityUntilPop)
{
    RequestQueue<int> q(1);
    EXPECT_TRUE(q.push(1));

    // The second push must block until the consumer drains a slot.
    std::thread producer([&q] { EXPECT_TRUE(q.push(2)); });
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    producer.join();
    EXPECT_EQ(q.capacity(), 1u);
}

TEST(RequestQueue, CloseWakesBlockedProducer)
{
    RequestQueue<int> q(1);
    EXPECT_TRUE(q.push(1));
    std::thread producer([&q] { EXPECT_FALSE(q.push(2)); });
    q.close();
    producer.join();
}

// ---------------------------------------------------------------------
// Endpoint grammar

TEST(Endpoint, ParsesTheDocumentedGrammar)
{
    auto u = tryParseEndpoint("unix:/tmp/a.sock");
    ASSERT_TRUE(u.ok());
    EXPECT_EQ(u->kind, Endpoint::Kind::Unix);
    EXPECT_EQ(u->path, "/tmp/a.sock");
    EXPECT_EQ(u->toString(), "unix:/tmp/a.sock");

    auto t = tryParseEndpoint("tcp:10.0.0.1:9123");
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t->kind, Endpoint::Kind::Tcp);
    EXPECT_EQ(t->host, "10.0.0.1");
    EXPECT_EQ(t->port, 9123);
    EXPECT_EQ(t->toString(), "tcp:10.0.0.1:9123");

    // Bare integer: loopback TCP port.
    auto p = tryParseEndpoint("9123");
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->kind, Endpoint::Kind::Tcp);
    EXPECT_EQ(p->host, "127.0.0.1");
    EXPECT_EQ(p->port, 9123);

    // Anything path-like is a Unix socket.
    auto bare = tryParseEndpoint("run/ena.sock");
    ASSERT_TRUE(bare.ok());
    EXPECT_EQ(bare->kind, Endpoint::Kind::Unix);
    EXPECT_EQ(bare->path, "run/ena.sock");

    EXPECT_FALSE(tryParseEndpoint("").ok());
    EXPECT_FALSE(tryParseEndpoint("tcp:nohostport").ok());
    EXPECT_FALSE(tryParseEndpoint("tcp:host:notaport").ok());
    EXPECT_FALSE(tryParseEndpoint("tcp:host:70000").ok());
}

// ---------------------------------------------------------------------
// EvalService (socket-free dispatch)

JsonValue
request(const char *op)
{
    JsonValue r = JsonValue::object();
    r.set("op", op);
    return r;
}

TEST(EvalService, PingEchoesIdAndIdentifiesTheServer)
{
    EvalService svc;
    JsonValue req = request("ping");
    req.set("id", 42);
    JsonValue resp = svc.handle(req);

    ASSERT_NE(resp.find("id"), nullptr);
    EXPECT_EQ(resp.find("id")->number(), 42.0);
    EXPECT_TRUE(resp.find("ok")->boolean());
    const JsonValue *result = resp.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->find("server")->str(), "ena-server");
    EXPECT_EQ(svc.requestsHandled(), 1u);
    EXPECT_EQ(svc.errorsReturned(), 0u);
}

TEST(EvalService, MissingIdEchoesNull)
{
    EvalService svc;
    JsonValue resp = svc.handle(request("ping"));
    ASSERT_NE(resp.find("id"), nullptr);
    EXPECT_TRUE(resp.find("id")->isNull());
}

TEST(EvalService, UnknownOpIsNotFound)
{
    EvalService svc;
    JsonValue resp = svc.handle(request("frobnicate"));
    EXPECT_FALSE(resp.find("ok")->boolean());
    const JsonValue *err = resp.find("error");
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->find("code")->str(), "not_found");
    EXPECT_EQ(svc.errorsReturned(), 1u);
}

TEST(EvalService, BadAppAndBadConfigAreStructuredErrors)
{
    EvalService svc;

    JsonValue req = request("eval_node");
    req.set("app", "no-such-app");
    JsonValue resp = svc.handle(req);
    EXPECT_FALSE(resp.find("ok")->boolean());

    JsonValue req2 = request("eval_node");
    req2.set("app", "lulesh");
    req2.set("config", "not a key-value line");
    JsonValue resp2 = svc.handle(req2);
    EXPECT_FALSE(resp2.find("ok")->boolean());

    // An out-of-range config crosses the boundary as a Status, not a
    // throw or a fatal.
    JsonValue req3 = request("eval_node");
    req3.set("app", "lulesh");
    req3.set("config", "ehp.cus = -5");
    JsonValue resp3 = svc.handle(req3);
    EXPECT_FALSE(resp3.find("ok")->boolean());
    EXPECT_EQ(svc.errorsReturned(), 3u);
}

TEST(EvalService, HandleLineRejectsGarbageAsParseError)
{
    EvalService svc;
    std::string line = svc.handleLine("this is not json");
    auto resp = wire::tryParseJson(line);
    ASSERT_TRUE(resp.ok());
    EXPECT_FALSE(resp->find("ok")->boolean());
    EXPECT_EQ(resp->find("error")->find("code")->str(), "parse_error");
    EXPECT_EQ(svc.requestsHandled(), 1u);
    EXPECT_EQ(svc.errorsReturned(), 1u);
}

TEST(EvalService, EvalNodeMatchesTheScalarOracleBitExactly)
{
    EvalService svc;
    JsonValue req = request("eval_node");
    req.set("app", "hpgmg");
    req.set("config",
            "ehp.cus = 192\nehp.freq_ghz = 1.2\nehp.bw_tbs = 2.5\n");
    JsonValue resp = svc.handle(req);
    ASSERT_TRUE(resp.find("ok")->boolean()) << resp.dump();
    const JsonValue *r = resp.find("result");
    ASSERT_NE(r, nullptr);

    NodeConfig cfg;
    cfg.cus = 192;
    cfg.freqGhz = 1.2;
    cfg.bwTbs = 2.5;
    cfg.validate();
    NodeEvaluator eval;
    EvalResult expect = eval.evaluate(cfg, App::HPGMG);

    EXPECT_EQ(bitsOf(r->find("flops")->number()),
              bitsOf(expect.perf.flops));
    EXPECT_EQ(bitsOf(r->find("total_w")->number()),
              bitsOf(expect.power.total()));
    EXPECT_EQ(bitsOf(r->find("budget_w")->number()),
              bitsOf(expect.power.budgetPower()));
    EXPECT_EQ(bitsOf(r->find("traffic_gbs")->number()),
              bitsOf(expect.perf.trafficGbs));
    EXPECT_EQ(r->find("memory_bound")->boolean(),
              expect.perf.memoryBound);
}

/** The scalar reference for a server-side sweep (sweep_tool's loop). */
std::vector<std::pair<NodeConfig, EvalResult>>
localSweep(App app, const std::string &axis, double from, double to,
           double step, const NodeConfig &base)
{
    NodeEvaluator eval;
    std::vector<std::pair<NodeConfig, EvalResult>> out;
    for (double v = from; v <= to + 1e-9; v += step) {
        NodeConfig cfg = base;
        if (axis == "cus")
            cfg.cus = static_cast<int>(v);
        else if (axis == "freq")
            cfg.freqGhz = v;
        else
            cfg.bwTbs = v;
        cfg.validate();
        out.emplace_back(cfg, eval.evaluate(cfg, app));
    }
    return out;
}

void
expectSweepMatchesLocal(const JsonValue &result, App app,
                        const std::string &axis, double from, double to,
                        double step, const NodeConfig &base)
{
    auto expect = localSweep(app, axis, from, to, step, base);
    const JsonValue *points = result.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        const JsonValue &p = points->at(i);
        const EvalResult &r = expect[i].second;
        EXPECT_EQ(bitsOf(p.find("flops")->number()),
                  bitsOf(r.perf.flops))
            << axis << " point " << i;
        EXPECT_EQ(bitsOf(p.find("total_w")->number()),
                  bitsOf(r.power.total()));
        EXPECT_EQ(bitsOf(p.find("cu_utilization")->number()),
                  bitsOf(r.perf.activity.cuUtilization));
        EXPECT_EQ(p.find("cus")->number(), expect[i].first.cus);
    }
}

TEST(EvalService, SweepMatchesLocalEvaluationBitExactly)
{
    EvalService svc;
    JsonValue req = request("sweep");
    req.set("app", "lulesh");
    req.set("axis", "bw");
    req.set("from", 1.0);
    req.set("to", 4.0);
    req.set("step", 0.5);
    JsonValue resp = svc.handle(req);
    ASSERT_TRUE(resp.find("ok")->boolean()) << resp.dump();
    expectSweepMatchesLocal(*resp.find("result"), App::LULESH, "bw",
                            1.0, 4.0, 0.5, NodeConfig::bestMean());
}

TEST(EvalService, SweepRejectsBadAxisAndRange)
{
    EvalService svc;
    JsonValue req = request("sweep");
    req.set("app", "lulesh");
    req.set("axis", "volts");
    req.set("from", 1.0);
    req.set("to", 2.0);
    req.set("step", 0.5);
    JsonValue resp = svc.handle(req);
    EXPECT_FALSE(resp.find("ok")->boolean());
    EXPECT_EQ(resp.find("error")->find("code")->str(),
              "invalid_argument");

    req.set("axis", "bw");
    req.set("step", -1.0);
    resp = svc.handle(req);
    EXPECT_FALSE(resp.find("ok")->boolean());
    EXPECT_EQ(resp.find("error")->find("code")->str(), "out_of_range");
}

TEST(EvalService, FaultInjectedSweepIsBitIdenticalToFaultFree)
{
    // Every pool task faults on its first attempt; the retry policy
    // absorbs them all, so the sweep must reproduce the fault-free
    // scalar run bit-for-bit (the server-side ENA_FAULT_INJECT gate).
    ThreadPool &pool = ThreadPool::global();
    RetryPolicy saved = pool.retryPolicy();
    pool.setRetryPolicy(RetryPolicy::attempts(3));
    FaultPlan plan;
    plan.rate = 1.0;
    plan.seed = 11;
    plan.faultsPerTask = 1;
    fault_inject::setFaultPlan(plan);
    std::uint64_t before = fault_inject::faultsInjected();

    EvalService svc;
    JsonValue req = request("sweep");
    req.set("app", "hpgmg");
    req.set("axis", "freq");
    req.set("from", 0.8);
    req.set("to", 1.4);
    req.set("step", 0.1);
    JsonValue resp = svc.handle(req);

    fault_inject::clearFaultPlan();
    pool.setRetryPolicy(saved);

    ASSERT_TRUE(resp.find("ok")->boolean()) << resp.dump();
    EXPECT_GT(fault_inject::faultsInjected(), before);
    expectSweepMatchesLocal(*resp.find("result"), App::HPGMG, "freq",
                            0.8, 1.4, 0.1, NodeConfig::bestMean());
}

TEST(EvalService, SweepWithExhaustedRetriesReturnsAnError)
{
    // faultsPerTask above the retry budget: the pool rethrows the
    // injected fault, which must surface as a structured error
    // response, never a crash.
    ThreadPool &pool = ThreadPool::global();
    RetryPolicy saved = pool.retryPolicy();
    pool.setRetryPolicy(RetryPolicy::none());
    FaultPlan plan;
    plan.rate = 1.0;
    plan.seed = 3;
    plan.faultsPerTask = 100;
    fault_inject::setFaultPlan(plan);

    EvalService svc;
    JsonValue req = request("sweep");
    req.set("app", "lulesh");
    req.set("axis", "bw");
    req.set("from", 1.0);
    req.set("to", 2.0);
    req.set("step", 0.5);
    JsonValue resp = svc.handle(req);

    fault_inject::clearFaultPlan();
    pool.setRetryPolicy(saved);

    EXPECT_FALSE(resp.find("ok")->boolean());
    EXPECT_EQ(svc.errorsReturned(), 1u);
}

TEST(EvalService, ShutdownSetsTheStopFlag)
{
    EvalService svc;
    EXPECT_FALSE(svc.stopRequested());
    JsonValue resp = svc.handle(request("shutdown"));
    EXPECT_TRUE(resp.find("ok")->boolean());
    EXPECT_TRUE(svc.stopRequested());
}

// ---------------------------------------------------------------------
// End-to-end over a Unix socket

TEST(EvalServer, ServesPingEvalAndErrorsOverAUnixSocket)
{
    ServerOptions opts;
    opts.endpoint = Endpoint::unixPath(testSocketPath("e2e"));
    opts.workers = 2;
    auto server = EvalServer::start(opts);
    ASSERT_TRUE(server.ok()) << server.status().toString();

    ClientOptions copts;
    copts.endpoint = (*server)->endpoint();
    ServerClient client(copts);

    auto pong = client.ping();
    ASSERT_TRUE(pong.ok()) << pong.status().toString();
    EXPECT_EQ(pong->find("server")->str(), "ena-server");

    // Application errors preserve the server's error code.
    auto bad = client.call("frobnicate");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::NotFound);

    JsonValue params = JsonValue::object();
    params.set("app", "maxflops");
    auto eval = client.call("eval_node", std::move(params));
    ASSERT_TRUE(eval.ok()) << eval.status().toString();
    NodeEvaluator local;
    NodeConfig base = NodeConfig::bestMean();
    EXPECT_EQ(bitsOf(eval->find("flops")->number()),
              bitsOf(local.evaluate(base, App::MaxFlops).perf.flops));

    auto stats = client.stats();
    ASSERT_TRUE(stats.ok());
    EXPECT_GE(stats->find("requests")->number(), 3.0);

    (*server)->stop();
}

TEST(EvalServer, ShutdownOpStopsTheDaemon)
{
    ServerOptions opts;
    opts.endpoint = Endpoint::unixPath(testSocketPath("stop"));
    opts.workers = 2;
    auto server = EvalServer::start(opts);
    ASSERT_TRUE(server.ok()) << server.status().toString();

    ClientOptions copts;
    copts.endpoint = (*server)->endpoint();
    ServerClient client(copts);
    auto ack = client.shutdownServer();
    ASSERT_TRUE(ack.ok()) << ack.status().toString();
    EXPECT_TRUE(ack->find("stopping")->boolean());

    (*server)->wait(); // returns because the op triggered requestStop()
    (*server)->stop();
    EXPECT_TRUE((*server)->service().stopRequested());
}

TEST(EvalServer, ConcurrentClientsMatchSerialLocalEvaluationBitExactly)
{
    // Satellite gate: N client threads issuing overlapping sweeps must
    // get results bit-identical to serial local evaluation, and the
    // server must account for exactly the requests sent.
    struct SweepSpec
    {
        const char *app;
        App appId;
        const char *axis;
        double from, to, step;
    };
    const SweepSpec specs[] = {
        {"lulesh", App::LULESH, "bw", 1.0, 3.0, 0.5},
        {"maxflops", App::MaxFlops, "cus", 64.0, 320.0, 64.0},
        {"hpgmg", App::HPGMG, "freq", 0.8, 1.2, 0.1},
    };
    const NodeConfig base = NodeConfig::bestMean();

    std::vector<std::vector<std::pair<NodeConfig, EvalResult>>> expect;
    for (const SweepSpec &s : specs) {
        expect.push_back(localSweep(s.appId, s.axis, s.from, s.to,
                                    s.step, base));
    }

    ServerOptions opts;
    opts.endpoint = Endpoint::unixPath(testSocketPath("mc"));
    opts.workers = 4;
    opts.queueCapacity = 8;
    auto server = EvalServer::start(opts);
    ASSERT_TRUE(server.ok()) << server.status().toString();
    const std::uint64_t requestsBefore =
        (*server)->service().requestsHandled();

    constexpr int kClients = 8;
    std::vector<Expected<std::vector<SweepPoint>>> results(
        kClients,
        Expected<std::vector<SweepPoint>>(Status::internal("unset")));
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
            const SweepSpec &s = specs[t % 3];
            ClientOptions copts;
            copts.endpoint = (*server)->endpoint();
            ServerClient client(copts);
            results[t] = client.sweepAxis(s.app, s.axis, s.from, s.to,
                                          s.step);
        });
    }
    for (std::thread &th : threads)
        th.join();

    for (int t = 0; t < kClients; ++t) {
        const auto &want = expect[t % 3];
        ASSERT_TRUE(results[t].ok())
            << "client " << t << ": " << results[t].status().toString();
        const std::vector<SweepPoint> &got = *results[t];
        ASSERT_EQ(got.size(), want.size()) << "client " << t;
        for (std::size_t i = 0; i < want.size(); ++i) {
            const EvalResult &r = want[i].second;
            EXPECT_EQ(bitsOf(got[i].flops), bitsOf(r.perf.flops))
                << "client " << t << " point " << i;
            EXPECT_EQ(bitsOf(got[i].totalW), bitsOf(r.power.total()));
            EXPECT_EQ(bitsOf(got[i].budgetW),
                      bitsOf(r.power.budgetPower()));
            EXPECT_EQ(bitsOf(got[i].trafficGbs),
                      bitsOf(r.perf.trafficGbs));
            EXPECT_EQ(got[i].cus, want[i].first.cus);
            EXPECT_EQ(got[i].memoryBound, r.perf.memoryBound);
        }
    }

    // Exactly one request per client sweep, no more, no less.
    EXPECT_EQ((*server)->service().requestsHandled() - requestsBefore,
              static_cast<std::uint64_t>(kClients));
    EXPECT_EQ((*server)->service().errorsReturned(), 0u);

    (*server)->stop();
}

TEST(EvalServer, PipelinedRequestsOnOneConnectionCorrelateById)
{
    ServerOptions opts;
    opts.endpoint = Endpoint::unixPath(testSocketPath("pipe"));
    opts.workers = 2;
    auto server = EvalServer::start(opts);
    ASSERT_TRUE(server.ok()) << server.status().toString();

    auto sock = connectTo((*server)->endpoint());
    ASSERT_TRUE(sock.ok()) << sock.status().toString();

    // Three pipelined requests in one write; responses may interleave
    // in completion order, so collect and match by echoed id.
    ASSERT_TRUE(sock->sendAll("{\"op\":\"ping\",\"id\":1}\n"
                              "{\"op\":\"ping\",\"id\":2}\n"
                              "{\"op\":\"nope\",\"id\":3}\n")
                    .ok());
    std::string buffer;
    bool sawOk[4] = {false, false, false, false};
    for (int i = 0; i < 3; ++i) {
        std::string line;
        auto got = sock->recvLine(&buffer, &line);
        ASSERT_TRUE(got.ok()) << got.status().toString();
        ASSERT_TRUE(*got);
        auto resp = wire::tryParseJson(line);
        ASSERT_TRUE(resp.ok());
        int id = static_cast<int>(resp->find("id")->number());
        ASSERT_GE(id, 1);
        ASSERT_LE(id, 3);
        sawOk[id] = resp->find("ok")->boolean();
    }
    EXPECT_TRUE(sawOk[1]);
    EXPECT_TRUE(sawOk[2]);
    EXPECT_FALSE(sawOk[3]);

    (*server)->stop();
}

} // anonymous namespace

/**
 * @file
 * Unit tests for the server's hand-rolled JSON (server/wire.hh): exact
 * double round-trips (the wire protocol's bit-identity guarantee),
 * string escaping, parser error paths, and the typed accessors.
 */

#include <cmath>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "server/wire.hh"

using namespace ena;
using wire::JsonValue;
using wire::tryParseJson;

namespace {

std::uint64_t
bitsOf(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

TEST(Wire, ScalarsRoundTrip)
{
    EXPECT_EQ(JsonValue().dump(), "null");
    EXPECT_EQ(JsonValue(true).dump(), "true");
    EXPECT_EQ(JsonValue(false).dump(), "false");
    EXPECT_EQ(JsonValue(42).dump(), "42");
    EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");

    auto v = tryParseJson(" true ");
    ASSERT_TRUE(v.ok());
    EXPECT_TRUE(v->isBool());
    EXPECT_TRUE(v->boolean());
}

TEST(Wire, DoublesRoundTripBitExactly)
{
    const double cases[] = {
        0.0,
        -0.0,
        1.0 / 3.0,
        0.10666666666666667,
        3027202472086.2437,
        1e-308,
        1.7976931348623157e308,
        -123.456e-7,
        2632.3499757271684,
    };
    for (double d : cases) {
        std::string text = JsonValue(d).dump();
        auto parsed = tryParseJson(text);
        ASSERT_TRUE(parsed.ok()) << text;
        ASSERT_TRUE(parsed->isNumber());
        EXPECT_EQ(bitsOf(parsed->number()), bitsOf(d))
            << "through \"" << text << "\"";
    }
}

TEST(Wire, NonFiniteNumbersSerializeAsNull)
{
    EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(),
              "null");
    EXPECT_EQ(JsonValue(std::nan("")).dump(), "null");
}

TEST(Wire, ObjectsPreserveInsertionOrder)
{
    JsonValue o = JsonValue::object();
    o.set("z", 1);
    o.set("a", 2);
    o.set("z", 3); // replace keeps position
    EXPECT_EQ(o.dump(), "{\"z\":3,\"a\":2}");
    ASSERT_NE(o.find("a"), nullptr);
    EXPECT_EQ(o.find("a")->number(), 2.0);
    EXPECT_EQ(o.find("missing"), nullptr);
}

TEST(Wire, NestedDocumentRoundTrips)
{
    const std::string text =
        "{\"op\":\"sweep\",\"points\":[{\"v\":1.5},{\"v\":2.5}],"
        "\"ok\":true,\"note\":null}";
    auto v = tryParseJson(text);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->dump(), text);
    const JsonValue *points = v->find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->size(), 2u);
    EXPECT_EQ(points->at(1).find("v")->number(), 2.5);
}

TEST(Wire, StringEscapes)
{
    JsonValue s(std::string("a\"b\\c\nd\te\x01" "f"));
    EXPECT_EQ(s.dump(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
    auto parsed = tryParseJson(s.dump());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->str(), "a\"b\\c\nd\te\x01" "f");

    auto unicode = tryParseJson("\"\\u0041\\u00e9\"");
    ASSERT_TRUE(unicode.ok());
    EXPECT_EQ(unicode->str(), "A\xc3\xa9");
}

TEST(Wire, ParserRejectsMalformedInput)
{
    EXPECT_FALSE(tryParseJson("").ok());
    EXPECT_FALSE(tryParseJson("{").ok());
    EXPECT_FALSE(tryParseJson("{\"a\":}").ok());
    EXPECT_FALSE(tryParseJson("[1,]").ok());
    EXPECT_FALSE(tryParseJson("treu").ok());
    EXPECT_FALSE(tryParseJson("1 2").ok());
    EXPECT_FALSE(tryParseJson("\"unterminated").ok());
    EXPECT_FALSE(tryParseJson("{\"a\":1}x").ok());

    auto bad = tryParseJson("{\"a\" 1}");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::ParseError);
}

TEST(Wire, ParserRejectsDeepNesting)
{
    std::string deep(200, '[');
    deep += std::string(200, ']');
    EXPECT_FALSE(tryParseJson(deep).ok());
}

TEST(Wire, TypedAccessors)
{
    auto obj = tryParseJson("{\"s\":\"x\",\"n\":2.5,\"b\":true}");
    ASSERT_TRUE(obj.ok());

    EXPECT_EQ(wire::tryGetString(*obj, "s").value(), "x");
    EXPECT_EQ(wire::tryGetNumber(*obj, "n").value(), 2.5);
    EXPECT_TRUE(wire::tryGetBool(*obj, "b", false).value());

    // Missing: required form errors, defaulted form falls back.
    EXPECT_EQ(wire::tryGetString(*obj, "nope").status().code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(wire::tryGetString(*obj, "nope", "dflt").value(), "dflt");
    EXPECT_EQ(wire::tryGetNumber(*obj, "nope", 7.0).value(), 7.0);

    // Present but mistyped: error even with a default.
    EXPECT_FALSE(wire::tryGetNumber(*obj, "s", 1.0).ok());
    EXPECT_FALSE(wire::tryGetBool(*obj, "n", true).ok());
}

} // anonymous namespace

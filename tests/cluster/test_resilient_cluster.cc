/**
 * @file
 * ResilientClusterEvaluator: the zero-resiliency bit-identical
 * reduction to ClusterEvaluator, cluster.ras. config-file bindings,
 * fabric-drained checkpoints, the protection ladder's effect on
 * effective exaflops, and determinism of the sharded protection sweep
 * and the availability-constrained best-config search.
 */

#include <gtest/gtest.h>

#include "cluster/cluster_config_io.hh"
#include "cluster/resilient_cluster.hh"
#include "cluster/resilient_cluster_io.hh"
#include "util/thread_pool.hh"

using namespace ena;

namespace {

const NodeEvaluator &
evaluator()
{
    static NodeEvaluator eval;
    return eval;
}

ClusterEvaluator
clusterAt(int nodes)
{
    ClusterConfig c = ClusterConfig::exascale();
    c.nodes = nodes;
    return ClusterEvaluator(evaluator(), c);
}

} // anonymous namespace

TEST(ResilientCluster, ZeroSpecReducesBitIdenticallyToClusterEvaluator)
{
    // ResilienceSpec::none() disables faults and RMT, so the effective
    // projection must be the ClusterEvaluator number bit-for-bit
    // (x * 1.0 / 1.0), not merely close.
    ClusterEvaluator ce = clusterAt(100000);
    ResilientClusterEvaluator rce(ce, ResilienceSpec::none());
    NodeConfig cfg = NodeConfig::bestMean();
    CommSpec a2a;
    a2a.pattern = CommPattern::AllToAll;
    for (App app : {App::MaxFlops, App::CoMD, App::SNAP}) {
        for (const CommSpec &spec : {CommSpec::none(), CommSpec{}, a2a}) {
            ClusterResult base = ce.evaluate(cfg, app, spec);
            ResilientResult r = rce.evaluate(cfg, app, spec);
            EXPECT_EQ(r.effectiveExaflops, base.systemExaflops);
            EXPECT_EQ(r.systemMw, base.systemMw);
            EXPECT_EQ(r.ckptEfficiency, 1.0);
            EXPECT_EQ(r.rmtSlowdown, 1.0);
        }
    }
}

TEST(ResilientCluster, SpecConfigRoundTrips)
{
    ResilienceSpec s = ResilienceSpec::paper();
    s.checkpointViaFabric = true;
    s.ras.ntcSerMultiplier = 3.5;
    s.checkpoint.checkpointBytes = 123e9;
    s.checkpoint.ioBandwidthBps = 7e9;
    s.checkpoint.overheadS = 2.5;
    s.checkpoint.restartExtraS = 45.0;
    ResilienceSpec t = resilienceSpecFromConfig(resilienceSpecToConfig(s));
    EXPECT_EQ(t.faultsEnabled, s.faultsEnabled);
    EXPECT_EQ(t.ras.dramEcc, s.ras.dramEcc);
    EXPECT_EQ(t.ras.sramEcc, s.ras.sramEcc);
    EXPECT_EQ(t.ras.gpuRmt, s.ras.gpuRmt);
    EXPECT_DOUBLE_EQ(t.ras.ntcSerMultiplier, s.ras.ntcSerMultiplier);
    EXPECT_EQ(t.rmtPolicy, s.rmtPolicy);
    EXPECT_DOUBLE_EQ(t.checkpoint.checkpointBytes,
                     s.checkpoint.checkpointBytes);
    EXPECT_DOUBLE_EQ(t.checkpoint.ioBandwidthBps,
                     s.checkpoint.ioBandwidthBps);
    EXPECT_DOUBLE_EQ(t.checkpoint.overheadS, s.checkpoint.overheadS);
    EXPECT_DOUBLE_EQ(t.checkpoint.restartExtraS,
                     s.checkpoint.restartExtraS);
    EXPECT_EQ(t.checkpointViaFabric, s.checkpointViaFabric);
}

TEST(ResilientCluster, ClusterConfigIoToleratesRasKeys)
{
    // One file holds the fabric and the resiliency layer side by side;
    // each loader validates its own prefix and skips the other's.
    Config cfg;
    cfg.set("cluster.nodes", 8000);
    cfg.set("cluster.ras.dram_ecc", true);
    cfg.set("cluster.ras.rmt_policy", std::string("full"));
    ClusterConfig c = clusterConfigFromConfig(cfg);
    EXPECT_EQ(c.nodes, 8000);
    ResilienceSpec s = resilienceSpecFromConfig(cfg);
    EXPECT_TRUE(s.ras.dramEcc);
    EXPECT_EQ(s.rmtPolicy, RmtPolicy::Full);
}

TEST(ResilientClusterDeathTest, UnknownRasKeyIsFatal)
{
    Config cfg;
    cfg.set("cluster.ras.dram_ec", true);   // typo
    EXPECT_DEATH(resilienceSpecFromConfig(cfg), "resilience-config");
}

TEST(ResilientCluster, FabricDrainMatchesNetworkAllToAllRate)
{
    // With checkpointViaFabric the drain bandwidth is what the fabric
    // can actually deliver under the all-drain-at-once (all-to-all-
    // like) pattern; otherwise it is the fixed I/O knob.
    ClusterEvaluator ce = clusterAt(27000);
    ResilienceSpec fabric = ResilienceSpec::paper();
    fabric.checkpointViaFabric = true;
    ResilientClusterEvaluator via(ce, fabric);
    EXPECT_DOUBLE_EQ(
        via.checkpointDrainBps(),
        ce.network().deliveredGbs(CommPattern::AllToAll) * 1e9);

    ResilientClusterEvaluator fixed(ce, ResilienceSpec::paper());
    EXPECT_DOUBLE_EQ(fixed.checkpointDrainBps(),
                     ResilienceSpec::paper().checkpoint.ioBandwidthBps);

    ResilientResult r =
        via.evaluate(NodeConfig::bestMean(), App::CoMD, CommSpec{});
    EXPECT_DOUBLE_EQ(r.drainBps, via.checkpointDrainBps());
}

TEST(ResilientCluster, ProtectionLadderImprovesAvailability)
{
    ClusterEvaluator ce = clusterAt(100000);
    NodeConfig cfg = NodeConfig::bestMean();
    const std::vector<ProtectionVariant> &ladder =
        standardProtectionVariants();
    ASSERT_EQ(ladder.size(), 3u);

    std::vector<ResilientResult> r;
    for (const ProtectionVariant &v : ladder)
        r.push_back(ResilientClusterEvaluator(ce, v.spec)
                        .evaluate(cfg, App::CoMD, CommSpec{}));

    // Each rung raises system MTTF and interruption MTTF.
    for (size_t i = 1; i < r.size(); ++i) {
        EXPECT_GT(r[i].systemMttfHours, r[i - 1].systemMttfHours);
        EXPECT_GT(r[i].interruptionMttfHours,
                  r[i - 1].interruptionMttfHours);
    }
    // At 100,000 nodes ECC pays for itself in effective exaflops (the
    // no-protection machine drowns in checkpoint rework); RMT trades a
    // little throughput for another ~3.5x on interruption MTTF.
    EXPECT_GT(r[1].effectiveExaflops, r[0].effectiveExaflops);
    EXPECT_GT(r[2].rmtSlowdown, 1.0);
    EXPECT_LT(r[2].ckptEfficiency, 1.0);
}

TEST(ResilientCluster, InterruptionMttfScalesInverselyWithNodes)
{
    NodeConfig cfg = NodeConfig::bestMean();
    ResilienceSpec spec = ResilienceSpec::paper();
    ResilientResult at1k =
        ResilientClusterEvaluator(clusterAt(1000), spec)
            .evaluate(cfg, App::CoMD, CommSpec{});
    ResilientResult at100k =
        ResilientClusterEvaluator(clusterAt(100000), spec)
            .evaluate(cfg, App::CoMD, CommSpec{});
    EXPECT_NEAR(at1k.interruptionMttfHours,
                100.0 * at100k.interruptionMttfHours,
                at1k.interruptionMttfHours * 1e-9);
    EXPECT_NEAR(at1k.systemMttfHours, 100.0 * at100k.systemMttfHours,
                at1k.systemMttfHours * 1e-9);
}

TEST(ResilientCluster, SweepMatchesDirectEvaluationAndOrdering)
{
    ResilientScaleOutStudy study(evaluator(), ClusterConfig::exascale());
    const std::vector<ProtectionVariant> &variants =
        standardProtectionVariants();
    const std::vector<ClusterTopology> topos = {ClusterTopology::FatTree,
                                                ClusterTopology::Torus3D};
    const std::vector<int> sizes = {1000, 27000};
    NodeConfig cfg = NodeConfig::bestMean();

    auto sweep = study.sweep(cfg, App::CoMD, CommSpec{}, variants, topos,
                             sizes);
    ASSERT_EQ(sweep.size(), variants.size() * topos.size() * sizes.size());

    // Variant-major, then topology, then nodes.
    EXPECT_EQ(sweep[0].variant, 0u);
    EXPECT_EQ(sweep[0].topology, ClusterTopology::FatTree);
    EXPECT_EQ(sweep[0].nodes, 1000);
    EXPECT_EQ(sweep[1].nodes, 27000);
    EXPECT_EQ(sweep[2].topology, ClusterTopology::Torus3D);
    EXPECT_EQ(sweep[4].variant, 1u);

    // Each grid point is exactly the standalone evaluator's answer.
    for (const ResilientSweepPoint &p : sweep) {
        ClusterConfig cc = ClusterConfig::exascale();
        cc.nodes = p.nodes;
        cc.topology = p.topology;
        cc.torusX = cc.torusY = cc.torusZ = 0;
        ClusterEvaluator ce(evaluator(), cc);
        ResilientClusterEvaluator rce(ce, variants[p.variant].spec);
        ResilientResult r = rce.evaluate(cfg, App::CoMD, CommSpec{});
        EXPECT_EQ(p.systemMttfHours, r.systemMttfHours);
        EXPECT_EQ(p.interruptionMttfHours, r.interruptionMttfHours);
        EXPECT_EQ(p.ckptEfficiency, r.ckptEfficiency);
        EXPECT_EQ(p.rmtSlowdown, r.rmtSlowdown);
        EXPECT_EQ(p.systemExaflops, r.cluster.systemExaflops);
        EXPECT_EQ(p.effectiveExaflops, r.effectiveExaflops);
        EXPECT_EQ(p.systemMw, r.systemMw);
    }
}

TEST(ResilientCluster, SweepIsDeterministicAcrossThreadCounts)
{
    ResilientScaleOutStudy study(evaluator(), ClusterConfig::exascale());
    const std::vector<int> sizes = {1000, 8000, 27000};
    NodeConfig cfg = NodeConfig::bestMean();

    ThreadPool::setGlobalThreads(1);
    auto serial =
        study.sweep(cfg, App::CoMD, CommSpec{},
                    standardProtectionVariants(), allClusterTopologies(),
                    sizes);
    ThreadPool::setGlobalThreads(5);
    auto parallel =
        study.sweep(cfg, App::CoMD, CommSpec{},
                    standardProtectionVariants(), allClusterTopologies(),
                    sizes);
    ThreadPool::setGlobalThreads(0);

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].variant, parallel[i].variant);
        EXPECT_EQ(serial[i].topology, parallel[i].topology);
        EXPECT_EQ(serial[i].nodes, parallel[i].nodes);
        EXPECT_EQ(serial[i].systemMttfHours, parallel[i].systemMttfHours);
        EXPECT_EQ(serial[i].interruptionMttfHours,
                  parallel[i].interruptionMttfHours);
        EXPECT_EQ(serial[i].commEfficiency, parallel[i].commEfficiency);
        EXPECT_EQ(serial[i].ckptEfficiency, parallel[i].ckptEfficiency);
        EXPECT_EQ(serial[i].rmtSlowdown, parallel[i].rmtSlowdown);
        EXPECT_EQ(serial[i].systemExaflops, parallel[i].systemExaflops);
        EXPECT_EQ(serial[i].effectiveExaflops,
                  parallel[i].effectiveExaflops);
        EXPECT_EQ(serial[i].systemMw, parallel[i].systemMw);
    }
}

TEST(ResilientCluster, SearchRespectsConstraintsAndPicksFeasibleMax)
{
    ResilientScaleOutStudy study(evaluator(), ClusterConfig::exascale());
    NodeConfig cfg = NodeConfig::bestMean();
    const std::vector<int> sizes = {1000, 27000, 100000};

    auto won = study.bestUnderAvailability(
        {cfg}, standardProtectionVariants(), sizes, App::CoMD,
        CommSpec{});
    ASSERT_TRUE(won.feasible);
    ResilientScaleOutStudy::SearchConstraints defaults;
    EXPECT_GE(won.result.interruptionMttfHours,
              defaults.minInterruptionMttfHours);
    EXPECT_LE(won.maxBudgetPowerW, defaults.nodePowerBudgetW);

    // The winner beats every other feasible candidate.
    for (size_t v = 0; v < standardProtectionVariants().size(); ++v) {
        for (int n : sizes) {
            ClusterConfig cc = ClusterConfig::exascale();
            cc.nodes = n;
            ClusterEvaluator ce(evaluator(), cc);
            ResilientClusterEvaluator rce(
                ce, standardProtectionVariants()[v].spec);
            ResilientResult r = rce.evaluate(cfg, App::CoMD, CommSpec{});
            if (r.interruptionMttfHours <
                    defaults.minInterruptionMttfHours ||
                evaluator().maxBudgetPower(cfg) >
                    defaults.nodePowerBudgetW)
                continue;
            EXPECT_GE(won.result.effectiveExaflops, r.effectiveExaflops);
        }
    }

    // An unreachable availability bar leaves the search infeasible.
    ResilientScaleOutStudy::SearchConstraints impossible;
    impossible.minInterruptionMttfHours = 1e12;
    auto none = study.bestUnderAvailability(
        {cfg}, standardProtectionVariants(), sizes, App::CoMD,
        CommSpec{}, impossible);
    EXPECT_FALSE(none.feasible);
}

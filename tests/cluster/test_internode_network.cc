/**
 * @file
 * InterNodeNetwork: the closed-form topology math, cross-checked
 * against BFS-exact routing on the on-package Topology abstraction for
 * instances small enough to build explicitly.
 */

#include <gtest/gtest.h>

#include "cluster/internode_network.hh"

using namespace ena;

namespace {

ClusterConfig
torusConfig(int nx, int ny, int nz)
{
    ClusterConfig c;
    c.topology = ClusterTopology::Torus3D;
    c.nodes = nx * ny * nz;
    c.torusX = nx;
    c.torusY = ny;
    c.torusZ = nz;
    return c;
}

/** BFS-exact mean hop count over all ordered router pairs (self
 *  included, matching the uniform-random-traffic definition). */
double
bfsAvgHops(const Topology &t)
{
    double sum = 0.0;
    for (std::uint32_t a = 0; a < t.numRouters(); ++a) {
        for (std::uint32_t b = 0; b < t.numRouters(); ++b)
            sum += t.hopCount(a, b);
    }
    return sum / (static_cast<double>(t.numRouters()) * t.numRouters());
}

std::uint32_t
bfsDiameter(const Topology &t)
{
    std::uint32_t max_h = 0;
    for (std::uint32_t a = 0; a < t.numRouters(); ++a) {
        for (std::uint32_t b = 0; b < t.numRouters(); ++b)
            max_h = std::max(max_h, t.hopCount(a, b));
    }
    return max_h;
}

} // anonymous namespace

TEST(InterNodeNetwork, TorusClosedFormMatchesBfsExactRouting)
{
    // The closed-form torus hop counts must agree with BFS on the
    // explicit router graph for every shape small enough to build.
    const int shapes[][3] = {
        {4, 4, 4}, {3, 3, 3}, {4, 3, 2}, {5, 4, 3}, {8, 2, 1}, {6, 6, 6},
    };
    for (const auto &s : shapes) {
        InterNodeNetwork net(torusConfig(s[0], s[1], s[2]));
        Topology t = net.smallTorusTopology();
        ASSERT_EQ(t.numRouters(),
                  static_cast<std::uint32_t>(s[0] * s[1] * s[2]));
        EXPECT_NEAR(net.avgHops(), bfsAvgHops(t), 1e-12)
            << s[0] << "x" << s[1] << "x" << s[2];
        EXPECT_DOUBLE_EQ(net.diameterHops(), bfsDiameter(t))
            << s[0] << "x" << s[1] << "x" << s[2];
    }
}

TEST(InterNodeNetwork, TorusAutoDimsAreNearCubic)
{
    ClusterConfig c;
    c.topology = ClusterTopology::Torus3D;
    c.nodes = 100000;
    InterNodeNetwork net(c);
    int nx = 0, ny = 0, nz = 0;
    net.torusDims(nx, ny, nz);
    EXPECT_EQ(nx * ny * nz, c.nodes);
    EXPECT_EQ(nx, 50);
    EXPECT_EQ(ny, 50);
    EXPECT_EQ(nz, 40);
    EXPECT_DOUBLE_EQ(net.neighborHops(), 1.0);
    EXPECT_EQ(net.switchCount(), 100000u);
}

TEST(InterNodeNetwork, FatTreeAutoRadixSmallestFit)
{
    ClusterConfig c;
    c.nodes = 1000;
    InterNodeNetwork net(c);
    // k^3/4 >= 1000 first holds at k = 16 (1024 nodes).
    EXPECT_EQ(net.fatTreeRadix(), 16);
    EXPECT_DOUBLE_EQ(net.diameterHops(), 6.0);
    EXPECT_DOUBLE_EQ(net.neighborHops(), 2.0);
    // Full (untapered) bisection: half the aggregate injection.
    EXPECT_DOUBLE_EQ(net.bisectionGbs(),
                     1000.0 * net.injectionGbs() / 2.0);
    EXPECT_GT(net.avgHops(), 2.0);
    EXPECT_LE(net.avgHops(), 6.0);
}

TEST(InterNodeNetwork, FatTreeTaperDividesBisectionOnly)
{
    ClusterConfig full;
    full.nodes = 8192;
    ClusterConfig tapered = full;
    tapered.fatTreeTaper = 2.0;
    InterNodeNetwork a(full), b(tapered);
    EXPECT_DOUBLE_EQ(b.bisectionGbs(), a.bisectionGbs() / 2.0);
    EXPECT_DOUBLE_EQ(a.avgHops(), b.avgHops());
    EXPECT_DOUBLE_EQ(a.injectionGbs(), b.injectionGbs());
}

TEST(InterNodeNetwork, DragonflyAutoGroupSmallestFit)
{
    ClusterConfig c;
    c.topology = ClusterTopology::Dragonfly;
    c.nodes = 100;
    InterNodeNetwork net(c);
    // a=4 holds 2*4*9 = 72 < 100; a=6 holds 3*6*19 = 342.
    EXPECT_EQ(net.dragonflyGroupRouters(), 6);
    EXPECT_DOUBLE_EQ(net.diameterHops(), 5.0);
    EXPECT_EQ(net.switchCount(), 6u * 19u);
}

TEST(InterNodeNetwork, BisectionOrderingAcrossFabrics)
{
    // At the same size and NIC, the full fat tree holds the most
    // bisection, the torus the least (that is the cost trade).
    ClusterConfig c;
    c.nodes = 1000;
    c.topology = ClusterTopology::FatTree;
    InterNodeNetwork ft(c);
    c.topology = ClusterTopology::Dragonfly;
    InterNodeNetwork df(c);
    c.topology = ClusterTopology::Torus3D;
    InterNodeNetwork t3(c);
    EXPECT_GT(ft.bisectionGbs(), df.bisectionGbs());
    EXPECT_GT(df.bisectionGbs(), t3.bisectionGbs());
    // And the torus pays for it in hops.
    EXPECT_GT(t3.avgHops(), ft.avgHops());
}

TEST(InterNodeNetwork, DeliveredBandwidthByPattern)
{
    ClusterConfig c;
    c.nodes = 27000;
    for (ClusterTopology t : allClusterTopologies()) {
        c.topology = t;
        InterNodeNetwork net(c);
        EXPECT_DOUBLE_EQ(net.deliveredGbs(CommPattern::Halo),
                         net.injectionGbs());
        EXPECT_DOUBLE_EQ(net.deliveredGbs(CommPattern::Allreduce),
                         net.injectionGbs());
        EXPECT_LE(net.deliveredGbs(CommPattern::AllToAll),
                  net.injectionGbs());
        EXPECT_GT(net.deliveredGbs(CommPattern::AllToAll), 0.0);
    }
}

TEST(InterNodeNetwork, BisectionCountsEveryLinkPlane)
{
    // Regression: the dragonfly and torus closed forms dropped the
    // linksPerNode factor, so their bisection (and hence AllToAll
    // delivered bandwidth) was silently 1/linksPerNode of the fat
    // tree's accounting, which bakes the planes in via injectionGbs().
    // All three fabrics must scale bisection linearly in the NIC port
    // count.
    for (ClusterTopology t : allClusterTopologies()) {
        ClusterConfig c;
        c.nodes = 1000;
        c.topology = t;
        c.linksPerNode = 1;
        InterNodeNetwork one(c);
        c.linksPerNode = 4;
        InterNodeNetwork four(c);
        EXPECT_DOUBLE_EQ(four.bisectionGbs(), 4.0 * one.bisectionGbs())
            << clusterTopologyName(t);
        EXPECT_DOUBLE_EQ(four.injectionGbs(), 4.0 * one.injectionGbs())
            << clusterTopologyName(t);
    }
}

TEST(InterNodeNetwork, AllToAllDeliveredBandwidthPinned)
{
    // Exact post-fix AllToAll delivered rates at n = 1000 with the
    // default NIC (4 x 25 GB/s). delivered = min(injection,
    // 2 * bisection / n):
    //   fat tree (radix 16, taper 1): bisection 50,000 -> 100 GB/s
    //   dragonfly (a = 8, g = 33): (33/2)^2 * 25 * 4 = 27,225
    //     -> 54.45 GB/s
    //   torus (10 x 10 x 10): 2 * 100 * 25 * 4 = 20,000 -> 40 GB/s
    // The pre-fix dragonfly/torus math (no linksPerNode factor) gave
    // 13.6125 and 10 GB/s.
    ClusterConfig c;
    c.nodes = 1000;
    c.topology = ClusterTopology::FatTree;
    EXPECT_DOUBLE_EQ(
        InterNodeNetwork(c).deliveredGbs(CommPattern::AllToAll), 100.0);
    c.topology = ClusterTopology::Dragonfly;
    EXPECT_DOUBLE_EQ(
        InterNodeNetwork(c).deliveredGbs(CommPattern::AllToAll), 54.45);
    c.topology = ClusterTopology::Torus3D;
    EXPECT_DOUBLE_EQ(
        InterNodeNetwork(c).deliveredGbs(CommPattern::AllToAll), 40.0);
}

TEST(InterNodeNetwork, LatencyScalesWithHops)
{
    ClusterConfig c;
    c.linkLatencyUs = 0.5;
    InterNodeNetwork net(c);
    EXPECT_DOUBLE_EQ(net.latencyUs(4.0), 2.0);
    EXPECT_DOUBLE_EQ(net.latencyUs(0.0), 0.0);
}

TEST(InterNodeNetwork, DescribeMentionsTheShape)
{
    InterNodeNetwork net(torusConfig(10, 10, 10));
    std::string d = net.describe();
    EXPECT_NE(d.find("10 x 10 x 10 torus"), std::string::npos) << d;
    EXPECT_NE(d.find("bisection"), std::string::npos) << d;
}

TEST(InterNodeNetworkDeathTest, WrongTopologyAccessorsAreFatal)
{
    ClusterConfig c;   // fat tree
    InterNodeNetwork net(c);
    int x, y, z;
    EXPECT_EXIT(net.torusDims(x, y, z), testing::ExitedWithCode(1),
                "torusDims");
    EXPECT_EXIT(net.dragonflyGroupRouters(), testing::ExitedWithCode(1),
                "dragonflyGroupRouters");
    EXPECT_EXIT(net.smallTorusTopology(), testing::ExitedWithCode(1),
                "3d-torus");
}

TEST(InterNodeNetworkDeathTest, ExplicitTorusDimsMustMatchNodeCount)
{
    ClusterConfig c = torusConfig(4, 4, 4);
    c.nodes = 100;   // != 64
    EXPECT_EXIT({ InterNodeNetwork net(c); }, testing::ExitedWithCode(1),
                "config says");
}

/**
 * @file
 * ClusterConfig: defaults, validation, naming, and the "cluster."
 * config-file bindings (including combined node + cluster files).
 */

#include <gtest/gtest.h>

#include "cluster/cluster_config_io.hh"
#include "common/node_config_io.hh"

using namespace ena;

TEST(ClusterConfig, ExascaleDefaults)
{
    ClusterConfig c = ClusterConfig::exascale();
    EXPECT_EQ(c.nodes, 100000);
    EXPECT_EQ(c.topology, ClusterTopology::FatTree);
    EXPECT_EQ(c.linksPerNode, 4);
    EXPECT_DOUBLE_EQ(c.linkGbs, 25.0);
    EXPECT_DOUBLE_EQ(c.injectionGbs(), 100.0);
    EXPECT_DOUBLE_EQ(c.fatTreeTaper, 1.0);
    c.validate();   // must not be fatal
}

TEST(ClusterConfig, LabelNamesTheMachine)
{
    ClusterConfig c;
    EXPECT_EQ(c.label(), "fat-tree x100000 @4x25GBps");
    c.topology = ClusterTopology::Torus3D;
    c.nodes = 1000;
    c.linksPerNode = 6;
    EXPECT_EQ(c.label(), "3d-torus x1000 @6x25GBps");
}

TEST(ClusterConfig, TopologyNamesRoundTrip)
{
    for (ClusterTopology t : allClusterTopologies())
        EXPECT_EQ(clusterTopologyFromName(clusterTopologyName(t)), t);
    // Case-insensitive, with a few aliases.
    EXPECT_EQ(clusterTopologyFromName("Fat-Tree"),
              ClusterTopology::FatTree);
    EXPECT_EQ(clusterTopologyFromName("fattree"),
              ClusterTopology::FatTree);
    EXPECT_EQ(clusterTopologyFromName("DRAGONFLY"),
              ClusterTopology::Dragonfly);
    EXPECT_EQ(clusterTopologyFromName("torus"),
              ClusterTopology::Torus3D);
}

TEST(ClusterConfigDeathTest, UnknownTopologyIsFatal)
{
    EXPECT_EXIT(clusterTopologyFromName("hypercube"),
                testing::ExitedWithCode(1), "unknown cluster topology");
}

TEST(ClusterConfigDeathTest, ValidateCatchesNonsense)
{
    ClusterConfig c;
    c.nodes = 0;
    EXPECT_EXIT(c.validate(), testing::ExitedWithCode(1),
                "bad node count");
    c = ClusterConfig{};
    c.fatTreeTaper = 0.5;
    EXPECT_EXIT(c.validate(), testing::ExitedWithCode(1),
                "taper must be >= 1");
}

TEST(ClusterConfigIo, RoundTripsThroughConfig)
{
    ClusterConfig c;
    c.nodes = 4096;
    c.topology = ClusterTopology::Dragonfly;
    c.linksPerNode = 8;
    c.linkGbs = 50.0;
    c.linkLatencyUs = 0.25;
    c.pjPerBit = 5.0;
    c.dragonflyGroupRouters = 16;

    ClusterConfig back = clusterConfigFromConfig(clusterConfigToConfig(c));
    EXPECT_EQ(back.nodes, c.nodes);
    EXPECT_EQ(back.topology, c.topology);
    EXPECT_EQ(back.linksPerNode, c.linksPerNode);
    EXPECT_DOUBLE_EQ(back.linkGbs, c.linkGbs);
    EXPECT_DOUBLE_EQ(back.linkLatencyUs, c.linkLatencyUs);
    EXPECT_DOUBLE_EQ(back.pjPerBit, c.pjPerBit);
    EXPECT_EQ(back.dragonflyGroupRouters, c.dragonflyGroupRouters);
}

TEST(ClusterConfigIo, OneFileDescribesNodeAndCluster)
{
    // A combined machine description: node keys and cluster keys in
    // the same file, each loader picking up its own prefix.
    Config cfg = Config::fromString(R"(
        ehp.cus = 256
        ehp.freq_ghz = 1.2
        cluster.nodes = 2000
        cluster.topology = 3d-torus
        cluster.torus_x = 20
        cluster.torus_y = 10
        cluster.torus_z = 10
    )");

    NodeConfig node = nodeConfigFromConfig(cfg);
    EXPECT_EQ(node.cus, 256);
    EXPECT_DOUBLE_EQ(node.freqGhz, 1.2);

    ClusterConfig cluster = clusterConfigFromConfig(cfg);
    EXPECT_EQ(cluster.nodes, 2000);
    EXPECT_EQ(cluster.topology, ClusterTopology::Torus3D);
    EXPECT_EQ(cluster.torusX, 20);
    EXPECT_EQ(cluster.torusY, 10);
    EXPECT_EQ(cluster.torusZ, 10);
}

TEST(ClusterConfigIo, DefaultsWhenNoClusterKeys)
{
    Config cfg = Config::fromString("ehp.cus = 128\n");
    ClusterConfig c = clusterConfigFromConfig(cfg);
    EXPECT_EQ(c.nodes, ClusterConfig{}.nodes);
    EXPECT_EQ(c.topology, ClusterConfig{}.topology);
}

TEST(ClusterConfigIoDeathTest, TyposInClusterKeysAreFatal)
{
    Config cfg = Config::fromString("cluster.nodez = 10\n");
    EXPECT_EXIT(clusterConfigFromConfig(cfg),
                testing::ExitedWithCode(1), "unknown cluster-config key");
}

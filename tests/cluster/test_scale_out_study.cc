/**
 * @file
 * ScaleOutStudy: weak/strong scaling shapes, the communication-aware
 * Fig. 14 sweep's analytic column, and serial/parallel determinism of
 * the sharded topology sweep.
 */

#include <gtest/gtest.h>

#include "cluster/scale_out_study.hh"
#include "util/thread_pool.hh"

using namespace ena;

namespace {

const NodeEvaluator &
evaluator()
{
    static NodeEvaluator eval;
    return eval;
}

ScaleOutStudy
study()
{
    return ScaleOutStudy(evaluator(), ClusterConfig::exascale());
}

const std::vector<int> counts = {1, 64, 512, 4096, 32768};

} // anonymous namespace

TEST(ScaleOutStudy, WeakScalingStartsIdealAndNeverRecovers)
{
    auto curve = study().weakScaling(NodeConfig::bestMean(), App::CoMD,
                                     CommSpec{}, counts);
    ASSERT_EQ(curve.size(), counts.size());
    // One node has no one to talk to: efficiency is exactly 1.
    EXPECT_EQ(curve[0].nodes, 1);
    EXPECT_EQ(curve[0].efficiency, 1.0);
    EXPECT_EQ(curve[0].overheadRatio, 0.0);
    for (size_t i = 1; i < curve.size(); ++i) {
        EXPECT_LE(curve[i].efficiency, curve[i - 1].efficiency + 1e-12)
            << counts[i];
        EXPECT_GT(curve[i].efficiency, 0.0);
        // More nodes still means more delivered exaflops under weak
        // scaling, just at decaying efficiency.
        EXPECT_GT(curve[i].systemExaflops, curve[i - 1].systemExaflops);
    }
}

TEST(ScaleOutStudy, StrongScalingDecaysFasterThanWeak)
{
    NodeConfig cfg = NodeConfig::bestMean();
    auto weak =
        study().weakScaling(cfg, App::LULESH, CommSpec{}, counts);
    auto strong =
        study().strongScaling(cfg, App::LULESH, CommSpec{}, counts);
    ASSERT_EQ(weak.size(), strong.size());
    EXPECT_EQ(strong[0].efficiency, 1.0);
    for (size_t i = 1; i < counts.size(); ++i)
        EXPECT_LT(strong[i].efficiency, weak[i].efficiency)
            << counts[i];
}

TEST(ScaleOutStudy, Fig14AnalyticColumnIsTheProjector)
{
    // The analytic side of the comm-aware Fig. 14 must be exactly the
    // core sweep (same code path, same numbers — the bench gates the
    // zero-comm case; this pins the columns at full intensity too).
    const std::vector<int> cus = {192, 256, 320};
    ExascaleProjector proj(evaluator(),
                           ClusterConfig::exascale().nodes);
    auto reference = proj.sweepCus(cus);
    auto aware = study().fig14(cus, CommSpec{});
    ASSERT_EQ(aware.size(), cus.size());
    for (size_t i = 0; i < cus.size(); ++i) {
        EXPECT_EQ(aware[i].cus, reference[i].cus);
        EXPECT_EQ(aware[i].analyticExaflops,
                  reference[i].systemExaflops);
        EXPECT_EQ(aware[i].analyticMw, reference[i].systemMw);
        EXPECT_LE(aware[i].commExaflops, aware[i].analyticExaflops);
        EXPECT_DOUBLE_EQ(aware[i].commExaflops,
                         aware[i].analyticExaflops *
                             aware[i].efficiency);
    }
}

TEST(ScaleOutStudy, TopologySweepIsDeterministicAcrossThreadCounts)
{
    const std::vector<int> sizes = {1000, 8000, 27000};
    CommSpec a2a;
    a2a.pattern = CommPattern::AllToAll;
    NodeConfig cfg = NodeConfig::bestMean();

    ThreadPool::setGlobalThreads(1);
    auto serial = study().topologySweep(cfg, App::CoMD, a2a,
                                        allClusterTopologies(), sizes);
    ThreadPool::setGlobalThreads(5);
    auto parallel = study().topologySweep(cfg, App::CoMD, a2a,
                                          allClusterTopologies(), sizes);
    ThreadPool::setGlobalThreads(0);

    ASSERT_EQ(serial.size(), allClusterTopologies().size() * sizes.size());
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].topology, parallel[i].topology);
        EXPECT_EQ(serial[i].nodes, parallel[i].nodes);
        EXPECT_EQ(serial[i].avgHops, parallel[i].avgHops);
        EXPECT_EQ(serial[i].bisectionGbs, parallel[i].bisectionGbs);
        EXPECT_EQ(serial[i].efficiency, parallel[i].efficiency);
        EXPECT_EQ(serial[i].systemExaflops, parallel[i].systemExaflops);
        EXPECT_EQ(serial[i].systemMw, parallel[i].systemMw);
    }
}

TEST(ScaleOutStudy, TopologySweepIsTopologyMajor)
{
    const std::vector<int> sizes = {1000, 8000};
    auto sweep =
        study().topologySweep(NodeConfig::bestMean(), App::CoMD,
                              CommSpec{}, allClusterTopologies(), sizes);
    ASSERT_EQ(sweep.size(), 6u);
    EXPECT_EQ(sweep[0].topology, ClusterTopology::FatTree);
    EXPECT_EQ(sweep[0].nodes, 1000);
    EXPECT_EQ(sweep[1].topology, ClusterTopology::FatTree);
    EXPECT_EQ(sweep[1].nodes, 8000);
    EXPECT_EQ(sweep[2].topology, ClusterTopology::Dragonfly);
    EXPECT_EQ(sweep[5].topology, ClusterTopology::Torus3D);
}

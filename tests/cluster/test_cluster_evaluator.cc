/**
 * @file
 * ClusterEvaluator: the zero-communication bit-identity with core's
 * ExascaleProjector, communication derating, fabric power accounting,
 * and the deterministic all-app reductions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster_evaluator.hh"
#include "util/thread_pool.hh"

using namespace ena;

namespace {

const NodeEvaluator &
evaluator()
{
    static NodeEvaluator eval;
    return eval;
}

} // anonymous namespace

TEST(ClusterEvaluator, ZeroCommReproducesFig14BitIdentically)
{
    // The headline contract: with CommSpec::none() the cluster layer
    // must return the ExascaleProjector numbers exactly (EXPECT_EQ on
    // doubles, not NEAR) — for every app, not just MaxFlops.
    ClusterConfig cluster = ClusterConfig::exascale();
    ClusterEvaluator ce(evaluator(), cluster);
    ExascaleProjector proj(evaluator(), cluster.nodes);
    NodeConfig cfg = NodeConfig::bestMean();
    for (App app : allApps()) {
        ClusterResult r = ce.evaluate(cfg, app, CommSpec::none());
        EXPECT_EQ(r.systemExaflops, proj.systemExaflops(cfg, app))
            << appName(app);
        EXPECT_EQ(r.systemMw, proj.systemMw(cfg, app)) << appName(app);
        EXPECT_EQ(r.commEfficiency, 1.0) << appName(app);
        EXPECT_EQ(r.networkMw, 0.0) << appName(app);
    }
}

TEST(ClusterEvaluator, CommunicationOnlyEverDerates)
{
    ClusterEvaluator ce(evaluator(), ClusterConfig::exascale());
    NodeConfig cfg = NodeConfig::bestMean();
    for (App app : allApps()) {
        for (CommPattern p : allCommPatterns()) {
            CommSpec spec;
            spec.pattern = p;
            ClusterResult r = ce.evaluate(cfg, app, spec);
            EXPECT_LE(r.systemExaflops, r.analyticExaflops)
                << appName(app);
            EXPECT_GT(r.systemExaflops, 0.0) << appName(app);
            EXPECT_GE(r.networkMw, 0.0) << appName(app);
            EXPECT_DOUBLE_EQ(r.systemMw, r.analyticMw + r.networkMw)
                << appName(app);
            EXPECT_DOUBLE_EQ(r.systemExaflops,
                             r.analyticExaflops * r.commEfficiency)
                << appName(app);
        }
    }
}

TEST(ClusterEvaluator, FabricPowerScalesWithTraffic)
{
    // Doubling the per-bit energy doubles the fabric megawatts; the
    // package megawatts are untouched.
    ClusterConfig a = ClusterConfig::exascale();
    ClusterConfig b = a;
    b.pjPerBit = 2.0 * a.pjPerBit;
    ClusterEvaluator ea(evaluator(), a), eb(evaluator(), b);
    NodeConfig cfg = NodeConfig::bestMean();
    CommSpec halo;
    ClusterResult ra = ea.evaluate(cfg, App::CoMD, halo);
    ClusterResult rb = eb.evaluate(cfg, App::CoMD, halo);
    EXPECT_GT(ra.networkMw, 0.0);
    EXPECT_NEAR(rb.networkMw, 2.0 * ra.networkMw,
                1e-9 * ra.networkMw);
    EXPECT_EQ(ra.analyticMw, rb.analyticMw);
}

TEST(ClusterEvaluator, GeomeanMatchesManualSerialLoop)
{
    ClusterEvaluator ce(evaluator(), ClusterConfig::exascale());
    NodeConfig cfg = NodeConfig::bestMean();
    CommSpec halo;

    double log_sum = 0.0;
    for (App app : allApps())
        log_sum += std::log(ce.evaluate(cfg, app, halo).systemExaflops);
    double expected = std::exp(log_sum / allApps().size());

    // The parallelReduce-based reduction must agree at any thread
    // count (index-order reduction, bitwise-stable per-slot values).
    ThreadPool::setGlobalThreads(1);
    double serial = ce.geomeanSystemExaflops(cfg, halo);
    ThreadPool::setGlobalThreads(4);
    double parallel = ce.geomeanSystemExaflops(cfg, halo);
    ThreadPool::setGlobalThreads(0);

    EXPECT_EQ(serial, expected);
    EXPECT_EQ(parallel, expected);
}

TEST(ClusterEvaluator, MeanEfficiencyIsAProperFraction)
{
    ClusterEvaluator ce(evaluator(), ClusterConfig::exascale());
    NodeConfig cfg = NodeConfig::bestMean();
    double m = ce.meanCommEfficiency(cfg, CommSpec{});
    EXPECT_GT(m, 0.0);
    EXPECT_LT(m, 1.0);   // some app always pays something
    EXPECT_EQ(ce.meanCommEfficiency(cfg, CommSpec::none()), 1.0);
}

TEST(ClusterEvaluator, ExposesItsParts)
{
    ClusterConfig cluster = ClusterConfig::exascale();
    ClusterEvaluator ce(evaluator(), cluster);
    EXPECT_EQ(ce.clusterConfig().nodes, cluster.nodes);
    EXPECT_EQ(ce.projector().nodes(), cluster.nodes);
    EXPECT_DOUBLE_EQ(ce.network().injectionGbs(),
                     cluster.injectionGbs());
}

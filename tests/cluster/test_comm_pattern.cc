/**
 * @file
 * CommModel: per-pattern communication volume and cost, including the
 * exact-zero guarantees the Fig. 14 reduction relies on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/internode_network.hh"
#include "workloads/kernel_profile.hh"

using namespace ena;

namespace {

const KernelProfile &comd() { return profileFor(App::CoMD); }

InterNodeNetwork
defaultNet(int nodes = 100000)
{
    ClusterConfig c;
    c.nodes = nodes;
    return InterNodeNetwork(c);
}

} // anonymous namespace

TEST(CommPattern, NamesRoundTrip)
{
    for (CommPattern p : allCommPatterns())
        EXPECT_EQ(commPatternFromName(commPatternName(p)), p);
    EXPECT_EQ(commPatternFromName("a2a"), CommPattern::AllToAll);
    EXPECT_EQ(commPatternFromName("ALLTOALL"), CommPattern::AllToAll);
    EXPECT_EQ(commPatternFromName("stencil"), CommPattern::Halo);
}

TEST(CommPatternDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(commPatternFromName("gossip"), testing::ExitedWithCode(1),
                "unknown comm pattern");
}

TEST(CommModel, ZeroIntensityCostsExactlyNothing)
{
    // The identity behind the Fig. 14 reduction: intensity 0 must give
    // an exactly-zero cost and an efficiency of exactly 1.0 (==, not
    // near), so multiplying it onto the analytic projection is a no-op.
    InterNodeNetwork net = defaultNet();
    for (CommPattern p : allCommPatterns()) {
        CommSpec spec = CommSpec::none();
        spec.pattern = p;
        CommCost c = CommModel::cost(comd(), spec, net, 1e13);
        EXPECT_EQ(c.bytesPerFlop, 0.0);
        EXPECT_EQ(c.bwOverhead, 0.0);
        EXPECT_EQ(c.latOverhead, 0.0);
        EXPECT_EQ(c.overheadRatio(), 0.0);
        EXPECT_EQ(c.efficiency(), 1.0);
    }
}

TEST(CommModel, SingleNodeHasNothingToExchange)
{
    InterNodeNetwork net = defaultNet(1);
    CommSpec spec;   // full halo intensity
    CommCost c = CommModel::cost(comd(), spec, net, 1e13);
    EXPECT_EQ(c.bytesPerFlop, 0.0);
    EXPECT_EQ(c.overheadRatio(), 0.0);
    EXPECT_EQ(c.efficiency(), 1.0);
}

TEST(CommModel, PatternVolumeOrdering)
{
    // A halo ships surfaces, an allreduce a small vector, an all-to-all
    // about half the working set: volumes must order that way.
    const int nodes = 4096;
    CommSpec halo, ar, a2a;
    ar.pattern = CommPattern::Allreduce;
    a2a.pattern = CommPattern::AllToAll;
    double v_halo = CommModel::bytesPerFlop(comd(), halo, nodes);
    double v_ar = CommModel::bytesPerFlop(comd(), ar, nodes);
    double v_a2a = CommModel::bytesPerFlop(comd(), a2a, nodes);
    EXPECT_GT(v_halo, 0.0);
    EXPECT_GT(v_ar, 0.0);
    EXPECT_GT(v_a2a, v_halo);
    EXPECT_GT(v_halo, v_ar);
}

TEST(CommModel, StrongScalingShipsMoreBytesPerFlop)
{
    CommSpec weak, strong;
    strong.scaling = ScalingMode::Strong;
    const int nodes = 1000;
    double w = CommModel::bytesPerFlop(comd(), weak, nodes);
    double s = CommModel::bytesPerFlop(comd(), strong, nodes);
    // Surface-to-volume under a 3D decomposition: cbrt(P) growth.
    EXPECT_DOUBLE_EQ(s, w * std::cbrt(1000.0));
}

TEST(CommModel, IntensityScalesLinearly)
{
    CommSpec one, half;
    half.intensity = 0.5;
    const int nodes = 512;
    EXPECT_DOUBLE_EQ(CommModel::bytesPerFlop(comd(), half, nodes),
                     0.5 * CommModel::bytesPerFlop(comd(), one, nodes));
}

TEST(CommModel, EfficiencyIsAProperFraction)
{
    InterNodeNetwork net = defaultNet();
    for (App app : allApps()) {
        for (CommPattern p : allCommPatterns()) {
            CommSpec spec;
            spec.pattern = p;
            CommCost c =
                CommModel::cost(profileFor(app), spec, net, 1e13);
            EXPECT_GT(c.efficiency(), 0.0) << appName(app);
            EXPECT_LE(c.efficiency(), 1.0) << appName(app);
            EXPECT_GE(c.overheadRatio(), 0.0) << appName(app);
        }
    }
}

TEST(CommModel, MaxFlopsBarelyCommunicates)
{
    // MaxFlops has a tiny external-traffic fraction and a huge
    // arithmetic intensity; its halo cost must be near-free while a
    // bandwidth-bound stencil app pays a real toll.
    InterNodeNetwork net = defaultNet();
    CommSpec halo;
    double eff_max =
        CommModel::cost(profileFor(App::MaxFlops), halo, net, 1.8e13)
            .efficiency();
    double eff_amr =
        CommModel::cost(profileFor(App::MiniAMR), halo, net, 1.8e13)
            .efficiency();
    EXPECT_GT(eff_max, 0.99);
    EXPECT_LT(eff_amr, eff_max);
}

TEST(CommModel, AllreducePaysLogDepthLatency)
{
    // With bandwidth out of the picture (tiny flops rate), allreduce
    // latency grows with the tree depth, so doubling the node count
    // adds one step.
    ClusterConfig c;
    c.nodes = 1024;
    InterNodeNetwork net1024(c);
    c.nodes = 2048;
    InterNodeNetwork net2048(c);
    CommSpec ar;
    ar.pattern = CommPattern::Allreduce;
    double lat1024 =
        CommModel::cost(comd(), ar, net1024, 1.0).latOverhead;
    double lat2048 =
        CommModel::cost(comd(), ar, net2048, 1.0).latOverhead;
    EXPECT_GT(lat2048, lat1024);
    // steps: ceil(log2(1024)) = 10 vs ceil(log2(2048)) = 11.
    EXPECT_NEAR(lat2048 / lat1024,
                (11.0 / 10.0) * (net2048.avgHops() / net1024.avgHops()),
                1e-9);
}

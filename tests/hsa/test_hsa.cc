/**
 * @file
 * Unit tests for the HSA substrate: signals, AQL queues, task graphs.
 */

#include <gtest/gtest.h>

#include "hsa/aql_queue.hh"
#include "hsa/signal.hh"
#include "hsa/task_graph.hh"
#include "sim/simulation.hh"

using namespace ena;

// ---- signals ---------------------------------------------------------

TEST(HsaSignal, DecrementFiresWaitersAtZero)
{
    HsaSignal s(2);
    int fired = 0;
    s.waitZero([&] { ++fired; });
    s.decrement();
    EXPECT_EQ(fired, 0);
    s.decrement();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(s.pendingWaiters(), 0u);
}

TEST(HsaSignal, WaitOnZeroFiresImmediately)
{
    HsaSignal s(0);
    int fired = 0;
    s.waitZero([&] { ++fired; });
    EXPECT_EQ(fired, 1);
}

TEST(HsaSignal, MultipleWaiters)
{
    HsaSignal s(1);
    int fired = 0;
    for (int i = 0; i < 5; ++i)
        s.waitZero([&] { ++fired; });
    s.decrement();
    EXPECT_EQ(fired, 5);
}

TEST(HsaSignal, ReArmWithSet)
{
    HsaSignal s(1);
    int fired = 0;
    s.waitZero([&] { ++fired; });
    s.decrement();
    s.set(1);
    s.waitZero([&] { ++fired; });
    s.decrement();
    EXPECT_EQ(fired, 2);
}

TEST(HsaSignalDeathTest, UnderflowPanics)
{
    HsaSignal s(0, "x");
    EXPECT_DEATH(s.decrement(), "below 0");
}

// ---- AQL queue -------------------------------------------------------

namespace {

AqlPacket
packet(Tick dur, HsaSignal *done, HsaSignal *barrier = nullptr)
{
    AqlPacket p;
    p.kernelTicks = dur;
    p.completion = done;
    p.barrier = barrier;
    return p;
}

} // anonymous namespace

TEST(AqlQueue, DispatchAddsLatencyAndRunsKernel)
{
    Simulation sim;
    AqlQueueParams qp;
    qp.dispatchLatency = 100;
    auto *q = sim.create<AqlQueue>("q", qp);
    sim.initAll();
    HsaSignal done(1);
    q->submit(packet(1000, &done));
    sim.run();
    EXPECT_EQ(done.value(), 0);
    EXPECT_EQ(sim.curTick(), 1100u);
    EXPECT_TRUE(q->idle());
    EXPECT_EQ(q->packetsDispatched(), 1u);
}

TEST(AqlQueue, ConcurrencyLimitSerializesExcess)
{
    Simulation sim;
    AqlQueueParams qp;
    qp.dispatchLatency = 0;
    qp.deviceConcurrency = 2;
    auto *q = sim.create<AqlQueue>("q", qp);
    sim.initAll();
    HsaSignal done(4);
    for (int i = 0; i < 4; ++i)
        q->submit(packet(1000, &done));
    sim.run();
    EXPECT_EQ(done.value(), 0);
    // Two waves of two kernels each.
    EXPECT_EQ(sim.curTick(), 2000u);
}

TEST(AqlQueue, BarrierPacketWaitsForSignal)
{
    Simulation sim;
    auto *q = sim.create<AqlQueue>("q", AqlQueueParams{});
    sim.initAll();
    HsaSignal gate(1);
    HsaSignal done(1);
    q->submit(packet(1000, &done, &gate));
    sim.run();
    EXPECT_EQ(done.value(), 1);   // still gated
    gate.decrement();
    sim.run();
    EXPECT_EQ(done.value(), 0);
}

TEST(AqlQueue, BarrierBlocksYoungerPackets)
{
    // In-order consumption: a gated head packet holds back the rest.
    Simulation sim;
    AqlQueueParams qp;
    qp.dispatchLatency = 0;
    auto *q = sim.create<AqlQueue>("q", qp);
    sim.initAll();
    HsaSignal gate(1);
    HsaSignal first(1);
    HsaSignal second(1);
    q->submit(packet(100, &first, &gate));
    q->submit(packet(100, &second));
    sim.run();
    EXPECT_EQ(second.value(), 1);
    gate.decrement();
    sim.run();
    EXPECT_EQ(first.value(), 0);
    EXPECT_EQ(second.value(), 0);
}

TEST(AqlQueueDeathTest, RingOverflowIsFatal)
{
    Simulation sim;
    AqlQueueParams qp;
    qp.ringSlots = 2;
    qp.deviceConcurrency = 1;
    qp.dispatchLatency = 0;
    auto *q = sim.create<AqlQueue>("q", qp);
    sim.initAll();
    HsaSignal done(3);
    q->submit(packet(1000, &done));   // runs
    q->submit(packet(1000, &done));   // queued
    q->submit(packet(1000, &done));   // queued
    EXPECT_EXIT(q->submit(packet(1000, &done)),
                testing::ExitedWithCode(1), "overflow");
}

// ---- task graph ------------------------------------------------------

namespace {

struct GraphFixture : testing::Test
{
    Simulation sim;
    std::vector<AqlQueue *> queues;
    TaskGraph *graph = nullptr;

    void
    build(int nqueues, Tick dispatch_latency = 0)
    {
        AqlQueueParams qp;
        qp.dispatchLatency = dispatch_latency;
        qp.ringSlots = 256;
        for (int i = 0; i < nqueues; ++i) {
            queues.push_back(sim.create<AqlQueue>(
                "q" + std::to_string(i), qp));
        }
        graph = sim.create<TaskGraph>("g", queues);
    }
};

} // anonymous namespace

TEST_F(GraphFixture, ChainRunsSequentially)
{
    build(1);
    TaskId a = graph->addTask(100, 0);
    TaskId b = graph->addTask(200, 0, {a});
    TaskId c = graph->addTask(300, 0, {b});
    sim.initAll();
    graph->start();
    sim.run();
    EXPECT_TRUE(graph->finished());
    EXPECT_EQ(graph->makespan(), 600u);
    EXPECT_EQ(graph->criticalPath(), 600u);
    EXPECT_LT(graph->task(a).finishedAt, graph->task(b).finishedAt);
    EXPECT_LT(graph->task(b).finishedAt, graph->task(c).finishedAt);
}

TEST_F(GraphFixture, IndependentTasksRunInParallel)
{
    build(4);
    for (int i = 0; i < 4; ++i)
        graph->addTask(1000, i);
    sim.initAll();
    graph->start();
    sim.run();
    EXPECT_EQ(graph->makespan(), 1000u);
    EXPECT_EQ(graph->criticalPath(), 1000u);
}

TEST_F(GraphFixture, DiamondRespectsBothDependencies)
{
    build(2);
    TaskId a = graph->addTask(100, 0);
    TaskId b = graph->addTask(500, 0, {a});
    TaskId c = graph->addTask(100, 1, {a});
    TaskId d = graph->addTask(100, 0, {b, c});
    sim.initAll();
    graph->start();
    sim.run();
    // d starts only after the slower of b and c.
    EXPECT_EQ(graph->task(d).finishedAt, 700u);
    EXPECT_EQ(graph->criticalPath(), 700u);
    EXPECT_TRUE(graph->task(c).done);
}

TEST_F(GraphFixture, MakespanAtLeastCriticalPath)
{
    build(2, /*dispatch latency=*/50);
    // A 4x4 sweep over 2 queues.
    std::vector<std::vector<TaskId>> grid(4, std::vector<TaskId>(4));
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            std::vector<TaskId> deps;
            if (i)
                deps.push_back(grid[i - 1][j]);
            if (j)
                deps.push_back(grid[i][j - 1]);
            grid[i][j] = graph->addTask(100, (i + j) % 2, deps);
        }
    }
    sim.initAll();
    graph->start();
    sim.run();
    EXPECT_TRUE(graph->finished());
    EXPECT_GE(graph->makespan(), graph->criticalPath());
    EXPECT_EQ(graph->criticalPath(), 700u);   // 7 tasks x 100
}

TEST_F(GraphFixture, DispatchLatencyLengthensCriticalChains)
{
    build(1, 0);
    TaskId prev = graph->addTask(100, 0);
    for (int i = 0; i < 9; ++i)
        prev = graph->addTask(100, 0, {prev});
    sim.initAll();
    graph->start();
    sim.run();
    Tick cheap = graph->makespan();
    EXPECT_EQ(cheap, 1000u);

    // Same chain with a 1000-tick launch cost dominates the kernels.
    Simulation sim2;
    AqlQueueParams qp;
    qp.dispatchLatency = 1000;
    qp.ringSlots = 64;
    auto *q2 = sim2.create<AqlQueue>("q", qp);
    auto *g2 = sim2.create<TaskGraph>("g", std::vector<AqlQueue *>{q2});
    TaskId p2 = g2->addTask(100, 0);
    for (int i = 0; i < 9; ++i)
        p2 = g2->addTask(100, 0, {p2});
    sim2.initAll();
    g2->start();
    sim2.run();
    EXPECT_EQ(g2->makespan(), 11000u);
}

TEST_F(GraphFixture, DeathOnForwardDependency)
{
    build(1);
    graph->addTask(100, 0);
    EXPECT_DEATH(graph->addTask(100, 0, {5}), "topological");
}

/**
 * @file
 * Tests of the EHP package thermal model against the paper's Section
 * V-D claims.
 */

#include <gtest/gtest.h>

#include "core/node_evaluator.hh"
#include "thermal/package_model.hh"

using namespace ena;

namespace {

PowerBreakdown
powerFor(App app, const NodeConfig &cfg)
{
    static NodeEvaluator eval;
    return eval.evaluate(cfg, app).power;
}

} // anonymous namespace

TEST(PackageModel, AllAppsBelowDramLimitAtBestMean)
{
    // Paper Finding 1 (Fig. 10): every kernel stays below 85 C.
    EhpPackageModel model;
    for (App app : allApps()) {
        auto r = model.solve(NodeConfig::bestMean(),
                             powerFor(app, NodeConfig::bestMean()));
        EXPECT_LT(r.peakDramC, EhpPackageModel::dramLimitC)
            << appName(app);
        EXPECT_GT(r.peakDramC, model.params().ambientC)
            << appName(app);
    }
}

TEST(PackageModel, BottomDramDieIsHottest)
{
    // The GPU die below heats the stack from underneath.
    EhpPackageModel model;
    auto r = model.solve(NodeConfig::bestMean(),
                         powerFor(App::CoMDLJ, NodeConfig::bestMean()));
    EXPECT_NEAR(r.peakDramC, r.peakBottomDramC, 1e-9);
    EXPECT_GT(r.peakGpuC, r.peakBottomDramC);
}

TEST(PackageModel, MorePowerRunsHotter)
{
    EhpPackageModel model;
    PowerBreakdown lo = powerFor(App::XSBench, NodeConfig::bestMean());
    PowerBreakdown hi = powerFor(App::CoMDLJ, NodeConfig::bestMean());
    ASSERT_GT(hi.cuDyn, lo.cuDyn);
    EXPECT_GT(model.solve(NodeConfig::bestMean(), hi).peakDramC,
              model.solve(NodeConfig::bestMean(), lo).peakDramC);
}

TEST(PackageModel, FewerActiveTilesConcentrateHeat)
{
    // Same total CU power on fewer tiles -> higher power density ->
    // hotter DRAM above.
    EhpPackageModel model;
    PowerBreakdown p = powerFor(App::CoMD, NodeConfig::bestMean());
    NodeConfig few = NodeConfig::bestMean();
    few.cus = 192;
    NodeConfig many = NodeConfig::bestMean();
    many.cus = 384;
    EXPECT_GT(model.solve(few, p).peakDramC,
              model.solve(many, p).peakDramC);
}

TEST(PackageModel, MaxFlopsDoesNotStressMemoryTemperature)
{
    // Paper: MaxFlops has high CU power but nearly no DRAM activity;
    // its DRAM peak must stay in the same band as the balanced apps
    // rather than above them all.
    EhpPackageModel model;
    double maxflops =
        model.solve(NodeConfig::bestMean(),
                    powerFor(App::MaxFlops, NodeConfig::bestMean()))
            .peakDramC;
    double comdlj =
        model.solve(NodeConfig::bestMean(),
                    powerFor(App::CoMDLJ, NodeConfig::bestMean()))
            .peakDramC;
    EXPECT_LT(maxflops, comdlj + 1.0);
}

TEST(PackageModel, HeatMapShowsTileContrast)
{
    EhpPackageModel model;
    std::string art = model.heatMap(
        NodeConfig::bestMean(),
        powerFor(App::SNAP, NodeConfig::bestMean()));
    // The rendering uses the full glyph ramp: both a cool glyph and a
    // hot glyph must appear.
    EXPECT_NE(art.find('@'), std::string::npos);
    EXPECT_NE(art.find(' '), std::string::npos);
}

TEST(PackageModel, HeatMapDimensionsMatchGrid)
{
    PackageThermalParams tp;
    tp.gridN = 16;
    EhpPackageModel model(tp);
    auto r = model.solve(NodeConfig::bestMean(),
                         powerFor(App::SNAP, NodeConfig::bestMean()));
    EXPECT_EQ(r.bottomDram.nx, 16u);
    EXPECT_EQ(r.bottomDram.ny, 16u);
    EXPECT_EQ(r.bottomDram.t.size(), 256u);
}

TEST(PackageModel, BetterCoolingLowersTemperature)
{
    PackageThermalParams strong;
    strong.sinkResistance = 0.5;
    PackageThermalParams weak;
    weak.sinkResistance = 2.5;
    PowerBreakdown p = powerFor(App::CoMD, NodeConfig::bestMean());
    EXPECT_LT(EhpPackageModel(strong)
                  .solve(NodeConfig::bestMean(), p)
                  .peakDramC,
              EhpPackageModel(weak)
                  .solve(NodeConfig::bestMean(), p)
                  .peakDramC);
}

TEST(PackageModel, SolverIterationsReported)
{
    EhpPackageModel model;
    auto r = model.solve(NodeConfig::bestMean(),
                         powerFor(App::LULESH, NodeConfig::bestMean()));
    EXPECT_GT(r.solverIterations, 1);
}

/**
 * @file
 * Unit tests for PowerMap.
 */

#include <gtest/gtest.h>

#include "thermal/power_map.hh"

using namespace ena;

TEST(PowerMap, DefaultIsEmpty1x1)
{
    PowerMap m;
    EXPECT_EQ(m.nx(), 1u);
    EXPECT_EQ(m.ny(), 1u);
    EXPECT_DOUBLE_EQ(m.totalWatts(), 0.0);
}

TEST(PowerMap, UniformConservesTotal)
{
    PowerMap m(8, 8);
    m.addUniform(32.0);
    EXPECT_NEAR(m.totalWatts(), 32.0, 1e-9);
    EXPECT_NEAR(m.at(3, 4), 0.5, 1e-12);
}

TEST(PowerMap, RectConservesTotal)
{
    PowerMap m(16, 16);
    m.addRect(2, 3, 4, 2, 8.0);
    EXPECT_NEAR(m.totalWatts(), 8.0, 1e-9);
    EXPECT_NEAR(m.at(2, 3), 1.0, 1e-12);
    EXPECT_NEAR(m.at(5, 4), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(m.at(6, 3), 0.0);
    EXPECT_DOUBLE_EQ(m.at(2, 5), 0.0);
}

TEST(PowerMap, LayersAccumulate)
{
    PowerMap m(4, 4);
    m.addUniform(16.0);
    m.addRect(0, 0, 2, 2, 4.0);
    EXPECT_NEAR(m.totalWatts(), 20.0, 1e-9);
    EXPECT_NEAR(m.at(0, 0), 2.0, 1e-12);
    EXPECT_NEAR(m.at(3, 3), 1.0, 1e-12);
    EXPECT_NEAR(m.maxCell(), 2.0, 1e-12);
}

TEST(PowerMap, SetAndAdd)
{
    PowerMap m(2, 2);
    m.set(1, 1, 3.0);
    m.add(1, 1, 1.5);
    EXPECT_DOUBLE_EQ(m.at(1, 1), 4.5);
}

TEST(PowerMapDeathTest, OutOfRangePanics)
{
    PowerMap m(4, 4);
    EXPECT_DEATH(m.at(4, 0), "out of");
    EXPECT_DEATH(m.addRect(2, 2, 3, 1, 1.0), "exceeds map");
    EXPECT_DEATH(m.addRect(0, 0, 0, 1, 1.0), "empty rect");
}

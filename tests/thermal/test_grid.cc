/**
 * @file
 * Tests of the steady-state thermal solver against physics invariants
 * and closed-form checks.
 */

#include <gtest/gtest.h>

#include "thermal/grid.hh"

using namespace ena;

namespace {

Layer
makeLayer(const std::string &name, size_t n, double watts,
          double thickness = 200e-6, double k = 120.0)
{
    Layer l;
    l.name = name;
    l.thicknessM = thickness;
    l.conductivity = k;
    l.power = PowerMap(n, n);
    if (watts > 0.0)
        l.power.addUniform(watts);
    return l;
}

} // anonymous namespace

TEST(ThermalGrid, NoPowerMeansAmbientEverywhere)
{
    ThermalGridParams p;
    std::vector<Layer> layers;
    layers.push_back(makeLayer("die", 8, 0.0));
    ThermalGrid grid(p, std::move(layers));
    grid.solve();
    EXPECT_NEAR(grid.peak("die"), p.ambientC, 1e-3);
}

TEST(ThermalGrid, UniformPowerMatchesLumpedModel)
{
    // One uniformly-powered layer with only the sink path: steady state
    // must satisfy T = ambient + P * R_sink exactly.
    ThermalGridParams p;
    p.sinkResistance = 0.5;
    std::vector<Layer> layers;
    layers.push_back(makeLayer("die", 8, 20.0));
    ThermalGrid grid(p, std::move(layers));
    grid.solve();
    EXPECT_NEAR(grid.peak("die"), p.ambientC + 20.0 * 0.5, 0.05);
}

TEST(ThermalGrid, HotterWithMorePower)
{
    ThermalGridParams p;
    for (double watts : {5.0, 10.0, 20.0}) {
        std::vector<Layer> layers;
        layers.push_back(makeLayer("die", 8, watts));
        ThermalGrid grid(p, std::move(layers));
        grid.solve();
        EXPECT_NEAR(grid.peak("die"),
                    p.ambientC + watts * p.sinkResistance, 0.1);
    }
}

TEST(ThermalGrid, LowerLayersRunHotter)
{
    // Heat source at the bottom of a stack must be hotter than layers
    // nearer the sink.
    ThermalGridParams p;
    std::vector<Layer> layers;
    layers.push_back(makeLayer("bottom", 8, 15.0));
    layers.push_back(makeLayer("mid", 8, 0.0));
    layers.push_back(makeLayer("top", 8, 0.0));
    ThermalGrid grid(p, std::move(layers));
    grid.solve();
    EXPECT_GT(grid.peak("bottom"), grid.peak("mid"));
    EXPECT_GT(grid.peak("mid"), grid.peak("top"));
    EXPECT_GT(grid.peak("top"), p.ambientC);
}

TEST(ThermalGrid, HotSpotAboveConcentratedSource)
{
    ThermalGridParams p;
    std::vector<Layer> layers;
    Layer die = makeLayer("die", 16, 0.0);
    die.power.addRect(2, 2, 2, 2, 10.0);   // corner hot spot
    layers.push_back(die);
    layers.push_back(makeLayer("cap", 16, 0.0));
    ThermalGrid grid(p, std::move(layers));
    grid.solve();
    const LayerTemps &cap = grid.temperatures()[1];
    // Cell above the source beats the far corner.
    EXPECT_GT(cap.at(3, 3), cap.at(14, 14) + 1.0);
}

TEST(ThermalGrid, InsulatingLayerRaisesSourceTemperature)
{
    auto peak_with_tim_k = [](double k_tim) {
        ThermalGridParams p;
        std::vector<Layer> layers;
        layers.push_back(makeLayer("die", 8, 15.0));
        layers.push_back(makeLayer("tim", 8, 0.0, 50e-6, k_tim));
        ThermalGrid grid(p, std::move(layers));
        grid.solve();
        return grid.peak("die");
    };
    EXPECT_GT(peak_with_tim_k(1.0), peak_with_tim_k(100.0) + 0.5);
}

TEST(ThermalGrid, LateralSpreadingSmoothsPeak)
{
    auto peak_with_conductivity = [](double k) {
        ThermalGridParams p;
        std::vector<Layer> layers;
        Layer die = makeLayer("die", 16, 0.0, 400e-6, k);
        die.power.addRect(6, 6, 4, 4, 15.0);
        layers.push_back(die);
        ThermalGrid grid(p, std::move(layers));
        grid.solve();
        return grid.peak("die");
    };
    // Higher lateral conductivity spreads the hot spot.
    EXPECT_GT(peak_with_conductivity(20.0),
              peak_with_conductivity(400.0) + 0.5);
}

TEST(ThermalGrid, AsciiHeatMapRendersAllRows)
{
    ThermalGridParams p;
    std::vector<Layer> layers;
    layers.push_back(makeLayer("die", 8, 10.0));
    ThermalGrid grid(p, std::move(layers));
    grid.solve();
    std::string art = grid.asciiHeatMap("die");
    int newlines = 0;
    for (char c : art) {
        if (c == '\n')
            ++newlines;
    }
    EXPECT_EQ(newlines, 9);   // 8 rows + range line
    EXPECT_NE(art.find("range"), std::string::npos);
}

TEST(ThermalGrid, SolverConvergesWithinBudget)
{
    ThermalGridParams p;
    std::vector<Layer> layers;
    for (int i = 0; i < 6; ++i)
        layers.push_back(makeLayer("l" + std::to_string(i), 16, 3.0));
    ThermalGrid grid(p, std::move(layers));
    int iters = grid.solve();
    EXPECT_LT(iters, p.maxIterations);
}

TEST(ThermalGrid, TransientApproachesSteadyState)
{
    ThermalGridParams p;
    std::vector<Layer> layers;
    layers.push_back(makeLayer("die", 8, 20.0));
    ThermalGrid steady(p, {makeLayer("die", 8, 20.0)});
    steady.solve();
    double target = steady.peak("die");

    ThermalGrid transient(p, std::move(layers));
    // A short transient undershoots; a long one converges.
    transient.stepTransient(1e-4);
    double early = transient.peak("die");
    EXPECT_LT(early, target - 1.0);
    transient.stepTransient(60.0);
    EXPECT_NEAR(transient.peak("die"), target, 0.25);
}

TEST(ThermalGrid, TransientHeatsMonotonically)
{
    ThermalGridParams p;
    std::vector<Layer> layers;
    layers.push_back(makeLayer("die", 8, 15.0));
    ThermalGrid grid(p, std::move(layers));
    double prev = p.ambientC;
    for (int i = 0; i < 5; ++i) {
        grid.stepTransient(0.05);
        double t = grid.peak("die");
        EXPECT_GE(t, prev - 1e-9);
        prev = t;
    }
    EXPECT_GT(prev, p.ambientC);
}

TEST(ThermalGrid, TransientReachesHotStateAndDtIsSane)
{
    ThermalGridParams p;
    std::vector<Layer> layers;
    layers.push_back(makeLayer("die", 8, 15.0));
    ThermalGrid grid(p, std::move(layers));
    grid.stepTransient(60.0);   // reach (near) steady state
    EXPECT_GT(grid.peak("die"), p.ambientC + 5.0);
    // The explicit-Euler stability step must be positive and far below
    // the stack's thermal time constant (seconds).
    EXPECT_GT(grid.stableDtS(), 0.0);
    EXPECT_LT(grid.stableDtS(), 1.0);
}

TEST(ThermalGrid, HigherHeatCapacitySlowsTheTransient)
{
    ThermalGridParams p;
    auto rise_after = [&](double cap) {
        Layer die = makeLayer("die", 8, 15.0);
        die.heatCapacity = cap;
        ThermalGrid grid(p, {die});
        grid.stepTransient(0.02);
        return grid.peak("die") - p.ambientC;
    };
    EXPECT_GT(rise_after(0.5e6), rise_after(4e6) + 0.2);
}

TEST(ThermalGridDeathTest, MismatchedLayersAreFatal)
{
    ThermalGridParams p;
    std::vector<Layer> layers;
    layers.push_back(makeLayer("a", 8, 1.0));
    layers.push_back(makeLayer("b", 16, 1.0));
    EXPECT_EXIT(ThermalGrid(p, std::move(layers)),
                testing::ExitedWithCode(1), "grid mismatch");
}

TEST(ThermalGridDeathTest, UnknownLayerQueryIsFatal)
{
    ThermalGridParams p;
    std::vector<Layer> layers;
    layers.push_back(makeLayer("die", 8, 1.0));
    ThermalGrid grid(p, std::move(layers));
    grid.solve();
    EXPECT_EXIT(grid.peak("ghost"), testing::ExitedWithCode(1),
                "no thermal layer");
}

TEST(ThermalGridDeathTest, QueryBeforeSolvePanics)
{
    ThermalGridParams p;
    std::vector<Layer> layers;
    layers.push_back(makeLayer("die", 8, 1.0));
    ThermalGrid grid(p, std::move(layers));
    EXPECT_DEATH(grid.temperatures(), "before solve");
}

/**
 * @file
 * Statistical-property tests of the synthetic trace generator: the
 * emitted stream must match the profile's compute/memory mix, locality,
 * write fraction, sharing, and address-range contracts.
 */

#include <cstdint>

#include <gtest/gtest.h>

#include "workloads/trace_gen.hh"

using namespace ena;

namespace {

StreamLayout
defaultLayout()
{
    StreamLayout l;
    l.privateBase = 1ull << 30;
    l.privateSize = 1ull << 20;
    l.sharedBase = 0;
    l.sharedSize = 16ull << 20;
    return l;
}

struct StreamStats
{
    std::uint64_t computeCycles = 0;
    std::uint64_t memOps = 0;
    std::uint64_t stores = 0;
    std::uint64_t sharedOps = 0;
    std::uint64_t sequential = 0;
    std::uint64_t lastAddr = ~std::uint64_t(0);
};

StreamStats
drive(TraceGenerator &gen, const StreamLayout &layout, int mem_ops)
{
    StreamStats s;
    while (s.memOps < static_cast<std::uint64_t>(mem_ops)) {
        TraceOp op = gen.next();
        if (op.kind == TraceOp::Kind::Compute) {
            s.computeCycles += op.computeCycles;
            continue;
        }
        ++s.memOps;
        if (op.kind == TraceOp::Kind::Store)
            ++s.stores;
        bool shared = op.addr >= layout.sharedBase &&
                      op.addr < layout.sharedBase + layout.sharedSize;
        if (shared)
            ++s.sharedOps;
        if (op.addr == s.lastAddr + TraceGenerator::accessBytes)
            ++s.sequential;
        s.lastAddr = op.addr;
    }
    return s;
}

} // anonymous namespace

TEST(TraceGen, DeterministicForSameSeed)
{
    StreamLayout layout = defaultLayout();
    TraceGenerator a(profileFor(App::CoMD), layout, 5);
    TraceGenerator b(profileFor(App::CoMD), layout, 5);
    for (int i = 0; i < 1000; ++i) {
        TraceOp x = a.next();
        TraceOp y = b.next();
        EXPECT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind));
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.computeCycles, y.computeCycles);
    }
}

TEST(TraceGen, AddressesStayInConfiguredRegions)
{
    StreamLayout layout = defaultLayout();
    TraceGenerator gen(profileFor(App::XSBench), layout, 3);
    for (int i = 0; i < 20000; ++i) {
        TraceOp op = gen.next();
        if (op.kind == TraceOp::Kind::Compute)
            continue;
        bool in_private =
            op.addr >= layout.privateBase &&
            op.addr + op.size <= layout.privateBase + layout.privateSize;
        bool in_shared =
            op.addr >= layout.sharedBase &&
            op.addr + op.size <= layout.sharedBase + layout.sharedSize;
        ASSERT_TRUE(in_private || in_shared)
            << "address 0x" << std::hex << op.addr;
    }
}

class TraceGenParamTest : public testing::TestWithParam<App>
{
};

TEST_P(TraceGenParamTest, ComputeToMemoryRatioMatchesProfile)
{
    const KernelProfile &p = profileFor(GetParam());
    StreamLayout layout = defaultLayout();
    TraceGenerator gen(p, layout, 17);
    StreamStats s = drive(gen, layout, 5000);
    double expected =
        p.computePerMemByte * TraceGenerator::accessBytes;
    double measured =
        static_cast<double>(s.computeCycles) / s.memOps;
    EXPECT_NEAR(measured, expected, expected * 0.05 + 0.5);
}

TEST_P(TraceGenParamTest, WriteFractionMatchesProfile)
{
    const KernelProfile &p = profileFor(GetParam());
    StreamLayout layout = defaultLayout();
    TraceGenerator gen(p, layout, 23);
    StreamStats s = drive(gen, layout, 8000);
    double measured = static_cast<double>(s.stores) / s.memOps;
    EXPECT_NEAR(measured, p.writeFraction, 0.03);
}

TEST_P(TraceGenParamTest, SharedFractionMatchesProfile)
{
    const KernelProfile &p = profileFor(GetParam());
    StreamLayout layout = defaultLayout();
    TraceGenerator gen(p, layout, 29);
    StreamStats s = drive(gen, layout, 8000);
    double measured = static_cast<double>(s.sharedOps) / s.memOps;
    EXPECT_NEAR(measured, p.sharedFraction, 0.04);
}

TEST_P(TraceGenParamTest, SpatialLocalityShowsInStream)
{
    const KernelProfile &p = profileFor(GetParam());
    // Use a private-only layout so cross-region switches do not break
    // sequences.
    StreamLayout layout = defaultLayout();
    layout.sharedSize = 0;
    KernelProfile solo = p;
    TraceGenerator gen(solo, layout, 31);
    StreamStats s = drive(gen, layout, 8000);
    double measured = static_cast<double>(s.sequential) / s.memOps;
    // Sequential steps happen on locality hits that do not wrap.
    EXPECT_NEAR(measured, p.spatialLocality, 0.06);
}

INSTANTIATE_TEST_SUITE_P(AllApps, TraceGenParamTest,
                         testing::ValuesIn(allApps()),
                         [](const auto &info) {
                             std::string n = appName(info.param);
                             for (char &c : n) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return n;
                         });

TEST(TraceGen, AlignedAccessSizes)
{
    StreamLayout layout = defaultLayout();
    TraceGenerator gen(profileFor(App::SNAP), layout, 41);
    for (int i = 0; i < 2000; ++i) {
        TraceOp op = gen.next();
        if (op.kind == TraceOp::Kind::Compute) {
            EXPECT_GT(op.computeCycles, 0u);
            continue;
        }
        EXPECT_EQ(op.size, TraceGenerator::accessBytes);
        EXPECT_EQ(op.addr % TraceGenerator::accessBytes, 0u);
    }
}

TEST(TraceGen, MemOpsCounterAdvances)
{
    StreamLayout layout = defaultLayout();
    TraceGenerator gen(profileFor(App::MiniAMR), layout, 43);
    drive(gen, layout, 100);
    EXPECT_EQ(gen.memOps(), 100u);
}

TEST(TraceGenDeathTest, TinyPrivateRegionPanics)
{
    StreamLayout layout;
    layout.privateBase = 0;
    layout.privateSize = 16;   // smaller than one access
    EXPECT_DEATH(TraceGenerator(profileFor(App::CoMD), layout, 1),
                 "private region too small");
}

/**
 * @file
 * Tests of the Table I application catalog: completeness, categories,
 * and parameter sanity for every kernel profile.
 */

#include <gtest/gtest.h>

#include "workloads/kernel_profile.hh"

using namespace ena;

TEST(Profiles, CatalogHasEightApps)
{
    EXPECT_EQ(allApps().size(), 8u);
    EXPECT_EQ(allProfiles().size(), 8u);
}

TEST(Profiles, NamesRoundTrip)
{
    for (App app : allApps())
        EXPECT_EQ(appFromName(appName(app)), app);
}

TEST(Profiles, NameLookupIsCaseInsensitive)
{
    EXPECT_EQ(appFromName("lulesh"), App::LULESH);
    EXPECT_EQ(appFromName("XSBENCH"), App::XSBench);
    EXPECT_EQ(appFromName("comd_lj"), App::CoMDLJ);
    EXPECT_EQ(appFromName("CoMD-LJ"), App::CoMDLJ);
}

TEST(ProfilesDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(appFromName("hpl"), testing::ExitedWithCode(1),
                "unknown application");
}

TEST(Profiles, PaperCategories)
{
    EXPECT_EQ(profileFor(App::MaxFlops).category,
              AppCategory::ComputeIntensive);
    EXPECT_EQ(profileFor(App::CoMD).category, AppCategory::Balanced);
    EXPECT_EQ(profileFor(App::CoMDLJ).category, AppCategory::Balanced);
    EXPECT_EQ(profileFor(App::HPGMG).category, AppCategory::Balanced);
    EXPECT_EQ(profileFor(App::LULESH).category,
              AppCategory::MemoryIntensive);
    EXPECT_EQ(profileFor(App::MiniAMR).category,
              AppCategory::MemoryIntensive);
    EXPECT_EQ(profileFor(App::XSBench).category,
              AppCategory::MemoryIntensive);
    EXPECT_EQ(profileFor(App::SNAP).category,
              AppCategory::MemoryIntensive);
}

class ProfileParamTest : public testing::TestWithParam<App>
{
};

TEST_P(ProfileParamTest, ParametersInPhysicalRanges)
{
    const KernelProfile &p = profileFor(GetParam());
    EXPECT_GT(p.arithmeticIntensity, 0.0);
    EXPECT_GT(p.computeEfficiency, 0.0);
    EXPECT_LE(p.computeEfficiency, 1.0);
    EXPECT_GT(p.cuScalingExp, 0.0);
    EXPECT_LE(p.cuScalingExp, 1.2);
    EXPECT_GT(p.freqScalingExp, 0.0);
    EXPECT_LE(p.freqScalingExp, 1.5);
    EXPECT_GE(p.contentionAlpha, 0.0);
    EXPECT_GT(p.contentionKnee, 0.0);
    EXPECT_GE(p.latencySensitivity, 0.0);
    EXPECT_LE(p.latencySensitivity, 1.0);
    EXPECT_GT(p.memLevelParallelism, 0.0);
    EXPECT_GT(p.maxBandwidthTbs, 0.0);
    EXPECT_GE(p.writeFraction, 0.0);
    EXPECT_LE(p.writeFraction, 1.0);
    EXPECT_GE(p.compressRatio, 1.0);
    EXPECT_GT(p.cuIdleActivity, 0.0);
    EXPECT_LT(p.cuIdleActivity, 1.0);
    EXPECT_GE(p.spatialLocality, 0.0);
    EXPECT_LE(p.spatialLocality, 1.0);
    EXPECT_GE(p.computePerMemByte, 0.0);
    EXPECT_GE(p.sharedFraction, 0.0);
    EXPECT_LE(p.sharedFraction, 1.0);
    EXPECT_FALSE(p.description.empty());
}

TEST_P(ProfileParamTest, ExtTrafficFractionInPaperRange)
{
    // Paper Section V-B: 46% to 89% of traffic goes off-package.
    const KernelProfile &p = profileFor(GetParam());
    EXPECT_GE(p.extTrafficFraction, 0.46);
    EXPECT_LE(p.extTrafficFraction, 0.89);
}

INSTANTIATE_TEST_SUITE_P(AllApps, ProfileParamTest,
                         testing::ValuesIn(allApps()),
                         [](const auto &info) {
                             std::string n = appName(info.param);
                             for (char &c : n) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return n;
                         });

TEST(Profiles, MaxFlopsIsComputeExtreme)
{
    const KernelProfile &mf = profileFor(App::MaxFlops);
    for (App app : allApps()) {
        if (app == App::MaxFlops)
            continue;
        EXPECT_GT(mf.arithmeticIntensity,
                  profileFor(app).arithmeticIntensity);
    }
    EXPECT_EQ(mf.contentionAlpha, 0.0);
}

TEST(Profiles, MemoryIntensiveHaveLowIntensity)
{
    for (App app : allApps()) {
        const KernelProfile &p = profileFor(app);
        if (p.category == AppCategory::MemoryIntensive) {
            EXPECT_LT(p.arithmeticIntensity, 2.0);
        }
        if (p.category == AppCategory::Balanced) {
            EXPECT_GT(p.arithmeticIntensity, 2.0);
        }
    }
}

TEST(Profiles, LuleshIsMostLatencySensitive)
{
    double lulesh = profileFor(App::LULESH).latencySensitivity;
    for (App app : allApps()) {
        if (app != App::LULESH) {
            EXPECT_GT(lulesh, profileFor(app).latencySensitivity);
        }
    }
}

TEST(Profiles, LuleshIsMostCompressible)
{
    // Paper Fig. 12 discussion: LULESH benefits the most from DRAM
    // traffic compression.
    double lulesh = profileFor(App::LULESH).compressRatio;
    for (App app : allApps()) {
        if (app != App::LULESH) {
            EXPECT_GE(lulesh, profileFor(app).compressRatio);
        }
    }
}

TEST(Profiles, ScalingTaxonomySpansBothCorners)
{
    // Table II: CoMD trades CUs for frequency (sigma < phi), SNAP the
    // opposite (phi << sigma).
    const KernelProfile &comd = profileFor(App::CoMD);
    EXPECT_LT(comd.cuScalingExp, comd.freqScalingExp);
    const KernelProfile &snap = profileFor(App::SNAP);
    EXPECT_GT(snap.cuScalingExp, snap.freqScalingExp);
}

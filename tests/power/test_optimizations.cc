/**
 * @file
 * Tests of the Section V-E power-optimization techniques: every
 * technique must save power, compose, and land in the paper's ranges at
 * the best-mean configuration.
 */

#include <gtest/gtest.h>

#include "core/node_evaluator.hh"
#include "power/optimizations.hh"
#include "util/stats_math.hh"

using namespace ena;

namespace {

Activity
activityFor(App app)
{
    static NodeEvaluator eval;
    return eval.evaluate(NodeConfig::bestMean(), app).perf.activity;
}

} // anonymous namespace

TEST(PowerOpts, NamesAndCatalog)
{
    EXPECT_EQ(allPowerOpts().size(), 6u);
    EXPECT_EQ(powerOptName(PowerOpt::Ntc), "NTC");
    EXPECT_EQ(powerOptName(PowerOpt::All), "All");
}

TEST(PowerOpts, MakeOptConfigSelectsOneTechnique)
{
    PowerOptConfig c = makeOptConfig(PowerOpt::AsyncRouter);
    EXPECT_TRUE(c.asyncRouter);
    EXPECT_FALSE(c.ntc);
    EXPECT_FALSE(c.asyncCu);
    EXPECT_FALSE(c.lpLinks);
    EXPECT_FALSE(c.compression);
    EXPECT_TRUE(c.any());
    EXPECT_FALSE(PowerOptConfig::none().any());
}

class OptSavingsTest : public testing::TestWithParam<App>
{
};

TEST_P(OptSavingsTest, EveryTechniqueSavesPower)
{
    NodePowerModel model;
    auto savings = evaluateOptSavings(model, NodeConfig::bestMean(),
                                      activityFor(GetParam()));
    ASSERT_EQ(savings.size(), 6u);
    for (const OptSavings &s : savings) {
        EXPECT_GE(s.savingsFrac, -1e-12)
            << powerOptName(s.opt) << " increased power";
        EXPECT_LE(s.optimizedW, s.baselineW + 1e-9);
    }
}

TEST_P(OptSavingsTest, AllBeatsEveryIndividualTechnique)
{
    NodePowerModel model;
    auto savings = evaluateOptSavings(model, NodeConfig::bestMean(),
                                      activityFor(GetParam()));
    double all = savings.back().savingsFrac;
    for (size_t i = 0; i + 1 < savings.size(); ++i)
        EXPECT_GE(all, savings[i].savingsFrac - 1e-12);
}

TEST_P(OptSavingsTest, CombinedSavingsInPaperBand)
{
    // Paper: 13% to 27% when all techniques are deployed together.
    NodePowerModel model;
    auto savings = evaluateOptSavings(model, NodeConfig::bestMean(),
                                      activityFor(GetParam()));
    double all = savings.back().savingsFrac;
    EXPECT_GE(all, 0.08);
    EXPECT_LE(all, 0.30);
}

INSTANTIATE_TEST_SUITE_P(AllApps, OptSavingsTest,
                         testing::ValuesIn(allApps()),
                         [](const auto &info) {
                             std::string n = appName(info.param);
                             for (char &c : n) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return n;
                         });

TEST(PowerOpts, NtcIsTheLargestMeanSaver)
{
    // Paper Fig. 12: NTC dominates the individual techniques.
    NodePowerModel model;
    std::vector<double> per_opt(6, 0.0);
    for (App app : allApps()) {
        auto savings = evaluateOptSavings(model, NodeConfig::bestMean(),
                                          activityFor(app));
        for (size_t i = 0; i < savings.size(); ++i)
            per_opt[i] += savings[i].savingsFrac;
    }
    // Index 0 is NTC; 5 is All.
    for (size_t i = 1; i + 1 < per_opt.size(); ++i)
        EXPECT_GT(per_opt[0], per_opt[i]);
}

TEST(PowerOpts, CompressionHelpsLuleshMost)
{
    // Paper: "LULESH benefits the most from this optimization, given
    // its high memory intensity."
    NodePowerModel model;
    double best = -1.0;
    App best_app = App::MaxFlops;
    for (App app : allApps()) {
        auto savings = evaluateOptSavings(model, NodeConfig::bestMean(),
                                          activityFor(app));
        double c = savings[4].savingsFrac;   // Compression
        EXPECT_EQ(savings[4].opt, PowerOpt::Compression);
        if (c > best) {
            best = c;
            best_app = app;
        }
    }
    EXPECT_TRUE(best_app == App::LULESH || best_app == App::MiniAMR)
        << "compression favored " << appName(best_app);
}

TEST(PowerOpts, CompressionDoesNothingForIncompressibleTraffic)
{
    NodePowerModel model;
    Activity act = activityFor(App::MaxFlops);
    act.compressRatio = 1.0;
    act.inPkgTrafficGbs = 1000.0;
    act.nocTrafficGbs = 1200.0;
    NodeConfig cfg = NodeConfig::bestMean();
    cfg.opts = PowerOptConfig::none();
    double base = model.evaluate(cfg, act).total();
    cfg.opts = makeOptConfig(PowerOpt::Compression);
    EXPECT_NEAR(model.evaluate(cfg, act).total(), base, 1e-9);
}

TEST(PowerOpts, NtcSavingsShrinkAtHighFrequency)
{
    NodePowerModel model;
    Activity act = activityFor(App::MaxFlops);
    NodeConfig lo = NodeConfig::bestMean();
    lo.freqGhz = 0.9;
    NodeConfig hi = NodeConfig::bestMean();
    hi.freqGhz = 1.5;

    auto frac = [&](NodeConfig cfg) {
        cfg.opts = PowerOptConfig::none();
        double base = model.evaluate(cfg, act).budgetPower();
        cfg.opts = makeOptConfig(PowerOpt::Ntc);
        return 1.0 - model.evaluate(cfg, act).budgetPower() / base;
    };
    EXPECT_GT(frac(lo), frac(hi));
    EXPECT_NEAR(frac(hi), 0.0, 1e-9);   // fully faded out at 1.5 GHz
}

/**
 * @file
 * Unit and property tests for the node power model: component
 * composition, monotonicity in the knobs, external-memory anchors from
 * the paper, and NVM energy behaviour.
 */

#include <gtest/gtest.h>

#include "common/calibration.hh"
#include "power/node_power.hh"

using namespace ena;

namespace {

Activity
typicalActivity()
{
    Activity a;
    a.cuUtilization = 0.5;
    a.inPkgTrafficGbs = 2000.0;
    a.extTrafficGbs = 1000.0;   // above the SerDes cap on purpose
    a.nocTrafficGbs = 2400.0;
    a.writeFraction = 0.3;
    a.compressRatio = 1.4;
    return a;
}

} // anonymous namespace

TEST(NodePower, ComponentsSumToTotal)
{
    NodePowerModel model;
    PowerBreakdown p = model.evaluate(NodeConfig::bestMean(),
                                      typicalActivity());
    double sum = p.cuDyn + p.cuStatic + p.nocDyn + p.nocStatic +
                 p.hbmDyn + p.hbmStatic + p.cpu + p.sys + p.extMemDyn +
                 p.extMemStatic + p.serdesDyn + p.serdesStatic;
    EXPECT_NEAR(p.total(), sum, 1e-9);
    EXPECT_NEAR(p.packagePower() + p.externalPower(), p.total(), 1e-9);
    EXPECT_NEAR(p.budgetPower(),
                p.packagePower() + p.extMemStatic + p.serdesStatic,
                1e-9);
}

TEST(NodePower, AllComponentsNonNegative)
{
    NodePowerModel model;
    PowerBreakdown p = model.evaluate(NodeConfig::bestMean(),
                                      typicalActivity());
    EXPECT_GE(p.cuDyn, 0.0);
    EXPECT_GE(p.cuStatic, 0.0);
    EXPECT_GE(p.nocDyn, 0.0);
    EXPECT_GE(p.nocStatic, 0.0);
    EXPECT_GE(p.hbmDyn, 0.0);
    EXPECT_GE(p.hbmStatic, 0.0);
    EXPECT_GE(p.cpu, 0.0);
    EXPECT_GE(p.sys, 0.0);
    EXPECT_GE(p.extMemDyn, 0.0);
    EXPECT_GE(p.extMemStatic, 0.0);
    EXPECT_GE(p.serdesDyn, 0.0);
    EXPECT_GE(p.serdesStatic, 0.0);
}

TEST(NodePower, MonotonicInCuCount)
{
    NodePowerModel model;
    Activity act = typicalActivity();
    NodeConfig lo = NodeConfig::bestMean();
    NodeConfig hi = lo;
    hi.cus = 384;
    EXPECT_GT(model.evaluate(hi, act).cuDyn,
              model.evaluate(lo, act).cuDyn);
    EXPECT_GT(model.evaluate(hi, act).cuStatic,
              model.evaluate(lo, act).cuStatic);
}

TEST(NodePower, MonotonicInFrequency)
{
    NodePowerModel model;
    Activity act = typicalActivity();
    NodeConfig lo = NodeConfig::bestMean();
    lo.freqGhz = 0.8;
    NodeConfig hi = lo;
    hi.freqGhz = 1.4;
    // Frequency raises dynamic power superlinearly (f * V(f)^2).
    double ratio = model.evaluate(hi, act).cuDyn /
                   model.evaluate(lo, act).cuDyn;
    EXPECT_GT(ratio, 1.4 / 0.8);
}

TEST(NodePower, BandwidthProvisioningCostIsSuperlinear)
{
    NodePowerModel model;
    Activity act = typicalActivity();
    NodeConfig b1 = NodeConfig::bestMean();
    b1.bwTbs = 1.0;
    NodeConfig b4 = b1;
    b4.bwTbs = 4.0;
    double s1 = model.evaluate(b1, act).hbmStatic;
    double s4 = model.evaluate(b4, act).hbmStatic;
    EXPECT_GT(s4 - cal::hbmStackStaticW * 8,
              4.0 * (s1 - cal::hbmStackStaticW * 8) * 1.5);
}

TEST(NodePower, ExternalStaticAnchorsFromPaper)
{
    // Paper Section V-C: ~27 W external-DRAM static/refresh and ~10 W
    // SerDes background power for the DRAM-only configuration.
    NodePowerModel model;
    NodeConfig cfg = NodeConfig::bestMean();
    cfg.ext = ExtMemConfig::dramOnly();
    PowerBreakdown p = model.evaluate(cfg, typicalActivity());
    EXPECT_NEAR(p.extMemStatic, 27.0, 0.5);
    EXPECT_NEAR(p.serdesStatic, 10.0, 0.5);
}

TEST(NodePower, HybridHalvesExternalStatic)
{
    // Paper finding 2 (Fig. 9): the hybrid DRAM+NVM configuration cuts
    // external static power by about one half.
    NodePowerModel model;
    Activity act = typicalActivity();
    NodeConfig dram = NodeConfig::bestMean();
    dram.ext = ExtMemConfig::dramOnly();
    NodeConfig hybrid = dram;
    hybrid.ext = ExtMemConfig::hybrid();
    double s_dram = model.evaluate(dram, act).extMemStatic +
                    model.evaluate(dram, act).serdesStatic;
    double s_hyb = model.evaluate(hybrid, act).extMemStatic +
                   model.evaluate(hybrid, act).serdesStatic;
    EXPECT_NEAR(s_hyb / s_dram, 0.5, 0.12);
}

TEST(NodePower, NvmRaisesDynamicEnergy)
{
    NodePowerModel model;
    Activity act = typicalActivity();
    NodeConfig dram = NodeConfig::bestMean();
    dram.ext = ExtMemConfig::dramOnly();
    NodeConfig hybrid = dram;
    hybrid.ext = ExtMemConfig::hybrid();
    EXPECT_GT(model.evaluate(hybrid, act).extMemDyn,
              2.0 * model.evaluate(dram, act).extMemDyn);
}

TEST(NodePower, NvmWriteEnergyDominates)
{
    NodePowerModel model;
    NodeConfig hybrid = NodeConfig::bestMean();
    hybrid.ext = ExtMemConfig::hybrid();
    Activity reads = typicalActivity();
    reads.writeFraction = 0.0;
    Activity writes = typicalActivity();
    writes.writeFraction = 1.0;
    EXPECT_GT(model.evaluate(hybrid, writes).extMemDyn,
              3.0 * model.evaluate(hybrid, reads).extMemDyn);
}

TEST(NodePower, ExternalTrafficCappedBySerdes)
{
    NodePowerModel model;
    NodeConfig cfg = NodeConfig::bestMean();
    Activity at_cap = typicalActivity();
    at_cap.extTrafficGbs = cfg.ext.aggregateGbs();
    Activity over_cap = typicalActivity();
    over_cap.extTrafficGbs = cfg.ext.aggregateGbs() * 10.0;
    EXPECT_NEAR(model.evaluate(cfg, at_cap).serdesDyn,
                model.evaluate(cfg, over_cap).serdesDyn, 1e-9);
}

TEST(NodePower, IdleActivityStillBurnsPower)
{
    NodePowerModel model;
    Activity idle;
    idle.cuUtilization = 0.0;
    idle.inPkgTrafficGbs = 0.0;
    idle.extTrafficGbs = 0.0;
    idle.nocTrafficGbs = 0.0;
    PowerBreakdown p = model.evaluate(NodeConfig::bestMean(), idle);
    EXPECT_GT(p.cuDyn, 0.0);   // clock/idle overhead
    EXPECT_GT(p.total(), 50.0);
}

TEST(NodePower, BreakdownArithmetic)
{
    PowerBreakdown a;
    a.cuDyn = 10.0;
    a.sys = 2.0;
    PowerBreakdown b;
    b.cuDyn = 5.0;
    b.extMemDyn = 1.0;
    a += b;
    EXPECT_DOUBLE_EQ(a.cuDyn, 15.0);
    EXPECT_DOUBLE_EQ(a.extMemDyn, 1.0);
    a *= 0.5;
    EXPECT_DOUBLE_EQ(a.cuDyn, 7.5);
    EXPECT_DOUBLE_EQ(a.sys, 1.0);
}

TEST(NodePower, ActivityHelper)
{
    Activity a;
    a.cuIdleActivity = 0.3;
    a.cuUtilization = 0.5;
    EXPECT_DOUBLE_EQ(a.cuActivity(), 0.3 + 0.7 * 0.5);
    a.cuUtilization = 1.0;
    EXPECT_DOUBLE_EQ(a.cuActivity(), 1.0);
}

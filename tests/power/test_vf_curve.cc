/**
 * @file
 * Unit tests for the voltage-frequency curve and its NTC variant.
 */

#include <gtest/gtest.h>

#include "common/calibration.hh"
#include "power/vf_curve.hh"

using namespace ena;

TEST(VfCurve, MonotonicInFrequency)
{
    VfCurve vf;
    double prev = 0.0;
    for (double f = 0.5; f <= 1.6; f += 0.1) {
        double v = vf.voltage(f);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(VfCurve, NominalPoint)
{
    VfCurve vf;
    EXPECT_NEAR(vf.voltage(1.0), cal::vNominal, 1e-12);
    EXPECT_NEAR(vf.dynScale(1.0), 1.0, 1e-12);
    EXPECT_NEAR(vf.staticScale(1.0), 1.0, 1e-12);
}

TEST(VfCurve, DynScaleIsQuadraticInVoltage)
{
    VfCurve vf;
    double v = vf.voltage(1.4);
    EXPECT_NEAR(vf.dynScale(1.4), (v / cal::vNominal) * (v / cal::vNominal),
                1e-12);
}

TEST(VfCurve, NtcLowersVoltageAtLowFrequency)
{
    VfCurve vf;
    EXPECT_LT(vf.voltageNtc(0.8), vf.voltage(0.8));
    EXPECT_NEAR(vf.voltage(0.8) - vf.voltageNtc(0.8),
                cal::ntcDropVolts, 1e-12);
}

TEST(VfCurve, NtcFadesOutAtHighFrequency)
{
    VfCurve vf;
    // Full benefit at/below the NTC-sustainable frequency.
    EXPECT_NEAR(vf.voltage(cal::ntcFullDropGhz) -
                    vf.voltageNtc(cal::ntcFullDropGhz),
                cal::ntcDropVolts, 1e-12);
    // No benefit past the fade-out point.
    EXPECT_NEAR(vf.voltageNtc(cal::ntcZeroDropGhz + 0.1),
                vf.voltage(cal::ntcZeroDropGhz + 0.1), 1e-12);
    // Partial benefit in between.
    double mid = (cal::ntcFullDropGhz + cal::ntcZeroDropGhz) / 2.0;
    double drop = vf.voltage(mid) - vf.voltageNtc(mid);
    EXPECT_GT(drop, 0.0);
    EXPECT_LT(drop, cal::ntcDropVolts);
}

TEST(VfCurve, NtcNeverBelowVmin)
{
    VfCurve vf(0.3, 0.1, 0.45, 0.7);
    EXPECT_GE(vf.voltageNtc(0.5), 0.45);
}

TEST(VfCurve, CustomCurve)
{
    VfCurve vf(0.4, 0.25, 0.45, 0.65);
    EXPECT_NEAR(vf.voltage(1.0), 0.65, 1e-12);
    EXPECT_NEAR(vf.dynScale(1.0), 1.0, 1e-12);
}

TEST(VfCurveDeathTest, NonPositiveFrequencyPanics)
{
    VfCurve vf;
    EXPECT_DEATH(vf.voltage(0.0), "positive frequency");
}

/**
 * @file
 * Unit tests for the technology-scaling model.
 */

#include <gtest/gtest.h>

#include "power/tech_model.hh"

using namespace ena;

TEST(TechModel, DefaultRoadmapHasFourNodes)
{
    TechModel tm;
    EXPECT_EQ(tm.generations(), 4u);
    EXPECT_EQ(tm.indexOf("28nm"), 0u);
    EXPECT_EQ(tm.indexOf("7nm"), 3u);
}

TEST(TechModel, IdentityScaling)
{
    TechModel tm;
    EXPECT_DOUBLE_EQ(tm.capacitanceScale("14nm", "14nm"), 1.0);
    EXPECT_DOUBLE_EQ(tm.leakageScale("7nm", "7nm"), 1.0);
}

TEST(TechModel, ForwardScalingShrinks)
{
    TechModel tm;
    EXPECT_LT(tm.capacitanceScale("28nm", "7nm"), 1.0);
    EXPECT_LT(tm.leakageScale("28nm", "7nm"), 1.0);
    EXPECT_LT(tm.areaScale("28nm", "7nm"), 1.0);
}

TEST(TechModel, BackwardIsInverseOfForward)
{
    TechModel tm;
    double fwd = tm.capacitanceScale("14nm", "7nm");
    double bwd = tm.capacitanceScale("7nm", "14nm");
    EXPECT_NEAR(fwd * bwd, 1.0, 1e-12);
}

TEST(TechModel, CumulativeIsProductOfSteps)
{
    TechModel tm;
    double direct = tm.capacitanceScale("28nm", "10nm");
    double stepped = tm.capacitanceScale("28nm", "14nm") *
                     tm.capacitanceScale("14nm", "10nm");
    EXPECT_NEAR(direct, stepped, 1e-12);
}

TEST(TechModel, ProjectionAppliesScale)
{
    TechModel tm;
    double measured = 0.5;   // W/GHz per CU on 14nm
    double projected = tm.projectCuDynW(measured, "14nm", "7nm");
    EXPECT_NEAR(projected,
                measured * tm.capacitanceScale("14nm", "7nm"), 1e-12);
    EXPECT_LT(projected, measured);
}

TEST(TechModel, CustomRoadmap)
{
    TechModel tm({{"a", 1.0, 1.0, 1.0, 1.0}, {"b", 0.5, 0.8, 1.0, 0.5}});
    EXPECT_DOUBLE_EQ(tm.capacitanceScale("a", "b"), 0.5);
    EXPECT_DOUBLE_EQ(tm.leakageScale("a", "b"), 0.8);
}

TEST(TechModelDeathTest, UnknownNodeIsFatal)
{
    TechModel tm;
    EXPECT_EXIT(tm.indexOf("3nm"), testing::ExitedWithCode(1),
                "unknown technology node");
}

TEST(TechModelDeathTest, EmptyRoadmapIsFatal)
{
    EXPECT_EXIT(TechModel(std::vector<TechGeneration>{}),
                testing::ExitedWithCode(1), "at least one generation");
}

/**
 * @file
 * Unit tests for the EHP topology: node inventory, router mesh,
 * routing-table correctness.
 */

#include <gtest/gtest.h>

#include "noc/topology.hh"

using namespace ena;

TEST(Topology, DefaultEhpInventory)
{
    Topology t = Topology::ehp();
    EXPECT_EQ(t.nodesOf(NodeKind::GpuChiplet).size(), 8u);
    EXPECT_EQ(t.nodesOf(NodeKind::CpuCluster).size(), 2u);
    EXPECT_EQ(t.nodesOf(NodeKind::MemStack).size(), 8u);
    EXPECT_EQ(t.numRouters(), 10u);
    EXPECT_EQ(t.nodes().size(), 18u);
}

TEST(Topology, StacksShareRouterWithTheirChiplet)
{
    Topology t = Topology::ehp();
    for (int i = 0; i < 8; ++i) {
        const TopologyNode &gpu = t.node(t.nodeOf(NodeKind::GpuChiplet, i));
        const TopologyNode &hbm = t.node(t.nodeOf(NodeKind::MemStack, i));
        EXPECT_EQ(gpu.router, hbm.router)
            << "stack " << i << " not above its chiplet";
    }
}

TEST(Topology, NamesAreStable)
{
    Topology t = Topology::ehp();
    EXPECT_EQ(t.node(t.nodeOf(NodeKind::GpuChiplet, 0)).name, "gpu0");
    EXPECT_EQ(t.node(t.nodeOf(NodeKind::MemStack, 7)).name, "hbm7");
    EXPECT_EQ(t.node(t.nodeOf(NodeKind::CpuCluster, 1)).name, "cpu1");
}

TEST(Topology, AllRoutersReachable)
{
    Topology t = Topology::ehp();
    for (std::uint32_t a = 0; a < t.numRouters(); ++a) {
        for (std::uint32_t b = 0; b < t.numRouters(); ++b) {
            std::uint32_t h = t.hopCount(a, b);
            EXPECT_LT(h, t.numRouters());
            if (a == b)
                EXPECT_EQ(h, 0u);
            else
                EXPECT_GE(h, 1u);
        }
    }
}

TEST(Topology, HopCountSymmetric)
{
    Topology t = Topology::ehp();
    for (std::uint32_t a = 0; a < t.numRouters(); ++a) {
        for (std::uint32_t b = 0; b < t.numRouters(); ++b)
            EXPECT_EQ(t.hopCount(a, b), t.hopCount(b, a));
    }
}

TEST(Topology, NextHopWalksShortestPath)
{
    Topology t = Topology::ehp();
    for (std::uint32_t a = 0; a < t.numRouters(); ++a) {
        for (std::uint32_t b = 0; b < t.numRouters(); ++b) {
            std::uint32_t at = a;
            std::uint32_t steps = 0;
            while (at != b) {
                std::uint32_t nh = t.nextHop(at, b);
                // Each step must reduce the remaining distance by one.
                EXPECT_EQ(t.hopCount(nh, b) + 1, t.hopCount(at, b));
                at = nh;
                ++steps;
                ASSERT_LE(steps, t.numRouters());
            }
            EXPECT_EQ(steps, t.hopCount(a, b));
        }
    }
}

TEST(Topology, MeshDiameterIsSmall)
{
    // 2 x 5 mesh: diameter = 4 + 1 = 5.
    Topology t = Topology::ehp();
    std::uint32_t max_h = 0;
    for (std::uint32_t a = 0; a < t.numRouters(); ++a) {
        for (std::uint32_t b = 0; b < t.numRouters(); ++b)
            max_h = std::max(max_h, t.hopCount(a, b));
    }
    EXPECT_EQ(max_h, 5u);
}

TEST(Topology, ScaledVariants)
{
    Topology small = Topology::ehp(4, 2);
    EXPECT_EQ(small.nodesOf(NodeKind::GpuChiplet).size(), 4u);
    EXPECT_EQ(small.nodesOf(NodeKind::MemStack).size(), 4u);
    EXPECT_EQ(small.numRouters(), 6u);

    Topology big = Topology::ehp(16, 2);
    EXPECT_EQ(big.nodesOf(NodeKind::GpuChiplet).size(), 16u);
    EXPECT_EQ(big.numRouters(), 18u);
}

TEST(TopologyDeathTest, OddChipletCountIsFatal)
{
    EXPECT_EXIT(Topology::ehp(7, 2), testing::ExitedWithCode(1),
                "even GPU chiplet count");
}

TEST(Topology, Torus3dShape)
{
    Topology t = Topology::torus3d(4, 3, 2);
    EXPECT_EQ(t.numRouters(), 24u);
    // Pure router graph: no endpoint nodes attached.
    EXPECT_TRUE(t.nodes().empty());
}

TEST(Topology, Torus3dRingDistances)
{
    // A 5x1x1 torus is a 5-ring: the wrap link makes the far end 2
    // hops away instead of 4.
    Topology ring = Topology::torus3d(5, 1, 1);
    EXPECT_EQ(ring.hopCount(0, 1), 1u);
    EXPECT_EQ(ring.hopCount(0, 4), 1u);   // wrap
    EXPECT_EQ(ring.hopCount(0, 2), 2u);
    EXPECT_EQ(ring.hopCount(0, 3), 2u);
}

TEST(Topology, Torus3dSizeTwoDimensionHasNoDoubleLink)
{
    // In a size-2 dimension the "wrap" would duplicate the direct
    // link; neighbors are 1 hop apart, not 0-or-2.
    Topology t = Topology::torus3d(2, 2, 2);
    EXPECT_EQ(t.numRouters(), 8u);
    for (std::uint32_t a = 0; a < 8; ++a) {
        for (std::uint32_t b = 0; b < 8; ++b) {
            // Hamming distance on the 3-bit coordinates.
            std::uint32_t d = __builtin_popcount(a ^ b);
            EXPECT_EQ(t.hopCount(a, b), d) << a << "->" << b;
        }
    }
}

TEST(Topology, Torus3dDiameterIsSumOfHalfDims)
{
    Topology t = Topology::torus3d(6, 4, 2);
    std::uint32_t max_h = 0;
    for (std::uint32_t a = 0; a < t.numRouters(); ++a) {
        for (std::uint32_t b = 0; b < t.numRouters(); ++b)
            max_h = std::max(max_h, t.hopCount(a, b));
    }
    EXPECT_EQ(max_h, 6u / 2 + 4u / 2 + 2u / 2);
}

TEST(TopologyDeathTest, Torus3dRejectsBadDims)
{
    EXPECT_EXIT(Topology::torus3d(0, 4, 4), testing::ExitedWithCode(1),
                "positive dimensions");
    // The explicit graph is a validation helper, capped well below the
    // scale-out machine's size.
    EXPECT_EXIT(Topology::torus3d(64, 64, 64),
                testing::ExitedWithCode(1), "validation helper");
}

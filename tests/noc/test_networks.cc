/**
 * @file
 * Unit tests for the interposer network and the monolithic crossbar:
 * delivery, latency structure, contention, and accounting.
 */

#include <gtest/gtest.h>

#include "noc/crossbar_network.hh"
#include "noc/interposer_network.hh"
#include "noc/topology.hh"
#include "sim/simulation.hh"

using namespace ena;

namespace {

struct Sink : NetworkEndpoint
{
    std::vector<std::pair<std::uint64_t, Tick>> arrivals;
    const EventQueue *clock = nullptr;

    void
    receivePacket(const Packet &pkt) override
    {
        arrivals.emplace_back(pkt.id, clock->curTick());
    }
};

struct NetFixture : testing::Test
{
    Simulation sim;
    Topology topo = Topology::ehp();

    std::vector<Sink> sinks;

    void
    attachAll(Network &net)
    {
        sinks.resize(topo.nodes().size());
        for (NodeId i = 0; i < sinks.size(); ++i) {
            sinks[i].clock = &sim.eventq();
            net.attach(i, &sinks[i]);
        }
    }

    Packet
    makePacket(NodeId src, NodeId dst, std::uint32_t bytes,
               std::uint64_t id = 1)
    {
        Packet p;
        p.id = id;
        p.src = src;
        p.dst = dst;
        p.bytes = bytes;
        return p;
    }

    void
    runAll()
    {
        sim.initAll();
        sim.eventq().run();
    }
};

} // anonymous namespace

TEST_F(NetFixture, InterposerDeliversPackets)
{
    auto *net = sim.create<InterposerNetwork>("noc", topo,
                                              InterposerParams{});
    attachAll(*net);
    sim.initAll();
    net->send(makePacket(0, 5, 64, 42));
    runAll();
    ASSERT_EQ(sinks[5].arrivals.size(), 1u);
    EXPECT_EQ(sinks[5].arrivals[0].first, 42u);
    EXPECT_EQ(net->packetsSent(), 1.0);
    EXPECT_EQ(net->bytesInjected(), 64.0);
}

TEST_F(NetFixture, FartherNodesTakeLonger)
{
    auto *net = sim.create<InterposerNetwork>("noc", topo,
                                              InterposerParams{});
    attachAll(*net);
    sim.initAll();
    NodeId g0 = topo.nodeOf(NodeKind::GpuChiplet, 0);
    NodeId near_stack = topo.nodeOf(NodeKind::MemStack, 1);
    NodeId far_stack = topo.nodeOf(NodeKind::MemStack, 7);
    EXPECT_LT(net->zeroLoadLatency(g0, near_stack, 64),
              net->zeroLoadLatency(g0, far_stack, 64));
}

TEST_F(NetFixture, SameRouterDeliveryHasNoHops)
{
    auto *net = sim.create<InterposerNetwork>("noc", topo,
                                              InterposerParams{});
    attachAll(*net);
    sim.initAll();
    NodeId g0 = topo.nodeOf(NodeKind::GpuChiplet, 0);
    NodeId hbm0 = topo.nodeOf(NodeKind::MemStack, 0);
    net->send(makePacket(g0, hbm0, 64));
    runAll();
    EXPECT_EQ(net->meanHops(), 0.0);
    ASSERT_EQ(sinks[hbm0].arrivals.size(), 1u);
}

TEST_F(NetFixture, ZeroLoadLatencyMatchesActualDelivery)
{
    auto *net = sim.create<InterposerNetwork>("noc", topo,
                                              InterposerParams{});
    attachAll(*net);
    sim.initAll();
    NodeId g0 = topo.nodeOf(NodeKind::GpuChiplet, 0);
    NodeId hbm7 = topo.nodeOf(NodeKind::MemStack, 7);
    net->send(makePacket(g0, hbm7, 64));
    runAll();
    ASSERT_EQ(sinks[hbm7].arrivals.size(), 1u);
    EXPECT_EQ(sinks[hbm7].arrivals[0].second,
              net->zeroLoadLatency(g0, hbm7, 64));
}

TEST_F(NetFixture, LinkContentionDelaysBursts)
{
    InterposerParams ip;
    ip.linkBytesPerCycle = 64;   // narrow links to force contention
    auto *net = sim.create<InterposerNetwork>("noc", topo, ip);
    attachAll(*net);
    sim.initAll();
    NodeId g0 = topo.nodeOf(NodeKind::GpuChiplet, 0);
    NodeId hbm7 = topo.nodeOf(NodeKind::MemStack, 7);
    Tick solo = net->zeroLoadLatency(g0, hbm7, 256);
    for (std::uint64_t i = 0; i < 16; ++i)
        net->send(makePacket(g0, hbm7, 256, i));
    runAll();
    ASSERT_EQ(sinks[hbm7].arrivals.size(), 16u);
    Tick last = sinks[hbm7].arrivals.back().second;
    EXPECT_GT(last, solo + 14 * 4 * clockPeriod(ip.clockGhz));
}

TEST_F(NetFixture, ByteHopsTrackDistance)
{
    auto *net = sim.create<InterposerNetwork>("noc", topo,
                                              InterposerParams{});
    attachAll(*net);
    sim.initAll();
    NodeId g0 = topo.nodeOf(NodeKind::GpuChiplet, 0);
    NodeId hbm7 = topo.nodeOf(NodeKind::MemStack, 7);
    std::uint32_t hops =
        topo.hopCount(topo.node(g0).router, topo.node(hbm7).router);
    net->send(makePacket(g0, hbm7, 64));
    runAll();
    EXPECT_DOUBLE_EQ(net->byteHops(), 64.0 * hops);
    EXPECT_DOUBLE_EQ(net->meanHops(), static_cast<double>(hops));
}

TEST_F(NetFixture, CrossbarUniformLatency)
{
    CrossbarParams xp;
    auto *net = sim.create<CrossbarNetwork>("xbar", topo.nodes().size(),
                                            xp);
    attachAll(*net);
    sim.initAll();
    // Distance-independent latency: nearest and farthest match.
    net->send(makePacket(0, 1, 64, 1));
    runAll();
    Tick t1 = sinks[1].arrivals[0].second;
    Tick start2 = sim.curTick();
    net->send(makePacket(0, 17, 64, 2));
    runAll();
    Tick t2 = sinks[17].arrivals[0].second - start2;
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(t1, net->zeroLoadLatency(64));
}

TEST_F(NetFixture, CrossbarCapacitySharedGlobally)
{
    CrossbarParams xp;
    xp.aggregateBytesPerCycle = 64;   // tight fabric
    auto *net = sim.create<CrossbarNetwork>("xbar", topo.nodes().size(),
                                            xp);
    attachAll(*net);
    sim.initAll();
    // Packets between disjoint pairs still serialize on the fabric.
    for (std::uint64_t i = 0; i < 8; ++i)
        net->send(makePacket(static_cast<NodeId>(i),
                             static_cast<NodeId>(i + 8), 640, i));
    runAll();
    Tick max_arrival = 0;
    for (const Sink &s : sinks) {
        for (const auto &[id, at] : s.arrivals)
            max_arrival = std::max(max_arrival, at);
    }
    // 8 x 640 B at 64 B/cycle = 80 cycles of occupancy minimum.
    // 7 predecessors x 10 cycles occupancy + 6 cycles latency.
    EXPECT_GE(max_arrival, 76u * clockPeriod(xp.clockGhz));
}

TEST_F(NetFixture, LatencyStatRecorded)
{
    auto *net = sim.create<InterposerNetwork>("noc", topo,
                                              InterposerParams{});
    attachAll(*net);
    sim.initAll();
    net->send(makePacket(0, 9, 64));
    runAll();
    EXPECT_GT(net->meanLatencyNs(), 0.0);
}

TEST_F(NetFixture, AttachValidation)
{
    auto *net = sim.create<InterposerNetwork>("noc", topo,
                                              InterposerParams{});
    Sink s;
    s.clock = &sim.eventq();
    net->attach(0, &s);
    EXPECT_DEATH(net->attach(0, &s), "already attached");
    Packet p = makePacket(3, 4, 64);
    EXPECT_DEATH(net->send(p), "no endpoint");
}


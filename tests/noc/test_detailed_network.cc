/**
 * @file
 * Unit tests for the detailed (buffered, XY-routed) interposer model.
 */

#include <gtest/gtest.h>

#include "noc/detailed_network.hh"
#include "noc/topology.hh"
#include "sim/simulation.hh"

using namespace ena;

namespace {

struct Sink : NetworkEndpoint
{
    const EventQueue *clock = nullptr;
    std::vector<std::pair<std::uint64_t, Tick>> arrivals;

    void
    receivePacket(const Packet &pkt) override
    {
        arrivals.emplace_back(pkt.id, clock->curTick());
    }
};

struct DetailedFixture : testing::Test
{
    Simulation sim;
    Topology topo = Topology::ehp();
    std::vector<Sink> sinks;

    DetailedNetwork *
    build(DetailedParams dp = {})
    {
        auto *net = sim.create<DetailedNetwork>("dnoc", topo, dp);
        sinks.resize(topo.nodes().size());
        for (NodeId i = 0; i < sinks.size(); ++i) {
            sinks[i].clock = &sim.eventq();
            net->attach(i, &sinks[i]);
        }
        sim.initAll();
        return net;
    }

    Packet
    makePacket(NodeId src, NodeId dst, std::uint32_t bytes,
               std::uint64_t id = 1)
    {
        Packet p;
        p.id = id;
        p.src = src;
        p.dst = dst;
        p.bytes = bytes;
        return p;
    }
};

} // anonymous namespace

TEST_F(DetailedFixture, DeliversAcrossTheMesh)
{
    DetailedNetwork *net = build();
    NodeId g0 = topo.nodeOf(NodeKind::GpuChiplet, 0);
    NodeId hbm7 = topo.nodeOf(NodeKind::MemStack, 7);
    net->send(makePacket(g0, hbm7, 64, 99));
    sim.run();
    ASSERT_EQ(sinks[hbm7].arrivals.size(), 1u);
    EXPECT_EQ(sinks[hbm7].arrivals[0].first, 99u);
}

TEST_F(DetailedFixture, XyHopCountMatchesShortestPath)
{
    DetailedNetwork *net = build();
    // XY routes on a 2xC mesh are shortest paths: walked hop count
    // must equal the BFS distance for every router pair.
    for (std::uint32_t a = 0; a < topo.numRouters(); ++a) {
        for (std::uint32_t b = 0; b < topo.numRouters(); ++b) {
            if (a == b)
                continue;
            std::uint32_t at = a;
            std::uint32_t steps = 0;
            while (at != b) {
                at = net->nextHopXY(at, b);
                ++steps;
                ASSERT_LE(steps, topo.numRouters());
            }
            EXPECT_EQ(steps, topo.hopCount(a, b));
        }
    }
}

TEST_F(DetailedFixture, RecordsHops)
{
    DetailedNetwork *net = build();
    NodeId g0 = topo.nodeOf(NodeKind::GpuChiplet, 0);
    NodeId hbm7 = topo.nodeOf(NodeKind::MemStack, 7);
    std::uint32_t expect =
        topo.hopCount(topo.node(g0).router, topo.node(hbm7).router);
    net->send(makePacket(g0, hbm7, 64));
    sim.run();
    EXPECT_DOUBLE_EQ(net->meanHops(), static_cast<double>(expect));
}

TEST_F(DetailedFixture, TinyBuffersStallButStillDeliver)
{
    DetailedParams dp;
    dp.bufferPackets = 1;
    dp.linkBytesPerCycle = 64;
    DetailedNetwork *net = build(dp);
    NodeId g0 = topo.nodeOf(NodeKind::GpuChiplet, 0);
    NodeId hbm7 = topo.nodeOf(NodeKind::MemStack, 7);
    for (std::uint64_t i = 0; i < 64; ++i)
        net->send(makePacket(g0, hbm7, 256, i));
    sim.run();
    EXPECT_EQ(sinks[hbm7].arrivals.size(), 64u);
    EXPECT_GT(net->bufferStalls(), 0.0);
}

TEST_F(DetailedFixture, BidirectionalFloodDrainsWithoutDeadlock)
{
    // Opposing flows through the same routers: the per-input-port
    // buffering must avoid the shared-pool deadlock.
    DetailedParams dp;
    dp.bufferPackets = 2;
    DetailedNetwork *net = build(dp);
    NodeId g0 = topo.nodeOf(NodeKind::GpuChiplet, 0);
    NodeId g7 = topo.nodeOf(NodeKind::GpuChiplet, 7);
    NodeId hbm0 = topo.nodeOf(NodeKind::MemStack, 0);
    NodeId hbm7 = topo.nodeOf(NodeKind::MemStack, 7);
    for (std::uint64_t i = 0; i < 128; ++i) {
        net->send(makePacket(g0, hbm7, 256, i));
        net->send(makePacket(g7, hbm0, 256, 1000 + i));
    }
    sim.run();
    EXPECT_EQ(sinks[hbm7].arrivals.size(), 128u);
    EXPECT_EQ(sinks[hbm0].arrivals.size(), 128u);
}

TEST_F(DetailedFixture, CongestionSlowsTail)
{
    DetailedNetwork *net = build();
    NodeId g0 = topo.nodeOf(NodeKind::GpuChiplet, 0);
    NodeId hbm7 = topo.nodeOf(NodeKind::MemStack, 7);
    net->send(makePacket(g0, hbm7, 256, 0));
    sim.run();
    Tick solo = sinks[hbm7].arrivals[0].second;
    for (std::uint64_t i = 1; i <= 32; ++i)
        net->send(makePacket(g0, hbm7, 256, i));
    sim.run();
    Tick last = sinks[hbm7].arrivals.back().second;
    EXPECT_GT(last - solo, solo);
}

TEST_F(DetailedFixture, MoreBuffersNeverSlowTotalDrain)
{
    auto drain_time = [&](int buffers) {
        Simulation local;
        DetailedParams dp;
        dp.bufferPackets = buffers;
        auto *net = local.create<DetailedNetwork>("dn", topo, dp);
        std::vector<Sink> local_sinks(topo.nodes().size());
        for (NodeId i = 0; i < local_sinks.size(); ++i) {
            local_sinks[i].clock = &local.eventq();
            net->attach(i, &local_sinks[i]);
        }
        local.initAll();
        NodeId g0 = topo.nodeOf(NodeKind::GpuChiplet, 0);
        NodeId hbm7 = topo.nodeOf(NodeKind::MemStack, 7);
        for (std::uint64_t i = 0; i < 64; ++i)
            net->send(makePacket(g0, hbm7, 256, i));
        local.run();
        return local.curTick();
    };
    EXPECT_LE(drain_time(16), drain_time(1));
}

/**
 * @file
 * Integration-grade unit tests for the GPU timing stack: compute units,
 * chiplet L2 + memory paths, the stack endpoint, and the dispatcher —
 * wired into a minimal two-chiplet system.
 */

#include <gtest/gtest.h>

#include "gpu/compute_unit.hh"
#include "gpu/dispatcher.hh"
#include "gpu/gpu_chiplet.hh"
#include "gpu/mem_stack_endpoint.hh"
#include "mem/address_map.hh"
#include "mem/hbm_stack.hh"
#include "noc/interposer_network.hh"
#include "noc/topology.hh"
#include "sim/simulation.hh"
#include "util/string_utils.hh"

using namespace ena;

namespace {

/** Minimal EHP slice: N GPU chiplets, one stack each, interposer NoC. */
struct MiniEhp
{
    explicit MiniEhp(int chiplets = 2, double local_frac = 0.0,
                     bool monolithic = false)
        : topo(Topology::ehp(chiplets, 2)), addrMap(chiplets)
    {
        if (local_frac > 0.0) {
            for (int i = 0; i < chiplets; ++i) {
                addrMap.addRegion(static_cast<std::uint64_t>(i) << 32,
                                  1ull << 32, i, local_frac);
            }
        }
        net = sim.create<InterposerNetwork>("noc", topo,
                                            InterposerParams{});
        HbmParams hbm = HbmParams::forAggregateBandwidth(200.0, chiplets);
        GpuChipletParams gp;
        gp.monolithic = monolithic;
        for (int i = 0; i < chiplets; ++i) {
            auto *stack = sim.create<HbmStack>(
                strformat("hbm%d", i), hbm);
            stacks.push_back(stack);
            sim.create<MemStackEndpoint>(
                strformat("hbm%d.port", i),
                topo.nodeOf(NodeKind::MemStack, i), *stack, *net);
            auto *chiplet = sim.create<GpuChiplet>(
                strformat("gpu%d", i), i,
                topo.nodeOf(NodeKind::GpuChiplet, i), gp, addrMap, *net);
            chiplet->setLocalStack(i, stack);
            for (int s = 0; s < chiplets; ++s) {
                chiplet->setStackNode(
                    s, topo.nodeOf(NodeKind::MemStack, s));
            }
            gpus.push_back(chiplet);
        }
    }

    Simulation sim;
    Topology topo;
    AddressMap addrMap;
    InterposerNetwork *net = nullptr;
    std::vector<HbmStack *> stacks;
    std::vector<GpuChiplet *> gpus;
};

} // anonymous namespace

TEST(GpuChiplet, L2HitCompletesWithoutMemoryTraffic)
{
    MiniEhp ehp;
    ehp.sim.initAll();
    int done = 0;
    // Touch a line (miss -> fill), then access it again (hit).
    ehp.gpus[0]->requestMemory(0x1000, false, [&] { ++done; });
    ehp.sim.run();
    EXPECT_EQ(done, 1);
    double bytes_after_fill = ehp.stacks[0]->bytesServed() +
                              ehp.stacks[1]->bytesServed();
    ehp.gpus[0]->requestMemory(0x1000, false, [&] { ++done; });
    ehp.sim.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(ehp.stacks[0]->bytesServed() +
                  ehp.stacks[1]->bytesServed(),
              bytes_after_fill);
    EXPECT_EQ(ehp.gpus[0]->l2().hits(), 1u);
}

TEST(GpuChiplet, LocalMissUsesTsvPathNotNetwork)
{
    MiniEhp ehp(2, /*local_frac=*/0.0);
    // Page 0 interleaves to stack 0 = local for chiplet 0.
    ehp.sim.initAll();
    int done = 0;
    ehp.gpus[0]->requestMemory(0x100, false, [&] { ++done; });
    ehp.sim.run();
    EXPECT_EQ(done, 1);
    EXPECT_EQ(ehp.net->packetsSent(), 0.0);
    EXPECT_GT(ehp.stacks[0]->bytesServed(), 0.0);
    EXPECT_GT(ehp.gpus[0]->localBytes(), 0.0);
    EXPECT_EQ(ehp.gpus[0]->remoteBytes(), 0.0);
}

TEST(GpuChiplet, RemoteMissCrossesNetwork)
{
    MiniEhp ehp;
    ehp.sim.initAll();
    int done = 0;
    // Page 1 (addr 4096) maps to stack 1 = remote for chiplet 0.
    ehp.gpus[0]->requestMemory(4096, false, [&] { ++done; });
    ehp.sim.run();
    EXPECT_EQ(done, 1);
    EXPECT_GE(ehp.net->packetsSent(), 2.0);   // request + response
    EXPECT_GT(ehp.stacks[1]->bytesServed(), 0.0);
    EXPECT_EQ(ehp.stacks[0]->bytesServed(), 0.0);
    EXPECT_GT(ehp.gpus[0]->remoteTrafficFraction(), 0.99);
}

TEST(GpuChiplet, MonolithicModeSendsLocalTrafficThroughFabric)
{
    MiniEhp ehp(2, 0.0, /*monolithic=*/true);
    // Monolithic mode uses the network object for every miss.
    ehp.sim.initAll();
    int done = 0;
    ehp.gpus[0]->requestMemory(0x100, false, [&] { ++done; });
    ehp.sim.run();
    EXPECT_EQ(done, 1);
    EXPECT_GE(ehp.net->packetsSent(), 2.0);
}

TEST(GpuChiplet, RemoteIsSlowerThanLocal)
{
    MiniEhp ehp;
    ehp.sim.initAll();
    Tick local_done = 0;
    ehp.gpus[0]->requestMemory(0x100, false,
                               [&] { local_done = ehp.sim.curTick(); });
    ehp.sim.run();
    Tick start = ehp.sim.curTick();
    Tick remote_done = 0;
    ehp.gpus[0]->requestMemory(4096, false,
                               [&] { remote_done = ehp.sim.curTick(); });
    ehp.sim.run();
    EXPECT_GT(remote_done - start, local_done);
}

TEST(GpuChiplet, DirtyL2EvictionsGenerateWritebackTraffic)
{
    MiniEhp ehp;
    ehp.sim.initAll();
    // Write-allocate far more lines than the 2 MiB L2 holds, all homed
    // on the local stack to keep accounting simple.
    int done = 0;
    const int lines = 100000;
    for (int i = 0; i < lines; ++i) {
        // Stay in page-0-homed pages: stride pages by numStacks.
        std::uint64_t page = static_cast<std::uint64_t>(i / 64) * 2;
        std::uint64_t addr = page * 4096 + (i % 64) * 64;
        ehp.gpus[0]->requestMemory(addr, true, [&] { ++done; });
        ehp.sim.run();
    }
    EXPECT_EQ(done, lines);
    // Reads fill 64 B and writebacks add 64 B for evicted dirty lines.
    EXPECT_GT(ehp.stacks[0]->bytesServed(),
              static_cast<double>(lines) * 64.0 * 1.5);
}

TEST(ComputeUnit, WavefrontsRetireAfterQuota)
{
    MiniEhp ehp;
    ComputeUnitParams cp;
    cp.wavefrontSlots = 2;
    cp.memOpsPerWavefront = 50;
    auto *cu = ehp.sim.create<ComputeUnit>("cu0", *ehp.gpus[0], cp);

    StreamLayout layout;
    layout.privateBase = 0;
    layout.privateSize = 1ull << 20;
    for (int w = 0; w < 2; ++w) {
        cu->addWavefront(std::make_unique<TraceGenerator>(
            profileFor(App::CoMD), layout, 100 + w));
    }
    bool done = false;
    cu->setDoneCallback([&] { done = true; });
    ehp.sim.run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(cu->done());
    EXPECT_EQ(cu->memOpsIssued(), 100u);
}

TEST(ComputeUnit, L1FiltersSequentialReuse)
{
    MiniEhp ehp;
    ComputeUnitParams cp;
    cp.wavefrontSlots = 1;
    cp.memOpsPerWavefront = 400;
    auto *cu = ehp.sim.create<ComputeUnit>("cu0", *ehp.gpus[0], cp);
    StreamLayout layout;
    layout.privateBase = 0;
    layout.privateSize = 2048;   // 32 lines: loops inside the L1
    cu->addWavefront(std::make_unique<TraceGenerator>(
        profileFor(App::SNAP), layout, 9));
    ehp.sim.run();
    EXPECT_TRUE(cu->done());
    EXPECT_GT(cu->l1().hitRate(), 0.5);
}

TEST(ComputeUnit, MoreWavefrontsFinishFasterPerOp)
{
    auto runtime_per_op = [](int wavefronts) {
        MiniEhp ehp;
        ComputeUnitParams cp;
        cp.wavefrontSlots = wavefronts;
        cp.memOpsPerWavefront = 200;
        auto *cu =
            ehp.sim.create<ComputeUnit>("cu0", *ehp.gpus[0], cp);
        StreamLayout layout;
        layout.privateBase = 0;
        layout.privateSize = 8ull << 20;
        for (int w = 0; w < wavefronts; ++w) {
            cu->addWavefront(std::make_unique<TraceGenerator>(
                profileFor(App::XSBench), layout, 40 + w));
        }
        ehp.sim.run();
        EXPECT_TRUE(cu->done());
        return static_cast<double>(ehp.sim.curTick()) /
               (200.0 * wavefronts);
    };
    // Latency hiding: with more wavefronts the per-op cost drops.
    EXPECT_LT(runtime_per_op(8), runtime_per_op(1) * 0.5);
}

TEST(Dispatcher, AssignsAndTracksCompletion)
{
    MiniEhp ehp;
    DispatchParams dp;
    dp.wavefrontsPerCu = 4;
    auto *dispatcher = ehp.sim.create<Dispatcher>(
        "disp", profileFor(App::CoMD), dp);
    ComputeUnitParams cp;
    cp.wavefrontSlots = 4;
    cp.memOpsPerWavefront = 30;
    for (int c = 0; c < 2; ++c) {
        for (int g = 0; g < 2; ++g) {
            auto *cu = ehp.sim.create<ComputeUnit>(
                strformat("gpu%d.cu%d", g, c), *ehp.gpus[g], cp);
            dispatcher->assign(*cu, g);
        }
    }
    EXPECT_FALSE(dispatcher->allDone());
    ehp.sim.run();
    EXPECT_TRUE(dispatcher->allDone());
    EXPECT_GT(dispatcher->finishTick(), 0u);
    EXPECT_LE(dispatcher->finishTick(), ehp.sim.curTick());
}

TEST(Dispatcher, ArenasAreDisjointAcrossChiplets)
{
    MiniEhp ehp;
    DispatchParams dp;
    auto *d = ehp.sim.create<Dispatcher>("disp",
                                         profileFor(App::CoMD), dp);
    std::uint64_t b0 = d->chipletArenaBase(0);
    std::uint64_t b1 = d->chipletArenaBase(1);
    EXPECT_GE(b1, b0 + d->chipletArenaSize(0));
}

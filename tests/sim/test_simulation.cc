/**
 * @file
 * Unit tests for Simulation / SimObject lifecycle.
 */

#include <gtest/gtest.h>

#include "sim/simulation.hh"

using namespace ena;

namespace {

class Widget : public SimObject
{
  public:
    Widget(Simulation &sim, const std::string &name, int fire_at)
        : SimObject(sim, name), fireAt_(fire_at),
          ev_([this] { fired = true; }, name + ".ev"),
          stat_(sim.stats(), name + ".count", "fires")
    {}

    void init() override { initialized = true; }

    void
    startup() override
    {
        started = true;
        schedule(ev_, static_cast<Tick>(fireAt_));
    }

    bool initialized = false;
    bool started = false;
    bool fired = false;

  private:
    int fireAt_;
    EventFunctionWrapper ev_;
    StatScalar stat_;
};

} // anonymous namespace

TEST(Simulation, CreateAndRun)
{
    Simulation sim;
    auto *w = sim.create<Widget>("w0", 100);
    EXPECT_EQ(sim.numObjects(), 1u);
    EXPECT_EQ(w->name(), "w0");
    sim.run();
    EXPECT_TRUE(w->initialized);
    EXPECT_TRUE(w->started);
    EXPECT_TRUE(w->fired);
    EXPECT_EQ(sim.curTick(), 100u);
}

TEST(Simulation, InitAllIsIdempotent)
{
    Simulation sim;
    auto *w = sim.create<Widget>("w0", 5);
    sim.initAll();
    sim.initAll();
    sim.run();
    EXPECT_TRUE(w->fired);
}

TEST(Simulation, MultipleObjectsShareQueue)
{
    Simulation sim;
    auto *a = sim.create<Widget>("a", 10);
    auto *b = sim.create<Widget>("b", 20);
    sim.run();
    EXPECT_TRUE(a->fired);
    EXPECT_TRUE(b->fired);
    EXPECT_EQ(sim.curTick(), 20u);
}

TEST(Simulation, StatsRegisteredPerObject)
{
    Simulation sim;
    sim.create<Widget>("x", 1);
    sim.create<Widget>("y", 1);
    EXPECT_NE(sim.stats().find("x.count"), nullptr);
    EXPECT_NE(sim.stats().find("y.count"), nullptr);
}

TEST(Simulation, RunWithLimit)
{
    Simulation sim;
    auto *a = sim.create<Widget>("a", 10);
    auto *b = sim.create<Widget>("b", 1000);
    sim.run(100);
    EXPECT_TRUE(a->fired);
    EXPECT_FALSE(b->fired);
}

TEST(SimulationDeathTest, EmptyNamePanics)
{
    Simulation sim;
    EXPECT_DEATH(sim.create<Widget>("", 1), "requires a name");
}

/**
 * @file
 * Unit tests for domain-sharded (conservative-window PDES) simulation:
 * build-domain scoping, cross-domain message windows, canonical barrier
 * ordering, and the bitwise pooled-vs-serial determinism bar.
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulation.hh"
#include "util/string_utils.hh"

using namespace ena;

namespace {

constexpr Tick kLatency = 500;

/** Commutative ping-pong node: counters and checksums only, so any
 *  correct execution produces an identical stat dump. */
class Pinger : public SimObject
{
  public:
    Pinger(Simulation &sim, const std::string &name, int index,
           int rounds)
        : SimObject(sim, name), index_(index), rounds_(rounds),
          tickEv_([this] { tick(); }, name + ".tick"),
          statTicks_(sim.stats(), name + ".ticks", "local ticks"),
          statRecv_(sim.stats(), name + ".recv", "messages received"),
          statSum_(sim.stats(), name + ".sum", "payload checksum")
    {
    }

    void setPeer(Pinger *p) { peer_ = p; }

    void
    startup() override
    {
        schedule(tickEv_, 50 + 10 * index_);
    }

    void
    receive(std::uint64_t v)
    {
        ++statRecv_;
        statSum_ += static_cast<double>(v % 101);
    }

  private:
    void
    tick()
    {
        ++count_;
        ++statTicks_;
        if (peer_) {
            std::uint64_t v = count_ * 13ull + index_;
            Pinger *p = peer_;
            sim().postCrossDomain(
                p->domain(), curTick() + kLatency + count_ % 3 * 10,
                [p, v] { p->receive(v); }, "ping");
        }
        if (count_ < rounds_)
            schedule(tickEv_, 40 + (count_ + index_) % 5 * 20);
    }

    int index_;
    int rounds_;
    int count_ = 0;
    Pinger *peer_ = nullptr;
    EventFunctionWrapper tickEv_;
    StatScalar statTicks_;
    StatScalar statRecv_;
    StatScalar statSum_;
};

struct PingRun
{
    std::string dump;
    std::uint64_t events = 0;
    Tick finalTick = 0;
    std::uint64_t windows = 0;
};

PingRun
runPingers(int domains, bool serial_windows, int nodes = 6,
           int rounds = 200, int slices = 1)
{
    Simulation sim;
    if (domains > 1) {
        sim.setDomains(domains);
        sim.setLookahead(kLatency);
        sim.setSerialWindows(serial_windows);
    }
    std::vector<Pinger *> ps;
    for (int i = 0; i < nodes; ++i) {
        Simulation::DomainScope scope(sim,
                                      domains > 1 ? i % domains : 0);
        ps.push_back(
            sim.create<Pinger>(strformat("p%d", i), i, rounds));
    }
    for (int i = 0; i < nodes; ++i)
        ps[i]->setPeer(ps[(i + 1) % nodes]);

    PingRun r;
    if (slices <= 1) {
        r.events = sim.run();
    } else {
        // Fixed horizon sliced into bounded runs plus a final drain.
        const Tick horizon = 60000;
        for (int s = 1; s <= slices; ++s)
            r.events += sim.run(horizon * s / slices);
        r.events += sim.run();
    }
    r.finalTick = sim.curTick();
    r.windows = sim.windowsRun();
    std::ostringstream ss;
    sim.stats().dump(ss);
    r.dump = ss.str();
    return r;
}

/** Receiver that logs payloads in arrival order (order-sensitive, for
 *  the canonical-barrier-order test). */
class Collector : public SimObject
{
  public:
    Collector(Simulation &sim, const std::string &name)
        : SimObject(sim, name)
    {
    }

    std::vector<int> log;
};

/** Fires once and posts payloads to a Collector in another domain. */
class Emitter : public SimObject
{
  public:
    Emitter(Simulation &sim, const std::string &name, Collector *to,
            Tick when, Tick arrival, std::vector<int> payloads)
        : SimObject(sim, name), to_(to), arrival_(arrival),
          payloads_(std::move(payloads)),
          fireEv_([this] { fire(); }, name + ".fire"), when_(when)
    {
    }

    void
    startup() override
    {
        schedule(fireEv_, when_);
    }

  private:
    void
    fire()
    {
        for (int v : payloads_) {
            Collector *c = to_;
            sim().postCrossDomain(c->domain(), arrival_,
                                  [c, v] { c->log.push_back(v); },
                                  "emit");
        }
    }

    Collector *to_;
    Tick arrival_;
    std::vector<int> payloads_;
    EventFunctionWrapper fireEv_;
    Tick when_;
};

} // anonymous namespace

TEST(SimDomains, DomainScopeAssignsBuildDomain)
{
    Simulation sim;
    sim.setDomains(3);
    EXPECT_EQ(sim.numDomains(), 3);
    auto *a = sim.create<Collector>("a");
    EXPECT_EQ(a->domain(), 0);
    {
        Simulation::DomainScope scope(sim, 2);
        auto *b = sim.create<Collector>("b");
        EXPECT_EQ(b->domain(), 2);
        {
            Simulation::DomainScope inner(sim, 1);
            EXPECT_EQ(sim.create<Collector>("c")->domain(), 1);
        }
        // Nested scope restores the enclosing domain.
        EXPECT_EQ(sim.create<Collector>("d")->domain(), 2);
    }
    EXPECT_EQ(sim.create<Collector>("e")->domain(), 0);
}

TEST(SimDomains, ObjectsUseTheirDomainQueue)
{
    Simulation sim;
    sim.setDomains(2);
    sim.setLookahead(kLatency);
    auto *a = sim.create<Collector>("a");
    Simulation::DomainScope scope(sim, 1);
    auto *b = sim.create<Collector>("b");
    EXPECT_EQ(&a->eventq(), &sim.eventq(0));
    EXPECT_EQ(&b->eventq(), &sim.eventq(1));
    EXPECT_NE(&a->eventq(), &b->eventq());
}

TEST(SimDomains, SingleDomainStaysOnLegacyPath)
{
    PingRun r = runPingers(1, false);
    EXPECT_EQ(r.windows, 0u); // never entered the windowed scheduler
    EXPECT_GT(r.events, 0u);
}

TEST(SimDomains, PooledBitIdenticalToSerialWindows)
{
    // The determinism bar: thread interleaving can never change any
    // stat. Compare the full dump bitwise at several domain counts.
    for (int d : {2, 3, 6}) {
        PingRun pooled = runPingers(d, false);
        PingRun serial = runPingers(d, true);
        EXPECT_EQ(pooled.dump, serial.dump) << "domains=" << d;
        EXPECT_EQ(pooled.events, serial.events) << "domains=" << d;
        EXPECT_EQ(pooled.finalTick, serial.finalTick) << "domains=" << d;
        EXPECT_GT(pooled.windows, 0u);
    }
}

TEST(SimDomains, CommutativeWorkloadMatchesSingleQueue)
{
    // With order-insensitive receivers the sharded runs must also
    // reproduce the plain serial kernel exactly.
    PingRun ref = runPingers(1, false);
    for (int d : {2, 3, 6}) {
        PingRun sharded = runPingers(d, false);
        EXPECT_EQ(sharded.dump, ref.dump) << "domains=" << d;
        EXPECT_EQ(sharded.events, ref.events) << "domains=" << d;
    }
}

TEST(SimDomains, SlicedRunMatchesUnslicedRun)
{
    // Bounded windowed runs settle every domain clock on the limit, so
    // stitching slices together is invisible to the model.
    PingRun whole = runPingers(4, false);
    PingRun sliced = runPingers(4, false, 6, 200, 5);
    EXPECT_EQ(sliced.dump, whole.dump);
    EXPECT_EQ(sliced.events, whole.events);
}

TEST(SimDomains, BarrierMergesInCanonicalOrder)
{
    // Two emitters in different domains post same-tick messages to one
    // collector; the barrier must order them by (src, seq), not by
    // which window happened to finish first.
    Simulation sim;
    sim.setDomains(3);
    sim.setLookahead(100);
    auto *c = sim.create<Collector>("c");
    {
        Simulation::DomainScope scope(sim, 2);
        sim.create<Emitter>("e2", c, Tick(10), Tick(400),
                            std::vector<int>{20, 21});
    }
    {
        Simulation::DomainScope scope(sim, 1);
        sim.create<Emitter>("e1", c, Tick(10), Tick(400),
                            std::vector<int>{10, 11});
    }
    sim.run();
    EXPECT_EQ(c->log, (std::vector<int>{10, 11, 20, 21}));
}

TEST(SimDomains, PostOutsideWindowSchedulesDirectly)
{
    Simulation sim;
    sim.setDomains(2);
    sim.setLookahead(100);
    auto *c = sim.create<Collector>("c");
    // No window in flight: arrival below the lookahead is fine.
    sim.postCrossDomain(0, 5, [c] { c->log.push_back(1); }, "direct");
    EXPECT_EQ(sim.executingDomain(), 0);
    sim.run();
    EXPECT_EQ(c->log, std::vector<int>{1});
}

TEST(SimDomainsDeathTest, SetDomainsAfterObjectsPanics)
{
    Simulation sim;
    sim.create<Collector>("c");
    EXPECT_DEATH(sim.setDomains(2), "precede object creation");
}

TEST(SimDomainsDeathTest, MultiDomainRunNeedsLookahead)
{
    Simulation sim;
    sim.setDomains(2);
    sim.setSerialWindows(true);
    auto *c = sim.create<Collector>("c");
    c->eventq().scheduleLambda(10, [] {});
    EXPECT_DEATH(sim.run(), "setLookahead");
}

TEST(SimDomainsDeathTest, LookaheadViolationIsFatal)
{
    Simulation sim;
    sim.setDomains(2);
    sim.setLookahead(1000);
    sim.setSerialWindows(true); // keep the death single-threaded
    auto *c = sim.create<Collector>("c");
    Simulation::DomainScope scope(sim, 1);
    sim.create<Emitter>("e", c, Tick(10), Tick(11),
                        std::vector<int>{1});
    EXPECT_DEATH(sim.run(), "violates the lookahead");
}

/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, rescheduling,
 * descheduling, lambda events, and run limits.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event.hh"

using namespace ena;

namespace {

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::vector<int> &log, int id)
        : log_(log), id_(id)
    {}

    void process() override { log_.push_back(id_); }

  private:
    std::vector<int> &log_;
    int id_;
};

} // anonymous namespace

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    RecordingEvent c(log, 3);
    q.schedule(&b, 20);
    q.schedule(&a, 10);
    q.schedule(&c, 30);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    RecordingEvent c(log, 3);
    q.schedule(&a, 5);
    q.schedule(&b, 5);
    q.schedule(&c, 5);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, DescheduleSkipsEvent)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.reschedule(&a, 30);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(q.curTick(), 30u);
}

TEST(EventQueue, LambdaEventsSelfDelete)
{
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        q.scheduleLambda(static_cast<Tick>(i), [&fired] { ++fired; });
    q.run();
    EXPECT_EQ(fired, 10);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunLimitStopsEarly)
{
    EventQueue q;
    int fired = 0;
    q.scheduleLambda(10, [&fired] { ++fired; });
    q.scheduleLambda(100, [&fired] { ++fired; });
    std::uint64_t n = q.run(50);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            q.scheduleLambda(q.curTick() + 10, chain);
    };
    q.scheduleLambda(0, chain);
    q.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.curTick(), 40u);
}

TEST(EventQueue, SelfReschedulingEvent)
{
    EventQueue q;
    struct Periodic : Event
    {
        EventQueue &q;
        int count = 0;
        explicit Periodic(EventQueue &queue) : q(queue) {}
        void
        process() override
        {
            if (++count < 3)
                q.schedule(this, q.curTick() + 100);
        }
    } ev(q);
    q.schedule(&ev, 0);
    q.run();
    EXPECT_EQ(ev.count, 3);
    EXPECT_EQ(q.curTick(), 200u);
}

TEST(EventQueue, NextTickAndEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    q.scheduleLambda(42, [] {});
    EXPECT_FALSE(q.empty());
    EXPECT_EQ(q.nextTick(), 42u);
}

TEST(EventQueue, EventsProcessedCounter)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i)
        q.scheduleLambda(static_cast<Tick>(i), [] {});
    q.run();
    EXPECT_EQ(q.eventsProcessed(), 7u);
}

TEST(EventQueue, PendingLambdasFreedOnDestruction)
{
    // Covered by ASan/valgrind runs; functionally just must not crash.
    auto *q = new EventQueue;
    q->scheduleLambda(1000, [] {});
    delete q;
    SUCCEED();
}

TEST(EventQueue, DescheduledLambdaFreedOnDestruction)
{
    // Regression: a self-deleting wrapper that was descheduled never
    // fires, so only the queue destructor can free it. Leak checked
    // under ASan.
    auto *q = new EventQueue;
    EventFunctionWrapper *ev = q->scheduleLambda(1000, [] {});
    q->deschedule(ev);
    delete q;
    SUCCEED();
}

TEST(EventQueue, RescheduledLambdaFreedOnceOnDestruction)
{
    // A rescheduled event leaves lazily-deleted heap entries behind;
    // the destructor must free the wrapper exactly once even when it
    // appears in several entries (double-free checked under ASan).
    auto *q = new EventQueue;
    EventFunctionWrapper *ev = q->scheduleLambda(10, [] {});
    q->reschedule(ev, 30);
    q->reschedule(ev, 50);
    delete q;
    SUCCEED();
}

TEST(EventQueue, DescheduledLambdaCanBeRescheduled)
{
    EventQueue q;
    int fired = 0;
    EventFunctionWrapper *ev = q.scheduleLambda(10, [&] { ++fired; });
    q.deschedule(ev);
    q.schedule(ev, 20);
    q.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.curTick(), 20u);
}

TEST(EventQueue, BoundedRunAdvancesToLimit)
{
    // run(limit) simulates the whole window [0, limit]: the clock must
    // land on the limit even when the last event fires earlier or the
    // queue is empty, so windowed callers can stitch runs together.
    EventQueue q;
    int fired = 0;
    q.scheduleLambda(10, [&] { ++fired; });
    q.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.curTick(), 50u);
    q.run(80); // empty window
    EXPECT_EQ(q.curTick(), 80u);
    q.scheduleLambda(90, [&] { ++fired; });
    q.run(90); // event exactly on the limit is inside the window
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.curTick(), 90u);
}

TEST(EventQueue, UnboundedRunStaysAtLastEvent)
{
    EventQueue q;
    q.scheduleLambda(25, [] {});
    q.run();
    EXPECT_EQ(q.curTick(), 25u);
}

TEST(EventQueue, SegmentedRunMatchesSingleRun)
{
    // Executing [0,90] as three windows must be indistinguishable from
    // one bounded run: same event order, same clock, same count. The
    // self-rescheduling closure lives in a caller-owned slot (capturing
    // an owning handle to itself would leak a reference cycle).
    auto build = [](EventQueue &q, std::vector<Tick> &log,
                    std::function<void()> &chain) {
        chain = [&q, &log, &chain] {
            log.push_back(q.curTick());
            if (q.curTick() < 84)
                q.scheduleLambda(q.curTick() + 7, chain);
        };
        q.scheduleLambda(0, chain);
    };

    EventQueue segmented;
    std::vector<Tick> seg_log;
    std::function<void()> seg_chain;
    build(segmented, seg_log, seg_chain);
    segmented.run(30);
    EXPECT_EQ(segmented.curTick(), 30u);
    segmented.run(60);
    segmented.run(90);

    EventQueue single;
    std::vector<Tick> single_log;
    std::function<void()> single_chain;
    build(single, single_log, single_chain);
    single.run(90);

    EXPECT_EQ(seg_log, single_log);
    EXPECT_EQ(segmented.curTick(), single.curTick());
    EXPECT_EQ(segmented.eventsProcessed(), single.eventsProcessed());
}

TEST(EventQueue, NextTickOrFallback)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextTickOr(123), 123u);
    q.scheduleLambda(10, [] {});
    EXPECT_EQ(q.nextTickOr(123), 10u);
}

TEST(EventQueue, NextTickSkimsDescheduledTop)
{
    EventQueue q;
    EventFunctionWrapper a([] {});
    EventFunctionWrapper b([] {});
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.deschedule(&a);
    EXPECT_EQ(q.nextTick(), 20u);
    EXPECT_EQ(q.nextTickOr(999), 20u);
    q.deschedule(&b);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextTickOr(999), 999u);
}

TEST(EventQueue, AdvanceToIsForwardOnly)
{
    EventQueue q;
    q.scheduleLambda(10, [] {});
    q.run();
    q.advanceTo(40);
    EXPECT_EQ(q.curTick(), 40u);
    q.advanceTo(20); // never moves backwards
    EXPECT_EQ(q.curTick(), 40u);
}

TEST(EventQueueDeathTest, SchedulingInPastPanics)
{
    EventQueue q;
    q.scheduleLambda(100, [] {});
    q.run();
    EXPECT_DEATH(q.scheduleLambda(50, [] {}), "in the past");
}

TEST(EventQueueDeathTest, DoubleSchedulePanics)
{
    EventQueue q;
    EventFunctionWrapper ev([] {});
    q.schedule(&ev, 10);
    EXPECT_DEATH(q.schedule(&ev, 20), "already scheduled");
    q.deschedule(&ev);
}

TEST(EventQueueDeathTest, DescheduleUnscheduledPanics)
{
    EventQueue q;
    EventFunctionWrapper ev([] {});
    EXPECT_DEATH(q.deschedule(&ev), "unscheduled");
}

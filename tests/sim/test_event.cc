/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, rescheduling,
 * descheduling, lambda events, and run limits.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/event.hh"

using namespace ena;

namespace {

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::vector<int> &log, int id)
        : log_(log), id_(id)
    {}

    void process() override { log_.push_back(id_); }

  private:
    std::vector<int> &log_;
    int id_;
};

} // anonymous namespace

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    RecordingEvent c(log, 3);
    q.schedule(&b, 20);
    q.schedule(&a, 10);
    q.schedule(&c, 30);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    RecordingEvent c(log, 3);
    q.schedule(&a, 5);
    q.schedule(&b, 5);
    q.schedule(&c, 5);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, DescheduleSkipsEvent)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.reschedule(&a, 30);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(q.curTick(), 30u);
}

TEST(EventQueue, LambdaEventsSelfDelete)
{
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        q.scheduleLambda(static_cast<Tick>(i), [&fired] { ++fired; });
    q.run();
    EXPECT_EQ(fired, 10);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunLimitStopsEarly)
{
    EventQueue q;
    int fired = 0;
    q.scheduleLambda(10, [&fired] { ++fired; });
    q.scheduleLambda(100, [&fired] { ++fired; });
    std::uint64_t n = q.run(50);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            q.scheduleLambda(q.curTick() + 10, chain);
    };
    q.scheduleLambda(0, chain);
    q.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.curTick(), 40u);
}

TEST(EventQueue, SelfReschedulingEvent)
{
    EventQueue q;
    struct Periodic : Event
    {
        EventQueue &q;
        int count = 0;
        explicit Periodic(EventQueue &queue) : q(queue) {}
        void
        process() override
        {
            if (++count < 3)
                q.schedule(this, q.curTick() + 100);
        }
    } ev(q);
    q.schedule(&ev, 0);
    q.run();
    EXPECT_EQ(ev.count, 3);
    EXPECT_EQ(q.curTick(), 200u);
}

TEST(EventQueue, NextTickAndEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    q.scheduleLambda(42, [] {});
    EXPECT_FALSE(q.empty());
    EXPECT_EQ(q.nextTick(), 42u);
}

TEST(EventQueue, EventsProcessedCounter)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i)
        q.scheduleLambda(static_cast<Tick>(i), [] {});
    q.run();
    EXPECT_EQ(q.eventsProcessed(), 7u);
}

TEST(EventQueue, PendingLambdasFreedOnDestruction)
{
    // Covered by ASan/valgrind runs; functionally just must not crash.
    auto *q = new EventQueue;
    q->scheduleLambda(1000, [] {});
    delete q;
    SUCCEED();
}

TEST(EventQueueDeathTest, SchedulingInPastPanics)
{
    EventQueue q;
    q.scheduleLambda(100, [] {});
    q.run();
    EXPECT_DEATH(q.scheduleLambda(50, [] {}), "in the past");
}

TEST(EventQueueDeathTest, DoubleSchedulePanics)
{
    EventQueue q;
    EventFunctionWrapper ev([] {});
    q.schedule(&ev, 10);
    EXPECT_DEATH(q.schedule(&ev, 20), "already scheduled");
    q.deschedule(&ev);
}

TEST(EventQueueDeathTest, DescheduleUnscheduledPanics)
{
    EventQueue q;
    EventFunctionWrapper ev([] {});
    EXPECT_DEATH(q.deschedule(&ev), "unscheduled");
}

/**
 * @file
 * Unit tests for the statistics package.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/stats.hh"

using namespace ena;

TEST(Stats, ScalarAccumulates)
{
    StatRegistry reg;
    StatScalar s(reg, "test.count", "a counter");
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.set(10.0);
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, RegistryLookupAndValue)
{
    StatRegistry reg;
    StatScalar s(reg, "a.b", "x");
    s += 4.0;
    EXPECT_EQ(reg.find("a.b"), &s);
    EXPECT_EQ(reg.find("nope"), nullptr);
    EXPECT_DOUBLE_EQ(reg.value("a.b"), 4.0);
}

TEST(Stats, StatsDeregisterOnDestruction)
{
    StatRegistry reg;
    {
        StatScalar s(reg, "temp", "x");
        EXPECT_EQ(reg.size(), 1u);
    }
    EXPECT_EQ(reg.size(), 0u);
    // Name is reusable afterwards.
    StatScalar again(reg, "temp", "y");
    EXPECT_EQ(reg.size(), 1u);
}

TEST(StatsDeathTest, DuplicateNameIsFatal)
{
    StatRegistry reg;
    StatScalar a(reg, "dup", "x");
    EXPECT_EXIT({ StatScalar b(reg, "dup", "y"); },
                testing::ExitedWithCode(1), "duplicate stat");
}

TEST(Stats, DistributionBuckets)
{
    StatRegistry reg;
    StatDistribution d(reg, "lat", "latency", 0.0, 100.0, 10);
    d.sample(5.0);    // bucket 0
    d.sample(15.0);   // bucket 1
    d.sample(15.0);
    d.sample(99.9);   // bucket 9
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.buckets()[1], 2u);
    EXPECT_EQ(d.buckets()[9], 1u);
    EXPECT_NEAR(d.mean(), (5.0 + 15.0 + 15.0 + 99.9) / 4.0, 1e-9);
    EXPECT_DOUBLE_EQ(d.minSample(), 5.0);
    EXPECT_DOUBLE_EQ(d.maxSample(), 99.9);
}

TEST(Stats, DistributionOverUnderflow)
{
    StatRegistry reg;
    StatDistribution d(reg, "d", "x", 0.0, 10.0, 5);
    d.sample(-1.0);
    d.sample(10.0);   // hi is exclusive
    d.sample(100.0);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 2u);
}

TEST(Stats, DistributionWeightedSamples)
{
    StatRegistry reg;
    StatDistribution d(reg, "d", "x", 0.0, 10.0, 5);
    d.sample(5.0, 10);
    EXPECT_EQ(d.samples(), 10u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
}

TEST(Stats, DistributionReset)
{
    StatRegistry reg;
    StatDistribution d(reg, "d", "x", 0.0, 10.0, 5);
    d.sample(5.0);
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_EQ(d.buckets()[2], 0u);
}

TEST(Stats, FormulaEvaluatesOnDemand)
{
    StatRegistry reg;
    StatScalar hits(reg, "hits", "x");
    StatScalar total(reg, "total", "x");
    StatFormula rate(reg, "rate", "hit rate", [&] {
        return total.value() > 0.0 ? hits.value() / total.value() : 0.0;
    });
    EXPECT_DOUBLE_EQ(rate.value(), 0.0);
    hits += 3;
    total += 4;
    EXPECT_DOUBLE_EQ(rate.value(), 0.75);
    EXPECT_DOUBLE_EQ(reg.value("rate"), 0.75);
}

TEST(Stats, DumpContainsAllStats)
{
    StatRegistry reg;
    StatScalar a(reg, "z.last", "last stat");
    StatScalar b(reg, "a.first", "first stat");
    a += 1;
    b += 2;
    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    // Sorted order: a.first before z.last.
    EXPECT_LT(out.find("a.first"), out.find("z.last"));
    EXPECT_NE(out.find("# first stat"), std::string::npos);
}

TEST(Stats, ResetAll)
{
    StatRegistry reg;
    StatScalar a(reg, "a", "x");
    StatScalar b(reg, "b", "x");
    a += 5;
    b += 7;
    reg.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Stats, DistributionIgnoresZeroCountSamples)
{
    // Regression: sample(v, 0) must contribute nothing — before the
    // fix it poisoned min/max (and the overflow bucket) with a value
    // no real sample ever took.
    StatRegistry reg;
    StatDistribution d(reg, "d", "x", 0.0, 100.0, 10);
    d.sample(5000.0, 0);
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_EQ(d.overflows(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);

    d.sample(5.0, 2);
    d.sample(-3.0, 0); // still ignored after real samples exist
    EXPECT_EQ(d.samples(), 2u);
    EXPECT_DOUBLE_EQ(d.minSample(), 5.0);
    EXPECT_DOUBLE_EQ(d.maxSample(), 5.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
}

TEST(StatsDeathTest, ValueOfMissingStatIsFatal)
{
    StatRegistry reg;
    EXPECT_EXIT(reg.value("ghost"), testing::ExitedWithCode(1),
                "no stat named");
}

/**
 * @file
 * Unit tests for the telemetry metrics registry: counters, gauges,
 * log-scale histogram bin boundaries, and the CSV/JSON dumps.
 */

#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"

using namespace ena;

namespace {

class MetricsTest : public ::testing::Test
{
  protected:
    void SetUp() override { telemetry::reset(); }
    void TearDown() override { telemetry::reset(); }
};

} // anonymous namespace

TEST_F(MetricsTest, CounterAccumulates)
{
    telemetry::Counter &c = telemetry::counter("test.counter", "d");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST_F(MetricsTest, RegistryReturnsSameInstanceByName)
{
    telemetry::Counter &a = telemetry::counter("test.same", "d");
    telemetry::Counter &b = telemetry::counter("test.same");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);
}

TEST_F(MetricsTest, GaugeLastWriteWins)
{
    telemetry::Gauge &g = telemetry::gauge("test.gauge", "d");
    g.set(1.5);
    g.set(-2.25);
    EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST_F(MetricsTest, CounterIsThreadSafe)
{
    telemetry::Counter &c = telemetry::counter("test.mt_counter", "d");
    std::vector<std::thread> ts;
    for (int t = 0; t < 8; ++t) {
        ts.emplace_back([&c] {
            for (int i = 0; i < 1000; ++i)
                c.add();
        });
    }
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(c.value(), 8000u);
}

TEST_F(MetricsTest, HistogramBinBoundaries)
{
    // Bins: [1,2) [2,4) [4,8) [8,16); below 1 underflow, >= 16 overflow.
    telemetry::Histogram &h =
        telemetry::histogram("test.hist_bounds", "d", 1.0, 2.0, 4);
    ASSERT_EQ(h.bins(), 4);
    EXPECT_DOUBLE_EQ(h.binLo(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binHi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binLo(3), 8.0);
    EXPECT_DOUBLE_EQ(h.binHi(3), 16.0);

    EXPECT_EQ(h.binFor(0.5), -1);       // underflow
    EXPECT_EQ(h.binFor(1.0), 0);        // lowest boundary is inclusive
    EXPECT_EQ(h.binFor(1.999), 0);
    EXPECT_EQ(h.binFor(2.0), 1);        // exact boundary -> upper bin
    EXPECT_EQ(h.binFor(4.0), 2);
    EXPECT_EQ(h.binFor(7.999), 2);
    EXPECT_EQ(h.binFor(8.0), 3);
    EXPECT_EQ(h.binFor(15.999), 3);
    EXPECT_EQ(h.binFor(16.0), 4);       // overflow
    EXPECT_EQ(h.binFor(1e9), 4);
}

TEST_F(MetricsTest, HistogramSampleCountsAndExtrema)
{
    telemetry::Histogram &h =
        telemetry::histogram("test.hist_sample", "d", 1.0, 2.0, 4);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);     // no samples yet
    EXPECT_DOUBLE_EQ(h.max(), 0.0);

    h.sample(0.25);                     // underflow
    h.sample(1.5);                      // bin 0
    h.sample(2.0);                      // bin 1
    h.sample(3.0, 2);                   // bin 1, weighted
    h.sample(100.0);                    // overflow

    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 3u);
    EXPECT_EQ(h.binCount(2), 0u);
    EXPECT_DOUBLE_EQ(h.min(), 0.25);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST_F(MetricsTest, HistogramReset)
{
    telemetry::Histogram &h =
        telemetry::histogram("test.hist_reset", "d", 1.0, 2.0, 4);
    h.sample(3.0);
    telemetry::resetMetrics();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.binCount(1), 0u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST_F(MetricsTest, CsvDumpListsEveryMetric)
{
    telemetry::counter("test.csv_counter", "d").add(7);
    telemetry::gauge("test.csv_gauge", "d").set(2.5);
    telemetry::histogram("test.csv_hist", "d", 1.0, 2.0, 4).sample(3.0);

    std::ostringstream os;
    telemetry::writeMetricsCsv(os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("name,type,value"), std::string::npos);
    EXPECT_NE(csv.find("test.csv_counter,counter,7"), std::string::npos);
    EXPECT_NE(csv.find("test.csv_gauge,gauge,2.5"), std::string::npos);
    EXPECT_NE(csv.find("test.csv_hist,histogram_count,1"),
              std::string::npos);
    EXPECT_NE(csv.find("test.csv_hist,histogram_bin[2,4),1"),
              std::string::npos);
}

TEST_F(MetricsTest, JsonDumpIsWellFormedEnoughToGrep)
{
    telemetry::counter("test.json_counter", "d").add(3);
    telemetry::histogram("test.json_hist", "d", 1.0, 2.0, 2).sample(1.0);

    std::ostringstream os;
    telemetry::writeMetricsJson(os);
    const std::string json = os.str();
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"test.json_counter\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
    EXPECT_NE(json.find("\"bins\": [1, 0]"), std::string::npos);
}

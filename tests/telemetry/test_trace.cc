/**
 * @file
 * Unit tests for the scoped-span tracer and the Chrome trace_event
 * exporter. Tracing is enabled with an empty path, so events stay in
 * memory and are inspected through writeTrace().
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "telemetry/telemetry.hh"
#include "util/thread_pool.hh"

using namespace ena;

namespace {

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        telemetry::reset();
        telemetry::disableTracing();
        telemetry::disableMetrics();
    }

    void
    TearDown() override
    {
        telemetry::disableTracing();
        telemetry::disableMetrics();
        telemetry::reset();
    }

    static std::string
    dump()
    {
        std::ostringstream os;
        telemetry::writeTrace(os);
        return os.str();
    }

    static std::size_t
    countOccurrences(const std::string &haystack,
                     const std::string &needle)
    {
        std::size_t n = 0;
        for (std::size_t pos = haystack.find(needle);
             pos != std::string::npos;
             pos = haystack.find(needle, pos + needle.size()))
            ++n;
        return n;
    }
};

} // anonymous namespace

TEST_F(TraceTest, DisabledRecordsNothing)
{
    {
        ENA_SPAN("test", "should_not_appear");
    }
    telemetry::instant("test", "also_not");
    telemetry::traceCounter("test", "nor_this", 1.0);
    EXPECT_EQ(dump().find("should_not_appear"), std::string::npos);
    EXPECT_EQ(dump().find("also_not"), std::string::npos);
    EXPECT_EQ(dump().find("nor_this"), std::string::npos);
}

TEST_F(TraceTest, SpanRecordedAsCompleteEvent)
{
    telemetry::enableTracing();
    {
        ENA_SPAN("testcat", "my_span");
    }
    const std::string json = dump();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"my_span\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"testcat\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST_F(TraceTest, InstantAndCounterEvents)
{
    telemetry::enableTracing();
    telemetry::instant("testcat", "tick");
    telemetry::traceCounter("testcat", "depth", 7.0);
    const std::string json = dump();
    EXPECT_NE(json.find("\"name\":\"tick\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"depth\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"value\":7.000"), std::string::npos);
}

TEST_F(TraceTest, JsonEscapesSpecialCharacters)
{
    telemetry::enableTracing();
    telemetry::instant("testcat", "quote\"back\\slash\nnewline");
    const std::string json = dump();
    EXPECT_NE(json.find("quote\\\"back\\\\slash\\nnewline"),
              std::string::npos);
}

TEST_F(TraceTest, ResetClearsEvents)
{
    telemetry::enableTracing();
    {
        ENA_SPAN("testcat", "gone_after_reset");
    }
    telemetry::reset();
    EXPECT_EQ(dump().find("gone_after_reset"), std::string::npos);
}

TEST_F(TraceTest, NowUsIsMonotonic)
{
    const double a = telemetry::nowUs();
    const double b = telemetry::nowUs();
    EXPECT_GE(b, a);
    EXPECT_GE(a, 0.0);
}

TEST_F(TraceTest, MultithreadedSpansAllMerged)
{
    telemetry::enableTracing();
    constexpr std::size_t kTasks = 64;
    {
        // Scoped so the destructor joins the workers: every thread has
        // definitely registered its name and flushed its spans into the
        // shared buffers before the dump below.
        ThreadPool pool(4);
        pool.parallelFor(kTasks, [](std::size_t) {
            telemetry::ScopedSpan span("testcat", "worker_span");
        });
    }
    const std::string json = dump();
    EXPECT_EQ(countOccurrences(json, "\"worker_span\""), kTasks);
    // Worker threads announce themselves via metadata events.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("ena-worker-0"), std::string::npos);
}

TEST_F(TraceTest, EventsSortedByTimestamp)
{
    telemetry::enableTracing();
    telemetry::instant("testcat", "first");
    telemetry::instant("testcat", "second");
    const std::string json = dump();
    const std::size_t a = json.find("\"first\"");
    const std::size_t b = json.find("\"second\"");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    EXPECT_LT(a, b);
}

TEST_F(TraceTest, TraceIsValidJsonShape)
{
    telemetry::enableTracing();
    {
        ENA_SPAN("testcat", "shape_check");
    }
    const std::string json = dump();
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    // writeTrace ends with a newline after the closing brace.
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    const std::size_t last_brace = json.find_last_of('}');
    ASSERT_NE(last_brace, std::string::npos);
    EXPECT_EQ(countOccurrences(json, "{"), countOccurrences(json, "}"));
    EXPECT_EQ(countOccurrences(json, "["), countOccurrences(json, "]"));
}

/**
 * @file
 * Unit tests for the in-order CPU core timing model.
 */

#include <gtest/gtest.h>

#include "cpu/cpu_core.hh"
#include "sim/simulation.hh"

using namespace ena;

namespace {

double
ipcOf(SerialSectionProfile profile, CpuCoreParams params = {},
      std::uint64_t instructions = 200000)
{
    Simulation sim;
    auto *core = sim.create<CpuCore>("core", params, profile, 17);
    core->execute(instructions);
    sim.run();
    EXPECT_TRUE(core->done());
    EXPECT_EQ(core->instructionsRetired(), instructions);
    return core->ipc();
}

} // anonymous namespace

TEST(CpuCore, PureAluRunsAtOneIpc)
{
    SerialSectionProfile p;
    p.memFraction = 0.0;
    p.branchFraction = 0.0;
    EXPECT_NEAR(ipcOf(p), 1.0, 1e-9);
}

TEST(CpuCore, BranchMispredictionsCostIpc)
{
    SerialSectionProfile clean;
    clean.memFraction = 0.0;
    clean.branchFraction = 0.2;
    clean.branchMissRate = 0.0;
    SerialSectionProfile missy = clean;
    missy.branchMissRate = 0.1;
    double ipc_clean = ipcOf(clean);
    double ipc_missy = ipcOf(missy);
    EXPECT_NEAR(ipc_clean, 1.0, 1e-9);
    // Expected: 1 / (1 + 0.2*0.1*14) = 0.781.
    EXPECT_NEAR(ipc_missy, 0.781, 0.02);
}

TEST(CpuCore, CacheResidentWorkloadOnlyPaysHitLatency)
{
    SerialSectionProfile p;
    p.memFraction = 0.3;
    p.branchFraction = 0.0;
    p.workingSetBytes = 16 << 10;   // fits the 32 KiB L1
    p.spatialLocality = 0.9;
    double ipc = ipcOf(p);
    // 1 + 0.3*(3-1) = 1.6 cycles/inst after warmup -> IPC ~0.625.
    EXPECT_GT(ipc, 0.52);
    EXPECT_LT(ipc, 0.68);
}

TEST(CpuCore, ThrashingWorkingSetTanksIpc)
{
    SerialSectionProfile fits;
    fits.memFraction = 0.3;
    fits.workingSetBytes = 16 << 10;
    SerialSectionProfile thrash = fits;
    thrash.workingSetBytes = 64ull << 20;
    thrash.spatialLocality = 0.1;
    EXPECT_GT(ipcOf(fits), 3.0 * ipcOf(thrash));
}

TEST(CpuCore, HigherClockSameIpcLessTime)
{
    SerialSectionProfile p;
    CpuCoreParams slow;
    slow.clockGhz = 1.0;
    CpuCoreParams fast;
    fast.clockGhz = 2.0;

    Simulation s1;
    auto *c1 = s1.create<CpuCore>("c", slow, p, 5);
    c1->execute(50000);
    s1.run();
    Simulation s2;
    auto *c2 = s2.create<CpuCore>("c", fast, p, 5);
    c2->execute(50000);
    s2.run();

    EXPECT_NEAR(c1->ipc(), c2->ipc(), 1e-9);
    EXPECT_NEAR(static_cast<double>(s1.curTick()) / s2.curTick(), 2.0,
                0.01);
    EXPECT_NEAR(c2->mips() / c1->mips(), 2.0, 1e-6);
}

TEST(CpuCore, DeterministicForSeed)
{
    SerialSectionProfile p;
    Simulation s1;
    auto *c1 = s1.create<CpuCore>("c", CpuCoreParams{}, p, 42);
    c1->execute(10000);
    s1.run();
    Simulation s2;
    auto *c2 = s2.create<CpuCore>("c", CpuCoreParams{}, p, 42);
    c2->execute(10000);
    s2.run();
    EXPECT_DOUBLE_EQ(c1->ipc(), c2->ipc());
    EXPECT_EQ(s1.curTick(), s2.curTick());
}

TEST(CpuCore, ReusableAfterCompletion)
{
    Simulation sim;
    auto *core = sim.create<CpuCore>("c", CpuCoreParams{},
                                     SerialSectionProfile{}, 3);
    core->execute(1000);
    sim.run();
    EXPECT_TRUE(core->done());
    core->execute(1000);
    sim.run();
    EXPECT_EQ(core->instructionsRetired(), 2000u);
}

TEST(CpuCoreDeathTest, DoubleExecutePanics)
{
    Simulation sim;
    auto *core = sim.create<CpuCore>("c", CpuCoreParams{},
                                     SerialSectionProfile{}, 3);
    core->execute(1000);
    EXPECT_DEATH(core->execute(1000), "already busy");
}

/**
 * @file
 * Unit tests for the CPU cluster traffic model and the Amdahl
 * provisioning model.
 */

#include <gtest/gtest.h>

#include "cpu/amdahl.hh"
#include "cpu/cpu_cluster.hh"
#include "gpu/mem_stack_endpoint.hh"
#include "mem/address_map.hh"
#include "mem/hbm_stack.hh"
#include "noc/interposer_network.hh"
#include "noc/topology.hh"
#include "sim/simulation.hh"
#include "util/string_utils.hh"

using namespace ena;

namespace {

struct CpuFixture : testing::Test
{
    Simulation sim;
    Topology topo = Topology::ehp(2, 2);
    AddressMap addrMap{2};
    InterposerNetwork *net = nullptr;
    std::vector<HbmStack *> stacks;

    CpuCluster *
    build(CpuClusterParams cc)
    {
        net = sim.create<InterposerNetwork>("noc", topo,
                                            InterposerParams{});
        for (int i = 0; i < 2; ++i) {
            auto *stack = sim.create<HbmStack>(
                strformat("hbm%d", i),
                HbmParams::forAggregateBandwidth(200.0, 2));
            stacks.push_back(stack);
            sim.create<MemStackEndpoint>(
                strformat("hbm%d.port", i),
                topo.nodeOf(NodeKind::MemStack, i), *stack, *net);
        }
        auto *cpu = sim.create<CpuCluster>(
            "cpu0", topo.nodeOf(NodeKind::CpuCluster, 0), cc, addrMap,
            *net);
        for (int s = 0; s < 2; ++s)
            cpu->setStackNode(s, topo.nodeOf(NodeKind::MemStack, s));
        return cpu;
    }
};

} // anonymous namespace

TEST_F(CpuFixture, GeneratesBoundedTraffic)
{
    CpuClusterParams cc;
    cc.maxAccesses = 100;
    CpuCluster *cpu = build(cc);
    sim.run();
    EXPECT_EQ(cpu->accessesIssued(), 100u);
    // All accesses reached a stack.
    EXPECT_GT(stacks[0]->bytesServed() + stacks[1]->bytesServed(), 0.0);
}

TEST_F(CpuFixture, QuiesceStopsIssuing)
{
    CpuClusterParams cc;
    CpuCluster *cpu = build(cc);
    sim.initAll();
    sim.run(sim.curTick() + 10 * tickPerUs);
    std::uint64_t before = cpu->accessesIssued();
    EXPECT_GT(before, 0u);
    cpu->quiesce();
    sim.run();
    // At most events already in flight complete; no new issues.
    EXPECT_LE(cpu->accessesIssued(), before + 1);
}

TEST_F(CpuFixture, RateScalesWithAccessGap)
{
    CpuClusterParams slow;
    slow.accessNsPerCore = 1600.0;
    slow.maxAccesses = 1u << 30;
    CpuCluster *cpu = build(slow);
    sim.initAll();
    sim.run(sim.curTick() + 50 * tickPerUs);
    double measured = static_cast<double>(cpu->accessesIssued());
    // Expected ~ 50 us / (1600 ns / 16 cores) = 500 accesses.
    EXPECT_NEAR(measured, 500.0, 150.0);
}

TEST(Amdahl, SpeedupMonotonicInCores)
{
    AmdahlModel m(PhaseSplit{});
    double prev = 0.0;
    for (int c : {1, 2, 4, 8, 16, 32}) {
        double s = m.speedup(c);
        EXPECT_GT(s, prev);
        prev = s;
    }
}

TEST(Amdahl, SerialFractionLimitsSpeedup)
{
    PhaseSplit heavy;
    heavy.serialFraction = 0.5;
    PhaseSplit light;
    light.serialFraction = 0.01;
    AmdahlModel mh(heavy);
    AmdahlModel ml(light);
    EXPECT_GT(ml.speedup(32), mh.speedup(32));
}

TEST(Amdahl, DiminishingReturnsJustifyModestCoreCount)
{
    // The EHP provisions 32 CPU cores; the model's knee must land in
    // the same few-tens regime rather than hundreds.
    AmdahlModel m(PhaseSplit{});
    int cores = m.coresForDiminishingReturns(0.05);
    EXPECT_GE(cores, 4);
    EXPECT_LE(cores, 64);
}

TEST(Amdahl, EffectiveTeraflopsScaled)
{
    AmdahlModel m(PhaseSplit{});
    EXPECT_GT(m.effectiveTeraflops(32), 0.0);
}

TEST(AmdahlDeathTest, ZeroCoresPanics)
{
    AmdahlModel m(PhaseSplit{});
    EXPECT_DEATH(m.speedup(0), "at least one core");
}

/**
 * @file
 * Tests for the append-only sweep journal: record round-trips, CRC
 * rejection of corruption, recovery from the torn trailing record a
 * mid-write kill leaves behind, and the ENA_SWEEP_JOURNAL ambient
 * entry point.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/sweep_journal.hh"

using namespace ena;

namespace {

/** A journal path unique to the test, removed on scope exit. */
struct TempJournal
{
    explicit TempJournal(const std::string &name)
        : path("test_sweep_journal_" + name + ".tmp")
    {
        std::remove(path.c_str());
    }
    ~TempJournal() { std::remove(path.c_str()); }

    std::string path;
};

std::unique_ptr<SweepJournal>
mustOpen(const std::string &path)
{
    auto j = SweepJournal::open(path);
    EXPECT_TRUE(j.ok()) << j.status().toString();
    return std::move(j).value();
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

} // anonymous namespace

TEST(JournalDetail, Crc32MatchesTheIeeeCheckValue)
{
    // The canonical CRC-32 check vector.
    EXPECT_EQ(journal_detail::crc32("123456789"), 0xcbf43926u);
    EXPECT_EQ(journal_detail::crc32(""), 0u);
}

TEST(JournalDetail, EscapeRoundTripsControlCharacters)
{
    const std::string nasty = "a\tb\nc\rd\\e";
    const std::string escaped = journal_detail::escape(nasty);
    EXPECT_EQ(escaped.find('\t'), std::string::npos);
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
    std::string back;
    ASSERT_TRUE(journal_detail::unescape(escaped, &back));
    EXPECT_EQ(back, nasty);
}

TEST(JournalDetail, UnescapeRejectsMalformedEscapes)
{
    std::string out;
    EXPECT_FALSE(journal_detail::unescape("dangling\\", &out));
    EXPECT_FALSE(journal_detail::unescape("bad\\q", &out));
    EXPECT_TRUE(journal_detail::unescape("plain", &out));
    EXPECT_EQ(out, "plain");
}

TEST(SweepJournal, OpensEmptyAndAppends)
{
    TempJournal t("empty");
    auto j = mustOpen(t.path);
    EXPECT_EQ(j->loadedRecords(), 0u);
    EXPECT_EQ(j->droppedRecords(), 0u);
    EXPECT_EQ(j->appendedRecords(), 0u);
    EXPECT_EQ(j->path(), t.path);

    std::string payload;
    EXPECT_FALSE(j->lookup("k", &payload));
    j->append("k", "v");
    EXPECT_EQ(j->appendedRecords(), 1u);
    // Appends are visible to the *next* open, not to lookup() — the
    // loaded map is immutable while a sweep runs.
    EXPECT_FALSE(j->lookup("k", &payload));
}

TEST(SweepJournal, RecordsRoundTripAcrossReopen)
{
    TempJournal t("roundtrip");
    {
        auto j = mustOpen(t.path);
        j->append("dse[0]:cu320", "0x1.8p+1 0x1p+0 1 1 ");
        j->append("key with\ttab", "payload\nwith newline");
    }
    auto j = mustOpen(t.path);
    EXPECT_EQ(j->loadedRecords(), 2u);
    EXPECT_EQ(j->droppedRecords(), 0u);
    std::string payload;
    ASSERT_TRUE(j->lookup("dse[0]:cu320", &payload));
    EXPECT_EQ(payload, "0x1.8p+1 0x1p+0 1 1 ");
    ASSERT_TRUE(j->lookup("key with\ttab", &payload));
    EXPECT_EQ(payload, "payload\nwith newline");
}

TEST(SweepJournal, CorruptRecordIsDroppedNotTrusted)
{
    TempJournal t("corrupt");
    {
        auto j = mustOpen(t.path);
        j->append("good", "1");
        j->append("flipped", "2");
    }
    // Flip one payload byte without fixing the CRC.
    std::string data = readAll(t.path);
    auto pos = data.rfind('2');
    ASSERT_NE(pos, std::string::npos);
    data[pos] = '3';
    std::ofstream(t.path, std::ios::binary | std::ios::trunc) << data;

    auto j = mustOpen(t.path);
    EXPECT_EQ(j->loadedRecords(), 1u);
    EXPECT_EQ(j->droppedRecords(), 1u);
    std::string payload;
    EXPECT_TRUE(j->lookup("good", &payload));
    EXPECT_FALSE(j->lookup("flipped", &payload));
}

TEST(SweepJournal, TornTrailingRecordIsDroppedAndRepaired)
{
    TempJournal t("torn");
    {
        auto j = mustOpen(t.path);
        j->append("a", "1");
        j->append("b", "2");
    }
    // Simulate a kill -9 mid-write: cut the last record in half, no
    // trailing newline.
    std::string data = readAll(t.path);
    auto cut = data.find('\n') + 1;
    std::string torn = data.substr(0, cut + (data.size() - cut) / 2);
    std::ofstream(t.path, std::ios::binary | std::ios::trunc) << torn;

    {
        auto j = mustOpen(t.path);
        EXPECT_EQ(j->loadedRecords(), 1u);
        EXPECT_EQ(j->droppedRecords(), 1u);
        // The resumed run recomputes and re-appends the lost point; it
        // must start on a fresh line, not glue onto the torn record.
        j->append("b", "2");
    }
    auto j = mustOpen(t.path);
    EXPECT_EQ(j->loadedRecords(), 2u);
    EXPECT_EQ(j->droppedRecords(), 1u);   // the torn half-line remains
    std::string payload;
    ASSERT_TRUE(j->lookup("b", &payload));
    EXPECT_EQ(payload, "2");
}

TEST(SweepJournal, GarbageLinesDoNotPoisonTheRest)
{
    TempJournal t("garbage");
    {
        auto j = mustOpen(t.path);
        j->append("keep", "me");
    }
    {
        std::ofstream out(t.path, std::ios::app);
        out << "not a record at all\n";
        out << "v1\tzzzz\tbad\tcrc-field\n";
    }
    auto j = mustOpen(t.path);
    EXPECT_EQ(j->loadedRecords(), 1u);
    EXPECT_EQ(j->droppedRecords(), 2u);
}

TEST(SweepJournal, OpenFailsWithIoErrorOnAnUnwritablePath)
{
    auto j = SweepJournal::open("no/such/directory/journal");
    ASSERT_FALSE(j.ok());
    EXPECT_EQ(j.status().code(), ErrorCode::IoError);
    EXPECT_NE(j.status().message().find("no/such/directory/journal"),
              std::string::npos);
}

TEST(SweepJournal, OpenFromEnvironmentHonorsTheVariable)
{
    ASSERT_EQ(unsetenv("ENA_SWEEP_JOURNAL"), 0);
    EXPECT_EQ(SweepJournal::openFromEnvironment(), nullptr);

    TempJournal t("env");
    ASSERT_EQ(setenv("ENA_SWEEP_JOURNAL", t.path.c_str(), 1), 0);
    auto j = SweepJournal::openFromEnvironment();
    ASSERT_NE(j, nullptr);
    EXPECT_EQ(j->path(), t.path);

    // An unusable path degrades to "no journal", it does not kill the
    // sweep.
    ASSERT_EQ(setenv("ENA_SWEEP_JOURNAL", "no/such/dir/j", 1), 0);
    EXPECT_EQ(SweepJournal::openFromEnvironment(), nullptr);
    ASSERT_EQ(unsetenv("ENA_SWEEP_JOURNAL"), 0);
}

/**
 * @file
 * Tests of the combined perf+power evaluator.
 */

#include <gtest/gtest.h>

#include "core/node_evaluator.hh"

using namespace ena;

TEST(NodeEvaluator, EvaluateAllCoversCatalog)
{
    NodeEvaluator eval;
    auto all = eval.evaluateAll(NodeConfig::bestMean());
    ASSERT_EQ(all.size(), 8u);
    for (size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i].app, allApps()[i]);
}

TEST(NodeEvaluator, TeraflopsAndEfficiencyHelpers)
{
    NodeEvaluator eval;
    EvalResult r = eval.evaluate(NodeConfig::bestMean(), App::CoMD);
    EXPECT_NEAR(r.teraflops(), r.perf.flops / 1e12, 1e-12);
    EXPECT_NEAR(r.perfPerWatt(), r.perf.flops / r.power.total(), 1e-6);
}

TEST(NodeEvaluator, MeanAndMaxBudgetPowerOrdering)
{
    NodeEvaluator eval;
    NodeConfig cfg = NodeConfig::bestMean();
    double mean_p = eval.meanBudgetPower(cfg);
    double max_p = eval.maxBudgetPower(cfg);
    EXPECT_GE(max_p, mean_p);
    // Every per-app value is bounded by the max.
    for (App app : allApps()) {
        EXPECT_LE(eval.evaluate(cfg, app).power.budgetPower(),
                  max_p + 1e-9);
    }
}

TEST(NodeEvaluator, GeomeanBetweenMinAndMax)
{
    NodeEvaluator eval;
    NodeConfig cfg = NodeConfig::bestMean();
    double g = eval.geomeanFlops(cfg);
    double lo = 1e30;
    double hi = 0.0;
    for (App app : allApps()) {
        double f = eval.evaluate(cfg, app).perf.flops;
        lo = std::min(lo, f);
        hi = std::max(hi, f);
    }
    EXPECT_GE(g, lo);
    EXPECT_LE(g, hi);
}

TEST(NodeEvaluator, MemoryAppsDrawLessCuPower)
{
    NodeEvaluator eval;
    NodeConfig cfg = NodeConfig::bestMean();
    double mf = eval.evaluate(cfg, App::MaxFlops).power.cuDyn;
    double xs = eval.evaluate(cfg, App::XSBench).power.cuDyn;
    EXPECT_GT(mf, 2.0 * xs);
}

TEST(NodeEvaluator, ComputeAppsDrawLessMemoryPower)
{
    NodeEvaluator eval;
    NodeConfig cfg = NodeConfig::bestMean();
    double mf = eval.evaluate(cfg, App::MaxFlops).power.hbmDyn;
    double mini = eval.evaluate(cfg, App::MiniAMR).power.hbmDyn;
    EXPECT_LT(mf, 0.1 * mini);
}

TEST(NodeEvaluator, DeterministicAcrossCalls)
{
    NodeEvaluator eval;
    EvalResult a = eval.evaluate(NodeConfig::bestMean(), App::SNAP);
    EvalResult b = eval.evaluate(NodeConfig::bestMean(), App::SNAP);
    EXPECT_DOUBLE_EQ(a.perf.flops, b.perf.flops);
    EXPECT_DOUBLE_EQ(a.power.total(), b.power.total());
}

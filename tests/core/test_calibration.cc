/**
 * @file
 * Calibration-anchor tests: these pin the headline numbers the
 * reproduction must match from the paper. A model or constant change
 * that breaks an anchor fails here, with the paper reference in the
 * test name/comment.
 */

#include <gtest/gtest.h>

#include "core/ena.hh"

using namespace ena;

namespace {

const NodeEvaluator &
evaluator()
{
    static NodeEvaluator eval;
    return eval;
}

} // anonymous namespace

TEST(Calibration, MaxFlopsReaches18p6TeraflopsAt320Cus)
{
    // Paper Section V-F: "With 320 CUs per ENA, we expect to reach up
    // to 18.6 double-precision teraflops per ENA".
    NodeConfig cfg;
    cfg.cus = 320;
    cfg.freqGhz = 1.0;
    cfg.bwTbs = 1.0;
    EvalResult r = evaluator().evaluate(cfg, App::MaxFlops);
    EXPECT_NEAR(r.teraflops(), 18.6, 0.2);
}

TEST(Calibration, SystemReaches1p86Exaflops)
{
    // Paper: "1.86 double-precision exaflops with a total of 100,000
    // ENA nodes".
    ExascaleProjector proj(evaluator());
    NodeConfig cfg;
    cfg.bwTbs = 1.0;
    EXPECT_NEAR(proj.systemExaflops(cfg, App::MaxFlops), 1.86, 0.02);
}

TEST(Calibration, PeakComputePowerNear11MW)
{
    // Paper: "This scenario consumes 11.1 MW of power" (peak-compute,
    // package scope). Allow +-15%: our substrate is a model, not the
    // authors' testbed.
    ExascaleProjector proj(evaluator());
    NodeConfig cfg;
    cfg.bwTbs = 1.0;
    double mw = proj.systemMw(cfg, App::MaxFlops);
    EXPECT_NEAR(mw, 11.1, 11.1 * 0.15);
}

TEST(Calibration, DseDiscoversPaperBestMeanConfig)
{
    // Paper Section V: "utilizing a total of 320 CUs at 1 GHz with
    // 3 TB/s of memory bandwidth achieves the best performance ...
    // under the ENA-node power budget of 160W".
    NodeConfig best = discoveredBestMean(evaluator());
    EXPECT_EQ(best.cus, 320);
    EXPECT_DOUBLE_EQ(best.freqGhz, 1.0);
    EXPECT_DOUBLE_EQ(best.bwTbs, 3.0);
}

TEST(Calibration, BestMeanSitsNearTheBudgetEdge)
{
    double w = evaluator().maxBudgetPower(NodeConfig::bestMean());
    EXPECT_LE(w, cal::nodePowerBudgetW);
    EXPECT_GT(w, cal::nodePowerBudgetW - 6.0);
}

TEST(Calibration, OptimizedBestMeanUsesFreedPower)
{
    // Paper Fig. 13: with the power optimizations the best-mean moves
    // to a higher-performing configuration (paper: 288 CUs/1100 MHz/
    // 3 TB/s; our model lands on a nearby higher-throughput point).
    NodeConfig opt = optimizedBestMean(evaluator());
    double base_perf =
        evaluator().geomeanFlops(NodeConfig::bestMean());
    NodeConfig opt_copy = opt;
    opt_copy.opts = PowerOptConfig::all();
    EXPECT_GT(evaluator().geomeanFlops(opt_copy), base_perf);
}

TEST(Calibration, ExternalMemoryPowerBandFromFig9)
{
    // Paper Finding 1 (Fig. 9): external power (static+dynamic) spans
    // roughly 40-70 W across kernels for the DRAM-only config.
    for (App app : allApps()) {
        EvalResult r =
            evaluator().evaluate(NodeConfig::bestMean(), app);
        double ext = r.power.externalPower();
        EXPECT_GE(ext, 30.0) << appName(app);
        EXPECT_LE(ext, 75.0) << appName(app);
    }
}

TEST(Calibration, HybridDoublesPowerForMemoryHeavyApps)
{
    // Paper Finding 2 (Fig. 9): with NVM, total power of the memory-
    // heavy applications increases by as much as ~2x.
    NodeConfig hybrid = NodeConfig::bestMean();
    hybrid.ext = ExtMemConfig::hybrid();
    double worst = 0.0;
    for (App app : allApps()) {
        double base = evaluator()
                          .evaluate(NodeConfig::bestMean(), app)
                          .power.total();
        double with_nvm =
            evaluator().evaluate(hybrid, app).power.total();
        worst = std::max(worst, with_nvm / base);
        EXPECT_GE(with_nvm + 1e-9, 0.9 * base) << appName(app);
    }
    EXPECT_GT(worst, 1.7);
    EXPECT_LT(worst, 2.4);
}

TEST(Calibration, HybridSavesPowerForComputeApps)
{
    // Paper: the hybrid's lower static power helps the less memory-
    // intensive applications (MaxFlops class).
    NodeConfig hybrid = NodeConfig::bestMean();
    hybrid.ext = ExtMemConfig::hybrid();
    double base = evaluator()
                      .evaluate(NodeConfig::bestMean(), App::MaxFlops)
                      .power.total();
    double with_nvm =
        evaluator().evaluate(hybrid, App::MaxFlops).power.total();
    EXPECT_LT(with_nvm, base);
}

TEST(Calibration, CombinedPowerOptSavingsInPaperBand)
{
    // Paper Fig. 12: 13-27% savings with all techniques together
    // (we accept a slightly wider band).
    for (App app : allApps()) {
        EvalResult r =
            evaluator().evaluate(NodeConfig::bestMean(), app);
        auto savings =
            evaluateOptSavings(evaluator().powerModel(),
                               NodeConfig::bestMean(),
                               r.perf.activity);
        double all = savings.back().savingsFrac;
        EXPECT_GE(all, 0.10) << appName(app);
        EXPECT_LE(all, 0.27) << appName(app);
    }
}

TEST(Calibration, TableIIBenefitsArePositiveAndBounded)
{
    DesignSpaceExplorer dse(evaluator(), DseGrid::paperGrid(),
                            cal::nodePowerBudgetW);
    auto rows = dse.tableII(discoveredBestMean(evaluator()));
    ASSERT_EQ(rows.size(), 8u);
    for (const TableIIRow &row : rows) {
        EXPECT_GE(row.benefitNoOptPct, -0.01) << appName(row.app);
        EXPECT_LE(row.benefitNoOptPct, 60.0) << appName(row.app);
        EXPECT_GE(row.benefitWithOptPct, row.benefitNoOptPct - 0.01)
            << appName(row.app);
    }
}

TEST(Calibration, MemoryAppsReconfigureToFewerCus)
{
    // Paper Table II: LULESH/MiniAMR/XSBench optima back off the CU
    // count (224-256) to escape contention.
    DesignSpaceExplorer dse(evaluator(), DseGrid::paperGrid(),
                            cal::nodePowerBudgetW);
    for (App app : {App::LULESH, App::MiniAMR, App::XSBench}) {
        AppBest best = dse.findBestForApp(app, PowerOptConfig::none());
        EXPECT_LT(best.cfg.cus, 320) << appName(app);
        EXPECT_GE(best.cfg.bwTbs, 3.0) << appName(app);
    }
}

TEST(Calibration, SnapKeepsCusAndDropsFrequency)
{
    // Paper Table II: SNAP's optimum is 384 CUs at 700 MHz — weak
    // frequency scaling, strong CU scaling.
    DesignSpaceExplorer dse(evaluator(), DseGrid::paperGrid(),
                            cal::nodePowerBudgetW);
    AppBest best = dse.findBestForApp(App::SNAP, PowerOptConfig::none());
    EXPECT_LE(best.cfg.freqGhz, 0.8);
    EXPECT_GE(best.cfg.cus, 256);
}

TEST(Calibration, MaxFlopsTradesBandwidthForCompute)
{
    // Paper Table II: MaxFlops picks minimum bandwidth (1 TB/s) and
    // maximum compute.
    DesignSpaceExplorer dse(evaluator(), DseGrid::paperGrid(),
                            cal::nodePowerBudgetW);
    AppBest best =
        dse.findBestForApp(App::MaxFlops, PowerOptConfig::none());
    EXPECT_LE(best.cfg.bwTbs, 2.0);
    EXPECT_GE(best.cfg.cus * best.cfg.freqGhz, 320.0);
}

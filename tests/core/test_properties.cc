/**
 * @file
 * Property-based sweeps across the full (application x configuration)
 * grid: invariants that must hold at every point of the design space,
 * not just at the calibrated anchors.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "core/node_evaluator.hh"

using namespace ena;

namespace {

const NodeEvaluator &
evaluator()
{
    static NodeEvaluator eval;
    return eval;
}

NodeConfig
cfgOf(int cus, double f, double bw)
{
    NodeConfig c;
    c.cus = cus;
    c.freqGhz = f;
    c.bwTbs = bw;
    return c;
}

using GridPoint = std::tuple<App, int, double>;

std::vector<GridPoint>
appConfigGrid()
{
    std::vector<GridPoint> out;
    for (App app : allApps()) {
        for (int cus : {192, 256, 320, 384}) {
            for (double bw : {1.0, 3.0, 5.0, 7.0})
                out.emplace_back(app, cus, bw);
        }
    }
    return out;
}

std::string
gridName(const testing::TestParamInfo<GridPoint> &info)
{
    auto [app, cus, bw] = info.param;
    std::string n = appName(app);
    for (char &c : n) {
        if (c == '-')
            c = '_';
    }
    return n + "_" + std::to_string(cus) + "cu_" +
           std::to_string(static_cast<int>(bw)) + "tbs";
}

} // anonymous namespace

class GridPropertyTest : public testing::TestWithParam<GridPoint>
{
};

TEST_P(GridPropertyTest, PerfWithinPhysicalBounds)
{
    auto [app, cus, bw] = GetParam();
    for (double f : {0.7, 1.0, 1.3}) {
        EvalResult r = evaluator().evaluate(cfgOf(cus, f, bw), app);
        EXPECT_GT(r.perf.flops, 0.0);
        EXPECT_LE(r.perf.flops, r.perf.peakFlops);
        EXPECT_LE(r.perf.trafficGbs, bw * 1000.0 + 1e-6);
        EXPECT_GE(r.perf.activity.cuUtilization, 0.0);
        EXPECT_LE(r.perf.activity.cuUtilization, 1.0);
    }
}

TEST_P(GridPropertyTest, PowerComponentsPositiveAndConsistent)
{
    auto [app, cus, bw] = GetParam();
    EvalResult r = evaluator().evaluate(cfgOf(cus, 1.0, bw), app);
    const PowerBreakdown &p = r.power;
    EXPECT_GT(p.cuDyn, 0.0);
    EXPECT_GT(p.total(), p.packagePower());
    EXPECT_GE(p.total(), p.budgetPower());
    EXPECT_GT(p.budgetPower(), 40.0);
    // The superlinear bandwidth-provisioning cost makes 7 TB/s points
    // very expensive (that is the design point of the model: the DSE
    // must find them unaffordable).
    EXPECT_LT(p.total(), 800.0);
}

TEST_P(GridPropertyTest, PowerMonotonicInFrequency)
{
    auto [app, cus, bw] = GetParam();
    double prev = 0.0;
    for (double f : {0.7, 0.9, 1.1, 1.3, 1.5}) {
        double w = evaluator()
                       .evaluate(cfgOf(cus, f, bw), app)
                       .power.budgetPower();
        EXPECT_GT(w, prev) << "f=" << f;
        prev = w;
    }
}

TEST_P(GridPropertyTest, PerfMonotonicInBandwidthUpToSaturation)
{
    // More provisioned bandwidth never hurts (it saturates).
    auto [app, cus, bw] = GetParam();
    (void)bw;
    double prev = 0.0;
    for (double b : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}) {
        double flops =
            evaluator().evaluate(cfgOf(cus, 1.0, b), app).perf.flops;
        EXPECT_GE(flops, prev - 1e-6) << "bw=" << b;
        prev = flops;
    }
}

TEST_P(GridPropertyTest, OptimizationsNeverIncreaseBudgetPower)
{
    auto [app, cus, bw] = GetParam();
    NodeConfig base = cfgOf(cus, 1.0, bw);
    NodeConfig opt = base;
    opt.opts = PowerOptConfig::all();
    EXPECT_LE(evaluator().evaluate(opt, app).power.budgetPower(),
              evaluator().evaluate(base, app).power.budgetPower() +
                  1e-9);
}

TEST_P(GridPropertyTest, MissRateCurveMonotone)
{
    auto [app, cus, bw] = GetParam();
    NodeConfig cfg = cfgOf(cus, 1.0, bw);
    const PerfModel &pm = evaluator().perfModel();
    double prev = 1e30;
    for (double m : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        double perf =
            pm.evaluateWithMissRate(cfg, profileFor(app), m);
        EXPECT_LE(perf, prev + 1e-3);
        EXPECT_GT(perf, 0.0);
        prev = perf;
    }
}

INSTANTIATE_TEST_SUITE_P(FullGrid, GridPropertyTest,
                         testing::ValuesIn(appConfigGrid()), gridName);

// ---- cross-model consistency ----------------------------------------

TEST(CrossModel, ScalingExponentsActOnComputeBoundKernelsOnly)
{
    // For a memory-bound kernel, doubling CUs at fixed bw must not
    // double performance; for MaxFlops it must.
    const NodeEvaluator &eval = evaluator();
    double mf_ratio =
        eval.evaluate(cfgOf(384, 1.0, 3.0), App::MaxFlops).perf.flops /
        eval.evaluate(cfgOf(192, 1.0, 3.0), App::MaxFlops).perf.flops;
    double xs_ratio =
        eval.evaluate(cfgOf(384, 1.0, 3.0), App::XSBench).perf.flops /
        eval.evaluate(cfgOf(192, 1.0, 3.0), App::XSBench).perf.flops;
    EXPECT_NEAR(mf_ratio, 2.0, 0.02);
    EXPECT_LT(xs_ratio, 1.2);
}

TEST(CrossModel, BudgetPowerOrderingFollowsCuActivity)
{
    // Within one configuration, kernels with higher CU utilization
    // draw more budget power (CU dynamic dominates the app-dependent
    // part).
    const NodeEvaluator &eval = evaluator();
    NodeConfig cfg = NodeConfig::bestMean();
    EvalResult mf = eval.evaluate(cfg, App::MaxFlops);
    EvalResult xs = eval.evaluate(cfg, App::XSBench);
    ASSERT_GT(mf.perf.activity.cuUtilization,
              xs.perf.activity.cuUtilization);
    EXPECT_GT(mf.power.cuDyn, xs.power.cuDyn);
}

TEST(CrossModel, FrequencyHelpsComputeBoundHurtsContended)
{
    // Raising frequency scales compute-bound kernels up but pushes
    // contended memory-bound kernels past their knees — the tension
    // behind the paper's best-mean choice.
    const NodeEvaluator &eval = evaluator();
    EXPECT_GT(
        eval.evaluate(cfgOf(320, 1.1, 3.0), App::MaxFlops).perf.flops,
        eval.evaluate(cfgOf(320, 1.0, 3.0), App::MaxFlops).perf.flops);
    EXPECT_LT(
        eval.evaluate(cfgOf(320, 1.4, 3.0), App::MiniAMR).perf.flops,
        eval.evaluate(cfgOf(320, 1.0, 3.0), App::MiniAMR).perf.flops);
}

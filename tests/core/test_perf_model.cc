/**
 * @file
 * Tests of the analytic performance model against the paper's Section
 * IV characterization: compute-intensive, balanced, and
 * memory-intensive regimes, plus the miss-rate model of Fig. 8.
 */

#include <gtest/gtest.h>

#include "core/perf_model.hh"

using namespace ena;

namespace {

NodeConfig
cfgOf(int cus, double f, double bw)
{
    NodeConfig c;
    c.cus = cus;
    c.freqGhz = f;
    c.bwTbs = bw;
    return c;
}

} // anonymous namespace

TEST(PerfModel, PeakFlopsFormula)
{
    // 2 TF per 32-CU chiplet at 1 GHz (paper Section II-A1).
    NodeConfig one_chiplet = cfgOf(32, 1.0, 1.0);
    EXPECT_NEAR(PerfModel::peakFlops(one_chiplet) / 1e12, 2.048, 1e-9);
    EXPECT_NEAR(PerfModel::peakFlops(NodeConfig::bestMean()) / 1e12,
                20.48, 1e-9);
}

TEST(PerfModel, AchievedNeverExceedsPeakOrRooflines)
{
    PerfModel pm;
    for (App app : allApps()) {
        for (double bw : {1.0, 3.0, 7.0}) {
            for (int cus : {192, 320, 384}) {
                PerfResult r =
                    pm.evaluate(cfgOf(cus, 1.0, bw), profileFor(app));
                EXPECT_LE(r.flops, r.peakFlops);
                EXPECT_LE(r.flops, r.computeRate + 1e-3);
                EXPECT_LE(r.flops, r.memoryRate + 1e-3);
                EXPECT_GT(r.flops, 0.0);
            }
        }
    }
}

TEST(PerfModel, MaxFlopsScalesLinearlyWithCompute)
{
    PerfModel pm;
    const KernelProfile &mf = profileFor(App::MaxFlops);
    double base = pm.evaluate(cfgOf(160, 1.0, 3.0), mf).flops;
    double twice = pm.evaluate(cfgOf(320, 1.0, 3.0), mf).flops;
    EXPECT_NEAR(twice / base, 2.0, 0.01);
    double f_twice = pm.evaluate(cfgOf(160, 1.0, 3.0), mf).flops;
    EXPECT_NEAR(pm.evaluate(cfgOf(160, 0.5, 3.0), mf).flops / f_twice,
                0.5, 0.01);
}

TEST(PerfModel, MaxFlopsInsensitiveToBandwidth)
{
    // Fig. 4: corresponding points across bandwidth curves coincide.
    PerfModel pm;
    const KernelProfile &mf = profileFor(App::MaxFlops);
    double at1 = pm.evaluate(cfgOf(320, 1.0, 1.0), mf).flops;
    double at7 = pm.evaluate(cfgOf(320, 1.0, 7.0), mf).flops;
    EXPECT_NEAR(at7 / at1, 1.0, 1e-6);
}

TEST(PerfModel, BalancedKernelPlateausPastKnee)
{
    // Fig. 5: CoMD gains strongly up to its knee, then flattens.
    PerfModel pm;
    const KernelProfile &comd = profileFor(App::CoMD);
    double lo = pm.evaluate(cfgOf(192, 0.7, 3.0), comd).flops;
    double mid = pm.evaluate(cfgOf(320, 1.0, 3.0), comd).flops;
    double hi = pm.evaluate(cfgOf(384, 1.3, 3.0), comd).flops;
    double early_gain = mid / lo;
    double late_gain = hi / mid;
    EXPECT_GT(early_gain, 1.3);
    EXPECT_LT(late_gain, 1.15);
}

TEST(PerfModel, MemoryIntensiveDegradesPastKnee)
{
    // Fig. 6: LULESH rises, then declines with more compute pressure.
    PerfModel pm;
    const KernelProfile &lulesh = profileFor(App::LULESH);
    double at_knee = pm.evaluate(cfgOf(192, 0.9, 3.0), lulesh).flops;
    double pressed = pm.evaluate(cfgOf(384, 1.5, 3.0), lulesh).flops;
    EXPECT_LT(pressed, at_knee * 0.95);
}

TEST(PerfModel, MemoryIntensiveBandwidthCurvesCluster)
{
    // Fig. 6: beyond the kernel's saturation bandwidth, provisioning
    // more does not help; 1 TB/s is distinctly lower.
    PerfModel pm;
    const KernelProfile &lulesh = profileFor(App::LULESH);
    double bw1 = pm.evaluate(cfgOf(320, 1.0, 1.0), lulesh).flops;
    double bw4 = pm.evaluate(cfgOf(320, 1.0, 4.0), lulesh).flops;
    double bw7 = pm.evaluate(cfgOf(320, 1.0, 7.0), lulesh).flops;
    EXPECT_NEAR(bw7 / bw4, 1.0, 0.02);
    EXPECT_LT(bw1, 0.6 * bw4);
}

TEST(PerfModel, ContentionSaturates)
{
    // Even at absurd ops-per-byte the memory system retains a floor.
    PerfModel pm;
    const KernelProfile &mini = profileFor(App::MiniAMR);
    double floor = pm.evaluate(cfgOf(384, 1.5, 1.0), mini).flops;
    double healthy = pm.evaluate(cfgOf(192, 0.7, 1.0), mini).flops;
    EXPECT_GT(floor, healthy / 4.0);
}

TEST(PerfModel, MemoryBoundFlagTracksRooflines)
{
    PerfModel pm;
    PerfResult mf = pm.evaluate(NodeConfig::bestMean(),
                                profileFor(App::MaxFlops));
    EXPECT_FALSE(mf.memoryBound);
    PerfResult xs = pm.evaluate(NodeConfig::bestMean(),
                                profileFor(App::XSBench));
    EXPECT_TRUE(xs.memoryBound);
}

TEST(PerfModel, ActivityConsistentWithPerf)
{
    PerfModel pm;
    for (App app : allApps()) {
        PerfResult r = pm.evaluate(NodeConfig::bestMean(),
                                   profileFor(app));
        EXPECT_NEAR(r.activity.cuUtilization, r.flops / r.peakFlops,
                    1e-9);
        EXPECT_LE(r.activity.inPkgTrafficGbs, 3000.0 + 1e-9);
        EXPECT_NEAR(r.activity.extTrafficGbs,
                    profileFor(app).extTrafficFraction *
                        r.activity.inPkgTrafficGbs,
                    1e-6);
        EXPECT_GT(r.activity.nocTrafficGbs,
                  r.activity.inPkgTrafficGbs * 0.99);
    }
}

// ----- Fig. 8 miss-rate model ----------------------------------------

TEST(MissRateModel, ZeroMissMatchesBaseModel)
{
    PerfModel pm;
    for (App app : allApps()) {
        double base = pm.evaluate(NodeConfig::bestMean(),
                                  profileFor(app)).flops;
        double m0 = pm.evaluateWithMissRate(NodeConfig::bestMean(),
                                            profileFor(app), 0.0);
        EXPECT_NEAR(m0 / base, 1.0, 1e-9) << appName(app);
    }
}

TEST(MissRateModel, MonotonicallyDegrades)
{
    PerfModel pm;
    for (App app : allApps()) {
        double prev = 1e30;
        for (double m = 0.0; m <= 1.0; m += 0.1) {
            double perf = pm.evaluateWithMissRate(
                NodeConfig::bestMean(), profileFor(app), m);
            EXPECT_LE(perf, prev + 1e-3) << appName(app) << " at " << m;
            prev = perf;
        }
    }
}

TEST(MissRateModel, MaxFlopsIsFlat)
{
    PerfModel pm;
    const KernelProfile &mf = profileFor(App::MaxFlops);
    double m0 =
        pm.evaluateWithMissRate(NodeConfig::bestMean(), mf, 0.0);
    double m1 =
        pm.evaluateWithMissRate(NodeConfig::bestMean(), mf, 1.0);
    EXPECT_NEAR(m1 / m0, 1.0, 0.01);
}

TEST(MissRateModel, LuleshIsLatencyLimitedExternally)
{
    // LULESH's external service rate must sit below the raw SerDes
    // bandwidth (latency-, not bandwidth-limited), unlike CoMD's.
    NodeConfig cfg = NodeConfig::bestMean();
    double serdes = cfg.ext.aggregateGbs();
    EXPECT_LT(PerfModel::externalRateGbs(cfg, profileFor(App::LULESH)),
              serdes * 0.8);
    EXPECT_NEAR(PerfModel::externalRateGbs(cfg, profileFor(App::CoMD)),
                serdes, 1e-6);
}

TEST(MissRateModel, FullMissDegradationInBand)
{
    PerfModel pm;
    for (App app : allApps()) {
        if (app == App::MaxFlops)
            continue;
        double m0 = pm.evaluateWithMissRate(NodeConfig::bestMean(),
                                            profileFor(app), 0.0);
        double m1 = pm.evaluateWithMissRate(NodeConfig::bestMean(),
                                            profileFor(app), 1.0);
        double ratio = m1 / m0;
        EXPECT_GT(ratio, 0.05) << appName(app);
        EXPECT_LT(ratio, 0.75) << appName(app);
    }
}

TEST(MissRateModelDeathTest, BadMissFractionPanics)
{
    PerfModel pm;
    EXPECT_DEATH(pm.evaluateWithMissRate(NodeConfig::bestMean(),
                                         profileFor(App::CoMD), 1.5),
                 "miss fraction");
}

TEST(PerfModel, OpsPerByteAxis)
{
    EXPECT_NEAR(NodeConfig::bestMean().opsPerByte(), 0.1067, 1e-3);
    EXPECT_NEAR(cfgOf(320, 1.0, 1.0).opsPerByte(), 0.32, 1e-9);
}

TEST(PerfModelDeathTest, InvalidConfigIsFatal)
{
    PerfModel pm;
    NodeConfig bad;
    bad.cus = 0;
    EXPECT_EXIT(pm.evaluate(bad, profileFor(App::CoMD)),
                testing::ExitedWithCode(1), "bad CU count");
}

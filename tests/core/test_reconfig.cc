/**
 * @file
 * Tests of the runtime reconfiguration governor (paper Section VI).
 */

#include <gtest/gtest.h>

#include "core/dse.hh"
#include "core/reconfig.hh"

using namespace ena;

namespace {

const NodeEvaluator &
evaluator()
{
    static NodeEvaluator eval;
    return eval;
}

} // anonymous namespace

TEST(Reconfig, DecisionsStayWithinInstalledHardware)
{
    ReconfigGovernor gov(evaluator(), GovernorParams{});
    for (App app : allApps()) {
        GovernorDecision d = gov.decide(app);
        EXPECT_LE(d.activeCus, gov.params().installed.cus);
        EXPECT_GT(d.activeCus, 0);
        EXPECT_LE(d.budgetPowerW, gov.params().budgetW + 1e-9);
        EXPECT_GT(d.flops, 0.0);
    }
}

TEST(Reconfig, GovernedNeverWorseThanStaticPerApp)
{
    ReconfigGovernor gov(evaluator(), GovernorParams{});
    for (App app : allApps()) {
        GovernorDecision d = gov.decide(app);
        double static_perf =
            evaluator().evaluate(NodeConfig::bestMean(), app)
                .perf.flops;
        // The static point (320 CUs @ 1 GHz) is in the governor's
        // search space, so the decision can only match or beat it.
        EXPECT_GE(d.flops, static_perf - 1e-6) << appName(app);
    }
}

TEST(Reconfig, GovernorBoundedByOracle)
{
    // The runtime governor cannot beat Table II's oracle, which may
    // also re-provision bandwidth.
    DesignSpaceExplorer dse(evaluator(), DseGrid::paperGrid(), 160.0);
    ReconfigGovernor gov(evaluator(), GovernorParams{});
    for (App app : allApps()) {
        AppBest oracle = dse.findBestForApp(app, PowerOptConfig::none());
        EXPECT_LE(gov.decide(app).flops, oracle.flops + 1e-6)
            << appName(app);
    }
}

TEST(Reconfig, MemoryBoundPhasesGateCusDown)
{
    ReconfigGovernor gov(evaluator(), GovernorParams{});
    GovernorDecision lulesh = gov.decide(App::LULESH);
    GovernorDecision maxflops = gov.decide(App::MaxFlops);
    EXPECT_LT(lulesh.activeCus, maxflops.activeCus);
}

TEST(Reconfig, PhasedWorkloadGains)
{
    ReconfigGovernor gov(evaluator(), GovernorParams{});
    std::vector<Phase> phases = {
        {App::LULESH, 1.0}, {App::MaxFlops, 1.0}, {App::XSBench, 1.0}};
    GovernorSummary s = gov.run(phases);
    EXPECT_GE(s.gainPct, 0.0);
    EXPECT_GE(s.transitions, 1);
    EXPECT_GT(s.avgStaticPowerW, 0.0);
    EXPECT_GT(s.avgGovernedPowerW, 0.0);
}

TEST(Reconfig, SinglePhaseHasNoTransitionCost)
{
    ReconfigGovernor gov(evaluator(), GovernorParams{});
    GovernorSummary s = gov.run({{App::SNAP, 2.0}});
    EXPECT_EQ(s.transitions, 0);
    GovernorDecision d = gov.decide(App::SNAP);
    EXPECT_NEAR(s.governedWork, d.flops * 2.0, d.flops * 1e-9);
}

TEST(Reconfig, TransitionCostEatsIntoRapidPhases)
{
    GovernorParams slow;
    slow.transitionS = 0.05;
    ReconfigGovernor cheap(evaluator(), GovernorParams{});
    ReconfigGovernor costly(evaluator(), slow);
    // Rapidly alternating phases.
    std::vector<Phase> phases;
    for (int i = 0; i < 10; ++i) {
        phases.push_back({App::LULESH, 0.1});
        phases.push_back({App::MaxFlops, 0.1});
    }
    EXPECT_GT(cheap.run(phases).gainPct, costly.run(phases).gainPct);
}

TEST(ReconfigDeathTest, EmptyWorkloadPanics)
{
    ReconfigGovernor gov(evaluator(), GovernorParams{});
    EXPECT_DEATH(gov.run({}), "empty workload");
}

TEST(ReconfigDeathTest, ImpossibleBudgetIsFatal)
{
    GovernorParams p;
    p.budgetW = 1.0;
    ReconfigGovernor gov(evaluator(), p);
    EXPECT_EXIT(gov.decide(App::CoMD), testing::ExitedWithCode(1),
                "no feasible runtime setting");
}

/**
 * @file
 * Tests of the figure-study drivers: ops-per-byte sweeps (Figs. 4-6),
 * miss-rate study (Fig. 8), external-memory study (Fig. 9), perf/W
 * study (Fig. 13), and the exascale projector (Fig. 14).
 */

#include <gtest/gtest.h>

#include "core/studies.hh"
#include "core/thermal_study.hh"

using namespace ena;

namespace {

const NodeEvaluator &
evaluator()
{
    static NodeEvaluator eval;
    return eval;
}

} // anonymous namespace

TEST(OpbSweep, NormalizationAnchorsAtBestMean)
{
    OpbSweepStudy study(evaluator(), NodeConfig::bestMean());
    auto curves = study.sweepFrequency(App::CoMD, {3.0},
                                       {0.8, 1.0, 1.2});
    ASSERT_EQ(curves.size(), 1u);
    ASSERT_EQ(curves[0].points.size(), 3u);
    // The (320 CUs, 1 GHz, 3 TB/s) point is exactly 1.0 by definition.
    EXPECT_NEAR(curves[0].points[1].normPerf, 1.0, 1e-9);
}

TEST(OpbSweep, OpsPerByteMatchesConfig)
{
    OpbSweepStudy study(evaluator(), NodeConfig::bestMean());
    auto curves =
        study.sweepCuCount(App::LULESH, {1.0, 4.0}, {192, 384});
    for (const OpbCurve &c : curves) {
        for (const OpbPoint &p : c.points) {
            EXPECT_NEAR(p.opsPerByte, p.cfg.opsPerByte(), 1e-12);
            EXPECT_DOUBLE_EQ(p.cfg.bwTbs, c.bwTbs);
        }
    }
}

TEST(OpbSweep, PaperBandwidthSeries)
{
    auto bws = OpbSweepStudy::paperBandwidths();
    EXPECT_EQ(bws, (std::vector<double>{1.0, 3.0, 4.0, 5.0, 6.0, 7.0}));
}

TEST(MissRate, DefaultStudyShape)
{
    MissRateStudy study(evaluator(), NodeConfig::bestMean());
    auto series = study.run();
    ASSERT_EQ(series.size(), 8u);
    for (const MissRateSeries &s : series) {
        ASSERT_EQ(s.points.size(), 6u);
        EXPECT_NEAR(s.points.front().normPerf, 1.0, 1e-9);
        for (size_t i = 1; i < s.points.size(); ++i) {
            EXPECT_LE(s.points[i].normPerf,
                      s.points[i - 1].normPerf + 1e-9);
        }
    }
}

TEST(MissRate, CustomRates)
{
    MissRateStudy study(evaluator(), NodeConfig::bestMean());
    auto s = study.run(App::SNAP, {0.0, 0.5});
    ASSERT_EQ(s.points.size(), 2u);
    EXPECT_EQ(s.app, App::SNAP);
    EXPECT_LT(s.points[1].normPerf, 1.0);
}

TEST(ExtMemStudy, CoversBothConfigsAndAllApps)
{
    ExternalMemoryStudy study(evaluator(), NodeConfig::bestMean());
    auto bars = study.run();
    ASSERT_EQ(bars.size(), 16u);
    int dram_only = 0;
    int hybrid = 0;
    for (const ExtMemBar &b : bars) {
        if (b.configName == "3D DRAM only")
            ++dram_only;
        else if (b.configName == "3D DRAM + NVM")
            ++hybrid;
        EXPECT_GT(b.power.total(), 0.0);
    }
    EXPECT_EQ(dram_only, 8);
    EXPECT_EQ(hybrid, 8);
}

TEST(PerfPerWatt, SelfComparisonIsZero)
{
    PerfPerWattStudy study(evaluator(), NodeConfig::bestMean(),
                           NodeConfig::bestMean());
    for (const PerfPerWattRow &r : study.run())
        EXPECT_NEAR(r.improvementPct, 0.0, 1e-9);
}

TEST(PerfPerWatt, OptimizationsAloneImproveEveryApp)
{
    // Same hardware point, optimizations on: perf unchanged, power
    // lower, so perf/W must rise for every kernel.
    NodeConfig opt = NodeConfig::bestMean();
    opt.opts = PowerOptConfig::all();
    PerfPerWattStudy study(evaluator(), NodeConfig::bestMean(), opt);
    for (const PerfPerWattRow &r : study.run())
        EXPECT_GT(r.improvementPct, 5.0) << appName(r.app);
}

TEST(Exascale, LinearScalingWithCus)
{
    ExascaleProjector proj(evaluator());
    auto points = proj.sweepCus({192, 256, 320});
    ASSERT_EQ(points.size(), 3u);
    // Perf scales linearly in CU count for MaxFlops.
    double per_cu_0 = points[0].systemExaflops / points[0].cus;
    double per_cu_2 = points[2].systemExaflops / points[2].cus;
    EXPECT_NEAR(per_cu_0, per_cu_2, per_cu_0 * 0.01);
    // Power grows monotonically but sublinearly (fixed overheads).
    EXPECT_GT(points[2].systemMw, points[1].systemMw);
    EXPECT_GT(points[1].systemMw, points[0].systemMw);
    EXPECT_LT(points[2].systemMw / points[0].systemMw,
              320.0 / 192.0);
}

TEST(Exascale, NodeCountScalesSystemNumbers)
{
    ExascaleProjector half(evaluator(), 50000);
    ExascaleProjector full(evaluator(), 100000);
    NodeConfig cfg;
    cfg.bwTbs = 1.0;
    EXPECT_NEAR(full.systemExaflops(cfg, App::MaxFlops),
                2.0 * half.systemExaflops(cfg, App::MaxFlops), 1e-9);
    EXPECT_NEAR(full.systemMw(cfg, App::MaxFlops),
                2.0 * half.systemMw(cfg, App::MaxFlops), 1e-9);
}

TEST(Exascale, SingleNodeProjectorIsTheNodeItself)
{
    // nodes = 1: the "system" is one node, so the projection is just
    // the node's own numbers in exa/mega units.
    ExascaleProjector one(evaluator(), 1);
    NodeConfig cfg = NodeConfig::bestMean();
    EvalResult r = evaluator().evaluate(cfg, App::CoMD);
    EXPECT_EQ(one.nodes(), 1);
    EXPECT_DOUBLE_EQ(one.systemExaflops(cfg, App::CoMD),
                     r.perf.flops / 1e18);
    EXPECT_DOUBLE_EQ(one.systemMw(cfg, App::CoMD),
                     r.power.packagePower() / 1e6);
}

TEST(Exascale, EmptyCuListYieldsEmptySweep)
{
    ExascaleProjector proj(evaluator());
    EXPECT_TRUE(proj.sweepCus({}).empty());
}

TEST(Exascale, SystemPowerIsPackageScope)
{
    // Fig. 14 power is the processor-package scenario: systemMw must
    // be exactly packagePower() x nodes, not the node total with
    // external memory included.
    ExascaleProjector proj(evaluator(), 100000);
    NodeConfig cfg = NodeConfig::bestMean();
    for (App app : {App::MaxFlops, App::CoMD, App::XSBench}) {
        EvalResult r = evaluator().evaluate(cfg, app);
        EXPECT_DOUBLE_EQ(proj.systemMw(cfg, app),
                         r.power.packagePower() * 100000.0 / 1e6)
            << appName(app);
        EXPECT_LE(r.power.packagePower(), r.power.total())
            << appName(app);
    }
}

TEST(ThermalStudyDriver, RowsForEveryApp)
{
    NodeEvaluator eval;
    DesignSpaceExplorer dse(eval, DseGrid::paperGrid(), 160.0);
    auto table2 = dse.tableII(NodeConfig::bestMean());
    ThermalStudy thermal(eval);
    auto rows = thermal.run(NodeConfig::bestMean(), table2);
    ASSERT_EQ(rows.size(), 8u);
    for (const ThermalRow &r : rows) {
        EXPECT_GT(r.bestMeanPeakC, 50.0);
        EXPECT_LT(r.bestMeanPeakC, EhpPackageModel::dramLimitC);
        EXPECT_GT(r.bestPerAppPeakC, 50.0);
        EXPECT_LT(r.bestPerAppPeakC, EhpPackageModel::dramLimitC);
    }
}

/**
 * @file
 * Tests of the design-space explorer mechanics (correctness of the
 * search itself; the paper-anchored outcomes live in
 * test_calibration.cc).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/dse.hh"
#include "core/sweep_journal.hh"

using namespace ena;

namespace {

const NodeEvaluator &
evaluator()
{
    static NodeEvaluator eval;
    return eval;
}

DseGrid
tinyGrid()
{
    DseGrid g;
    g.cus = {256, 320};
    g.freqsGhz = {0.9, 1.0};
    g.bwsTbs = {2.0, 3.0};
    return g;
}

} // anonymous namespace

TEST(DseGrid, PaperGridSize)
{
    DseGrid g = DseGrid::paperGrid();
    EXPECT_EQ(g.cus.size(), 7u);         // 192..384 step 32
    EXPECT_EQ(g.freqsGhz.size(), 10u);   // 0.7..1.5 + 925 MHz
    EXPECT_EQ(g.bwsTbs.size(), 7u);      // 1..7
    EXPECT_EQ(g.size(), 490u);
    // The 925 MHz point from Table II is present.
    bool has925 = false;
    for (double f : g.freqsGhz)
        has925 |= f == 0.925;
    EXPECT_TRUE(has925);
}

TEST(Dse, SweepEnumeratesWholeGrid)
{
    DesignSpaceExplorer dse(evaluator(), tinyGrid(), 160.0);
    auto points = dse.sweep(PowerOptConfig::none());
    EXPECT_EQ(points.size(), 8u);
    for (const DsePoint &p : points) {
        EXPECT_GT(p.geomeanFlops, 0.0);
        EXPECT_GT(p.meanBudgetPowerW, 0.0);
        EXPECT_GE(p.maxBudgetPowerW, p.meanBudgetPowerW);
        EXPECT_EQ(p.feasible, p.maxBudgetPowerW <= 160.0);
    }
}

TEST(Dse, BestMeanIsTheFeasibleArgmax)
{
    DesignSpaceExplorer dse(evaluator(), tinyGrid(), 160.0);
    NodeConfig best = dse.findBestMean(PowerOptConfig::none());
    double best_perf = evaluator().geomeanFlops(best);
    for (const DsePoint &p : dse.sweep(PowerOptConfig::none())) {
        if (p.feasible) {
            EXPECT_LE(p.geomeanFlops, best_perf + 1e-6);
        }
    }
}

TEST(Dse, BestForAppRespectsBudget)
{
    DesignSpaceExplorer dse(evaluator(), DseGrid::paperGrid(), 160.0);
    for (App app : {App::CoMD, App::LULESH, App::MaxFlops}) {
        AppBest best = dse.findBestForApp(app, PowerOptConfig::none());
        EXPECT_LE(best.budgetPowerW, 160.0);
        EXPECT_GT(best.flops, 0.0);
    }
}

TEST(Dse, BestForAppBeatsBestMeanForThatApp)
{
    DesignSpaceExplorer dse(evaluator(), DseGrid::paperGrid(), 160.0);
    NodeConfig best_mean = dse.findBestMean(PowerOptConfig::none());
    for (App app : allApps()) {
        AppBest best = dse.findBestForApp(app, PowerOptConfig::none());
        double mean_perf =
            evaluator().evaluate(best_mean, app).perf.flops;
        EXPECT_GE(best.flops, mean_perf - 1e-6) << appName(app);
    }
}

TEST(Dse, TighterBudgetNeverImprovesPerformance)
{
    DesignSpaceExplorer loose(evaluator(), tinyGrid(), 200.0);
    DesignSpaceExplorer tight(evaluator(), tinyGrid(), 150.0);
    double p_loose = evaluator().geomeanFlops(
        loose.findBestMean(PowerOptConfig::none()));
    double p_tight = evaluator().geomeanFlops(
        tight.findBestMean(PowerOptConfig::none()));
    EXPECT_GE(p_loose, p_tight - 1e-6);
}

TEST(Dse, OptimizationsEnlargeTheFeasibleSet)
{
    DesignSpaceExplorer dse(evaluator(), DseGrid::paperGrid(), 160.0);
    auto count = [&](const PowerOptConfig &opts) {
        int n = 0;
        for (const DsePoint &p : dse.sweep(opts)) {
            if (p.feasible)
                ++n;
        }
        return n;
    };
    EXPECT_GT(count(PowerOptConfig::all()),
              count(PowerOptConfig::none()));
}

TEST(Dse, TableIIRowsCoverEveryApp)
{
    DesignSpaceExplorer dse(evaluator(), DseGrid::paperGrid(), 160.0);
    auto rows = dse.tableII(NodeConfig::bestMean());
    ASSERT_EQ(rows.size(), allApps().size());
    for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(rows[i].app, allApps()[i]);
        rows[i].bestConfig.validate();
        rows[i].bestConfigOpt.validate();
    }
}

TEST(Dse, InvalidGridPointIsQuarantinedNotFatal)
{
    DseGrid g = tinyGrid();
    g.cus.push_back(-64);   // fails NodeConfig::tryValidate
    DesignSpaceExplorer dse(evaluator(), g, 160.0);
    auto points = dse.sweep(PowerOptConfig::none(), nullptr);
    ASSERT_EQ(points.size(), g.size());
    int quarantined = 0;
    for (const DsePoint &p : points) {
        if (p.ok) {
            EXPECT_TRUE(p.error.empty());
            EXPECT_GT(p.geomeanFlops, 0.0);
        } else {
            ++quarantined;
            EXPECT_EQ(p.cfg.cus, -64);
            EXPECT_FALSE(p.feasible);
            EXPECT_NE(p.error.find("bad CU count"), std::string::npos);
        }
    }
    EXPECT_EQ(quarantined, 4);   // -64 crossed with 2 freqs x 2 bws
}

TEST(Dse, JournaledSweepResumesWithoutRecomputing)
{
    const std::string path = "test_dse_journal.tmp";
    std::remove(path.c_str());
    DesignSpaceExplorer dse(evaluator(), tinyGrid(), 160.0);
    const auto reference = dse.sweep(PowerOptConfig::none(), nullptr);

    {
        auto j = std::move(SweepJournal::open(path)).value();
        dse.sweep(PowerOptConfig::none(), j.get());
        EXPECT_EQ(j->appendedRecords(), reference.size());
    }
    auto j = std::move(SweepJournal::open(path)).value();
    ASSERT_EQ(j->loadedRecords(), reference.size());
    const auto resumed = dse.sweep(PowerOptConfig::none(), j.get());
    EXPECT_EQ(j->appendedRecords(), 0u);   // every point replayed

    ASSERT_EQ(resumed.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        // Bitwise equality: the journal stores hexfloats.
        EXPECT_EQ(resumed[i].geomeanFlops, reference[i].geomeanFlops);
        EXPECT_EQ(resumed[i].meanBudgetPowerW,
                  reference[i].meanBudgetPowerW);
        EXPECT_EQ(resumed[i].maxBudgetPowerW,
                  reference[i].maxBudgetPowerW);
        EXPECT_EQ(resumed[i].feasible, reference[i].feasible);
        EXPECT_EQ(resumed[i].ok, reference[i].ok);
    }
    std::remove(path.c_str());
}

TEST(DseDeathTest, ImpossibleBudgetIsFatal)
{
    DesignSpaceExplorer dse(evaluator(), tinyGrid(), 1.0);
    EXPECT_EXIT(dse.findBestMean(PowerOptConfig::none()),
                testing::ExitedWithCode(1), "no feasible configuration");
}

TEST(DseDeathTest, EmptyGridIsFatal)
{
    EXPECT_EXIT(DesignSpaceExplorer(evaluator(), DseGrid{}, 160.0),
                testing::ExitedWithCode(1), "empty DSE grid");
}

/**
 * @file
 * EvalMemoCache: hit/miss accounting (member counters and the
 * dse.memo_hits / dse.memo_misses telemetry), content addressing
 * (perf results shared across power-opt settings), eviction
 * correctness, and bit-identity of memoized results.
 */

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dse.hh"
#include "core/eval_memo.hh"
#include "core/node_evaluator.hh"
#include "telemetry/metrics.hh"

namespace ena {
namespace {

const NodeEvaluator &
evaluator()
{
    static NodeEvaluator eval;
    return eval;
}

NodeConfig
paperConfig()
{
    NodeConfig cfg;
    cfg.cus = 320;
    cfg.freqGhz = 1.0;
    cfg.bwTbs = 3.0;
    return cfg;
}

bool
sameEval(const EvalResult &a, const EvalResult &b)
{
    return a.perf.flops == b.perf.flops &&
           a.perf.computeRate == b.perf.computeRate &&
           a.perf.memoryRate == b.perf.memoryRate &&
           a.perf.trafficGbs == b.perf.trafficGbs &&
           a.power.budgetPower() == b.power.budgetPower() &&
           a.power.packagePower() == b.power.packagePower() &&
           a.power.total() == b.power.total();
}

TEST(EvalMemoCache, FirstLookupMissesSecondHits)
{
    EvalMemoCache memo;
    const NodeConfig cfg = paperConfig();

    EvalResult first = evaluator().evaluateMemo(cfg, App::CoMD, memo);
    EXPECT_EQ(memo.hits(), 0u);
    EXPECT_EQ(memo.misses(), 2u); // one perf + one power result

    EvalResult second = evaluator().evaluateMemo(cfg, App::CoMD, memo);
    EXPECT_EQ(memo.hits(), 2u);
    EXPECT_EQ(memo.misses(), 2u);
    EXPECT_TRUE(sameEval(first, second));
}

TEST(EvalMemoCache, MemoizedResultIsBitIdenticalToScalar)
{
    EvalMemoCache memo;
    const NodeConfig cfg = paperConfig();
    for (App app : allApps()) {
        EvalResult oracle = evaluator().evaluate(cfg, app);
        // Twice: once filling the cache, once served from it.
        EvalResult cold = evaluator().evaluateMemo(cfg, app, memo);
        EvalResult warm = evaluator().evaluateMemo(cfg, app, memo);
        EXPECT_TRUE(sameEval(oracle, cold)) << appName(app);
        EXPECT_TRUE(sameEval(oracle, warm)) << appName(app);
    }
}

TEST(EvalMemoCache, PerfResultSharedAcrossPowerOptSettings)
{
    EvalMemoCache memo;
    NodeConfig cfg = paperConfig();
    cfg.opts = PowerOptConfig::none();
    evaluator().evaluateMemo(cfg, App::HPGMG, memo);
    ASSERT_EQ(memo.misses(), 2u);

    // Same knobs, different power opts: the perf key ignores opts, so
    // only the power result is recomputed.
    cfg.opts = PowerOptConfig::all();
    evaluator().evaluateMemo(cfg, App::HPGMG, memo);
    EXPECT_EQ(memo.hits(), 1u);   // perf served from cache
    EXPECT_EQ(memo.misses(), 3u); // power recomputed
}

TEST(EvalMemoCache, TelemetryCountersTrackHitsAndMisses)
{
    telemetry::Counter &hits = telemetry::counter("dse.memo_hits");
    telemetry::Counter &misses = telemetry::counter("dse.memo_misses");
    const std::uint64_t h0 = hits.value();
    const std::uint64_t m0 = misses.value();

    EvalMemoCache memo;
    evaluator().evaluateMemo(paperConfig(), App::LULESH, memo);
    evaluator().evaluateMemo(paperConfig(), App::LULESH, memo);

    EXPECT_EQ(hits.value() - h0, 2u);
    EXPECT_EQ(misses.value() - m0, 2u);
}

TEST(EvalMemoCache, EvictionKeepsResultsCorrect)
{
    // Capacity 16 over 16 shards = one entry per shard: almost every
    // store lands on a full shard and clears it.
    EvalMemoCache memo(16);
    NodeConfig cfg = paperConfig();

    std::vector<EvalResult> oracle;
    for (int cus = 64; cus <= 384; cus += 32) {
        cfg.cus = cus;
        oracle.push_back(evaluator().evaluate(cfg, App::MaxFlops));
        evaluator().evaluateMemo(cfg, App::MaxFlops, memo);
    }
    EXPECT_GT(memo.evictions(), 0u);

    // Whatever was evicted just recomputes; everything still matches
    // the scalar oracle bit for bit.
    int i = 0;
    for (int cus = 64; cus <= 384; cus += 32) {
        cfg.cus = cus;
        EvalResult r = evaluator().evaluateMemo(cfg, App::MaxFlops, memo);
        EXPECT_TRUE(sameEval(oracle[i++], r)) << cus << " CUs";
    }
}

TEST(EvalMemoCache, SizeAndClear)
{
    EvalMemoCache memo;
    EXPECT_EQ(memo.size(), 0u);
    evaluator().evaluateMemo(paperConfig(), App::CoMD, memo);
    EXPECT_EQ(memo.size(), 2u);
    memo.clear();
    EXPECT_EQ(memo.size(), 0u);

    // Cleared means the next lookup misses again.
    const std::uint64_t misses = memo.misses();
    evaluator().evaluateMemo(paperConfig(), App::CoMD, memo);
    EXPECT_EQ(memo.misses(), misses + 2u);
}

TEST(EvalMemoCache, PowerOptBitsDistinguishEverySetting)
{
    // Each toggle flips its own bit, so every combination keys its own
    // power entry (the journal's o<bits> tag uses the same layout).
    EXPECT_EQ(powerOptBits(PowerOptConfig::none()), 0);
    PowerOptConfig o;
    o.ntc = true;
    EXPECT_EQ(powerOptBits(o) & 1, 1);
    o = PowerOptConfig::all();
    EXPECT_EQ(powerOptBits(o), 0x1f);
}

TEST(EvalMemoCache, DseSweepPopulatesAndReusesTheCache)
{
    DseGrid grid;
    grid.cus = {256, 320};
    grid.freqsGhz = {0.9, 1.0};
    grid.bwsTbs = {2.0, 3.0};
    DesignSpaceExplorer dse(evaluator(), grid, 160.0);

    std::vector<DsePoint> first = dse.sweep(PowerOptConfig::none());
    const std::uint64_t hits_after_first = dse.memoCache().hits();

    // A repeated sweep is served entirely from the explorer's cache.
    std::vector<DsePoint> second = dse.sweep(PowerOptConfig::none());
    EXPECT_EQ(dse.memoCache().hits() - hits_after_first,
              2u * grid.size() * allApps().size());

    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].geomeanFlops, second[i].geomeanFlops);
        EXPECT_EQ(first[i].meanBudgetPowerW, second[i].meanBudgetPowerW);
        EXPECT_EQ(first[i].maxBudgetPowerW, second[i].maxBudgetPowerW);
    }
}

TEST(EvalMemoCache, SharedInstanceIsOneProcessWideCache)
{
    // Every thread must see the same cache object (the evaluation
    // server keys its cross-client memoization on this).
    EvalMemoCache *fromThreads[4] = {};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&fromThreads, t] {
            fromThreads[t] = &EvalMemoCache::sharedInstance();
        });
    }
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(fromThreads[t], &EvalMemoCache::sharedInstance());

    // And memoized results through it are bit-identical to the oracle.
    EvalMemoCache &shared = EvalMemoCache::sharedInstance();
    NodeConfig cfg = paperConfig();
    EvalResult direct = evaluator().evaluate(cfg, App::LULESH);
    EvalResult memod =
        evaluator().evaluateMemo(cfg, App::LULESH, shared);
    EXPECT_TRUE(sameEval(direct, memod));
}

} // anonymous namespace
} // namespace ena

/**
 * @file
 * Determinism of the parallel sweep engine: every DSE entry point and
 * study must produce results element-for-element identical to a
 * single-threaded (ENA_THREADS=1 equivalent) run.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/dse.hh"
#include "core/studies.hh"
#include "util/thread_pool.hh"

using namespace ena;

namespace {

const NodeEvaluator &
evaluator()
{
    static NodeEvaluator eval;
    return eval;
}

/** Runs fn twice — serial pool, then oversubscribed pool — and hands
 *  both results to check for exact comparison. */
template <typename Fn, typename Check>
void
serialVsParallel(Fn &&fn, Check &&check)
{
    ThreadPool::setGlobalThreads(1);
    auto serial = fn();
    ThreadPool::setGlobalThreads(8);
    auto parallel = fn();
    ThreadPool::setGlobalThreads(0);
    check(serial, parallel);
}

} // anonymous namespace

TEST(ParallelSweep, SweepIsBitIdenticalToSerial)
{
    DesignSpaceExplorer dse(evaluator(), DseGrid::paperGrid(), 160.0);
    serialVsParallel(
        [&] { return dse.sweep(PowerOptConfig::none()); },
        [](const std::vector<DsePoint> &a,
           const std::vector<DsePoint> &b) {
            ASSERT_EQ(a.size(), b.size());
            for (size_t i = 0; i < a.size(); ++i) {
                EXPECT_EQ(a[i].cfg.cus, b[i].cfg.cus);
                EXPECT_EQ(a[i].cfg.freqGhz, b[i].cfg.freqGhz);
                EXPECT_EQ(a[i].cfg.bwTbs, b[i].cfg.bwTbs);
                EXPECT_EQ(a[i].geomeanFlops, b[i].geomeanFlops);
                EXPECT_EQ(a[i].meanBudgetPowerW, b[i].meanBudgetPowerW);
                EXPECT_EQ(a[i].maxBudgetPowerW, b[i].maxBudgetPowerW);
                EXPECT_EQ(a[i].feasible, b[i].feasible);
            }
        });
}

TEST(ParallelSweep, BestMeanMatchesSerial)
{
    DesignSpaceExplorer dse(evaluator(), DseGrid::paperGrid(), 160.0);
    serialVsParallel(
        [&] { return dse.findBestMean(PowerOptConfig::none()); },
        [](const NodeConfig &a, const NodeConfig &b) {
            EXPECT_EQ(a.cus, b.cus);
            EXPECT_EQ(a.freqGhz, b.freqGhz);
            EXPECT_EQ(a.bwTbs, b.bwTbs);
        });
}

TEST(ParallelSweep, BestForAppMatchesSerial)
{
    DesignSpaceExplorer dse(evaluator(), DseGrid::paperGrid(), 160.0);
    for (App app : {App::MaxFlops, App::XSBench, App::LULESH}) {
        serialVsParallel(
            [&] { return dse.findBestForApp(app, PowerOptConfig::all()); },
            [](const AppBest &a, const AppBest &b) {
                EXPECT_EQ(a.cfg.cus, b.cfg.cus);
                EXPECT_EQ(a.cfg.freqGhz, b.cfg.freqGhz);
                EXPECT_EQ(a.cfg.bwTbs, b.cfg.bwTbs);
                EXPECT_EQ(a.flops, b.flops);
                EXPECT_EQ(a.budgetPowerW, b.budgetPowerW);
            });
    }
}

TEST(ParallelSweep, TableIIMatchesSerial)
{
    DesignSpaceExplorer dse(evaluator(), DseGrid::paperGrid(), 160.0);
    serialVsParallel(
        [&] { return dse.tableII(NodeConfig::bestMean()); },
        [](const std::vector<TableIIRow> &a,
           const std::vector<TableIIRow> &b) {
            ASSERT_EQ(a.size(), b.size());
            for (size_t i = 0; i < a.size(); ++i) {
                EXPECT_EQ(a[i].app, b[i].app);
                EXPECT_EQ(a[i].bestConfig.cus, b[i].bestConfig.cus);
                EXPECT_EQ(a[i].bestConfig.freqGhz,
                          b[i].bestConfig.freqGhz);
                EXPECT_EQ(a[i].bestConfig.bwTbs, b[i].bestConfig.bwTbs);
                EXPECT_EQ(a[i].benefitNoOptPct, b[i].benefitNoOptPct);
                EXPECT_EQ(a[i].benefitWithOptPct,
                          b[i].benefitWithOptPct);
            }
        });
}

TEST(ParallelSweep, OpbSweepMatchesSerial)
{
    OpbSweepStudy study(evaluator(), NodeConfig::bestMean());
    serialVsParallel(
        [&] {
            return study.sweepFrequency(
                App::CoMD, OpbSweepStudy::paperBandwidths(),
                {0.7, 0.9, 1.1, 1.3, 1.5});
        },
        [](const std::vector<OpbCurve> &a,
           const std::vector<OpbCurve> &b) {
            ASSERT_EQ(a.size(), b.size());
            for (size_t c = 0; c < a.size(); ++c) {
                EXPECT_EQ(a[c].bwTbs, b[c].bwTbs);
                ASSERT_EQ(a[c].points.size(), b[c].points.size());
                for (size_t p = 0; p < a[c].points.size(); ++p) {
                    EXPECT_EQ(a[c].points[p].opsPerByte,
                              b[c].points[p].opsPerByte);
                    EXPECT_EQ(a[c].points[p].normPerf,
                              b[c].points[p].normPerf);
                }
            }
        });
}

TEST(ParallelSweep, MissRateStudyMatchesSerial)
{
    MissRateStudy study(evaluator(), NodeConfig::bestMean());
    serialVsParallel(
        [&] { return study.run(); },
        [](const std::vector<MissRateSeries> &a,
           const std::vector<MissRateSeries> &b) {
            ASSERT_EQ(a.size(), b.size());
            for (size_t i = 0; i < a.size(); ++i) {
                EXPECT_EQ(a[i].app, b[i].app);
                ASSERT_EQ(a[i].points.size(), b[i].points.size());
                for (size_t p = 0; p < a[i].points.size(); ++p) {
                    EXPECT_EQ(a[i].points[p].normPerf,
                              b[i].points[p].normPerf);
                }
            }
        });
}

TEST(ParallelSweep, SweepGridOrderMatchesSerialEnumeration)
{
    // The flat-index decomposition must reproduce the historical
    // (cus, freq, bw) nesting order exactly.
    DseGrid g;
    g.cus = {192, 256};
    g.freqsGhz = {0.8, 1.0, 1.2};
    g.bwsTbs = {2.0, 4.0};
    DesignSpaceExplorer dse(evaluator(), g, 160.0);
    auto points = dse.sweep(PowerOptConfig::none());
    ASSERT_EQ(points.size(), 12u);
    size_t i = 0;
    for (int c : g.cus) {
        for (double f : g.freqsGhz) {
            for (double bw : g.bwsTbs) {
                EXPECT_EQ(points[i].cfg.cus, c) << "index " << i;
                EXPECT_EQ(points[i].cfg.freqGhz, f) << "index " << i;
                EXPECT_EQ(points[i].cfg.bwTbs, bw) << "index " << i;
                ++i;
            }
        }
    }
}

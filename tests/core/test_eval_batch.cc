/**
 * @file
 * NodeConfigBatch / evaluateBatch / evaluateBatchAll: bit-identity
 * against the scalar NodeEvaluator::evaluate oracle across the full
 * Table II grid and randomized configurations, batch enumeration
 * order, memoized batches, and the fatal path for invalid knobs.
 */

#include <gtest/gtest.h>

#include "core/dse.hh"
#include "core/eval_batch.hh"
#include "core/eval_memo.hh"
#include "core/node_evaluator.hh"
#include "util/rng.hh"
#include "util/stats_math.hh"

namespace ena {
namespace {

const NodeEvaluator &
evaluator()
{
    static NodeEvaluator eval;
    return eval;
}

NodeConfigBatch
paperBatch()
{
    DseGrid grid = DseGrid::paperGrid();
    NodeConfig base;
    base.cus = grid.cus.front();
    base.freqGhz = grid.freqsGhz.front();
    base.bwTbs = grid.bwsTbs.front();
    return NodeConfigBatch::fromAxes(base, grid.cus, grid.freqsGhz,
                                     grid.bwsTbs);
}

TEST(NodeConfigBatch, FromAxesEnumeratesRowMajor)
{
    NodeConfig base;
    NodeConfigBatch b = NodeConfigBatch::fromAxes(
        base, {64, 128}, {1.0, 2.0, 3.0}, {4.0, 5.0});
    ASSERT_EQ(b.size(), 12u);
    // cus outer, freq middle, bw inner — DSE's configAt order.
    EXPECT_EQ(b.cus[0], 64);
    EXPECT_EQ(b.freqsGhz[0], 1.0);
    EXPECT_EQ(b.bwsTbs[0], 4.0);
    EXPECT_EQ(b.bwsTbs[1], 5.0);
    EXPECT_EQ(b.freqsGhz[2], 2.0);
    EXPECT_EQ(b.cus[6], 128);

    NodeConfig at = b.at(7);
    EXPECT_EQ(at.cus, 128);
    EXPECT_EQ(at.freqGhz, 1.0);
    EXPECT_EQ(at.bwTbs, 5.0);
}

TEST(EvaluateBatch, BitIdenticalToScalarAcrossTableIIGrid)
{
    NodeConfigBatch b = paperBatch();
    for (App app : allApps()) {
        BatchEvalResult r = evaluator().evaluateBatch(b, app);
        ASSERT_EQ(r.flops.size(), b.size());
        for (std::size_t i = 0; i < b.size(); ++i) {
            EvalResult oracle = evaluator().evaluate(b.at(i), app);
            EXPECT_EQ(r.flops[i], oracle.perf.flops);
            EXPECT_EQ(r.budgetPowerW[i], oracle.power.budgetPower());
            EXPECT_EQ(r.packagePowerW[i], oracle.power.packagePower());
            EXPECT_EQ(r.totalPowerW[i], oracle.power.total());
        }
    }
}

TEST(EvaluateBatch, BitIdenticalOnRandomizedConfigs)
{
    Rng rng(42);
    NodeConfigBatch b;
    b.base.opts = PowerOptConfig::all();
    for (int i = 0; i < 200; ++i) {
        int cus = static_cast<int>(rng.range(1, 4096));
        double f = 0.05 + rng.uniform() * 9.9;
        double bw = 0.05 + rng.uniform() * 99.0;
        b.push(cus, f, bw);
    }
    BatchEvalResult r = evaluator().evaluateBatch(b, App::HPGMG);
    for (std::size_t i = 0; i < b.size(); ++i) {
        EvalResult oracle = evaluator().evaluate(b.at(i), App::HPGMG);
        EXPECT_EQ(r.flops[i], oracle.perf.flops) << "point " << i;
        EXPECT_EQ(r.budgetPowerW[i], oracle.power.budgetPower())
            << "point " << i;
    }
}

TEST(EvaluateBatch, MemoizedBatchMatchesUnmemoized)
{
    NodeConfigBatch b = paperBatch();
    EvalMemoCache memo;
    BatchEvalResult plain = evaluator().evaluateBatch(b, App::CoMD);
    BatchEvalResult cold =
        evaluator().evaluateBatch(b, App::CoMD, &memo);
    BatchEvalResult warm =
        evaluator().evaluateBatch(b, App::CoMD, &memo);
    EXPECT_EQ(memo.hits(), 2u * b.size());
    for (std::size_t i = 0; i < b.size(); ++i) {
        EXPECT_EQ(plain.flops[i], cold.flops[i]);
        EXPECT_EQ(plain.flops[i], warm.flops[i]);
        EXPECT_EQ(plain.totalPowerW[i], warm.totalPowerW[i]);
    }
}

TEST(EvaluateBatchAll, AggregatesMatchScalarFold)
{
    NodeConfigBatch b = paperBatch();
    BatchAggregates agg = evaluator().evaluateBatchAll(b);
    const std::vector<App> &apps = allApps();
    std::vector<double> flops(apps.size());
    std::vector<double> budget(apps.size());
    for (std::size_t i = 0; i < b.size(); ++i) {
        for (std::size_t a = 0; a < apps.size(); ++a) {
            EvalResult r = evaluator().evaluate(b.at(i), apps[a]);
            flops[a] = r.perf.flops;
            budget[a] = r.power.budgetPower();
        }
        EXPECT_EQ(agg.geomeanFlops[i], geomean(flops));
        EXPECT_EQ(agg.meanBudgetPowerW[i], mean(budget));
        double worst = 0.0;
        for (double w : budget)
            worst = std::max(worst, w);
        EXPECT_EQ(agg.maxBudgetPowerW[i], worst);
    }
}

TEST(EvaluateBatch, EmptyBatchIsANoOp)
{
    NodeConfigBatch b;
    BatchEvalResult r = evaluator().evaluateBatch(b, App::CoMD);
    EXPECT_TRUE(r.flops.empty());
    BatchAggregates agg = evaluator().evaluateBatchAll(b);
    EXPECT_TRUE(agg.geomeanFlops.empty());
}

TEST(EvaluateBatchDeathTest, InvalidKnobDiesWithValidateDiagnostic)
{
    NodeConfigBatch b;
    b.push(320, 1.0, 3.0);
    b.push(-64, 1.0, 3.0);
    EXPECT_EXIT(evaluator().evaluateBatch(b, App::CoMD),
                testing::ExitedWithCode(1), "bad CU count");
}

} // anonymous namespace
} // namespace ena

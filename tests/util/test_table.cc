/**
 * @file
 * Unit tests for the text-table / CSV emitter.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "util/table.hh"

using namespace ena;

TEST(TextTable, AlignedOutput)
{
    TextTable t({"name", "value"});
    t.row().add("alpha").add(1);
    t.row().add("b").add(23.456, "%.1f");
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("23.5"), std::string::npos);
    // Header rule present.
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, NumRows)
{
    TextTable t({"a"});
    EXPECT_EQ(t.numRows(), 0u);
    t.row().add(1);
    t.row().add(2);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TextTable, CsvOutput)
{
    TextTable t({"x", "y"});
    t.row().add("p").add(2);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\np,2\n");
}

TEST(TextTable, CsvEscapesSpecials)
{
    TextTable t({"x"});
    t.row().add("a,b");
    t.row().add("say \"hi\"");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
    EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, ShortRowsPadded)
{
    TextTable t({"a", "b", "c"});
    t.row().add(1);   // only one of three cells
    std::ostringstream os;
    t.print(os);
    SUCCEED();
}

TEST(TextTableDeathTest, TooManyCellsPanics)
{
    TextTable t({"only"});
    t.row().add(1);
    EXPECT_DEATH(t.add(2), "more cells than headers");
}

TEST(TextTableDeathTest, AddBeforeRowPanics)
{
    TextTable t({"only"});
    EXPECT_DEATH(t.add(1), "before row");
}

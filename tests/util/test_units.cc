/**
 * @file
 * Unit tests for units and tick conversions.
 */

#include <gtest/gtest.h>

#include "util/units.hh"

using namespace ena;

TEST(Units, Prefixes)
{
    EXPECT_DOUBLE_EQ(units::giga, 1e9);
    EXPECT_DOUBLE_EQ(units::pico, 1e-12);
    EXPECT_EQ(units::gib, 1024ull * 1024 * 1024);
}

TEST(Units, GhzToHz)
{
    EXPECT_DOUBLE_EQ(units::ghzToHz(1.5), 1.5e9);
}

TEST(Units, PowerFromEventRate)
{
    // 1e12 events/s at 1 pJ each = 1 W.
    EXPECT_DOUBLE_EQ(units::powerFromEventRate(1e12, 1.0), 1.0);
    // 3 TB/s at 5 pJ/byte = 15 W.
    EXPECT_NEAR(units::powerFromEventRate(3e12, 5.0), 15.0, 1e-9);
}

TEST(Units, ClockPeriod)
{
    EXPECT_EQ(clockPeriod(1.0), 1000u);   // 1 GHz = 1 ns = 1000 ticks
    EXPECT_EQ(clockPeriod(2.0), 500u);
    EXPECT_EQ(clockPeriod(0.5), 2000u);
}

TEST(Units, TicksToSeconds)
{
    EXPECT_DOUBLE_EQ(ticksToSeconds(tickPerSec), 1.0);
    EXPECT_DOUBLE_EQ(ticksToSeconds(tickPerNs), 1e-9);
    EXPECT_DOUBLE_EQ(ticksToSeconds(tickPerUs), 1e-6);
}

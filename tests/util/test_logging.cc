/**
 * @file
 * Unit tests for logging: level control, fatal/panic behaviour, and the
 * pluggable sink under concurrent writers.
 */

#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.hh"

using namespace ena;

TEST(Logging, LevelRoundTrip)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(before);
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    setLogLevel(LogLevel::Silent);
    warn("suppressed warning ", 42);
    inform("suppressed info");
    debugLog("suppressed debug");
    setLogLevel(LogLevel::Warn);
    SUCCEED();
}

TEST(LoggingDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(ENA_FATAL("bad user input ", 7),
                testing::ExitedWithCode(1), "bad user input 7");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(ENA_PANIC("internal bug"), "internal bug");
}

TEST(LoggingDeathTest, AssertFiresOnFalse)
{
    EXPECT_DEATH(ENA_ASSERT(1 == 2, "math broke"), "math broke");
}

TEST(Logging, AssertPassesOnTrue)
{
    ENA_ASSERT(2 + 2 == 4, "never shown");
    SUCCEED();
}

TEST(Logging, SinkReceivesFormattedLines)
{
    std::vector<std::string> lines;
    setLogSink([&](LogLevel, const std::string &line) {
        lines.push_back(line);
    });
    setLogLevel(LogLevel::Info);
    warn("watch out ", 7);
    inform("hello");
    setLogSink({});   // restore the default stdout/stderr sink
    setLogLevel(LogLevel::Warn);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "warn: watch out 7");
    EXPECT_EQ(lines[1], "info: hello");
}

TEST(Logging, SinkRespectsLogLevel)
{
    int calls = 0;
    setLogSink([&](LogLevel, const std::string &) { ++calls; });
    setLogLevel(LogLevel::Silent);
    warn("dropped");
    inform("dropped");
    setLogSink({});
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(calls, 0);
}

TEST(Logging, ConcurrentWarnsAreSerializedAndUntorn)
{
    // The sink runs under the logger's lock: with 8 threads hammering
    // warn() every captured line must still be complete (no
    // interleaving) and none may be lost.
    constexpr int kThreads = 8;
    constexpr int kPerThread = 200;
    std::mutex m;
    std::vector<std::string> lines;
    setLogSink([&](LogLevel, const std::string &line) {
        // The logger already serializes sink calls; this lock only
        // protects the test's own vector from the final reader.
        std::lock_guard<std::mutex> lk(m);
        lines.push_back(line);
    });
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i)
                warn("thread ", t, " message ", i, " end");
        });
    }
    for (auto &th : threads)
        th.join();
    setLogSink({});

    ASSERT_EQ(lines.size(),
              static_cast<std::size_t>(kThreads * kPerThread));
    std::vector<int> seen(kThreads, 0);
    for (const std::string &line : lines) {
        int t = -1, i = -1;
        ASSERT_EQ(std::sscanf(line.c_str(),
                              "warn: thread %d message %d end", &t, &i),
                  2)
            << "torn line: " << line;
        // Round-trip: the whole line must be exactly one message.
        ASSERT_EQ(line, "warn: thread " + std::to_string(t) +
                            " message " + std::to_string(i) + " end")
            << "torn line: " << line;
        ASSERT_GE(t, 0);
        ASSERT_LT(t, kThreads);
        ++seen[t];
    }
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(seen[t], kPerThread);
}

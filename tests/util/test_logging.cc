/**
 * @file
 * Unit tests for logging: level control, fatal/panic behaviour.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

using namespace ena;

TEST(Logging, LevelRoundTrip)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(before);
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    setLogLevel(LogLevel::Silent);
    warn("suppressed warning ", 42);
    inform("suppressed info");
    debugLog("suppressed debug");
    setLogLevel(LogLevel::Warn);
    SUCCEED();
}

TEST(LoggingDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(ENA_FATAL("bad user input ", 7),
                testing::ExitedWithCode(1), "bad user input 7");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(ENA_PANIC("internal bug"), "internal bug");
}

TEST(LoggingDeathTest, AssertFiresOnFalse)
{
    EXPECT_DEATH(ENA_ASSERT(1 == 2, "math broke"), "math broke");
}

TEST(Logging, AssertPassesOnTrue)
{
    ENA_ASSERT(2 + 2 == 4, "never shown");
    SUCCEED();
}

/**
 * @file
 * Unit and statistical-property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "util/rng.hh"

using namespace ena;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng r(13);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++counts[r.below(8)];
    for (int c : counts)
        EXPECT_GT(c, 800);   // each bucket near 1000
}

TEST(Rng, RangeInclusive)
{
    Rng r(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        auto v = r.range(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng r(3);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) {
        if (r.chance(0.25))
            ++hits;
    }
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, ChanceDegenerateProbabilities)
{
    Rng r(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, BurstLengthMean)
{
    Rng r(21);
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(r.burstLength(4.0));
    EXPECT_NEAR(total / n, 4.0, 0.25);
}

TEST(Rng, BurstLengthShortMean)
{
    Rng r(22);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.burstLength(1.0), 1u);
}

/**
 * @file
 * ThreadPool mechanics: determinism, edge cases (zero items, one item,
 * more threads than items), nesting, and exception propagation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/fault_inject.hh"
#include "util/thread_pool.hh"

using namespace ena;

TEST(ThreadPool, ZeroItemsIsANoOp)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
    EXPECT_TRUE(pool.parallelMap(0, [](std::size_t i) { return i; })
                    .empty());
}

TEST(ThreadPool, OneItemRunsExactlyOnce)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, MoreThreadsThanItems)
{
    ThreadPool pool(16);
    std::vector<int> hits(3, 0);
    pool.parallelFor(3, [&](std::size_t i) { ++hits[i]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 10007;   // prime, not a multiple of chunk
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, MapPreservesIndexOrder)
{
    ThreadPool pool(8);
    auto out = pool.parallelMap(
        1000, [](std::size_t i) { return 3 * i + 1; });
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], 3 * i + 1);
}

TEST(ThreadPool, ParallelResultsMatchSerialBitwise)
{
    // A floating-point map whose per-slot results must not depend on
    // the thread count (the determinism contract every sweep relies
    // on).
    auto work = [](std::size_t i) {
        double x = static_cast<double>(i) + 0.5;
        return std::sqrt(x) * std::log(x + 1.0) / (x + 2.0);
    };
    ThreadPool serial(1);
    ThreadPool parallel(7);
    auto a = serial.parallelMap(5000, work);
    auto b = parallel.parallelMap(5000, work);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "index " << i;   // bitwise, not near
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(1000,
                         [](std::size_t i) {
                             if (i == 617)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool survives a failed job and runs the next one normally.
    std::atomic<int> calls{0};
    pool.parallelFor(100, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 100);
}

TEST(ThreadPool, ExceptionPropagatesFromSerialFallback)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(
                     10, [](std::size_t) { throw std::logic_error("x"); }),
                 std::logic_error);
}

TEST(ThreadPool, EveryIndexRunsEvenWhenOneThrows)
{
    // Failure isolation: a throwing index must not prevent the others
    // from executing (they get quarantined by the sweep layer, not
    // skipped by the pool).
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(100);
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](std::size_t i) {
                                      ++hits[i];
                                      if (i == 41)
                                          throw std::runtime_error("41");
                                  }),
                 std::runtime_error);
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, LowestFailingIndexWinsAtAnyThreadCount)
{
    // With several failing indices the join barrier must rethrow the
    // lowest one — the same failure a serial loop would surface first —
    // regardless of which worker happened to hit its failure last.
    for (int threads : {1, 4, 8}) {
        ThreadPool pool(threads);
        std::string what;
        try {
            pool.parallelFor(200, [](std::size_t i) {
                if (i == 23 || i == 99 || i == 180)
                    throw std::runtime_error("fail@" + std::to_string(i));
            });
        } catch (const std::runtime_error &e) {
            what = e.what();
        }
        EXPECT_EQ(what, "fail@23") << threads << " threads";
    }
}

TEST(ThreadPool, DestructionJoinsCleanlyAfterAThrowingJob)
{
    // Regression: a throwing task must neither std::terminate the
    // process nor leave a worker wedged so the destructor hangs.
    for (int round = 0; round < 20; ++round) {
        ThreadPool pool(4);
        EXPECT_THROW(pool.parallelFor(50,
                                      [](std::size_t i) {
                                          if (i % 7 == 3)
                                              throw std::logic_error("x");
                                      }),
                     std::logic_error);
        // Pool destroyed here; a deterministic join must succeed.
    }
    SUCCEED();
}

TEST(ThreadPool, RetryAbsorbsTransientFailures)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> attempts(64);
    pool.parallelFor(
        64,
        [&](std::size_t i) {
            // Every index fails its first two attempts, then succeeds.
            if (attempts[i].fetch_add(1) < 2)
                throw std::runtime_error("transient");
        },
        RetryPolicy::attempts(3));
    for (auto &a : attempts)
        EXPECT_EQ(a.load(), 3);
}

TEST(ThreadPool, RetryGivesUpAfterMaxAttempts)
{
    ThreadPool pool(2);
    std::atomic<int> attempts{0};
    EXPECT_THROW(pool.parallelFor(
                     1,
                     [&](std::size_t) {
                         ++attempts;
                         throw std::runtime_error("permanent");
                     },
                     RetryPolicy::attempts(3)),
                 std::runtime_error);
    EXPECT_EQ(attempts.load(), 3);
}

TEST(ThreadPool, RetryAbsorbsInjectedFaultsBitIdentically)
{
    // The bench_fault_tolerance invariant in miniature: a fault-injected
    // run with retries matches the fault-free serial run bitwise.
    auto work = [](std::size_t i) {
        double x = static_cast<double>(i) + 0.5;
        return std::sqrt(x) / (x + 1.0);
    };
    ThreadPool serial(1);
    auto reference = serial.parallelMap(500, work);

    FaultPlan plan;
    plan.rate = 0.4;
    plan.seed = 2024;
    plan.faultsPerTask = 2;
    fault_inject::setFaultPlan(plan);
    const std::uint64_t before = fault_inject::faultsInjected();
    ThreadPool pool(4);
    pool.setRetryPolicy(RetryPolicy::attempts(3));
    auto faulted = pool.parallelMap(500, work);
    fault_inject::clearFaultPlan();

    EXPECT_GT(fault_inject::faultsInjected(), before);
    ASSERT_EQ(faulted.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
        EXPECT_EQ(faulted[i], reference[i]) << "index " << i;
}

TEST(RetryPolicy, FactoriesAndDefaults)
{
    EXPECT_EQ(RetryPolicy::none().maxAttempts, 1);
    EXPECT_EQ(RetryPolicy::attempts(4).maxAttempts, 4);
    EXPECT_GT(RetryPolicy::attempts(4).backoffUs, 0.0);
    EXPECT_EQ(RetryPolicy::attempts(0).maxAttempts, 1);   // clamped
    EXPECT_EQ(RetryPolicy::attempts(1).backoffUs, 0.0);
}

TEST(RetryPolicy, FromEnvironmentHonorsEnaTaskRetries)
{
    ASSERT_EQ(setenv("ENA_TASK_RETRIES", "5", 1), 0);
    EXPECT_EQ(RetryPolicy::fromEnvironment().maxAttempts, 5);
    ASSERT_EQ(setenv("ENA_TASK_RETRIES", "garbage", 1), 0);
    EXPECT_EQ(RetryPolicy::fromEnvironment().maxAttempts, 1);
    ASSERT_EQ(unsetenv("ENA_TASK_RETRIES"), 0);
    EXPECT_EQ(RetryPolicy::fromEnvironment().maxAttempts, 1);
}

TEST(ThreadPool, SetRetryPolicyIsTheJobDefault)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.retryPolicy().maxAttempts,
              RetryPolicy::fromEnvironment().maxAttempts);
    pool.setRetryPolicy(RetryPolicy::attempts(2));
    std::atomic<int> attempts{0};
    EXPECT_THROW(pool.parallelFor(1,
                                  [&](std::size_t) {
                                      ++attempts;
                                      throw std::runtime_error("p");
                                  }),
                 std::runtime_error);
    EXPECT_EQ(attempts.load(), 2);   // the pool default applied
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64);
    pool.parallelFor(8, [&](std::size_t outer) {
        // Inner calls must not deadlock; they run serially on the
        // owning thread.
        pool.parallelFor(8, [&](std::size_t inner) {
            ++hits[outer * 8 + inner];
        });
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SequentialJobsReuseWorkers)
{
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> calls{0};
        pool.parallelFor(97, [&](std::size_t) { ++calls; });
        ASSERT_EQ(calls.load(), 97);
    }
}

TEST(ThreadPool, ThreadsReportsPoolSize)
{
    EXPECT_EQ(ThreadPool(3).threads(), 3);
    EXPECT_EQ(ThreadPool(1).threads(), 1);
    EXPECT_GE(ThreadPool().threads(), 1);
}

TEST(ThreadPool, SizeAliasesThreads)
{
    ThreadPool pool(5);
    EXPECT_EQ(pool.size(), pool.threads());
    EXPECT_EQ(pool.size(), 5);
}

TEST(ThreadPool, QueuedTasksIsZeroWhenIdle)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.queuedTasks(), 0u);
    pool.parallelFor(100, [](std::size_t) {});
    EXPECT_EQ(pool.queuedTasks(), 0u);   // drained after the job
}

TEST(ThreadPool, TasksExecutedCountsEveryIndex)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.tasksExecuted(), 0u);
    EXPECT_EQ(pool.jobsSubmitted(), 0u);
    pool.parallelFor(123, [](std::size_t) {});
    EXPECT_EQ(pool.tasksExecuted(), 123u);
    EXPECT_EQ(pool.jobsSubmitted(), 1u);
    pool.parallelFor(0, [](std::size_t) {});   // no-op, not a job
    pool.parallelFor(7, [](std::size_t) {});
    EXPECT_EQ(pool.tasksExecuted(), 130u);
    EXPECT_EQ(pool.jobsSubmitted(), 2u);
}

TEST(ThreadPool, TasksExecutedCountsSerialAndNestedPaths)
{
    ThreadPool serial(1);
    serial.parallelFor(11, [](std::size_t) {});
    EXPECT_EQ(serial.tasksExecuted(), 11u);

    ThreadPool pool(4);
    pool.parallelFor(4, [&](std::size_t) {
        pool.parallelFor(3, [](std::size_t) {});   // nested -> inline
    });
    EXPECT_EQ(pool.tasksExecuted(), 4u + 4u * 3u);
}

TEST(ThreadPool, DefaultThreadsHonorsEnaThreadsEnv)
{
    ASSERT_EQ(setenv("ENA_THREADS", "3", 1), 0);
    EXPECT_EQ(ThreadPool::defaultThreads(), 3);
    ASSERT_EQ(setenv("ENA_THREADS", "not-a-number", 1), 0);
    EXPECT_GE(ThreadPool::defaultThreads(), 1);   // falls back, warns
    ASSERT_EQ(unsetenv("ENA_THREADS"), 0);
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
}

TEST(ThreadPool, ReduceSumsInIndexOrder)
{
    ThreadPool pool(8);
    auto sum = pool.parallelReduce(
        1000, std::size_t{0}, [](std::size_t i) { return i; },
        [](std::size_t acc, std::size_t v) { return acc + v; });
    EXPECT_EQ(sum, 999u * 1000u / 2u);
}

TEST(ThreadPool, ReduceOfZeroItemsReturnsInit)
{
    ThreadPool pool(4);
    auto r = pool.parallelReduce(
        0, 42, [](std::size_t) { return 7; },
        [](int acc, int v) { return acc + v; });
    EXPECT_EQ(r, 42);
}

TEST(ThreadPool, ReduceIsDeterministicForNonCommutativeOps)
{
    // String concatenation is order-sensitive: the reduction must fold
    // slots in index order regardless of which thread produced them.
    auto digit = [](std::size_t i) { return std::to_string(i % 10); };
    auto concat = [](std::string acc, std::string v) {
        return std::move(acc) + std::move(v);
    };
    ThreadPool serial(1);
    ThreadPool parallel(8);
    auto a = serial.parallelReduce(200, std::string{}, digit, concat);
    auto b = parallel.parallelReduce(200, std::string{}, digit, concat);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 200u);
    EXPECT_EQ(a.substr(0, 12), "012345678901");
}

TEST(ThreadPool, ReduceFloatingPointBitIdenticalToSerial)
{
    // FP addition is non-associative, so a deterministic reduction must
    // not regroup terms by thread count.
    auto term = [](std::size_t i) {
        double x = static_cast<double>(i) + 0.25;
        return std::sqrt(x) / (x + 1.0);
    };
    auto add = [](double acc, double v) { return acc + v; };
    ThreadPool serial(1);
    ThreadPool parallel(7);
    double a = serial.parallelReduce(5000, 0.0, term, add);
    double b = parallel.parallelReduce(5000, 0.0, term, add);
    EXPECT_EQ(a, b);   // bitwise, not near
}

TEST(ThreadPool, FreeFunctionReduceUsesGlobalPool)
{
    ThreadPool::setGlobalThreads(3);
    auto sum = parallel_reduce(
        100, 0, [](std::size_t i) { return static_cast<int>(i); },
        [](int acc, int v) { return acc + v; });
    EXPECT_EQ(sum, 4950);
    ThreadPool::setGlobalThreads(0);
}

TEST(ThreadPool, GlobalPoolIsResizable)
{
    ThreadPool::setGlobalThreads(2);
    EXPECT_EQ(ThreadPool::global().threads(), 2);
    std::atomic<int> calls{0};
    parallel_for(10, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 10);
    auto sq = parallel_map(5, [](std::size_t i) { return i * i; });
    EXPECT_EQ(sq, (std::vector<std::size_t>{0, 1, 4, 9, 16}));
    ThreadPool::setGlobalThreads(0);   // back to the default size
    EXPECT_EQ(ThreadPool::global().threads(),
              ThreadPool::defaultThreads());
}

/**
 * @file
 * Unit tests for util/string_utils.
 */

#include <gtest/gtest.h>

#include "util/string_utils.hh"

using namespace ena;

TEST(StringUtils, TrimRemovesSurroundingWhitespace)
{
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("\t a b \n"), "a b");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(StringUtils, SplitOnDelimiter)
{
    auto parts = split("a, b ,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(StringUtils, SplitKeepsEmptyPieces)
{
    auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "");
}

TEST(StringUtils, SplitSinglePiece)
{
    auto parts = split("alone", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "alone");
}

TEST(StringUtils, ToLower)
{
    EXPECT_EQ(toLower("CoMD-LJ"), "comd-lj");
    EXPECT_EQ(toLower("ABC123"), "abc123");
}

TEST(StringUtils, ParseDoubleValid)
{
    EXPECT_DOUBLE_EQ(parseDouble("3.5").value(), 3.5);
    EXPECT_DOUBLE_EQ(parseDouble(" -2e3 ").value(), -2000.0);
    EXPECT_DOUBLE_EQ(parseDouble("0").value(), 0.0);
}

TEST(StringUtils, ParseDoubleInvalid)
{
    EXPECT_FALSE(parseDouble("abc").has_value());
    EXPECT_FALSE(parseDouble("3.5x").has_value());
    EXPECT_FALSE(parseDouble("").has_value());
}

TEST(StringUtils, ParseIntValid)
{
    EXPECT_EQ(parseInt("42").value(), 42);
    EXPECT_EQ(parseInt("-7").value(), -7);
    EXPECT_EQ(parseInt("0x10").value(), 16);
}

TEST(StringUtils, ParseIntInvalid)
{
    EXPECT_FALSE(parseInt("4.2").has_value());
    EXPECT_FALSE(parseInt("x").has_value());
    EXPECT_FALSE(parseInt("").has_value());
}

TEST(StringUtils, ParseBool)
{
    EXPECT_TRUE(parseBool("true").value());
    EXPECT_TRUE(parseBool("YES").value());
    EXPECT_TRUE(parseBool("1").value());
    EXPECT_FALSE(parseBool("false").value());
    EXPECT_FALSE(parseBool("off").value());
    EXPECT_FALSE(parseBool("maybe").has_value());
}

TEST(StringUtils, StartsWith)
{
    EXPECT_TRUE(startsWith("ehp.cus", "ehp."));
    EXPECT_FALSE(startsWith("ehp", "ehp."));
    EXPECT_TRUE(startsWith("abc", ""));
}

TEST(StringUtils, Strformat)
{
    EXPECT_EQ(strformat("%d-%s", 3, "x"), "3-x");
    EXPECT_EQ(strformat("%.2f", 1.005), "1.00");
    // Long output exceeding any small internal buffer.
    std::string big = strformat("%0200d", 7);
    EXPECT_EQ(big.size(), 200u);
}

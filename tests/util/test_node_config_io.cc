/**
 * @file
 * Tests for the Config <-> NodeConfig bindings.
 */

#include <gtest/gtest.h>

#include "common/node_config_io.hh"

using namespace ena;

TEST(NodeConfigIo, DefaultsWhenEmpty)
{
    NodeConfig n = nodeConfigFromConfig(Config{});
    EXPECT_EQ(n.cus, 320);
    EXPECT_DOUBLE_EQ(n.freqGhz, 1.0);
    EXPECT_DOUBLE_EQ(n.bwTbs, 3.0);
    EXPECT_DOUBLE_EQ(n.ext.dramGb, 768.0);
    EXPECT_FALSE(n.opts.any());
}

TEST(NodeConfigIo, ParsesAllSections)
{
    Config cfg = Config::fromString(
        "ehp.cus = 256\n"
        "ehp.freq_ghz = 1.2\n"
        "ehp.bw_tbs = 4\n"
        "extmem.dram_gb = 384\n"
        "extmem.nvm_gb = 384\n"
        "opts.ntc = true\n"
        "opts.compression = true\n");
    NodeConfig n = nodeConfigFromConfig(cfg);
    EXPECT_EQ(n.cus, 256);
    EXPECT_DOUBLE_EQ(n.freqGhz, 1.2);
    EXPECT_DOUBLE_EQ(n.bwTbs, 4.0);
    EXPECT_DOUBLE_EQ(n.ext.nvmGb, 384.0);
    EXPECT_TRUE(n.opts.ntc);
    EXPECT_TRUE(n.opts.compression);
    EXPECT_FALSE(n.opts.asyncCu);
}

TEST(NodeConfigIo, RoundTrip)
{
    NodeConfig n;
    n.cus = 224;
    n.freqGhz = 0.925;
    n.bwTbs = 5.0;
    n.ext = ExtMemConfig::hybrid();
    n.opts = PowerOptConfig::all();
    NodeConfig back = nodeConfigFromConfig(nodeConfigToConfig(n));
    EXPECT_EQ(back.cus, n.cus);
    EXPECT_DOUBLE_EQ(back.freqGhz, n.freqGhz);
    EXPECT_DOUBLE_EQ(back.bwTbs, n.bwTbs);
    EXPECT_DOUBLE_EQ(back.ext.nvmGb, n.ext.nvmGb);
    EXPECT_TRUE(back.opts.ntc);
    EXPECT_TRUE(back.opts.lpLinks);
}

TEST(NodeConfigIo, TryLoadReportsUnknownKeyWithOrigin)
{
    Config cfg = unwrapOrFatal(
        Config::tryFromString("ehp.cuz = 320\n", "node.ini"));
    auto n = tryNodeConfigFromConfig(cfg);
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(n.status().message().find("ehp.cuz"), std::string::npos);
    EXPECT_NE(n.status().message().find("node.ini:1"),
              std::string::npos);
}

TEST(NodeConfigIo, TryLoadReportsMalformedValueWithOrigin)
{
    Config cfg = unwrapOrFatal(Config::tryFromString(
        "ehp.cus = 256\nehp.freq_ghz = fast\n", "node.ini"));
    auto n = tryNodeConfigFromConfig(cfg);
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.status().code(), ErrorCode::ParseError);
    EXPECT_NE(n.status().message().find("ehp.freq_ghz"),
              std::string::npos);
    EXPECT_NE(n.status().message().find("node.ini:2"),
              std::string::npos);
    EXPECT_NE(n.status().message().find("'fast'"), std::string::npos);
}

TEST(NodeConfigIo, TryLoadReportsRangeViolationsAsStatus)
{
    Config cfg = Config::fromString("ehp.cus = 0\n");
    auto n = tryNodeConfigFromConfig(cfg);
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.status().code(), ErrorCode::OutOfRange);
    EXPECT_NE(n.status().message().find("bad CU count"),
              std::string::npos);
}

TEST(NodeConfigIoDeathTest, UnknownKeyIsFatal)
{
    Config cfg = Config::fromString("ehp.cuz = 320\n");
    EXPECT_EXIT(nodeConfigFromConfig(cfg), testing::ExitedWithCode(1),
                "unknown node-config key");
}

TEST(NodeConfigIoDeathTest, InvalidValueIsFatal)
{
    Config cfg = Config::fromString("ehp.cus = 0\n");
    EXPECT_EXIT(nodeConfigFromConfig(cfg), testing::ExitedWithCode(1),
                "bad CU count");
}

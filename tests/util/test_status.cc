/**
 * @file
 * Tests for the ena::Status / ena::Expected error substrate: codes,
 * context chaining, the ENA_TRY / ENA_ASSIGN_OR_RETURN plumbing, and
 * the StatusError exception bridge.
 */

#include <gtest/gtest.h>

#include <string>

#include "util/status.hh"

using namespace ena;

TEST(Status, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::Ok);
    EXPECT_TRUE(s.message().empty());
    EXPECT_EQ(s.toString(), "[ok]");
}

TEST(Status, NamedConstructorsFormatVariadically)
{
    Status s = Status::parseError("line ", 3, ": missing '", '=', "'");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::ParseError);
    EXPECT_EQ(s.message(), "line 3: missing '='");
    EXPECT_EQ(s.toString(), "[parse_error] line 3: missing '='");
}

TEST(Status, EveryCodeHasAStableName)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
    EXPECT_STREQ(errorCodeName(ErrorCode::InvalidArgument),
                 "invalid_argument");
    EXPECT_STREQ(errorCodeName(ErrorCode::NotFound), "not_found");
    EXPECT_STREQ(errorCodeName(ErrorCode::OutOfRange), "out_of_range");
    EXPECT_STREQ(errorCodeName(ErrorCode::ParseError), "parse_error");
    EXPECT_STREQ(errorCodeName(ErrorCode::IoError), "io_error");
    EXPECT_STREQ(errorCodeName(ErrorCode::FailedPrecondition),
                 "failed_precondition");
    EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");
}

TEST(Status, WithContextPrependsAndKeepsTheCode)
{
    Status inner = Status::notFound("missing config key 'ehp.cus'");
    Status outer = inner.withContext("loading node config");
    EXPECT_EQ(outer.code(), ErrorCode::NotFound);
    EXPECT_EQ(outer.message(),
              "loading node config: missing config key 'ehp.cus'");
    // Chaining stacks outermost-first.
    Status twice = outer.withContext("run ", 7);
    EXPECT_EQ(twice.message(),
              "run 7: loading node config: missing config key 'ehp.cus'");
}

TEST(Status, WithContextFormatIsPinned)
{
    // Tooling greps these messages ("context: context: message"), so
    // the exact separator and multi-arg formatting are contractual.
    Status s = Status::parseError("bad token")
                   .withContext("line ", 3)
                   .withContext("loading ", std::string("cfg.ini"));
    EXPECT_EQ(s.code(), ErrorCode::ParseError);
    EXPECT_EQ(s.message(), "loading cfg.ini: line 3: bad token");
}

TEST(Status, WithContextIsANoOpOnOk)
{
    Status s = Status().withContext("should not appear");
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(s.message().empty());
}

TEST(Status, EqualityComparesCodeAndMessage)
{
    EXPECT_EQ(Status(), Status());
    EXPECT_EQ(Status::ioError("x"), Status::ioError("x"));
    EXPECT_FALSE(Status::ioError("x") == Status::ioError("y"));
    EXPECT_FALSE(Status::ioError("x") == Status::parseError("x"));
}

TEST(Expected, HoldsAValue)
{
    Expected<int> e = 42;
    ASSERT_TRUE(e.ok());
    EXPECT_TRUE(static_cast<bool>(e));
    EXPECT_EQ(e.value(), 42);
    EXPECT_EQ(*e, 42);
    EXPECT_TRUE(e.status().ok());
}

TEST(Expected, HoldsAnError)
{
    Expected<int> e = Status::outOfRange("bad CU count");
    EXPECT_FALSE(e.ok());
    EXPECT_FALSE(static_cast<bool>(e));
    EXPECT_EQ(e.status().code(), ErrorCode::OutOfRange);
    EXPECT_EQ(e.status().message(), "bad CU count");
}

TEST(Expected, ValueOrFallsBackOnError)
{
    Expected<double> ok_e = 2.5;
    Expected<double> bad_e = Status::parseError("nope");
    EXPECT_DOUBLE_EQ(ok_e.valueOr(7.0), 2.5);
    EXPECT_DOUBLE_EQ(bad_e.valueOr(7.0), 7.0);
}

TEST(Expected, ArrowReachesMembers)
{
    Expected<std::string> e = std::string("hello");
    EXPECT_EQ(e->size(), 5u);
}

TEST(Expected, RvalueValueMovesOut)
{
    Expected<std::string> e = std::string("move me");
    std::string s = std::move(e).value();
    EXPECT_EQ(s, "move me");
}

TEST(Expected, WithContextChainsOntoTheError)
{
    Expected<int> e = Expected<int>(Status::ioError("cannot open 'f'"))
                          .withContext("loading cluster config");
    EXPECT_FALSE(e.ok());
    EXPECT_EQ(e.status().code(), ErrorCode::IoError);
    EXPECT_EQ(e.status().message(),
              "loading cluster config: cannot open 'f'");
    // And is a pass-through when a value is present.
    Expected<int> v = Expected<int>(3).withContext("ignored");
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 3);
}

namespace {

Status
tryStep(bool fail)
{
    if (fail)
        return Status::failedPrecondition("step refused");
    return Status();
}

Status
tryRun(bool fail)
{
    ENA_TRY(tryStep(fail));
    return Status();
}

Expected<int>
tryParsePositive(int v)
{
    if (v <= 0)
        return Status::outOfRange("want a positive value, got ", v);
    return v;
}

Expected<int>
trySum(int a, int b)
{
    // Two expansions on different lines: the __LINE__-based temp names
    // must not collide.
    ENA_ASSIGN_OR_RETURN(int x, tryParsePositive(a));
    ENA_ASSIGN_OR_RETURN(int y, tryParsePositive(b));
    return x + y;
}

} // anonymous namespace

TEST(StatusMacros, EnaTryPropagatesFirstFailure)
{
    EXPECT_TRUE(tryRun(false).ok());
    Status s = tryRun(true);
    EXPECT_EQ(s.code(), ErrorCode::FailedPrecondition);
    EXPECT_EQ(s.message(), "step refused");
}

TEST(StatusMacros, AssignOrReturnBindsOrPropagates)
{
    Expected<int> ok_e = trySum(2, 3);
    ASSERT_TRUE(ok_e.ok());
    EXPECT_EQ(*ok_e, 5);

    Expected<int> bad = trySum(2, -1);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::OutOfRange);
    EXPECT_EQ(bad.status().message(), "want a positive value, got -1");
}

TEST(StatusError, CarriesTheStatusAcrossAThrow)
{
    try {
        throwIfError(Status::internal("invariant violated"));
        FAIL() << "throwIfError did not throw";
    } catch (const StatusError &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::Internal);
        EXPECT_EQ(e.status().message(), "invariant violated");
        EXPECT_STREQ(e.what(), "[internal] invariant violated");
    }
}

TEST(StatusError, ThrowIfErrorPassesOkThrough)
{
    EXPECT_NO_THROW(throwIfError(Status()));
}

TEST(StatusShims, CheckOrFatalExitsWithTheDiagnostic)
{
    EXPECT_EXIT(checkOrFatal(Status::outOfRange("bad CU count -3")),
                testing::ExitedWithCode(1), "bad CU count -3");
}

TEST(StatusShims, UnwrapOrFatalUnwrapsOrExits)
{
    EXPECT_EQ(unwrapOrFatal(Expected<int>(9)), 9);
    EXPECT_EXIT(unwrapOrFatal(Expected<int>(Status::ioError("no file"))),
                testing::ExitedWithCode(1), "no file");
}

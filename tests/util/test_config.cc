/**
 * @file
 * Unit tests for the Config key-value store.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/config.hh"
#include "util/logging.hh"

using namespace ena;

TEST(Config, ParseBasicPairs)
{
    Config c = Config::fromString("a = 1\nb.x = hello\n");
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.getInt("a"), 1);
    EXPECT_EQ(c.getString("b.x"), "hello");
}

TEST(Config, CommentsAndBlankLines)
{
    Config c = Config::fromString(
        "# full-line comment\n"
        "\n"
        "key = value # trailing comment\n");
    EXPECT_EQ(c.size(), 1u);
    EXPECT_EQ(c.getString("key"), "value");
}

TEST(Config, TypedAccessors)
{
    Config c = Config::fromString(
        "f = 2.5\ni = -3\nb = true\ns = text\n");
    EXPECT_DOUBLE_EQ(c.getDouble("f"), 2.5);
    EXPECT_EQ(c.getInt("i"), -3);
    EXPECT_TRUE(c.getBool("b"));
    EXPECT_EQ(c.getString("s"), "text");
}

TEST(Config, DefaultsWhenMissing)
{
    Config c;
    EXPECT_DOUBLE_EQ(c.getDouble("nope", 7.0), 7.0);
    EXPECT_EQ(c.getInt("nope", 9), 9);
    EXPECT_TRUE(c.getBool("nope", true));
    EXPECT_EQ(c.getString("nope", "d"), "d");
}

TEST(Config, SettersOverwrite)
{
    Config c;
    c.set("k", 1.5);
    c.set("k", 2.5);
    EXPECT_DOUBLE_EQ(c.getDouble("k"), 2.5);
    c.set("flag", true);
    EXPECT_TRUE(c.getBool("flag"));
    c.set("n", 42);
    EXPECT_EQ(c.getInt("n"), 42);
}

TEST(Config, HasAndPrefixSearch)
{
    Config c = Config::fromString(
        "ehp.cus = 320\nehp.freq = 1.0\nextmem.dram = 768\n");
    EXPECT_TRUE(c.has("ehp.cus"));
    EXPECT_FALSE(c.has("ehp.bw"));
    auto keys = c.keysWithPrefix("ehp.");
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "ehp.cus");
    EXPECT_EQ(keys[1], "ehp.freq");
}

TEST(Config, MergeOtherWins)
{
    Config a = Config::fromString("x = 1\ny = 2\n");
    Config b = Config::fromString("y = 3\nz = 4\n");
    a.merge(b);
    EXPECT_EQ(a.getInt("x"), 1);
    EXPECT_EQ(a.getInt("y"), 3);
    EXPECT_EQ(a.getInt("z"), 4);
}

TEST(Config, RoundTripThroughToString)
{
    Config a = Config::fromString("x = 1\ny = hello world\n");
    Config b = Config::fromString(a.toString());
    EXPECT_EQ(b.getInt("x"), 1);
    EXPECT_EQ(b.getString("y"), "hello world");
}

TEST(Config, DuplicateKeyWarnsOnceAndKeepsTheLastValue)
{
    std::vector<std::string> warnings;
    setLogSink([&](LogLevel, const std::string &line) {
        warnings.push_back(line);
    });
    Config c = Config::fromString(
        "k = 1\n"
        "k = 2\n"
        "k = 3\n"
        "other = x\n");
    setLogSink({});
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.getInt("k"), 3);   // last write wins, as before
    int dup_warnings = 0;
    for (const std::string &w : warnings)
        if (w.find("duplicate key 'k'") != std::string::npos)
            ++dup_warnings;
    EXPECT_EQ(dup_warnings, 1);   // once per key, not once per repeat
}

TEST(Config, TryGetReportsMissingKeyAsNotFound)
{
    Config c;
    auto d = c.tryGetDouble("nope");
    ASSERT_FALSE(d.ok());
    EXPECT_EQ(d.status().code(), ErrorCode::NotFound);
    EXPECT_NE(d.status().message().find("'nope'"), std::string::npos);
    auto s = c.tryGetString("nope");
    EXPECT_EQ(s.status().code(), ErrorCode::NotFound);
    auto i = c.tryGetInt("nope");
    EXPECT_EQ(i.status().code(), ErrorCode::NotFound);
    auto b = c.tryGetBool("nope");
    EXPECT_EQ(b.status().code(), ErrorCode::NotFound);
}

TEST(Config, TryGetDiagnosticsCarryTheKeyOrigin)
{
    Config c = unwrapOrFatal(
        Config::tryFromString("a = 1\nbad = abc\n", "cfg.ini"));
    EXPECT_EQ(c.origin("bad"), "cfg.ini:2");
    EXPECT_EQ(c.origin("a"), "cfg.ini:1");
    auto d = c.tryGetDouble("bad");
    ASSERT_FALSE(d.ok());
    EXPECT_EQ(d.status().code(), ErrorCode::ParseError);
    // The diagnostic points back at the offending file:line.
    EXPECT_NE(d.status().message().find("(cfg.ini:2)"),
              std::string::npos);
    EXPECT_NE(d.status().message().find("'abc'"), std::string::npos);
}

TEST(Config, TryGetRejectsTrailingGarbageNumerics)
{
    Config c = Config::fromString("f = 3.0x\ni = 12abc\n");
    auto d = c.tryGetDouble("f");
    ASSERT_FALSE(d.ok());
    EXPECT_EQ(d.status().code(), ErrorCode::ParseError);
    auto i = c.tryGetInt("i");
    ASSERT_FALSE(i.ok());
    EXPECT_EQ(i.status().code(), ErrorCode::ParseError);
}

TEST(Config, TryGetRejectsNonFiniteDoubles)
{
    Config c = Config::fromString(
        "a = nan\nb = inf\nc = -inf\nd = 1e999\n");
    for (const char *key : {"a", "b", "c", "d"}) {
        auto d = c.tryGetDouble(key);
        ASSERT_FALSE(d.ok()) << key;
        EXPECT_EQ(d.status().code(), ErrorCode::OutOfRange) << key;
        EXPECT_NE(d.status().message().find("not a finite number"),
                  std::string::npos)
            << key;
    }
}

TEST(Config, TryGetDefaultedStillRejectsPresentButBadValues)
{
    Config c = Config::fromString("bad = abc\n");
    // Absent key -> the default, no error.
    EXPECT_DOUBLE_EQ(*c.tryGetDouble("missing", 7.0), 7.0);
    EXPECT_EQ(*c.tryGetInt("missing", 9), 9);
    // Present-but-malformed value -> still an error, never the default.
    EXPECT_FALSE(c.tryGetDouble("bad", 7.0).ok());
    EXPECT_FALSE(c.tryGetInt("bad", 9).ok());
    EXPECT_FALSE(c.tryGetBool("bad", true).ok());
}

TEST(Config, TryFromStringReportsParseErrors)
{
    auto missing_eq = Config::tryFromString("just a line\n", "f.ini");
    ASSERT_FALSE(missing_eq.ok());
    EXPECT_EQ(missing_eq.status().code(), ErrorCode::ParseError);
    EXPECT_NE(missing_eq.status().message().find("f.ini:1"),
              std::string::npos);

    auto empty_key = Config::tryFromString("ok = 1\n = v\n", "f.ini");
    ASSERT_FALSE(empty_key.ok());
    EXPECT_NE(empty_key.status().message().find("f.ini:2"),
              std::string::npos);
}

TEST(Config, TryFromFileReportsIoError)
{
    auto e = Config::tryFromFile("no/such/config.ini");
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.status().code(), ErrorCode::IoError);
    EXPECT_NE(e.status().message().find("no/such/config.ini"),
              std::string::npos);
}

TEST(Config, TryFromFileLoadsAndTracksOrigins)
{
    const std::string path = "test_config_origin.tmp";
    std::ofstream(path) << "x = 5\ny = 2.5\n";
    auto e = Config::tryFromFile(path);
    ASSERT_TRUE(e.ok()) << e.status().toString();
    EXPECT_EQ(*e->tryGetInt("x"), 5);
    EXPECT_EQ(e->origin("y"), path + ":2");
    std::remove(path.c_str());
}

using ConfigDeath = Config;

TEST(ConfigDeathTest, MissingKeyIsFatal)
{
    Config c;
    EXPECT_EXIT(c.getDouble("missing"),
                testing::ExitedWithCode(1), "missing config key");
}

TEST(ConfigDeathTest, MalformedNumberIsFatal)
{
    Config c = Config::fromString("k = abc\n");
    EXPECT_EXIT(c.getDouble("k"), testing::ExitedWithCode(1),
                "not a number");
}

TEST(ConfigDeathTest, MissingEqualsIsFatal)
{
    EXPECT_EXIT(Config::fromString("just a line\n"),
                testing::ExitedWithCode(1), "missing '='");
}

/**
 * @file
 * Unit tests for the Config key-value store.
 */

#include <gtest/gtest.h>

#include "util/config.hh"

using namespace ena;

TEST(Config, ParseBasicPairs)
{
    Config c = Config::fromString("a = 1\nb.x = hello\n");
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c.getInt("a"), 1);
    EXPECT_EQ(c.getString("b.x"), "hello");
}

TEST(Config, CommentsAndBlankLines)
{
    Config c = Config::fromString(
        "# full-line comment\n"
        "\n"
        "key = value # trailing comment\n");
    EXPECT_EQ(c.size(), 1u);
    EXPECT_EQ(c.getString("key"), "value");
}

TEST(Config, TypedAccessors)
{
    Config c = Config::fromString(
        "f = 2.5\ni = -3\nb = true\ns = text\n");
    EXPECT_DOUBLE_EQ(c.getDouble("f"), 2.5);
    EXPECT_EQ(c.getInt("i"), -3);
    EXPECT_TRUE(c.getBool("b"));
    EXPECT_EQ(c.getString("s"), "text");
}

TEST(Config, DefaultsWhenMissing)
{
    Config c;
    EXPECT_DOUBLE_EQ(c.getDouble("nope", 7.0), 7.0);
    EXPECT_EQ(c.getInt("nope", 9), 9);
    EXPECT_TRUE(c.getBool("nope", true));
    EXPECT_EQ(c.getString("nope", "d"), "d");
}

TEST(Config, SettersOverwrite)
{
    Config c;
    c.set("k", 1.5);
    c.set("k", 2.5);
    EXPECT_DOUBLE_EQ(c.getDouble("k"), 2.5);
    c.set("flag", true);
    EXPECT_TRUE(c.getBool("flag"));
    c.set("n", 42);
    EXPECT_EQ(c.getInt("n"), 42);
}

TEST(Config, HasAndPrefixSearch)
{
    Config c = Config::fromString(
        "ehp.cus = 320\nehp.freq = 1.0\nextmem.dram = 768\n");
    EXPECT_TRUE(c.has("ehp.cus"));
    EXPECT_FALSE(c.has("ehp.bw"));
    auto keys = c.keysWithPrefix("ehp.");
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "ehp.cus");
    EXPECT_EQ(keys[1], "ehp.freq");
}

TEST(Config, MergeOtherWins)
{
    Config a = Config::fromString("x = 1\ny = 2\n");
    Config b = Config::fromString("y = 3\nz = 4\n");
    a.merge(b);
    EXPECT_EQ(a.getInt("x"), 1);
    EXPECT_EQ(a.getInt("y"), 3);
    EXPECT_EQ(a.getInt("z"), 4);
}

TEST(Config, RoundTripThroughToString)
{
    Config a = Config::fromString("x = 1\ny = hello world\n");
    Config b = Config::fromString(a.toString());
    EXPECT_EQ(b.getInt("x"), 1);
    EXPECT_EQ(b.getString("y"), "hello world");
}

using ConfigDeath = Config;

TEST(ConfigDeathTest, MissingKeyIsFatal)
{
    Config c;
    EXPECT_EXIT(c.getDouble("missing"),
                testing::ExitedWithCode(1), "missing config key");
}

TEST(ConfigDeathTest, MalformedNumberIsFatal)
{
    Config c = Config::fromString("k = abc\n");
    EXPECT_EXIT(c.getDouble("k"), testing::ExitedWithCode(1),
                "not a number");
}

TEST(ConfigDeathTest, MissingEqualsIsFatal)
{
    EXPECT_EXIT(Config::fromString("just a line\n"),
                testing::ExitedWithCode(1), "missing '='");
}

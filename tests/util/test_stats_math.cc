/**
 * @file
 * Unit tests for the numeric helpers, including property checks of the
 * smooth-minimum used by the roofline model.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "util/stats_math.hh"

using namespace ena;

TEST(StatsMath, Mean)
{
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
    EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
}

TEST(StatsMath, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({1.0, 100.0}), 10.0);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(StatsMathDeathTest, GeomeanRejectsNonPositive)
{
    EXPECT_EXIT(geomean({1.0, 0.0}), testing::ExitedWithCode(1),
                "positive");
}

TEST(StatsMath, Stdev)
{
    EXPECT_DOUBLE_EQ(stdev({1.0}), 0.0);
    EXPECT_NEAR(stdev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                2.13809, 1e-4);
}

TEST(StatsMath, Linspace)
{
    auto v = linspace(0.0, 1.0, 5);
    ASSERT_EQ(v.size(), 5u);
    EXPECT_DOUBLE_EQ(v.front(), 0.0);
    EXPECT_DOUBLE_EQ(v[2], 0.5);
    EXPECT_DOUBLE_EQ(v.back(), 1.0);
}

TEST(StatsMath, Clamp)
{
    EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

// Property: smoothMin is bounded above by hard min and approaches it as
// the norm grows.
TEST(StatsMath, SmoothMinBoundedByHardMin)
{
    for (double a : {1.0, 3.0, 10.0}) {
        for (double b : {1.0, 5.0, 100.0}) {
            double s = smoothMin(a, b);
            EXPECT_LE(s, std::min(a, b));
            EXPECT_GT(s, 0.0);
        }
    }
}

TEST(StatsMath, SmoothMinApproachesHardMinWithLargeNorm)
{
    double s = smoothMin(3.0, 9.0, 64.0);
    EXPECT_NEAR(s, 3.0, 0.01);
}

TEST(StatsMath, SmoothMinSymmetric)
{
    EXPECT_DOUBLE_EQ(smoothMin(2.0, 7.0), smoothMin(7.0, 2.0));
}

TEST(StatsMath, SmoothMinEqualInputs)
{
    // p-norm of equal rates: a * 2^(-1/p).
    double s = smoothMin(4.0, 4.0, 6.0);
    EXPECT_NEAR(s, 4.0 * std::pow(2.0, -1.0 / 6.0), 1e-12);
}

TEST(StatsMath, InterpolateWithinAndOutside)
{
    std::vector<double> xs = {0.0, 1.0, 2.0};
    std::vector<double> ys = {0.0, 10.0, 40.0};
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 1.5), 25.0);
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, -1.0), 0.0);   // clamped
    EXPECT_DOUBLE_EQ(interpolate(xs, ys, 3.0), 40.0);   // clamped
}

TEST(StatsMath, SummaryAccumulates)
{
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.stdev(), 1.29099, 1e-4);
}

TEST(StatsMathDeathTest, MeanRejectsEmpty)
{
    EXPECT_EXIT(mean({}), testing::ExitedWithCode(1), "empty");
}

TEST(StatsMathDeathTest, GeomeanRejectsEmpty)
{
    EXPECT_EXIT(geomean({}), testing::ExitedWithCode(1), "empty");
}

TEST(StatsMath, OneElementMeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({3.5}), 3.5);
    EXPECT_DOUBLE_EQ(geomean({3.5}), 3.5);
}

TEST(StatsMath, PercentileInterpolates)
{
    // Unsorted on purpose: percentile sorts a copy.
    std::vector<double> xs = {40.0, 10.0, 30.0, 20.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 17.5);
    // Caller's vector is untouched (taken by value).
    EXPECT_DOUBLE_EQ(xs[0], 40.0);
}

TEST(StatsMath, PercentileSingleElement)
{
    EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 50.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
}

TEST(StatsMathDeathTest, PercentileRejectsEmptyAndBadP)
{
    EXPECT_EXIT(percentile({}, 50.0), testing::ExitedWithCode(1),
                "empty");
    EXPECT_EXIT(percentile({1.0}, -0.5), testing::ExitedWithCode(1),
                "0, 100");
    EXPECT_EXIT(percentile({1.0}, 100.5), testing::ExitedWithCode(1),
                "0, 100");
}

TEST(StatsMath, SummarySingleSample)
{
    Summary s;
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.mean(), 7.0);
    EXPECT_DOUBLE_EQ(s.stdev(), 0.0);
}

/**
 * @file
 * Tests for deterministic fault injection: FaultPlan parsing, the
 * hash-based task-selection contract, the transient-fault attempt
 * model, and the process-wide enable/disable switch.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "util/fault_inject.hh"

using namespace ena;

namespace {

/** RAII guard: no test leaks an active plan into its neighbors. */
struct PlanGuard
{
    ~PlanGuard() { fault_inject::clearFaultPlan(); }
};

} // anonymous namespace

TEST(FaultPlan, ParseRateAndSeed)
{
    auto p = FaultPlan::parse("0.25,42");
    ASSERT_TRUE(p.ok()) << p.status().toString();
    EXPECT_DOUBLE_EQ(p->rate, 0.25);
    EXPECT_EQ(p->seed, 42u);
    EXPECT_EQ(p->faultsPerTask, 1);
}

TEST(FaultPlan, ParseOptionalFaultsPerTask)
{
    auto p = FaultPlan::parse("0.5,7,3");
    ASSERT_TRUE(p.ok()) << p.status().toString();
    EXPECT_DOUBLE_EQ(p->rate, 0.5);
    EXPECT_EQ(p->seed, 7u);
    EXPECT_EQ(p->faultsPerTask, 3);
}

TEST(FaultPlan, ParseRejectsMalformedSpecs)
{
    EXPECT_FALSE(FaultPlan::parse("").ok());
    EXPECT_FALSE(FaultPlan::parse("0.5").ok());           // no seed
    EXPECT_FALSE(FaultPlan::parse("abc,42").ok());        // bad rate
    EXPECT_FALSE(FaultPlan::parse("0.5,xyz").ok());       // bad seed
    EXPECT_FALSE(FaultPlan::parse("1.5,42").ok());        // rate > 1
    EXPECT_FALSE(FaultPlan::parse("-0.1,42").ok());       // rate < 0
    EXPECT_FALSE(FaultPlan::parse("0.5,42,0").ok());      // faults < 1
    EXPECT_FALSE(FaultPlan::parse("0.5,42,3,9").ok());    // extra field
}

TEST(FaultPlan, SelectionIsDeterministicPerSeedAndTask)
{
    FaultPlan p;
    p.rate = 0.3;
    p.seed = 12345;
    // Same (seed, task) -> same answer, every time.
    for (std::uint64_t t = 0; t < 500; ++t) {
        EXPECT_EQ(p.shouldFault(t, 0), p.shouldFault(t, 0))
            << "task " << t;
    }
}

TEST(FaultPlan, DifferentSeedsSelectDifferentTasks)
{
    FaultPlan a, b;
    a.rate = b.rate = 0.3;
    a.seed = 1;
    b.seed = 2;
    std::set<std::uint64_t> fa, fb;
    for (std::uint64_t t = 0; t < 1000; ++t) {
        if (a.shouldFault(t, 0))
            fa.insert(t);
        if (b.shouldFault(t, 0))
            fb.insert(t);
    }
    EXPECT_FALSE(fa.empty());
    EXPECT_FALSE(fb.empty());
    EXPECT_NE(fa, fb);
}

TEST(FaultPlan, RateBoundsTheFaultedFraction)
{
    FaultPlan p;
    p.rate = 0.1;
    p.seed = 99;
    int faulted = 0;
    const int n = 10000;
    for (int t = 0; t < n; ++t)
        faulted += p.shouldFault(t, 0) ? 1 : 0;
    // A hash this wide lands close to the nominal rate.
    EXPECT_GT(faulted, n / 20);       // > 5%
    EXPECT_LT(faulted, n / 5);        // < 20%
}

TEST(FaultPlan, ZeroRateNeverFaults)
{
    FaultPlan p;   // rate = 0
    p.seed = 42;
    for (std::uint64_t t = 0; t < 1000; ++t)
        EXPECT_FALSE(p.shouldFault(t, 0));
}

TEST(FaultPlan, TransientModelStopsAfterFaultsPerTask)
{
    FaultPlan p;
    p.rate = 1.0;        // every task faults...
    p.seed = 5;
    p.faultsPerTask = 2; // ...on its first two attempts only
    EXPECT_TRUE(p.shouldFault(17, 0));
    EXPECT_TRUE(p.shouldFault(17, 1));
    EXPECT_FALSE(p.shouldFault(17, 2));
    EXPECT_FALSE(p.shouldFault(17, 3));
}

TEST(FaultInject, DisabledByDefaultAndCheapToAsk)
{
    PlanGuard guard;
    fault_inject::clearFaultPlan();
    EXPECT_FALSE(fault_inject::enabled());
    // maybeInject is a no-op while disabled.
    EXPECT_NO_THROW(fault_inject::maybeInject(0, 0));
}

TEST(FaultInject, SetPlanEnablesClearDisables)
{
    PlanGuard guard;
    FaultPlan p;
    p.rate = 1.0;
    p.seed = 3;
    fault_inject::setFaultPlan(p);
    EXPECT_TRUE(fault_inject::enabled());
    EXPECT_DOUBLE_EQ(fault_inject::currentPlan().rate, 1.0);
    EXPECT_EQ(fault_inject::currentPlan().seed, 3u);
    fault_inject::clearFaultPlan();
    EXPECT_FALSE(fault_inject::enabled());
}

TEST(FaultInject, ZeroRatePlanStaysDisabled)
{
    PlanGuard guard;
    FaultPlan p;   // rate = 0
    fault_inject::setFaultPlan(p);
    EXPECT_FALSE(fault_inject::enabled());
}

TEST(FaultInject, MaybeInjectThrowsAndCounts)
{
    PlanGuard guard;
    FaultPlan p;
    p.rate = 1.0;
    p.seed = 11;
    fault_inject::setFaultPlan(p);

    const std::uint64_t before = fault_inject::faultsInjected();
    try {
        fault_inject::maybeInject(42, 0);
        FAIL() << "maybeInject did not throw under rate=1.0";
    } catch (const InjectedFault &f) {
        EXPECT_EQ(f.task(), 42u);
        EXPECT_EQ(f.attempt(), 0);
    }
    EXPECT_EQ(fault_inject::faultsInjected(), before + 1);

    // The transient model: the retry attempt sails through.
    EXPECT_NO_THROW(fault_inject::maybeInject(42, 1));
    EXPECT_EQ(fault_inject::faultsInjected(), before + 1);
}

/**
 * @file
 * Integration tests of the cycle-level two-level-memory study: the
 * software-managed MemoryManager and the external SerDes network wired
 * behind the chiplet L2s.
 */

#include <gtest/gtest.h>

#include "core/twolevel_study.hh"

using namespace ena;

namespace {

TwoLevelParams
quick()
{
    TwoLevelParams p;
    p.cusPerChiplet = 2;
    p.wavefrontsPerCu = 4;
    p.memOpsPerWavefront = 300;
    return p;
}

} // anonymous namespace

TEST(TwoLevelStudy, FullCapacityHasNoMisses)
{
    TwoLevelStudy study;
    TwoLevelPoint p = study.run(App::XSBench, quick(), 1.0);
    EXPECT_NEAR(p.achievedMissRate, 0.0, 1e-9);
    EXPECT_GT(p.runtimeUs, 0.0);
}

TEST(TwoLevelStudy, ShrinkingCapacityRaisesMissRate)
{
    TwoLevelStudy study;
    auto points =
        study.sweep(App::XSBench, quick(), {1.0, 0.25, 0.125});
    ASSERT_EQ(points.size(), 3u);
    EXPECT_LT(points[0].achievedMissRate, points[1].achievedMissRate);
    EXPECT_LT(points[1].achievedMissRate, points[2].achievedMissRate);
}

TEST(TwoLevelStudy, MissesCostPerformance)
{
    // The Fig. 8 mechanism must emerge from the simulation: more
    // off-package accesses -> longer runtime.
    TwoLevelStudy study;
    auto points = study.sweep(App::XSBench, quick(), {1.0, 0.125});
    EXPECT_NEAR(points[0].normPerf, 1.0, 1e-9);
    EXPECT_LT(points[1].normPerf, 0.9);
    EXPECT_GT(points[1].normPerf, 0.1);
}

TEST(TwoLevelStudy, Deterministic)
{
    TwoLevelStudy study;
    TwoLevelPoint a = study.run(App::CoMD, quick(), 0.25);
    TwoLevelPoint b = study.run(App::CoMD, quick(), 0.25);
    EXPECT_DOUBLE_EQ(a.runtimeUs, b.runtimeUs);
    EXPECT_DOUBLE_EQ(a.achievedMissRate, b.achievedMissRate);
}

TEST(TwoLevelStudyDeathTest, BadFractionPanics)
{
    TwoLevelStudy study;
    EXPECT_DEATH(study.run(App::CoMD, quick(), 0.0),
                 "capacity fraction");
}

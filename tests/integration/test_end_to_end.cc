/**
 * @file
 * End-to-end integration tests: the complete analytic pipeline from
 * DSE through per-figure studies, cross-checking consistency between
 * the pieces the way the benches consume them.
 */

#include <gtest/gtest.h>

#include "core/ena.hh"
#include "core/thermal_study.hh"

using namespace ena;

namespace {

struct Pipeline
{
    NodeEvaluator eval;
    DesignSpaceExplorer dse{eval, DseGrid::paperGrid(),
                            cal::nodePowerBudgetW};
    NodeConfig bestMean = dse.findBestMean(PowerOptConfig::none());
};

Pipeline &
pipeline()
{
    static Pipeline p;
    return p;
}

} // anonymous namespace

TEST(EndToEnd, BestMeanFeedsEveryStudyConsistently)
{
    Pipeline &p = pipeline();

    // Fig. 4-6 normalization point is the same config the DSE found.
    OpbSweepStudy opb(p.eval, p.bestMean);
    auto curves = opb.sweepFrequency(App::MaxFlops, {p.bestMean.bwTbs},
                                     {p.bestMean.freqGhz});
    EXPECT_NEAR(curves[0].points[0].normPerf, 1.0, 1e-9);

    // Fig. 8's zero-miss point equals the Fig. 4-6 model's output.
    MissRateStudy miss(p.eval, p.bestMean);
    auto series = miss.run(App::CoMD, {0.0});
    EXPECT_NEAR(series.points[0].normPerf, 1.0, 1e-9);
}

TEST(EndToEnd, TableIIConfigsAreThermallyViable)
{
    // The Fig. 10 premise: every Table II configuration must also pass
    // the 85 C check.
    Pipeline &p = pipeline();
    auto rows = p.dse.tableII(p.bestMean);
    ThermalStudy thermal(p.eval);
    for (const TableIIRow &row : rows) {
        double peak = thermal.peakDramC(row.bestConfig, row.app);
        EXPECT_LT(peak, EhpPackageModel::dramLimitC)
            << appName(row.app) << " @ " << row.bestConfig.label();
    }
}

TEST(EndToEnd, BudgetHoldsAcrossExternalMemoryConfigs)
{
    // Swapping the external-memory network must not change the
    // package-side power (the budget scope changes only through the
    // provisioned static external power).
    Pipeline &p = pipeline();
    NodeConfig hybrid = p.bestMean;
    hybrid.ext = ExtMemConfig::hybrid();
    for (App app : allApps()) {
        double pkg_dram =
            p.eval.evaluate(p.bestMean, app).power.packagePower();
        double pkg_hybrid =
            p.eval.evaluate(hybrid, app).power.packagePower();
        EXPECT_NEAR(pkg_dram, pkg_hybrid, 1e-9) << appName(app);
    }
}

TEST(EndToEnd, OptimizedConfigKeepsThermalHeadroom)
{
    Pipeline &p = pipeline();
    NodeConfig opt = p.dse.findBestMean(PowerOptConfig::all());
    opt.opts = PowerOptConfig::all();
    ThermalStudy thermal(p.eval);
    for (App app : allApps()) {
        EXPECT_LT(thermal.peakDramC(opt, app),
                  EhpPackageModel::dramLimitC)
            << appName(app);
    }
}

TEST(EndToEnd, CachedBestMeanHelpersAgreeWithDse)
{
    Pipeline &p = pipeline();
    NodeConfig cached = discoveredBestMean(p.eval);
    EXPECT_EQ(cached.cus, p.bestMean.cus);
    EXPECT_DOUBLE_EQ(cached.freqGhz, p.bestMean.freqGhz);
    EXPECT_DOUBLE_EQ(cached.bwTbs, p.bestMean.bwTbs);
}

TEST(EndToEnd, VersionStringPresent)
{
    EXPECT_NE(std::string(versionString()).find("ena-sim"),
              std::string::npos);
}

/**
 * @file
 * Integration tests of the full cycle-level chiplet study (Fig. 7):
 * GPU chiplets + CUs + caches + NoC + HBM + CPU clusters, end to end.
 * Scaled down where possible to keep runtimes short.
 */

#include <gtest/gtest.h>

#include "core/chiplet_study.hh"

using namespace ena;

namespace {

ChipletStudyParams
quickParams(App app)
{
    ChipletStudyParams p = ChipletStudyParams::forApp(app);
    p.cusPerChiplet = 4;
    p.wavefrontsPerCu = 4;
    p.memOpsPerWavefront = 150;
    p.aggregateBwGbs = 400.0;
    return p;
}

} // anonymous namespace

TEST(ChipletStudy, RunsToCompletionAndReportsSaneNumbers)
{
    ChipletStudy study;
    ChipletRunResult r =
        study.run(App::CoMD, quickParams(App::CoMD), false);
    EXPECT_GT(r.runtimeUs, 0.0);
    EXPECT_GT(r.eventsProcessed, 1000u);
    EXPECT_GE(r.remoteTrafficFrac, 0.0);
    EXPECT_LE(r.remoteTrafficFrac, 1.0);
    EXPECT_GE(r.l2HitRate, 0.0);
    EXPECT_LE(r.l2HitRate, 1.0);
    EXPECT_GT(r.meanHops, 0.0);
}

TEST(ChipletStudy, MonolithicModeUsesSingleHopFabric)
{
    ChipletStudy study;
    ChipletRunResult r =
        study.run(App::CoMD, quickParams(App::CoMD), true);
    EXPECT_NEAR(r.meanHops, 1.0, 1e-9);   // crossbar counts one hop
}

TEST(ChipletStudy, DeterministicAcrossRuns)
{
    ChipletStudy study;
    ChipletRunResult a =
        study.run(App::SNAP, quickParams(App::SNAP), false);
    ChipletRunResult b =
        study.run(App::SNAP, quickParams(App::SNAP), false);
    EXPECT_DOUBLE_EQ(a.runtimeUs, b.runtimeUs);
    EXPECT_DOUBLE_EQ(a.remoteTrafficFrac, b.remoteTrafficFrac);
    EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
}

TEST(ChipletStudy, RemoteTrafficDominatesWithoutPlacement)
{
    // Paper Finding 1: out-of-chiplet traffic dominates (60-95%). With
    // pure interleaving across 8 stacks, ~7/8 of misses are remote.
    ChipletStudy study;
    ChipletStudyParams p = quickParams(App::XSBench);
    p.localPlacementFrac = 0.0;
    ChipletRunResult r = study.run(App::XSBench, p, false);
    EXPECT_GT(r.remoteTrafficFrac, 0.80);
    EXPECT_LT(r.remoteTrafficFrac, 0.95);
}

TEST(ChipletStudy, LocalPlacementReducesRemoteTraffic)
{
    ChipletStudy study;
    ChipletStudyParams base = quickParams(App::CoMD);
    base.localPlacementFrac = 0.0;
    ChipletStudyParams placed = base;
    placed.localPlacementFrac = 0.6;
    double remote_base =
        study.run(App::CoMD, base, false).remoteTrafficFrac;
    double remote_placed =
        study.run(App::CoMD, placed, false).remoteTrafficFrac;
    EXPECT_LT(remote_placed, remote_base - 0.15);
}

TEST(ChipletStudy, CompareProducesPaperShapedRow)
{
    ChipletStudy study;
    Fig7Row row = study.compare(App::XSBench, quickParams(App::XSBench));
    // Chiplet design loses some performance but not much (paper: worst
    // 13%; generous band for the scaled configuration).
    EXPECT_GT(row.perfVsMonolithicPct, 70.0);
    EXPECT_LT(row.perfVsMonolithicPct, 109.0);
    EXPECT_GT(row.remoteTrafficPct, 55.0);
    EXPECT_LT(row.remoteTrafficPct, 97.0);
}

TEST(ChipletStudy, DefaultParamsVaryByApp)
{
    ChipletStudyParams xs = ChipletStudyParams::forApp(App::XSBench);
    ChipletStudyParams snap = ChipletStudyParams::forApp(App::SNAP);
    EXPECT_LT(xs.localPlacementFrac, snap.localPlacementFrac);
    EXPECT_GT(xs.privateBytesPerWf, snap.privateBytesPerWf);
}

TEST(ChipletStudy, CpuTrafficTogglesCleanly)
{
    ChipletStudy study;
    ChipletStudyParams p = quickParams(App::SNAP);
    p.cpuTraffic = false;
    ChipletRunResult r = study.run(App::SNAP, p, false);
    EXPECT_GT(r.runtimeUs, 0.0);
}

/**
 * @file
 * Fault-aware scale-out projection: the layer that joins src/ras/ and
 * src/cluster/ (paper Section II-A5 meets Section V-F).
 *
 * ClusterEvaluator already derates the Fig. 14 projection by
 * communication cost; this module multiplies the machine's resiliency
 * overheads on top of it:
 *
 *   FaultModel (protection choices -> per-node FIT)
 *     -> systemMttfHours (1/N scaling to the full machine)
 *       -> CheckpointModel (Young/Daly plan -> machine efficiency)
 *   RmtModel (GPU redundant multithreading -> slowdown)
 *
 *   effective exaflops = comm-aware exaflops
 *                        * checkpoint efficiency / RMT slowdown
 *
 * The composition preserves the exact-reduction discipline the cluster
 * layer established: a zero-fault / zero-RMT ResilienceSpec multiplies
 * by exactly 1.0 and divides by exactly 1.0, so it reproduces
 * ClusterEvaluator::evaluate's system exaflops and megawatts
 * bit-identically (gated by bench_ras_scaleout).
 *
 * The checkpoint drain bandwidth can optionally be derived from the
 * InterNodeNetwork instead of the fixed CheckpointParams::ioBandwidthBps
 * knob: checkpoints ride the fabric to the I/O nodes, every node drains
 * at once, so the sustainable rate is the all-to-all deliverable
 * bandwidth (min of injection and the per-node bisection share).
 */

#ifndef ENA_CLUSTER_RESILIENT_CLUSTER_HH
#define ENA_CLUSTER_RESILIENT_CLUSTER_HH

#include <string>
#include <vector>

#include "cluster/cluster_evaluator.hh"
#include "core/sweep_journal.hh"
#include "ras/checkpoint.hh"
#include "ras/fault_model.hh"
#include "ras/rmt.hh"
#include "util/status.hh"

namespace ena {

/**
 * Everything the resiliency layer adds to a cluster evaluation:
 * protection choices, the RMT policy, and the checkpoint/restart
 * parameters. Loadable from "cluster.ras." config keys
 * (resilient_cluster_io.hh).
 */
struct ResilienceSpec
{
    /**
     * Master switch for the fault/checkpoint pipeline. False models an
     * ideal never-failing machine: no checkpoints are planned and the
     * efficiency factor is exactly 1.0 (the bit-identical reduction to
     * ClusterEvaluator when rmtPolicy is also Off).
     */
    bool faultsEnabled = true;

    RasConfig ras;                      ///< ECC/RMT protection choices
    RmtPolicy rmtPolicy = RmtPolicy::Off;
    CheckpointParams checkpoint;

    /**
     * Derive the checkpoint drain bandwidth from the inter-node
     * network (all nodes drain to the I/O nodes across the fabric at
     * the all-to-all deliverable rate) instead of using the fixed
     * checkpoint.ioBandwidthBps knob.
     */
    bool checkpointViaFabric = false;

    /** Zero-fault / zero-RMT: reduces to ClusterEvaluator exactly. */
    static ResilienceSpec
    none()
    {
        ResilienceSpec s;
        s.faultsEnabled = false;
        s.ras = {false, false, false, 1.0};
        s.rmtPolicy = RmtPolicy::Off;
        return s;
    }

    /**
     * The paper's proposal (Section II-A5): ECC on every array plus
     * software RMT on the GPU's idle resources, with the FaultModel's
     * gpuRmt residual matched to the active policy.
     */
    static ResilienceSpec
    paper()
    {
        ResilienceSpec s;
        s.ras = {true, true, true, 2.0};
        s.rmtPolicy = RmtPolicy::Opportunistic;
        return s;
    }

    /** Sanity-check ranges; the error names the offending knob. */
    Status
    tryValidate() const
    {
        if (ras.ntcSerMultiplier < 1.0) {
            return Status::outOfRange(
                "ResilienceSpec: NTC SER multiplier must be >= 1, got ",
                ras.ntcSerMultiplier);
        }
        if (checkpoint.checkpointBytes <= 0.0 ||
            checkpoint.ioBandwidthBps <= 0.0)
            return Status::outOfRange(
                "ResilienceSpec: bad checkpoint parameters");
        return Status();
    }

    /** Legacy flavor: fatal() on nonsense. */
    void validate() const { checkOrFatal(tryValidate()); }
};

/** One (node config, app, comm spec, resilience spec) evaluation. */
struct ResilientResult
{
    ClusterResult cluster;          ///< comm-aware baseline underneath

    double nodeFit = 0.0;           ///< protected FIT per node
    double systemMttfHours = 0.0;   ///< uncorrected errors, full machine
    /**
     * MTTF of *user-visible* interruptions: uncorrected errors that
     * also escape detection (silent corruption) force human
     * intervention, while detected failures restart from checkpoint
     * automatically. The paper's target for this is "on the order of a
     * week or more".
     */
    double interruptionMttfHours = 0.0;

    double drainBps = 0.0;          ///< resolved checkpoint bandwidth
    CheckpointPlan plan;            ///< zeroed when faults are disabled
    RmtOutcome rmt;                 ///< slowdown 1.0 when policy is Off

    double ckptEfficiency = 1.0;    ///< exactly 1.0 with faults off
    double rmtSlowdown = 1.0;       ///< exactly 1.0 with RMT off

    double effectiveExaflops = 0.0; ///< comm * ckpt / RMT
    double systemMw = 0.0;          ///< == cluster.systemMw

    double
    effectiveExaflopsPerMw() const
    {
        return systemMw > 0.0 ? effectiveExaflops / systemMw : 0.0;
    }
};

class ResilientClusterEvaluator
{
  public:
    ResilientClusterEvaluator(const ClusterEvaluator &ce,
                              ResilienceSpec spec);

    /** Evaluate one app on one node config, resiliency included. */
    ResilientResult evaluate(const NodeConfig &cfg, App app,
                             const CommSpec &comm) const;

    /**
     * The per-node checkpoint drain bandwidth this spec resolves to:
     * the fabric's all-to-all deliverable rate when checkpointViaFabric
     * is set, the fixed ioBandwidthBps knob otherwise.
     */
    double checkpointDrainBps() const;

    const ResilienceSpec &spec() const { return spec_; }
    const ClusterEvaluator &clusterEvaluator() const { return ce_; }
    const FaultModel &faultModel() const { return fm_; }

  private:
    const ClusterEvaluator &ce_;
    ResilienceSpec spec_;
    FaultModel fm_;
    RmtModel rmt_;
};

/** A named protection configuration for sweeps and tables. */
struct ProtectionVariant
{
    std::string name;
    ResilienceSpec spec;
};

/**
 * The bench_ras_study ladder as ResilienceSpecs: no protection, ECC
 * only, ECC + opportunistic GPU RMT (the paper's proposal).
 */
const std::vector<ProtectionVariant> &standardProtectionVariants();

/** One cell of the protection x topology x node-count sweep. */
struct ResilientSweepPoint
{
    std::size_t variant = 0;        ///< index into the variant list
    ClusterTopology topology = ClusterTopology::FatTree;
    int nodes = 0;

    double systemMttfHours = 0.0;
    double interruptionMttfHours = 0.0;
    double commEfficiency = 0.0;
    double ckptEfficiency = 0.0;
    double rmtSlowdown = 1.0;
    double systemExaflops = 0.0;    ///< comm-aware, before resiliency
    double effectiveExaflops = 0.0;
    double systemMw = 0.0;

    /** False when the cell was quarantined; @p error says why. */
    bool ok = true;
    std::string error;
};

class ResilientScaleOutStudy
{
  public:
    /** @p base supplies link/shape parameters; sweeps vary the node
     *  count, topology, and protection on top of it. */
    ResilientScaleOutStudy(const NodeEvaluator &eval, ClusterConfig base);

    /**
     * Protection x topology x node-count sweep, flattened
     * variant-major then topology-major, sharded over the process pool
     * with one output slot per grid point (bit-identical to a serial
     * run at any thread count; gated by bench_ras_scaleout). Invalid
     * cells are quarantined (ResilientSweepPoint::ok == false), not
     * fatal; with ENA_SWEEP_JOURNAL set, finished cells stream to the
     * journal and a killed sweep resumes past them.
     */
    std::vector<ResilientSweepPoint> sweep(
        const NodeConfig &cfg, App app, const CommSpec &comm,
        const std::vector<ProtectionVariant> &variants,
        const std::vector<ClusterTopology> &topologies,
        const std::vector<int> &node_counts) const;

    /** Same, with an explicit journal (null = no checkpointing). */
    std::vector<ResilientSweepPoint> sweep(
        const NodeConfig &cfg, App app, const CommSpec &comm,
        const std::vector<ProtectionVariant> &variants,
        const std::vector<ClusterTopology> &topologies,
        const std::vector<int> &node_counts,
        SweepJournal *journal) const;

    /** Availability and power constraints for the best-config search. */
    struct SearchConstraints
    {
        /** Paper Section II-A5: user-visible interruptions "on the
         *  order of a week or more". */
        double minInterruptionMttfHours = 168.0;
        /** Paper's per-node power budget (worst app; Section V-A). */
        double nodePowerBudgetW = 160.0;
    };

    /** Winner of the availability-constrained search. */
    struct SearchResult
    {
        bool feasible = false;          ///< any candidate satisfied both
        NodeConfig config;
        std::size_t variant = 0;
        int nodes = 0;
        double maxBudgetPowerW = 0.0;   ///< worst-app node power
        ResilientResult result;
    };

    /**
     * Max effective exaflops over node configs x protection variants x
     * machine sizes, subject to the interruption-MTTF and node-power
     * constraints. All candidates evaluate in parallel (one slot per
     * candidate); the arg-max scan runs serially in index order with a
     * strict comparison, so ties break toward the earliest candidate
     * and the result is deterministic at any thread count.
     */
    SearchResult bestUnderAvailability(
        const std::vector<NodeConfig> &configs,
        const std::vector<ProtectionVariant> &variants,
        const std::vector<int> &node_counts, App app,
        const CommSpec &comm, const SearchConstraints &limits) const;

    /** Same search with the paper's default constraints. */
    SearchResult bestUnderAvailability(
        const std::vector<NodeConfig> &configs,
        const std::vector<ProtectionVariant> &variants,
        const std::vector<int> &node_counts, App app,
        const CommSpec &comm) const
    {
        return bestUnderAvailability(configs, variants, node_counts, app,
                                     comm, SearchConstraints());
    }

    const ClusterConfig &baseConfig() const { return base_; }

  private:
    const NodeEvaluator &eval_;
    ClusterConfig base_;
};

} // namespace ena

#endif // ENA_CLUSTER_RESILIENT_CLUSTER_HH

/**
 * @file
 * Hardware configuration of the scale-out machine built from ENA nodes:
 * node count, inter-node topology, and the SerDes links that connect
 * them (paper Section II-A: "nodes communicate through a SerDes-based
 * inter-node network"; Section V-F scales one node to 100,000).
 *
 * The node itself is described by NodeConfig; ClusterConfig adds the
 * layer above it and is loadable from the same "key = value" config
 * files under the "cluster." prefix (see cluster_config_io.hh).
 */

#ifndef ENA_CLUSTER_CLUSTER_CONFIG_HH
#define ENA_CLUSTER_CLUSTER_CONFIG_HH

#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/status.hh"
#include "util/string_utils.hh"

namespace ena {

/** Inter-node network topologies modeled analytically. */
enum class ClusterTopology
{
    FatTree,    ///< three-level folded Clos, optionally tapered
    Dragonfly,  ///< balanced dragonfly (a = 2h, one global hop)
    Torus3D,    ///< 3D torus, one switch per node
};

/** Display name ("fat-tree" / "dragonfly" / "3d-torus"). */
std::string clusterTopologyName(ClusterTopology t);

/** Parse a topology name (case-insensitive). */
Expected<ClusterTopology> tryClusterTopologyFromName(
    const std::string &name);

/** Parse a topology name (case-insensitive); fatal() on unknown. */
ClusterTopology clusterTopologyFromName(const std::string &name);

/** All modeled topologies, in enum order. */
const std::vector<ClusterTopology> &allClusterTopologies();

/** The scale-out machine's configuration. */
struct ClusterConfig
{
    int nodes = 100000;         ///< paper Section V-F system size

    ClusterTopology topology = ClusterTopology::FatTree;

    // --- SerDes inter-node links ---
    int linksPerNode = 4;       ///< NIC SerDes ports per ENA node
    double linkGbs = 25.0;      ///< GB/s per link per direction
    double linkLatencyUs = 0.5; ///< per-hop link + switch latency
    double pjPerBit = 10.0;     ///< SerDes+switch energy per bit per hop

    // --- per-topology shape knobs (0 = derive from the node count) ---
    int fatTreeRadix = 0;       ///< switch port count; 0 = smallest fit
    double fatTreeTaper = 1.0;  ///< >=1; 2.0 halves bisection bandwidth
    int dragonflyGroupRouters = 0; ///< routers per group; 0 = balanced
    int torusX = 0;             ///< torus dimensions; 0 = near-cubic
    int torusY = 0;
    int torusZ = 0;

    /** Per-node injection bandwidth into the fabric (GB/s). */
    double injectionGbs() const { return linksPerNode * linkGbs; }

    /** Sanity-check ranges; the error names the offending knob. */
    Status
    tryValidate() const
    {
        if (nodes <= 0 || nodes > 100000000) {
            return Status::outOfRange("ClusterConfig: bad node count ",
                                      nodes);
        }
        if (linksPerNode <= 0 || linksPerNode > 1024) {
            return Status::outOfRange(
                "ClusterConfig: bad links-per-node ", linksPerNode);
        }
        if (linkGbs <= 0.0 || linkGbs > 10000.0) {
            return Status::outOfRange("ClusterConfig: bad link "
                                      "bandwidth ", linkGbs, " GB/s");
        }
        if (linkLatencyUs <= 0.0 || linkLatencyUs > 1000.0) {
            return Status::outOfRange("ClusterConfig: bad link latency ",
                                      linkLatencyUs, " us");
        }
        if (pjPerBit < 0.0 || pjPerBit > 1000.0) {
            return Status::outOfRange("ClusterConfig: bad link energy ",
                                      pjPerBit, " pJ/bit");
        }
        if (fatTreeRadix < 0 || (fatTreeRadix > 0 && fatTreeRadix < 4)) {
            return Status::outOfRange("ClusterConfig: bad fat-tree "
                                      "radix ", fatTreeRadix);
        }
        if (fatTreeTaper < 1.0) {
            return Status::outOfRange(
                "ClusterConfig: fat-tree taper must be >= 1, got ",
                fatTreeTaper);
        }
        if (dragonflyGroupRouters < 0) {
            return Status::outOfRange(
                "ClusterConfig: bad dragonfly group size ",
                dragonflyGroupRouters);
        }
        if (torusX < 0 || torusY < 0 || torusZ < 0)
            return Status::outOfRange(
                "ClusterConfig: bad torus dimensions");
        return Status();
    }

    /** Legacy flavor: fatal() on nonsense. */
    void validate() const { checkOrFatal(tryValidate()); }

    /** Short "fat-tree x100000 @4x25GBps" label for tables. */
    std::string
    label() const
    {
        return strformat("%s x%d @%dx%.0fGBps",
                         clusterTopologyName(topology).c_str(), nodes,
                         linksPerNode, linkGbs);
    }

    /** The paper's 100,000-node exascale machine on the default links. */
    static ClusterConfig exascale() { return {}; }
};

} // namespace ena

#endif // ENA_CLUSTER_CLUSTER_CONFIG_HH

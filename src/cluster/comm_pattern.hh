/**
 * @file
 * Communication-pattern models for scale-out runs of the Table I
 * applications: how many bytes a node must move off-node per flop it
 * computes, and what that costs on a given inter-node network.
 *
 * Per-app communication volume derives from the KernelProfile: the
 * fraction of an app's memory traffic that leaves the package
 * (extTrafficFraction) over its arithmetic intensity bounds the bytes
 * per flop that are candidates for inter-node exchange; each pattern
 * then keeps the share it actually sends over the fabric (a halo
 * exchange ships only surfaces, an all-to-all reshuffles almost
 * everything).
 *
 * The cost model is bulk-synchronous with no compute/comm overlap:
 * for every second of node compute the network phase adds
 * overheadRatio() seconds, so communication efficiency is
 * 1 / (1 + overheadRatio). A zero-intensity spec costs exactly zero
 * and the efficiency is exactly 1.0 — that is what lets the cluster
 * projection reduce bit-identically to the node-only Fig. 14 numbers.
 */

#ifndef ENA_CLUSTER_COMM_PATTERN_HH
#define ENA_CLUSTER_COMM_PATTERN_HH

#include <string>
#include <vector>

#include "util/status.hh"
#include "workloads/kernel_profile.hh"

namespace ena {

class InterNodeNetwork;

/** The communication patterns modeled for scale-out apps. */
enum class CommPattern
{
    Halo,       ///< nearest-neighbor halo exchange (stencils, MD)
    Allreduce,  ///< global reduction (dot products, time-step control)
    AllToAll,   ///< full personalized exchange (FFT transposes, sorting)
};

std::string commPatternName(CommPattern p);
Expected<CommPattern> tryCommPatternFromName(const std::string &name);
CommPattern commPatternFromName(const std::string &name);
const std::vector<CommPattern> &allCommPatterns();

/** How the problem grows with the machine. */
enum class ScalingMode
{
    Weak,    ///< per-node problem size fixed as nodes are added
    Strong,  ///< total problem size fixed; per-node share shrinks
};

/** One scale-out communication scenario. */
struct CommSpec
{
    CommPattern pattern = CommPattern::Halo;

    /**
     * Scales the whole communication cost (volume and synchronization
     * alike). 1.0 is the profile-derived intensity; 0.0 is a machine
     * with free communication — the node-only projection.
     */
    double intensity = 1.0;

    ScalingMode scaling = ScalingMode::Weak;

    /** Pattern invocations per second of node compute (weak scaling). */
    double syncsPerSecond = 100.0;

    /** The zero-communication spec (reduces to Fig. 14 exactly). */
    static CommSpec
    none()
    {
        CommSpec s;
        s.intensity = 0.0;
        return s;
    }
};

/** Cost of one (profile, spec, network) communication scenario. */
struct CommCost
{
    double bytesPerFlop = 0.0;   ///< fabric bytes per computed flop
    double deliveredGbs = 0.0;   ///< per-node bandwidth the pattern gets
    double bwOverhead = 0.0;     ///< comm seconds per compute second
    double latOverhead = 0.0;    ///< sync seconds per compute second

    double overheadRatio() const { return bwOverhead + latOverhead; }

    /** Fraction of wall time spent computing; exactly 1 at zero cost. */
    double efficiency() const { return 1.0 / (1.0 + overheadRatio()); }
};

class CommModel
{
  public:
    /**
     * Fabric bytes per flop for @p k under @p spec on @p nodes nodes.
     * Strong scaling shrinks each node's domain, so the halo
     * surface-to-volume ratio grows with cbrt(nodes).
     */
    static double bytesPerFlop(const KernelProfile &k,
                               const CommSpec &spec, int nodes);

    /**
     * Full cost of running @p k at @p node_flops achieved flops/s per
     * node with the pattern mapped onto @p net.
     */
    static CommCost cost(const KernelProfile &k, const CommSpec &spec,
                         const InterNodeNetwork &net, double node_flops);
};

} // namespace ena

#endif // ENA_CLUSTER_COMM_PATTERN_HH

/**
 * @file
 * Scale-out studies on top of ClusterEvaluator:
 *
 *  - weak/strong-scaling curves (system exaflops and communication
 *    efficiency vs node count),
 *  - a communication-aware variant of the paper's Fig. 14 CU sweep,
 *  - a topology x node-count sweep comparing fat-tree, dragonfly and
 *    3D-torus fabrics.
 *
 * Every sweep shards over ThreadPool::parallelMap with one output slot
 * per grid point, so results are bit-identical to a serial run at any
 * thread count (gated by bench_cluster_scaleout, like the PR 1 sweeps).
 */

#ifndef ENA_CLUSTER_SCALE_OUT_STUDY_HH
#define ENA_CLUSTER_SCALE_OUT_STUDY_HH

#include <string>
#include <vector>

#include "cluster/cluster_evaluator.hh"
#include "core/sweep_journal.hh"

namespace ena {

/** One node count on a scaling curve. */
struct ScalingPoint
{
    int nodes = 0;
    double analyticExaflops = 0.0; ///< zero-communication projection
    double systemExaflops = 0.0;   ///< comm-aware
    double efficiency = 0.0;       ///< compute fraction of wall time
    double overheadRatio = 0.0;    ///< comm seconds per compute second
    double systemMw = 0.0;
};

/** One CU count of the communication-aware Fig. 14 sweep. */
struct ClusterFig14Point
{
    int cus = 0;
    double analyticExaflops = 0.0; ///< == ExascaleProjector::sweepCus
    double analyticMw = 0.0;       ///< == ExascaleProjector::sweepCus
    double commExaflops = 0.0;     ///< communication-aware
    double commMw = 0.0;           ///< package + fabric power
    double efficiency = 0.0;
};

/** One (topology, node count) cell of the fabric comparison. */
struct TopologyPoint
{
    ClusterTopology topology = ClusterTopology::FatTree;
    int nodes = 0;
    double avgHops = 0.0;
    double bisectionGbs = 0.0;
    double efficiency = 0.0;
    double systemExaflops = 0.0;
    double systemMw = 0.0;

    /** False when the cell was quarantined; @p error says why. */
    bool ok = true;
    std::string error;
};

class ScaleOutStudy
{
  public:
    /** @p base supplies the link/shape parameters; each sweep varies
     *  the node count (and topology) on top of it. */
    ScaleOutStudy(const NodeEvaluator &eval, ClusterConfig base);

    /** Per-node problem fixed; ideal curve is flat efficiency. */
    std::vector<ScalingPoint> weakScaling(
        const NodeConfig &cfg, App app, CommSpec spec,
        const std::vector<int> &node_counts) const;

    /** Total problem fixed; efficiency decays as nodes are added. */
    std::vector<ScalingPoint> strongScaling(
        const NodeConfig &cfg, App app, CommSpec spec,
        const std::vector<int> &node_counts) const;

    /**
     * The paper's Fig. 14 CU sweep (MaxFlops, 1 GHz, 1 TB/s) with the
     * analytic and communication-aware projections side by side.
     */
    std::vector<ClusterFig14Point> fig14(const std::vector<int> &cus,
                                         const CommSpec &spec) const;

    /**
     * Fabric comparison over topologies x node counts (flattened,
     * topology-major, sharded over the process pool). Invalid cells
     * are quarantined (TopologyPoint::ok == false), not fatal; with
     * ENA_SWEEP_JOURNAL set, finished cells stream to the journal and
     * a killed sweep resumes past them.
     */
    std::vector<TopologyPoint> topologySweep(
        const NodeConfig &cfg, App app, const CommSpec &spec,
        const std::vector<ClusterTopology> &topologies,
        const std::vector<int> &node_counts) const;

    /** Same, with an explicit journal (null = no checkpointing). */
    std::vector<TopologyPoint> topologySweep(
        const NodeConfig &cfg, App app, const CommSpec &spec,
        const std::vector<ClusterTopology> &topologies,
        const std::vector<int> &node_counts,
        SweepJournal *journal) const;

    const ClusterConfig &baseConfig() const { return base_; }

  private:
    std::vector<ScalingPoint> scalingCurve(
        const NodeConfig &cfg, App app, CommSpec spec,
        const std::vector<int> &node_counts) const;

    const NodeEvaluator &eval_;
    ClusterConfig base_;
    /**
     * Shared by every per-cell ClusterEvaluator: a sweep varies the
     * cluster shape, not the node config, so all cells reuse one
     * memoized node evaluation per (config, app).
     */
    mutable EvalMemoCache memo_;
};

} // namespace ena

#endif // ENA_CLUSTER_SCALE_OUT_STUDY_HH

#include "cluster/cluster_config.hh"

#include "util/string_utils.hh"

namespace ena {

std::string
clusterTopologyName(ClusterTopology t)
{
    switch (t) {
      case ClusterTopology::FatTree:
        return "fat-tree";
      case ClusterTopology::Dragonfly:
        return "dragonfly";
      case ClusterTopology::Torus3D:
        return "3d-torus";
    }
    ENA_FATAL("unknown ClusterTopology ", static_cast<int>(t));
}

Expected<ClusterTopology>
tryClusterTopologyFromName(const std::string &name)
{
    std::string n = toLower(name);
    for (ClusterTopology t : allClusterTopologies()) {
        if (n == clusterTopologyName(t))
            return t;
    }
    // Accept a few obvious spellings used in configs and CLIs.
    if (n == "fattree" || n == "fat_tree" || n == "clos")
        return ClusterTopology::FatTree;
    if (n == "torus" || n == "torus3d" || n == "3d_torus")
        return ClusterTopology::Torus3D;
    return Status::invalidArgument(
        "unknown cluster topology '", name,
        "' (want fat-tree, dragonfly, or 3d-torus)");
}

ClusterTopology
clusterTopologyFromName(const std::string &name)
{
    return unwrapOrFatal(tryClusterTopologyFromName(name));
}

const std::vector<ClusterTopology> &
allClusterTopologies()
{
    static const std::vector<ClusterTopology> all = {
        ClusterTopology::FatTree,
        ClusterTopology::Dragonfly,
        ClusterTopology::Torus3D,
    };
    return all;
}

} // namespace ena

/**
 * @file
 * Config-file bindings for ClusterConfig, mirroring node_config_io.hh:
 * the cluster is described under the "cluster." prefix so one file can
 * hold a full machine description (ehp.* / extmem.* / opts.* for the
 * node next to cluster.* for the scale-out layer) and be loaded by both
 * nodeConfigFromConfig and clusterConfigFromConfig.
 *
 * Recognized keys (all optional; defaults = ClusterConfig{}):
 *
 *   cluster.nodes, cluster.topology (fat-tree | dragonfly | 3d-torus),
 *   cluster.links_per_node, cluster.link_gbs, cluster.link_latency_us,
 *   cluster.pj_per_bit, cluster.fat_tree_radix, cluster.fat_tree_taper,
 *   cluster.dragonfly_group_routers, cluster.torus_x, cluster.torus_y,
 *   cluster.torus_z
 *
 * Unknown "cluster." keys are rejected to catch typos; keys outside the
 * prefix are ignored (they belong to the node layers), as are
 * "cluster.ras." keys (the resiliency layer's; see
 * resilient_cluster_io.hh).
 *
 * tryClusterConfigFromConfig is the recoverable entry point (errors
 * carry the offending key and its source:line origin);
 * clusterConfigFromConfig is the legacy fatal() wrapper.
 */

#ifndef ENA_CLUSTER_CLUSTER_CONFIG_IO_HH
#define ENA_CLUSTER_CLUSTER_CONFIG_IO_HH

#include "cluster/cluster_config.hh"
#include "util/config.hh"
#include "util/status.hh"

namespace ena {

inline Expected<ClusterConfig>
tryClusterConfigFromConfig(const Config &cfg)
{
    static const char *known[] = {
        "cluster.nodes", "cluster.topology", "cluster.links_per_node",
        "cluster.link_gbs", "cluster.link_latency_us",
        "cluster.pj_per_bit", "cluster.fat_tree_radix",
        "cluster.fat_tree_taper", "cluster.dragonfly_group_routers",
        "cluster.torus_x", "cluster.torus_y", "cluster.torus_z",
    };
    for (const std::string &key : cfg.keysWithPrefix("cluster.")) {
        // "cluster.ras." keys belong to the resiliency layer
        // (resilient_cluster_io.hh) and are validated there.
        if (key.rfind("cluster.ras.", 0) == 0)
            continue;
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok) {
            std::string where = cfg.origin(key);
            return Status::invalidArgument(
                "unknown cluster-config key '", key, "'",
                where.empty() ? "" : " (" + where + ")");
        }
    }

    ClusterConfig c;
    ENA_ASSIGN_OR_RETURN(long long nodes,
                         cfg.tryGetInt("cluster.nodes", c.nodes));
    c.nodes = static_cast<int>(nodes);
    ENA_ASSIGN_OR_RETURN(
        std::string topo,
        cfg.tryGetString("cluster.topology",
                         clusterTopologyName(c.topology)));
    ENA_ASSIGN_OR_RETURN(c.topology, tryClusterTopologyFromName(topo));
    ENA_ASSIGN_OR_RETURN(
        long long links,
        cfg.tryGetInt("cluster.links_per_node", c.linksPerNode));
    c.linksPerNode = static_cast<int>(links);
    ENA_ASSIGN_OR_RETURN(c.linkGbs,
                         cfg.tryGetDouble("cluster.link_gbs", c.linkGbs));
    ENA_ASSIGN_OR_RETURN(
        c.linkLatencyUs,
        cfg.tryGetDouble("cluster.link_latency_us", c.linkLatencyUs));
    ENA_ASSIGN_OR_RETURN(
        c.pjPerBit, cfg.tryGetDouble("cluster.pj_per_bit", c.pjPerBit));
    ENA_ASSIGN_OR_RETURN(
        long long radix,
        cfg.tryGetInt("cluster.fat_tree_radix", c.fatTreeRadix));
    c.fatTreeRadix = static_cast<int>(radix);
    ENA_ASSIGN_OR_RETURN(
        c.fatTreeTaper,
        cfg.tryGetDouble("cluster.fat_tree_taper", c.fatTreeTaper));
    ENA_ASSIGN_OR_RETURN(
        long long group,
        cfg.tryGetInt("cluster.dragonfly_group_routers",
                      c.dragonflyGroupRouters));
    c.dragonflyGroupRouters = static_cast<int>(group);
    ENA_ASSIGN_OR_RETURN(long long tx,
                         cfg.tryGetInt("cluster.torus_x", c.torusX));
    c.torusX = static_cast<int>(tx);
    ENA_ASSIGN_OR_RETURN(long long ty,
                         cfg.tryGetInt("cluster.torus_y", c.torusY));
    c.torusY = static_cast<int>(ty);
    ENA_ASSIGN_OR_RETURN(long long tz,
                         cfg.tryGetInt("cluster.torus_z", c.torusZ));
    c.torusZ = static_cast<int>(tz);

    ENA_TRY(c.tryValidate());
    return c;
}

/** Legacy flavor: fatal() with the chained diagnostic on any error. */
inline ClusterConfig
clusterConfigFromConfig(const Config &cfg)
{
    return unwrapOrFatal(tryClusterConfigFromConfig(cfg).withContext(
        "loading cluster config"));
}

/** Serialize a ClusterConfig back into a Config ("cluster." keys). */
inline Config
clusterConfigToConfig(const ClusterConfig &c)
{
    Config cfg;
    cfg.set("cluster.nodes", c.nodes);
    cfg.set("cluster.topology", clusterTopologyName(c.topology));
    cfg.set("cluster.links_per_node", c.linksPerNode);
    cfg.set("cluster.link_gbs", c.linkGbs);
    cfg.set("cluster.link_latency_us", c.linkLatencyUs);
    cfg.set("cluster.pj_per_bit", c.pjPerBit);
    cfg.set("cluster.fat_tree_radix", c.fatTreeRadix);
    cfg.set("cluster.fat_tree_taper", c.fatTreeTaper);
    cfg.set("cluster.dragonfly_group_routers", c.dragonflyGroupRouters);
    cfg.set("cluster.torus_x", c.torusX);
    cfg.set("cluster.torus_y", c.torusY);
    cfg.set("cluster.torus_z", c.torusZ);
    return cfg;
}

} // namespace ena

#endif // ENA_CLUSTER_CLUSTER_CONFIG_IO_HH

/**
 * @file
 * Config-file bindings for ClusterConfig, mirroring node_config_io.hh:
 * the cluster is described under the "cluster." prefix so one file can
 * hold a full machine description (ehp.* / extmem.* / opts.* for the
 * node next to cluster.* for the scale-out layer) and be loaded by both
 * nodeConfigFromConfig and clusterConfigFromConfig.
 *
 * Recognized keys (all optional; defaults = ClusterConfig{}):
 *
 *   cluster.nodes, cluster.topology (fat-tree | dragonfly | 3d-torus),
 *   cluster.links_per_node, cluster.link_gbs, cluster.link_latency_us,
 *   cluster.pj_per_bit, cluster.fat_tree_radix, cluster.fat_tree_taper,
 *   cluster.dragonfly_group_routers, cluster.torus_x, cluster.torus_y,
 *   cluster.torus_z
 *
 * Unknown "cluster." keys are rejected to catch typos; keys outside the
 * prefix are ignored (they belong to the node layers), as are
 * "cluster.ras." keys (the resiliency layer's; see
 * resilient_cluster_io.hh).
 */

#ifndef ENA_CLUSTER_CLUSTER_CONFIG_IO_HH
#define ENA_CLUSTER_CLUSTER_CONFIG_IO_HH

#include "cluster/cluster_config.hh"
#include "util/config.hh"

namespace ena {

inline ClusterConfig
clusterConfigFromConfig(const Config &cfg)
{
    static const char *known[] = {
        "cluster.nodes", "cluster.topology", "cluster.links_per_node",
        "cluster.link_gbs", "cluster.link_latency_us",
        "cluster.pj_per_bit", "cluster.fat_tree_radix",
        "cluster.fat_tree_taper", "cluster.dragonfly_group_routers",
        "cluster.torus_x", "cluster.torus_y", "cluster.torus_z",
    };
    for (const std::string &key : cfg.keysWithPrefix("cluster.")) {
        // "cluster.ras." keys belong to the resiliency layer
        // (resilient_cluster_io.hh) and are validated there.
        if (key.rfind("cluster.ras.", 0) == 0)
            continue;
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok)
            ENA_FATAL("unknown cluster-config key '", key, "'");
    }

    ClusterConfig c;
    c.nodes = static_cast<int>(cfg.getInt("cluster.nodes", c.nodes));
    c.topology = clusterTopologyFromName(cfg.getString(
        "cluster.topology", clusterTopologyName(c.topology)));
    c.linksPerNode = static_cast<int>(
        cfg.getInt("cluster.links_per_node", c.linksPerNode));
    c.linkGbs = cfg.getDouble("cluster.link_gbs", c.linkGbs);
    c.linkLatencyUs =
        cfg.getDouble("cluster.link_latency_us", c.linkLatencyUs);
    c.pjPerBit = cfg.getDouble("cluster.pj_per_bit", c.pjPerBit);
    c.fatTreeRadix = static_cast<int>(
        cfg.getInt("cluster.fat_tree_radix", c.fatTreeRadix));
    c.fatTreeTaper =
        cfg.getDouble("cluster.fat_tree_taper", c.fatTreeTaper);
    c.dragonflyGroupRouters = static_cast<int>(cfg.getInt(
        "cluster.dragonfly_group_routers", c.dragonflyGroupRouters));
    c.torusX = static_cast<int>(cfg.getInt("cluster.torus_x", c.torusX));
    c.torusY = static_cast<int>(cfg.getInt("cluster.torus_y", c.torusY));
    c.torusZ = static_cast<int>(cfg.getInt("cluster.torus_z", c.torusZ));

    c.validate();
    return c;
}

/** Serialize a ClusterConfig back into a Config ("cluster." keys). */
inline Config
clusterConfigToConfig(const ClusterConfig &c)
{
    Config cfg;
    cfg.set("cluster.nodes", c.nodes);
    cfg.set("cluster.topology", clusterTopologyName(c.topology));
    cfg.set("cluster.links_per_node", c.linksPerNode);
    cfg.set("cluster.link_gbs", c.linkGbs);
    cfg.set("cluster.link_latency_us", c.linkLatencyUs);
    cfg.set("cluster.pj_per_bit", c.pjPerBit);
    cfg.set("cluster.fat_tree_radix", c.fatTreeRadix);
    cfg.set("cluster.fat_tree_taper", c.fatTreeTaper);
    cfg.set("cluster.dragonfly_group_routers", c.dragonflyGroupRouters);
    cfg.set("cluster.torus_x", c.torusX);
    cfg.set("cluster.torus_y", c.torusY);
    cfg.set("cluster.torus_z", c.torusZ);
    return cfg;
}

} // namespace ena

#endif // ENA_CLUSTER_CLUSTER_CONFIG_IO_HH

/**
 * @file
 * Config-file bindings for ResilienceSpec, mirroring
 * cluster_config_io.hh: the resiliency layer is described under the
 * "cluster.ras." prefix, so one "key = value" file can hold the full
 * fault-aware machine (ehp.* / extmem.* / opts.* for the node,
 * cluster.* for the fabric, cluster.ras.* for protection and
 * checkpointing) and be loaded by nodeConfigFromConfig,
 * clusterConfigFromConfig, and resilienceSpecFromConfig side by side.
 *
 * Recognized keys (all optional; defaults = ResilienceSpec{}):
 *
 *   cluster.ras.faults_enabled, cluster.ras.dram_ecc,
 *   cluster.ras.sram_ecc, cluster.ras.gpu_rmt,
 *   cluster.ras.ntc_ser_multiplier,
 *   cluster.ras.rmt_policy (off | opportunistic | full),
 *   cluster.ras.checkpoint_bytes, cluster.ras.io_bandwidth_bps,
 *   cluster.ras.checkpoint_overhead_s, cluster.ras.restart_extra_s,
 *   cluster.ras.checkpoint_via_fabric
 *
 * Unknown "cluster.ras." keys are rejected to catch typos; keys
 * outside the prefix are ignored (they belong to the other layers).
 *
 * tryResilienceSpecFromConfig is the recoverable entry point (errors
 * carry the offending key and its source:line origin);
 * resilienceSpecFromConfig is the legacy fatal() wrapper.
 */

#ifndef ENA_CLUSTER_RESILIENT_CLUSTER_IO_HH
#define ENA_CLUSTER_RESILIENT_CLUSTER_IO_HH

#include "cluster/resilient_cluster.hh"
#include "util/config.hh"
#include "util/status.hh"

namespace ena {

inline Expected<ResilienceSpec>
tryResilienceSpecFromConfig(const Config &cfg)
{
    static const char *known[] = {
        "cluster.ras.faults_enabled",
        "cluster.ras.dram_ecc",
        "cluster.ras.sram_ecc",
        "cluster.ras.gpu_rmt",
        "cluster.ras.ntc_ser_multiplier",
        "cluster.ras.rmt_policy",
        "cluster.ras.checkpoint_bytes",
        "cluster.ras.io_bandwidth_bps",
        "cluster.ras.checkpoint_overhead_s",
        "cluster.ras.restart_extra_s",
        "cluster.ras.checkpoint_via_fabric",
    };
    for (const std::string &key : cfg.keysWithPrefix("cluster.ras.")) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok) {
            std::string where = cfg.origin(key);
            return Status::invalidArgument(
                "unknown resilience-config key '", key, "'",
                where.empty() ? "" : " (" + where + ")");
        }
    }

    ResilienceSpec s;
    ENA_ASSIGN_OR_RETURN(
        s.faultsEnabled,
        cfg.tryGetBool("cluster.ras.faults_enabled", s.faultsEnabled));
    ENA_ASSIGN_OR_RETURN(
        s.ras.dramEcc,
        cfg.tryGetBool("cluster.ras.dram_ecc", s.ras.dramEcc));
    ENA_ASSIGN_OR_RETURN(
        s.ras.sramEcc,
        cfg.tryGetBool("cluster.ras.sram_ecc", s.ras.sramEcc));
    ENA_ASSIGN_OR_RETURN(
        s.ras.gpuRmt, cfg.tryGetBool("cluster.ras.gpu_rmt", s.ras.gpuRmt));
    ENA_ASSIGN_OR_RETURN(
        s.ras.ntcSerMultiplier,
        cfg.tryGetDouble("cluster.ras.ntc_ser_multiplier",
                         s.ras.ntcSerMultiplier));
    ENA_ASSIGN_OR_RETURN(
        std::string policy,
        cfg.tryGetString("cluster.ras.rmt_policy",
                         rmtPolicyName(s.rmtPolicy)));
    ENA_ASSIGN_OR_RETURN(s.rmtPolicy, tryRmtPolicyFromName(policy));
    ENA_ASSIGN_OR_RETURN(
        s.checkpoint.checkpointBytes,
        cfg.tryGetDouble("cluster.ras.checkpoint_bytes",
                         s.checkpoint.checkpointBytes));
    ENA_ASSIGN_OR_RETURN(
        s.checkpoint.ioBandwidthBps,
        cfg.tryGetDouble("cluster.ras.io_bandwidth_bps",
                         s.checkpoint.ioBandwidthBps));
    ENA_ASSIGN_OR_RETURN(
        s.checkpoint.overheadS,
        cfg.tryGetDouble("cluster.ras.checkpoint_overhead_s",
                         s.checkpoint.overheadS));
    ENA_ASSIGN_OR_RETURN(
        s.checkpoint.restartExtraS,
        cfg.tryGetDouble("cluster.ras.restart_extra_s",
                         s.checkpoint.restartExtraS));
    ENA_ASSIGN_OR_RETURN(
        s.checkpointViaFabric,
        cfg.tryGetBool("cluster.ras.checkpoint_via_fabric",
                       s.checkpointViaFabric));

    ENA_TRY(s.tryValidate());
    return s;
}

/** Legacy flavor: fatal() with the chained diagnostic on any error. */
inline ResilienceSpec
resilienceSpecFromConfig(const Config &cfg)
{
    return unwrapOrFatal(tryResilienceSpecFromConfig(cfg).withContext(
        "loading resilience spec"));
}

/** Serialize a ResilienceSpec back into a Config ("cluster.ras."). */
inline Config
resilienceSpecToConfig(const ResilienceSpec &s)
{
    Config cfg;
    cfg.set("cluster.ras.faults_enabled", s.faultsEnabled);
    cfg.set("cluster.ras.dram_ecc", s.ras.dramEcc);
    cfg.set("cluster.ras.sram_ecc", s.ras.sramEcc);
    cfg.set("cluster.ras.gpu_rmt", s.ras.gpuRmt);
    cfg.set("cluster.ras.ntc_ser_multiplier", s.ras.ntcSerMultiplier);
    cfg.set("cluster.ras.rmt_policy", rmtPolicyName(s.rmtPolicy));
    cfg.set("cluster.ras.checkpoint_bytes", s.checkpoint.checkpointBytes);
    cfg.set("cluster.ras.io_bandwidth_bps", s.checkpoint.ioBandwidthBps);
    cfg.set("cluster.ras.checkpoint_overhead_s", s.checkpoint.overheadS);
    cfg.set("cluster.ras.restart_extra_s", s.checkpoint.restartExtraS);
    cfg.set("cluster.ras.checkpoint_via_fabric", s.checkpointViaFabric);
    return cfg;
}

} // namespace ena

#endif // ENA_CLUSTER_RESILIENT_CLUSTER_IO_HH

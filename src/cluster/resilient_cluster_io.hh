/**
 * @file
 * Config-file bindings for ResilienceSpec, mirroring
 * cluster_config_io.hh: the resiliency layer is described under the
 * "cluster.ras." prefix, so one "key = value" file can hold the full
 * fault-aware machine (ehp.* / extmem.* / opts.* for the node,
 * cluster.* for the fabric, cluster.ras.* for protection and
 * checkpointing) and be loaded by nodeConfigFromConfig,
 * clusterConfigFromConfig, and resilienceSpecFromConfig side by side.
 *
 * Recognized keys (all optional; defaults = ResilienceSpec{}):
 *
 *   cluster.ras.faults_enabled, cluster.ras.dram_ecc,
 *   cluster.ras.sram_ecc, cluster.ras.gpu_rmt,
 *   cluster.ras.ntc_ser_multiplier,
 *   cluster.ras.rmt_policy (off | opportunistic | full),
 *   cluster.ras.checkpoint_bytes, cluster.ras.io_bandwidth_bps,
 *   cluster.ras.checkpoint_overhead_s, cluster.ras.restart_extra_s,
 *   cluster.ras.checkpoint_via_fabric
 *
 * Unknown "cluster.ras." keys are rejected to catch typos; keys
 * outside the prefix are ignored (they belong to the other layers).
 */

#ifndef ENA_CLUSTER_RESILIENT_CLUSTER_IO_HH
#define ENA_CLUSTER_RESILIENT_CLUSTER_IO_HH

#include "cluster/resilient_cluster.hh"
#include "util/config.hh"

namespace ena {

inline ResilienceSpec
resilienceSpecFromConfig(const Config &cfg)
{
    static const char *known[] = {
        "cluster.ras.faults_enabled",
        "cluster.ras.dram_ecc",
        "cluster.ras.sram_ecc",
        "cluster.ras.gpu_rmt",
        "cluster.ras.ntc_ser_multiplier",
        "cluster.ras.rmt_policy",
        "cluster.ras.checkpoint_bytes",
        "cluster.ras.io_bandwidth_bps",
        "cluster.ras.checkpoint_overhead_s",
        "cluster.ras.restart_extra_s",
        "cluster.ras.checkpoint_via_fabric",
    };
    for (const std::string &key : cfg.keysWithPrefix("cluster.ras.")) {
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok)
            ENA_FATAL("unknown resilience-config key '", key, "'");
    }

    ResilienceSpec s;
    s.faultsEnabled =
        cfg.getBool("cluster.ras.faults_enabled", s.faultsEnabled);
    s.ras.dramEcc = cfg.getBool("cluster.ras.dram_ecc", s.ras.dramEcc);
    s.ras.sramEcc = cfg.getBool("cluster.ras.sram_ecc", s.ras.sramEcc);
    s.ras.gpuRmt = cfg.getBool("cluster.ras.gpu_rmt", s.ras.gpuRmt);
    s.ras.ntcSerMultiplier = cfg.getDouble(
        "cluster.ras.ntc_ser_multiplier", s.ras.ntcSerMultiplier);
    s.rmtPolicy = rmtPolicyFromName(cfg.getString(
        "cluster.ras.rmt_policy", rmtPolicyName(s.rmtPolicy)));
    s.checkpoint.checkpointBytes = cfg.getDouble(
        "cluster.ras.checkpoint_bytes", s.checkpoint.checkpointBytes);
    s.checkpoint.ioBandwidthBps = cfg.getDouble(
        "cluster.ras.io_bandwidth_bps", s.checkpoint.ioBandwidthBps);
    s.checkpoint.overheadS = cfg.getDouble(
        "cluster.ras.checkpoint_overhead_s", s.checkpoint.overheadS);
    s.checkpoint.restartExtraS = cfg.getDouble(
        "cluster.ras.restart_extra_s", s.checkpoint.restartExtraS);
    s.checkpointViaFabric = cfg.getBool(
        "cluster.ras.checkpoint_via_fabric", s.checkpointViaFabric);

    s.validate();
    return s;
}

/** Serialize a ResilienceSpec back into a Config ("cluster.ras."). */
inline Config
resilienceSpecToConfig(const ResilienceSpec &s)
{
    Config cfg;
    cfg.set("cluster.ras.faults_enabled", s.faultsEnabled);
    cfg.set("cluster.ras.dram_ecc", s.ras.dramEcc);
    cfg.set("cluster.ras.sram_ecc", s.ras.sramEcc);
    cfg.set("cluster.ras.gpu_rmt", s.ras.gpuRmt);
    cfg.set("cluster.ras.ntc_ser_multiplier", s.ras.ntcSerMultiplier);
    cfg.set("cluster.ras.rmt_policy", rmtPolicyName(s.rmtPolicy));
    cfg.set("cluster.ras.checkpoint_bytes", s.checkpoint.checkpointBytes);
    cfg.set("cluster.ras.io_bandwidth_bps", s.checkpoint.ioBandwidthBps);
    cfg.set("cluster.ras.checkpoint_overhead_s", s.checkpoint.overheadS);
    cfg.set("cluster.ras.restart_extra_s", s.checkpoint.restartExtraS);
    cfg.set("cluster.ras.checkpoint_via_fabric", s.checkpointViaFabric);
    return cfg;
}

} // namespace ena

#endif // ENA_CLUSTER_RESILIENT_CLUSTER_IO_HH

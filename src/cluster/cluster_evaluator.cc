#include "cluster/cluster_evaluator.hh"

#include <cmath>

#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "util/thread_pool.hh"

namespace ena {

namespace {

telemetry::Counter &
fabricBytesCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "cluster.fabric_bytes",
        "per-node fabric bytes per compute-second, summed over all "
        "cluster evaluations");
    return c;
}

telemetry::Counter &
clusterEvalsCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "cluster.evaluations",
        "(config, app, comm spec) system evaluations");
    return c;
}

} // anonymous namespace

ClusterEvaluator::ClusterEvaluator(const NodeEvaluator &eval,
                                   ClusterConfig cluster)
    : eval_(eval), cluster_(cluster), net_(cluster),
      proj_(eval, cluster.nodes)
{
}

ClusterResult
ClusterEvaluator::evaluate(const NodeConfig &cfg, App app,
                           const CommSpec &spec) const
{
    telemetry::ScopedSpan span("cluster", "evaluate");
    ClusterResult r;
    r.app = app;
    r.spec = spec;
    r.node = memo_ ? eval_.evaluateMemo(cfg, app, *memo_)
                   : eval_.evaluate(cfg, app);

    r.comm = CommModel::cost(profileFor(app), spec, net_,
                             r.node.perf.flops);
    r.commEfficiency = r.comm.efficiency();

    // The analytic (zero-communication) projection is core's Fig. 14
    // code path applied to the node result we already hold (same bits
    // as re-evaluating; see ExascaleProjector's EvalResult overloads);
    // communication multiplies on top of it, so a zero-cost spec
    // leaves the numbers bit-for-bit unchanged (x * 1.0 == x,
    // x + 0.0 == x).
    r.analyticExaflops = proj_.systemExaflops(r.node);
    r.systemExaflops = r.analyticExaflops * r.commEfficiency;
    r.analyticMw = proj_.systemMw(r.node);

    // Fabric energy: every byte pays the SerDes+switch cost once per
    // hop. Traffic is the achieved (efficiency-derated) compute rate
    // times the pattern's volume; idle links are in the paper's
    // low-power sleep state, so zero traffic draws zero fabric power.
    const double traffic_bytes_per_sec =
        r.node.perf.flops * r.commEfficiency * r.comm.bytesPerFlop;
    const double watts_per_node = traffic_bytes_per_sec * 8.0 *
                                  cluster_.pjPerBit * 1e-12 *
                                  net_.avgHops();
    r.networkMw = watts_per_node * cluster_.nodes / 1e6;
    r.systemMw = r.analyticMw + r.networkMw;

    clusterEvalsCounter().add();
    fabricBytesCounter().add(
        static_cast<std::uint64_t>(traffic_bytes_per_sec));
    return r;
}

double
ClusterEvaluator::geomeanSystemExaflops(const NodeConfig &cfg,
                                        const CommSpec &spec) const
{
    const std::vector<App> &apps = allApps();
    double log_sum = ThreadPool::global().parallelReduce(
        apps.size(), 0.0,
        [&](std::size_t i) {
            return std::log(evaluate(cfg, apps[i], spec).systemExaflops);
        },
        [](double acc, double v) { return acc + v; });
    return std::exp(log_sum / apps.size());
}

double
ClusterEvaluator::meanCommEfficiency(const NodeConfig &cfg,
                                     const CommSpec &spec) const
{
    const std::vector<App> &apps = allApps();
    double sum = ThreadPool::global().parallelReduce(
        apps.size(), 0.0,
        [&](std::size_t i) {
            return evaluate(cfg, apps[i], spec).commEfficiency;
        },
        [](double acc, double v) { return acc + v; });
    return sum / apps.size();
}

} // namespace ena

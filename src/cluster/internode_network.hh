/**
 * @file
 * Analytic model of the SerDes inter-node network connecting ENA nodes
 * (paper Section II-A). The machine is far too large for all-pairs
 * routing (100,000 nodes), so the model is closed-form: per-topology
 * hop counts, bisection bandwidth, and pattern-dependent deliverable
 * per-node bandwidth, derived from the same switch/link abstractions
 * the on-package interconnect uses (src/noc/topology.hh provides the
 * BFS-exact reference the torus formulas are validated against).
 *
 * Topology shapes:
 *  - fat-tree:   three-level folded Clos of radix-k switches (k^3/4
 *                nodes), optionally tapered above the leaf level;
 *  - dragonfly:  balanced (p = h = a/2, g = a*h + 1 groups), minimal
 *                routing with at most one global hop;
 *  - 3d-torus:   one switch per node, near-cubic dimensions.
 *
 * Hop counts include the node-to-switch links, so a torus neighbor is
 * 1 hop and a fat-tree same-leaf pair is 2 hops.
 */

#ifndef ENA_CLUSTER_INTERNODE_NETWORK_HH
#define ENA_CLUSTER_INTERNODE_NETWORK_HH

#include <cstdint>
#include <string>

#include "cluster/cluster_config.hh"
#include "cluster/comm_pattern.hh"
#include "noc/topology.hh"

namespace ena {

class InterNodeNetwork
{
  public:
    explicit InterNodeNetwork(const ClusterConfig &cfg);

    const ClusterConfig &config() const { return cfg_; }

    /** Average node-to-node hop count under uniform random traffic. */
    double avgHops() const { return avgHops_; }

    /** Worst-case node-to-node hop count. */
    double diameterHops() const { return diameterHops_; }

    /** Hop count to a logically adjacent rank (halo neighbors). */
    double neighborHops() const { return neighborHops_; }

    /** Aggregate bandwidth across the worst-case bisection (GB/s). */
    double bisectionGbs() const { return bisectionGbs_; }

    /** Per-node injection bandwidth (GB/s). */
    double injectionGbs() const { return cfg_.injectionGbs(); }

    /** Switches in the fabric (torus: one per node). */
    std::uint64_t switchCount() const { return switches_; }

    /** Switch-to-switch SerDes links in the fabric. */
    std::uint64_t fabricLinkCount() const { return fabricLinks_; }

    /**
     * Bandwidth one node can sustain under a pattern (GB/s): injection
     * for neighbor/tree traffic, bisection-limited for all-to-all.
     */
    double deliveredGbs(CommPattern p) const;

    /** One-way latency of a message traversing @p hops links (us). */
    double
    latencyUs(double hops) const
    {
        return hops * cfg_.linkLatencyUs;
    }

    /** Resolved torus dimensions (fatal() for other topologies). */
    void torusDims(int &nx, int &ny, int &nz) const;

    /** Resolved fat-tree switch radix (fatal() otherwise). */
    int fatTreeRadix() const;

    /** Resolved dragonfly routers per group (fatal() otherwise). */
    int dragonflyGroupRouters() const;

    /**
     * Build the torus as an explicit router graph on the on-package
     * interconnect's Topology abstraction — BFS-exact hop counts for
     * validating the closed forms. fatal() unless the topology is a
     * small 3d-torus (see Topology::torus3d).
     */
    Topology smallTorusTopology() const;

    /** Multi-line human-readable summary for tools. */
    std::string describe() const;

  private:
    void buildFatTree();
    void buildDragonfly();
    void buildTorus();

    ClusterConfig cfg_;
    double avgHops_ = 0.0;
    double diameterHops_ = 0.0;
    double neighborHops_ = 0.0;
    double bisectionGbs_ = 0.0;
    std::uint64_t switches_ = 0;
    std::uint64_t fabricLinks_ = 0;
    int fatTreeRadix_ = 0;
    int dragonflyA_ = 0;       ///< routers per group
    int torusX_ = 0, torusY_ = 0, torusZ_ = 0;
};

} // namespace ena

#endif // ENA_CLUSTER_INTERNODE_NETWORK_HH

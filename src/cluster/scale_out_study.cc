#include "cluster/scale_out_study.hh"

#include <cstdlib>
#include <sstream>

#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/thread_pool.hh"

namespace ena {

namespace {

telemetry::Counter &
failedCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "sweep.configs_failed",
        "grid points quarantined instead of evaluated");
    return c;
}

/** Hexfloat journal payload; see encodeDsePoint in core/dse.cc. */
std::string
encodeTopologyPoint(const TopologyPoint &p)
{
    std::ostringstream os;
    os << strformat("%a %a %a %a %a %d ", p.avgHops, p.bisectionGbs,
                    p.efficiency, p.systemExaflops, p.systemMw,
                    p.ok ? 1 : 0);
    os << p.error;
    return os.str();
}

bool
decodeTopologyPoint(const std::string &payload, TopologyPoint *p)
{
    std::istringstream is(payload);
    std::string f[5];
    int ok = 0;
    if (!(is >> f[0] >> f[1] >> f[2] >> f[3] >> f[4] >> ok))
        return false;
    double *dst[5] = {&p->avgHops, &p->bisectionGbs, &p->efficiency,
                      &p->systemExaflops, &p->systemMw};
    for (int i = 0; i < 5; ++i) {
        char *end = nullptr;
        *dst[i] = std::strtod(f[i].c_str(), &end);
        if (end == f[i].c_str() || *end)
            return false;
    }
    p->ok = ok != 0;
    is.get();
    std::getline(is, p->error);
    return true;
}

} // anonymous namespace

ScaleOutStudy::ScaleOutStudy(const NodeEvaluator &eval,
                             ClusterConfig base)
    : eval_(eval), base_(base)
{
    base_.validate();
}

std::vector<ScalingPoint>
ScaleOutStudy::scalingCurve(const NodeConfig &cfg, App app,
                            CommSpec spec,
                            const std::vector<int> &node_counts) const
{
    ENA_SPAN("cluster", "scaling_curve");
    return ThreadPool::global().parallelMap(
        node_counts.size(), [&](std::size_t i) {
            telemetry::ScopedSpan span("cluster", "evaluate_node_count");
            ClusterConfig cc = base_;
            cc.nodes = node_counts[i];
            // Explicit torus dims only fit the base node count.
            cc.torusX = cc.torusY = cc.torusZ = 0;
            ClusterEvaluator ce(eval_, cc);
            ce.setMemoCache(&memo_);
            ClusterResult r = ce.evaluate(cfg, app, spec);
            ScalingPoint p;
            p.nodes = cc.nodes;
            p.analyticExaflops = r.analyticExaflops;
            p.systemExaflops = r.systemExaflops;
            p.efficiency = r.commEfficiency;
            p.overheadRatio = r.comm.overheadRatio();
            p.systemMw = r.systemMw;
            return p;
        });
}

std::vector<ScalingPoint>
ScaleOutStudy::weakScaling(const NodeConfig &cfg, App app, CommSpec spec,
                           const std::vector<int> &node_counts) const
{
    spec.scaling = ScalingMode::Weak;
    return scalingCurve(cfg, app, spec, node_counts);
}

std::vector<ScalingPoint>
ScaleOutStudy::strongScaling(const NodeConfig &cfg, App app,
                             CommSpec spec,
                             const std::vector<int> &node_counts) const
{
    spec.scaling = ScalingMode::Strong;
    return scalingCurve(cfg, app, spec, node_counts);
}

std::vector<ClusterFig14Point>
ScaleOutStudy::fig14(const std::vector<int> &cus,
                     const CommSpec &spec) const
{
    ENA_SPAN("cluster", "fig14_sweep");
    ClusterEvaluator ce(eval_, base_);
    ce.setMemoCache(&memo_);
    return ThreadPool::global().parallelMap(
        cus.size(), [&](std::size_t i) {
            // The Fig. 14 operating point (see
            // ExascaleProjector::sweepCus).
            NodeConfig cfg;
            cfg.cus = cus[i];
            cfg.freqGhz = 1.0;
            cfg.bwTbs = 1.0;
            ClusterResult r = ce.evaluate(cfg, App::MaxFlops, spec);
            ClusterFig14Point p;
            p.cus = cus[i];
            p.analyticExaflops = r.analyticExaflops;
            p.analyticMw = r.analyticMw;
            p.commExaflops = r.systemExaflops;
            p.commMw = r.systemMw;
            p.efficiency = r.commEfficiency;
            return p;
        });
}

std::vector<TopologyPoint>
ScaleOutStudy::topologySweep(
    const NodeConfig &cfg, App app, const CommSpec &spec,
    const std::vector<ClusterTopology> &topologies,
    const std::vector<int> &node_counts) const
{
    auto journal = SweepJournal::openFromEnvironment();
    return topologySweep(cfg, app, spec, topologies, node_counts,
                         journal.get());
}

std::vector<TopologyPoint>
ScaleOutStudy::topologySweep(
    const NodeConfig &cfg, App app, const CommSpec &spec,
    const std::vector<ClusterTopology> &topologies,
    const std::vector<int> &node_counts, SweepJournal *journal) const
{
    ENA_SPAN("cluster", "topology_sweep");
    const std::size_t nn = node_counts.size();
    return ThreadPool::global().parallelMap(
        topologies.size() * nn, [&](std::size_t i) {
            telemetry::ScopedSpan span("cluster", "evaluate_topology");
            ClusterConfig cc = base_;
            cc.topology = topologies[i / nn];
            cc.nodes = node_counts[i % nn];
            cc.torusX = cc.torusY = cc.torusZ = 0;
            TopologyPoint p;
            p.topology = cc.topology;
            p.nodes = cc.nodes;

            std::string key, payload;
            if (journal) {
                key = strformat("topo[%zu]:%s:n%d:%s", i,
                                clusterTopologyName(cc.topology).c_str(),
                                cc.nodes, cfg.label().c_str());
                if (journal->lookup(key, &payload)) {
                    TopologyPoint j = p;
                    if (decodeTopologyPoint(payload, &j))
                        return j;
                    warn("sweep journal: undecodable payload for '",
                         key, "'; recomputing");
                }
            }

            Status valid = cc.tryValidate();
            if (!valid.ok())
                valid = valid.withContext("topology sweep cell ", i);
            else
                valid = cfg.tryValidate();
            if (!valid.ok()) {
                p.ok = false;
                p.error = valid.toString();
                failedCounter().add();
                warn("topology sweep: quarantined cell ", i, ": ",
                     p.error);
            } else {
                try {
                    ClusterEvaluator ce(eval_, cc);
                    ce.setMemoCache(&memo_);
                    ClusterResult r = ce.evaluate(cfg, app, spec);
                    p.avgHops = ce.network().avgHops();
                    p.bisectionGbs = ce.network().bisectionGbs();
                    p.efficiency = r.commEfficiency;
                    p.systemExaflops = r.systemExaflops;
                    p.systemMw = r.systemMw;
                } catch (const std::exception &e) {
                    p = TopologyPoint{};
                    p.topology = cc.topology;
                    p.nodes = cc.nodes;
                    p.ok = false;
                    p.error = e.what();
                    failedCounter().add();
                    warn("topology sweep: quarantined cell ", i, ": ",
                         p.error);
                }
            }

            if (journal)
                journal->append(key, encodeTopologyPoint(p));
            return p;
        });
}

} // namespace ena

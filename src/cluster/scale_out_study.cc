#include "cluster/scale_out_study.hh"

#include "telemetry/telemetry.hh"
#include "util/thread_pool.hh"

namespace ena {

ScaleOutStudy::ScaleOutStudy(const NodeEvaluator &eval,
                             ClusterConfig base)
    : eval_(eval), base_(base)
{
    base_.validate();
}

std::vector<ScalingPoint>
ScaleOutStudy::scalingCurve(const NodeConfig &cfg, App app,
                            CommSpec spec,
                            const std::vector<int> &node_counts) const
{
    ENA_SPAN("cluster", "scaling_curve");
    return ThreadPool::global().parallelMap(
        node_counts.size(), [&](std::size_t i) {
            telemetry::ScopedSpan span("cluster", "evaluate_node_count");
            ClusterConfig cc = base_;
            cc.nodes = node_counts[i];
            // Explicit torus dims only fit the base node count.
            cc.torusX = cc.torusY = cc.torusZ = 0;
            ClusterEvaluator ce(eval_, cc);
            ClusterResult r = ce.evaluate(cfg, app, spec);
            ScalingPoint p;
            p.nodes = cc.nodes;
            p.analyticExaflops = r.analyticExaflops;
            p.systemExaflops = r.systemExaflops;
            p.efficiency = r.commEfficiency;
            p.overheadRatio = r.comm.overheadRatio();
            p.systemMw = r.systemMw;
            return p;
        });
}

std::vector<ScalingPoint>
ScaleOutStudy::weakScaling(const NodeConfig &cfg, App app, CommSpec spec,
                           const std::vector<int> &node_counts) const
{
    spec.scaling = ScalingMode::Weak;
    return scalingCurve(cfg, app, spec, node_counts);
}

std::vector<ScalingPoint>
ScaleOutStudy::strongScaling(const NodeConfig &cfg, App app,
                             CommSpec spec,
                             const std::vector<int> &node_counts) const
{
    spec.scaling = ScalingMode::Strong;
    return scalingCurve(cfg, app, spec, node_counts);
}

std::vector<ClusterFig14Point>
ScaleOutStudy::fig14(const std::vector<int> &cus,
                     const CommSpec &spec) const
{
    ENA_SPAN("cluster", "fig14_sweep");
    ClusterEvaluator ce(eval_, base_);
    return ThreadPool::global().parallelMap(
        cus.size(), [&](std::size_t i) {
            // The Fig. 14 operating point (see
            // ExascaleProjector::sweepCus).
            NodeConfig cfg;
            cfg.cus = cus[i];
            cfg.freqGhz = 1.0;
            cfg.bwTbs = 1.0;
            ClusterResult r = ce.evaluate(cfg, App::MaxFlops, spec);
            ClusterFig14Point p;
            p.cus = cus[i];
            p.analyticExaflops = r.analyticExaflops;
            p.analyticMw = r.analyticMw;
            p.commExaflops = r.systemExaflops;
            p.commMw = r.systemMw;
            p.efficiency = r.commEfficiency;
            return p;
        });
}

std::vector<TopologyPoint>
ScaleOutStudy::topologySweep(
    const NodeConfig &cfg, App app, const CommSpec &spec,
    const std::vector<ClusterTopology> &topologies,
    const std::vector<int> &node_counts) const
{
    ENA_SPAN("cluster", "topology_sweep");
    const std::size_t nn = node_counts.size();
    return ThreadPool::global().parallelMap(
        topologies.size() * nn, [&](std::size_t i) {
            telemetry::ScopedSpan span("cluster", "evaluate_topology");
            ClusterConfig cc = base_;
            cc.topology = topologies[i / nn];
            cc.nodes = node_counts[i % nn];
            cc.torusX = cc.torusY = cc.torusZ = 0;
            ClusterEvaluator ce(eval_, cc);
            ClusterResult r = ce.evaluate(cfg, app, spec);
            TopologyPoint p;
            p.topology = cc.topology;
            p.nodes = cc.nodes;
            p.avgHops = ce.network().avgHops();
            p.bisectionGbs = ce.network().bisectionGbs();
            p.efficiency = r.commEfficiency;
            p.systemExaflops = r.systemExaflops;
            p.systemMw = r.systemMw;
            return p;
        });
}

} // namespace ena

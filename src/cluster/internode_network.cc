#include "cluster/internode_network.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace ena {

namespace {

/** Mean hop distance between two random positions on a k-ring. */
double
ringAvgHops(int k)
{
    if (k <= 1)
        return 0.0;
    if (k % 2 == 0)
        return k / 4.0;
    return (static_cast<double>(k) * k - 1.0) / (4.0 * k);
}

/** Near-cubic factorization nx >= ny >= nz with nx*ny*nz == n. */
void
nearCubicDims(int n, int &nx, int &ny, int &nz)
{
    nz = 1;
    for (int d = 1; static_cast<double>(d) * d * d <= n; ++d) {
        if (n % d == 0)
            nz = d;
    }
    int m = n / nz;
    ny = 1;
    for (int d = 1; static_cast<double>(d) * d <= m; ++d) {
        if (m % d == 0)
            ny = d;
    }
    nx = m / ny;
}

} // anonymous namespace

InterNodeNetwork::InterNodeNetwork(const ClusterConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
    switch (cfg_.topology) {
      case ClusterTopology::FatTree:
        buildFatTree();
        break;
      case ClusterTopology::Dragonfly:
        buildDragonfly();
        break;
      case ClusterTopology::Torus3D:
        buildTorus();
        break;
    }
}

void
InterNodeNetwork::buildFatTree()
{
    const double n = cfg_.nodes;
    int k = cfg_.fatTreeRadix;
    if (k == 0) {
        // Smallest even radix whose three-level Clos holds every node.
        k = 4;
        while (static_cast<double>(k) * k * k / 4.0 < n)
            k += 2;
    }
    if (k % 2 != 0)
        ENA_FATAL("fat-tree radix must be even, got ", k);
    if (static_cast<double>(k) * k * k / 4.0 < n)
        ENA_FATAL("fat-tree radix ", k, " holds only ",
                  static_cast<double>(k) * k * k / 4.0, " nodes, need ",
                  cfg_.nodes);
    fatTreeRadix_ = k;

    // Three levels: leaf -> pod aggregation -> core. A pod is k/2
    // leaves x k/2 aggs serving (k/2)^2 nodes.
    const double nodes_per_leaf = k / 2.0;
    const double nodes_per_pod = nodes_per_leaf * nodes_per_leaf;
    const double pairs = std::max(n - 1.0, 1.0);
    double f_leaf = std::min(nodes_per_leaf - 1.0, pairs) / pairs;
    double f_pod =
        std::max(std::min(nodes_per_pod, n) - nodes_per_leaf, 0.0) /
        pairs;
    double f_far = std::max(1.0 - f_leaf - f_pod, 0.0);
    avgHops_ = 2.0 * f_leaf + 4.0 * f_pod + 6.0 * f_far;
    diameterHops_ = n > nodes_per_pod ? 6.0
                    : n > nodes_per_leaf ? 4.0
                                         : 2.0;
    // Consecutive ranks share a leaf except across leaf boundaries.
    neighborHops_ = 2.0;

    // The fabric is linksPerNode parallel planes of the same tree; the
    // taper divides every up-link above the leaves.
    bisectionGbs_ = n * cfg_.injectionGbs() / (2.0 * cfg_.fatTreeTaper);

    const double planes = cfg_.linksPerNode;
    const double leaves = std::ceil(n / nodes_per_leaf);
    const double aggs = leaves;   // folded Clos: one agg per leaf
    const double cores = (k / 2.0) * (k / 2.0);
    switches_ =
        static_cast<std::uint64_t>(planes * (leaves + aggs + cores));
    const double uplinks_per_switch = (k / 2.0) / cfg_.fatTreeTaper;
    fabricLinks_ = static_cast<std::uint64_t>(
        planes * (leaves + aggs) * uplinks_per_switch);
}

void
InterNodeNetwork::buildDragonfly()
{
    const double n = cfg_.nodes;
    int a = cfg_.dragonflyGroupRouters;
    auto capacity = [](int routers) {
        // Balanced dragonfly: p = h = a/2, g = a*h + 1 groups.
        double p = routers / 2.0;
        double g = routers * p + 1.0;
        return p * routers * g;
    };
    if (a == 0) {
        a = 2;
        while (capacity(a) < n)
            a += 2;
    }
    if (a % 2 != 0)
        ENA_FATAL("dragonfly group size must be even, got ", a);
    if (capacity(a) < n)
        ENA_FATAL("dragonfly with ", a, " routers per group holds only ",
                  capacity(a), " nodes, need ", cfg_.nodes);
    dragonflyA_ = a;

    const double p = a / 2.0;             // nodes per router
    const double g = a * p + 1.0;         // groups
    const double pairs = std::max(n - 1.0, 1.0);
    double f_router = std::min(p - 1.0, pairs) / pairs;
    double f_group =
        std::max(std::min(a * p, n) - p, 0.0) / pairs;
    double f_global = std::max(1.0 - f_router - f_group, 0.0);
    // Minimal routing: local hop at each end with prob (a-1)/a, one
    // global hop, plus the two node-to-router links.
    double far_hops = 3.0 + 2.0 * (a - 1.0) / a;
    avgHops_ = 2.0 * f_router + 3.0 * f_group + far_hops * f_global;
    diameterHops_ = n > a * p ? 5.0 : n > p ? 3.0 : 2.0;
    neighborHops_ = 2.0;

    // Every group pair shares exactly one global link (a*h = g - 1), so
    // a half/half split cuts (g/2)^2 of them. Like the fat tree, the
    // fabric is one plane per NIC port, so the cut scales with
    // linksPerNode (the fat tree inherits this via injectionGbs()).
    bisectionGbs_ =
        (g / 2.0) * (g / 2.0) * cfg_.linkGbs * cfg_.linksPerNode;

    switches_ = static_cast<std::uint64_t>(a * g);
    const double local_links = g * a * (a - 1.0) / 2.0;
    const double global_links = g * (g - 1.0) / 2.0;
    fabricLinks_ =
        static_cast<std::uint64_t>(local_links + global_links);
}

void
InterNodeNetwork::buildTorus()
{
    const int n = cfg_.nodes;
    int nx = cfg_.torusX, ny = cfg_.torusY, nz = cfg_.torusZ;
    if (nx > 0 && ny > 0 && nz > 0) {
        if (static_cast<long long>(nx) * ny * nz != n)
            ENA_FATAL("torus ", nx, "x", ny, "x", nz, " has ",
                      static_cast<long long>(nx) * ny * nz,
                      " nodes, config says ", n);
    } else if (nx == 0 && ny == 0 && nz == 0) {
        nearCubicDims(n, nx, ny, nz);
    } else {
        ENA_FATAL("torus dimensions must be all explicit or all auto");
    }
    torusX_ = nx;
    torusY_ = ny;
    torusZ_ = nz;

    avgHops_ = ringAvgHops(nx) + ringAvgHops(ny) + ringAvgHops(nz);
    diameterHops_ = nx / 2 + ny / 2 + nz / 2;
    neighborHops_ = 1.0;

    // Cut perpendicular to the largest dimension (nx >= ny >= nz for
    // auto dims): ny*nz links cross, twice with a wrap ring. Each of
    // the node's linksPerNode NIC ports contributes its own plane of
    // torus links, matching the per-plane accounting the fat tree
    // bakes into injectionGbs().
    int dims[3] = {nx, ny, nz};
    std::sort(dims, dims + 3);
    const double cut = static_cast<double>(dims[0]) * dims[1];
    bisectionGbs_ = (dims[2] > 2 ? 2.0 : 1.0) * cut * cfg_.linkGbs *
                    cfg_.linksPerNode;

    switches_ = static_cast<std::uint64_t>(n);
    auto dim_links = [n](int k) {
        return k > 2 ? n : k == 2 ? n / 2 : 0;
    };
    fabricLinks_ = static_cast<std::uint64_t>(
        dim_links(nx) + dim_links(ny) + dim_links(nz));
}

double
InterNodeNetwork::deliveredGbs(CommPattern p) const
{
    switch (p) {
      case CommPattern::Halo:
      case CommPattern::Allreduce:
        // Neighbor and ring/tree collectives are injection-limited.
        return injectionGbs();
      case CommPattern::AllToAll:
        // Half of every node's flows cross the bisection each way.
        return std::min(injectionGbs(),
                        2.0 * bisectionGbs_ / cfg_.nodes);
    }
    ENA_FATAL("unknown CommPattern ", static_cast<int>(p));
}

void
InterNodeNetwork::torusDims(int &nx, int &ny, int &nz) const
{
    if (cfg_.topology != ClusterTopology::Torus3D)
        ENA_FATAL("torusDims() on a ", clusterTopologyName(cfg_.topology),
                  " network");
    nx = torusX_;
    ny = torusY_;
    nz = torusZ_;
}

int
InterNodeNetwork::fatTreeRadix() const
{
    if (cfg_.topology != ClusterTopology::FatTree)
        ENA_FATAL("fatTreeRadix() on a ",
                  clusterTopologyName(cfg_.topology), " network");
    return fatTreeRadix_;
}

int
InterNodeNetwork::dragonflyGroupRouters() const
{
    if (cfg_.topology != ClusterTopology::Dragonfly)
        ENA_FATAL("dragonflyGroupRouters() on a ",
                  clusterTopologyName(cfg_.topology), " network");
    return dragonflyA_;
}

Topology
InterNodeNetwork::smallTorusTopology() const
{
    if (cfg_.topology != ClusterTopology::Torus3D)
        ENA_FATAL("smallTorusTopology() needs a 3d-torus, got ",
                  clusterTopologyName(cfg_.topology));
    return Topology::torus3d(torusX_, torusY_, torusZ_);
}

std::string
InterNodeNetwork::describe() const
{
    std::ostringstream os;
    os << cfg_.label() << "\n"
       << "  switches: " << switches_
       << "  fabric links: " << fabricLinks_ << "\n";
    switch (cfg_.topology) {
      case ClusterTopology::FatTree:
        os << "  shape: 3-level fat tree, radix " << fatTreeRadix_
           << ", taper " << cfg_.fatTreeTaper << "\n";
        break;
      case ClusterTopology::Dragonfly:
        os << "  shape: balanced dragonfly, " << dragonflyA_
           << " routers/group\n";
        break;
      case ClusterTopology::Torus3D:
        os << "  shape: " << torusX_ << " x " << torusY_ << " x "
           << torusZ_ << " torus\n";
        break;
    }
    os << "  hops: avg " << avgHops_ << ", diameter " << diameterHops_
       << ", neighbor " << neighborHops_ << "\n"
       << "  bandwidth: injection " << injectionGbs()
       << " GB/s/node, bisection " << bisectionGbs_ << " GB/s\n";
    return os.str();
}

} // namespace ena

#include "cluster/comm_pattern.hh"

#include <cmath>

#include "cluster/internode_network.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ena {

namespace {

// Share of an app's off-package traffic each pattern actually moves
// across the fabric: a halo ships domain surfaces, an allreduce a small
// reduction vector (per step; the 2(P-1)/P ring-volume factor is applied
// below), an all-to-all reshuffles about half the working set.
constexpr double haloShare = 0.05;
constexpr double allreduceShare = 0.02;
constexpr double allToAllShare = 0.5;

} // anonymous namespace

std::string
commPatternName(CommPattern p)
{
    switch (p) {
      case CommPattern::Halo:
        return "halo";
      case CommPattern::Allreduce:
        return "allreduce";
      case CommPattern::AllToAll:
        return "all-to-all";
    }
    ENA_FATAL("unknown CommPattern ", static_cast<int>(p));
}

Expected<CommPattern>
tryCommPatternFromName(const std::string &name)
{
    std::string n = toLower(name);
    for (CommPattern p : allCommPatterns()) {
        if (n == commPatternName(p))
            return p;
    }
    if (n == "alltoall" || n == "all_to_all" || n == "a2a")
        return CommPattern::AllToAll;
    if (n == "nearest-neighbor" || n == "stencil")
        return CommPattern::Halo;
    return Status::invalidArgument(
        "unknown comm pattern '", name,
        "' (want halo, allreduce, or all-to-all)");
}

CommPattern
commPatternFromName(const std::string &name)
{
    return unwrapOrFatal(tryCommPatternFromName(name));
}

const std::vector<CommPattern> &
allCommPatterns()
{
    static const std::vector<CommPattern> all = {
        CommPattern::Halo,
        CommPattern::Allreduce,
        CommPattern::AllToAll,
    };
    return all;
}

double
CommModel::bytesPerFlop(const KernelProfile &k, const CommSpec &spec,
                        int nodes)
{
    ENA_ASSERT(nodes > 0, "need a positive node count");
    if (nodes == 1)
        return 0.0;   // nothing to exchange with
    const double p = nodes;
    // Bytes per flop that leave the package at all; the pattern then
    // decides how much of that crosses the fabric.
    const double off_package =
        k.extTrafficFraction / k.arithmeticIntensity;

    double share = 0.0;
    switch (spec.pattern) {
      case CommPattern::Halo:
        share = haloShare;
        break;
      case CommPattern::Allreduce:
        // Bandwidth-optimal ring: each node moves 2(P-1)/P of the
        // reduction volume.
        share = allreduceShare * 2.0 * (p - 1.0) / p;
        break;
      case CommPattern::AllToAll:
        // A node keeps 1/P of the reshuffled data local.
        share = allToAllShare * (p - 1.0) / p;
        break;
    }

    // Strong scaling shrinks the per-node domain: a 3D decomposition's
    // surface-to-volume ratio — and hence bytes moved per flop
    // computed — grows with cbrt(P).
    const double scale =
        spec.scaling == ScalingMode::Strong ? std::cbrt(p) : 1.0;

    return spec.intensity * off_package * share * scale;
}

CommCost
CommModel::cost(const KernelProfile &k, const CommSpec &spec,
                const InterNodeNetwork &net, double node_flops)
{
    const int nodes = net.config().nodes;
    CommCost c;
    c.bytesPerFlop = bytesPerFlop(k, spec, nodes);
    c.deliveredGbs = net.deliveredGbs(spec.pattern);

    // Bulk-synchronous, no overlap: for each second of compute the node
    // produces node_flops * bytesPerFlop bytes that drain at the
    // pattern's deliverable bandwidth.
    c.bwOverhead =
        node_flops * c.bytesPerFlop / (c.deliveredGbs * 1e9);

    // Synchronization: each pattern invocation pays the network's
    // latency; an allreduce pays it once per reduction-tree level.
    double hops = 0.0;
    double steps = 1.0;
    switch (spec.pattern) {
      case CommPattern::Halo:
        hops = net.neighborHops();
        break;
      case CommPattern::Allreduce:
        hops = net.avgHops();
        steps = std::ceil(std::log2(static_cast<double>(nodes)));
        steps = std::max(steps, 1.0);
        break;
      case CommPattern::AllToAll:
        hops = net.avgHops();
        break;
    }
    // Under strong scaling the same sync count amortizes over 1/P of
    // the compute, so per-compute-second sync cost grows with P.
    const double strong_factor =
        spec.scaling == ScalingMode::Strong
            ? static_cast<double>(nodes)
            : 1.0;
    c.latOverhead = nodes == 1
                        ? 0.0
                        : spec.intensity * spec.syncsPerSecond * steps *
                              net.latencyUs(hops) * 1e-6 * strong_factor;
    return c;
}

} // namespace ena

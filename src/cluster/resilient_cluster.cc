#include "cluster/resilient_cluster.hh"

#include <cstdlib>
#include <limits>
#include <sstream>

#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/thread_pool.hh"

namespace ena {

namespace {

telemetry::Counter &
resilientEvalsCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "resilient.evaluations",
        "(config, app, comm, resilience spec) system evaluations");
    return c;
}

telemetry::Counter &
failedCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "sweep.configs_failed",
        "grid points quarantined instead of evaluated");
    return c;
}

/** Hexfloat journal payload; see encodeDsePoint in core/dse.cc. */
std::string
encodeResilientPoint(const ResilientSweepPoint &p)
{
    std::ostringstream os;
    os << strformat("%a %a %a %a %a %a %a %a %d ", p.systemMttfHours,
                    p.interruptionMttfHours, p.commEfficiency,
                    p.ckptEfficiency, p.rmtSlowdown, p.systemExaflops,
                    p.effectiveExaflops, p.systemMw, p.ok ? 1 : 0);
    os << p.error;
    return os.str();
}

bool
decodeResilientPoint(const std::string &payload, ResilientSweepPoint *p)
{
    std::istringstream is(payload);
    std::string f[8];
    int ok = 0;
    if (!(is >> f[0] >> f[1] >> f[2] >> f[3] >> f[4] >> f[5] >> f[6] >>
          f[7] >> ok))
        return false;
    double *dst[8] = {&p->systemMttfHours, &p->interruptionMttfHours,
                      &p->commEfficiency, &p->ckptEfficiency,
                      &p->rmtSlowdown, &p->systemExaflops,
                      &p->effectiveExaflops, &p->systemMw};
    for (int i = 0; i < 8; ++i) {
        char *end = nullptr;
        *dst[i] = std::strtod(f[i].c_str(), &end);
        if (end == f[i].c_str() || *end)
            return false;
    }
    p->ok = ok != 0;
    is.get();
    std::getline(is, p->error);
    return true;
}

} // anonymous namespace

ResilientClusterEvaluator::ResilientClusterEvaluator(
    const ClusterEvaluator &ce, ResilienceSpec spec)
    : ce_(ce), spec_(spec), fm_(spec.ras)
{
    spec_.validate();
}

double
ResilientClusterEvaluator::checkpointDrainBps() const
{
    // Checkpoints ride the fabric to the I/O nodes: with every node
    // draining at once the sustainable per-node rate is the all-to-all
    // deliverable bandwidth (injection- or bisection-limited,
    // whichever binds). deliveredGbs is GB/s; the checkpoint model
    // wants bytes/s.
    if (spec_.checkpointViaFabric)
        return ce_.network().deliveredGbs(CommPattern::AllToAll) * 1e9;
    return spec_.checkpoint.ioBandwidthBps;
}

ResilientResult
ResilientClusterEvaluator::evaluate(const NodeConfig &cfg, App app,
                                    const CommSpec &comm) const
{
    ENA_SPAN("resilient", "evaluate");
    ResilientResult r;
    r.cluster = ce_.evaluate(cfg, app, comm);
    r.systemMw = r.cluster.systemMw;

    const int nodes = ce_.clusterConfig().nodes;
    r.nodeFit = fm_.protectedNodeFit(cfg).total();
    r.systemMttfHours = fm_.systemMttfHours(cfg, nodes);
    const double silent_fit = fm_.silentFit(cfg) * nodes;
    r.interruptionMttfHours =
        silent_fit > 0.0 ? 1e9 / silent_fit
                         : std::numeric_limits<double>::infinity();

    if (spec_.faultsEnabled) {
        CheckpointParams params = spec_.checkpoint;
        params.ioBandwidthBps = checkpointDrainBps();
        r.drainBps = params.ioBandwidthBps;
        CheckpointModel ckpt(params);
        r.plan = ckpt.plan(r.systemMttfHours);
        r.ckptEfficiency = r.plan.efficiency;
    }

    r.rmt = rmt_.evaluate(r.cluster.node.perf.activity, spec_.rmtPolicy);
    r.rmtSlowdown = r.rmt.slowdown;

    // Multiplicative composition. With faults disabled and RMT off this
    // is x * 1.0 / 1.0 == x: the bit-identical ClusterEvaluator
    // reduction that bench_ras_scaleout gates.
    r.effectiveExaflops =
        r.cluster.systemExaflops * r.ckptEfficiency / r.rmtSlowdown;

    resilientEvalsCounter().add();
    return r;
}

const std::vector<ProtectionVariant> &
standardProtectionVariants()
{
    static const std::vector<ProtectionVariant> all = [] {
        std::vector<ProtectionVariant> v;
        ResilienceSpec none;
        none.ras = {false, false, false, 2.0};
        none.rmtPolicy = RmtPolicy::Off;
        v.push_back({"no protection", none});

        ResilienceSpec ecc;
        ecc.ras = {true, true, false, 2.0};
        ecc.rmtPolicy = RmtPolicy::Off;
        v.push_back({"ECC only", ecc});

        v.push_back({"ECC + GPU RMT", ResilienceSpec::paper()});
        return v;
    }();
    return all;
}

ResilientScaleOutStudy::ResilientScaleOutStudy(const NodeEvaluator &eval,
                                               ClusterConfig base)
    : eval_(eval), base_(base)
{
    base_.validate();
}

std::vector<ResilientSweepPoint>
ResilientScaleOutStudy::sweep(
    const NodeConfig &cfg, App app, const CommSpec &comm,
    const std::vector<ProtectionVariant> &variants,
    const std::vector<ClusterTopology> &topologies,
    const std::vector<int> &node_counts) const
{
    auto journal = SweepJournal::openFromEnvironment();
    return sweep(cfg, app, comm, variants, topologies, node_counts,
                 journal.get());
}

std::vector<ResilientSweepPoint>
ResilientScaleOutStudy::sweep(
    const NodeConfig &cfg, App app, const CommSpec &comm,
    const std::vector<ProtectionVariant> &variants,
    const std::vector<ClusterTopology> &topologies,
    const std::vector<int> &node_counts, SweepJournal *journal) const
{
    ENA_SPAN("resilient", "protection_sweep");
    const std::size_t nt = topologies.size();
    const std::size_t nn = node_counts.size();
    return ThreadPool::global().parallelMap(
        variants.size() * nt * nn, [&](std::size_t i) {
            telemetry::ScopedSpan span("resilient", "evaluate_cell");
            const std::size_t vi = i / (nt * nn);
            ClusterConfig cc = base_;
            cc.topology = topologies[(i / nn) % nt];
            cc.nodes = node_counts[i % nn];
            // Explicit torus dims only fit the base node count.
            cc.torusX = cc.torusY = cc.torusZ = 0;
            ResilientSweepPoint p;
            p.variant = vi;
            p.topology = cc.topology;
            p.nodes = cc.nodes;

            std::string key, payload;
            if (journal) {
                key = strformat("ras[%zu]:v%zu:%s:n%d:%s", i, vi,
                                clusterTopologyName(cc.topology).c_str(),
                                cc.nodes, cfg.label().c_str());
                if (journal->lookup(key, &payload)) {
                    ResilientSweepPoint j = p;
                    if (decodeResilientPoint(payload, &j))
                        return j;
                    warn("sweep journal: undecodable payload for '",
                         key, "'; recomputing");
                }
            }

            Status valid = cc.tryValidate();
            if (valid.ok())
                valid = cfg.tryValidate();
            if (valid.ok())
                valid = variants[vi].spec.tryValidate();
            if (!valid.ok()) {
                p.ok = false;
                p.error = valid.toString();
                failedCounter().add();
                warn("protection sweep: quarantined cell ", i, ": ",
                     p.error);
            } else {
                try {
                    ClusterEvaluator ce(eval_, cc);
                    ResilientClusterEvaluator rce(ce, variants[vi].spec);
                    ResilientResult r = rce.evaluate(cfg, app, comm);
                    p.systemMttfHours = r.systemMttfHours;
                    p.interruptionMttfHours = r.interruptionMttfHours;
                    p.commEfficiency = r.cluster.commEfficiency;
                    p.ckptEfficiency = r.ckptEfficiency;
                    p.rmtSlowdown = r.rmtSlowdown;
                    p.systemExaflops = r.cluster.systemExaflops;
                    p.effectiveExaflops = r.effectiveExaflops;
                    p.systemMw = r.systemMw;
                } catch (const std::exception &e) {
                    p = ResilientSweepPoint{};
                    p.variant = vi;
                    p.topology = cc.topology;
                    p.nodes = cc.nodes;
                    p.ok = false;
                    p.error = e.what();
                    failedCounter().add();
                    warn("protection sweep: quarantined cell ", i, ": ",
                         p.error);
                }
            }

            if (journal)
                journal->append(key, encodeResilientPoint(p));
            return p;
        });
}

ResilientScaleOutStudy::SearchResult
ResilientScaleOutStudy::bestUnderAvailability(
    const std::vector<NodeConfig> &configs,
    const std::vector<ProtectionVariant> &variants,
    const std::vector<int> &node_counts, App app, const CommSpec &comm,
    const SearchConstraints &limits) const
{
    ENA_SPAN("resilient", "availability_search");
    const std::size_t nv = variants.size();
    const std::size_t nn = node_counts.size();
    const std::size_t total = configs.size() * nv * nn;

    struct Candidate
    {
        bool feasible = false;
        double maxBudgetPowerW = 0.0;
        ResilientResult result;
    };

    std::vector<Candidate> cells = ThreadPool::global().parallelMap(
        total, [&](std::size_t i) {
            telemetry::ScopedSpan span("resilient", "search_candidate");
            const NodeConfig &cfg = configs[i / (nv * nn)];
            const ResilienceSpec &spec = variants[(i / nn) % nv].spec;
            ClusterConfig cc = base_;
            cc.nodes = node_counts[i % nn];
            cc.torusX = cc.torusY = cc.torusZ = 0;
            ClusterEvaluator ce(eval_, cc);
            ResilientClusterEvaluator rce(ce, spec);
            Candidate c;
            c.maxBudgetPowerW = eval_.maxBudgetPower(cfg);
            c.result = rce.evaluate(cfg, app, comm);
            c.feasible =
                c.maxBudgetPowerW <= limits.nodePowerBudgetW &&
                c.result.interruptionMttfHours >=
                    limits.minInterruptionMttfHours;
            return c;
        });

    // Serial arg-max in index order with strict >: deterministic, ties
    // break toward the earliest candidate.
    SearchResult best;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Candidate &c = cells[i];
        if (!c.feasible)
            continue;
        if (!best.feasible ||
            c.result.effectiveExaflops > best.result.effectiveExaflops) {
            best.feasible = true;
            best.config = configs[i / (nv * nn)];
            best.variant = (i / nn) % nv;
            best.nodes = node_counts[i % nn];
            best.maxBudgetPowerW = c.maxBudgetPowerW;
            best.result = c.result;
        }
    }
    return best;
}

} // namespace ena

/**
 * @file
 * System-level evaluation of a scale-out ENA machine: composes
 * NodeEvaluator node perf/power with inter-node communication cost
 * into system exaflops and megawatts.
 *
 * The node-only projection is delegated to core's ExascaleProjector
 * (Fig. 14) and the communication layer multiplies onto it, so a
 * zero-communication spec (CommSpec::none()) reproduces the Fig. 14
 * numbers bit-identically: the efficiency factor is exactly 1.0 and
 * the network power term exactly 0.0 (gated by bench_cluster_scaleout).
 */

#ifndef ENA_CLUSTER_CLUSTER_EVALUATOR_HH
#define ENA_CLUSTER_CLUSTER_EVALUATOR_HH

#include "cluster/cluster_config.hh"
#include "cluster/comm_pattern.hh"
#include "cluster/internode_network.hh"
#include "core/node_evaluator.hh"
#include "core/studies.hh"

namespace ena {

/** One (node config, app, comm spec) system evaluation. */
struct ClusterResult
{
    App app = App::MaxFlops;
    CommSpec spec;

    EvalResult node;             ///< single-node perf and power

    CommCost comm;
    double commEfficiency = 1.0; ///< compute fraction of wall time

    double analyticExaflops = 0.0; ///< ExascaleProjector, zero comm
    double systemExaflops = 0.0;   ///< comm-aware
    double analyticMw = 0.0;       ///< package scope, zero comm
    double networkMw = 0.0;        ///< inter-node fabric power
    double systemMw = 0.0;         ///< analyticMw + networkMw
};

class ClusterEvaluator
{
  public:
    ClusterEvaluator(const NodeEvaluator &eval, ClusterConfig cluster);

    /**
     * Route node evaluations through a caller-owned memo cache (see
     * core/eval_memo.hh): sweeps that evaluate the same (config, app)
     * across many cluster shapes compute it once. Results stay
     * bit-identical. The cache must outlive this evaluator; null
     * restores unmemoized evaluation.
     */
    void setMemoCache(EvalMemoCache *memo) { memo_ = memo; }

    /** Evaluate one app on one node config across the whole machine. */
    ClusterResult evaluate(const NodeConfig &cfg, App app,
                           const CommSpec &spec) const;

    /**
     * Geometric-mean comm-aware system exaflops over every Table I
     * application; the per-app evaluations fan out over the process
     * pool and reduce deterministically (parallel_reduce).
     */
    double geomeanSystemExaflops(const NodeConfig &cfg,
                                 const CommSpec &spec) const;

    /** Arithmetic-mean communication efficiency over all apps. */
    double meanCommEfficiency(const NodeConfig &cfg,
                              const CommSpec &spec) const;

    const ClusterConfig &clusterConfig() const { return cluster_; }
    const InterNodeNetwork &network() const { return net_; }
    const ExascaleProjector &projector() const { return proj_; }
    const NodeEvaluator &nodeEvaluator() const { return eval_; }

  private:
    const NodeEvaluator &eval_;
    ClusterConfig cluster_;
    InterNodeNetwork net_;
    ExascaleProjector proj_;
    EvalMemoCache *memo_ = nullptr;   ///< optional, caller-owned
};

} // namespace ena

#endif // ENA_CLUSTER_CLUSTER_EVALUATOR_HH

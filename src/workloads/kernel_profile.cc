#include "workloads/kernel_profile.hh"

#include <array>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ena {

namespace {

/**
 * Calibrated kernel parameters. Anchors from the paper:
 *  - MaxFlops reaches 18.6 DP teraflops at 320 CUs / 1 GHz (91% of the
 *    20.5 TF peak with 64 DP flops per CU-clock), is insensitive to
 *    memory bandwidth, and issues almost no memory traffic.
 *  - CoMD is "balanced": performance plateaus past a knee; per Table II
 *    its standalone optimum trades CUs for frequency (192 CUs @ 1.5 GHz),
 *    i.e. sub-linear CU scaling but strong frequency scaling.
 *  - SNAP's optimum is the opposite corner (384 CUs @ 700 MHz): linear CU
 *    scaling, weak frequency scaling.
 *  - LULESH/MiniAMR/XSBench degrade past their knees (cache thrash /
 *    memory contention); LULESH is the most latency-sensitive (irregular
 *    accesses) and the most compressible (Fig. 12 discussion).
 *  - Off-package traffic fractions span 46%..89% (Section V-B).
 */
const std::array<KernelProfile, 8> profiles = {{
    {
        App::MaxFlops, AppCategory::ComputeIntensive,
        "Measures maximum FP throughput",
        /*ai=*/4000.0, /*eff=*/0.91, /*sigma=*/1.0, /*phi=*/1.0,
        /*knee=*/10.0, /*alpha=*/0.0, /*latSens=*/0.02, /*mlp=*/4.0, /*satBw=*/100.0,
        /*extFrac=*/0.46, /*footprintGb=*/2.0, /*writeFrac=*/0.05,
        /*compress=*/1.05,
        /*cuIdle=*/0.30,
        /*spatial=*/0.98, /*computePerMemByte=*/60.0, /*shared=*/0.05,
    },
    {
        App::CoMD, AppCategory::Balanced,
        "Molecular-dynamics algorithms (Embedded Atom)",
        /*ai=*/5.8, /*eff=*/0.74, /*sigma=*/0.82, /*phi=*/1.05,
        /*knee=*/0.055, /*alpha=*/60.0, /*latSens=*/0.25, /*mlp=*/40.0, /*satBw=*/8.0,
        /*extFrac=*/0.52, /*footprintGb=*/220.0, /*writeFrac=*/0.25,
        /*compress=*/1.25,
        /*cuIdle=*/0.28,
        /*spatial=*/0.80, /*computePerMemByte=*/1.4, /*shared=*/0.20,
    },
    {
        App::CoMDLJ, AppCategory::Balanced,
        "Molecular-dynamics algorithms (Lennard-Jones)",
        /*ai=*/6.6, /*eff=*/0.79, /*sigma=*/0.86, /*phi=*/1.0,
        /*knee=*/0.060, /*alpha=*/50.0, /*latSens=*/0.22, /*mlp=*/36.0, /*satBw=*/8.0,
        /*extFrac=*/0.50, /*footprintGb=*/220.0, /*writeFrac=*/0.25,
        /*compress=*/1.20,
        /*cuIdle=*/0.28,
        /*spatial=*/0.82, /*computePerMemByte=*/1.6, /*shared=*/0.20,
    },
    {
        App::HPGMG, AppCategory::Balanced,
        "Ranks HPC systems (geometric multigrid)",
        /*ai=*/3.6, /*eff=*/0.56, /*sigma=*/0.97, /*phi=*/0.85,
        /*knee=*/0.050, /*alpha=*/30.0, /*latSens=*/0.35, /*mlp=*/32.0, /*satBw=*/6.5,
        /*extFrac=*/0.66, /*footprintGb=*/500.0, /*writeFrac=*/0.33,
        /*compress=*/1.40,
        /*cuIdle=*/0.30,
        /*spatial=*/0.90, /*computePerMemByte=*/0.9, /*shared=*/0.30,
    },
    {
        App::LULESH, AppCategory::MemoryIntensive,
        "Hydrodynamic simulation",
        /*ai=*/1.15, /*eff=*/0.50, /*sigma=*/0.93, /*phi=*/0.95,
        /*knee=*/0.062, /*alpha=*/70.0, /*latSens=*/0.75, /*mlp=*/29.0, /*satBw=*/3.6,
        /*extFrac=*/0.75, /*footprintGb=*/640.0, /*writeFrac=*/0.35,
        /*compress=*/1.60,
        /*cuIdle=*/0.28,
        /*spatial=*/0.55, /*computePerMemByte=*/0.3, /*shared=*/0.25,
    },
    {
        App::MiniAMR, AppCategory::MemoryIntensive,
        "3D stencil computation with adaptive mesh refinement",
        /*ai=*/0.95, /*eff=*/0.46, /*sigma=*/0.96, /*phi=*/1.0,
        /*knee=*/0.058, /*alpha=*/64.0, /*latSens=*/0.45, /*mlp=*/17.0, /*satBw=*/3.6,
        /*extFrac=*/0.80, /*footprintGb=*/700.0, /*writeFrac=*/0.40,
        /*compress=*/1.50,
        /*cuIdle=*/0.28,
        /*spatial=*/0.85, /*computePerMemByte=*/0.25, /*shared=*/0.30,
    },
    {
        App::XSBench, AppCategory::MemoryIntensive,
        "Monte Carlo particle transport simulation",
        /*ai=*/0.72, /*eff=*/0.42, /*sigma=*/0.95, /*phi=*/1.05,
        /*knee=*/0.057, /*alpha=*/76.0, /*latSens=*/0.60, /*mlp=*/18.0, /*satBw=*/3.6,
        /*extFrac=*/0.89, /*footprintGb=*/800.0, /*writeFrac=*/0.05,
        /*compress=*/1.10,
        /*cuIdle=*/0.26,
        /*spatial=*/0.15, /*computePerMemByte=*/0.2, /*shared=*/0.40,
    },
    {
        App::SNAP, AppCategory::MemoryIntensive,
        "Discrete ordinates neutral particle transport application",
        /*ai=*/1.5, /*eff=*/0.52, /*sigma=*/1.0, /*phi=*/0.62,
        /*knee=*/0.054, /*alpha=*/41.0, /*latSens=*/0.40, /*mlp=*/16.0, /*satBw=*/3.6,
        /*extFrac=*/0.70, /*footprintGb=*/560.0, /*writeFrac=*/0.35,
        /*compress=*/1.30,
        /*cuIdle=*/0.30,
        /*spatial=*/0.92, /*computePerMemByte=*/0.4, /*shared=*/0.15,
    },
}};

} // anonymous namespace

const std::vector<App> &
allApps()
{
    static const std::vector<App> apps = {
        App::MaxFlops, App::CoMD,    App::CoMDLJ,  App::HPGMG,
        App::LULESH,   App::MiniAMR, App::XSBench, App::SNAP,
    };
    return apps;
}

std::string
appName(App app)
{
    switch (app) {
      case App::MaxFlops: return "MaxFlops";
      case App::CoMD: return "CoMD";
      case App::CoMDLJ: return "CoMD-LJ";
      case App::HPGMG: return "HPGMG";
      case App::LULESH: return "LULESH";
      case App::MiniAMR: return "MiniAMR";
      case App::XSBench: return "XSBench";
      case App::SNAP: return "SNAP";
    }
    ENA_PANIC("unknown App enum value");
}

Expected<App>
tryAppFromName(const std::string &name)
{
    std::string n = toLower(name);
    for (App a : allApps()) {
        if (toLower(appName(a)) == n)
            return a;
    }
    // Accept the underscore spelling of CoMD-LJ as well.
    if (n == "comd_lj" || n == "comdlj")
        return App::CoMDLJ;
    return Status::invalidArgument("unknown application '", name, "'");
}

App
appFromName(const std::string &name)
{
    return unwrapOrFatal(tryAppFromName(name));
}

std::string
categoryName(AppCategory c)
{
    switch (c) {
      case AppCategory::ComputeIntensive: return "Compute Intensive";
      case AppCategory::Balanced: return "Balanced";
      case AppCategory::MemoryIntensive: return "Memory Intensive";
    }
    ENA_PANIC("unknown AppCategory enum value");
}

const KernelProfile &
profileFor(App app)
{
    for (const KernelProfile &p : profiles) {
        if (p.app == app)
            return p;
    }
    ENA_PANIC("no profile for app ", static_cast<int>(app));
}

std::vector<KernelProfile>
allProfiles()
{
    return std::vector<KernelProfile>(profiles.begin(), profiles.end());
}

} // namespace ena

/**
 * @file
 * Synthetic per-wavefront instruction/address trace generation.
 *
 * The paper drives its cycle-level (gem5 APU) simulations with the proxy
 * applications themselves; we do not have those binaries or an ISA, so
 * each application is represented by a statistically equivalent stream:
 * compute bursts interleaved with memory accesses whose spatial locality,
 * read/write mix, working-set size, and sharing degree come from the
 * application's KernelProfile. This preserves the properties Fig. 7
 * depends on: traffic volume, locality (cache hit rates), cross-chiplet
 * sharing, and memory-level parallelism.
 */

#ifndef ENA_WORKLOADS_TRACE_GEN_HH
#define ENA_WORKLOADS_TRACE_GEN_HH

#include <cstdint>

#include "util/rng.hh"
#include "workloads/kernel_profile.hh"

namespace ena {

/** One abstract wavefront instruction. */
struct TraceOp
{
    enum class Kind : std::uint8_t { Compute, Load, Store };

    Kind kind = Kind::Compute;
    /** Busy cycles for Compute ops. */
    std::uint32_t computeCycles = 0;
    /** Byte address for memory ops (already coalesced per wavefront). */
    std::uint64_t addr = 0;
    /** Access size in bytes for memory ops. */
    std::uint32_t size = 0;
};

/** Address ranges one wavefront's accesses are drawn from. */
struct StreamLayout
{
    std::uint64_t privateBase = 0;  ///< this wavefront's streaming region
    std::uint64_t privateSize = 0;
    std::uint64_t sharedBase = 0;   ///< region shared across all chiplets
    std::uint64_t sharedSize = 0;
};

/**
 * Stateful generator for one wavefront's dynamic instruction stream.
 * Deterministic for a given (profile, layout, seed).
 */
class TraceGenerator
{
  public:
    static constexpr std::uint32_t accessBytes = 64;

    TraceGenerator(const KernelProfile &profile, const StreamLayout &layout,
                   std::uint64_t seed);

    /** Produce the next operation. */
    TraceOp next();

    /** Memory operations emitted so far. */
    std::uint64_t memOps() const { return memOps_; }

  private:
    std::uint64_t pickAddress();

    const KernelProfile &profile_;
    StreamLayout layout_;
    Rng rng_;

    std::uint64_t cursorPrivate_;
    std::uint64_t cursorShared_;
    /** Compute cycles owed before the next memory access. */
    double computeDebt_ = 0.0;
    std::uint64_t memOps_ = 0;
};

} // namespace ena

#endif // ENA_WORKLOADS_TRACE_GEN_HH

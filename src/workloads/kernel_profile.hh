/**
 * @file
 * Application kernel profiles (paper Table I).
 *
 * The paper's methodology measures each proxy application on real
 * hardware and fits analytic/ML scaling models [38],[42],[43]; we replace
 * the measurements with per-kernel profiles whose parameters encode the
 * same observed behaviours: arithmetic intensity, achievable compute
 * efficiency, CU-count and frequency scaling exponents (the "taxonomy of
 * GPGPU performance scaling"), memory-contention onset, latency
 * sensitivity, off-package traffic fraction, and data compressibility.
 */

#ifndef ENA_WORKLOADS_KERNEL_PROFILE_HH
#define ENA_WORKLOADS_KERNEL_PROFILE_HH

#include <string>
#include <vector>

#include "util/status.hh"

namespace ena {

/** The proxy applications studied by the paper (Table I). */
enum class App
{
    MaxFlops,
    CoMD,
    CoMDLJ,
    HPGMG,
    LULESH,
    MiniAMR,
    XSBench,
    SNAP,
};

/** Paper Section IV kernel categories. */
enum class AppCategory
{
    ComputeIntensive,
    Balanced,
    MemoryIntensive,
};

/** All eight applications, in the paper's Table I order. */
const std::vector<App> &allApps();

/** Short display name ("CoMD-LJ"). */
std::string appName(App app);

/** Parse an application name (case-insensitive). */
Expected<App> tryAppFromName(const std::string &name);

/** Parse an application name (case-insensitive); fatal() on unknown. */
App appFromName(const std::string &name);

std::string categoryName(AppCategory c);

/**
 * Analytic model parameters for one application's dominant kernel.
 *
 * Perf-model semantics (see core::PerfModel):
 *   compute rate C = peakFlops(n_cu, f) * computeEfficiency
 *                    * (n_cu/320)^(cuScalingExp-1) * (f/1.0)^(freqScalingExp-1)
 *   memory rate  M = bw_eff * arithmeticIntensity
 *   bw_eff = bw / (1 + contentionAlpha * max(0, opb - contentionKnee)^2)
 */
struct KernelProfile
{
    App app;
    AppCategory category;
    std::string description;      ///< Table I description.

    // --- performance scaling ---
    double arithmeticIntensity;   ///< flops per byte of DRAM traffic.
    double computeEfficiency;     ///< fraction of peak flops achievable.
    double cuScalingExp;          ///< perf ~ n_cu^sigma (compute term).
    double freqScalingExp;        ///< perf ~ f^phi (compute term).
    double contentionKnee;        ///< opb where thrashing begins.
    double contentionAlpha;       ///< thrashing severity (0 = none).
    double latencySensitivity;    ///< 0..1, unhidden-stall fraction.
    double memLevelParallelism;   ///< avg outstanding misses per CU.
    double maxBandwidthTbs;       ///< sustained-traffic saturation: the
                                  ///< kernel's access irregularity and
                                  ///< divergence limit how much DRAM
                                  ///< bandwidth it can consume (paper
                                  ///< Figs. 4-6: bandwidth curves
                                  ///< cluster once provisioning exceeds
                                  ///< this).

    // --- memory behaviour ---
    double extTrafficFraction;    ///< fraction of traffic going off-package
                                  ///< under default two-level management
                                  ///< (paper: 46%..89%).
    double footprintGb;           ///< problem working set.
    double writeFraction;         ///< stores / (loads + stores).
    double compressRatio;         ///< DRAM-link compressibility (>= 1).

    // --- power behaviour ---
    double cuIdleActivity;        ///< dynamic activity when stalled.

    // --- synthetic trace shape (cycle-level simulator) ---
    double spatialLocality;       ///< P(next access is sequential).
    double computePerMemByte;     ///< compute cycles per traffic byte.
    double sharedFraction;        ///< fraction of accesses to data shared
                                  ///< across chiplets (coherence traffic).
};

/** Profile for one application; parameters calibrated to the paper. */
const KernelProfile &profileFor(App app);

/** All profiles in Table I order. */
std::vector<KernelProfile> allProfiles();

} // namespace ena

#endif // ENA_WORKLOADS_KERNEL_PROFILE_HH

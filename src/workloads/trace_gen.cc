#include "workloads/trace_gen.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ena {

TraceGenerator::TraceGenerator(const KernelProfile &profile,
                               const StreamLayout &layout,
                               std::uint64_t seed)
    : profile_(profile), layout_(layout), rng_(seed)
{
    ENA_ASSERT(layout.privateSize >= accessBytes,
               "private region too small");
    cursorPrivate_ =
        layout.privateBase +
        (rng_.below(layout.privateSize / accessBytes)) * accessBytes;
    cursorShared_ =
        layout.sharedSize >= accessBytes
            ? layout.sharedBase +
                  rng_.below(layout.sharedSize / accessBytes) * accessBytes
            : layout.sharedBase;
    // Start each wavefront at a random phase of its compute/memory
    // pattern so concurrent wavefronts do not issue in lockstep (real
    // dispatch naturally decorrelates them).
    computeDebt_ = rng_.uniform() * profile_.computePerMemByte *
                   static_cast<double>(accessBytes);
}

std::uint64_t
TraceGenerator::pickAddress()
{
    bool shared = layout_.sharedSize >= accessBytes &&
                  rng_.chance(profile_.sharedFraction);

    std::uint64_t base = shared ? layout_.sharedBase : layout_.privateBase;
    std::uint64_t size = shared ? layout_.sharedSize : layout_.privateSize;
    std::uint64_t &cursor = shared ? cursorShared_ : cursorPrivate_;

    if (rng_.chance(profile_.spatialLocality)) {
        cursor += accessBytes;
        if (cursor + accessBytes > base + size)
            cursor = base;
    } else {
        cursor = base + rng_.below(size / accessBytes) * accessBytes;
    }
    return cursor;
}

TraceOp
TraceGenerator::next()
{
    // Alternate compute bursts and memory accesses so that the long-run
    // ratio matches computePerMemByte * accessBytes compute cycles per
    // access. Fractional debts accumulate so small ratios still produce
    // occasional compute ops.
    double per_access =
        profile_.computePerMemByte * static_cast<double>(accessBytes);

    if (computeDebt_ >= 1.0) {
        TraceOp op;
        op.kind = TraceOp::Kind::Compute;
        // Emit the debt in bursts of up to 64 cycles so the CU model can
        // interleave wavefronts at a realistic granularity.
        auto cycles = static_cast<std::uint32_t>(
            std::min(computeDebt_, 64.0));
        op.computeCycles = std::max(1u, cycles);
        computeDebt_ -= op.computeCycles;
        return op;
    }

    computeDebt_ += per_access;
    TraceOp op;
    op.kind = rng_.chance(profile_.writeFraction) ? TraceOp::Kind::Store
                                                  : TraceOp::Kind::Load;
    op.addr = pickAddress();
    op.size = accessBytes;
    ++memOps_;
    return op;
}

} // namespace ena

/**
 * @file
 * Base class for simulated hardware components.
 *
 * A SimObject has a hierarchical name ("ehp.gpu3.cu12"), access to its
 * Simulation's event queue and stat registry, and init()/startup() hooks
 * called before the first event fires.
 */

#ifndef ENA_SIM_SIM_OBJECT_HH
#define ENA_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/event.hh"
#include "sim/stats.hh"
#include "util/units.hh"

namespace ena {

class Simulation;

class SimObject
{
  public:
    SimObject(Simulation &sim, std::string name);
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Hierarchical instance name. */
    const std::string &name() const { return name_; }

    /** Wire-up pass: runs after all objects are constructed. */
    virtual void init() {}

    /** Kick-off pass: schedule initial events. */
    virtual void startup() {}

    /** The owning simulation. */
    Simulation &sim() const { return sim_; }

    /**
     * Event-queue domain this object belongs to (captured from the
     * simulation's build domain at construction; 0 in the plain serial
     * kernel). The object's events run only on this domain's queue.
     */
    int domain() const { return domain_; }

    /** Convenience accessors; eventq()/curTick() are this object's
     *  domain queue and its clock. */
    EventQueue &eventq() const;
    StatRegistry &stats() const;
    Tick curTick() const;

    /** Schedule relative to the current tick. */
    void schedule(Event &ev, Tick delay);

  private:
    Simulation &sim_;
    std::string name_;
    int domain_;
};

} // namespace ena

#endif // ENA_SIM_SIM_OBJECT_HH

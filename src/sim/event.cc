#include "sim/event.hh"

#include "util/logging.hh"

namespace ena {

Event::~Event() = default;

EventQueue::~EventQueue()
{
    // Free every self-deleting lambda wrapper the queue still owns —
    // live, descheduled, or rescheduled. The ownership set, not the
    // heap, is walked: heap entries can reference caller-owned events
    // whose owners were already destroyed, and a rescheduled wrapper
    // appears under several entries, so inspecting entries would read
    // dead objects and double-free.
    for (Event *ev : managed_)
        delete ev;
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    ENA_ASSERT(ev, "scheduling null event");
    ENA_ASSERT(!ev->scheduled_, "event '", ev->description(),
               "' already scheduled");
    ENA_ASSERT(when >= curTick_, "scheduling event '", ev->description(),
               "' in the past (", when, " < ", curTick_, ")");
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->scheduled_ = true;
    ++ev->heapRefs_;
    heap_.push(Entry{when, ev->seq_, ev});
    ++liveCount_;
}

void
EventQueue::deschedule(Event *ev)
{
    ENA_ASSERT(ev && ev->scheduled_, "descheduling unscheduled event");
    ev->scheduled_ = false;
    --liveCount_;
    // The heap entry is left in place and skipped lazily when popped.
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    schedule(ev, when);
}

EventFunctionWrapper *
EventQueue::scheduleLambda(Tick when, std::function<void()> fn,
                           std::string desc)
{
    auto *ev = new EventFunctionWrapper(std::move(fn), std::move(desc));
    ev->selfDeleting_ = true;
    managed_.insert(ev);
    schedule(ev, when);
    return ev;
}

void
EventQueue::skim() const
{
    while (!heap_.empty()) {
        const Entry &e = heap_.top();
        Event *ev = e.event;
        if (ev->scheduled_ && ev->seq_ == e.seq)
            return;
        // Stale entry (descheduled or rescheduled). A self-deleting
        // wrapper is freed only once its last heap reference is gone,
        // so every pointer reached here is still alive.
        heap_.pop();
        if (--ev->heapRefs_ == 0 && ev->selfDeleting_ &&
            !ev->scheduled_) {
            managed_.erase(ev);
            delete ev;
        }
    }
}

Tick
EventQueue::nextTick() const
{
    skim();
    if (heap_.empty())
        ENA_FATAL("nextTick() on empty event queue");
    return heap_.top().when;
}

Tick
EventQueue::nextTickOr(Tick fallback) const
{
    skim();
    return heap_.empty() ? fallback : heap_.top().when;
}

bool
EventQueue::serviceOne()
{
    skim();
    if (heap_.empty())
        return false;

    Entry e = heap_.top();
    heap_.pop();
    ENA_ASSERT(e.when >= curTick_, "event queue went backwards");
    curTick_ = e.when;

    Event *ev = e.event;
    --ev->heapRefs_;
    ev->scheduled_ = false;
    --liveCount_;
    ++processed_;
    ev->process();
    // Deferred while stale reschedule entries still reference the
    // wrapper; the last one to pop (in skim) frees it instead.
    if (ev->selfDeleting_ && !ev->scheduled_ && ev->heapRefs_ == 0) {
        managed_.erase(ev);
        delete ev;
    }
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t n = 0;
    while (true) {
        skim();
        if (heap_.empty() || heap_.top().when > limit)
            break;
        serviceOne();
        ++n;
    }
    // A bounded run simulates the whole window [entry tick, limit]:
    // even when the queue drains early or the next event lies past the
    // limit, time advances to the window boundary so that repeated
    // run(limit) segments (the PDES barrier pattern) observe monotone,
    // non-stale time. An unbounded run keeps the last event's tick.
    if (limit != maxTick && curTick_ < limit)
        curTick_ = limit;
    return n;
}

void
EventQueue::advanceTo(Tick when)
{
    if (when > curTick_)
        curTick_ = when;
}

} // namespace ena

#include "sim/event.hh"

#include "util/logging.hh"

namespace ena {

Event::~Event() = default;

EventQueue::~EventQueue()
{
    // Free any still-pending self-deleting lambda wrappers.
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        bool live = e.event->scheduled_ && e.event->seq_ == e.seq;
        if (live && e.event->selfDeleting_)
            delete e.event;
    }
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    ENA_ASSERT(ev, "scheduling null event");
    ENA_ASSERT(!ev->scheduled_, "event '", ev->description(),
               "' already scheduled");
    ENA_ASSERT(when >= curTick_, "scheduling event '", ev->description(),
               "' in the past (", when, " < ", curTick_, ")");
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->scheduled_ = true;
    heap_.push(Entry{when, ev->seq_, ev});
    ++liveCount_;
}

void
EventQueue::deschedule(Event *ev)
{
    ENA_ASSERT(ev && ev->scheduled_, "descheduling unscheduled event");
    ev->scheduled_ = false;
    --liveCount_;
    // The heap entry is left in place and skipped lazily when popped.
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::scheduleLambda(Tick when, std::function<void()> fn,
                           std::string desc)
{
    auto *ev = new EventFunctionWrapper(std::move(fn), std::move(desc));
    ev->selfDeleting_ = true;
    schedule(ev, when);
}

void
EventQueue::skim() const
{
    while (!heap_.empty()) {
        const Entry &e = heap_.top();
        bool live = e.event->scheduled_ && e.event->seq_ == e.seq;
        if (live)
            return;
        if (e.event->selfDeleting_ && !e.event->scheduled_)
            delete e.event;
        heap_.pop();
    }
}

Tick
EventQueue::nextTick() const
{
    skim();
    if (heap_.empty())
        ENA_FATAL("nextTick() on empty event queue");
    return heap_.top().when;
}

bool
EventQueue::serviceOne()
{
    skim();
    if (heap_.empty())
        return false;

    Entry e = heap_.top();
    heap_.pop();
    ENA_ASSERT(e.when >= curTick_, "event queue went backwards");
    curTick_ = e.when;

    Event *ev = e.event;
    ev->scheduled_ = false;
    --liveCount_;
    ++processed_;
    ev->process();
    if (ev->selfDeleting_ && !ev->scheduled_)
        delete ev;
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t n = 0;
    while (true) {
        skim();
        if (heap_.empty() || heap_.top().when > limit)
            break;
        serviceOne();
        ++n;
    }
    return n;
}

} // namespace ena

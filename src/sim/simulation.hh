/**
 * @file
 * Top-level owner of one event-driven simulation: the event queues, the
 * stat registry, and every SimObject created through it.
 *
 * A simulation normally runs on a single event queue (domain 0) — the
 * serial kernel, unchanged, which stays the oracle for every result in
 * this repo. For multi-chiplet models it can instead be partitioned
 * into several *domains* (setDomains), each with its own EventQueue and
 * its own SimObjects. Domains execute conservative-window PDES: every
 * window of `lookahead()` ticks runs concurrently on the process-wide
 * ThreadPool (one task per domain), and cross-domain interactions —
 * posted with postCrossDomain() and required to land at least one
 * lookahead in the future — are exchanged at deterministic window
 * barriers in a canonical (tick, dst, src, seq) order. Results are
 * therefore a pure function of the domain decomposition: bit-identical
 * at any thread count, with serial window execution
 * (setSerialWindows(true), or ENA_THREADS=1) as the reference.
 *
 * Invariants the windowed mode relies on:
 *  - an object's events run only on its own domain's queue, and its
 *    mutable state (including its stats) is touched only from there;
 *  - every cross-domain effect goes through postCrossDomain() with an
 *    arrival tick >= the current window's end (asserted);
 *  - the stat registry's map is not mutated while windows run (objects
 *    and stats are created at build time).
 */

#ifndef ENA_SIM_SIMULATION_HH
#define ENA_SIM_SIMULATION_HH

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/event.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace ena {

class Simulation
{
  public:
    Simulation() = default;

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /**
     * Construct a SimObject owned by this simulation, assigned to the
     * current build domain (see DomainScope). The first constructor
     * argument (Simulation &) is supplied automatically. Returns a
     * non-owning pointer valid for the simulation's lifetime.
     */
    template <typename T, typename... Args>
    T *
    create(Args &&...args)
    {
        auto obj = std::make_unique<T>(*this, std::forward<Args>(args)...);
        T *raw = obj.get();
        objects_.push_back(std::move(obj));
        return raw;
    }

    /**
     * Partition the simulation into @p n event-queue domains. Must be
     * called before any object is created; n == 1 (the default) is the
     * plain serial kernel. Multi-domain simulations must also call
     * setLookahead() before run().
     */
    void setDomains(int n);
    int numDomains() const { return static_cast<int>(queues_.size()); }

    /**
     * Conservative lookahead: the minimum latency of any cross-domain
     * channel, which bounds the window size. Every postCrossDomain()
     * arrival must be >= the end of the window it was posted in.
     */
    void setLookahead(Tick ticks);
    Tick lookahead() const { return lookahead_; }

    /**
     * Run each window's domains serially on the caller instead of on
     * the ThreadPool. Results are bit-identical either way (the repo's
     * determinism bar); this is the explicit serial oracle the PDES
     * gates compare against.
     */
    void setSerialWindows(bool serial) { serialWindows_ = serial; }
    bool serialWindows() const { return serialWindows_; }

    /** Scoped build-domain selector: objects created while the scope
     *  is alive belong to @p domain. */
    class DomainScope
    {
      public:
        DomainScope(Simulation &sim, int domain);
        ~DomainScope();

        DomainScope(const DomainScope &) = delete;
        DomainScope &operator=(const DomainScope &) = delete;

      private:
        Simulation &sim_;
        int prev_;
    };

    /** Domain new objects are assigned to (0 outside any scope). */
    int buildDomain() const { return buildDomain_; }

    /** The domain whose window is executing on the calling thread;
     *  0 when no window is in flight (build time, between runs). */
    int executingDomain() const;

    /** Current tick of the executing domain's queue — the only correct
     *  clock for code that may run inside any domain's window. */
    Tick now() const { return eventq(executingDomain()).curTick(); }

    /** True when an interaction from the executing domain to
     *  @p dst_domain must cross a domain boundary. */
    bool
    crossesDomain(int dst_domain) const
    {
        return numDomains() > 1 && executingDomain() != dst_domain;
    }

    /**
     * Deliver fn() on @p dst_domain's queue at absolute tick @p when.
     * Inside a window, the arrival must respect the lookahead
     * (when >= window end, fatal otherwise); the message is buffered in
     * the sender's outbox and merged at the next barrier in canonical
     * (when, dst, src, seq) order. Outside a window (startup, between
     * runs) it schedules directly. With one domain this is exactly
     * eventq().scheduleLambda(when, fn).
     */
    void postCrossDomain(int dst_domain, Tick when,
                         std::function<void()> fn, std::string desc);

    EventQueue &eventq() { return eventq(0); }
    const EventQueue &eventq() const { return eventq(0); }
    EventQueue &
    eventq(int domain)
    {
        return *queues_[static_cast<size_t>(domain)];
    }
    const EventQueue &
    eventq(int domain) const
    {
        return *queues_[static_cast<size_t>(domain)];
    }

    StatRegistry &stats() { return stats_; }
    const StatRegistry &stats() const { return stats_; }

    /** Latest tick any domain has reached (after run() with a finite
     *  limit, every domain sits exactly at the limit). */
    Tick curTick() const;

    /** Run init() then startup() on all objects (once). */
    void initAll();

    /**
     * initAll() if needed, then run to completion or @p limit ticks.
     * Returns number of events processed. With multiple domains this
     * executes conservative windows with barrier message exchange;
     * domain clocks all advance to the limit (or the global last event
     * tick) before returning. Traced as a "sim" span; when metrics are
     * enabled the stat registry is bridged into the telemetry registry
     * afterwards (see publishStats()).
     */
    std::uint64_t run(Tick limit = maxTick);

    /**
     * Mirror every scalar/formula stat into the process-wide telemetry
     * registry as gauge "sim.<name>" (distributions become
     * "sim.<name>.samples"/".mean"). Called automatically at the end
     * of run() when ENA_METRICS is active; last writer wins if several
     * simulations share stat names.
     */
    void publishStats() const;

    size_t numObjects() const { return objects_.size(); }

    /** Events executed on one domain's queue (per-domain merge of the
     *  kernel's throughput accounting; not in the stat registry so
     *  dumps stay comparable across domain counts). */
    std::uint64_t
    eventsProcessedIn(int domain) const
    {
        return eventq(domain).eventsProcessed();
    }

    /** Barriers (message-exchange windows) executed so far. */
    std::uint64_t windowsRun() const { return windowsRun_; }

  private:
    /** One buffered cross-domain message awaiting the next barrier. */
    struct CrossMsg
    {
        Tick when;
        int dst;
        int src;
        std::uint64_t seq;
        std::function<void()> fn;
        std::string desc;
    };

    std::uint64_t runWindows(Tick limit);
    void deliverOutboxes();

    // Destruction runs in reverse declaration order: queues_ die first
    // (their destructors inspect Events still owned by live SimObjects),
    // then objects_ (whose stats deregister from stats_), then stats_.
    StatRegistry stats_;
    std::vector<std::unique_ptr<SimObject>> objects_;
    std::vector<std::unique_ptr<EventQueue>> queues_ = makeQueues(1);
    Tick lookahead_ = 0;
    bool serialWindows_ = false;
    bool initDone_ = false;
    int buildDomain_ = 0;

    /** End of the in-flight window (0 = no window in flight). Written
     *  by the barrier thread only, read by domain workers. */
    Tick windowEnd_ = 0;
    std::uint64_t windowsRun_ = 0;

    /** Per-source-domain outboxes; outboxes_[d] is written only by the
     *  thread running domain d's window. */
    std::vector<std::vector<CrossMsg>> outboxes_;
    std::vector<std::uint64_t> msgSeq_;

    static std::vector<std::unique_ptr<EventQueue>> makeQueues(int n);
};

} // namespace ena

#endif // ENA_SIM_SIMULATION_HH

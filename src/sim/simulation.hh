/**
 * @file
 * Top-level owner of one event-driven simulation: the event queue, the
 * stat registry, and every SimObject created through it.
 */

#ifndef ENA_SIM_SIMULATION_HH
#define ENA_SIM_SIMULATION_HH

#include <memory>
#include <utility>
#include <vector>

#include "sim/event.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace ena {

class Simulation
{
  public:
    Simulation() = default;

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /**
     * Construct a SimObject owned by this simulation. The first
     * constructor argument (Simulation &) is supplied automatically.
     * Returns a non-owning pointer valid for the simulation's lifetime.
     */
    template <typename T, typename... Args>
    T *
    create(Args &&...args)
    {
        auto obj = std::make_unique<T>(*this, std::forward<Args>(args)...);
        T *raw = obj.get();
        objects_.push_back(std::move(obj));
        return raw;
    }

    EventQueue &eventq() { return eventq_; }
    const EventQueue &eventq() const { return eventq_; }
    StatRegistry &stats() { return stats_; }
    const StatRegistry &stats() const { return stats_; }
    Tick curTick() const { return eventq_.curTick(); }

    /** Run init() then startup() on all objects (once). */
    void initAll();

    /**
     * initAll() if needed, then run to completion or @p limit ticks.
     * Returns number of events processed. Traced as a "sim" span; when
     * metrics are enabled the stat registry is bridged into the
     * telemetry registry afterwards (see publishStats()).
     */
    std::uint64_t run(Tick limit = ~Tick(0));

    /**
     * Mirror every scalar/formula stat into the process-wide telemetry
     * registry as gauge "sim.<name>" (distributions become
     * "sim.<name>.samples"/".mean"). Called automatically at the end
     * of run() when ENA_METRICS is active; last writer wins if several
     * simulations share stat names.
     */
    void publishStats() const;

    size_t numObjects() const { return objects_.size(); }

  private:
    // Destruction runs in reverse declaration order: eventq_ dies first
    // (its destructor inspects Events still owned by live SimObjects),
    // then objects_ (whose stats deregister from stats_), then stats_.
    StatRegistry stats_;
    std::vector<std::unique_ptr<SimObject>> objects_;
    EventQueue eventq_;
    bool initDone_ = false;
};

} // namespace ena

#endif // ENA_SIM_SIMULATION_HH

#include "sim/sim_object.hh"

#include "sim/simulation.hh"
#include "util/logging.hh"

namespace ena {

SimObject::SimObject(Simulation &sim, std::string name)
    : sim_(sim), name_(std::move(name)), domain_(sim.buildDomain())
{
    ENA_ASSERT(!name_.empty(), "SimObject requires a name");
}

EventQueue &
SimObject::eventq() const
{
    return sim_.eventq(domain_);
}

StatRegistry &
SimObject::stats() const
{
    return sim_.stats();
}

Tick
SimObject::curTick() const
{
    return eventq().curTick();
}

void
SimObject::schedule(Event &ev, Tick delay)
{
    eventq().schedule(&ev, curTick() + delay);
}

} // namespace ena

/**
 * @file
 * Lightweight statistics package for the event-driven simulator, in the
 * spirit of gem5's stats: named scalars, distributions, and formulas
 * registered in a per-simulation registry and dumped as a sorted report.
 */

#ifndef ENA_SIM_STATS_HH
#define ENA_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace ena {

class StatRegistry;

/** Base class for all statistics. */
class StatBase
{
  public:
    StatBase(StatRegistry &registry, std::string name, std::string desc);
    virtual ~StatBase();

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** One-line textual rendering of the value(s). */
    virtual std::string render() const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    StatRegistry *registry_;
    std::string name_;
    std::string desc_;
};

/** A single accumulating value (count, bytes, ticks...). */
class StatScalar : public StatBase
{
  public:
    using StatBase::StatBase;

    StatScalar &operator+=(double v) { value_ += v; return *this; }
    StatScalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }

    double value() const { return value_; }

    std::string render() const override;
    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Sampled distribution with fixed-width buckets plus summary stats. */
class StatDistribution : public StatBase
{
  public:
    StatDistribution(StatRegistry &registry, std::string name,
                     std::string desc, double lo, double hi,
                     size_t num_buckets);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t samples() const { return samples_; }
    double mean() const;
    double minSample() const { return min_; }
    double maxSample() const { return max_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t underflows() const { return underflow_; }
    std::uint64_t overflows() const { return overflow_; }

    std::string render() const override;
    void reset() override;

  private:
    double lo_;
    double hi_;
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** A derived value computed on demand (ratios, rates). */
class StatFormula : public StatBase
{
  public:
    StatFormula(StatRegistry &registry, std::string name, std::string desc,
                std::function<double()> fn);

    double value() const { return fn_(); }

    std::string render() const override;
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/** Owner of all statistics for one simulation. */
class StatRegistry
{
  public:
    StatRegistry() = default;

    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /** Called by StatBase's constructor; rejects duplicate names. */
    void add(StatBase *stat);

    /** Called by StatBase's destructor. */
    void remove(StatBase *stat);

    /** Find by exact name; nullptr when absent. */
    StatBase *find(const std::string &name) const;

    /** Scalar/formula value by name; fatal() when absent or wrong type. */
    double value(const std::string &name) const;

    /** Dump "name value # desc" lines sorted by name. */
    void dump(std::ostream &os) const;

    /** Visit every registered stat in name order. */
    void forEach(const std::function<void(const StatBase &)> &fn) const;

    /** Reset every registered stat. */
    void resetAll();

    size_t size() const { return stats_.size(); }

  private:
    std::map<std::string, StatBase *> stats_;
};

} // namespace ena

#endif // ENA_SIM_STATS_HH

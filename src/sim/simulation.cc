#include "sim/simulation.hh"

namespace ena {

void
Simulation::initAll()
{
    if (initDone_)
        return;
    initDone_ = true;
    // init() in creation order, then startup() in creation order; new
    // objects created during init() are picked up by index iteration.
    for (size_t i = 0; i < objects_.size(); ++i)
        objects_[i]->init();
    for (size_t i = 0; i < objects_.size(); ++i)
        objects_[i]->startup();
}

std::uint64_t
Simulation::run(Tick limit)
{
    initAll();
    return eventq_.run(limit);
}

} // namespace ena

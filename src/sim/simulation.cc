#include "sim/simulation.hh"

#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"

namespace ena {

void
Simulation::initAll()
{
    if (initDone_)
        return;
    initDone_ = true;
    // init() in creation order, then startup() in creation order; new
    // objects created during init() are picked up by index iteration.
    for (size_t i = 0; i < objects_.size(); ++i)
        objects_[i]->init();
    for (size_t i = 0; i < objects_.size(); ++i)
        objects_[i]->startup();
}

std::uint64_t
Simulation::run(Tick limit)
{
    ENA_SPAN("sim", "run");
    initAll();
    std::uint64_t events = eventq_.run(limit);

    static telemetry::Counter &processed = telemetry::counter(
        "sim.events_processed",
        "events executed across all cycle-level simulations");
    processed.add(events);
    if (telemetry::metricsEnabled())
        publishStats();
    return events;
}

void
Simulation::publishStats() const
{
    stats_.forEach([](const StatBase &s) {
        if (const auto *sc = dynamic_cast<const StatScalar *>(&s)) {
            telemetry::gauge("sim." + sc->name(), sc->desc())
                .set(sc->value());
        } else if (const auto *f =
                       dynamic_cast<const StatFormula *>(&s)) {
            telemetry::gauge("sim." + f->name(), f->desc())
                .set(f->value());
        } else if (const auto *d =
                       dynamic_cast<const StatDistribution *>(&s)) {
            telemetry::gauge("sim." + d->name() + ".samples", d->desc())
                .set(static_cast<double>(d->samples()));
            telemetry::gauge("sim." + d->name() + ".mean", d->desc())
                .set(d->mean());
        }
    });
}

} // namespace ena

#include "sim/simulation.hh"

#include <algorithm>

#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace ena {

namespace {

/** Which simulation/domain window is executing on this thread. The
 *  pair is saved and restored around every window so nested pools
 *  (an outer study parallelizing whole simulations, each windowing
 *  inline) stay correct. */
thread_local const Simulation *tlsSim = nullptr;
thread_local int tlsDomain = 0;

class ExecScope
{
  public:
    ExecScope(const Simulation *sim, int domain)
        : prevSim_(tlsSim), prevDomain_(tlsDomain)
    {
        tlsSim = sim;
        tlsDomain = domain;
    }
    ~ExecScope()
    {
        tlsSim = prevSim_;
        tlsDomain = prevDomain_;
    }

  private:
    const Simulation *prevSim_;
    int prevDomain_;
};

} // anonymous namespace

std::vector<std::unique_ptr<EventQueue>>
Simulation::makeQueues(int n)
{
    std::vector<std::unique_ptr<EventQueue>> queues;
    queues.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        queues.push_back(std::make_unique<EventQueue>());
    return queues;
}

void
Simulation::setDomains(int n)
{
    ENA_ASSERT(n >= 1, "need at least one domain, got ", n);
    ENA_ASSERT(objects_.empty() && !initDone_,
               "setDomains() must precede object creation");
    queues_ = makeQueues(n);
    outboxes_.assign(static_cast<size_t>(n), {});
    msgSeq_.assign(static_cast<size_t>(n), 0);
}

void
Simulation::setLookahead(Tick ticks)
{
    ENA_ASSERT(ticks > 0, "lookahead must be positive");
    lookahead_ = ticks;
}

Simulation::DomainScope::DomainScope(Simulation &sim, int domain)
    : sim_(sim), prev_(sim.buildDomain_)
{
    ENA_ASSERT(domain >= 0 && domain < sim.numDomains(),
               "build domain ", domain, " out of range (",
               sim.numDomains(), " domains)");
    sim_.buildDomain_ = domain;
}

Simulation::DomainScope::~DomainScope()
{
    sim_.buildDomain_ = prev_;
}

int
Simulation::executingDomain() const
{
    return tlsSim == this ? tlsDomain : 0;
}

void
Simulation::postCrossDomain(int dst_domain, Tick when,
                            std::function<void()> fn, std::string desc)
{
    ENA_ASSERT(dst_domain >= 0 && dst_domain < numDomains(),
               "post to unknown domain ", dst_domain);
    int src = executingDomain();
    if (windowEnd_ == 0 || src == dst_domain) {
        // Serial contexts (one domain, build time, between runs) and
        // same-domain posts schedule directly: plain kernel semantics.
        eventq(dst_domain).scheduleLambda(when, std::move(fn),
                                          std::move(desc));
        return;
    }
    ENA_ASSERT(when >= windowEnd_,
               "cross-domain post at tick ", when,
               " violates the lookahead window ending at ", windowEnd_,
               " (", desc, ")");
    auto &outbox = outboxes_[static_cast<size_t>(src)];
    outbox.push_back(CrossMsg{when, dst_domain, src,
                              msgSeq_[static_cast<size_t>(src)]++,
                              std::move(fn), std::move(desc)});
}

Tick
Simulation::curTick() const
{
    Tick t = 0;
    for (const auto &q : queues_)
        t = std::max(t, q->curTick());
    return t;
}

void
Simulation::initAll()
{
    if (initDone_)
        return;
    initDone_ = true;
    // init() in creation order, then startup() in creation order; new
    // objects created during init() are picked up by index iteration.
    for (size_t i = 0; i < objects_.size(); ++i)
        objects_[i]->init();
    for (size_t i = 0; i < objects_.size(); ++i)
        objects_[i]->startup();
}

std::uint64_t
Simulation::run(Tick limit)
{
    ENA_SPAN("sim", "run");
    initAll();
    std::uint64_t events = queues_.size() == 1 ? queues_[0]->run(limit)
                                               : runWindows(limit);

    static telemetry::Counter &processed = telemetry::counter(
        "sim.events_processed",
        "events executed across all cycle-level simulations");
    processed.add(events);
    if (telemetry::metricsEnabled())
        publishStats();
    return events;
}

std::uint64_t
Simulation::runWindows(Tick limit)
{
    ENA_ASSERT(lookahead_ > 0,
               "multi-domain simulation needs setLookahead() before run");
    const size_t domains = queues_.size();
    std::vector<std::uint64_t> windowEvents(domains, 0);
    std::uint64_t events = 0;

    while (true) {
        // Earliest pending event anywhere; every barrier has already
        // delivered its messages, so the queues hold the whole future.
        Tick start = maxTick;
        for (const auto &q : queues_)
            start = std::min(start, q->nextTickOr(maxTick));
        if (start == maxTick || start > limit)
            break;

        // Window [start, end): bounded by the lookahead and the limit.
        Tick end = start > maxTick - lookahead_ ? maxTick
                                                : start + lookahead_;
        if (limit != maxTick)
            end = std::min(end, limit + 1);
        windowEnd_ = end;

        auto runDomain = [&](std::size_t d) {
            ExecScope scope(this, static_cast<int>(d));
            windowEvents[d] = queues_[d]->run(end - 1);
        };
        if (serialWindows_) {
            for (std::size_t d = 0; d < domains; ++d)
                runDomain(d);
        } else {
            ThreadPool::global().parallelFor(domains, runDomain);
        }
        windowEnd_ = 0;
        ++windowsRun_;
        for (std::uint64_t n : windowEvents)
            events += n;

        deliverOutboxes();
    }

    // The whole bounded window was simulated: every domain clock lands
    // exactly on the limit (the serial kernel's run(limit) contract,
    // extended across domains). Unbounded runs settle all domains on
    // the global last-event tick so no domain reports stale time.
    Tick settle = limit != maxTick ? limit : curTick();
    for (auto &q : queues_)
        q->advanceTo(settle);
    return events;
}

void
Simulation::deliverOutboxes()
{
    std::vector<CrossMsg> all;
    for (auto &outbox : outboxes_) {
        std::move(outbox.begin(), outbox.end(), std::back_inserter(all));
        outbox.clear();
    }
    if (all.empty())
        return;
    // Canonical total order: arrival tick, then target domain, then
    // (source domain, per-source sequence). Scheduling in this order
    // fixes the same-tick FIFO position of every message independent
    // of thread interleaving — the determinism bar.
    std::sort(all.begin(), all.end(),
              [](const CrossMsg &a, const CrossMsg &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.dst != b.dst)
                      return a.dst < b.dst;
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.seq < b.seq;
              });
    for (CrossMsg &m : all) {
        eventq(m.dst).scheduleLambda(m.when, std::move(m.fn),
                                     std::move(m.desc));
    }
}

void
Simulation::publishStats() const
{
    stats_.forEach([](const StatBase &s) {
        if (const auto *sc = dynamic_cast<const StatScalar *>(&s)) {
            telemetry::gauge("sim." + sc->name(), sc->desc())
                .set(sc->value());
        } else if (const auto *f =
                       dynamic_cast<const StatFormula *>(&s)) {
            telemetry::gauge("sim." + f->name(), f->desc())
                .set(f->value());
        } else if (const auto *d =
                       dynamic_cast<const StatDistribution *>(&s)) {
            telemetry::gauge("sim." + d->name() + ".samples", d->desc())
                .set(static_cast<double>(d->samples()));
            telemetry::gauge("sim." + d->name() + ".mean", d->desc())
                .set(d->mean());
        }
    });
}

} // namespace ena

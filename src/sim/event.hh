/**
 * @file
 * Discrete-event kernel for the cycle-level ENA simulator.
 *
 * Events are gem5-style: an abstract Event with a process() method, a
 * convenience EventFunctionWrapper for lambdas, and an EventQueue ordered
 * by (tick, insertion sequence). One Tick is one picosecond (util/units).
 *
 * Ownership: callers own Event objects (usually as members of SimObjects)
 * and they must outlive their scheduled occurrences. The lambda-scheduling
 * helper allocates a self-deleting wrapper for fire-and-forget callbacks.
 */

#ifndef ENA_SIM_EVENT_HH
#define ENA_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/units.hh"

namespace ena {

class EventQueue;
class EventFunctionWrapper;

/** Sentinel "no limit" tick for bounded runs. */
constexpr Tick maxTick = ~Tick(0);

/** An occurrence scheduled at a future tick. */
class Event
{
  public:
    Event() = default;
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked by the event queue when the event's tick is reached. */
    virtual void process() = 0;

    /** Human-readable description for debugging. */
    virtual std::string description() const { return "generic event"; }

    /** True while this event sits in a queue awaiting execution. */
    bool scheduled() const { return scheduled_; }

    /** Tick at which the event will (or did last) fire. */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    /** Heap entries (live + stale) referencing this event; a
     *  self-deleting wrapper stays alive until its last one pops. */
    std::uint32_t heapRefs_ = 0;
    bool scheduled_ = false;
    bool selfDeleting_ = false;
};

/** Event that runs a captured callable. */
class EventFunctionWrapper : public Event
{
  public:
    explicit EventFunctionWrapper(std::function<void()> fn,
                                  std::string desc = "lambda event")
        : fn_(std::move(fn)), desc_(std::move(desc))
    {}

    void process() override { fn_(); }
    std::string description() const override { return desc_; }

  private:
    std::function<void()> fn_;
    std::string desc_;
};

/**
 * A min-ordered queue of events. Events firing at the same tick execute
 * in scheduling order (FIFO), which keeps simulations deterministic.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Schedule @p ev at absolute tick @p when (>= curTick). */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event from the queue. */
    void deschedule(Event *ev);

    /** Move a scheduled (or idle) event to a new tick. */
    void reschedule(Event *ev, Tick when);

    /**
     * Schedule a one-shot callable; the kernel allocates and later frees
     * the wrapper event. The returned pointer stays valid until the
     * wrapper fires (or the queue dies) and may be passed to
     * deschedule(); callers normally ignore it.
     */
    EventFunctionWrapper *scheduleLambda(Tick when,
                                         std::function<void()> fn,
                                         std::string desc = "lambda event");

    /** True when no live events remain. */
    bool empty() const { return liveCount_ == 0; }

    /** Tick of the next live event; fatal() when empty. */
    Tick nextTick() const;

    /** Tick of the next live event, or @p fallback when empty. */
    Tick nextTickOr(Tick fallback) const;

    /** Move time forward to @p when with no event processing (never
     *  backwards); used by windowed multi-queue execution. */
    void advanceTo(Tick when);

    /** Execute the single next event; returns false when queue empty. */
    bool serviceOne();

    /**
     * Run until the queue drains or simulated time would pass @p limit.
     * Returns the number of events processed. A bounded run leaves
     * curTick() == limit (the whole window was simulated even if no
     * event occupied its tail); an unbounded run leaves curTick() at
     * the last executed event.
     */
    std::uint64_t run(Tick limit = maxTick);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t eventsProcessed() const { return processed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event *event;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Pop stale (descheduled / rescheduled) entries off the heap top. */
    void skim() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    /** Live queue-owned (self-deleting) wrappers; the destructor frees
     *  exactly this set and never inspects heap entries, which may
     *  reference caller-owned events already destroyed. */
    mutable std::unordered_set<Event *> managed_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t liveCount_ = 0;
    std::uint64_t processed_ = 0;
};

} // namespace ena

#endif // ENA_SIM_EVENT_HH

#include "sim/stats.hh"

#include <ostream>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ena {

StatBase::StatBase(StatRegistry &registry, std::string name,
                   std::string desc)
    : registry_(&registry), name_(std::move(name)), desc_(std::move(desc))
{
    registry_->add(this);
}

StatBase::~StatBase()
{
    registry_->remove(this);
}

std::string
StatScalar::render() const
{
    return strformat("%.6g", value_);
}

StatDistribution::StatDistribution(StatRegistry &registry, std::string name,
                                   std::string desc, double lo, double hi,
                                   size_t num_buckets)
    : StatBase(registry, std::move(name), std::move(desc)),
      lo_(lo), hi_(hi),
      bucketWidth_((hi - lo) / static_cast<double>(num_buckets)),
      buckets_(num_buckets, 0)
{
    ENA_ASSERT(hi > lo && num_buckets > 0,
               "bad distribution bounds [", lo, ", ", hi, ")");
}

void
StatDistribution::sample(double v, std::uint64_t count)
{
    // A zero-count sample contributes nothing; in particular it must
    // not poison min_/max_ with a value no real sample ever took.
    if (count == 0)
        return;
    if (samples_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    samples_ += count;
    sum_ += v * static_cast<double>(count);

    if (v < lo_) {
        underflow_ += count;
    } else if (v >= hi_) {
        overflow_ += count;
    } else {
        auto idx = static_cast<size_t>((v - lo_) / bucketWidth_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1; // guard FP edge at hi_
        buckets_[idx] += count;
    }
}

double
StatDistribution::mean() const
{
    return samples_ ? sum_ / static_cast<double>(samples_) : 0.0;
}

std::string
StatDistribution::render() const
{
    return strformat("samples=%llu mean=%.6g min=%.6g max=%.6g",
                     static_cast<unsigned long long>(samples_), mean(),
                     samples_ ? min_ : 0.0, samples_ ? max_ : 0.0);
}

void
StatDistribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    samples_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

StatFormula::StatFormula(StatRegistry &registry, std::string name,
                         std::string desc, std::function<double()> fn)
    : StatBase(registry, std::move(name), std::move(desc)),
      fn_(std::move(fn))
{
    ENA_ASSERT(fn_, "formula stat '", this->name(), "' needs a function");
}

std::string
StatFormula::render() const
{
    return strformat("%.6g", fn_());
}

void
StatRegistry::add(StatBase *stat)
{
    auto [it, inserted] = stats_.emplace(stat->name(), stat);
    if (!inserted)
        ENA_FATAL("duplicate stat name '", stat->name(), "'");
}

void
StatRegistry::remove(StatBase *stat)
{
    auto it = stats_.find(stat->name());
    if (it != stats_.end() && it->second == stat)
        stats_.erase(it);
}

StatBase *
StatRegistry::find(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? nullptr : it->second;
}

double
StatRegistry::value(const std::string &name) const
{
    StatBase *s = find(name);
    if (!s)
        ENA_FATAL("no stat named '", name, "'");
    if (auto *sc = dynamic_cast<StatScalar *>(s))
        return sc->value();
    if (auto *f = dynamic_cast<StatFormula *>(s))
        return f->value();
    ENA_FATAL("stat '", name, "' has no scalar value");
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, stat] : stats_) {
        os << name << " " << stat->render() << " # " << stat->desc()
           << "\n";
    }
}

void
StatRegistry::forEach(
    const std::function<void(const StatBase &)> &fn) const
{
    for (const auto &[name, stat] : stats_)
        fn(*stat);
}

void
StatRegistry::resetAll()
{
    for (auto &[name, stat] : stats_)
        stat->reset();
}

} // namespace ena

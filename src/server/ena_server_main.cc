/**
 * @file
 * The ena-server daemon: evaluation-as-a-service over a Unix or TCP
 * socket (newline-delimited JSON; see server/eval_service.hh).
 *
 * Usage:
 *   ena-server [--listen ENDPOINT] [--workers N] [--queue N]
 *
 * ENDPOINT is "unix:/path", "tcp:host:port", or a bare port; the
 * default is unix:ena-server.sock in the working directory. The
 * daemon runs until a client sends the "shutdown" op.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "server/server.hh"
#include "util/string_utils.hh"

using namespace ena;

namespace {

int
usage()
{
    std::cerr << "usage: ena-server [--listen ENDPOINT] [--workers N] "
                 "[--queue N]\n";
    return 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    ServerOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--listen" && i + 1 < argc) {
            Expected<Endpoint> ep = tryParseEndpoint(argv[++i]);
            if (!ep.ok()) {
                std::cerr << "ena-server: " << ep.status().message()
                          << "\n";
                return 1;
            }
            opts.endpoint = *ep;
        } else if (arg == "--workers" && i + 1 < argc) {
            std::optional<long long> n = parseInt(argv[++i]);
            if (!n || *n < 1)
                return usage();
            opts.workers = static_cast<int>(*n);
        } else if (arg == "--queue" && i + 1 < argc) {
            std::optional<long long> n = parseInt(argv[++i]);
            if (!n || *n < 1)
                return usage();
            opts.queueCapacity = static_cast<std::size_t>(*n);
        } else {
            return usage();
        }
    }

    Expected<std::unique_ptr<EvalServer>> server =
        EvalServer::start(opts);
    if (!server.ok()) {
        std::cerr << "ena-server: " << server.status().message() << "\n";
        return 1;
    }

    // Scripts poll for this line (flushed) to know the socket is live.
    std::cout << "ena-server listening on "
              << (*server)->endpoint().toString() << std::endl;

    (*server)->wait();
    (*server)->stop();
    std::cout << "ena-server stopped ("
              << (*server)->service().requestsHandled()
              << " requests served)" << std::endl;
    return 0;
}

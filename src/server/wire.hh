/**
 * @file
 * Hand-rolled minimal JSON for the evaluation server's wire protocol.
 * No external dependencies; just enough JSON for newline-delimited
 * request/response objects.
 *
 * Numbers are serialized with %.17g (DBL_DECIMAL_DIG significant
 * digits), which round-trips every finite double exactly through a
 * correctly-rounded strtod — the server's bit-identity guarantee rides
 * on this. Non-finite numbers serialize as null (JSON has no inf/nan).
 *
 * Objects preserve insertion order so serialized responses are
 * deterministic and diffable.
 */

#ifndef ENA_SERVER_WIRE_HH
#define ENA_SERVER_WIRE_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.hh"

namespace ena::wire {

/** A JSON value: null, bool, number, string, array, or object. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(double n) : kind_(Kind::Number), num_(n) {}
    JsonValue(int n) : kind_(Kind::Number), num_(n) {}
    JsonValue(long n) : kind_(Kind::Number), num_(double(n)) {}
    JsonValue(unsigned long n) : kind_(Kind::Number), num_(double(n)) {}
    JsonValue(const char *s) : kind_(Kind::String), str_(s) {}
    JsonValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

    static JsonValue
    object()
    {
        JsonValue v;
        v.kind_ = Kind::Object;
        return v;
    }

    static JsonValue
    array()
    {
        JsonValue v;
        v.kind_ = Kind::Array;
        return v;
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool boolean() const { return bool_; }
    double number() const { return num_; }
    const std::string &str() const { return str_; }

    /** Object: set (or replace) a member. Returns *this for chaining. */
    JsonValue &set(std::string key, JsonValue value);

    /** Object: member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Array: append an element. Returns *this for chaining. */
    JsonValue &push(JsonValue value);

    /** Array/object element count. */
    std::size_t size() const;

    /** Array element access (unchecked). */
    const JsonValue &at(std::size_t i) const { return arr_[i]; }

    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return obj_;
    }

    const std::vector<JsonValue> &elements() const { return arr_; }

    /** Compact one-line serialization (no embedded newlines). */
    std::string dump() const;
    void writeTo(std::string *out) const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<std::pair<std::string, JsonValue>> obj_;
    std::vector<JsonValue> arr_;
};

/** Parse one JSON document (leading/trailing whitespace allowed). */
Expected<JsonValue> tryParseJson(std::string_view text);

/**
 * Typed request-field accessors. The two-argument forms require the
 * field (InvalidArgument when missing or mistyped); the defaulted
 * forms treat an absent field as the default but still reject a
 * present field of the wrong type.
 */
Expected<std::string> tryGetString(const JsonValue &obj,
                                   std::string_view key);
Expected<std::string> tryGetString(const JsonValue &obj,
                                   std::string_view key,
                                   std::string dflt);
Expected<double> tryGetNumber(const JsonValue &obj,
                              std::string_view key);
Expected<double> tryGetNumber(const JsonValue &obj, std::string_view key,
                              double dflt);
Expected<bool> tryGetBool(const JsonValue &obj, std::string_view key,
                          bool dflt);

} // namespace ena::wire

#endif // ENA_SERVER_WIRE_HH

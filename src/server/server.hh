/**
 * @file
 * The ena-server daemon core: sockets + threads around EvalService.
 *
 * Architecture: one accept-loop thread hands each connection to its
 * own reader thread; readers push {connection, request line} work
 * items into a bounded RequestQueue (backpressure toward slow or
 * flooding clients), and a fixed pool of worker threads pops items,
 * dispatches through EvalService — which runs evaluations on the
 * shared ThreadPool with the process-wide EvalMemoCache — and writes
 * the response line back under a per-connection write mutex (responses
 * to one connection's pipelined requests may interleave in completion
 * order; the echoed "id" field is the client's correlation handle).
 *
 * Shutdown: requestStop() is idempotent and safe from any thread
 * (including a worker serving the "shutdown" op); stop() additionally
 * joins every thread and must be called from outside them.
 */

#ifndef ENA_SERVER_SERVER_HH
#define ENA_SERVER_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/eval_service.hh"
#include "server/request_queue.hh"
#include "util/net.hh"
#include "util/status.hh"

namespace ena {

struct ServerOptions
{
    Endpoint endpoint = Endpoint::unixPath("ena-server.sock");
    int workers = 4;
    std::size_t queueCapacity = 256;
};

class EvalServer
{
  public:
    /** Bind, listen, and spin up the accept/worker threads. */
    static Expected<std::unique_ptr<EvalServer>> start(
        const ServerOptions &opts);

    ~EvalServer();

    EvalServer(const EvalServer &) = delete;
    EvalServer &operator=(const EvalServer &) = delete;

    /** The bound endpoint (TCP port resolved when 0 was requested). */
    const Endpoint &endpoint() const { return listener_.endpoint(); }

    EvalService &service() { return service_; }

    /** Block until a shutdown request arrives or stop() is called. */
    void wait();

    /** Begin shutdown; safe from any thread, idempotent. */
    void requestStop();

    /** Shut down and join every thread. Call from outside them. */
    void stop();

  private:
    struct Connection
    {
        Socket socket;
        std::mutex writeMu;
    };

    struct WorkItem
    {
        std::shared_ptr<Connection> conn;
        std::string line;
    };

    explicit EvalServer(const ServerOptions &opts);

    void acceptLoop();
    void readerLoop(std::shared_ptr<Connection> conn);
    void workerLoop();

    ServerOptions opts_;
    Listener listener_;
    EvalService service_;
    RequestQueue<WorkItem> queue_;

    std::thread acceptThread_;
    std::vector<std::thread> workerThreads_;

    std::mutex connsMu_;
    std::vector<std::shared_ptr<Connection>> conns_;
    std::vector<std::thread> readerThreads_;

    std::atomic<bool> stopping_{false};
    std::mutex waitMu_;
    std::condition_variable waitCv_;
};

} // namespace ena

#endif // ENA_SERVER_SERVER_HH

/**
 * @file
 * Bounded MPMC queue feeding the evaluation server's worker threads.
 * push() blocks when the queue is full (backpressure toward slow
 * clients instead of unbounded memory growth); pop() blocks when
 * empty. close() drains: pending items are still delivered, then
 * pop() returns nullopt and push() returns false.
 */

#ifndef ENA_SERVER_REQUEST_QUEUE_HH
#define ENA_SERVER_REQUEST_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ena {

template <typename T>
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

    /** Blocks while full; false when the queue has been closed. */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mu_);
        notFull_.wait(lock, [this] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        notEmpty_.notify_one();
        return true;
    }

    /** Blocks while empty; nullopt once closed and drained. */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        notEmpty_.wait(lock,
                       [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        notFull_.notify_one();
        return item;
    }

    /** Idempotent; wakes all blocked producers and consumers. */
    void
    close()
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

    std::size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace ena

#endif // ENA_SERVER_REQUEST_QUEUE_HH

#include "server/client.hh"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/node_config_io.hh"
#include "util/config.hh"

namespace ena {

namespace {

/** Inverse of errorCodeName(); Internal for names we don't know. */
ErrorCode
errorCodeFromName(const std::string &name)
{
    static const std::pair<const char *, ErrorCode> table[] = {
        {"ok", ErrorCode::Ok},
        {"invalid_argument", ErrorCode::InvalidArgument},
        {"not_found", ErrorCode::NotFound},
        {"out_of_range", ErrorCode::OutOfRange},
        {"parse_error", ErrorCode::ParseError},
        {"io_error", ErrorCode::IoError},
        {"failed_precondition", ErrorCode::FailedPrecondition},
        {"internal", ErrorCode::Internal},
    };
    for (const auto &kv : table) {
        if (name == kv.first)
            return kv.second;
    }
    return ErrorCode::Internal;
}

void
sleepBackoff(const RetryPolicy &retry, int attempt)
{
    double us = retry.backoffUs;
    for (int i = 1; i < attempt; ++i)
        us *= 2.0;
    if (us > retry.maxBackoffUs)
        us = retry.maxBackoffUs;
    if (us > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::micro>(us));
    }
}

} // anonymous namespace

Status
ServerClient::ensureConnected()
{
    if (socket_.valid())
        return Status();
    buffer_.clear();
    ENA_ASSIGN_OR_RETURN(socket_, connectTo(opts_.endpoint));
    return socket_.setRecvTimeout(opts_.timeoutSec);
}

Expected<wire::JsonValue>
ServerClient::roundTrip(const std::string &line)
{
    ENA_TRY(ensureConnected());
    Status sent = socket_.sendAll(line);
    if (!sent.ok()) {
        socket_.close();
        return sent;
    }
    std::string response;
    Expected<bool> got = socket_.recvLine(&buffer_, &response);
    if (!got.ok()) {
        socket_.close();
        return got.status();
    }
    if (!*got) {
        socket_.close();
        return Status::ioError("server closed the connection");
    }
    return wire::tryParseJson(response)
        .withContext("parsing server response");
}

Expected<wire::JsonValue>
ServerClient::call(const std::string &op, wire::JsonValue params)
{
    params.set("op", op);
    params.set("id", static_cast<double>(nextId_++));
    std::string line = params.dump();
    line.push_back('\n');

    const int attempts =
        opts_.retry.maxAttempts > 0 ? opts_.retry.maxAttempts : 1;
    Status lastError;
    for (int attempt = 1; attempt <= attempts; ++attempt) {
        if (attempt > 1)
            sleepBackoff(opts_.retry, attempt - 1);
        Expected<wire::JsonValue> response = roundTrip(line);
        if (!response.ok()) {
            // Transport failure: reconnect and replay (evaluations
            // are idempotent). Application errors never land here.
            lastError = response.status();
            continue;
        }
        ENA_ASSIGN_OR_RETURN(bool ok,
                             wire::tryGetBool(*response, "ok", false));
        if (ok) {
            const wire::JsonValue *result = response->find("result");
            if (!result) {
                return Status::internal(
                    "malformed server response: missing result");
            }
            return *result;
        }
        const wire::JsonValue *err = response->find("error");
        if (!err) {
            return Status::internal(
                "malformed server response: missing error");
        }
        ENA_ASSIGN_OR_RETURN(std::string code,
                             wire::tryGetString(*err, "code", "internal"));
        ENA_ASSIGN_OR_RETURN(std::string message,
                             wire::tryGetString(*err, "message", ""));
        return Status(errorCodeFromName(code), std::move(message));
    }
    return lastError.withContext("calling ", op, " on ",
                                 opts_.endpoint.toString(), " (",
                                 attempts, " attempts)");
}

Expected<std::vector<SweepPoint>>
ServerClient::sweepAxis(const std::string &app, const std::string &axis,
                        double from, double to, double step,
                        const NodeConfig *base)
{
    wire::JsonValue params = wire::JsonValue::object();
    params.set("app", app);
    params.set("axis", axis);
    params.set("from", from);
    params.set("to", to);
    params.set("step", step);
    if (base)
        params.set("config", nodeConfigToConfig(*base).toString());

    ENA_ASSIGN_OR_RETURN(wire::JsonValue result,
                         call("sweep", std::move(params)));
    const wire::JsonValue *points = result.find("points");
    if (!points || !points->isArray())
        return Status::internal("malformed sweep result: no points");

    std::vector<SweepPoint> out;
    out.reserve(points->size());
    for (const wire::JsonValue &p : points->elements()) {
        SweepPoint sp;
        ENA_ASSIGN_OR_RETURN(sp.value, wire::tryGetNumber(p, "value"));
        ENA_ASSIGN_OR_RETURN(double cus, wire::tryGetNumber(p, "cus"));
        sp.cus = static_cast<int>(cus);
        ENA_ASSIGN_OR_RETURN(sp.freqGhz,
                             wire::tryGetNumber(p, "freq_ghz"));
        ENA_ASSIGN_OR_RETURN(sp.bwTbs, wire::tryGetNumber(p, "bw_tbs"));
        ENA_ASSIGN_OR_RETURN(sp.opsPerByte,
                             wire::tryGetNumber(p, "ops_per_byte"));
        ENA_ASSIGN_OR_RETURN(sp.flops, wire::tryGetNumber(p, "flops"));
        ENA_ASSIGN_OR_RETURN(sp.cuUtilization,
                             wire::tryGetNumber(p, "cu_utilization"));
        ENA_ASSIGN_OR_RETURN(sp.trafficGbs,
                             wire::tryGetNumber(p, "traffic_gbs"));
        ENA_ASSIGN_OR_RETURN(sp.budgetW,
                             wire::tryGetNumber(p, "budget_w"));
        ENA_ASSIGN_OR_RETURN(sp.totalW,
                             wire::tryGetNumber(p, "total_w"));
        ENA_ASSIGN_OR_RETURN(sp.memoryBound,
                             wire::tryGetBool(p, "memory_bound", false));
        out.push_back(sp);
    }
    return out;
}

} // namespace ena

/**
 * @file
 * Client library for the evaluation server: connect/retry/timeout
 * around the newline-delimited JSON protocol (see eval_service.hh).
 *
 * call() retries transport failures (connection refused, dropped
 * socket, timeout) under a RetryPolicy — every server op is an
 * idempotent evaluation, so replaying a request is safe. Application
 * errors come back as the server's ena::Status (code preserved) and
 * are never retried.
 *
 * Not thread-safe: one ServerClient per thread (connections are
 * cheap; the server multiplexes).
 */

#ifndef ENA_SERVER_CLIENT_HH
#define ENA_SERVER_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/node_config.hh"
#include "server/wire.hh"
#include "util/net.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"

namespace ena {

struct ClientOptions
{
    Endpoint endpoint;
    RetryPolicy retry = RetryPolicy::attempts(3);
    double timeoutSec = 300.0;   ///< per-response receive timeout
};

/** One point of a server-side sweep (client.cc::sweepAxis). */
struct SweepPoint
{
    double value = 0.0;
    int cus = 0;
    double freqGhz = 0.0;
    double bwTbs = 0.0;
    double opsPerByte = 0.0;
    double flops = 0.0;
    double cuUtilization = 0.0;
    double trafficGbs = 0.0;
    double budgetW = 0.0;
    double totalW = 0.0;
    bool memoryBound = false;

    double teraflops() const { return flops / 1e12; }
    double gflopsPerW() const { return flops / 1e9 / totalW; }
};

class ServerClient
{
  public:
    explicit ServerClient(ClientOptions opts) : opts_(std::move(opts)) {}

    /**
     * Send one request and wait for its response. @p params may carry
     * op parameters; "op" and "id" are filled in here. Returns the
     * response's "result" object, or the server's error as a Status.
     */
    Expected<wire::JsonValue> call(const std::string &op,
                                   wire::JsonValue params =
                                       wire::JsonValue::object());

    Expected<wire::JsonValue> ping() { return call("ping"); }
    Expected<wire::JsonValue> stats() { return call("stats"); }
    Expected<wire::JsonValue> shutdownServer()
    {
        return call("shutdown");
    }

    /**
     * Run sweep_tool's axis sweep on the server: @p axis is
     * "cus" | "freq" | "bw"; @p base (optional) fixes the other knobs.
     * The returned points carry the exact result bits the local CLI
     * would compute.
     */
    Expected<std::vector<SweepPoint>> sweepAxis(
        const std::string &app, const std::string &axis, double from,
        double to, double step, const NodeConfig *base = nullptr);

    const ClientOptions &options() const { return opts_; }

  private:
    Status ensureConnected();
    /** One send/receive round trip; IoError resets the connection. */
    Expected<wire::JsonValue> roundTrip(const std::string &line);

    ClientOptions opts_;
    Socket socket_;
    std::string buffer_;
    std::int64_t nextId_ = 1;
};

} // namespace ena

#endif // ENA_SERVER_CLIENT_HH

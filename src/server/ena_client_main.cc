/**
 * @file
 * Thin CLI over the ena-server protocol (server/client.hh). Prints
 * each op's JSON result on stdout.
 *
 * Usage:
 *   ena-client ENDPOINT ping
 *   ena-client ENDPOINT stats
 *   ena-client ENDPOINT shutdown
 *   ena-client ENDPOINT eval APP [CONFIG_FILE]
 *   ena-client ENDPOINT sweep APP cus|freq|bw FROM TO STEP [CUS FREQ BW]
 *   ena-client ENDPOINT table2 [BUDGET_W]
 *   ena-client ENDPOINT cluster APP PATTERN [CONFIG_FILE]
 *   ena-client ENDPOINT resilient APP PATTERN [CONFIG_FILE]
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/node_config_io.hh"
#include "server/client.hh"

using namespace ena;

namespace {

int
usage()
{
    std::cerr
        << "usage: ena-client ENDPOINT COMMAND [ARGS]\n"
           "  ping | stats | shutdown\n"
           "  eval APP [CONFIG_FILE]\n"
           "  sweep APP cus|freq|bw FROM TO STEP [CUS FREQ BW]\n"
           "  table2 [BUDGET_W]\n"
           "  cluster APP PATTERN [CONFIG_FILE]\n"
           "  resilient APP PATTERN [CONFIG_FILE]\n"
           "  taskgraph [SCHEDULER] [CONFIG_FILE]\n";
    return 1;
}

Expected<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::ioError("cannot read ", path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

int
fail(const Status &s)
{
    std::cerr << "ena-client: " << s.toString() << "\n";
    return 1;
}

int
print(const Expected<wire::JsonValue> &result)
{
    if (!result.ok())
        return fail(result.status());
    std::cout << result->dump() << "\n";
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();

    Expected<Endpoint> ep = tryParseEndpoint(argv[1]);
    if (!ep.ok())
        return fail(ep.status());

    ClientOptions opts;
    opts.endpoint = *ep;
    ServerClient client(opts);

    std::string cmd = argv[2];
    if (cmd == "ping")
        return print(client.ping());
    if (cmd == "stats")
        return print(client.stats());
    if (cmd == "shutdown")
        return print(client.shutdownServer());

    if (cmd == "eval") {
        if (argc < 4)
            return usage();
        wire::JsonValue params = wire::JsonValue::object();
        params.set("app", argv[3]);
        if (argc > 4) {
            Expected<std::string> text = readFile(argv[4]);
            if (!text.ok())
                return fail(text.status());
            params.set("config", *text);
        }
        return print(client.call("eval_node", std::move(params)));
    }

    if (cmd == "sweep") {
        if (argc < 8)
            return usage();
        wire::JsonValue params = wire::JsonValue::object();
        params.set("app", argv[3]);
        params.set("axis", argv[4]);
        params.set("from", std::stod(argv[5]));
        params.set("to", std::stod(argv[6]));
        params.set("step", std::stod(argv[7]));
        if (argc > 10) {
            NodeConfig base = NodeConfig::bestMean();
            base.cus = std::stoi(argv[8]);
            base.freqGhz = std::stod(argv[9]);
            base.bwTbs = std::stod(argv[10]);
            params.set("config", nodeConfigToConfig(base).toString());
        }
        return print(client.call("sweep", std::move(params)));
    }

    if (cmd == "table2") {
        wire::JsonValue params = wire::JsonValue::object();
        if (argc > 3)
            params.set("budget_w", std::stod(argv[3]));
        return print(client.call("table2", std::move(params)));
    }

    if (cmd == "cluster" || cmd == "resilient") {
        if (argc < 5)
            return usage();
        wire::JsonValue params = wire::JsonValue::object();
        params.set("app", argv[3]);
        params.set("pattern", argv[4]);
        if (argc > 5) {
            Expected<std::string> text = readFile(argv[5]);
            if (!text.ok())
                return fail(text.status());
            params.set("config", *text);
        }
        return print(client.call(
            cmd == "cluster" ? "cluster_eval" : "resilient_eval",
            std::move(params)));
    }

    if (cmd == "taskgraph") {
        wire::JsonValue params = wire::JsonValue::object();
        if (argc > 3)
            params.set("scheduler", argv[3]);
        if (argc > 4) {
            Expected<std::string> text = readFile(argv[4]);
            if (!text.ok())
                return fail(text.status());
            params.set("config", *text);
        }
        return print(client.call("taskgraph_eval", std::move(params)));
    }

    return usage();
}

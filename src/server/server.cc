#include "server/server.hh"

#include <utility>

#include "telemetry/metrics.hh"
#include "util/logging.hh"

namespace ena {

namespace {

telemetry::Gauge &
queueDepthGauge()
{
    static telemetry::Gauge &g = telemetry::gauge(
        "server.queue_depth", "request-queue depth at dequeue time");
    return g;
}

} // anonymous namespace

EvalServer::EvalServer(const ServerOptions &opts)
    : opts_(opts), queue_(opts.queueCapacity)
{
}

Expected<std::unique_ptr<EvalServer>>
EvalServer::start(const ServerOptions &opts)
{
    if (opts.workers < 1)
        return Status::invalidArgument("server needs at least 1 worker");
    if (opts.queueCapacity < 1)
        return Status::invalidArgument("queue capacity must be >= 1");

    std::unique_ptr<EvalServer> server(new EvalServer(opts));
    ENA_ASSIGN_OR_RETURN(server->listener_,
                         Listener::listenOn(opts.endpoint));
    server->service_.setQueueDepthProbe(
        [s = server.get()] { return s->queue_.depth(); });

    server->acceptThread_ =
        std::thread([s = server.get()] { s->acceptLoop(); });
    for (int i = 0; i < opts.workers; ++i) {
        server->workerThreads_.emplace_back(
            [s = server.get()] { s->workerLoop(); });
    }
    return server;
}

EvalServer::~EvalServer()
{
    stop();
}

void
EvalServer::acceptLoop()
{
    for (;;) {
        Expected<Socket> accepted = listener_.accept();
        if (!accepted.ok())
            break; // listener closed: shutdown
        auto conn = std::make_shared<Connection>();
        conn->socket = std::move(*accepted);
        std::lock_guard<std::mutex> lock(connsMu_);
        if (stopping_.load()) {
            conn->socket.shutdownBoth();
            break;
        }
        conns_.push_back(conn);
        readerThreads_.emplace_back(
            [this, conn] { readerLoop(std::move(conn)); });
    }
}

void
EvalServer::readerLoop(std::shared_ptr<Connection> conn)
{
    std::string buffer;
    std::string line;
    for (;;) {
        Expected<bool> got = conn->socket.recvLine(&buffer, &line);
        if (!got.ok() || !*got)
            break; // peer gone (EOF) or shutdown woke us
        // Blocks when the queue is full: backpressure propagates to
        // the client instead of buffering unbounded requests.
        if (!queue_.push(WorkItem{conn, std::move(line)}))
            break; // queue closed: shutdown
        line.clear();
    }
    // Drop this connection's registry entry; the Connection itself
    // stays alive (shared_ptr) until in-flight workers finish writing.
    std::lock_guard<std::mutex> lock(connsMu_);
    for (std::size_t i = 0; i < conns_.size(); ++i) {
        if (conns_[i] == conn) {
            conns_.erase(conns_.begin() +
                         static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
}

void
EvalServer::workerLoop()
{
    for (;;) {
        std::optional<WorkItem> item = queue_.pop();
        if (!item)
            break; // queue closed and drained
        queueDepthGauge().set(static_cast<double>(queue_.depth()));

        std::string response = service_.handleLine(item->line);
        response.push_back('\n');
        {
            std::lock_guard<std::mutex> lock(item->conn->writeMu);
            // A vanished peer is not a server error; the reader loop
            // notices the same condition and retires the connection.
            (void)item->conn->socket.sendAll(response);
        }
        // The shutdown op's acknowledgement is on the wire; now tear
        // the server down.
        if (service_.stopRequested())
            requestStop();
    }
}

void
EvalServer::wait()
{
    std::unique_lock<std::mutex> lock(waitMu_);
    waitCv_.wait(lock, [this] { return stopping_.load(); });
}

void
EvalServer::requestStop()
{
    if (stopping_.exchange(true))
        return;
    listener_.close(); // wakes the accept loop
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        for (const auto &conn : conns_)
            conn->socket.shutdownBoth(); // wakes blocked readers
    }
    queue_.close(); // wakes blocked workers and pushing readers
    waitCv_.notify_all();
}

void
EvalServer::stop()
{
    requestStop();
    if (acceptThread_.joinable())
        acceptThread_.join();
    // No new reader threads can appear once the accept loop has
    // exited; steal the list and join them.
    std::vector<std::thread> readers;
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        readers.swap(readerThreads_);
    }
    for (std::thread &t : readers) {
        if (t.joinable())
            t.join();
    }
    for (std::thread &t : workerThreads_) {
        if (t.joinable())
            t.join();
    }
    workerThreads_.clear();
}

} // namespace ena

#include "server/eval_service.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "cluster/cluster_config_io.hh"
#include "cluster/resilient_cluster.hh"
#include "cluster/resilient_cluster_io.hh"
#include "taskgraph/scheduler.hh"
#include "taskgraph/task_dag_io.hh"
#include "common/node_config_io.hh"
#include "core/dse.hh"
#include "core/eval_memo.hh"
#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "util/config.hh"
#include "util/thread_pool.hh"

namespace ena {

namespace {

using wire::JsonValue;

telemetry::Counter &
requestsCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "server.requests", "requests handled by the evaluation server");
    return c;
}

telemetry::Counter &
errorsCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "server.errors", "requests answered with an error response");
    return c;
}

telemetry::Histogram &
batchSizeHistogram()
{
    static telemetry::Histogram &h = telemetry::histogram(
        "server.batch_size", "points per NodeConfigBatch on the server",
        1.0, 2.0, 16);
    return h;
}

/** Parse the "config" parameter (config-text) into a Config. */
Expected<Config>
configFromRequest(const JsonValue &req)
{
    ENA_ASSIGN_OR_RETURN(std::string text,
                         wire::tryGetString(req, "config", ""));
    return Config::tryFromString(text, "request");
}

Expected<App>
appFromRequest(const JsonValue &req)
{
    ENA_ASSIGN_OR_RETURN(std::string name,
                         wire::tryGetString(req, "app"));
    return tryAppFromName(name);
}

/** The per-point payload every evaluation op shares. */
JsonValue
evalResultJson(const NodeConfig &cfg, const EvalResult &r)
{
    JsonValue o = JsonValue::object();
    o.set("app", appName(r.app));
    o.set("label", cfg.label());
    o.set("cus", cfg.cus);
    o.set("freq_ghz", cfg.freqGhz);
    o.set("bw_tbs", cfg.bwTbs);
    o.set("ops_per_byte", r.perf.opsPerByte);
    o.set("flops", r.perf.flops);
    o.set("teraflops", r.teraflops());
    o.set("cu_utilization", r.perf.activity.cuUtilization);
    o.set("traffic_gbs", r.perf.trafficGbs);
    o.set("memory_bound", r.perf.memoryBound);
    o.set("budget_w", r.power.budgetPower());
    o.set("package_w", r.power.packagePower());
    o.set("total_w", r.power.total());
    o.set("gflops_per_w", r.perf.flops / 1e9 / r.power.total());
    return o;
}

JsonValue
nodeConfigJson(const NodeConfig &cfg)
{
    JsonValue o = JsonValue::object();
    o.set("cus", cfg.cus);
    o.set("freq_ghz", cfg.freqGhz);
    o.set("bw_tbs", cfg.bwTbs);
    o.set("label", cfg.label());
    return o;
}

/** dse.cc's chunking heuristic: big enough batches, bounded tail. */
std::size_t
batchChunkSize(std::size_t n, int threads)
{
    std::size_t per = n / (static_cast<std::size_t>(threads) * 4 + 1);
    if (per < 32)
        per = 32;
    if (per > 4096)
        per = 4096;
    return per;
}

Expected<CommSpec>
commSpecFromRequest(const JsonValue &req)
{
    CommSpec spec;
    ENA_ASSIGN_OR_RETURN(
        std::string pattern,
        wire::tryGetString(req, "pattern",
                           commPatternName(spec.pattern)));
    ENA_ASSIGN_OR_RETURN(spec.pattern, tryCommPatternFromName(pattern));
    ENA_ASSIGN_OR_RETURN(
        spec.intensity,
        wire::tryGetNumber(req, "intensity", spec.intensity));
    ENA_ASSIGN_OR_RETURN(std::string scaling,
                         wire::tryGetString(req, "scaling", "weak"));
    if (scaling == "weak") {
        spec.scaling = ScalingMode::Weak;
    } else if (scaling == "strong") {
        spec.scaling = ScalingMode::Strong;
    } else {
        return Status::invalidArgument("bad scaling '", scaling,
                                       "' (want weak | strong)");
    }
    ENA_ASSIGN_OR_RETURN(spec.syncsPerSecond,
                         wire::tryGetNumber(req, "syncs_per_second",
                                            spec.syncsPerSecond));
    return spec;
}

} // anonymous namespace

wire::JsonValue
EvalService::handle(const wire::JsonValue &request)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    requestsCounter().add();

    JsonValue response = JsonValue::object();
    // Echo the request id (any JSON value; null when absent) so
    // clients can match responses to requests.
    if (const JsonValue *id = request.find("id"))
        response.set("id", *id);
    else
        response.set("id", JsonValue());

    Expected<std::string> op = wire::tryGetString(request, "op");
    Expected<JsonValue> result =
        op.ok() ? dispatch(*op, request) : Expected<JsonValue>(op.status());

    if (result.ok()) {
        response.set("ok", true);
        response.set("result", std::move(*result));
    } else {
        errors_.fetch_add(1, std::memory_order_relaxed);
        errorsCounter().add();
        JsonValue err = JsonValue::object();
        err.set("code", errorCodeName(result.status().code()));
        err.set("message", result.status().message());
        response.set("ok", false);
        response.set("error", std::move(err));
    }
    return response;
}

std::string
EvalService::handleLine(const std::string &line)
{
    Expected<JsonValue> request = wire::tryParseJson(line);
    if (!request.ok()) {
        JsonValue response = JsonValue::object();
        JsonValue err = JsonValue::object();
        err.set("code", errorCodeName(request.status().code()));
        err.set("message", request.status().message());
        response.set("id", JsonValue());
        response.set("ok", false);
        response.set("error", std::move(err));
        requests_.fetch_add(1, std::memory_order_relaxed);
        requestsCounter().add();
        errors_.fetch_add(1, std::memory_order_relaxed);
        errorsCounter().add();
        return response.dump();
    }
    return handle(*request).dump();
}

Expected<wire::JsonValue>
EvalService::dispatch(const std::string &op, const wire::JsonValue &req)
{
    telemetry::ScopedSpan span("server", op);
    auto start = std::chrono::steady_clock::now();

    Expected<JsonValue> result = [&]() -> Expected<JsonValue> {
        // Status is the only error channel across this boundary: the
        // evaluation layers throw StatusError from pool tasks (after
        // retries), and anything else unexpected maps to Internal.
        try {
            if (op == "ping")
                return opPing();
            if (op == "stats")
                return opStats();
            if (op == "shutdown")
                return opShutdown();
            if (op == "eval_node")
                return opEvalNode(req);
            if (op == "sweep")
                return opSweep(req);
            if (op == "table2")
                return opTable2(req);
            if (op == "cluster_eval")
                return opClusterEval(req);
            if (op == "resilient_eval")
                return opResilientEval(req);
            if (op == "taskgraph_eval")
                return opTaskGraphEval(req);
            return Status::notFound("unknown op '", op, "'");
        } catch (const StatusError &e) {
            return e.status();
        } catch (const std::exception &e) {
            return Status::internal("unhandled exception in op '", op,
                                    "': ", e.what());
        }
    }();

    double us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    telemetry::histogram("server.latency_us." + op,
                         "request latency (us) of op " + op)
        .sample(us);
    {
        std::lock_guard<std::mutex> lock(perOpMu_);
        ++perOp_[op];
    }
    return result;
}

Expected<wire::JsonValue>
EvalService::opPing() const
{
    JsonValue r = JsonValue::object();
    r.set("server", "ena-server");
    r.set("protocol", 1);
    return r;
}

Expected<wire::JsonValue>
EvalService::opStats()
{
    const EvalMemoCache &memo = EvalMemoCache::sharedInstance();
    ThreadPool &pool = ThreadPool::global();

    JsonValue r = JsonValue::object();
    r.set("requests", static_cast<double>(requests_.load()));
    r.set("errors", static_cast<double>(errors_.load()));
    r.set("queue_depth",
          static_cast<double>(queueDepthProbe_ ? queueDepthProbe_()
                                               : 0));

    JsonValue perOp = JsonValue::object();
    {
        std::lock_guard<std::mutex> lock(perOpMu_);
        for (const auto &kv : perOp_)
            perOp.set(kv.first, static_cast<double>(kv.second));
    }
    r.set("per_op", std::move(perOp));

    JsonValue m = JsonValue::object();
    m.set("hits", static_cast<double>(memo.hits()));
    m.set("misses", static_cast<double>(memo.misses()));
    m.set("evictions", static_cast<double>(memo.evictions()));
    m.set("entries", static_cast<double>(memo.size()));
    r.set("memo", std::move(m));

    JsonValue p = JsonValue::object();
    p.set("threads", pool.threads());
    p.set("tasks_executed", static_cast<double>(pool.tasksExecuted()));
    r.set("pool", std::move(p));
    return r;
}

Expected<wire::JsonValue>
EvalService::opShutdown()
{
    stop_.store(true);
    JsonValue r = JsonValue::object();
    r.set("stopping", true);
    return r;
}

Expected<wire::JsonValue>
EvalService::opEvalNode(const wire::JsonValue &req)
{
    ENA_ASSIGN_OR_RETURN(App app, appFromRequest(req));
    ENA_ASSIGN_OR_RETURN(Config cfg, configFromRequest(req));
    ENA_ASSIGN_OR_RETURN(NodeConfig node, tryNodeConfigFromConfig(cfg));

    EvalResult r =
        eval_.evaluateMemo(node, app, EvalMemoCache::sharedInstance());
    return evalResultJson(node, r);
}

Expected<wire::JsonValue>
EvalService::opSweep(const wire::JsonValue &req)
{
    ENA_ASSIGN_OR_RETURN(App app, appFromRequest(req));
    ENA_ASSIGN_OR_RETURN(std::string axis,
                         wire::tryGetString(req, "axis"));
    ENA_ASSIGN_OR_RETURN(double from, wire::tryGetNumber(req, "from"));
    ENA_ASSIGN_OR_RETURN(double to, wire::tryGetNumber(req, "to"));
    ENA_ASSIGN_OR_RETURN(double step, wire::tryGetNumber(req, "step"));
    if (axis != "cus" && axis != "freq" && axis != "bw") {
        return Status::invalidArgument("bad axis '", axis,
                                       "' (want cus | freq | bw)");
    }
    if (!(step > 0.0) || !std::isfinite(from) || !std::isfinite(to) ||
        to < from)
        return Status::outOfRange("bad sweep range [", from, ", ", to,
                                  "] step ", step);

    ENA_ASSIGN_OR_RETURN(Config cfgText, configFromRequest(req));
    ENA_ASSIGN_OR_RETURN(NodeConfig base,
                         tryNodeConfigFromConfig(cfgText));

    // Exactly sweep_tool's axis enumeration, so a server-side sweep
    // reproduces the local CLI point-for-point.
    std::vector<double> values;
    for (double v = from; v <= to + 1e-9; v += step)
        values.push_back(v);
    if (values.size() > 1000000)
        return Status::outOfRange("sweep too large (", values.size(),
                                  " points)");

    std::vector<NodeConfig> configs(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        NodeConfig cfg = base;
        if (axis == "cus")
            cfg.cus = static_cast<int>(values[i]);
        else if (axis == "freq")
            cfg.freqGhz = values[i];
        else
            cfg.bwTbs = values[i];
        ENA_TRY(cfg.tryValidate().withContext("sweep point ", i,
                                              " (value ", values[i],
                                              ")"));
        configs[i] = cfg;
    }

    // Coalesce points into NodeConfigBatch chunks on the shared pool:
    // evaluateBatch warms the process-wide memo with the full
    // per-point results, then the scalar memo path assembles them (all
    // hits, bit-identical to evaluate() by construction). Chunk tasks
    // are where ENA_FAULT_INJECT strikes; the pool's retry policy
    // absorbs transient faults without perturbing results.
    EvalMemoCache &memo = EvalMemoCache::sharedInstance();
    const std::size_t n = values.size();
    const std::size_t chunk =
        batchChunkSize(n, ThreadPool::global().threads());
    const std::size_t chunks = (n + chunk - 1) / chunk;
    std::vector<EvalResult> results(n);
    parallel_for(chunks, [&](std::size_t c) {
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(n, lo + chunk);
        NodeConfigBatch batch;
        batch.base = base;
        batch.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) {
            batch.push(configs[i].cus, configs[i].freqGhz,
                       configs[i].bwTbs);
        }
        batchSizeHistogram().sample(static_cast<double>(batch.size()));
        eval_.evaluateBatch(batch, app, &memo);
        for (std::size_t i = lo; i < hi; ++i)
            results[i] = eval_.evaluateMemo(configs[i], app, memo);
    });

    JsonValue points = JsonValue::array();
    for (std::size_t i = 0; i < n; ++i) {
        JsonValue p = evalResultJson(configs[i], results[i]);
        p.set("value", values[i]);
        points.push(std::move(p));
    }
    JsonValue r = JsonValue::object();
    r.set("app", appName(app));
    r.set("axis", axis);
    r.set("points", std::move(points));
    return r;
}

Expected<wire::JsonValue>
EvalService::opTable2(const wire::JsonValue &req)
{
    ENA_ASSIGN_OR_RETURN(double budget,
                         wire::tryGetNumber(req, "budget_w", 160.0));
    if (!(budget > 0.0) || !std::isfinite(budget))
        return Status::outOfRange("bad budget_w ", budget);

    DesignSpaceExplorer dse(eval_, DseGrid::paperGrid(), budget);

    // findBestMean/tableII fatal() on an infeasible budget; probe with
    // the quarantining sweep first so a tiny budget surfaces as a
    // structured error instead of taking the server down.
    std::vector<DsePoint> pts = dse.sweep(PowerOptConfig{});
    const DsePoint *best = nullptr;
    for (const DsePoint &p : pts) {
        if (!p.ok || !p.feasible)
            continue;
        if (!best || p.geomeanFlops > best->geomeanFlops)
            best = &p;
    }
    if (!best) {
        return Status::failedPrecondition(
            "no feasible configuration under ", budget, " W budget");
    }

    NodeConfig bestMean = best->cfg;
    std::vector<TableIIRow> rows = dse.tableII(bestMean);

    JsonValue arr = JsonValue::array();
    for (const TableIIRow &row : rows) {
        JsonValue o = JsonValue::object();
        o.set("app", appName(row.app));
        o.set("best_config", nodeConfigJson(row.bestConfig));
        o.set("benefit_no_opt_pct", row.benefitNoOptPct);
        o.set("best_config_opt", nodeConfigJson(row.bestConfigOpt));
        o.set("benefit_with_opt_pct", row.benefitWithOptPct);
        arr.push(std::move(o));
    }
    JsonValue r = JsonValue::object();
    r.set("budget_w", budget);
    r.set("best_mean", nodeConfigJson(bestMean));
    r.set("rows", std::move(arr));
    return r;
}

namespace {

JsonValue
clusterResultJson(const ClusterResult &r)
{
    JsonValue o = JsonValue::object();
    o.set("app", appName(r.app));
    o.set("node_teraflops", r.node.teraflops());
    o.set("node_total_w", r.node.power.total());
    o.set("comm_efficiency", r.commEfficiency);
    o.set("analytic_exaflops", r.analyticExaflops);
    o.set("system_exaflops", r.systemExaflops);
    o.set("analytic_mw", r.analyticMw);
    o.set("network_mw", r.networkMw);
    o.set("system_mw", r.systemMw);
    return o;
}

} // anonymous namespace

Expected<wire::JsonValue>
EvalService::opClusterEval(const wire::JsonValue &req)
{
    ENA_ASSIGN_OR_RETURN(App app, appFromRequest(req));
    ENA_ASSIGN_OR_RETURN(Config cfgText, configFromRequest(req));
    ENA_ASSIGN_OR_RETURN(NodeConfig node,
                         tryNodeConfigFromConfig(cfgText));
    ENA_ASSIGN_OR_RETURN(ClusterConfig cluster,
                         tryClusterConfigFromConfig(cfgText));
    ENA_ASSIGN_OR_RETURN(CommSpec spec, commSpecFromRequest(req));

    ClusterEvaluator ce(eval_, cluster);
    ce.setMemoCache(&EvalMemoCache::sharedInstance());
    ClusterResult r = ce.evaluate(node, app, spec);
    return clusterResultJson(r);
}

Expected<wire::JsonValue>
EvalService::opResilientEval(const wire::JsonValue &req)
{
    ENA_ASSIGN_OR_RETURN(App app, appFromRequest(req));
    ENA_ASSIGN_OR_RETURN(Config cfgText, configFromRequest(req));
    ENA_ASSIGN_OR_RETURN(NodeConfig node,
                         tryNodeConfigFromConfig(cfgText));
    ENA_ASSIGN_OR_RETURN(ClusterConfig cluster,
                         tryClusterConfigFromConfig(cfgText));
    ENA_ASSIGN_OR_RETURN(ResilienceSpec spec,
                         tryResilienceSpecFromConfig(cfgText));
    ENA_ASSIGN_OR_RETURN(CommSpec comm, commSpecFromRequest(req));

    ClusterEvaluator ce(eval_, cluster);
    ce.setMemoCache(&EvalMemoCache::sharedInstance());
    ResilientClusterEvaluator rce(ce, spec);
    ResilientResult r = rce.evaluate(node, app, comm);

    JsonValue o = JsonValue::object();
    o.set("cluster", clusterResultJson(r.cluster));
    o.set("node_fit", r.nodeFit);
    o.set("system_mttf_hours", r.systemMttfHours);
    o.set("interruption_mttf_hours", r.interruptionMttfHours);
    o.set("ckpt_efficiency", r.ckptEfficiency);
    o.set("rmt_slowdown", r.rmtSlowdown);
    o.set("effective_exaflops", r.effectiveExaflops);
    o.set("system_mw", r.systemMw);
    o.set("effective_exaflops_per_mw", r.effectiveExaflopsPerMw());
    return o;
}

Expected<wire::JsonValue>
EvalService::opTaskGraphEval(const wire::JsonValue &req)
{
    ENA_ASSIGN_OR_RETURN(Config cfgText, configFromRequest(req));
    ENA_ASSIGN_OR_RETURN(NodeConfig node,
                         tryNodeConfigFromConfig(cfgText));
    ENA_ASSIGN_OR_RETURN(ClusterConfig cluster,
                         tryClusterConfigFromConfig(cfgText));
    ENA_ASSIGN_OR_RETURN(TaskGraphSpec spec,
                         tryTaskGraphSpecFromConfig(cfgText));
    ENA_ASSIGN_OR_RETURN(
        std::string sched,
        wire::tryGetString(req, "scheduler",
                           dagSchedulerName(DagScheduler::CriticalPath)));
    ENA_ASSIGN_OR_RETURN(DagScheduler policy,
                         tryDagSchedulerFromName(sched));
    ENA_TRY(node.tryValidate());
    ENA_TRY(cluster.tryValidate());

    TaskDag dag = spec.build();
    ENA_TRY(dag.tryValidate());
    InterNodeNetwork net(cluster);
    // Same memo path as every other op: node evaluations land in (and
    // come from) the process-wide cache, bit-identical to local runs.
    DagCostModel cost = DagCostModel::build(
        dag, eval_, node, net, &EvalMemoCache::sharedInstance());
    Schedule s = scheduleDag(dag, cost, policy, cluster.nodes);

    JsonValue o = JsonValue::object();
    o.set("dag", dag.label());
    o.set("shape", dagShapeName(spec.shape));
    o.set("app", appName(spec.app));
    o.set("tasks", static_cast<double>(dag.size()));
    o.set("edges", static_cast<double>(dag.numEdges()));
    o.set("scheduler", dagSchedulerName(policy));
    o.set("nodes", cluster.nodes);
    o.set("makespan_seconds", s.makespanSeconds);
    o.set("critical_path_seconds", criticalPathSeconds(dag, cost));
    o.set("total_task_seconds", s.totalCompSeconds);
    o.set("comm_seconds", s.totalCommSeconds);
    o.set("edges_costed", static_cast<double>(s.edgesCosted));
    o.set("speedup", s.speedup());
    o.set("efficiency", s.efficiency());
    o.set("utilization", s.utilization());
    return o;
}

} // namespace ena

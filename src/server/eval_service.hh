/**
 * @file
 * Socket-free request dispatcher for the evaluation server: one JSON
 * request object in, one JSON response object out. EvalServer wraps it
 * with sockets and worker threads; tests and benches drive it
 * directly.
 *
 * Protocol (newline-delimited JSON objects on the wire):
 *
 *   request:  {"op": "<name>", "id": <any>, ...op parameters}
 *   response: {"id": <echoed>, "ok": true,  "result": {...}}
 *          or {"id": <echoed>, "ok": false,
 *              "error": {"code": "<error code name>", "message": "..."}}
 *
 * Operations: ping, stats, shutdown, eval_node, sweep, table2,
 * cluster_eval, resilient_eval, taskgraph_eval. Config payloads reuse
 * the repo's "key = value" config-text format (Config::tryFromString)
 * under a "config" string parameter; taskgraph_eval reads the node,
 * cluster, and taskgraph layers from one config text plus a
 * "scheduler" parameter.
 *
 * Error discipline: every failure crosses this boundary as an
 * ena::Status mapped to a structured error response — handle() never
 * throws and never calls a fatal path. Evaluations run on the shared
 * ThreadPool through the process-wide EvalMemoCache
 * (EvalMemoCache::sharedInstance()), so identical grid points across
 * any mix of clients evaluate once and results are bit-identical to
 * in-process evaluation by construction.
 *
 * Thread safety: handle()/handleLine() may be called concurrently from
 * any number of worker threads.
 */

#ifndef ENA_SERVER_EVAL_SERVICE_HH
#define ENA_SERVER_EVAL_SERVICE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "core/node_evaluator.hh"
#include "server/wire.hh"
#include "util/status.hh"

namespace ena {

class EvalService
{
  public:
    EvalService() = default;

    /** Dispatch one parsed request. Never throws. */
    wire::JsonValue handle(const wire::JsonValue &request);

    /**
     * Parse one protocol line and dispatch it. The returned response
     * line carries no trailing newline. Never throws.
     */
    std::string handleLine(const std::string &line);

    /** True once a shutdown request has been served. */
    bool stopRequested() const { return stop_.load(); }

    /** Source for the stats op's queue_depth (the server's queue). */
    void
    setQueueDepthProbe(std::function<std::size_t()> probe)
    {
        queueDepthProbe_ = std::move(probe);
    }

    std::uint64_t requestsHandled() const { return requests_.load(); }
    std::uint64_t errorsReturned() const { return errors_.load(); }

  private:
    Expected<wire::JsonValue> dispatch(const std::string &op,
                                       const wire::JsonValue &req);

    Expected<wire::JsonValue> opPing() const;
    Expected<wire::JsonValue> opStats();
    Expected<wire::JsonValue> opShutdown();
    Expected<wire::JsonValue> opEvalNode(const wire::JsonValue &req);
    Expected<wire::JsonValue> opSweep(const wire::JsonValue &req);
    Expected<wire::JsonValue> opTable2(const wire::JsonValue &req);
    Expected<wire::JsonValue> opClusterEval(const wire::JsonValue &req);
    Expected<wire::JsonValue> opResilientEval(const wire::JsonValue &req);
    Expected<wire::JsonValue> opTaskGraphEval(const wire::JsonValue &req);

    NodeEvaluator eval_;
    std::function<std::size_t()> queueDepthProbe_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> errors_{0};

    mutable std::mutex perOpMu_;
    std::map<std::string, std::uint64_t> perOp_;
};

} // namespace ena

#endif // ENA_SERVER_EVAL_SERVICE_HH

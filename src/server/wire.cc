#include "server/wire.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ena::wire {

JsonValue &
JsonValue::set(std::string key, JsonValue value)
{
    kind_ = Kind::Object;
    for (auto &kv : obj_) {
        if (kv.first == key) {
            kv.second = std::move(value);
            return *this;
        }
    }
    obj_.emplace_back(std::move(key), std::move(value));
    return *this;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &kv : obj_) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

JsonValue &
JsonValue::push(JsonValue value)
{
    kind_ = Kind::Array;
    arr_.push_back(std::move(value));
    return *this;
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return arr_.size();
    if (kind_ == Kind::Object)
        return obj_.size();
    return 0;
}

namespace {

void
writeEscaped(const std::string &s, std::string *out)
{
    out->push_back('"');
    for (char c : s) {
        switch (c) {
        case '"': *out += "\\\""; break;
        case '\\': *out += "\\\\"; break;
        case '\n': *out += "\\n"; break;
        case '\r': *out += "\\r"; break;
        case '\t': *out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                *out += buf;
            } else {
                out->push_back(c);
            }
        }
    }
    out->push_back('"');
}

void
writeNumber(double n, std::string *out)
{
    if (!std::isfinite(n)) {
        *out += "null";
        return;
    }
    // %.17g round-trips every finite double exactly.
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", n);
    *out += buf;
}

} // anonymous namespace

void
JsonValue::writeTo(std::string *out) const
{
    switch (kind_) {
    case Kind::Null: *out += "null"; break;
    case Kind::Bool: *out += bool_ ? "true" : "false"; break;
    case Kind::Number: writeNumber(num_, out); break;
    case Kind::String: writeEscaped(str_, out); break;
    case Kind::Array: {
        out->push_back('[');
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out->push_back(',');
            arr_[i].writeTo(out);
        }
        out->push_back(']');
        break;
    }
    case Kind::Object: {
        out->push_back('{');
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out->push_back(',');
            writeEscaped(obj_[i].first, out);
            out->push_back(':');
            obj_[i].second.writeTo(out);
        }
        out->push_back('}');
        break;
    }
    }
}

std::string
JsonValue::dump() const
{
    std::string out;
    writeTo(&out);
    return out;
}

namespace {

/** Recursive-descent JSON parser over a string_view cursor. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Expected<JsonValue>
    parse()
    {
        ENA_ASSIGN_OR_RETURN(JsonValue v, parseValue(0));
        skipWs();
        if (pos_ != text_.size())
            return err("trailing characters after JSON document");
        return v;
    }

  private:
    static constexpr int kMaxDepth = 100;

    Status
    err(const std::string &what) const
    {
        return Status::parseError("JSON: ", what, " at byte ", pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) == word) {
            pos_ += word.size();
            return true;
        }
        return false;
    }

    Expected<JsonValue>
    parseValue(int depth)
    {
        if (depth > kMaxDepth)
            return err("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return err("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return parseObject(depth);
        if (c == '[')
            return parseArray(depth);
        if (c == '"') {
            ENA_ASSIGN_OR_RETURN(std::string s, parseString());
            return JsonValue(std::move(s));
        }
        if (consumeWord("true"))
            return JsonValue(true);
        if (consumeWord("false"))
            return JsonValue(false);
        if (consumeWord("null"))
            return JsonValue();
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber();
        return err(std::string("unexpected character '") + c + "'");
    }

    Expected<JsonValue>
    parseNumber()
    {
        std::size_t start = pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '-' || c == '+' ||
                c == '.' || c == 'e' || c == 'E') {
                ++pos_;
            } else {
                break;
            }
        }
        // strtod needs NUL termination; numbers are short, copy is fine.
        std::string tok(text_.substr(start, pos_ - start));
        char *end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            return err("bad number '" + tok + "'");
        return JsonValue(v);
    }

    Expected<std::string>
    parseString()
    {
        if (!consume('"'))
            return err("expected '\"'");
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                return err("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return err("dangling escape");
            char e = text_[pos_++];
            switch (e) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    return err("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        return err("bad \\u escape digit");
                }
                // UTF-8 encode the BMP code point (surrogate pairs are
                // not needed by this protocol; a lone surrogate encodes
                // as its raw code point).
                if (code < 0x80) {
                    out.push_back(char(code));
                } else if (code < 0x800) {
                    out.push_back(char(0xC0 | (code >> 6)));
                    out.push_back(char(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(char(0xE0 | (code >> 12)));
                    out.push_back(char(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(char(0x80 | (code & 0x3F)));
                }
                break;
            }
            default:
                return err(std::string("bad escape '\\") + e + "'");
            }
        }
        return err("unterminated string");
    }

    Expected<JsonValue>
    parseArray(int depth)
    {
        consume('[');
        JsonValue arr = JsonValue::array();
        skipWs();
        if (consume(']'))
            return arr;
        for (;;) {
            ENA_ASSIGN_OR_RETURN(JsonValue v, parseValue(depth + 1));
            arr.push(std::move(v));
            skipWs();
            if (consume(']'))
                return arr;
            if (!consume(','))
                return err("expected ',' or ']' in array");
        }
    }

    Expected<JsonValue>
    parseObject(int depth)
    {
        consume('{');
        JsonValue obj = JsonValue::object();
        skipWs();
        if (consume('}'))
            return obj;
        for (;;) {
            skipWs();
            ENA_ASSIGN_OR_RETURN(std::string key, parseString());
            skipWs();
            if (!consume(':'))
                return err("expected ':' after object key");
            ENA_ASSIGN_OR_RETURN(JsonValue v, parseValue(depth + 1));
            obj.set(std::move(key), std::move(v));
            skipWs();
            if (consume('}'))
                return obj;
            if (!consume(','))
                return err("expected ',' or '}' in object");
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // anonymous namespace

Expected<JsonValue>
tryParseJson(std::string_view text)
{
    return Parser(text).parse();
}

Expected<std::string>
tryGetString(const JsonValue &obj, std::string_view key)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return Status::invalidArgument("missing field '", key, "'");
    if (!v->isString())
        return Status::invalidArgument("field '", key,
                                       "' must be a string");
    return v->str();
}

Expected<std::string>
tryGetString(const JsonValue &obj, std::string_view key,
             std::string dflt)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return dflt;
    if (!v->isString())
        return Status::invalidArgument("field '", key,
                                       "' must be a string");
    return v->str();
}

Expected<double>
tryGetNumber(const JsonValue &obj, std::string_view key)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return Status::invalidArgument("missing field '", key, "'");
    if (!v->isNumber())
        return Status::invalidArgument("field '", key,
                                       "' must be a number");
    return v->number();
}

Expected<double>
tryGetNumber(const JsonValue &obj, std::string_view key, double dflt)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return dflt;
    if (!v->isNumber())
        return Status::invalidArgument("field '", key,
                                       "' must be a number");
    return v->number();
}

Expected<bool>
tryGetBool(const JsonValue &obj, std::string_view key, bool dflt)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        return dflt;
    if (!v->isBool())
        return Status::invalidArgument("field '", key,
                                       "' must be a boolean");
    return v->boolean();
}

} // namespace ena::wire

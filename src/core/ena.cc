#include "core/ena.hh"

namespace ena {

const char *
versionString()
{
    return "ena-sim 1.0.0";
}

NodeConfig
discoveredBestMean(const NodeEvaluator &eval)
{
    static NodeConfig cached = [&] {
        DesignSpaceExplorer dse(eval, DseGrid::paperGrid(),
                                cal::nodePowerBudgetW);
        return dse.findBestMean(PowerOptConfig::none());
    }();
    return cached;
}

NodeConfig
optimizedBestMean(const NodeEvaluator &eval)
{
    static NodeConfig cached = [&] {
        DesignSpaceExplorer dse(eval, DseGrid::paperGrid(),
                                cal::nodePowerBudgetW);
        NodeConfig cfg = dse.findBestMean(PowerOptConfig::all());
        cfg.opts = PowerOptConfig::all();
        return cfg;
    }();
    return cached;
}

} // namespace ena

/**
 * @file
 * Design-space exploration (paper Section V intro, Section VI, Table II).
 *
 * Sweeps CU count x GPU frequency x in-package bandwidth (the paper's
 * "over a thousand different hardware configurations"), then finds
 *
 *  - the best-mean configuration: highest geometric-mean performance
 *    across all applications with the across-application mean of the
 *    budget-scope node power held under 160 W, and
 *  - the best per-application configuration: highest performance for a
 *    single kernel with that kernel's own budget-scope power under
 *    160 W (Table II's oracle reconfiguration).
 */

#ifndef ENA_CORE_DSE_HH
#define ENA_CORE_DSE_HH

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "common/node_config.hh"
#include "core/eval_memo.hh"
#include "core/node_evaluator.hh"
#include "core/sweep_journal.hh"
#include "workloads/kernel_profile.hh"

namespace ena {

/** The swept axes. */
struct DseGrid
{
    std::vector<int> cus;
    std::vector<double> freqsGhz;
    std::vector<double> bwsTbs;

    /**
     * The paper's sweep: CUs 192..384 step 32 (area budget 384),
     * frequency 0.7..1.5 GHz step 100 MHz plus the 925 MHz point that
     * appears in Table II, bandwidth 1..7 TB/s.
     */
    static DseGrid paperGrid();

    size_t
    size() const
    {
        return cus.size() * freqsGhz.size() * bwsTbs.size();
    }
};

/** One candidate's scores. */
struct DsePoint
{
    NodeConfig cfg;
    double geomeanFlops = 0.0;
    double meanBudgetPowerW = 0.0;
    double maxBudgetPowerW = 0.0;   ///< worst application's budget power
    bool feasible = false;          ///< maxBudgetPowerW <= budget

    /**
     * False when the point was quarantined: its config failed
     * validation or its evaluation threw. Quarantined points carry the
     * diagnostic in @p error, score zero, and are never feasible — the
     * sweep completes instead of dying with the whole grid's work.
     */
    bool ok = true;
    std::string error;
};

/** Best configuration for a single application. */
struct AppBest
{
    NodeConfig cfg;
    double flops = 0.0;
    double budgetPowerW = 0.0;
};

/** One Table II row. */
struct TableIIRow
{
    App app;
    NodeConfig bestConfig;           ///< without power optimizations
    double benefitNoOptPct = 0.0;    ///< perf gain over best-mean config
    NodeConfig bestConfigOpt;        ///< with power optimizations
    double benefitWithOptPct = 0.0;  ///< gain incl. optimizations, vs the
                                     ///< no-opt best-mean config
};

/**
 * All sweeps run on the process-wide ThreadPool (ENA_THREADS); results
 * are deterministic and identical to a single-threaded run because
 * every grid point is scored independently into its own slot and all
 * argmax reductions happen on the caller in grid-enumeration order.
 *
 * Grid points are scored through NodeEvaluator::evaluateBatch —
 * ThreadPool chunks become batches — with a sweep-level EvalMemoCache
 * shared across sweeps and searches of the same explorer: repeated
 * evaluations of a (config, app) pair (tableII's per-app searches,
 * repeated sweeps) are served from the cache, which is bit-identical
 * to recomputation by construction (see core/eval_memo.hh).
 */
class DesignSpaceExplorer
{
  public:
    DesignSpaceExplorer(const NodeEvaluator &eval, DseGrid grid,
                        double budget_w);

    /**
     * Score every grid point (for inspection / calibration). Invalid
     * or throwing points are quarantined (DsePoint::ok == false), not
     * fatal. Consults ENA_SWEEP_JOURNAL: when set, finished points
     * stream to that journal and already-journaled points are skipped,
     * so a killed sweep resumes where it left off.
     */
    std::vector<DsePoint> sweep(const PowerOptConfig &opts) const;

    /** Same, with an explicit journal (null = no checkpointing). */
    std::vector<DsePoint> sweep(const PowerOptConfig &opts,
                                SweepJournal *journal) const;

    /**
     * Highest geomean-performance configuration whose worst-case
     * (max-over-applications) budget power stays under the budget.
     * fatal() when no grid point satisfies it.
     */
    NodeConfig findBestMean(const PowerOptConfig &opts) const;

    /** Highest-performance feasible configuration for one kernel. */
    AppBest findBestForApp(App app, const PowerOptConfig &opts) const;

    /**
     * Reproduce Table II: per-application best configs and their
     * performance benefit over the given best-mean configuration,
     * without and with the Section V-E power optimizations.
     */
    std::vector<TableIIRow> tableII(const NodeConfig &best_mean) const;

    const DseGrid &grid() const { return grid_; }

    /** The sweep-level memo cache (telemetry: dse.memo_hits/_misses). */
    const EvalMemoCache &memoCache() const { return memo_; }

  private:
    /** The grid point at flat index i (row-major over cus/freq/bw). */
    NodeConfig configAt(std::size_t index,
                        const PowerOptConfig &opts) const;

    const NodeEvaluator &eval_;
    DseGrid grid_;
    double budgetW_;
    mutable EvalMemoCache memo_;
};

} // namespace ena

#endif // ENA_CORE_DSE_HH

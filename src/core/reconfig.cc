#include "core/reconfig.hh"

#include "util/logging.hh"

namespace ena {

ReconfigGovernor::ReconfigGovernor(const NodeEvaluator &eval,
                                   GovernorParams params)
    : eval_(eval), params_(std::move(params))
{
    params_.installed.validate();
    ENA_ASSERT(!params_.freqsGhz.empty(), "governor needs DVFS points");
    ENA_ASSERT(params_.cuStep > 0, "bad CU-gating step");
}

EvalResult
ReconfigGovernor::evaluateSetting(App app, int cus, double f) const
{
    NodeConfig cfg = params_.installed;
    cfg.cus = cus;
    cfg.freqGhz = f;
    return eval_.evaluate(cfg, app);
}

GovernorDecision
ReconfigGovernor::decide(App app) const
{
    GovernorDecision best;
    for (int cus = params_.cuStep; cus <= params_.installed.cus;
         cus += params_.cuStep) {
        for (double f : params_.freqsGhz) {
            EvalResult r = evaluateSetting(app, cus, f);
            if (r.power.budgetPower() > params_.budgetW)
                continue;
            if (r.perf.flops > best.flops) {
                best.activeCus = cus;
                best.freqGhz = f;
                best.flops = r.perf.flops;
                best.budgetPowerW = r.power.budgetPower();
            }
        }
    }
    if (best.activeCus == 0)
        ENA_FATAL("no feasible runtime setting for ", appName(app),
                  " under ", params_.budgetW, " W");
    return best;
}

GovernorSummary
ReconfigGovernor::run(const std::vector<Phase> &phases) const
{
    ENA_ASSERT(!phases.empty(), "empty workload");
    GovernorSummary s;
    double static_energy = 0.0;
    double governed_energy = 0.0;
    double total_time = 0.0;

    GovernorDecision prev;
    for (const Phase &ph : phases) {
        ENA_ASSERT(ph.seconds > 0.0, "phase needs positive duration");
        total_time += ph.seconds;

        // Static: installed hardware at its nominal settings.
        EvalResult st = eval_.evaluate(params_.installed, ph.app);
        s.staticWork += st.perf.flops * ph.seconds;
        static_energy += st.power.budgetPower() * ph.seconds;

        // Governed: per-phase setting plus the transition cost.
        GovernorDecision d = decide(ph.app);
        double useful = ph.seconds;
        bool switched = d.activeCus != prev.activeCus ||
                        d.freqGhz != prev.freqGhz;
        if (switched && &ph != &phases.front()) {
            useful -= params_.transitionS;
            ++s.transitions;
        }
        if (useful < 0.0)
            useful = 0.0;
        s.governedWork += d.flops * useful;
        governed_energy += d.budgetPowerW * ph.seconds;
        prev = d;
    }

    s.gainPct = (s.governedWork / s.staticWork - 1.0) * 100.0;
    s.avgStaticPowerW = static_energy / total_time;
    s.avgGovernedPowerW = governed_energy / total_time;
    return s;
}

} // namespace ena

#include "core/reconfig.hh"

#include "util/logging.hh"

namespace ena {

ReconfigGovernor::ReconfigGovernor(const NodeEvaluator &eval,
                                   GovernorParams params)
    : eval_(eval), params_(std::move(params))
{
    params_.installed.validate();
    ENA_ASSERT(!params_.freqsGhz.empty(), "governor needs DVFS points");
    ENA_ASSERT(params_.cuStep > 0, "bad CU-gating step");
}

EvalResult
ReconfigGovernor::evaluateSetting(App app, int cus, double f) const
{
    NodeConfig cfg = params_.installed;
    cfg.cus = cus;
    cfg.freqGhz = f;
    return eval_.evaluate(cfg, app);
}

GovernorDecision
ReconfigGovernor::decide(App app) const
{
    // Batch the whole (CU gating x DVFS) candidate grid; the governor
    // memo makes repeated phases of the same kernel near-free. The
    // argmax runs in the original enumeration order (cus outer, freq
    // inner, strict greater-than), so decisions are unchanged.
    NodeConfigBatch b;
    b.base = params_.installed;
    for (int cus = params_.cuStep; cus <= params_.installed.cus;
         cus += params_.cuStep) {
        for (double f : params_.freqsGhz)
            b.push(cus, f, params_.installed.bwTbs);
    }
    BatchEvalResult r = eval_.evaluateBatch(b, app, &memo_);

    GovernorDecision best;
    for (std::size_t i = 0; i < b.size(); ++i) {
        if (r.budgetPowerW[i] > params_.budgetW)
            continue;
        if (r.flops[i] > best.flops) {
            best.activeCus = b.cus[i];
            best.freqGhz = b.freqsGhz[i];
            best.flops = r.flops[i];
            best.budgetPowerW = r.budgetPowerW[i];
        }
    }
    if (best.activeCus == 0)
        ENA_FATAL("no feasible runtime setting for ", appName(app),
                  " under ", params_.budgetW, " W");
    return best;
}

GovernorSummary
ReconfigGovernor::run(const std::vector<Phase> &phases) const
{
    ENA_ASSERT(!phases.empty(), "empty workload");
    GovernorSummary s;
    double static_energy = 0.0;
    double governed_energy = 0.0;
    double total_time = 0.0;

    GovernorDecision prev;
    for (const Phase &ph : phases) {
        ENA_ASSERT(ph.seconds > 0.0, "phase needs positive duration");
        total_time += ph.seconds;

        // Static: installed hardware at its nominal settings (memoized
        // — every phase of the same kernel reuses the first result).
        EvalResult st = eval_.evaluateMemo(params_.installed, ph.app,
                                           memo_);
        s.staticWork += st.perf.flops * ph.seconds;
        static_energy += st.power.budgetPower() * ph.seconds;

        // Governed: per-phase setting plus the transition cost.
        GovernorDecision d = decide(ph.app);
        double useful = ph.seconds;
        bool switched = d.activeCus != prev.activeCus ||
                        d.freqGhz != prev.freqGhz;
        if (switched && &ph != &phases.front()) {
            useful -= params_.transitionS;
            ++s.transitions;
        }
        if (useful < 0.0)
            useful = 0.0;
        s.governedWork += d.flops * useful;
        governed_energy += d.budgetPowerW * ph.seconds;
        prev = d;
    }

    s.gainPct = (s.governedWork / s.staticWork - 1.0) * 100.0;
    s.avgStaticPowerW = static_energy / total_time;
    s.avgGovernedPowerW = governed_energy / total_time;
    return s;
}

} // namespace ena

#include "core/perf_model.hh"

#include <algorithm>
#include <cmath>

#include "common/calibration.hh"
#include "core/perf_terms.hh"
#include "util/logging.hh"
#include "util/stats_math.hh"
#include "util/units.hh"

namespace ena {

double
PerfModel::peakFlops(const NodeConfig &cfg)
{
    return perf_terms::peakFlops(cfg.cus, cfg.freqGhz);
}

double
PerfModel::computeRate(const NodeConfig &cfg, const KernelProfile &k)
{
    double peak = peakFlops(cfg);
    double cu_scale = perf_terms::cuScale(cfg.cus, k);
    double f_scale = perf_terms::freqScale(cfg.freqGhz, k);
    return perf_terms::computeRate(peak, k, cu_scale, f_scale);
}

double
PerfModel::contendedBandwidthGbs(const NodeConfig &cfg,
                                 const KernelProfile &k)
{
    // Contention (cache thrash, queueing) builds once the compute
    // demand outruns the bandwidth the kernel can actually consume:
    // provisioned bandwidth beyond the kernel's saturation point does
    // not relieve it, but reducing CU-count x frequency does (this is
    // what makes Table II's memory-intensive optima pick fewer CUs).
    double usable = perf_terms::usableBandwidthGbs(cfg.bwTbs, k);
    return perf_terms::contendedBandwidthGbs(cfg.cus, cfg.freqGhz,
                                             usable, k);
}

double
PerfModel::memoryRate(double eff_bw_gbs, const KernelProfile &k)
{
    return perf_terms::memoryRate(eff_bw_gbs, k);
}

double
PerfModel::externalRateGbs(const NodeConfig &cfg, const KernelProfile &k)
{
    double eff_mlp = k.memLevelParallelism * (1.0 - k.latencySensitivity);
    double rt_latency_s =
        (cal::inPkgLatencyNs + cal::extMemLatencyNs) * units::nano;
    double littles_gbs =
        cfg.cus * eff_mlp * cal::memAccessBytes / rt_latency_s /
        units::giga;
    return std::min(cfg.ext.aggregateGbs(), littles_gbs);
}

Activity
PerfModel::makeActivity(const NodeConfig &cfg, const KernelProfile &k,
                        double flops, double peak) const
{
    return perf_terms::makeActivity(cfg.bwTbs, k, flops, peak);
}

PerfResult
PerfModel::evaluate(const NodeConfig &cfg, const KernelProfile &k) const
{
    cfg.validate();

    // The whole evaluation lives in perf_terms::evaluatePerf so the
    // batch path (core/eval_batch.cc) runs the identical operation
    // sequence; the scale factors and the usable-bandwidth term are
    // precomputed here exactly as the batch path's term caches would.
    double cu_scale = perf_terms::cuScale(cfg.cus, k);
    double f_scale = perf_terms::freqScale(cfg.freqGhz, k);
    double usable = perf_terms::usableBandwidthGbs(cfg.bwTbs, k);
    return perf_terms::evaluatePerf(cfg.cus, cfg.freqGhz, cfg.bwTbs, k,
                                    cu_scale, f_scale, usable);
}

double
PerfModel::evaluateWithMissRate(const NodeConfig &cfg,
                                const KernelProfile &k,
                                double miss_frac) const
{
    ENA_ASSERT(miss_frac >= 0.0 && miss_frac <= 1.0,
               "miss fraction must be in [0,1], got ", miss_frac);
    cfg.validate();

    double c = computeRate(cfg, k);

    // In-package service rate (as in evaluate()).
    double b_in = contendedBandwidthGbs(cfg, k);

    // External service rate: SerDes bandwidth or the latency-hiding
    // limit, whichever is lower — and never better than the in-package
    // path, which external data must still traverse.
    double b_ext = std::min(externalRateGbs(cfg, k), b_in);

    // Weighted-harmonic effective bandwidth: each byte takes
    // (1-m)/b_in + m/b_ext seconds per GB.
    double inv = (1.0 - miss_frac) / b_in + miss_frac / b_ext;
    double eff_bw = 1.0 / inv;
    double m = memoryRate(eff_bw, k);

    return smoothMin(c, m, perf_terms::rooflineNorm);
}

} // namespace ena

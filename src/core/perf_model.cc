#include "core/perf_model.hh"

#include <algorithm>
#include <cmath>

#include "common/calibration.hh"
#include "util/logging.hh"
#include "util/stats_math.hh"
#include "util/units.hh"

namespace ena {

namespace {

/** Reference point for the scaling-taxonomy exponents. */
constexpr double refCus = 320.0;
constexpr double refGhz = 1.0;

/** Smooth-min norm: gives the rounded roofline knees of Figs. 4-6. */
constexpr double rooflineNorm = 8.0;

/** NoC traffic amplification over DRAM traffic (coherence, replies). */
constexpr double nocAmplification = 1.2;

} // anonymous namespace

double
PerfModel::peakFlops(const NodeConfig &cfg)
{
    return cfg.cus * cfg.freqGhz * units::giga * cal::flopsPerCuClk;
}

double
PerfModel::computeRate(const NodeConfig &cfg, const KernelProfile &k)
{
    double peak = peakFlops(cfg);
    double cu_scale =
        std::pow(cfg.cus / refCus, k.cuScalingExp - 1.0);
    double f_scale =
        std::pow(cfg.freqGhz / refGhz, k.freqScalingExp - 1.0);
    return peak * k.computeEfficiency * cu_scale * f_scale;
}

double
PerfModel::contendedBandwidthGbs(const NodeConfig &cfg,
                                 const KernelProfile &k)
{
    // Contention (cache thrash, queueing) builds once the compute
    // demand outruns the bandwidth the kernel can actually consume:
    // provisioned bandwidth beyond the kernel's saturation point does
    // not relieve it, but reducing CU-count x frequency does (this is
    // what makes Table II's memory-intensive optima pick fewer CUs).
    double usable = std::min(cfg.bwTbs, k.maxBandwidthTbs) * 1000.0;
    double opb_eff = cfg.cus * cfg.freqGhz / usable;
    double over = std::max(0.0, opb_eff - k.contentionKnee);
    double factor = 1.0 + k.contentionAlpha * over * over;
    // Thrash saturates: a fully congested memory system still moves a
    // fraction of its bandwidth (row-buffer and MSHR recycling).
    return usable / std::min(factor, cal::maxContentionFactor);
}

double
PerfModel::memoryRate(double eff_bw_gbs, const KernelProfile &k)
{
    return eff_bw_gbs * units::giga * k.arithmeticIntensity;
}

double
PerfModel::externalRateGbs(const NodeConfig &cfg, const KernelProfile &k)
{
    double eff_mlp = k.memLevelParallelism * (1.0 - k.latencySensitivity);
    double rt_latency_s =
        (cal::inPkgLatencyNs + cal::extMemLatencyNs) * units::nano;
    double littles_gbs =
        cfg.cus * eff_mlp * cal::memAccessBytes / rt_latency_s /
        units::giga;
    return std::min(cfg.ext.aggregateGbs(), littles_gbs);
}

Activity
PerfModel::makeActivity(const NodeConfig &cfg, const KernelProfile &k,
                        double flops, double peak) const
{
    Activity a;
    a.cuUtilization = clamp(flops / peak, 0.0, 1.0);
    a.cuIdleActivity = k.cuIdleActivity;
    double traffic_gbs =
        std::min(flops / k.arithmeticIntensity / units::giga,
                 cfg.bwTbs * 1000.0);
    a.inPkgTrafficGbs = traffic_gbs;
    a.extTrafficGbs = k.extTrafficFraction * traffic_gbs;
    a.nocTrafficGbs = traffic_gbs * nocAmplification *
                      (1.0 + 0.5 * k.sharedFraction);
    a.writeFraction = k.writeFraction;
    a.compressRatio = k.compressRatio;
    a.cpuActivity = 0.25;
    return a;
}

PerfResult
PerfModel::evaluate(const NodeConfig &cfg, const KernelProfile &k) const
{
    cfg.validate();

    PerfResult r;
    r.peakFlops = peakFlops(cfg);
    r.opsPerByte = cfg.opsPerByte();
    r.computeRate = computeRate(cfg, k);

    // contendedBandwidthGbs() already folds in the kernel's
    // sustainable-traffic ceiling (Figs. 4-6: curves cluster once
    // provisioned bandwidth exceeds it).
    double eff_bw = contendedBandwidthGbs(cfg, k);
    r.memoryRate = memoryRate(eff_bw, k);

    r.flops = smoothMin(r.computeRate, r.memoryRate, rooflineNorm);
    r.memoryBound = r.memoryRate < r.computeRate;
    r.trafficGbs =
        std::min(r.flops / k.arithmeticIntensity / units::giga,
                 cfg.bwTbs * 1000.0);
    r.activity = makeActivity(cfg, k, r.flops, r.peakFlops);
    return r;
}

double
PerfModel::evaluateWithMissRate(const NodeConfig &cfg,
                                const KernelProfile &k,
                                double miss_frac) const
{
    ENA_ASSERT(miss_frac >= 0.0 && miss_frac <= 1.0,
               "miss fraction must be in [0,1], got ", miss_frac);
    cfg.validate();

    double c = computeRate(cfg, k);

    // In-package service rate (as in evaluate()).
    double b_in = contendedBandwidthGbs(cfg, k);

    // External service rate: SerDes bandwidth or the latency-hiding
    // limit, whichever is lower — and never better than the in-package
    // path, which external data must still traverse.
    double b_ext = std::min(externalRateGbs(cfg, k), b_in);

    // Weighted-harmonic effective bandwidth: each byte takes
    // (1-m)/b_in + m/b_ext seconds per GB.
    double inv = (1.0 - miss_frac) / b_in + miss_frac / b_ext;
    double eff_bw = 1.0 / inv;
    double m = memoryRate(eff_bw, k);

    return smoothMin(c, m, rooflineNorm);
}

} // namespace ena

/**
 * @file
 * Umbrella header and convenience facade for ena-sim's analytic stack.
 *
 * Typical use (see examples/quickstart.cc):
 *
 *   ena::NodeEvaluator eval;
 *   auto r = eval.evaluate(ena::NodeConfig::bestMean(),
 *                          ena::App::LULESH);
 *   std::cout << r.teraflops() << " TF at "
 *             << r.power.total() << " W\n";
 */

#ifndef ENA_CORE_ENA_HH
#define ENA_CORE_ENA_HH

#include "common/activity.hh"
#include "common/calibration.hh"
#include "common/node_config.hh"
#include "core/dse.hh"
#include "core/node_evaluator.hh"
#include "core/perf_model.hh"
#include "core/studies.hh"
#include "power/node_power.hh"
#include "power/optimizations.hh"
#include "workloads/kernel_profile.hh"

namespace ena {

/** Library version string. */
const char *versionString();

/**
 * The optimized best-mean configuration (with all Section V-E power
 * optimizations) as found by the DSE on the paper grid. Computed once
 * and cached.
 */
NodeConfig optimizedBestMean(const NodeEvaluator &eval);

/**
 * The baseline best-mean configuration as found by the DSE on the paper
 * grid (expected: 320 CUs / 1 GHz / 3 TB/s). Computed once and cached.
 */
NodeConfig discoveredBestMean(const NodeEvaluator &eval);

} // namespace ena

#endif // ENA_CORE_ENA_HH

/**
 * @file
 * The paper's node-level studies, packaged as reusable drivers:
 *
 *  - MissRateStudy      (Fig. 8): performance vs in-package miss rate
 *  - ExternalMemoryStudy(Fig. 9): power breakdown, DRAM-only vs hybrid
 *  - OpbSweepStudy  (Figs. 4-6): perf vs ops-per-byte, per bandwidth
 *  - ExascaleProjector (Fig. 14): node -> 100,000-node system scaling
 *  - PerfPerWattStudy  (Fig. 13): efficiency gain from power opts
 */

#ifndef ENA_CORE_STUDIES_HH
#define ENA_CORE_STUDIES_HH

#include <string>
#include <vector>

#include "common/node_config.hh"
#include "core/eval_memo.hh"
#include "core/node_evaluator.hh"
#include "workloads/kernel_profile.hh"

namespace ena {

// --------------------------------------------------------------------
// Fig. 4-6: performance as bandwidth and CU frequency / CU count vary.
// --------------------------------------------------------------------

/** One point of an ops-per-byte sweep curve. */
struct OpbPoint
{
    NodeConfig cfg;
    double opsPerByte = 0.0;
    double normPerf = 0.0;   ///< normalized to the best-mean config
};

/** One bandwidth's curve. */
struct OpbCurve
{
    double bwTbs = 0.0;
    std::vector<OpbPoint> points;
};

class OpbSweepStudy
{
  public:
    OpbSweepStudy(const NodeEvaluator &eval, NodeConfig best_mean);

    /**
     * Sub-figure (a): fix the CU count at the best-mean value and sweep
     * GPU frequency over @p freqs for each bandwidth in @p bws.
     */
    std::vector<OpbCurve> sweepFrequency(
        App app, const std::vector<double> &bws,
        const std::vector<double> &freqs) const;

    /**
     * Sub-figure (b): fix the frequency at the best-mean value and
     * sweep CU count over @p cus for each bandwidth in @p bws.
     */
    std::vector<OpbCurve> sweepCuCount(App app,
                                       const std::vector<double> &bws,
                                       const std::vector<int> &cus) const;

    /** The paper's bandwidth series: 1, 3, 4, 5, 6, 7 TB/s. */
    static std::vector<double> paperBandwidths();

  private:
    const NodeEvaluator &eval_;
    NodeConfig bestMean_;
    mutable EvalMemoCache memo_;   ///< shared across this study's sweeps
};

// --------------------------------------------------------------------
// Fig. 8: in-package DRAM miss-rate sensitivity.
// --------------------------------------------------------------------

struct MissRatePoint
{
    double missRate = 0.0;
    double normPerf = 0.0;   ///< relative to zero misses
};

struct MissRateSeries
{
    App app;
    std::vector<MissRatePoint> points;
};

class MissRateStudy
{
  public:
    MissRateStudy(const NodeEvaluator &eval, NodeConfig cfg);

    /** Curves for all applications at rates {0, 0.2, ..., 1.0}. */
    std::vector<MissRateSeries> run() const;

    /** One application at arbitrary rates. */
    MissRateSeries run(App app, const std::vector<double> &rates) const;

  private:
    const NodeEvaluator &eval_;
    NodeConfig cfg_;
};

// --------------------------------------------------------------------
// Fig. 9: external-memory configuration power comparison.
// --------------------------------------------------------------------

/** One stacked bar of Fig. 9. */
struct ExtMemBar
{
    App app;
    std::string configName;  ///< "3D DRAM only" / "3D DRAM + NVM"
    PowerBreakdown power;
};

class ExternalMemoryStudy
{
  public:
    ExternalMemoryStudy(const NodeEvaluator &eval, NodeConfig cfg);

    /** All apps x {DRAM-only, hybrid}. */
    std::vector<ExtMemBar> run() const;

  private:
    const NodeEvaluator &eval_;
    NodeConfig cfg_;
};

// --------------------------------------------------------------------
// Fig. 13: performance-per-watt improvement from power optimizations.
// --------------------------------------------------------------------

struct PerfPerWattRow
{
    App app;
    double basePerfPerWatt = 0.0;  ///< no-opt best-mean config
    double optPerfPerWatt = 0.0;   ///< optimized best-mean config
    double improvementPct = 0.0;
};

class PerfPerWattStudy
{
  public:
    PerfPerWattStudy(const NodeEvaluator &eval, NodeConfig base_cfg,
                     NodeConfig opt_cfg);

    std::vector<PerfPerWattRow> run() const;

  private:
    const NodeEvaluator &eval_;
    NodeConfig baseCfg_;
    NodeConfig optCfg_;
};

// --------------------------------------------------------------------
// Fig. 14: exascale system projection.
// --------------------------------------------------------------------

struct ExascalePoint
{
    int cus = 0;
    double systemExaflops = 0.0;
    double systemMw = 0.0;
};

class ExascaleProjector
{
  public:
    explicit ExascaleProjector(const NodeEvaluator &eval,
                               int nodes = 100000);

    /**
     * Fig. 14's sweep: MaxFlops at 1 GHz / 1 TB/s while varying the CU
     * count. System power counts the processor package (the paper's
     * peak-compute scenario excludes external-memory components).
     */
    std::vector<ExascalePoint> sweepCus(const std::vector<int> &cus) const;

    /** One node config + app -> system exaflops. */
    double systemExaflops(const NodeConfig &cfg, App app) const;

    /** One node config + app -> system megawatts (package scope). */
    double systemMw(const NodeConfig &cfg, App app) const;

    /**
     * Projection from an already-evaluated node result: lets callers
     * holding an EvalResult (e.g. ClusterEvaluator) project without a
     * redundant node evaluation; identical bits to the (cfg, app)
     * overloads for the matching result.
     */
    double
    systemExaflops(const EvalResult &r) const
    {
        return r.perf.flops * nodes_ / 1e18;
    }

    double
    systemMw(const EvalResult &r) const
    {
        return r.power.packagePower() * nodes_ / 1e6;
    }

    int nodes() const { return nodes_; }

  private:
    const NodeEvaluator &eval_;
    int nodes_;
    mutable EvalMemoCache memo_;   ///< dedupes repeated projections
};

} // namespace ena

#endif // ENA_CORE_STUDIES_HH

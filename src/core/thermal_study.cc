#include "core/thermal_study.hh"

#include "telemetry/telemetry.hh"
#include "util/logging.hh"

namespace ena {

ThermalStudy::ThermalStudy(const NodeEvaluator &eval,
                           EhpPackageModel model)
    : eval_(eval), model_(std::move(model))
{
}

double
ThermalStudy::peakDramC(const NodeConfig &cfg, App app) const
{
    EvalResult r = eval_.evaluate(cfg, app);
    return model_.solve(cfg, r.power).peakDramC;
}

std::vector<ThermalRow>
ThermalStudy::run(const NodeConfig &best_mean,
                  const std::vector<TableIIRow> &table2) const
{
    ENA_SPAN("thermal", "fig10_study");
    std::vector<ThermalRow> rows;
    for (App app : allApps()) {
        ThermalRow row;
        row.app = app;
        row.bestMeanPeakC = peakDramC(best_mean, app);
        bool found = false;
        for (const TableIIRow &t : table2) {
            if (t.app == app) {
                row.bestPerAppConfig = t.bestConfig;
                row.bestPerAppPeakC = peakDramC(t.bestConfig, app);
                found = true;
            }
        }
        if (!found)
            ENA_FATAL("table II rows missing app ", appName(app));
        rows.push_back(row);
    }
    return rows;
}

std::string
ThermalStudy::heatMap(const NodeConfig &cfg, App app) const
{
    EvalResult r = eval_.evaluate(cfg, app);
    return model_.heatMap(cfg, r.power);
}

} // namespace ena

/**
 * @file
 * Cycle-level two-level memory study (paper Sections II-B3 / V-B).
 *
 * Builds the event-driven EHP with the software-managed MemoryManager
 * and the external-memory network wired behind the chiplet L2s, then
 * shrinks the in-package capacity relative to the kernel's footprint.
 * The achieved miss rate and the runtime cost emerge from the
 * simulation — a cross-check of the analytic Fig. 8 model from below.
 */

#ifndef ENA_CORE_TWOLEVEL_STUDY_HH
#define ENA_CORE_TWOLEVEL_STUDY_HH

#include <cstdint>
#include <vector>

#include "mem/memory_manager.hh"
#include "workloads/kernel_profile.hh"

namespace ena {

struct TwoLevelParams
{
    int gpuChiplets = 8;
    int cusPerChiplet = 4;
    int wavefrontsPerCu = 4;
    std::uint64_t memOpsPerWavefront = 500;
    double aggregateBwGbs = 400.0;
    std::uint64_t privateBytesPerWf = 1ull << 20;
    std::uint64_t sharedBytes = 32ull << 20;
    std::uint64_t seed = 21;
    /** Management policy for the in-package level (Section II-B3). */
    MemMode mode = MemMode::SoftwareManaged;
};

/** One capacity point's outcome. */
struct TwoLevelPoint
{
    double capacityFraction = 0.0;   ///< in-package / footprint
    double achievedMissRate = 0.0;   ///< post-L2 accesses off-package
    double runtimeUs = 0.0;
    double normPerf = 0.0;           ///< vs the all-in-package run
};

class TwoLevelStudy
{
  public:
    TwoLevelStudy() = default;

    /** Run one capacity point. */
    TwoLevelPoint run(App app, const TwoLevelParams &params,
                      double capacity_fraction) const;

    /** Sweep capacity fractions (normalized to the first entry). */
    std::vector<TwoLevelPoint> sweep(
        App app, const TwoLevelParams &params,
        const std::vector<double> &fractions) const;
};

} // namespace ena

#endif // ENA_CORE_TWOLEVEL_STUDY_HH

/**
 * @file
 * Analytic GPU performance model (the paper's "high-level simulator").
 *
 * For a node configuration H = (CU count, frequency, bandwidth) and a
 * kernel profile K, the model combines:
 *
 *  - a compute rate C = peak(H) * K.computeEfficiency scaled by the
 *    kernel's CU-count and frequency scaling exponents (the paper's
 *    GPGPU-scaling taxonomy [43]: kernels scale differently with CUs
 *    than with frequency),
 *  - a memory rate M = AI * min(bw_contended, latency-hiding cap), where
 *    bw_contended models cache thrash / network contention past the
 *    kernel's ops-per-byte knee (the Fig. 6 degradation) and the cap is
 *    a Little's-law limit from per-CU memory-level parallelism,
 *  - a smooth minimum of the two, giving the rounded roofline knees of
 *    the paper's Figs. 4-6.
 *
 * The same model evaluates the two-level-memory miss-rate study (Fig. 8)
 * by splitting traffic between in-package DRAM and the external network.
 */

#ifndef ENA_CORE_PERF_MODEL_HH
#define ENA_CORE_PERF_MODEL_HH

#include "common/activity.hh"
#include "common/node_config.hh"
#include "workloads/kernel_profile.hh"

namespace ena {

/** Outcome of one (config, kernel) performance evaluation. */
struct PerfResult
{
    double flops = 0.0;         ///< achieved flops/s
    double computeRate = 0.0;   ///< compute roofline C (flops/s)
    double memoryRate = 0.0;    ///< memory roofline M (flops/s)
    double peakFlops = 0.0;     ///< n_cu * f * flops_per_cu_clk
    double trafficGbs = 0.0;    ///< achieved DRAM traffic
    double opsPerByte = 0.0;    ///< the paper's x-axis
    bool memoryBound = false;   ///< M < C

    /** Activity vector for the power model. */
    Activity activity;
};

class PerfModel
{
  public:
    PerfModel() = default;

    /** Evaluate one kernel on one hardware configuration. */
    PerfResult evaluate(const NodeConfig &cfg,
                        const KernelProfile &k) const;

    /**
     * Performance with a fraction @p miss_frac of memory requests
     * serviced by the external-memory network instead of in-package
     * DRAM (Fig. 8; the paper calls these "misses" without using the
     * in-package DRAM as a hardware cache).
     *
     * @return absolute achieved flops/s at the given miss fraction.
     */
    double evaluateWithMissRate(const NodeConfig &cfg,
                                const KernelProfile &k,
                                double miss_frac) const;

    /** Peak flops of a configuration (no efficiency losses). */
    static double peakFlops(const NodeConfig &cfg);

    /** Contention-degraded in-package bandwidth (GB/s). */
    static double contendedBandwidthGbs(const NodeConfig &cfg,
                                        const KernelProfile &k);

    /**
     * Little's-law sustainable external-memory rate (GB/s): outstanding
     * lines per CU (derated by latency sensitivity — irregular kernels
     * cannot keep their full MLP in flight on long-latency paths)
     * divided by the round-trip external latency.
     */
    static double externalRateGbs(const NodeConfig &cfg,
                                  const KernelProfile &k);

  private:
    /** Compute roofline including the scaling-taxonomy exponents. */
    static double computeRate(const NodeConfig &cfg,
                              const KernelProfile &k);

    /** Memory roofline for a given effective bandwidth. */
    static double memoryRate(double eff_bw_gbs, const KernelProfile &k);

    /** Fill the Activity vector from an achieved performance point. */
    Activity makeActivity(const NodeConfig &cfg, const KernelProfile &k,
                          double flops, double peak) const;
};

} // namespace ena

#endif // ENA_CORE_PERF_MODEL_HH

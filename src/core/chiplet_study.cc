#include "core/chiplet_study.hh"

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "cpu/cpu_cluster.hh"
#include "gpu/compute_unit.hh"
#include "gpu/dispatcher.hh"
#include "gpu/gpu_chiplet.hh"
#include "gpu/mem_stack_endpoint.hh"
#include "mem/address_map.hh"
#include "mem/hbm_stack.hh"
#include "noc/crossbar_network.hh"
#include "noc/detailed_network.hh"
#include "noc/interposer_network.hh"
#include "noc/topology.hh"
#include "sim/simulation.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/thread_pool.hh"

#include <iostream>

namespace ena {

ChipletStudyParams
ChipletStudyParams::forApp(App app)
{
    ChipletStudyParams p;
    switch (app) {
      case App::XSBench:
        // Giant shared lookup tables, random access: no useful NUMA
        // placement, large footprint.
        p.localPlacementFrac = 0.0;
        p.privateBytesPerWf = 2ull << 20;
        p.sharedBytes = 512ull << 20;
        break;
      case App::SNAP:
        // Structured sweeps: per-rank buffers place well and cache well.
        p.localPlacementFrac = 0.45;
        p.privateBytesPerWf = 1ull << 10;
        p.sharedBytes = 32ull << 20;
        break;
      case App::CoMD:
      case App::CoMDLJ:
        p.localPlacementFrac = 0.15;
        p.privateBytesPerWf = 256ull << 10;
        p.sharedBytes = 128ull << 20;
        break;
      case App::LULESH:
        p.localPlacementFrac = 0.10;
        p.privateBytesPerWf = 1ull << 20;
        p.sharedBytes = 256ull << 20;
        break;
      case App::MiniAMR:
        p.localPlacementFrac = 0.20;
        p.privateBytesPerWf = 512ull << 10;
        p.sharedBytes = 128ull << 20;
        break;
      case App::HPGMG:
        p.localPlacementFrac = 0.20;
        p.privateBytesPerWf = 256ull << 10;
        p.sharedBytes = 128ull << 20;
        break;
      case App::MaxFlops:
        p.localPlacementFrac = 0.25;
        p.privateBytesPerWf = 32ull << 10;
        p.sharedBytes = 16ull << 20;
        break;
    }
    return p;
}

ChipletRunResult
ChipletStudy::run(App app, const ChipletStudyParams &params,
                  bool monolithic) const
{
    const KernelProfile &profile = profileFor(app);
    Simulation sim;

    // Domain layout when sharded: 0 = hub (network, dispatcher, CPU
    // clusters), 1 + i = GPU chiplet i with its CUs, HBM stack, and
    // stack endpoint. The chiplet-local TSV fast path never leaves a
    // domain; every interposer crossing is a cross-domain channel.
    const bool sharded = !monolithic && params.domains > 1;
    if (sharded) {
        sim.setDomains(1 + params.gpuChiplets);
        sim.setSerialWindows(params.serialWindows);
    }
    auto domainOf = [&](int chiplet) { return sharded ? 1 + chiplet : 0; };

    Topology topo = Topology::ehp(params.gpuChiplets, params.cpuClusters);

    Network *network = nullptr;
    if (monolithic) {
        CrossbarParams xp;
        xp.latencyCycles = 3;
        xp.aggregateBytesPerCycle = 2048.0;  // capacity-rich on-die fabric
        network = sim.create<CrossbarNetwork>("xbar", topo.nodes().size(),
                                              xp);
    } else if (params.detailedNoc) {
        DetailedParams dn;
        dn.routerCycles = 2;
        dn.linkCycles = 1;
        dn.tsvCycles = 1;
        dn.linkBytesPerCycle = 256;
        network = sim.create<DetailedNetwork>("noc", topo, dn);
        if (sharded)
            sim.setLookahead(dn.tsvCycles * dn.cycle());
    } else {
        InterposerParams ip;
        ip.routerCycles = 2;
        ip.linkCycles = 1;
        ip.tsvCycles = 1;
        ip.linkBytesPerCycle = 256;
        network = sim.create<InterposerNetwork>("noc", topo, ip);
        if (sharded)
            sim.setLookahead(ip.tsvCycles * ip.cycle());
    }

    // Address layout: shared region at 0, per-chiplet private arenas
    // above 1 GiB (see Dispatcher).
    DispatchParams dp;
    dp.wavefrontsPerCu = params.wavefrontsPerCu;
    dp.privateBytesPerWf = params.privateBytesPerWf;
    dp.sharedBytes = params.sharedBytes;
    dp.seed = params.seed;
    auto *dispatcher =
        sim.create<Dispatcher>("dispatch", profile, dp);

    AddressMap addr_map(params.gpuChiplets);
    for (int c = 0; c < params.gpuChiplets; ++c) {
        addr_map.addRegion(dispatcher->chipletArenaBase(c),
                           dispatcher->chipletArenaSize(c), c,
                           params.localPlacementFrac);
    }

    // Memory stacks + their network endpoints.
    HbmParams hbm = HbmParams::forAggregateBandwidth(
        params.aggregateBwGbs, params.gpuChiplets);
    std::vector<HbmStack *> stacks;
    for (int i = 0; i < params.gpuChiplets; ++i) {
        Simulation::DomainScope scope(sim, domainOf(i));
        auto *stack =
            sim.create<HbmStack>(strformat("hbm%d", i), hbm);
        stacks.push_back(stack);
        NodeId node = topo.nodeOf(NodeKind::MemStack, i);
        sim.create<MemStackEndpoint>(strformat("hbm%d.port", i), node,
                                     *stack, *network);
    }

    // GPU chiplets and CUs.
    GpuChipletParams gp;
    gp.monolithic = monolithic;
    std::vector<GpuChiplet *> chiplets;
    for (int i = 0; i < params.gpuChiplets; ++i) {
        Simulation::DomainScope scope(sim, domainOf(i));
        NodeId node = topo.nodeOf(NodeKind::GpuChiplet, i);
        auto *chiplet = sim.create<GpuChiplet>(
            strformat("gpu%d", i), i, node, gp, addr_map, *network);
        chiplet->setLocalStack(i, stacks[i]);
        for (int s = 0; s < params.gpuChiplets; ++s) {
            chiplet->setStackNode(
                s, topo.nodeOf(NodeKind::MemStack, s));
        }
        chiplets.push_back(chiplet);

        ComputeUnitParams cp;
        cp.wavefrontSlots = params.wavefrontsPerCu;
        // Latency tolerance follows the kernel's measured MLP derated
        // by its latency sensitivity (irregular kernels keep fewer
        // misses in flight), spread across the wavefront slots.
        double eff_mlp = profile.memLevelParallelism *
                         (1.0 - profile.latencySensitivity);
        cp.maxOutstandingPerWf = std::max(
            params.maxOutstandingPerWf,
            static_cast<int>(eff_mlp / params.wavefrontsPerCu + 0.5));
        cp.memOpsPerWavefront = params.memOpsPerWavefront;
        for (int c = 0; c < params.cusPerChiplet; ++c) {
            auto *cu = sim.create<ComputeUnit>(
                strformat("gpu%d.cu%d", i, c), *chiplet, cp);
            dispatcher->assign(*cu, i);
        }
    }

    // CPU clusters (orchestration traffic into the shared region).
    std::vector<CpuCluster *> cpus;
    if (params.cpuTraffic) {
        for (int i = 0; i < params.cpuClusters; ++i) {
            CpuClusterParams cc;
            cc.sharedBase = 0;
            cc.sharedSize = params.sharedBytes;
            cc.seed = params.seed + 77 + i;
            NodeId node = topo.nodeOf(NodeKind::CpuCluster, i);
            auto *cpu = sim.create<CpuCluster>(
                strformat("cpu%d", i), node, cc, addr_map, *network);
            for (int s = 0; s < params.gpuChiplets; ++s) {
                cpu->setStackNode(
                    s, topo.nodeOf(NodeKind::MemStack, s));
            }
            cpus.push_back(cpu);
        }
    }

    // Run in slices until the kernel drains.
    sim.initAll();
    const Tick slice = 100 * tickPerUs;
    const int max_slices = 10000;
    int s = 0;
    for (; s < max_slices && !dispatcher->allDone(); ++s) {
        std::uint64_t ran = sim.run(sim.curTick() + slice);
        if (ran == 0 && !dispatcher->allDone())
            ENA_FATAL("chiplet study deadlocked for ", appName(app));
    }
    if (!dispatcher->allDone())
        ENA_FATAL("chiplet study did not converge for ", appName(app));
    for (CpuCluster *cpu : cpus)
        cpu->quiesce();

    ChipletRunResult r;
    r.runtimeUs = static_cast<double>(dispatcher->finishTick()) /
                  tickPerUs;
    double local = 0.0;
    double remote = 0.0;
    std::uint64_t l2_hits = 0;
    std::uint64_t l2_misses = 0;
    for (GpuChiplet *c : chiplets) {
        local += c->localBytes();
        remote += c->remoteBytes();
        l2_hits += c->l2().hits();
        l2_misses += c->l2().misses();
    }
    r.remoteTrafficFrac =
        (local + remote) > 0.0 ? remote / (local + remote) : 0.0;
    r.l2HitRate =
        l2_hits + l2_misses
            ? static_cast<double>(l2_hits) / (l2_hits + l2_misses)
            : 0.0;
    r.meanHops = network->meanHops();
    r.meanNetLatencyNs = network->meanLatencyNs();
    double row_hits = 0.0;
    double row_total = 0.0;
    for (HbmStack *stack : stacks) {
        row_hits += stack->rowHitRate() * stack->bytesServed();
        row_total += stack->bytesServed();
    }
    r.hbmRowHitRate = row_total > 0.0 ? row_hits / row_total : 0.0;
    r.memOps = 0;
    r.eventsProcessed = 0;
    for (int d = 0; d < sim.numDomains(); ++d)
        r.eventsProcessed += sim.eventsProcessedIn(d);
    if (params.captureStats) {
        std::ostringstream ss;
        sim.stats().dump(ss);
        r.statsDump = ss.str();
    }

    if (params.dumpStats) {
        std::cout << "---------- " << appName(app)
                  << (monolithic ? " (monolithic)" : " (chiplet)")
                  << " stats ----------\n";
        sim.stats().dump(std::cout);
    }
    return r;
}

Fig7Row
ChipletStudy::compare(App app, const ChipletStudyParams &params) const
{
    // The chiplet and monolithic runs are independent simulations
    // (each builds its own Simulation and RNG state), so run them
    // concurrently; stat dumps stay serial to keep output readable.
    std::vector<ChipletRunResult> results;
    if (params.dumpStats) {
        results.push_back(run(app, params, false));
        results.push_back(run(app, params, true));
    } else {
        results = ThreadPool::global().parallelMap(
            2, [&](std::size_t i) { return run(app, params, i == 1); });
    }
    Fig7Row row;
    row.app = app;
    row.chiplet = results[0];
    row.monolithic = results[1];
    row.remoteTrafficPct = row.chiplet.remoteTrafficFrac * 100.0;
    row.perfVsMonolithicPct =
        row.monolithic.runtimeUs / row.chiplet.runtimeUs * 100.0;
    return row;
}

Fig7Row
ChipletStudy::compare(App app) const
{
    return compare(app, ChipletStudyParams::forApp(app));
}

std::vector<Fig7Row>
ChipletStudy::compareAll(const std::vector<App> &apps, int domains) const
{
    // One task per (app, mode) pair: all simulations are independent,
    // and per-app results assemble in index order afterwards.
    std::vector<ChipletRunResult> runs = ThreadPool::global().parallelMap(
        2 * apps.size(), [&](std::size_t i) {
            App app = apps[i / 2];
            ChipletStudyParams p = ChipletStudyParams::forApp(app);
            p.domains = domains;
            return run(app, p, i % 2 == 1);
        });
    std::vector<Fig7Row> rows(apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
        Fig7Row &row = rows[a];
        row.app = apps[a];
        row.chiplet = runs[2 * a];
        row.monolithic = runs[2 * a + 1];
        row.remoteTrafficPct = row.chiplet.remoteTrafficFrac * 100.0;
        row.perfVsMonolithicPct =
            row.monolithic.runtimeUs / row.chiplet.runtimeUs * 100.0;
    }
    return rows;
}

} // namespace ena

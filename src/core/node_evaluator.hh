/**
 * @file
 * Combined performance + power evaluation of one ENA node configuration
 * for one application: the unit of work for every study and the DSE.
 */

#ifndef ENA_CORE_NODE_EVALUATOR_HH
#define ENA_CORE_NODE_EVALUATOR_HH

#include <vector>

#include "common/node_config.hh"
#include "core/eval_batch.hh"
#include "core/perf_model.hh"
#include "power/node_power.hh"
#include "workloads/kernel_profile.hh"

namespace ena {

class EvalMemoCache;

/** Perf and power of one (config, application) pair. */
struct EvalResult
{
    App app;
    PerfResult perf;
    PowerBreakdown power;

    double teraflops() const { return perf.flops / 1e12; }
    double perfPerWatt() const { return perf.flops / power.total(); }
};

class NodeEvaluator
{
  public:
    NodeEvaluator() = default;

    /** Evaluate one application on one configuration. */
    EvalResult evaluate(const NodeConfig &cfg, App app) const;

    /**
     * Scalar evaluation through a sweep-level memo cache: identical
     * bits to evaluate() (hits return previously computed results,
     * misses compute through the same models and remember them).
     */
    EvalResult evaluateMemo(const NodeConfig &cfg, App app,
                            EvalMemoCache &memo) const;

    /**
     * Batch hot path: score every point of @p batch for one
     * application. Bit-identical to calling evaluate() per point (the
     * scalar path is the reference oracle). @p memo, when given, is a
     * sweep-level cache shared across batches and threads.
     */
    BatchEvalResult evaluateBatch(const NodeConfigBatch &batch, App app,
                                  EvalMemoCache *memo = nullptr) const;

    /**
     * Score every point of @p batch across all Table I applications
     * and assemble the DSE aggregates; element i is bit-identical to
     * geomeanFlops/meanBudgetPower/maxBudgetPower of batch.at(i).
     */
    BatchAggregates evaluateBatchAll(const NodeConfigBatch &batch,
                                     EvalMemoCache *memo = nullptr) const;

    /** Evaluate every Table I application on one configuration. */
    std::vector<EvalResult> evaluateAll(const NodeConfig &cfg) const;

    /**
     * Budget-scope power (package + provisioned external static power)
     * averaged over all applications.
     */
    double meanBudgetPower(const NodeConfig &cfg) const;

    /**
     * Worst-case budget-scope power across all applications — the
     * quantity held under the paper's 160 W node budget: a
     * configuration is only acceptable if no application can pull the
     * node over budget.
     */
    double maxBudgetPower(const NodeConfig &cfg) const;

    /** Geometric-mean achieved flops across all applications. */
    double geomeanFlops(const NodeConfig &cfg) const;

    const PerfModel &perfModel() const { return perfModel_; }
    const NodePowerModel &powerModel() const { return powerModel_; }

  private:
    PerfModel perfModel_;
    NodePowerModel powerModel_;
};

} // namespace ena

#endif // ENA_CORE_NODE_EVALUATOR_HH

#include "core/dse.hh"

#include <algorithm>

#include "common/calibration.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace ena {

DseGrid
DseGrid::paperGrid()
{
    DseGrid g;
    for (int c = 192; c <= cal::maxCusPerNode; c += 32)
        g.cus.push_back(c);
    g.freqsGhz = {0.7, 0.8, 0.9, 0.925, 1.0, 1.1,
                  1.2, 1.3, 1.4, 1.5};
    g.bwsTbs = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
    return g;
}

DesignSpaceExplorer::DesignSpaceExplorer(const NodeEvaluator &eval,
                                         DseGrid grid, double budget_w)
    : eval_(eval), grid_(std::move(grid)), budgetW_(budget_w)
{
    if (grid_.size() == 0)
        ENA_FATAL("empty DSE grid");
}

NodeConfig
DesignSpaceExplorer::configAt(std::size_t index,
                              const PowerOptConfig &opts) const
{
    // Row-major over (cus, freq, bw): the same enumeration order the
    // original serial triple loop used, so index-order reductions
    // reproduce its results exactly.
    const std::size_t nf = grid_.freqsGhz.size();
    const std::size_t nb = grid_.bwsTbs.size();
    NodeConfig cfg;
    cfg.cus = grid_.cus[index / (nf * nb)];
    cfg.freqGhz = grid_.freqsGhz[(index / nb) % nf];
    cfg.bwTbs = grid_.bwsTbs[index % nb];
    cfg.opts = opts;
    return cfg;
}

std::vector<DsePoint>
DesignSpaceExplorer::sweep(const PowerOptConfig &opts) const
{
    // Each grid point is independent; workers fill their own slots and
    // no reduction happens here, so the output is identical to the
    // serial enumeration for any thread count.
    return ThreadPool::global().parallelMap(
        grid_.size(), [&](std::size_t i) {
            DsePoint p;
            p.cfg = configAt(i, opts);
            p.geomeanFlops = eval_.geomeanFlops(p.cfg);
            p.meanBudgetPowerW = eval_.meanBudgetPower(p.cfg);
            p.maxBudgetPowerW = eval_.maxBudgetPower(p.cfg);
            p.feasible = p.maxBudgetPowerW <= budgetW_;
            return p;
        });
}

NodeConfig
DesignSpaceExplorer::findBestMean(const PowerOptConfig &opts) const
{
    // Score in parallel, pick the winner in index order on the caller
    // (same strict-greater tie-breaking as the old serial loop).
    std::vector<DsePoint> points = sweep(opts);
    const DsePoint *best = nullptr;
    for (const DsePoint &p : points) {
        if (!p.feasible)
            continue;
        if (!best || p.geomeanFlops > best->geomeanFlops)
            best = &p;
    }
    if (!best)
        ENA_FATAL("no feasible configuration under ", budgetW_,
                  " W budget");
    return best->cfg;
}

AppBest
DesignSpaceExplorer::findBestForApp(App app,
                                    const PowerOptConfig &opts) const
{
    struct Scored
    {
        double flops = 0.0;
        double budgetPowerW = 0.0;
    };
    std::vector<Scored> scores = ThreadPool::global().parallelMap(
        grid_.size(), [&](std::size_t i) {
            EvalResult r = eval_.evaluate(configAt(i, opts), app);
            return Scored{r.perf.flops, r.power.budgetPower()};
        });

    std::optional<AppBest> best;
    for (std::size_t i = 0; i < scores.size(); ++i) {
        if (scores[i].budgetPowerW > budgetW_)
            continue;
        if (!best || scores[i].flops > best->flops) {
            best = AppBest{configAt(i, opts), scores[i].flops,
                           scores[i].budgetPowerW};
        }
    }
    if (!best)
        ENA_FATAL("no feasible configuration for ", appName(app));
    return *best;
}

std::vector<TableIIRow>
DesignSpaceExplorer::tableII(const NodeConfig &best_mean) const
{
    // One task per application row; the nested findBestForApp sweeps
    // run inline on whichever thread owns the row.
    const std::vector<App> &apps = allApps();
    return ThreadPool::global().parallelMap(
        apps.size(), [&](std::size_t i) {
            App app = apps[i];
            TableIIRow row;
            row.app = app;

            double base = eval_.evaluate(best_mean, app).perf.flops;

            AppBest no_opt = findBestForApp(app, PowerOptConfig::none());
            row.bestConfig = no_opt.cfg;
            row.benefitNoOptPct = (no_opt.flops / base - 1.0) * 100.0;

            AppBest with_opt = findBestForApp(app, PowerOptConfig::all());
            row.bestConfigOpt = with_opt.cfg;
            row.benefitWithOptPct =
                (with_opt.flops / base - 1.0) * 100.0;

            return row;
        });
}

} // namespace ena

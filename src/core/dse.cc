#include "core/dse.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/calibration.hh"
#include "telemetry/metrics.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/thread_pool.hh"

namespace ena {

namespace {

telemetry::Counter &
configsCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "dse.configs_evaluated",
        "grid points scored across all DSE sweeps and searches");
    return c;
}

telemetry::Counter &
failedCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "sweep.configs_failed",
        "grid points quarantined instead of evaluated");
    return c;
}

/** Stable bitmask of the power-opt toggles, for journal keys. */
int
optsBits(const PowerOptConfig &o)
{
    return powerOptBits(o);
}

/**
 * Points per batch: large enough that the per-batch term caches
 * amortize (each batch pays one pow() per distinct axis value it
 * touches), small enough that every worker gets several batches.
 */
std::size_t
batchChunkSize(std::size_t n, int threads)
{
    std::size_t per_thread =
        n / (static_cast<std::size_t>(threads) * 4);
    return std::clamp<std::size_t>(per_thread, 32, 4096);
}

/**
 * Journal payload for one DsePoint. Doubles travel as hexfloats so a
 * resumed sweep reproduces the uninterrupted table bit-for-bit; the
 * config itself is not stored (the key pins index, label, and opts).
 */
std::string
encodeDsePoint(const DsePoint &p)
{
    std::ostringstream os;
    os << strformat("%a %a %a %d %d ", p.geomeanFlops,
                    p.meanBudgetPowerW, p.maxBudgetPowerW,
                    p.feasible ? 1 : 0, p.ok ? 1 : 0);
    os << p.error;
    return os.str();
}

bool
decodeDsePoint(const std::string &payload, DsePoint *p)
{
    std::istringstream is(payload);
    int feasible = 0, ok = 0;
    std::string g, m, x;
    if (!(is >> g >> m >> x >> feasible >> ok))
        return false;
    char *end = nullptr;
    p->geomeanFlops = std::strtod(g.c_str(), &end);
    if (end == g.c_str() || *end)
        return false;
    p->meanBudgetPowerW = std::strtod(m.c_str(), &end);
    if (end == m.c_str() || *end)
        return false;
    p->maxBudgetPowerW = std::strtod(x.c_str(), &end);
    if (end == x.c_str() || *end)
        return false;
    p->feasible = feasible != 0;
    p->ok = ok != 0;
    is.get();   // the separator before the (possibly empty) error text
    std::getline(is, p->error);
    return true;
}

/** Publish the configs/sec rate of the sweep that just finished. */
void
publishSweepRate(std::size_t n, double t0_us)
{
    if (!telemetry::metricsEnabled())
        return;
    double sec = (telemetry::nowUs() - t0_us) * 1e-6;
    if (sec > 0.0) {
        telemetry::gauge("dse.configs_per_sec",
                         "grid throughput of the most recent DSE sweep")
            .set(static_cast<double>(n) / sec);
    }
}

} // anonymous namespace

DseGrid
DseGrid::paperGrid()
{
    DseGrid g;
    for (int c = 192; c <= cal::maxCusPerNode; c += 32)
        g.cus.push_back(c);
    g.freqsGhz = {0.7, 0.8, 0.9, 0.925, 1.0, 1.1,
                  1.2, 1.3, 1.4, 1.5};
    g.bwsTbs = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
    return g;
}

DesignSpaceExplorer::DesignSpaceExplorer(const NodeEvaluator &eval,
                                         DseGrid grid, double budget_w)
    : eval_(eval), grid_(std::move(grid)), budgetW_(budget_w)
{
    if (grid_.size() == 0)
        ENA_FATAL("empty DSE grid");
}

NodeConfig
DesignSpaceExplorer::configAt(std::size_t index,
                              const PowerOptConfig &opts) const
{
    // Row-major over (cus, freq, bw): the same enumeration order the
    // original serial triple loop used, so index-order reductions
    // reproduce its results exactly.
    const std::size_t nf = grid_.freqsGhz.size();
    const std::size_t nb = grid_.bwsTbs.size();
    NodeConfig cfg;
    cfg.cus = grid_.cus[index / (nf * nb)];
    cfg.freqGhz = grid_.freqsGhz[(index / nb) % nf];
    cfg.bwTbs = grid_.bwsTbs[index % nb];
    cfg.opts = opts;
    return cfg;
}

std::vector<DsePoint>
DesignSpaceExplorer::sweep(const PowerOptConfig &opts) const
{
    auto journal = SweepJournal::openFromEnvironment();
    return sweep(opts, journal.get());
}

std::vector<DsePoint>
DesignSpaceExplorer::sweep(const PowerOptConfig &opts,
                           SweepJournal *journal) const
{
    // Two phases. Phase 1 (serial, cheap): replay journaled points and
    // quarantine invalid configs, collecting the surviving indices.
    // Phase 2: batched evaluation of the survivors on the ThreadPool —
    // chunks become NodeConfigBatches sharing the sweep-level memo
    // cache. Workers fill their own slots and all argmax reductions
    // happen elsewhere in index order, so the output is identical to
    // the serial enumeration for any thread count; with a journal
    // every finished slot also streams to disk so a killed run resumes
    // instead of recomputing.
    ENA_SPAN("dse", "sweep");
    const double t0 = telemetry::nowUs();
    const std::size_t n = grid_.size();
    std::vector<DsePoint> points(n);
    std::vector<std::string> keys(journal ? n : 0);

    std::vector<std::size_t> todo;
    todo.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        DsePoint &p = points[i];
        p.cfg = configAt(i, opts);

        if (journal) {
            keys[i] = strformat("dse[%zu]:%s:o%d", i,
                                p.cfg.label().c_str(), optsBits(opts));
            std::string payload;
            if (journal->lookup(keys[i], &payload)) {
                DsePoint j = p;
                if (decodeDsePoint(payload, &j)) {
                    p = j;
                    continue;
                }
                warn("sweep journal: undecodable payload for '",
                     keys[i], "'; recomputing");
            }
        }

        Status valid = p.cfg.tryValidate();
        if (!valid.ok()) {
            p.ok = false;
            p.error = valid.toString();
            failedCounter().add();
            warn("DSE: quarantined grid point ", i, " (",
                 p.cfg.label(), "): ", p.error);
            if (journal)
                journal->append(keys[i], encodeDsePoint(p));
            continue;
        }
        todo.push_back(i);
    }

    if (!todo.empty()) {
        NodeConfig base;
        base.opts = opts;
        const std::size_t chunk =
            batchChunkSize(todo.size(), ThreadPool::global().threads());
        const std::size_t num_chunks = (todo.size() + chunk - 1) / chunk;
        ThreadPool::global().parallelFor(num_chunks, [&](std::size_t c) {
            telemetry::ScopedSpan span("dse", "evaluate_batch");
            const std::size_t begin = c * chunk;
            const std::size_t end =
                std::min(begin + chunk, todo.size());

            NodeConfigBatch b;
            b.base = base;
            b.reserve(end - begin);
            for (std::size_t j = begin; j < end; ++j) {
                const NodeConfig &cfg = points[todo[j]].cfg;
                b.push(cfg.cus, cfg.freqGhz, cfg.bwTbs);
            }

            try {
                BatchAggregates agg = eval_.evaluateBatchAll(b, &memo_);
                for (std::size_t j = begin; j < end; ++j) {
                    DsePoint &p = points[todo[j]];
                    p.geomeanFlops = agg.geomeanFlops[j - begin];
                    p.meanBudgetPowerW = agg.meanBudgetPowerW[j - begin];
                    p.maxBudgetPowerW = agg.maxBudgetPowerW[j - begin];
                    p.feasible = p.maxBudgetPowerW <= budgetW_;
                    if (journal)
                        journal->append(keys[todo[j]],
                                        encodeDsePoint(p));
                }
            } catch (const std::exception &) {
                // One bad point poisons a whole batch; fall back to
                // per-point scalar evaluation so only the offender is
                // quarantined (same scoring path as the oracle).
                for (std::size_t j = begin; j < end; ++j) {
                    DsePoint &p = points[todo[j]];
                    try {
                        p.geomeanFlops = eval_.geomeanFlops(p.cfg);
                        p.meanBudgetPowerW = eval_.meanBudgetPower(p.cfg);
                        p.maxBudgetPowerW = eval_.maxBudgetPower(p.cfg);
                        p.feasible = p.maxBudgetPowerW <= budgetW_;
                    } catch (const std::exception &e) {
                        std::size_t i = todo[j];
                        p = DsePoint{};
                        p.cfg = configAt(i, opts);
                        p.ok = false;
                        p.error = e.what();
                        failedCounter().add();
                        warn("DSE: quarantined grid point ", i, " (",
                             p.cfg.label(), "): ", p.error);
                    }
                    if (journal)
                        journal->append(keys[todo[j]],
                                        encodeDsePoint(p));
                }
            }
        });
    }

    configsCounter().add(n);
    publishSweepRate(n, t0);
    return points;
}

NodeConfig
DesignSpaceExplorer::findBestMean(const PowerOptConfig &opts) const
{
    // Score in parallel, pick the winner in index order on the caller
    // (same strict-greater tie-breaking as the old serial loop).
    ENA_SPAN("dse", "find_best_mean");
    std::vector<DsePoint> points = sweep(opts);
    const DsePoint *best = nullptr;
    for (const DsePoint &p : points) {
        if (!p.feasible)
            continue;
        if (!best || p.geomeanFlops > best->geomeanFlops)
            best = &p;
    }
    if (!best)
        ENA_FATAL("no feasible configuration under ", budgetW_,
                  " W budget");
    return best->cfg;
}

AppBest
DesignSpaceExplorer::findBestForApp(App app,
                                    const PowerOptConfig &opts) const
{
    telemetry::ScopedSpan span(
        "dse", std::string("find_best_for_app:") + appName(app));
    const std::size_t n = grid_.size();
    std::vector<double> flops(n), budget(n);

    NodeConfig base;
    base.opts = opts;
    const std::size_t chunk =
        batchChunkSize(n, ThreadPool::global().threads());
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    ThreadPool::global().parallelFor(num_chunks, [&](std::size_t c) {
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        NodeConfigBatch b;
        b.base = base;
        b.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
            NodeConfig cfg = configAt(i, opts);
            b.push(cfg.cus, cfg.freqGhz, cfg.bwTbs);
        }
        BatchEvalResult r = eval_.evaluateBatch(b, app, &memo_);
        for (std::size_t i = begin; i < end; ++i) {
            flops[i] = r.flops[i - begin];
            budget[i] = r.budgetPowerW[i - begin];
        }
    });
    configsCounter().add(n);

    std::optional<AppBest> best;
    for (std::size_t i = 0; i < n; ++i) {
        if (budget[i] > budgetW_)
            continue;
        if (!best || flops[i] > best->flops) {
            best = AppBest{configAt(i, opts), flops[i], budget[i]};
        }
    }
    if (!best)
        ENA_FATAL("no feasible configuration for ", appName(app));
    return *best;
}

std::vector<TableIIRow>
DesignSpaceExplorer::tableII(const NodeConfig &best_mean) const
{
    // One task per application row; the nested findBestForApp sweeps
    // run inline on whichever thread owns the row.
    ENA_SPAN("dse", "table2");
    const std::vector<App> &apps = allApps();
    return ThreadPool::global().parallelMap(
        apps.size(), [&](std::size_t i) {
            App app = apps[i];
            telemetry::ScopedSpan span(
                "dse", std::string("table2_row:") + appName(app));
            TableIIRow row;
            row.app = app;

            double base = eval_.evaluate(best_mean, app).perf.flops;

            AppBest no_opt = findBestForApp(app, PowerOptConfig::none());
            row.bestConfig = no_opt.cfg;
            row.benefitNoOptPct = (no_opt.flops / base - 1.0) * 100.0;

            AppBest with_opt = findBestForApp(app, PowerOptConfig::all());
            row.bestConfigOpt = with_opt.cfg;
            row.benefitWithOptPct =
                (with_opt.flops / base - 1.0) * 100.0;

            return row;
        });
}

} // namespace ena

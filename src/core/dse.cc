#include "core/dse.hh"

#include <algorithm>

#include "common/calibration.hh"
#include "util/logging.hh"

namespace ena {

DseGrid
DseGrid::paperGrid()
{
    DseGrid g;
    for (int c = 192; c <= cal::maxCusPerNode; c += 32)
        g.cus.push_back(c);
    g.freqsGhz = {0.7, 0.8, 0.9, 0.925, 1.0, 1.1,
                  1.2, 1.3, 1.4, 1.5};
    g.bwsTbs = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
    return g;
}

DesignSpaceExplorer::DesignSpaceExplorer(const NodeEvaluator &eval,
                                         DseGrid grid, double budget_w)
    : eval_(eval), grid_(std::move(grid)), budgetW_(budget_w)
{
    if (grid_.size() == 0)
        ENA_FATAL("empty DSE grid");
}

template <typename Fn>
void
DesignSpaceExplorer::forEachConfig(const PowerOptConfig &opts,
                                   Fn &&fn) const
{
    for (int c : grid_.cus) {
        for (double f : grid_.freqsGhz) {
            for (double bw : grid_.bwsTbs) {
                NodeConfig cfg;
                cfg.cus = c;
                cfg.freqGhz = f;
                cfg.bwTbs = bw;
                cfg.opts = opts;
                fn(cfg);
            }
        }
    }
}

std::vector<DsePoint>
DesignSpaceExplorer::sweep(const PowerOptConfig &opts) const
{
    std::vector<DsePoint> out;
    out.reserve(grid_.size());
    forEachConfig(opts, [&](const NodeConfig &cfg) {
        DsePoint p;
        p.cfg = cfg;
        p.geomeanFlops = eval_.geomeanFlops(cfg);
        p.meanBudgetPowerW = eval_.meanBudgetPower(cfg);
        p.maxBudgetPowerW = eval_.maxBudgetPower(cfg);
        p.feasible = p.maxBudgetPowerW <= budgetW_;
        out.push_back(p);
    });
    return out;
}

NodeConfig
DesignSpaceExplorer::findBestMean(const PowerOptConfig &opts) const
{
    std::optional<DsePoint> best;
    forEachConfig(opts, [&](const NodeConfig &cfg) {
        double power = eval_.maxBudgetPower(cfg);
        if (power > budgetW_)
            return;
        double perf = eval_.geomeanFlops(cfg);
        if (!best || perf > best->geomeanFlops) {
            best = DsePoint{cfg, perf, eval_.meanBudgetPower(cfg),
                            power, true};
        }
    });
    if (!best)
        ENA_FATAL("no feasible configuration under ", budgetW_,
                  " W budget");
    return best->cfg;
}

AppBest
DesignSpaceExplorer::findBestForApp(App app,
                                    const PowerOptConfig &opts) const
{
    std::optional<AppBest> best;
    forEachConfig(opts, [&](const NodeConfig &cfg) {
        EvalResult r = eval_.evaluate(cfg, app);
        double power = r.power.budgetPower();
        if (power > budgetW_)
            return;
        if (!best || r.perf.flops > best->flops)
            best = AppBest{cfg, r.perf.flops, power};
    });
    if (!best)
        ENA_FATAL("no feasible configuration for ", appName(app));
    return *best;
}

std::vector<TableIIRow>
DesignSpaceExplorer::tableII(const NodeConfig &best_mean) const
{
    std::vector<TableIIRow> rows;
    for (App app : allApps()) {
        TableIIRow row;
        row.app = app;

        double base = eval_.evaluate(best_mean, app).perf.flops;

        AppBest no_opt = findBestForApp(app, PowerOptConfig::none());
        row.bestConfig = no_opt.cfg;
        row.benefitNoOptPct = (no_opt.flops / base - 1.0) * 100.0;

        AppBest with_opt = findBestForApp(app, PowerOptConfig::all());
        row.bestConfigOpt = with_opt.cfg;
        row.benefitWithOptPct = (with_opt.flops / base - 1.0) * 100.0;

        rows.push_back(row);
    }
    return rows;
}

} // namespace ena

#include "core/eval_memo.hh"

#include <algorithm>

#include "telemetry/metrics.hh"

namespace ena {

namespace {

telemetry::Counter &
hitsCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "dse.memo_hits", "node evaluations served from the memo cache");
    return c;
}

telemetry::Counter &
missesCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "dse.memo_misses", "memo-cache lookups that had to recompute");
    return c;
}

telemetry::Counter &
evictionsCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "dse.memo_evictions", "memo-cache shards cleared at capacity");
    return c;
}

} // anonymous namespace

int
powerOptBits(const PowerOptConfig &o)
{
    return (o.ntc << 0) | (o.asyncCu << 1) | (o.asyncRouter << 2) |
           (o.lpLinks << 3) | (o.compression << 4);
}

PerfMemoKey
perfMemoKey(App app, int cus, double freq_ghz, double bw_tbs)
{
    PerfMemoKey k;
    k.app = static_cast<std::int32_t>(app);
    k.cus = cus;
    k.freqBits = bitsOf(freq_ghz);
    k.bwBits = bitsOf(bw_tbs);
    return k;
}

PowerMemoKey
powerMemoKey(App app, const NodeConfig &cfg)
{
    PowerMemoKey k;
    k.app = static_cast<std::int32_t>(app);
    k.cus = cfg.cus;
    k.freqBits = bitsOf(cfg.freqGhz);
    k.bwBits = bitsOf(cfg.bwTbs);
    k.optsBits = powerOptBits(cfg.opts);
    k.gpuChiplets = cfg.gpuChiplets;
    k.extDramGbBits = bitsOf(cfg.ext.dramGb);
    k.extNvmGbBits = bitsOf(cfg.ext.nvmGb);
    k.extDramModuleGbBits = bitsOf(cfg.ext.dramModuleGb);
    k.extNvmModuleGbBits = bitsOf(cfg.ext.nvmModuleGb);
    k.extInterfaces = cfg.ext.interfaces;
    k.extInterfaceGbsBits = bitsOf(cfg.ext.interfaceGbs);
    return k;
}

std::size_t
PerfMemoKeyHash::operator()(const PerfMemoKey &k) const
{
    std::uint64_t h = memoMix(static_cast<std::uint64_t>(k.app) << 32 |
                              static_cast<std::uint32_t>(k.cus));
    h = memoHash(h, k.freqBits);
    h = memoHash(h, k.bwBits);
    return static_cast<std::size_t>(h);
}

std::size_t
PowerMemoKeyHash::operator()(const PowerMemoKey &k) const
{
    std::uint64_t h = memoMix(static_cast<std::uint64_t>(k.app) << 32 |
                              static_cast<std::uint32_t>(k.cus));
    h = memoHash(h, k.freqBits);
    h = memoHash(h, k.bwBits);
    h = memoHash(h, static_cast<std::uint64_t>(k.optsBits) << 32 |
                        static_cast<std::uint32_t>(k.gpuChiplets));
    h = memoHash(h, k.extDramGbBits);
    h = memoHash(h, k.extNvmGbBits);
    h = memoHash(h, k.extDramModuleGbBits);
    h = memoHash(h, k.extNvmModuleGbBits);
    h = memoHash(h, static_cast<std::uint64_t>(
                        static_cast<std::uint32_t>(k.extInterfaces)));
    h = memoHash(h, k.extInterfaceGbsBits);
    return static_cast<std::size_t>(h);
}

EvalMemoCache::EvalMemoCache(std::size_t max_entries)
    : perShardCap_(std::max<std::size_t>(1, max_entries / kShards))
{
}

EvalMemoCache &
EvalMemoCache::sharedInstance()
{
    // Leaked on purpose: server worker threads may still be draining
    // requests while static destructors run; a cache with no destructor
    // scheduled cannot be used after free. 1M entries per result kind.
    static EvalMemoCache *cache = new EvalMemoCache(1u << 20);
    return *cache;
}

template <typename K, typename V, typename H>
bool
EvalMemoCache::find(const Shard<K, V, H> *shards, const K &key,
                    V *out) const
{
    const Shard<K, V, H> &s = shards[H{}(key) % kShards];
    {
        std::lock_guard<std::mutex> lock(s.mu);
        auto it = s.map.find(key);
        if (it != s.map.end()) {
            *out = it->second;
            hits_.fetch_add(1, std::memory_order_relaxed);
            hitsCounter().add();
            return true;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    missesCounter().add();
    return false;
}

template <typename K, typename V, typename H>
void
EvalMemoCache::store(Shard<K, V, H> *shards, const K &key, const V &v)
{
    Shard<K, V, H> &s = shards[H{}(key) % kShards];
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.map.size() >= perShardCap_ && !s.map.contains(key)) {
        // Whole-shard epoch eviction: recomputation returns the same
        // bits, so dropping entries can never change results.
        s.map.clear();
        evictions_.fetch_add(1, std::memory_order_relaxed);
        evictionsCounter().add();
    }
    s.map.emplace(key, v);
}

bool
EvalMemoCache::findPerf(const PerfMemoKey &k, PerfResult *out) const
{
    return find(perf_, k, out);
}

void
EvalMemoCache::storePerf(const PerfMemoKey &k, const PerfResult &v)
{
    store(perf_, k, v);
}

bool
EvalMemoCache::findPower(const PowerMemoKey &k, PowerBreakdown *out) const
{
    return find(power_, k, out);
}

void
EvalMemoCache::storePower(const PowerMemoKey &k, const PowerBreakdown &v)
{
    store(power_, k, v);
}

std::size_t
EvalMemoCache::size() const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < kShards; ++i) {
        {
            std::lock_guard<std::mutex> lock(perf_[i].mu);
            n += perf_[i].map.size();
        }
        {
            std::lock_guard<std::mutex> lock(power_[i].mu);
            n += power_[i].map.size();
        }
    }
    return n;
}

void
EvalMemoCache::clear()
{
    for (std::size_t i = 0; i < kShards; ++i) {
        {
            std::lock_guard<std::mutex> lock(perf_[i].mu);
            perf_[i].map.clear();
        }
        {
            std::lock_guard<std::mutex> lock(power_[i].mu);
            power_[i].map.clear();
        }
    }
}

} // namespace ena

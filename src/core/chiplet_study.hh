/**
 * @file
 * Chiplet-vs-monolithic study (paper Section V-A, Fig. 7).
 *
 * Builds the full event-driven EHP model — GPU chiplets with L1/L2
 * caches, wavefront-level CUs, CPU clusters, one HBM stack per chiplet,
 * and either the interposer network (chiplet mode) or a flat crossbar
 * (hypothetical monolithic EHP) — runs a synthetic kernel matched to one
 * application's profile in both modes, and reports the out-of-chiplet
 * traffic fraction and the performance relative to the monolithic
 * design.
 *
 * Scale note: the simulated machine is a resource-scaled EHP (fewer CUs
 * per chiplet, proportionally less bandwidth) so the study runs in
 * seconds; the traffic split and relative timing are scale-invariant
 * for the open-loop traffic levels involved.
 */

#ifndef ENA_CORE_CHIPLET_STUDY_HH
#define ENA_CORE_CHIPLET_STUDY_HH

#include <cstdint>
#include <string>

#include "workloads/kernel_profile.hh"

namespace ena {

struct ChipletStudyParams
{
    int gpuChiplets = 8;
    int cpuClusters = 2;
    int cusPerChiplet = 8;          ///< scaled from 32 for speed
    int wavefrontsPerCu = 8;
    /** Floor on outstanding misses per wavefront (the per-app value
     *  derives from the kernel's MLP profile). */
    int maxOutstandingPerWf = 2;
    std::uint64_t memOpsPerWavefront = 400;
    double aggregateBwGbs = 750.0;  ///< scaled from 3 TB/s
    /** Fraction of private pages placed on the local stack (NUMA-aware
     *  OS placement; 0 = pure interleave). */
    double localPlacementFrac = 0.15;
    std::uint64_t privateBytesPerWf = 256ull << 10;
    std::uint64_t sharedBytes = 128ull << 20;
    bool cpuTraffic = true;
    std::uint64_t seed = 1;
    /** Dump the full gem5-style stat registry after the run. */
    bool dumpStats = false;
    /** Capture the stat-registry dump into ChipletRunResult::statsDump
     *  (the PDES determinism gates compare these bitwise). */
    bool captureStats = false;
    /** Use the detailed (buffered, XY-routed) router model instead of
     *  the virtual-circuit interposer approximation. */
    bool detailedNoc = false;
    /**
     * Event-queue domains for the chiplet-mode model. 1 (the default)
     * is the plain serial kernel — the oracle behind every published
     * number. Any value > 1 shards the simulation into a hub domain
     * (interposer network, dispatcher, CPU clusters) plus one domain
     * per GPU chiplet (chiplet + CUs + its HBM stack + endpoint),
     * running conservative PDES windows sized by the TSV-crossing
     * latency. Sharding makes CU-completion signals pay one lookahead
     * of interposer latency, so a sharded run is its own (slightly
     * different) timing model: its determinism gate compares pooled
     * against serial-window execution at the same domain count.
     * Ignored (forced serial) for the monolithic crossbar model.
     */
    int domains = 1;
    /** With domains > 1: execute each window's domains serially on the
     *  calling thread instead of the ThreadPool — the bitwise oracle
     *  for pooled execution. */
    bool serialWindows = false;

    /** Per-application defaults (placement, working set). */
    static ChipletStudyParams forApp(App app);
};

/** One mode's run outcome. */
struct ChipletRunResult
{
    double runtimeUs = 0.0;
    double remoteTrafficFrac = 0.0;   ///< of post-L2 GPU traffic
    double l2HitRate = 0.0;
    double meanHops = 0.0;
    double meanNetLatencyNs = 0.0;    ///< mean packet latency
    double hbmRowHitRate = 0.0;
    std::uint64_t memOps = 0;
    std::uint64_t eventsProcessed = 0;
    /** Full stat-registry dump (only when captureStats is set). */
    std::string statsDump;
};

/** One Fig. 7 bar pair. */
struct Fig7Row
{
    App app;
    double remoteTrafficPct = 0.0;      ///< out-of-chiplet traffic
    double perfVsMonolithicPct = 0.0;   ///< EHP perf relative to
                                        ///< monolithic EHP
    ChipletRunResult chiplet;
    ChipletRunResult monolithic;
};

class ChipletStudy
{
  public:
    ChipletStudy() = default;

    /** Run one mode. */
    ChipletRunResult run(App app, const ChipletStudyParams &params,
                         bool monolithic) const;

    /** Run both modes and compare (one Fig. 7 entry). */
    Fig7Row compare(App app, const ChipletStudyParams &params) const;

    /** compare() with the per-app default parameters. */
    Fig7Row compare(App app) const;

    /**
     * compare() for a whole app list with default parameters, running
     * every (app, mode) simulation on the process-wide ThreadPool.
     * Results are identical to calling compare(app) in a loop.
     * @p domains > 1 shards each chiplet-mode simulation into that
     * study's PDES domain layout (see ChipletStudyParams::domains).
     */
    std::vector<Fig7Row> compareAll(const std::vector<App> &apps,
                                    int domains = 1) const;
};

} // namespace ena

#endif // ENA_CORE_CHIPLET_STUDY_HH

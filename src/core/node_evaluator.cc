#include "core/node_evaluator.hh"

#include <algorithm>

#include "telemetry/metrics.hh"
#include "util/stats_math.hh"

namespace ena {

EvalResult
NodeEvaluator::evaluate(const NodeConfig &cfg, App app) const
{
    // Hottest call in the stack (every sweep funnels through here):
    // one cached-reference relaxed increment, no spans.
    static telemetry::Counter &evals = telemetry::counter(
        "node.evaluations",
        "(config, application) pairs evaluated by NodeEvaluator");
    evals.add();

    const KernelProfile &k = profileFor(app);
    EvalResult r;
    r.app = app;
    r.perf = perfModel_.evaluate(cfg, k);
    r.power = powerModel_.evaluate(cfg, r.perf.activity);
    return r;
}

std::vector<EvalResult>
NodeEvaluator::evaluateAll(const NodeConfig &cfg) const
{
    std::vector<EvalResult> out;
    out.reserve(allApps().size());
    for (App app : allApps())
        out.push_back(evaluate(cfg, app));
    return out;
}

double
NodeEvaluator::meanBudgetPower(const NodeConfig &cfg) const
{
    std::vector<double> powers;
    for (App app : allApps())
        powers.push_back(evaluate(cfg, app).power.budgetPower());
    return mean(powers);
}

double
NodeEvaluator::maxBudgetPower(const NodeConfig &cfg) const
{
    double worst = 0.0;
    for (App app : allApps()) {
        worst = std::max(worst,
                         evaluate(cfg, app).power.budgetPower());
    }
    return worst;
}

double
NodeEvaluator::geomeanFlops(const NodeConfig &cfg) const
{
    std::vector<double> perfs;
    for (App app : allApps())
        perfs.push_back(evaluate(cfg, app).perf.flops);
    return geomean(perfs);
}

} // namespace ena

/**
 * @file
 * Sweep-level memoization of node evaluations, content-addressed by
 * the exact subset of NodeConfig fields each model actually reads.
 *
 * The performance model reads only (cus, freqGhz, bwTbs) plus the
 * kernel profile, so a PerfResult computed for one power-opt setting
 * is reusable for every other one — this is what lets tableII's
 * with-optimizations search reuse the no-opt search's perf work. The
 * power model additionally reads the opt toggles, the GPU chiplet
 * count, and the external-memory configuration; its results are keyed
 * separately. Both keys store the *raw bit patterns* of every input
 * field and compare them exactly (the hash only picks the bucket), so
 * a cache hit returns the precise doubles recomputation would produce:
 * serving from this cache is bit-identical by construction.
 *
 * Thread safety: the cache is sharded by key hash with one mutex per
 * shard, so concurrent batch chunks on the ThreadPool share it safely.
 * Eviction clears a whole shard when it reaches its capacity slice —
 * crude, but correctness-neutral (a miss just recomputes the same
 * bits) and free of bookkeeping on the hit path.
 *
 * Hit/miss/eviction totals feed the dse.memo_hits / dse.memo_misses /
 * dse.memo_evictions telemetry counters.
 */

#ifndef ENA_CORE_EVAL_MEMO_HH
#define ENA_CORE_EVAL_MEMO_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/node_config.hh"
#include "core/perf_model.hh"
#include "power/node_power.hh"
#include "util/memo.hh"
#include "workloads/kernel_profile.hh"

namespace ena {

/** Content address of a PerfResult: what PerfModel::evaluate reads. */
struct PerfMemoKey
{
    std::int32_t app = 0;
    std::int32_t cus = 0;
    std::uint64_t freqBits = 0;
    std::uint64_t bwBits = 0;

    bool operator==(const PerfMemoKey &o) const = default;
};

/**
 * Content address of a PowerBreakdown: what NodePowerModel::evaluate
 * reads. The activity vector is not part of the key because it is a
 * pure function of (app, cus, freqGhz, bwTbs), which are.
 */
struct PowerMemoKey
{
    std::int32_t app = 0;
    std::int32_t cus = 0;
    std::uint64_t freqBits = 0;
    std::uint64_t bwBits = 0;
    std::int32_t optsBits = 0;
    std::int32_t gpuChiplets = 0;
    std::uint64_t extDramGbBits = 0;
    std::uint64_t extNvmGbBits = 0;
    std::uint64_t extDramModuleGbBits = 0;
    std::uint64_t extNvmModuleGbBits = 0;
    std::int32_t extInterfaces = 0;
    std::uint64_t extInterfaceGbsBits = 0;

    bool operator==(const PowerMemoKey &o) const = default;
};

/** Stable bitmask of the five power-opt toggles. */
int powerOptBits(const PowerOptConfig &o);

PerfMemoKey perfMemoKey(App app, int cus, double freq_ghz, double bw_tbs);
PowerMemoKey powerMemoKey(App app, const NodeConfig &cfg);

struct PerfMemoKeyHash
{
    std::size_t operator()(const PerfMemoKey &k) const;
};

struct PowerMemoKeyHash
{
    std::size_t operator()(const PowerMemoKey &k) const;
};

/**
 * Thread safety: every member is safe to call concurrently — lookups
 * and stores lock only the shard owning the key, and the counters are
 * atomics. Distinct threads (ThreadPool workers, server worker
 * threads, concurrent clients' requests) may share one cache with no
 * external locking; the worst case for racing stores of the same key
 * is writing the same bits twice.
 */
class EvalMemoCache
{
  public:
    /** @param max_entries capacity per result kind (perf and power). */
    explicit EvalMemoCache(std::size_t max_entries = 1u << 16);

    /**
     * The process-wide cache shared by the evaluation server and the
     * CLI paths (cross-tenant dedup: identical grid points from any
     * client evaluate once). Initialization is race-free (C++ magic
     * static) and the instance is intentionally leaked so worker
     * threads draining after main() returns never touch a destroyed
     * cache.
     */
    static EvalMemoCache &sharedInstance();

    bool findPerf(const PerfMemoKey &k, PerfResult *out) const;
    void storePerf(const PerfMemoKey &k, const PerfResult &v);

    bool findPower(const PowerMemoKey &k, PowerBreakdown *out) const;
    void storePower(const PowerMemoKey &k, const PowerBreakdown &v);

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t evictions() const { return evictions_.load(); }

    /** Cached entries across both kinds (approximate under writers). */
    std::size_t size() const;

    void clear();

  private:
    static constexpr std::size_t kShards = 16;

    template <typename K, typename V, typename H>
    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<K, V, H> map;
    };

    template <typename K, typename V, typename H>
    bool find(const Shard<K, V, H> *shards, const K &key, V *out) const;
    template <typename K, typename V, typename H>
    void store(Shard<K, V, H> *shards, const K &key, const V &v);

    Shard<PerfMemoKey, PerfResult, PerfMemoKeyHash> perf_[kShards];
    Shard<PowerMemoKey, PowerBreakdown, PowerMemoKeyHash> power_[kShards];
    std::size_t perShardCap_;

    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace ena

#endif // ENA_CORE_EVAL_MEMO_HH

/**
 * @file
 * Dynamic resource reconfiguration (paper Section VI).
 *
 * The paper's Table II quantifies an *oracle* that redesigns the node
 * per application (including its bandwidth provisioning). A runtime
 * system can only work with the installed hardware: it can gate CUs
 * off, move the DVFS point, and pay a transition cost at each phase
 * change. This governor does exactly that on top of the analytic
 * models: per phase it picks the (active CUs, frequency) pair that
 * maximizes the kernel's performance within the power budget, and the
 * study driver compares a phased workload under static best-mean
 * settings vs the governed ones — a realizable fraction of Table II's
 * oracle benefit.
 */

#ifndef ENA_CORE_RECONFIG_HH
#define ENA_CORE_RECONFIG_HH

#include <vector>

#include "core/eval_memo.hh"
#include "core/node_evaluator.hh"
#include "workloads/kernel_profile.hh"

namespace ena {

/** One application phase of a long-running job. */
struct Phase
{
    App app;
    double seconds = 1.0;
};

struct GovernorParams
{
    /** Installed hardware (the governor can only gate down from it). */
    NodeConfig installed = NodeConfig::bestMean();
    double budgetW = 160.0;
    /** CU-gating granularity (one tile/SE at a time). */
    int cuStep = 32;
    /** DVFS points available at runtime. */
    std::vector<double> freqsGhz = {0.7, 0.8, 0.9, 1.0, 1.1,
                                    1.2, 1.3, 1.4, 1.5};
    /** Cost of one reconfiguration (drain + DVFS settle), seconds. */
    double transitionS = 0.002;
};

/** The governor's setting for one phase. */
struct GovernorDecision
{
    int activeCus = 0;
    double freqGhz = 1.0;
    double flops = 0.0;        ///< predicted at this setting
    double budgetPowerW = 0.0;
};

/** Outcome of running a phased workload. */
struct GovernorSummary
{
    double staticWork = 0.0;    ///< flop-seconds at static settings
    double governedWork = 0.0;  ///< with per-phase reconfiguration
    double gainPct = 0.0;
    int transitions = 0;
    double avgStaticPowerW = 0.0;
    double avgGovernedPowerW = 0.0;
};

class ReconfigGovernor
{
  public:
    ReconfigGovernor(const NodeEvaluator &eval, GovernorParams params);

    /** Best runtime setting for one kernel on the installed hardware. */
    GovernorDecision decide(App app) const;

    /** Compare a phased workload: static best-mean vs governed. */
    GovernorSummary run(const std::vector<Phase> &phases) const;

    const GovernorParams &params() const { return params_; }

  private:
    /** Evaluate one (active CUs, freq) candidate for one kernel. */
    EvalResult evaluateSetting(App app, int cus, double f) const;

    const NodeEvaluator &eval_;
    GovernorParams params_;
    /** Dedupes per-phase decide() sweeps across repeated kernels. */
    mutable EvalMemoCache memo_;
};

} // namespace ena

#endif // ENA_CORE_RECONFIG_HH

/**
 * @file
 * The performance model's arithmetic, factored into inline term
 * functions shared verbatim by the scalar oracle (PerfModel::evaluate)
 * and the batch evaluator (NodeEvaluator::evaluateBatch).
 *
 * Both paths execute the *same* IEEE-754 operation sequence on the
 * same inputs, which is what makes batched results bit-identical to
 * scalar ones. Each term's parameter list names exactly the NodeConfig
 * fields it reads — this is the content address used by the
 * memoization caches (core/eval_memo.hh): a term whose inputs repeat
 * across grid points may be served from cache because recomputing it
 * would produce the same bits.
 *
 * Do not "simplify" the expressions here: reassociating a product or
 * hoisting a division changes the rounding sequence and breaks the
 * bit-identity gate in bench_batch_eval and test_eval_batch.
 */

#ifndef ENA_CORE_PERF_TERMS_HH
#define ENA_CORE_PERF_TERMS_HH

#include <algorithm>
#include <cmath>

#include "common/activity.hh"
#include "common/calibration.hh"
#include "core/perf_model.hh"
#include "util/stats_math.hh"
#include "util/units.hh"
#include "workloads/kernel_profile.hh"

namespace ena {
namespace perf_terms {

/** Reference point for the scaling-taxonomy exponents. */
constexpr double refCus = 320.0;
constexpr double refGhz = 1.0;

/** Smooth-min norm: gives the rounded roofline knees of Figs. 4-6. */
constexpr double rooflineNorm = 8.0;

/** NoC traffic amplification over DRAM traffic (coherence, replies). */
constexpr double nocAmplification = 1.2;

/** Peak flops. Reads: cus, freqGhz. */
inline double
peakFlops(int cus, double freq_ghz)
{
    return cus * freq_ghz * units::giga * cal::flopsPerCuClk;
}

/** CU-count scaling factor of the compute roofline. Reads: cus. */
inline double
cuScale(int cus, const KernelProfile &k)
{
    return std::pow(cus / refCus, k.cuScalingExp - 1.0);
}

/** Frequency scaling factor of the compute roofline. Reads: freqGhz. */
inline double
freqScale(double freq_ghz, const KernelProfile &k)
{
    return std::pow(freq_ghz / refGhz, k.freqScalingExp - 1.0);
}

/** Compute roofline from precomputed peak and scale factors. */
inline double
computeRate(double peak, const KernelProfile &k, double cu_scale,
            double f_scale)
{
    return peak * k.computeEfficiency * cu_scale * f_scale;
}

/** Bandwidth the kernel can actually consume (GB/s). Reads: bwTbs. */
inline double
usableBandwidthGbs(double bw_tbs, const KernelProfile &k)
{
    return std::min(bw_tbs, k.maxBandwidthTbs) * 1000.0;
}

/**
 * Contention-degraded in-package bandwidth (GB/s).
 * Reads: cus, freqGhz, and (via @p usable_gbs) bwTbs.
 *
 * Contention (cache thrash, queueing) builds once the compute demand
 * outruns the bandwidth the kernel can actually consume; thrash
 * saturates at cal::maxContentionFactor (row-buffer / MSHR recycling).
 */
inline double
contendedBandwidthGbs(int cus, double freq_ghz, double usable_gbs,
                      const KernelProfile &k)
{
    double opb_eff = cus * freq_ghz / usable_gbs;
    double over = std::max(0.0, opb_eff - k.contentionKnee);
    double factor = 1.0 + k.contentionAlpha * over * over;
    return usable_gbs / std::min(factor, cal::maxContentionFactor);
}

/** Memory roofline for a given effective bandwidth. */
inline double
memoryRate(double eff_bw_gbs, const KernelProfile &k)
{
    return eff_bw_gbs * units::giga * k.arithmeticIntensity;
}

/** Achieved DRAM traffic at an achieved flops rate. Reads: bwTbs. */
inline double
achievedTrafficGbs(double flops, double bw_tbs, const KernelProfile &k)
{
    return std::min(flops / k.arithmeticIntensity / units::giga,
                    bw_tbs * 1000.0);
}

/** Fill the Activity vector from an achieved performance point. */
inline Activity
makeActivity(double bw_tbs, const KernelProfile &k, double flops,
             double peak)
{
    Activity a;
    a.cuUtilization = clamp(flops / peak, 0.0, 1.0);
    a.cuIdleActivity = k.cuIdleActivity;
    double traffic_gbs = achievedTrafficGbs(flops, bw_tbs, k);
    a.inPkgTrafficGbs = traffic_gbs;
    a.extTrafficGbs = k.extTrafficFraction * traffic_gbs;
    a.nocTrafficGbs = traffic_gbs * nocAmplification *
                      (1.0 + 0.5 * k.sharedFraction);
    a.writeFraction = k.writeFraction;
    a.compressRatio = k.compressRatio;
    a.cpuActivity = 0.25;
    return a;
}

/**
 * One side of the smooth-min roofline: pow(rate, -rooflineNorm). The
 * compute side depends only on (cus, freqGhz) per kernel, so the batch
 * path caches it across the bandwidth axis.
 */
inline double
rooflinePow(double rate)
{
    return std::pow(rate, -rooflineNorm);
}

/**
 * smoothMin(a, b, rooflineNorm) with pow(a, -rooflineNorm) already in
 * hand: the identical operation sequence as util's smoothMin (the two
 * pow() inputs and the sum are the same doubles), so the result is
 * bit-identical whether @p pow_a was just computed or cached.
 */
inline double
smoothMinPre(double pow_a, double b)
{
    return std::pow(pow_a + rooflinePow(b), -1.0 / rooflineNorm);
}

/**
 * Composite: one full performance evaluation from precomputed
 * reusable terms. peak, compute_rate, pow_compute, and usable_gbs
 * must have been produced by peakFlops/computeRate/rooflinePow/
 * usableBandwidthGbs for the same (cus, freq_ghz, bw_tbs, k) —
 * possibly served from a term cache, which is bit-identical by
 * construction.
 *
 * The statement order mirrors PerfModel::evaluate() exactly.
 */
inline PerfResult
evaluatePerfPre(int cus, double freq_ghz, double bw_tbs,
                const KernelProfile &k, double peak, double compute_rate,
                double pow_compute, double usable_gbs)
{
    PerfResult r;
    r.peakFlops = peak;
    r.opsPerByte = cus * freq_ghz / (bw_tbs * 1000.0);
    r.computeRate = compute_rate;

    double eff_bw = contendedBandwidthGbs(cus, freq_ghz, usable_gbs, k);
    r.memoryRate = memoryRate(eff_bw, k);

    r.flops = smoothMinPre(pow_compute, r.memoryRate);
    r.memoryBound = r.memoryRate < r.computeRate;
    r.trafficGbs = achievedTrafficGbs(r.flops, bw_tbs, k);
    r.activity = makeActivity(bw_tbs, k, r.flops, r.peakFlops);
    return r;
}

/** Same, deriving the (cus, freq)-only factors inline. */
inline PerfResult
evaluatePerf(int cus, double freq_ghz, double bw_tbs,
             const KernelProfile &k, double cu_scale, double f_scale,
             double usable_gbs)
{
    double peak = peakFlops(cus, freq_ghz);
    double compute_rate = computeRate(peak, k, cu_scale, f_scale);
    return evaluatePerfPre(cus, freq_ghz, bw_tbs, k, peak, compute_rate,
                           rooflinePow(compute_rate), usable_gbs);
}

} // namespace perf_terms
} // namespace ena

#endif // ENA_CORE_PERF_TERMS_HH

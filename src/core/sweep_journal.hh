/**
 * @file
 * Append-only sweep journal: checkpoint/resume for the DSE and cluster
 * sweeps.
 *
 * A sweep streams one record per finished grid point to a journal file
 * (one CRC-guarded line each, flushed as written). When a run is killed
 * mid-sweep, re-running with the same journal path skips every point
 * already on disk and recomputes only the missing ones, producing a
 * result table bit-identical to an uninterrupted run (records encode
 * doubles as hexfloats, so values round-trip exactly; gated by
 * bench_fault_tolerance).
 *
 * Record format, one per line:
 *
 *   v1 <TAB> crc32-hex8 <TAB> key <TAB> payload
 *
 * The CRC covers "key TAB payload" (after escaping); a partial trailing
 * line from a mid-write kill, or any line whose CRC does not match, is
 * dropped with a warning on load and simply recomputed. Keys and
 * payloads are escaped so they may contain tabs and newlines.
 *
 * The journal is activated either explicitly (open a journal and hand
 * it to the sweep overloads that take one) or ambiently via the
 * ENA_SWEEP_JOURNAL environment variable, which the plain sweep entry
 * points consult. Entries loaded at open are immutable while a sweep
 * runs, so lookups need no lock; appends are serialized by a mutex and
 * flushed per record.
 */

#ifndef ENA_CORE_SWEEP_JOURNAL_HH
#define ENA_CORE_SWEEP_JOURNAL_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/status.hh"

namespace ena {

class SweepJournal
{
  public:
    /**
     * Open (creating if absent) the journal at @p path, loading every
     * intact record already present. IoError when the file cannot be
     * opened for append.
     */
    static Expected<std::unique_ptr<SweepJournal>> open(
        const std::string &path);

    /**
     * The ambient flavor: open the path named by ENA_SWEEP_JOURNAL, or
     * return null when the variable is unset. An unusable path warns
     * and returns null (the sweep then simply runs unjournaled).
     */
    static std::unique_ptr<SweepJournal> openFromEnvironment();

    /**
     * Look up a previously journaled record. Safe to call concurrently
     * from sweep tasks: the loaded map is immutable after open.
     */
    bool lookup(const std::string &key, std::string *payload) const;

    /** Append one record and flush it to disk. Thread-safe. */
    void append(const std::string &key, const std::string &payload);

    const std::string &path() const { return path_; }

    /** Intact records found on disk at open (i.e. skippable points). */
    std::size_t loadedRecords() const { return loaded_.size(); }

    /** Corrupt or partial lines dropped while loading. */
    std::size_t droppedRecords() const { return dropped_; }

    /** Records written by this process so far. */
    std::size_t
    appendedRecords() const
    {
        std::lock_guard<std::mutex> lk(m_);
        return appended_;
    }

  private:
    SweepJournal() = default;

    std::string path_;
    std::map<std::string, std::string> loaded_;
    std::size_t dropped_ = 0;

    mutable std::mutex m_;
    std::ofstream out_;
    std::size_t appended_ = 0;
};

namespace journal_detail {

/** CRC-32 (IEEE, reflected) over @p data. */
std::uint32_t crc32(const std::string &data);

/** Escape tabs, newlines, and backslashes for one-line records. */
std::string escape(const std::string &s);

/** Inverse of escape(); false when the escaping is malformed. */
bool unescape(const std::string &s, std::string *out);

} // namespace journal_detail

} // namespace ena

#endif // ENA_CORE_SWEEP_JOURNAL_HH

/**
 * @file
 * Structure-of-arrays batch evaluation of node configurations: the
 * DSE hot path. A NodeConfigBatch holds the three swept knobs as
 * parallel arrays over a shared base config; evaluateBatch() scores
 * thousands of grid points per call with tight, vectorizable inner
 * loops, per-batch caches for the expensive pow() terms, and an
 * optional sweep-level EvalMemoCache shared across batches.
 *
 * Results are bit-identical to the scalar NodeEvaluator::evaluate()
 * oracle (enforced by test_eval_batch.cc and bench_batch_eval): both
 * paths run the same inline term functions from core/perf_terms.hh
 * and power/power_terms.hh in the same order.
 */

#ifndef ENA_CORE_EVAL_BATCH_HH
#define ENA_CORE_EVAL_BATCH_HH

#include <cstddef>
#include <vector>

#include "common/node_config.hh"
#include "workloads/kernel_profile.hh"

namespace ena {

/**
 * A set of node configurations that differ only in the three DSE
 * knobs (cus, freqGhz, bwTbs), stored structure-of-arrays over a
 * shared base config that supplies every other field (chiplet
 * organization, external memory, power opts).
 */
struct NodeConfigBatch
{
    NodeConfig base;
    std::vector<int> cus;
    std::vector<double> freqsGhz;
    std::vector<double> bwsTbs;

    std::size_t size() const { return cus.size(); }
    bool empty() const { return cus.empty(); }

    void
    reserve(std::size_t n)
    {
        cus.reserve(n);
        freqsGhz.reserve(n);
        bwsTbs.reserve(n);
    }

    void
    push(int cu_count, double freq_ghz, double bw_tbs)
    {
        cus.push_back(cu_count);
        freqsGhz.push_back(freq_ghz);
        bwsTbs.push_back(bw_tbs);
    }

    /** Materialize point @p i as a full NodeConfig. */
    NodeConfig
    at(std::size_t i) const
    {
        NodeConfig cfg = base;
        cfg.cus = cus[i];
        cfg.freqGhz = freqsGhz[i];
        cfg.bwTbs = bwsTbs[i];
        return cfg;
    }

    /**
     * Row-major cross product of three axes (the DseGrid enumeration
     * order: cus outermost, bandwidth innermost).
     */
    static NodeConfigBatch
    fromAxes(const NodeConfig &base_cfg, const std::vector<int> &cu_axis,
             const std::vector<double> &freq_axis,
             const std::vector<double> &bw_axis)
    {
        NodeConfigBatch b;
        b.base = base_cfg;
        b.reserve(cu_axis.size() * freq_axis.size() * bw_axis.size());
        for (int c : cu_axis)
            for (double f : freq_axis)
                for (double bw : bw_axis)
                    b.push(c, f, bw);
        return b;
    }
};

/** Per-point scores of one (batch, application) evaluation. */
struct BatchEvalResult
{
    App app = App::MaxFlops;
    std::vector<double> flops;
    std::vector<double> budgetPowerW;
    std::vector<double> packagePowerW;
    std::vector<double> totalPowerW;

    std::size_t size() const { return flops.size(); }
};

/** Per-point across-application aggregates (the DSE sweep scores). */
struct BatchAggregates
{
    std::vector<double> geomeanFlops;
    std::vector<double> meanBudgetPowerW;
    std::vector<double> maxBudgetPowerW;

    std::size_t size() const { return geomeanFlops.size(); }
};

} // namespace ena

#endif // ENA_CORE_EVAL_BATCH_HH

/**
 * @file
 * Thermal assessment driver (paper Section V-D, Figs. 10-11): peak
 * in-package DRAM temperature per application at the best-mean and
 * best-per-application configurations, plus the bottom-DRAM-die heat
 * maps of Fig. 11.
 */

#ifndef ENA_CORE_THERMAL_STUDY_HH
#define ENA_CORE_THERMAL_STUDY_HH

#include <string>
#include <vector>

#include "common/node_config.hh"
#include "core/dse.hh"
#include "core/node_evaluator.hh"
#include "thermal/package_model.hh"
#include "workloads/kernel_profile.hh"

namespace ena {

/** One Fig. 10 bar pair. */
struct ThermalRow
{
    App app;
    double bestMeanPeakC = 0.0;
    double bestPerAppPeakC = 0.0;
    NodeConfig bestPerAppConfig;
};

class ThermalStudy
{
  public:
    ThermalStudy(const NodeEvaluator &eval,
                 EhpPackageModel model = EhpPackageModel());

    /** Peak DRAM temperature of one app on one configuration. */
    double peakDramC(const NodeConfig &cfg, App app) const;

    /**
     * Fig. 10: all applications at @p best_mean and at their Table II
     * best-per-application configurations (@p table2 from the DSE).
     */
    std::vector<ThermalRow> run(const NodeConfig &best_mean,
                                const std::vector<TableIIRow> &table2)
        const;

    /** Fig. 11: ASCII heat map of the bottom DRAM die. */
    std::string heatMap(const NodeConfig &cfg, App app) const;

    const EhpPackageModel &model() const { return model_; }

  private:
    const NodeEvaluator &eval_;
    EhpPackageModel model_;
};

} // namespace ena

#endif // ENA_CORE_THERMAL_STUDY_HH

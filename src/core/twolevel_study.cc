#include "core/twolevel_study.hh"

#include <memory>

#include "gpu/compute_unit.hh"
#include "gpu/dispatcher.hh"
#include "gpu/gpu_chiplet.hh"
#include "gpu/mem_stack_endpoint.hh"
#include "mem/address_map.hh"
#include "mem/ext_memory.hh"
#include "mem/hbm_stack.hh"
#include "mem/memory_manager.hh"
#include "noc/interposer_network.hh"
#include "noc/topology.hh"
#include "sim/simulation.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"
#include "util/thread_pool.hh"

namespace ena {

TwoLevelPoint
TwoLevelStudy::run(App app, const TwoLevelParams &params,
                   double capacity_fraction) const
{
    ENA_ASSERT(capacity_fraction > 0.0 && capacity_fraction <= 1.0,
               "capacity fraction must be in (0, 1]");
    const KernelProfile &profile = profileFor(app);
    Simulation sim;

    Topology topo = Topology::ehp(params.gpuChiplets, 2);
    InterposerParams ip;
    ip.routerCycles = 2;
    auto *network = sim.create<InterposerNetwork>("noc", topo, ip);

    DispatchParams dp;
    dp.wavefrontsPerCu = params.wavefrontsPerCu;
    dp.privateBytesPerWf = params.privateBytesPerWf;
    dp.sharedBytes = params.sharedBytes;
    dp.seed = params.seed;
    auto *dispatcher = sim.create<Dispatcher>("dispatch", profile, dp);

    AddressMap addr_map(params.gpuChiplets);

    // Footprint = every wavefront's private slice plus the shared heap.
    std::uint64_t wavefronts =
        static_cast<std::uint64_t>(params.gpuChiplets) *
        params.cusPerChiplet * params.wavefrontsPerCu;
    std::uint64_t footprint =
        wavefronts * params.privateBytesPerWf + params.sharedBytes;

    MemoryManagerParams mp;
    mp.mode = params.mode;
    mp.inPackageBytes = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(capacity_fraction *
                                   static_cast<double>(footprint)),
        mp.pageBytes);
    mp.externalBytes = footprint;
    mp.epochAccesses = 1u << 14;
    MemoryManager manager(mp);

    // External bandwidth scaled with the machine: ~1/4 of in-package,
    // as in the full-size design (0.8 TB/s vs 3 TB/s).
    ExtMemConfig ext_cfg = ExtMemConfig::dramOnly();
    ext_cfg.interfaceGbs =
        params.aggregateBwGbs * 0.25 / ext_cfg.interfaces;
    auto *ext = sim.create<ExternalMemoryNetwork>("ext", ext_cfg);

    HbmParams hbm = HbmParams::forAggregateBandwidth(
        params.aggregateBwGbs, params.gpuChiplets);
    std::vector<HbmStack *> stacks;
    std::vector<GpuChiplet *> chiplets;
    for (int i = 0; i < params.gpuChiplets; ++i) {
        auto *stack = sim.create<HbmStack>(strformat("hbm%d", i), hbm);
        stacks.push_back(stack);
        sim.create<MemStackEndpoint>(strformat("hbm%d.port", i),
                                     topo.nodeOf(NodeKind::MemStack, i),
                                     *stack, *network);
        auto *chiplet = sim.create<GpuChiplet>(
            strformat("gpu%d", i), i,
            topo.nodeOf(NodeKind::GpuChiplet, i), GpuChipletParams{},
            addr_map, *network);
        chiplet->setLocalStack(i, stacks[i]);
        for (int s = 0; s < params.gpuChiplets; ++s)
            chiplet->setStackNode(s, topo.nodeOf(NodeKind::MemStack, s));
        chiplet->setTwoLevelMemory(&manager, ext);
        chiplets.push_back(chiplet);

        ComputeUnitParams cp;
        cp.wavefrontSlots = params.wavefrontsPerCu;
        cp.memOpsPerWavefront = params.memOpsPerWavefront;
        for (int c = 0; c < params.cusPerChiplet; ++c) {
            auto *cu = sim.create<ComputeUnit>(
                strformat("gpu%d.cu%d", i, c), *chiplet, cp);
            dispatcher->assign(*cu, i);
        }
    }

    sim.initAll();
    const Tick slice = 200 * tickPerUs;
    for (int s = 0; s < 20000 && !dispatcher->allDone(); ++s) {
        std::uint64_t ran = sim.run(sim.curTick() + slice);
        if (ran == 0 && !dispatcher->allDone())
            ENA_FATAL("two-level study deadlocked for ", appName(app));
    }
    if (!dispatcher->allDone())
        ENA_FATAL("two-level study did not converge for ", appName(app));

    TwoLevelPoint p;
    p.capacityFraction = capacity_fraction;
    p.runtimeUs =
        static_cast<double>(dispatcher->finishTick()) / tickPerUs;
    p.achievedMissRate = 1.0 - manager.inPackageHitRate();
    return p;
}

std::vector<TwoLevelPoint>
TwoLevelStudy::sweep(App app, const TwoLevelParams &params,
                     const std::vector<double> &fractions) const
{
    ENA_ASSERT(!fractions.empty(), "empty capacity sweep");
    // Every capacity point is a self-contained simulation; sweep them
    // on the pool and normalize in index order afterwards.
    std::vector<TwoLevelPoint> out = ThreadPool::global().parallelMap(
        fractions.size(),
        [&](std::size_t i) { return run(app, params, fractions[i]); });
    double base = out.front().runtimeUs;
    for (TwoLevelPoint &p : out)
        p.normPerf = base / p.runtimeUs;
    return out;
}

} // namespace ena

#include "core/studies.hh"

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace ena {

// --------------------------------------------------------------------
// OpbSweepStudy
// --------------------------------------------------------------------

OpbSweepStudy::OpbSweepStudy(const NodeEvaluator &eval,
                             NodeConfig best_mean)
    : eval_(eval), bestMean_(best_mean)
{
}

std::vector<double>
OpbSweepStudy::paperBandwidths()
{
    return {1.0, 3.0, 4.0, 5.0, 6.0, 7.0};
}

std::vector<OpbCurve>
OpbSweepStudy::sweepFrequency(App app, const std::vector<double> &bws,
                              const std::vector<double> &freqs) const
{
    double base = eval_.evaluate(bestMean_, app).perf.flops;
    // Flatten (bw, freq) into one parallel sweep, then reassemble the
    // per-bandwidth curves in order.
    const std::size_t nf = freqs.size();
    std::vector<OpbPoint> pts = ThreadPool::global().parallelMap(
        bws.size() * nf, [&](std::size_t i) {
            NodeConfig cfg = bestMean_;
            cfg.bwTbs = bws[i / nf];
            cfg.freqGhz = freqs[i % nf];
            OpbPoint p;
            p.cfg = cfg;
            p.opsPerByte = cfg.opsPerByte();
            p.normPerf = eval_.evaluate(cfg, app).perf.flops / base;
            return p;
        });
    std::vector<OpbCurve> curves(bws.size());
    for (std::size_t b = 0; b < bws.size(); ++b) {
        curves[b].bwTbs = bws[b];
        curves[b].points.assign(pts.begin() + b * nf,
                                pts.begin() + (b + 1) * nf);
    }
    return curves;
}

std::vector<OpbCurve>
OpbSweepStudy::sweepCuCount(App app, const std::vector<double> &bws,
                            const std::vector<int> &cus) const
{
    double base = eval_.evaluate(bestMean_, app).perf.flops;
    const std::size_t nc = cus.size();
    std::vector<OpbPoint> pts = ThreadPool::global().parallelMap(
        bws.size() * nc, [&](std::size_t i) {
            NodeConfig cfg = bestMean_;
            cfg.bwTbs = bws[i / nc];
            cfg.cus = cus[i % nc];
            OpbPoint p;
            p.cfg = cfg;
            p.opsPerByte = cfg.opsPerByte();
            p.normPerf = eval_.evaluate(cfg, app).perf.flops / base;
            return p;
        });
    std::vector<OpbCurve> curves(bws.size());
    for (std::size_t b = 0; b < bws.size(); ++b) {
        curves[b].bwTbs = bws[b];
        curves[b].points.assign(pts.begin() + b * nc,
                                pts.begin() + (b + 1) * nc);
    }
    return curves;
}

// --------------------------------------------------------------------
// MissRateStudy
// --------------------------------------------------------------------

MissRateStudy::MissRateStudy(const NodeEvaluator &eval, NodeConfig cfg)
    : eval_(eval), cfg_(cfg)
{
}

MissRateSeries
MissRateStudy::run(App app, const std::vector<double> &rates) const
{
    const KernelProfile &k = profileFor(app);
    const PerfModel &pm = eval_.perfModel();
    double base = pm.evaluateWithMissRate(cfg_, k, 0.0);
    MissRateSeries s;
    s.app = app;
    for (double m : rates) {
        MissRatePoint p;
        p.missRate = m;
        p.normPerf = pm.evaluateWithMissRate(cfg_, k, m) / base;
        s.points.push_back(p);
    }
    return s;
}

std::vector<MissRateSeries>
MissRateStudy::run() const
{
    const std::vector<double> rates = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
    const std::vector<App> &apps = allApps();
    return ThreadPool::global().parallelMap(
        apps.size(),
        [&](std::size_t i) { return run(apps[i], rates); });
}

// --------------------------------------------------------------------
// ExternalMemoryStudy
// --------------------------------------------------------------------

ExternalMemoryStudy::ExternalMemoryStudy(const NodeEvaluator &eval,
                                         NodeConfig cfg)
    : eval_(eval), cfg_(cfg)
{
}

std::vector<ExtMemBar>
ExternalMemoryStudy::run() const
{
    const struct
    {
        const char *name;
        ExtMemConfig ext;
    } configs[] = {
        {"3D DRAM only", ExtMemConfig::dramOnly()},
        {"3D DRAM + NVM", ExtMemConfig::hybrid()},
    };
    const std::vector<App> &apps = allApps();
    return ThreadPool::global().parallelMap(
        2 * apps.size(), [&](std::size_t i) {
            const auto &c = configs[i / apps.size()];
            App app = apps[i % apps.size()];
            NodeConfig cfg = cfg_;
            cfg.ext = c.ext;
            ExtMemBar bar;
            bar.app = app;
            bar.configName = c.name;
            bar.power = eval_.evaluate(cfg, app).power;
            return bar;
        });
}

// --------------------------------------------------------------------
// PerfPerWattStudy
// --------------------------------------------------------------------

PerfPerWattStudy::PerfPerWattStudy(const NodeEvaluator &eval,
                                   NodeConfig base_cfg, NodeConfig opt_cfg)
    : eval_(eval), baseCfg_(base_cfg), optCfg_(opt_cfg)
{
}

std::vector<PerfPerWattRow>
PerfPerWattStudy::run() const
{
    const std::vector<App> &apps = allApps();
    return ThreadPool::global().parallelMap(
        apps.size(), [&](std::size_t i) {
            App app = apps[i];
            EvalResult base = eval_.evaluate(baseCfg_, app);
            EvalResult opt = eval_.evaluate(optCfg_, app);
            PerfPerWattRow row;
            row.app = app;
            row.basePerfPerWatt =
                base.perf.flops / base.power.budgetPower();
            row.optPerfPerWatt =
                opt.perf.flops / opt.power.budgetPower();
            row.improvementPct =
                (row.optPerfPerWatt / row.basePerfPerWatt - 1.0) * 100.0;
            return row;
        });
}

// --------------------------------------------------------------------
// ExascaleProjector
// --------------------------------------------------------------------

ExascaleProjector::ExascaleProjector(const NodeEvaluator &eval, int nodes)
    : eval_(eval), nodes_(nodes)
{
    ENA_ASSERT(nodes > 0, "need a positive node count");
}

double
ExascaleProjector::systemExaflops(const NodeConfig &cfg, App app) const
{
    return eval_.evaluate(cfg, app).perf.flops * nodes_ / 1e18;
}

double
ExascaleProjector::systemMw(const NodeConfig &cfg, App app) const
{
    return eval_.evaluate(cfg, app).power.packagePower() * nodes_ / 1e6;
}

std::vector<ExascalePoint>
ExascaleProjector::sweepCus(const std::vector<int> &cus) const
{
    return ThreadPool::global().parallelMap(
        cus.size(), [&](std::size_t i) {
            NodeConfig cfg;
            cfg.cus = cus[i];
            cfg.freqGhz = 1.0;
            cfg.bwTbs = 1.0;
            ExascalePoint p;
            p.cus = cus[i];
            p.systemExaflops = systemExaflops(cfg, App::MaxFlops);
            p.systemMw = systemMw(cfg, App::MaxFlops);
            return p;
        });
}

} // namespace ena

#include "core/studies.hh"

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace ena {

// --------------------------------------------------------------------
// OpbSweepStudy
// --------------------------------------------------------------------

OpbSweepStudy::OpbSweepStudy(const NodeEvaluator &eval,
                             NodeConfig best_mean)
    : eval_(eval), bestMean_(best_mean)
{
}

std::vector<double>
OpbSweepStudy::paperBandwidths()
{
    return {1.0, 3.0, 4.0, 5.0, 6.0, 7.0};
}

std::vector<OpbCurve>
OpbSweepStudy::sweepFrequency(App app, const std::vector<double> &bws,
                              const std::vector<double> &freqs) const
{
    // One batch over the flattened (bw, freq) cross product; the whole
    // sweep shares this study's memo cache, so the base config and any
    // repeated (knob, app) pairs are never re-evaluated.
    double base = eval_.evaluateMemo(bestMean_, app, memo_).perf.flops;
    const std::size_t nf = freqs.size();
    NodeConfigBatch b;
    b.base = bestMean_;
    b.reserve(bws.size() * nf);
    for (std::size_t i = 0; i < bws.size() * nf; ++i)
        b.push(bestMean_.cus, freqs[i % nf], bws[i / nf]);
    BatchEvalResult r = eval_.evaluateBatch(b, app, &memo_);

    std::vector<OpbCurve> curves(bws.size());
    for (std::size_t c = 0; c < bws.size(); ++c) {
        curves[c].bwTbs = bws[c];
        curves[c].points.resize(nf);
        for (std::size_t f = 0; f < nf; ++f) {
            std::size_t i = c * nf + f;
            OpbPoint &p = curves[c].points[f];
            p.cfg = b.at(i);
            p.opsPerByte = p.cfg.opsPerByte();
            p.normPerf = r.flops[i] / base;
        }
    }
    return curves;
}

std::vector<OpbCurve>
OpbSweepStudy::sweepCuCount(App app, const std::vector<double> &bws,
                            const std::vector<int> &cus) const
{
    double base = eval_.evaluateMemo(bestMean_, app, memo_).perf.flops;
    const std::size_t nc = cus.size();
    NodeConfigBatch b;
    b.base = bestMean_;
    b.reserve(bws.size() * nc);
    for (std::size_t i = 0; i < bws.size() * nc; ++i)
        b.push(cus[i % nc], bestMean_.freqGhz, bws[i / nc]);
    BatchEvalResult r = eval_.evaluateBatch(b, app, &memo_);

    std::vector<OpbCurve> curves(bws.size());
    for (std::size_t c = 0; c < bws.size(); ++c) {
        curves[c].bwTbs = bws[c];
        curves[c].points.resize(nc);
        for (std::size_t u = 0; u < nc; ++u) {
            std::size_t i = c * nc + u;
            OpbPoint &p = curves[c].points[u];
            p.cfg = b.at(i);
            p.opsPerByte = p.cfg.opsPerByte();
            p.normPerf = r.flops[i] / base;
        }
    }
    return curves;
}

// --------------------------------------------------------------------
// MissRateStudy
// --------------------------------------------------------------------

MissRateStudy::MissRateStudy(const NodeEvaluator &eval, NodeConfig cfg)
    : eval_(eval), cfg_(cfg)
{
}

MissRateSeries
MissRateStudy::run(App app, const std::vector<double> &rates) const
{
    const KernelProfile &k = profileFor(app);
    const PerfModel &pm = eval_.perfModel();
    double base = pm.evaluateWithMissRate(cfg_, k, 0.0);
    MissRateSeries s;
    s.app = app;
    for (double m : rates) {
        MissRatePoint p;
        p.missRate = m;
        p.normPerf = pm.evaluateWithMissRate(cfg_, k, m) / base;
        s.points.push_back(p);
    }
    return s;
}

std::vector<MissRateSeries>
MissRateStudy::run() const
{
    const std::vector<double> rates = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
    const std::vector<App> &apps = allApps();
    return ThreadPool::global().parallelMap(
        apps.size(),
        [&](std::size_t i) { return run(apps[i], rates); });
}

// --------------------------------------------------------------------
// ExternalMemoryStudy
// --------------------------------------------------------------------

ExternalMemoryStudy::ExternalMemoryStudy(const NodeEvaluator &eval,
                                         NodeConfig cfg)
    : eval_(eval), cfg_(cfg)
{
}

std::vector<ExtMemBar>
ExternalMemoryStudy::run() const
{
    const struct
    {
        const char *name;
        ExtMemConfig ext;
    } configs[] = {
        {"3D DRAM only", ExtMemConfig::dramOnly()},
        {"3D DRAM + NVM", ExtMemConfig::hybrid()},
    };
    const std::vector<App> &apps = allApps();
    return ThreadPool::global().parallelMap(
        2 * apps.size(), [&](std::size_t i) {
            const auto &c = configs[i / apps.size()];
            App app = apps[i % apps.size()];
            NodeConfig cfg = cfg_;
            cfg.ext = c.ext;
            ExtMemBar bar;
            bar.app = app;
            bar.configName = c.name;
            bar.power = eval_.evaluate(cfg, app).power;
            return bar;
        });
}

// --------------------------------------------------------------------
// PerfPerWattStudy
// --------------------------------------------------------------------

PerfPerWattStudy::PerfPerWattStudy(const NodeEvaluator &eval,
                                   NodeConfig base_cfg, NodeConfig opt_cfg)
    : eval_(eval), baseCfg_(base_cfg), optCfg_(opt_cfg)
{
}

std::vector<PerfPerWattRow>
PerfPerWattStudy::run() const
{
    const std::vector<App> &apps = allApps();
    return ThreadPool::global().parallelMap(
        apps.size(), [&](std::size_t i) {
            App app = apps[i];
            EvalResult base = eval_.evaluate(baseCfg_, app);
            EvalResult opt = eval_.evaluate(optCfg_, app);
            PerfPerWattRow row;
            row.app = app;
            row.basePerfPerWatt =
                base.perf.flops / base.power.budgetPower();
            row.optPerfPerWatt =
                opt.perf.flops / opt.power.budgetPower();
            row.improvementPct =
                (row.optPerfPerWatt / row.basePerfPerWatt - 1.0) * 100.0;
            return row;
        });
}

// --------------------------------------------------------------------
// ExascaleProjector
// --------------------------------------------------------------------

ExascaleProjector::ExascaleProjector(const NodeEvaluator &eval, int nodes)
    : eval_(eval), nodes_(nodes)
{
    ENA_ASSERT(nodes > 0, "need a positive node count");
}

double
ExascaleProjector::systemExaflops(const NodeConfig &cfg, App app) const
{
    // The memo dedupes repeated projections of the same (cfg, app) —
    // cluster sweeps project every topology cell from one node config.
    return systemExaflops(eval_.evaluateMemo(cfg, app, memo_));
}

double
ExascaleProjector::systemMw(const NodeConfig &cfg, App app) const
{
    return systemMw(eval_.evaluateMemo(cfg, app, memo_));
}

std::vector<ExascalePoint>
ExascaleProjector::sweepCus(const std::vector<int> &cus) const
{
    NodeConfig base;
    base.freqGhz = 1.0;
    base.bwTbs = 1.0;
    NodeConfigBatch b;
    b.base = base;
    b.reserve(cus.size());
    for (int c : cus)
        b.push(c, base.freqGhz, base.bwTbs);
    BatchEvalResult r = eval_.evaluateBatch(b, App::MaxFlops, &memo_);

    std::vector<ExascalePoint> out(cus.size());
    for (std::size_t i = 0; i < cus.size(); ++i) {
        out[i].cus = cus[i];
        out[i].systemExaflops = r.flops[i] * nodes_ / 1e18;
        out[i].systemMw = r.packagePowerW[i] * nodes_ / 1e6;
    }
    return out;
}

} // namespace ena

/**
 * @file
 * NodeEvaluator's batch hot path (see core/eval_batch.hh).
 *
 * Layering: the scalar evaluate() in node_evaluator.cc is the
 * reference oracle; everything here reuses the identical inline term
 * functions (core/perf_terms.hh, power/power_terms.hh), adding only
 * per-batch term caches and the sweep-level EvalMemoCache — both of
 * which return previously computed doubles for exactly-equal inputs,
 * so the batch results match the oracle bit for bit.
 */

#include <algorithm>

#include "core/eval_memo.hh"
#include "core/node_evaluator.hh"
#include "core/perf_terms.hh"
#include "power/power_terms.hh"
#include "telemetry/metrics.hh"
#include "util/memo.hh"
#include "util/stats_math.hh"

namespace ena {

namespace {

telemetry::Counter &
evalsCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "node.evaluations",
        "(config, application) pairs evaluated by NodeEvaluator");
    return c;
}

telemetry::Histogram &
batchSizeHistogram()
{
    static telemetry::Histogram &h = telemetry::histogram(
        "dse.batch_size", "points per NodeEvaluator::evaluateBatch call",
        1.0, 2.0, 16);
    return h;
}

} // anonymous namespace

EvalResult
NodeEvaluator::evaluateMemo(const NodeConfig &cfg, App app,
                            EvalMemoCache &memo) const
{
    evalsCounter().add();

    EvalResult r;
    r.app = app;
    PerfMemoKey pk = perfMemoKey(app, cfg.cus, cfg.freqGhz, cfg.bwTbs);
    if (!memo.findPerf(pk, &r.perf)) {
        r.perf = perfModel_.evaluate(cfg, profileFor(app));
        memo.storePerf(pk, r.perf);
    }
    PowerMemoKey wk = powerMemoKey(app, cfg);
    if (!memo.findPower(wk, &r.power)) {
        r.power = powerModel_.evaluate(cfg, r.perf.activity);
        memo.storePower(wk, r.power);
    }
    return r;
}

BatchEvalResult
NodeEvaluator::evaluateBatch(const NodeConfigBatch &batch, App app,
                             EvalMemoCache *memo) const
{
    const std::size_t n = batch.size();
    BatchEvalResult out;
    out.app = app;
    out.flops.resize(n);
    out.budgetPowerW.resize(n);
    out.packagePowerW.resize(n);
    out.totalPowerW.resize(n);
    if (n == 0)
        return out;

    // The shared fields are validated once; the three per-point knobs
    // are range-checked in the loop (the cold path materializes the
    // config to die with the standard validate() diagnostic).
    batch.base.validate();
    evalsCounter().add(n);
    batchSizeHistogram().sample(static_cast<double>(n));

    const KernelProfile &k = profileFor(app);
    const NodeConfig &base = batch.base;
    const bool ntc = base.opts.ntc;
    const VfCurve &vf_curve = powerModel_.vfCurve();
    const power_terms::ExtStatic ext_static =
        power_terms::extStaticW(base.ext);

    // Per-batch caches for the pow()-heavy terms, keyed by the exact
    // bit pattern of the one knob each term reads: a sweep touches
    // only a handful of distinct values per axis, so almost every
    // point reuses previously computed factors (bit-identical by
    // construction — same inputs, same double).
    TermCache cu_scale_c, f_scale_c, usable_c, pow_compute_c;
    TermCache vf_dyn_c, vf_stat_c, hbm_static_c;

    // Memo keys: the per-batch constants are filled once, the three
    // knobs patched per point.
    PerfMemoKey pkey = perfMemoKey(app, 0, 0.0, 0.0);
    PowerMemoKey wkey = powerMemoKey(app, base);

    for (std::size_t i = 0; i < n; ++i) {
        const int cus = batch.cus[i];
        const double f = batch.freqsGhz[i];
        const double bw = batch.bwsTbs[i];
        if (cus <= 0 || cus > 4096 || f <= 0.0 || f > 10.0 ||
            bw <= 0.0 || bw > 100.0) {
            batch.at(i).validate();
        }

        PerfResult perf;
        bool have_perf = false;
        if (memo) {
            pkey.cus = cus;
            pkey.freqBits = bitsOf(f);
            pkey.bwBits = bitsOf(bw);
            have_perf = memo->findPerf(pkey, &perf);
        }
        if (!have_perf) {
            double cu_scale = cu_scale_c.getOrCompute(
                static_cast<std::uint32_t>(cus),
                [&] { return perf_terms::cuScale(cus, k); });
            double f_scale = f_scale_c.getOrCompute(
                bitsOf(f), [&] { return perf_terms::freqScale(f, k); });
            double usable = usable_c.getOrCompute(bitsOf(bw), [&] {
                return perf_terms::usableBandwidthGbs(bw, k);
            });
            // The compute roofline (and its smooth-min pow) depends
            // only on (cus, freq): cache it across the bandwidth axis,
            // keyed by the rate's own bit pattern.
            double peak = perf_terms::peakFlops(cus, f);
            double compute_rate =
                perf_terms::computeRate(peak, k, cu_scale, f_scale);
            double pow_compute = pow_compute_c.getOrCompute(
                bitsOf(compute_rate),
                [&] { return perf_terms::rooflinePow(compute_rate); });
            perf = perf_terms::evaluatePerfPre(cus, f, bw, k, peak,
                                               compute_rate, pow_compute,
                                               usable);
            if (memo)
                memo->storePerf(pkey, perf);
        }

        PowerBreakdown power;
        bool have_power = false;
        if (memo) {
            wkey.cus = cus;
            wkey.freqBits = bitsOf(f);
            wkey.bwBits = bitsOf(bw);
            have_power = memo->findPower(wkey, &power);
        }
        if (!have_power) {
            power_terms::VfScales vf;
            vf.dyn = vf_dyn_c.getOrCompute(
                bitsOf(f), [&] { return vf_curve.dynScale(f, ntc); });
            vf.stat = vf_stat_c.getOrCompute(
                bitsOf(f), [&] { return vf_curve.staticScale(f, ntc); });
            double hbm_static = hbm_static_c.getOrCompute(bitsOf(bw), [&] {
                return power_terms::hbmStaticW(bw, base.gpuChiplets);
            });
            power = power_terms::evaluatePower(cus, f, base.opts,
                                               base.ext, perf.activity,
                                               vf, hbm_static,
                                               ext_static);
            if (memo)
                memo->storePower(wkey, power);
        }

        out.flops[i] = perf.flops;
        out.budgetPowerW[i] = power.budgetPower();
        out.packagePowerW[i] = power.packagePower();
        out.totalPowerW[i] = power.total();
    }
    return out;
}

BatchAggregates
NodeEvaluator::evaluateBatchAll(const NodeConfigBatch &batch,
                                EvalMemoCache *memo) const
{
    const std::size_t n = batch.size();
    const std::vector<App> &apps = allApps();

    std::vector<BatchEvalResult> per_app;
    per_app.reserve(apps.size());
    for (App app : apps)
        per_app.push_back(evaluateBatch(batch, app, memo));

    // Assemble per-point aggregates with the exact fold the scalar
    // helpers use: geomean/mean over allApps() order, max from 0.0.
    BatchAggregates agg;
    agg.geomeanFlops.resize(n);
    agg.meanBudgetPowerW.resize(n);
    agg.maxBudgetPowerW.resize(n);
    std::vector<double> tmp(apps.size());
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t a = 0; a < apps.size(); ++a)
            tmp[a] = per_app[a].flops[i];
        agg.geomeanFlops[i] = geomean(tmp);
        for (std::size_t a = 0; a < apps.size(); ++a)
            tmp[a] = per_app[a].budgetPowerW[i];
        agg.meanBudgetPowerW[i] = mean(tmp);
        double worst = 0.0;
        for (std::size_t a = 0; a < apps.size(); ++a)
            worst = std::max(worst, per_app[a].budgetPowerW[i]);
        agg.maxBudgetPowerW[i] = worst;
    }
    return agg;
}

} // namespace ena

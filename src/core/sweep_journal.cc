#include "core/sweep_journal.hh"

#include <cstdlib>
#include <sstream>

#include "telemetry/metrics.hh"
#include "util/logging.hh"

namespace ena {

namespace journal_detail {

std::uint32_t
crc32(const std::string &data)
{
    // Bitwise CRC-32 (IEEE, reflected). Records are one short line, so
    // a lookup table is not worth its footprint here.
    std::uint32_t crc = 0xffffffffu;
    for (unsigned char c : data) {
        crc ^= c;
        for (int k = 0; k < 8; ++k)
            crc = (crc >> 1) ^ (0xedb88320u & (~(crc & 1u) + 1u));
    }
    return ~crc;
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\t': out += "\\t"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          default: out += c;
        }
    }
    return out;
}

bool
unescape(const std::string &s, std::string *out)
{
    out->clear();
    out->reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\') {
            *out += s[i];
            continue;
        }
        if (++i == s.size())
            return false;
        switch (s[i]) {
          case '\\': *out += '\\'; break;
          case 't': *out += '\t'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          default: return false;
        }
    }
    return true;
}

namespace {

telemetry::Counter &
hitsCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "sweep.journal_hits",
        "grid points skipped because the journal already had them");
    return c;
}

telemetry::Counter &
appendsCounter()
{
    static telemetry::Counter &c = telemetry::counter(
        "sweep.journal_appends", "grid points written to the journal");
    return c;
}

/**
 * Parse one journal line; true when it is an intact v1 record.
 * Partial trailing lines (mid-write kill) and bit rot both land here
 * as a field-count or CRC mismatch.
 */
bool
parseRecord(const std::string &line, std::string *key,
            std::string *payload)
{
    // v1 \t crc \t key \t payload  (key/payload still escaped).
    if (line.rfind("v1\t", 0) != 0)
        return false;
    std::size_t crc_end = line.find('\t', 3);
    if (crc_end == std::string::npos)
        return false;
    std::size_t key_end = line.find('\t', crc_end + 1);
    if (key_end == std::string::npos)
        return false;

    const std::string crc_text = line.substr(3, crc_end - 3);
    char *end = nullptr;
    unsigned long crc = std::strtoul(crc_text.c_str(), &end, 16);
    if (end == crc_text.c_str() || *end != '\0')
        return false;
    const std::string body = line.substr(crc_end + 1);
    if (crc32(body) != static_cast<std::uint32_t>(crc))
        return false;

    const std::string ekey = line.substr(crc_end + 1,
                                         key_end - crc_end - 1);
    const std::string epayload = line.substr(key_end + 1);
    return unescape(ekey, key) && unescape(epayload, payload);
}

} // anonymous namespace

} // namespace journal_detail

Expected<std::unique_ptr<SweepJournal>>
SweepJournal::open(const std::string &path)
{
    std::unique_ptr<SweepJournal> j(new SweepJournal);
    j->path_ = path;

    // A mid-write kill leaves the file without a trailing newline; the
    // next append must not concatenate onto the torn record, so start
    // it with one.
    bool needs_newline = false;
    {
        std::ifstream tail(path, std::ios::binary);
        if (tail) {
            tail.seekg(0, std::ios::end);
            if (tail.tellg() > 0) {
                tail.seekg(-1, std::ios::end);
                needs_newline = tail.get() != '\n';
            }
        }
    }

    // Load whatever an earlier (possibly killed) run left behind.
    {
        std::ifstream in(path);
        std::string line;
        int lineno = 0;
        while (in && std::getline(in, line)) {
            ++lineno;
            if (line.empty())
                continue;
            std::string key, payload;
            if (!journal_detail::parseRecord(line, &key, &payload)) {
                // A mid-write kill leaves one partial trailing line;
                // anything else here is corruption. Either way the
                // point is simply recomputed.
                warn("sweep journal ", path, ":", lineno,
                     ": dropping corrupt or partial record");
                ++j->dropped_;
                continue;
            }
            j->loaded_[key] = payload;
        }
    }

    j->out_.open(path, std::ios::app);
    if (!j->out_) {
        return Status::ioError("cannot open sweep journal '", path,
                               "' for append");
    }
    if (needs_newline)
        j->out_ << "\n";
    return j;
}

std::unique_ptr<SweepJournal>
SweepJournal::openFromEnvironment()
{
    const char *path = std::getenv("ENA_SWEEP_JOURNAL");
    if (!path || !*path)
        return nullptr;
    auto j = open(path);
    if (!j.ok()) {
        warn("ENA_SWEEP_JOURNAL: ", j.status().message(),
             "; sweeping without a journal");
        return nullptr;
    }
    inform("sweep journal ", path, ": resuming past ",
           (*j)->loadedRecords(), " journaled points");
    return std::move(j).value();
}

bool
SweepJournal::lookup(const std::string &key, std::string *payload) const
{
    auto it = loaded_.find(key);
    if (it == loaded_.end())
        return false;
    *payload = it->second;
    journal_detail::hitsCounter().add();
    return true;
}

void
SweepJournal::append(const std::string &key, const std::string &payload)
{
    const std::string body = journal_detail::escape(key) + "\t" +
                             journal_detail::escape(payload);
    std::ostringstream rec;
    rec << "v1\t" << std::hex << journal_detail::crc32(body) << "\t"
        << body << "\n";

    std::lock_guard<std::mutex> lk(m_);
    // One flushed write per record: a kill can at worst truncate the
    // final line, which the next load drops and recomputes.
    out_ << rec.str();
    out_.flush();
    ++appended_;
    journal_detail::appendsCounter().add();
}

} // namespace ena

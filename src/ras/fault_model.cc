#include "ras/fault_model.hh"

#include "util/logging.hh"

namespace ena {

namespace {

// Baseline FIT densities (order-of-magnitude, per the RAS-budget
// methodology): field studies put DRAM around 25-70 FIT/Gbit for
// uncorrectable-if-unprotected single-bit upsets and logic around a few
// FIT per core / CU at terrestrial flux.
constexpr double fitPerCpuCore = 8.0;
constexpr double fitPerCu = 2.5;
constexpr double fitPerMbSram = 0.8;
constexpr double fitPerGbHbm = 30.0;
constexpr double fitPerGbDram = 25.0;
constexpr double fitPerGbNvm = 2.0;     // storage-class, non-volatile
constexpr double fitInterconnect = 12.0;

// Protection effectiveness.
constexpr double eccResidual = 0.02;    // uncorrectable fraction (DUEs)
constexpr double rmtResidual = 0.05;    // faults escaping RMT windows

// Detection coverage for the silent/detected split of *unprotected*
// structures (machine checks, CRCs, sanity traps catch some faults even
// without ECC/RMT).
constexpr double logicDetection = 0.4;
constexpr double arrayDetection = 0.1;

/** SRAM capacity (MB) scales with CU and core count. */
double
sramMb(const NodeConfig &cfg)
{
    // 16 KiB L1 per CU + 2 MiB L2 per GPU chiplet + 1 MiB per CPU core.
    return cfg.cus * 0.016 + cfg.gpuChiplets * 2.0 + cfg.cpuCores() * 1.0;
}

} // anonymous namespace

FaultModel::FaultModel(RasConfig ras) : ras_(ras)
{
}

FitBreakdown
FaultModel::rawNodeFit(const NodeConfig &cfg) const
{
    cfg.validate();
    FitBreakdown f;
    double ser_scale =
        cfg.opts.ntc ? ras_.ntcSerMultiplier : 1.0;

    f.cpuLogic = fitPerCpuCore * cfg.cpuCores() * ser_scale;
    f.gpuLogic = fitPerCu * cfg.cus * ser_scale;
    f.sram = fitPerMbSram * sramMb(cfg) * 8.0 * ser_scale;
    f.hbm = fitPerGbHbm * cfg.inPackageGb;
    f.extDram = fitPerGbDram * cfg.ext.dramGb;
    f.nvm = fitPerGbNvm * cfg.ext.nvmGb;
    f.interconnect = fitInterconnect * ser_scale;
    return f;
}

FitBreakdown
FaultModel::protectedNodeFit(const NodeConfig &cfg) const
{
    FitBreakdown f = rawNodeFit(cfg);
    if (ras_.dramEcc) {
        f.hbm *= eccResidual;
        f.extDram *= eccResidual;
        f.nvm *= eccResidual;
    }
    if (ras_.sramEcc)
        f.sram *= eccResidual;
    if (ras_.gpuRmt)
        f.gpuLogic *= rmtResidual;
    return f;
}

double
FaultModel::silentFit(const NodeConfig &cfg) const
{
    FitBreakdown f = protectedNodeFit(cfg);
    // Array errors surviving ECC are overwhelmingly *detected*
    // (uncorrectable-but-flagged); without ECC most are silent.
    double array_silent = ras_.dramEcc ? 0.05 : 1.0 - arrayDetection;
    double sram_silent = ras_.sramEcc ? 0.05 : 1.0 - arrayDetection;
    // RMT converts almost all surviving GPU logic faults to detected.
    double gpu_silent = ras_.gpuRmt ? 0.1 : 1.0 - logicDetection;

    return f.cpuLogic * (1.0 - logicDetection) + f.gpuLogic * gpu_silent +
           f.sram * sram_silent +
           (f.hbm + f.extDram + f.nvm) * array_silent +
           f.interconnect * (1.0 - logicDetection);
}

double
FaultModel::silentFraction(const NodeConfig &cfg) const
{
    double total = protectedNodeFit(cfg).total();
    return total > 0.0 ? silentFit(cfg) / total : 0.0;
}

double
FaultModel::nodeMttfHours(const NodeConfig &cfg) const
{
    double fit = protectedNodeFit(cfg).total();
    ENA_ASSERT(fit > 0.0, "zero FIT rate");
    return 1e9 / fit;
}

double
FaultModel::systemMttfHours(const NodeConfig &cfg, int nodes) const
{
    ENA_ASSERT(nodes > 0, "need a positive node count");
    return nodeMttfHours(cfg) / nodes;
}

} // namespace ena

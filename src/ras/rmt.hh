/**
 * @file
 * GPU redundant multithreading (RMT) model (paper Section II-A5).
 *
 * The paper's proposal: rather than burden every GPU chiplet with
 * HPC-grade hardware RAS (hurting its reusability in consumer markets),
 * use software RMT — when the GPU is not fully utilized, the otherwise
 * idle resources redundantly execute wavefronts and compare results to
 * detect errors. The paper cites the approach [25] but performs no
 * quantitative evaluation; this model provides one, driven by the same
 * Activity vector the power model consumes:
 *
 *  - utilization below ~50%: full duplication fits in the idle CUs, so
 *    detection coverage is maximal and the slowdown small (duplicated
 *    memory traffic and scheduling overhead only);
 *  - higher utilization: duplication steals compute, so either coverage
 *    drops (partial RMT) or performance does (full RMT).
 */

#ifndef ENA_RAS_RMT_HH
#define ENA_RAS_RMT_HH

#include <string>
#include <vector>

#include "common/activity.hh"
#include "util/status.hh"

namespace ena {

/** RMT operating policies. */
enum class RmtPolicy
{
    Off,
    /** Duplicate only into idle resources; coverage degrades when the
     *  kernel already uses most of the GPU. */
    Opportunistic,
    /** Always duplicate everything; performance pays when busy. */
    Full,
};

/** Display name ("off" / "opportunistic" / "full"). */
std::string rmtPolicyName(RmtPolicy p);

/** Parse a policy name (case-insensitive). */
Expected<RmtPolicy> tryRmtPolicyFromName(const std::string &name);

/** Parse a policy name (case-insensitive); fatal() on unknown. */
RmtPolicy rmtPolicyFromName(const std::string &name);

/** All policies, in enum order. */
const std::vector<RmtPolicy> &allRmtPolicies();

struct RmtOutcome
{
    /** Fraction of GPU computation executed redundantly (0..1). */
    double coverage = 0.0;
    /** Multiplicative slowdown (>= 1). */
    double slowdown = 1.0;
    /** Extra dynamic CU activity (relative, for the power model). */
    double extraCuActivity = 0.0;
};

class RmtModel
{
  public:
    /**
     * @param compare_overhead slowdown of fully-duplicated execution
     *        from result comparison and scheduling (paper's cited
     *        compiler-managed RMT sees ~5-30%).
     */
    explicit RmtModel(double compare_overhead = 0.12);

    /** Evaluate one kernel's activity under a policy. */
    RmtOutcome evaluate(const Activity &act, RmtPolicy policy) const;

    /**
     * Detection coverage for GPU logic faults: redundant execution
     * detects faults in the covered fraction of the computation.
     */
    double
    detectionCoverage(const Activity &act, RmtPolicy policy) const
    {
        return evaluate(act, policy).coverage;
    }

  private:
    double compareOverhead_;
};

} // namespace ena

#endif // ENA_RAS_RMT_HH

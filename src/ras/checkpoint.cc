#include "ras/checkpoint.hh"

#include <cmath>

#include "util/logging.hh"

namespace ena {

CheckpointModel::CheckpointModel(CheckpointParams params)
    : params_(params)
{
    ENA_ASSERT(params_.checkpointBytes > 0.0 &&
                   params_.ioBandwidthBps > 0.0,
               "bad checkpoint parameters");
}

CheckpointPlan
CheckpointModel::plan(double system_mttf_hours) const
{
    ENA_ASSERT(system_mttf_hours > 0.0, "MTTF must be positive");
    CheckpointPlan p;
    p.checkpointCostS =
        params_.checkpointBytes / params_.ioBandwidthBps +
        params_.overheadS;
    double mttf_s = system_mttf_hours * 3600.0;
    p.intervalS = std::sqrt(2.0 * p.checkpointCostS * mttf_s);
    // Young's optimum assumes delta << MTTF; once tau crosses the MTTF
    // the machine expects a failure before its first checkpoint, so
    // clamp the interval to the MTTF and flag the plan as degenerate
    // rather than silently reporting a near-zero-efficiency optimum.
    if (p.intervalS > mttf_s) {
        p.intervalS = mttf_s;
        p.mttfLimited = true;
    }
    p.efficiency = efficiencyAt(p.intervalS, system_mttf_hours);
    // A cycle is work plus the checkpoint it ends on, not work alone.
    p.checkpointsPerDay = 86400.0 / (p.intervalS + p.checkpointCostS);
    return p;
}

double
CheckpointModel::efficiencyAt(double interval_s,
                              double system_mttf_hours) const
{
    ENA_ASSERT(interval_s > 0.0, "interval must be positive");
    double delta = params_.checkpointBytes / params_.ioBandwidthBps +
                   params_.overheadS;
    double mttf_s = system_mttf_hours * 3600.0;

    // Per cycle of (work + checkpoint): useful = interval.
    double cycle = interval_s + delta;
    // Expected losses per unit time: one failure per MTTF costs half an
    // interval of rework plus the restart.
    double failure_loss =
        (interval_s / 2.0 + delta + params_.restartExtraS) / mttf_s;
    double eff = (interval_s / cycle) * (1.0 - failure_loss);
    return eff < 0.0 ? 0.0 : eff;
}

} // namespace ena

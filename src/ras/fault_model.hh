/**
 * @file
 * Reliability model for the ENA (paper Section II-A5).
 *
 * The paper's RAS discussion sets the constraints — a 100,000-node
 * machine must keep user-visible interruptions to about one per week,
 * transient-fault rates grow with transistor count and memory capacity,
 * ECC covers the regular arrays, and aggressive voltage reduction (NTC)
 * raises soft-error rates — but presents no quantitative evaluation.
 * This module provides one: per-component FIT accounting, node and
 * system MTTF, and the silent-error split with and without protection.
 *
 * FIT = failures per 10^9 device-hours. Baseline rates follow published
 * field studies of HPC silicon and DRAM (order-of-magnitude accuracy is
 * the goal, as in any pre-silicon RAS budget).
 */

#ifndef ENA_RAS_FAULT_MODEL_HH
#define ENA_RAS_FAULT_MODEL_HH

#include "common/node_config.hh"

namespace ena {

/** Protection choices for the node's structures. */
struct RasConfig
{
    bool dramEcc = true;        ///< SEC-DED on in-package + external DRAM
    bool sramEcc = true;        ///< parity/ECC on caches and registers
    bool gpuRmt = false;        ///< redundant multithreading on the GPU
    /** Voltage-dependent SER multiplier applied when NTC is active
     *  (lower Vdd -> smaller critical charge). */
    double ntcSerMultiplier = 2.0;
};

/** FIT rates per component class, for one node. */
struct FitBreakdown
{
    double cpuLogic = 0.0;
    double gpuLogic = 0.0;
    double sram = 0.0;          ///< caches, register files
    double hbm = 0.0;           ///< in-package DRAM
    double extDram = 0.0;
    double nvm = 0.0;
    double interconnect = 0.0;

    double
    total() const
    {
        return cpuLogic + gpuLogic + sram + hbm + extDram + nvm +
               interconnect;
    }
};

class FaultModel
{
  public:
    explicit FaultModel(RasConfig ras = {});

    /** Raw (unprotected) FIT rates of one node's structures. */
    FitBreakdown rawNodeFit(const NodeConfig &cfg) const;

    /**
     * FIT rate of *uncorrected* errors after the configured protection
     * (ECC removes almost all array SEUs; RMT detects GPU logic
     * faults).
     */
    FitBreakdown protectedNodeFit(const NodeConfig &cfg) const;

    /**
     * FIT rate of *silent* data corruption: uncorrected errors that
     * also escape detection.
     */
    double silentFit(const NodeConfig &cfg) const;

    /** Node mean time to failure in hours (uncorrected errors). */
    double nodeMttfHours(const NodeConfig &cfg) const;

    /** System MTTF in hours for @p nodes nodes. */
    double systemMttfHours(const NodeConfig &cfg, int nodes) const;

    /**
     * Fraction of uncorrected faults that are silent (no detection).
     */
    double silentFraction(const NodeConfig &cfg) const;

    const RasConfig &ras() const { return ras_; }

  private:
    RasConfig ras_;
};

} // namespace ena

#endif // ENA_RAS_FAULT_MODEL_HH

/**
 * @file
 * Checkpoint/restart efficiency model for the exascale machine.
 *
 * The paper's system-level constraint: user intervention due to faults
 * "limited to the order of a week or more on average" across ~100,000
 * nodes, with I/O nodes provided for check-pointing. This module
 * computes the classic Young/Daly optimum checkpoint interval and the
 * resulting machine efficiency, from the node MTTF (ras::FaultModel)
 * and the time to drain a checkpoint of the node's memory footprint.
 */

#ifndef ENA_RAS_CHECKPOINT_HH
#define ENA_RAS_CHECKPOINT_HH

namespace ena {

struct CheckpointParams
{
    /** Bytes written per node per checkpoint. */
    double checkpointBytes = 256e9;      // in-package footprint
    /** Sustained per-node bandwidth to the I/O nodes. */
    double ioBandwidthBps = 4e9;
    /** Fixed coordination cost per checkpoint (s). */
    double overheadS = 5.0;
    /** Restart = read the checkpoint back + rejoin (s extra). */
    double restartExtraS = 30.0;
};

struct CheckpointPlan
{
    double checkpointCostS = 0.0;   ///< delta: one checkpoint's cost
    double intervalS = 0.0;         ///< Young/Daly optimal tau
    double efficiency = 0.0;        ///< useful-work fraction (0..1)
    double checkpointsPerDay = 0.0; ///< full work+checkpoint cycles
    /**
     * True when Young's first-order optimum tau = sqrt(2*delta*M)
     * exceeded the system MTTF itself (tiny-MTTF regime: the
     * approximation's delta << M premise is broken). The interval is
     * clamped to the MTTF and the plan should be read as "this machine
     * cannot make checkpoint/restart progress", not as a usable
     * operating point.
     */
    bool mttfLimited = false;
};

class CheckpointModel
{
  public:
    explicit CheckpointModel(CheckpointParams params = {});

    /**
     * Optimal plan for a machine whose *system* MTTF is
     * @p system_mttf_hours.
     *
     * Young's first-order optimum: tau = sqrt(2 * delta * M). The
     * efficiency accounts for checkpoint overhead, expected rework
     * (half an interval per failure), and restart cost.
     */
    CheckpointPlan plan(double system_mttf_hours) const;

    /** Efficiency if checkpoints were taken every @p interval_s. */
    double efficiencyAt(double interval_s,
                        double system_mttf_hours) const;

    const CheckpointParams &params() const { return params_; }

  private:
    CheckpointParams params_;
};

} // namespace ena

#endif // ENA_RAS_CHECKPOINT_HH

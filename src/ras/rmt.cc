#include "ras/rmt.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/stats_math.hh"

namespace ena {

RmtModel::RmtModel(double compare_overhead)
    : compareOverhead_(compare_overhead)
{
    ENA_ASSERT(compare_overhead >= 0.0 && compare_overhead < 1.0,
               "bad RMT comparison overhead");
}

RmtOutcome
RmtModel::evaluate(const Activity &act, RmtPolicy policy) const
{
    RmtOutcome out;
    if (policy == RmtPolicy::Off)
        return out;

    double util = clamp(act.cuUtilization, 0.0, 1.0);
    double idle = 1.0 - util;

    if (policy == RmtPolicy::Opportunistic) {
        // Duplicate as much of the busy fraction as fits in the idle
        // resources; no compute is stolen, so the only slowdown is the
        // comparison overhead on the covered fraction.
        out.coverage = util > 0.0 ? std::min(1.0, idle / util) : 1.0;
        out.slowdown =
            1.0 + compareOverhead_ * out.coverage * util;
        out.extraCuActivity = util * out.coverage;
        return out;
    }

    // Full duplication: everything runs twice.
    out.coverage = 1.0;
    double demand = 2.0 * util;
    // When the doubled demand exceeds the machine, execution dilates.
    double dilation = std::max(1.0, demand);
    out.slowdown = dilation * (1.0 + compareOverhead_);
    out.extraCuActivity = std::min(util, idle) +
                          std::max(0.0, util - idle);
    return out;
}

} // namespace ena

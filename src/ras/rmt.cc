#include "ras/rmt.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/stats_math.hh"
#include "util/string_utils.hh"

namespace ena {

std::string
rmtPolicyName(RmtPolicy p)
{
    switch (p) {
      case RmtPolicy::Off:
        return "off";
      case RmtPolicy::Opportunistic:
        return "opportunistic";
      case RmtPolicy::Full:
        return "full";
    }
    ENA_FATAL("unknown RmtPolicy ", static_cast<int>(p));
}

Expected<RmtPolicy>
tryRmtPolicyFromName(const std::string &name)
{
    std::string n = toLower(name);
    for (RmtPolicy p : allRmtPolicies()) {
        if (n == rmtPolicyName(p))
            return p;
    }
    if (n == "none" || n == "disabled")
        return RmtPolicy::Off;
    return Status::invalidArgument(
        "unknown RMT policy '", name,
        "' (want off, opportunistic, or full)");
}

RmtPolicy
rmtPolicyFromName(const std::string &name)
{
    return unwrapOrFatal(tryRmtPolicyFromName(name));
}

const std::vector<RmtPolicy> &
allRmtPolicies()
{
    static const std::vector<RmtPolicy> all = {
        RmtPolicy::Off,
        RmtPolicy::Opportunistic,
        RmtPolicy::Full,
    };
    return all;
}

RmtModel::RmtModel(double compare_overhead)
    : compareOverhead_(compare_overhead)
{
    ENA_ASSERT(compare_overhead >= 0.0 && compare_overhead < 1.0,
               "bad RMT comparison overhead");
}

RmtOutcome
RmtModel::evaluate(const Activity &act, RmtPolicy policy) const
{
    RmtOutcome out;
    if (policy == RmtPolicy::Off)
        return out;

    double util = clamp(act.cuUtilization, 0.0, 1.0);
    double idle = 1.0 - util;

    if (policy == RmtPolicy::Opportunistic) {
        // Duplicate as much of the busy fraction as fits in the idle
        // resources; no compute is stolen, so the only slowdown is the
        // comparison overhead on the covered fraction.
        out.coverage = util > 0.0 ? std::min(1.0, idle / util) : 1.0;
        out.slowdown =
            1.0 + compareOverhead_ * out.coverage * util;
        out.extraCuActivity = util * out.coverage;
        return out;
    }

    // Full duplication: everything runs twice.
    out.coverage = 1.0;
    double demand = 2.0 * util;
    // When the doubled demand exceeds the machine, execution dilates.
    double dilation = std::max(1.0, demand);
    out.slowdown = dilation * (1.0 + compareOverhead_);
    out.extraCuActivity = std::min(util, idle) +
                          std::max(0.0, util - idle);
    return out;
}

} // namespace ena

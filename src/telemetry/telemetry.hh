/**
 * @file
 * Process-wide observability for ena-sim: a scoped-span tracer whose
 * output loads straight into chrome://tracing / Perfetto, plus the
 * enable/flush plumbing shared with the metrics registry
 * (telemetry/metrics.hh).
 *
 * Design rules, in order:
 *
 *  1. Near-zero cost when disabled. Every instrumentation site guards
 *     on one relaxed atomic-bool load that inlines into the caller
 *     (tracingEnabled() / metricsEnabled()); a disabled ScopedSpan
 *     takes no timestamp and records nothing.
 *  2. Write-only: telemetry never feeds back into any model or
 *     scheduling decision, so serial and parallel sweep results stay
 *     bit-identical with tracing on (gated by bench_telemetry_overhead).
 *  3. Thread-safe by construction: spans land in thread-local buffers
 *     that are merged at flush time; metrics are lock-free atomics.
 *
 * Activation: set ENA_TRACE=<file> and/or ENA_METRICS=<file> in the
 * environment (files are written at process exit and on flush()), or
 * call enableTracing()/enableMetrics() programmatically. A metrics
 * path ending in ".json" selects the JSON dump, anything else CSV.
 */

#ifndef ENA_TELEMETRY_TELEMETRY_HH
#define ENA_TELEMETRY_TELEMETRY_HH

#include <atomic>
#include <iosfwd>
#include <string>

namespace ena {
namespace telemetry {

namespace detail {

/** Zero-initialized before any dynamic initialization runs. */
extern std::atomic<bool> tracingOn;
extern std::atomic<bool> metricsOn;

/** Append one completed span to the calling thread's buffer. */
void recordSpan(const char *cat, std::string name, double begin_us,
                double end_us);

/**
 * Apply ENA_TRACE / ENA_METRICS. Called from a static initializer in
 * the tracer's translation unit so any binary containing instrumented
 * code honors the environment without an explicit enable call.
 */
void initFromEnvironment();

} // namespace detail

/** True while span/instant/counter events are being collected. */
inline bool
tracingEnabled()
{
    return detail::tracingOn.load(std::memory_order_relaxed);
}

/** True while the metrics registry is being dumped/served. */
inline bool
metricsEnabled()
{
    return detail::metricsOn.load(std::memory_order_relaxed);
}

/**
 * Start collecting trace events. @p path is where flush() writes the
 * Chrome trace_event JSON; the empty string keeps events in memory
 * only (use writeTrace() to inspect them — unit tests do this).
 */
void enableTracing(const std::string &path = "");
void disableTracing();

/** Start serving the metrics registry; @p path as for enableTracing. */
void enableMetrics(const std::string &path = "");
void disableMetrics();

/** Microseconds since process start (steady clock). */
double nowUs();

/**
 * Label the calling thread in the trace viewer (Chrome metadata
 * event). Safe to call whether or not tracing is enabled.
 */
void setThreadName(const std::string &name);

/** Point-in-time event (Chrome "instant"); no-op when disabled. */
void instant(const char *cat, std::string name);

/**
 * Time-series sample rendered as a counter track in the trace viewer
 * (Chrome "C" event); no-op when disabled.
 */
void traceCounter(const char *cat, std::string name, double value);

/**
 * Write the trace and metrics files configured via enableTracing /
 * enableMetrics / the environment. Idempotent: rewrites each file from
 * the full in-memory state, so it is safe to call mid-run and again at
 * exit (an atexit hook does the final flush automatically whenever a
 * file path is configured).
 */
void flush();

/** Serialize every recorded event as Chrome trace_event JSON. */
void writeTrace(std::ostream &os);

/**
 * Drop all recorded trace events and reset every registered metric to
 * zero. For unit tests and benchmarks that need isolated runs; leaves
 * the enabled flags and output paths untouched.
 */
void reset();

/**
 * RAII duration span: records one Chrome "X" event from construction
 * to destruction on the calling thread. When tracing is disabled the
 * constructor is one relaxed load and the destructor a branch.
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *cat, const char *name)
    {
        if (tracingEnabled()) {
            cat_ = cat;
            name_ = name;
            beginUs_ = nowUs();
        }
    }

    /** For names built at runtime (argument is built either way; keep
     *  such spans off per-index hot paths). */
    ScopedSpan(const char *cat, std::string name)
    {
        if (tracingEnabled()) {
            cat_ = cat;
            name_ = std::move(name);
            beginUs_ = nowUs();
        }
    }

    ~ScopedSpan()
    {
        if (cat_)
            detail::recordSpan(cat_, std::move(name_), beginUs_, nowUs());
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *cat_ = nullptr;   ///< null while inactive
    std::string name_;
    double beginUs_ = 0.0;
};

#define ENA_TELEMETRY_CONCAT2(a, b) a##b
#define ENA_TELEMETRY_CONCAT(a, b) ENA_TELEMETRY_CONCAT2(a, b)

/** Scoped span covering the rest of the enclosing block. */
#define ENA_SPAN(cat, name) \
    ::ena::telemetry::ScopedSpan ENA_TELEMETRY_CONCAT( \
        ena_telemetry_span_, __LINE__)(cat, name)

} // namespace telemetry
} // namespace ena

#endif // ENA_TELEMETRY_TELEMETRY_HH

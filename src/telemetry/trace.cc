#include "telemetry/telemetry.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iomanip>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "telemetry/metrics.hh"

namespace ena {
namespace telemetry {

namespace detail {

// Zero-initialized (constant initialization), so instrumented code in
// other translation units can safely check the flags during their own
// dynamic initialization.
std::atomic<bool> tracingOn{false};
std::atomic<bool> metricsOn{false};

} // namespace detail

namespace {

struct TraceEvent
{
    char ph = 'X';          ///< X=span, i=instant, C=counter, M=metadata
    const char *cat = "";
    std::string name;
    double tsUs = 0.0;
    double durUs = 0.0;     ///< spans only
    double value = 0.0;     ///< counter events only
};

/**
 * Per-thread event buffer. Owned by the global TraceState (never
 * freed) so events survive their thread's exit; the per-buffer mutex
 * makes the owning thread's appends safe against a concurrent flush.
 */
struct ThreadBuffer
{
    std::mutex m;
    std::vector<TraceEvent> events;
    int tid = 0;

    void
    push(TraceEvent ev)
    {
        std::lock_guard<std::mutex> lk(m);
        events.push_back(std::move(ev));
    }
};

struct TraceState
{
    std::mutex m;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers;
    int nextTid = 0;
};

TraceState &
traceState()
{
    static TraceState *state = new TraceState();   // leaked on purpose
    return *state;
}

thread_local ThreadBuffer *tl_buffer = nullptr;

ThreadBuffer &
buffer()
{
    if (!tl_buffer) {
        TraceState &s = traceState();
        std::lock_guard<std::mutex> lk(s.m);
        s.buffers.push_back(std::make_unique<ThreadBuffer>());
        tl_buffer = s.buffers.back().get();
        tl_buffer->tid = s.nextTid++;
    }
    return *tl_buffer;
}

std::chrono::steady_clock::time_point
processStart()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

// Touch the clock during static initialization so "process start" is
// as early as link order allows, not the first instrumented call.
[[maybe_unused]] const auto force_clock_init = processStart();

/**
 * Reads ENA_TRACE / ENA_METRICS during static initialization. Lives in
 * this translation unit — not telemetry.cc — on purpose: every
 * instrumented object file references the enable-flag atomics defined
 * here, so the linker always pulls this member out of the static
 * archive (telemetry.cc alone could be dropped, and the env vars would
 * be silently ignored). The flags are constant-initialized, so other
 * translation units see a consistent value regardless of initializer
 * order.
 */
struct EnvInit
{
    EnvInit() { detail::initFromEnvironment(); }
};

[[maybe_unused]] const EnvInit env_init;

void
jsonEscape(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

} // anonymous namespace

namespace detail {

void
recordSpan(const char *cat, std::string name, double begin_us,
           double end_us)
{
    TraceEvent ev;
    ev.ph = 'X';
    ev.cat = cat;
    ev.name = std::move(name);
    ev.tsUs = begin_us;
    ev.durUs = end_us - begin_us;
    buffer().push(std::move(ev));
}

} // namespace detail

double
nowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - processStart())
        .count();
}

void
setThreadName(const std::string &name)
{
    // Chrome metadata events are timeless; record unconditionally so a
    // later enableTracing() still gets the thread labels.
    TraceEvent ev;
    ev.ph = 'M';
    ev.cat = "__metadata";
    ev.name = name;
    buffer().push(std::move(ev));
}

void
instant(const char *cat, std::string name)
{
    if (!tracingEnabled())
        return;
    TraceEvent ev;
    ev.ph = 'i';
    ev.cat = cat;
    ev.name = std::move(name);
    ev.tsUs = nowUs();
    buffer().push(std::move(ev));
}

void
traceCounter(const char *cat, std::string name, double value)
{
    if (!tracingEnabled())
        return;
    TraceEvent ev;
    ev.ph = 'C';
    ev.cat = cat;
    ev.name = std::move(name);
    ev.tsUs = nowUs();
    ev.value = value;
    buffer().push(std::move(ev));
}

void
writeTrace(std::ostream &os)
{
    // Snapshot every buffer under its lock, then serialize without
    // holding any telemetry lock.
    struct Snap
    {
        int tid;
        TraceEvent ev;
    };
    std::vector<Snap> all;
    {
        TraceState &s = traceState();
        std::lock_guard<std::mutex> lk(s.m);
        for (auto &buf : s.buffers) {
            std::lock_guard<std::mutex> blk(buf->m);
            for (const TraceEvent &ev : buf->events)
                all.push_back({buf->tid, ev});
        }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Snap &a, const Snap &b) {
                         return a.ev.tsUs < b.ev.tsUs;
                     });

    // Fixed-point microseconds: the default 6-significant-digit float
    // formatting would round timestamps in runs longer than ~10 s.
    os << std::fixed << std::setprecision(3);
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const Snap &s : all) {
        const TraceEvent &ev = s.ev;
        os << (first ? "\n" : ",\n");
        first = false;
        if (ev.ph == 'M') {
            // Thread-name metadata: the label travels in args.
            os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
               << "\"tid\":" << s.tid << ",\"args\":{\"name\":\"";
            jsonEscape(os, ev.name);
            os << "\"}}";
            continue;
        }
        os << "{\"name\":\"";
        jsonEscape(os, ev.name);
        os << "\",\"cat\":\"";
        jsonEscape(os, ev.cat);
        os << "\",\"ph\":\"" << ev.ph << "\",\"ts\":" << ev.tsUs
           << ",\"pid\":1,\"tid\":" << s.tid;
        if (ev.ph == 'X')
            os << ",\"dur\":" << ev.durUs;
        else if (ev.ph == 'i')
            os << ",\"s\":\"t\"";
        else if (ev.ph == 'C')
            os << ",\"args\":{\"value\":" << ev.value << "}";
        os << "}";
    }
    os << "\n]}\n";
}

void
reset()
{
    {
        TraceState &s = traceState();
        std::lock_guard<std::mutex> lk(s.m);
        for (auto &buf : s.buffers) {
            std::lock_guard<std::mutex> blk(buf->m);
            buf->events.clear();
        }
    }
    resetMetrics();
}

} // namespace telemetry
} // namespace ena

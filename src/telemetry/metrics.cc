#include "telemetry/metrics.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

namespace ena {
namespace telemetry {

namespace {

struct Registry
{
    std::mutex m;
    // std::map keeps dumps sorted by name; pointers stay stable.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry &
registry()
{
    static Registry *r = new Registry();   // leaked on purpose
    return *r;
}

void
atomicMin(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

void
atomicMax(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur &&
           !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

void
jsonEscapeInto(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20)
            os << ' ';
        else
            os << c;
    }
}

} // anonymous namespace

Histogram::Histogram(std::string name, std::string desc, double lo,
                     double base, int bins)
    : name_(std::move(name)), desc_(std::move(desc)),
      counts_(static_cast<size_t>(bins > 0 ? bins : 1)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
    if (lo <= 0.0)
        lo = 1.0;
    if (base <= 1.0)
        base = 2.0;
    bounds_.reserve(counts_.size() + 1);
    double b = lo;
    for (size_t i = 0; i <= counts_.size(); ++i) {
        bounds_.push_back(b);
        b *= base;
    }
}

int
Histogram::binFor(double v) const
{
    if (v < bounds_.front())
        return -1;
    if (v >= bounds_.back())
        return bins();
    // First boundary strictly greater than v; v lands in the bin below
    // it, so an exact-boundary sample always belongs to the upper bin.
    auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
    return static_cast<int>(it - bounds_.begin()) - 1;
}

void
Histogram::sample(double v, std::uint64_t count)
{
    int bin = binFor(v);
    if (bin < 0)
        underflow_.fetch_add(count, std::memory_order_relaxed);
    else if (bin >= bins())
        overflow_.fetch_add(count, std::memory_order_relaxed);
    else
        counts_[static_cast<size_t>(bin)].fetch_add(
            count, std::memory_order_relaxed);
    count_.fetch_add(count, std::memory_order_relaxed);
    atomicMin(min_, v);
    atomicMax(max_, v);
}

double
Histogram::min() const
{
    return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double
Histogram::max() const
{
    return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
    underflow_.store(0, std::memory_order_relaxed);
    overflow_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

Counter &
counter(const std::string &name, const std::string &desc)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.m);
    auto it = r.counters.find(name);
    if (it == r.counters.end()) {
        it = r.counters
                 .emplace(name, std::make_unique<Counter>(name, desc))
                 .first;
    }
    return *it->second;
}

Gauge &
gauge(const std::string &name, const std::string &desc)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.m);
    auto it = r.gauges.find(name);
    if (it == r.gauges.end()) {
        it = r.gauges.emplace(name, std::make_unique<Gauge>(name, desc))
                 .first;
    }
    return *it->second;
}

Histogram &
histogram(const std::string &name, const std::string &desc, double lo,
          double base, int bins)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.m);
    auto it = r.histograms.find(name);
    if (it == r.histograms.end()) {
        it = r.histograms
                 .emplace(name, std::make_unique<Histogram>(
                                    name, desc, lo, base, bins))
                 .first;
    }
    return *it->second;
}

void
writeMetricsCsv(std::ostream &os)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.m);
    os << "name,type,value\n";
    for (const auto &[name, c] : r.counters)
        os << name << ",counter," << c->value() << "\n";
    for (const auto &[name, g] : r.gauges)
        os << name << ",gauge," << g->value() << "\n";
    for (const auto &[name, h] : r.histograms) {
        os << name << ",histogram_count," << h->count() << "\n";
        os << name << ",histogram_min," << h->min() << "\n";
        os << name << ",histogram_max," << h->max() << "\n";
        if (h->underflow())
            os << name << ",histogram_underflow," << h->underflow()
               << "\n";
        for (int i = 0; i < h->bins(); ++i) {
            if (h->binCount(i)) {
                os << name << ",histogram_bin[" << h->binLo(i) << ","
                   << h->binHi(i) << ")," << h->binCount(i) << "\n";
            }
        }
        if (h->overflow())
            os << name << ",histogram_overflow," << h->overflow()
               << "\n";
    }
}

void
writeMetricsJson(std::ostream &os)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.m);
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : r.counters) {
        os << (first ? "\n" : ",\n") << "    \"";
        jsonEscapeInto(os, name);
        os << "\": " << c->value();
        first = false;
    }
    os << "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : r.gauges) {
        os << (first ? "\n" : ",\n") << "    \"";
        jsonEscapeInto(os, name);
        os << "\": " << g->value();
        first = false;
    }
    os << "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : r.histograms) {
        os << (first ? "\n" : ",\n") << "    \"";
        jsonEscapeInto(os, name);
        os << "\": {\"count\": " << h->count()
           << ", \"min\": " << h->min() << ", \"max\": " << h->max()
           << ", \"underflow\": " << h->underflow()
           << ", \"overflow\": " << h->overflow() << ", \"bins\": [";
        for (int i = 0; i < h->bins(); ++i)
            os << (i ? ", " : "") << h->binCount(i);
        os << "]}";
        first = false;
    }
    os << "\n  }\n}\n";
}

void
resetMetrics()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lk(r.m);
    for (auto &[name, c] : r.counters)
        c->reset();
    for (auto &[name, g] : r.gauges)
        g->reset();
    for (auto &[name, h] : r.histograms)
        h->reset();
}

} // namespace telemetry
} // namespace ena

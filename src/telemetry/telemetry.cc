#include "telemetry/telemetry.hh"

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>

#include "telemetry/metrics.hh"

namespace ena {
namespace telemetry {

namespace {

struct OutputState
{
    std::mutex m;
    std::string tracePath;
    std::string metricsPath;
    bool atexitRegistered = false;
};

OutputState &
outputState()
{
    static OutputState *s = new OutputState();   // leaked on purpose
    return *s;
}

void
registerAtexitFlush(OutputState &s)
{
    // Caller holds s.m. The hook rewrites the configured files from
    // the full in-memory state, so a process that never flushed
    // explicitly still gets complete outputs.
    if (!s.atexitRegistered) {
        s.atexitRegistered = true;
        std::atexit([] { flush(); });
    }
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

} // anonymous namespace

namespace detail {

void
initFromEnvironment()
{
    if (const char *path = std::getenv("ENA_TRACE"))
        enableTracing(path);
    if (const char *path = std::getenv("ENA_METRICS"))
        enableMetrics(path);
}

} // namespace detail

void
enableTracing(const std::string &path)
{
    OutputState &s = outputState();
    std::lock_guard<std::mutex> lk(s.m);
    s.tracePath = path;
    if (!path.empty())
        registerAtexitFlush(s);
    detail::tracingOn.store(true, std::memory_order_relaxed);
}

void
disableTracing()
{
    detail::tracingOn.store(false, std::memory_order_relaxed);
}

void
enableMetrics(const std::string &path)
{
    OutputState &s = outputState();
    std::lock_guard<std::mutex> lk(s.m);
    s.metricsPath = path;
    if (!path.empty())
        registerAtexitFlush(s);
    detail::metricsOn.store(true, std::memory_order_relaxed);
}

void
disableMetrics()
{
    detail::metricsOn.store(false, std::memory_order_relaxed);
}

void
flush()
{
    std::string trace_path, metrics_path;
    {
        OutputState &s = outputState();
        std::lock_guard<std::mutex> lk(s.m);
        trace_path = s.tracePath;
        metrics_path = s.metricsPath;
    }
    if (!trace_path.empty()) {
        std::ofstream os(trace_path);
        if (os)
            writeTrace(os);
    }
    if (!metrics_path.empty()) {
        std::ofstream os(metrics_path);
        if (os) {
            if (endsWith(metrics_path, ".json"))
                writeMetricsJson(os);
            else
                writeMetricsCsv(os);
        }
    }
}

} // namespace telemetry
} // namespace ena

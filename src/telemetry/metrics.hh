/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * fixed-log-scale-bin histograms shared by every subsystem
 * (ThreadPool, DSE, cycle sim, thermal solver, cluster sweeps).
 *
 * All mutation paths are lock-free atomics, so instrumented code may
 * update metrics from any thread. Counters and histogram bins are
 * integers updated with commutative adds, which keeps the dumped
 * values deterministic regardless of thread interleaving; gauges are
 * last-write-wins. Registration (the name -> metric lookup) takes a
 * mutex — hot paths should cache the returned reference:
 *
 *   static telemetry::Counter &evals =
 *       telemetry::counter("node.evaluations", "configs evaluated");
 *   evals.add();
 *
 * Dumps: writeMetricsCsv() ("name,type,value" rows) and
 * writeMetricsJson(); ENA_METRICS=<file> makes flush() write one of
 * them at process exit (see telemetry/telemetry.hh).
 */

#ifndef ENA_TELEMETRY_METRICS_HH
#define ENA_TELEMETRY_METRICS_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ena {
namespace telemetry {

/** Monotonically increasing integer (events, bytes, tasks...). */
class Counter
{
  public:
    explicit Counter(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {
    }

    void
    add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (thread count, rate...). */
class Gauge
{
  public:
    explicit Gauge(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {
    }

    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::atomic<double> value_{0.0};
};

/**
 * Histogram with fixed log-scale bins: bin i covers
 * [lo * base^i, lo * base^(i+1)). Samples below lo count as underflow,
 * samples at or above the last boundary as overflow. Bin boundaries
 * are precomputed once and bin selection is a binary search over them,
 * so exact-boundary samples land deterministically in the upper bin
 * (no pow/log rounding surprises — unit-tested in test_metrics.cc).
 */
class Histogram
{
  public:
    Histogram(std::string name, std::string desc, double lo, double base,
              int bins);

    void sample(double v, std::uint64_t count = 1);

    /** Bin index for @p v: -1 underflow, bins() overflow. */
    int binFor(double v) const;

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    std::uint64_t binCount(int i) const
    {
        return counts_[static_cast<size_t>(i)].load(
            std::memory_order_relaxed);
    }
    std::uint64_t underflow() const
    {
        return underflow_.load(std::memory_order_relaxed);
    }
    std::uint64_t overflow() const
    {
        return overflow_.load(std::memory_order_relaxed);
    }

    /** Smallest / largest sample seen; 0 with no samples. */
    double min() const;
    double max() const;

    int bins() const { return static_cast<int>(counts_.size()); }
    double binLo(int i) const { return bounds_[static_cast<size_t>(i)]; }
    double binHi(int i) const
    {
        return bounds_[static_cast<size_t>(i) + 1];
    }

    void reset();

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::vector<double> bounds_;   ///< bins()+1 boundaries
    std::vector<std::atomic<std::uint64_t>> counts_;
    std::atomic<std::uint64_t> underflow_{0};
    std::atomic<std::uint64_t> overflow_{0};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> min_{0.0};
    std::atomic<double> max_{0.0};
};

/**
 * Find-or-create by name. References stay valid for the process
 * lifetime. desc/shape parameters apply only on first creation;
 * re-registering an existing name returns the existing metric.
 */
Counter &counter(const std::string &name, const std::string &desc = "");
Gauge &gauge(const std::string &name, const std::string &desc = "");
Histogram &histogram(const std::string &name,
                     const std::string &desc = "", double lo = 1.0,
                     double base = 2.0, int bins = 32);

/**
 * CSV dump, sorted by name: header "name,type,value", then one row per
 * counter/gauge and per-histogram rows for count, underflow/overflow,
 * and each non-empty bin (type "histogram_bin[lo,hi)").
 */
void writeMetricsCsv(std::ostream &os);

/** JSON dump: {"counters":{...},"gauges":{...},"histograms":{...}}. */
void writeMetricsJson(std::ostream &os);

/** Reset every registered metric to zero (tests/benches). */
void resetMetrics();

} // namespace telemetry
} // namespace ena

#endif // ENA_TELEMETRY_METRICS_HH

/**
 * @file
 * The chiplet-mode interconnect: packets descend from the source chiplet
 * to its interposer router through TSVs, traverse router-to-router links
 * with per-link serialization and contention, and ascend through TSVs to
 * the destination chiplet/stack — the two extra vertical hops the paper
 * quantifies in Fig. 7.
 *
 * Contention model: each directed link keeps a busy-until horizon; a
 * packet's hop departs at max(now, busyUntil) and occupies the link for
 * its serialization time. This "virtual circuit" walk computes the
 * arrival tick at injection, which is accurate for the open-loop traffic
 * levels of the Fig. 7 study while keeping event counts low.
 */

#ifndef ENA_NOC_INTERPOSER_NETWORK_HH
#define ENA_NOC_INTERPOSER_NETWORK_HH

#include <map>
#include <utility>

#include "noc/network.hh"
#include "noc/topology.hh"

namespace ena {

/** Timing/width parameters of the interposer fabric. */
struct InterposerParams
{
    double clockGhz = 1.0;          ///< fabric clock
    std::uint32_t routerCycles = 2; ///< per-router pipeline latency
    std::uint32_t linkCycles = 1;   ///< per-link propagation latency
    std::uint32_t tsvCycles = 1;    ///< per vertical (TSV) transition
    std::uint32_t linkBytesPerCycle = 256; ///< link width (wide
                                           ///< interposer paths)

    Tick
    cycle() const
    {
        return clockPeriod(clockGhz);
    }
};

class InterposerNetwork : public Network
{
  public:
    InterposerNetwork(Simulation &sim, const std::string &name,
                      const Topology &topo, InterposerParams params);

    void send(const Packet &pkt) override;

    /** Zero-load latency between two nodes (for tests/inspection). */
    Tick zeroLoadLatency(NodeId src, NodeId dst,
                         std::uint32_t bytes) const;

    const Topology &topology() const { return topo_; }

  private:
    /**
     * Walk the packet from its source router to the destination,
     * starting from injection tick @p inject (the source chiplet's
     * clock when send() was called). Runs in the network's own domain;
     * when the sender lives in another domain, send() posts this walk
     * across the TSV-descent channel instead of running it inline.
     */
    void route(const Packet &pkt, Tick inject);

    Tick serialization(std::uint32_t bytes) const;

    const Topology &topo_;
    InterposerParams params_;

    /** busy-until per directed link (from,to). */
    std::map<std::pair<std::uint32_t, std::uint32_t>, Tick> linkBusy_;

    StatScalar statLinkStallTicks_;
};

} // namespace ena

#endif // ENA_NOC_INTERPOSER_NETWORK_HH

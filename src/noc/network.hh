/**
 * @file
 * Abstract chiplet interconnect. Concrete implementations:
 * InterposerNetwork (the proposed multi-chiplet EHP) and
 * CrossbarNetwork (the hypothetical monolithic EHP of Fig. 7).
 */

#ifndef ENA_NOC_NETWORK_HH
#define ENA_NOC_NETWORK_HH

#include <vector>

#include "noc/packet.hh"
#include "sim/sim_object.hh"

namespace ena {

/** Anything that can receive packets from a network. */
class NetworkEndpoint
{
  public:
    virtual ~NetworkEndpoint() = default;

    /** Called at the packet's arrival tick. */
    virtual void receivePacket(const Packet &pkt) = 0;
};

class Network : public SimObject
{
  public:
    Network(Simulation &sim, const std::string &name, size_t num_nodes);

    /**
     * Attach the endpoint object for node @p id. @p domain is the
     * event-queue domain the endpoint's receivePacket() must run in;
     * the default (-1) means the network's own domain, which is always
     * correct for single-domain simulations.
     */
    void attach(NodeId id, NetworkEndpoint *ep, int domain = -1);

    /**
     * Inject a packet at the current tick; the destination endpoint's
     * receivePacket() runs at the computed arrival tick.
     */
    virtual void send(const Packet &pkt) = 0;

    /** Total payload bytes injected. */
    double bytesInjected() const { return statBytes_.value(); }

    /** Total byte-hops traversed (energy proxy). */
    double byteHops() const { return statByteHops_.value(); }

    double packetsSent() const { return statPackets_.value(); }

    /** Mean end-to-end packet latency in nanoseconds. */
    double meanLatencyNs() const { return statLatency_.mean(); }

    /** Mean router hops per packet. */
    double
    meanHops() const
    {
        double n = statPackets_.value();
        return n > 0.0 ? statHops_.value() / n : 0.0;
    }

  protected:
    /**
     * Schedule delivery to the endpoint at @p arrival, in the
     * endpoint's own domain. Latency is sampled from @p injected (the
     * tick the packet entered the fabric); the two-argument form uses
     * the network's current tick, which is the legacy behaviour for
     * same-domain sends.
     */
    void scheduleDelivery(const Packet &pkt, Tick arrival);
    void scheduleDelivery(const Packet &pkt, Tick arrival, Tick injected);

    /** Record per-packet accounting. */
    void recordPacket(const Packet &pkt, std::uint32_t hops);

    std::vector<NetworkEndpoint *> endpoints_;
    std::vector<int> endpointDomains_;

    StatScalar statPackets_;
    StatScalar statBytes_;
    StatScalar statHops_;
    StatScalar statByteHops_;
    StatDistribution statLatency_;
};

} // namespace ena

#endif // ENA_NOC_NETWORK_HH

#include "noc/detailed_network.hh"

#include <algorithm>

#include "sim/simulation.hh"
#include "util/logging.hh"

namespace ena {

namespace {

/** Pseudo-router id for the injection port. */
constexpr std::uint32_t injectPort = ~std::uint32_t(0);

} // anonymous namespace

DetailedNetwork::DetailedNetwork(Simulation &sim, const std::string &name,
                                 const Topology &topo,
                                 DetailedParams params)
    : Network(sim, name, topo.nodes().size()), topo_(topo),
      params_(params),
      statBufferStalls_(sim.stats(), name + ".bufferStalls",
                        "hops parked on full downstream buffers")
{
    ENA_ASSERT(params_.bufferPackets > 0, "need buffer capacity");
    ENA_ASSERT(topo_.columns() > 0, "topology lacks mesh geometry");
}

Tick
DetailedNetwork::serialization(std::uint32_t bytes) const
{
    double cycles =
        static_cast<double>(bytes) / params_.linkBytesPerCycle;
    auto ticks = static_cast<Tick>(cycles * params_.cycle());
    return std::max<Tick>(ticks, 1);
}

std::uint32_t
DetailedNetwork::nextHopXY(std::uint32_t at, std::uint32_t to) const
{
    ENA_ASSERT(at != to, "nextHopXY at destination");
    std::uint32_t cols = topo_.columns();
    std::uint32_t at_col = at % cols;
    std::uint32_t to_col = to % cols;
    if (at_col < to_col)
        return at + 1;
    if (at_col > to_col)
        return at - 1;
    // Same column: move vertically.
    return at < to ? at + cols : at - cols;
}

void
DetailedNetwork::send(const Packet &pkt)
{
    const TopologyNode &src = topo_.node(pkt.src);
    Packet copy = pkt;
    std::uint32_t r = src.router;
    auto inject = [this, copy, r] {
        // Injection contends for the router's injection-port
        // buffer like any other input.
        PortKey port{r, injectPort};
        if (occ_[port] >= params_.bufferPackets) {
            ++statBufferStalls_;
            waiting_[port].push_back({copy, r, injectPort, 0});
            return;
        }
        ++occ_[port];
        arriveAtRouter(copy, r, injectPort, 0);
    };
    if (sim().crossesDomain(domain())) {
        // TSV descent doubles as the cross-domain channel, exactly as
        // in the virtual-circuit model.
        sim().postCrossDomain(
            domain(), sim().now() + params_.tsvCycles * params_.cycle(),
            std::move(inject), "inject");
        return;
    }
    eventq().scheduleLambda(
        curTick() + params_.tsvCycles * params_.cycle(),
        std::move(inject), "inject");
}

void
DetailedNetwork::arriveAtRouter(Packet pkt, std::uint32_t r,
                                std::uint32_t in_port,
                                std::uint32_t hops)
{
    eventq().scheduleLambda(
        curTick() + params_.routerCycles * params_.cycle(),
        [this, pkt, r, in_port, hops] {
            departRouter(pkt, r, in_port, hops);
        },
        "router pipeline");
}

void
DetailedNetwork::departRouter(Packet pkt, std::uint32_t r,
                              std::uint32_t in_port, std::uint32_t hops)
{
    std::uint32_t dst_router = topo_.node(pkt.dst).router;
    if (r == dst_router) {
        // Ascend to the endpoint; the input buffer frees now.
        releaseSlot(r, in_port);
        recordPacket(pkt, hops);
        scheduleDelivery(pkt, curTick() +
                                  params_.tsvCycles * params_.cycle());
        return;
    }
    tryTraverse(pkt, r, in_port, nextHopXY(r, dst_router), hops);
}

void
DetailedNetwork::tryTraverse(Packet pkt, std::uint32_t r,
                             std::uint32_t in_port, std::uint32_t nh,
                             std::uint32_t hops)
{
    // The downstream input port for the r -> nh link is keyed by r.
    PortKey down{nh, r};
    if (occ_[down] >= params_.bufferPackets) {
        ++statBufferStalls_;
        waiting_[down].push_back({pkt, r, in_port, hops});
        return;
    }
    // Reserve the downstream slot (virtual cut-through), cross the
    // link; the upstream slot frees when the tail has left.
    ++occ_[down];
    Tick ser = serialization(pkt.bytes);
    Tick &busy = linkBusy_[{r, nh}];
    Tick depart = std::max(curTick(), busy);
    busy = depart + ser;
    Tick tail_out = depart + ser;
    Tick arrive = tail_out + params_.linkCycles * params_.cycle();

    eventq().scheduleLambda(
        tail_out,
        [this, r, in_port] { releaseSlot(r, in_port); },
        "tail leaves upstream");
    eventq().scheduleLambda(
        arrive,
        [this, pkt, nh, r, hops] {
            arriveAtRouter(pkt, nh, r, hops + 1);
        },
        "link traversal");
}

void
DetailedNetwork::releaseSlot(std::uint32_t r, std::uint32_t in_port)
{
    PortKey port{r, in_port};
    auto it = occ_.find(port);
    ENA_ASSERT(it != occ_.end() && it->second > 0,
               "releasing an empty buffer slot");
    --it->second;

    auto wit = waiting_.find(port);
    if (wit == waiting_.end() || wit->second.empty())
        return;
    Waiting w = wit->second.front();
    wit->second.pop_front();
    if (w.inPort == injectPort && w.atRouter == r) {
        // Parked injection directly into this router.
        ++it->second;
        arriveAtRouter(w.pkt, r, injectPort, 0);
        return;
    }
    // Parked forwarder at w.atRouter wanting to enter r.
    tryTraverse(w.pkt, w.atRouter, w.inPort, r, w.hops);
}

} // namespace ena

/**
 * @file
 * Detailed interposer network: hop-by-hop router model with bounded
 * per-input-port buffers, credit-style backpressure, virtual
 * cut-through switching, and deadlock-free dimension-ordered (XY)
 * routing on the 2 x C interposer mesh.
 *
 * This is the Garnet-class counterpart to InterposerNetwork's
 * virtual-circuit approximation: the same topology and link widths,
 * but contention resolves hop by hop with finite buffering (one buffer
 * per input port — the structure XY routing needs for deadlock
 * freedom). The ablation bench compares the two models, validating
 * that the cheaper one is adequate at the Fig. 7 study's traffic
 * levels.
 */

#ifndef ENA_NOC_DETAILED_NETWORK_HH
#define ENA_NOC_DETAILED_NETWORK_HH

#include <deque>
#include <map>

#include "noc/network.hh"
#include "noc/topology.hh"

namespace ena {

struct DetailedParams
{
    double clockGhz = 1.0;
    std::uint32_t routerCycles = 2;   ///< per-router pipeline
    std::uint32_t linkCycles = 1;
    std::uint32_t tsvCycles = 1;
    std::uint32_t linkBytesPerCycle = 256;
    /** Input-buffer capacity per (router, input port), in packets. */
    int bufferPackets = 8;

    Tick cycle() const { return clockPeriod(clockGhz); }
};

class DetailedNetwork : public Network
{
  public:
    DetailedNetwork(Simulation &sim, const std::string &name,
                    const Topology &topo, DetailedParams params);

    void send(const Packet &pkt) override;

    /** XY next hop (column first, then row); deadlock-free on the
     *  mesh. */
    std::uint32_t nextHopXY(std::uint32_t at, std::uint32_t to) const;

    double bufferStalls() const { return statBufferStalls_.value(); }

    const Topology &topology() const { return topo_; }

  private:
    /** (router, upstream router or injectPort). */
    using PortKey = std::pair<std::uint32_t, std::uint32_t>;

    struct Waiting
    {
        Packet pkt;
        std::uint32_t atRouter;   ///< where the packet currently sits
        std::uint32_t inPort;     ///< its input port there
        std::uint32_t hops;
    };

    Tick serialization(std::uint32_t bytes) const;

    /** Packet holds a slot of (r, in_port) and enters the pipeline. */
    void arriveAtRouter(Packet pkt, std::uint32_t r,
                        std::uint32_t in_port, std::uint32_t hops);

    /** Pipeline done: leave toward the next hop or the endpoint. */
    void departRouter(Packet pkt, std::uint32_t r,
                      std::uint32_t in_port, std::uint32_t hops);

    /** Attempt the r -> nh link; parks on the downstream input port
     *  when its buffer is full. */
    void tryTraverse(Packet pkt, std::uint32_t r, std::uint32_t in_port,
                     std::uint32_t nh, std::uint32_t hops);

    /** Free one slot of (r, in_port) and retry a parked packet. */
    void releaseSlot(std::uint32_t r, std::uint32_t in_port);

    const Topology &topo_;
    DetailedParams params_;

    std::map<PortKey, int> occ_;
    std::map<PortKey, std::deque<Waiting>> waiting_;
    std::map<std::pair<std::uint32_t, std::uint32_t>, Tick> linkBusy_;

    StatScalar statBufferStalls_;
};

} // namespace ena

#endif // ENA_NOC_DETAILED_NETWORK_HH
